package sbgt

import (
	"repro/internal/rng"
	"repro/internal/workload"
)

// Population couples prior risks with one realized infection truth.
type Population = workload.Population

// Oracle simulates a laboratory answering pooled-test queries.
type Oracle = workload.Oracle

// Rand is a deterministic splittable random stream. All sbgt simulation
// takes explicit streams so results are reproducible under parallelism.
type Rand = rng.Source

// NewRand returns a stream rooted at seed.
func NewRand(seed uint64) *Rand { return rng.New(seed) }

// UniformRisks assigns every subject prior risk p.
func UniformRisks(n int, p float64) []float64 { return workload.UniformRisks(n, p) }

// BetaRisks draws heterogeneous per-subject risks from Beta(a, b).
func BetaRisks(n int, a, b float64, r *Rand) []float64 { return workload.BetaRisks(n, a, b, r) }

// HouseholdRisks assigns clustered risks: households of the given size are
// exposed with probability pExposed; members carry riskHigh or riskLow.
func HouseholdRisks(n, householdSize int, pExposed, riskLow, riskHigh float64, r *Rand) []float64 {
	return workload.HouseholdRisks(n, householdSize, pExposed, riskLow, riskHigh, r)
}

// DrawPopulation realizes an infection truth from per-subject risks.
func DrawPopulation(risks []float64, r *Rand) Population { return workload.Draw(risks, r) }

// NewOracle builds a simulated lab for the population under the response.
func NewOracle(p Population, resp Response, r *Rand) *Oracle {
	return workload.NewOracle(p, resp, r)
}

// Epidemic evolves a cohort's infection truth between surveillance rounds
// (SIS dynamics with within-cohort transmission and a community floor)
// and pushes posteriors forward into next-round priors.
type Epidemic = workload.Epidemic

// NewEpidemic seeds an epidemic over n subjects at the given initial
// prevalence; beta is the within-cohort transmission probability per
// infected contact, gamma the per-round recovery probability, community
// the per-round external infection probability.
func NewEpidemic(n int, initPrev, beta, gamma, community float64, r *Rand) *Epidemic {
	return workload.NewEpidemic(n, initPrev, beta, gamma, community, r)
}
