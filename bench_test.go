// Benchmarks: one testing.B target per evaluation artifact (micro form).
// The full sweeps with printed tables live in cmd/sbgt-bench; these
// targets track the same kernels so `go test -bench=. -benchmem` gives a
// one-command regression check. Mapping (see DESIGN.md §4):
//
//	T1 -> BenchmarkLatticeUpdate{SBGT,Baseline}, BenchmarkMarginals*
//	T2 -> BenchmarkHalvingSelect{SBGT,Baseline}
//	T3 -> BenchmarkStudy{Parallel,Serial}
//	F1 -> BenchmarkStrongScalingW{1,2,4}
//	F3 -> BenchmarkSurveillanceSession
//	F6 -> BenchmarkClusterUpdate
//	A1 -> BenchmarkPartitionGrain{1,16}
//	A2 -> BenchmarkFusion{Fused,TwoPass}
package sbgt_test

import (
	"net"
	"testing"
	"time"

	sbgt "repro"
	"repro/internal/baseline"
	"repro/internal/bitvec"
	"repro/internal/cluster"
	"repro/internal/dilution"
	"repro/internal/engine"
	"repro/internal/halving"
	"repro/internal/lattice"
	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/workload"
)

// benchN is the lattice size for kernel benchmarks: large enough to
// dominate scheduling overhead, small enough for -bench to stay snappy.
const benchN = 16

var benchResp = dilution.Hyperbolic{MaxSens: 0.97, Spec: 0.99, D: 0.3}

// flatResp is likelihood ½ for every pool composition, so the posterior
// is a fixed point of Update. Long-running update benchmarks must use it:
// with an informative response, thousands of repeated updates concentrate
// the posterior until tail masses go subnormal and denormal arithmetic
// (not the kernel) dominates ns/op.
var flatResp = dilution.Binary{Sens: 0.5, Spec: 0.5}

func benchModel(b *testing.B, workers, parts int, resp dilution.Response) *lattice.Model {
	b.Helper()
	pool := engine.NewPool(workers)
	b.Cleanup(pool.Close)
	m, err := lattice.New(pool, lattice.Config{
		Risks:    workload.UniformRisks(benchN, 0.05),
		Response: resp,
		Parts:    parts,
	})
	if err != nil {
		b.Fatal(err)
	}
	return m
}

func benchBaseline(b *testing.B, resp dilution.Response) *baseline.Model {
	b.Helper()
	m, err := baseline.New(workload.UniformRisks(benchN, 0.05), resp)
	if err != nil {
		b.Fatal(err)
	}
	return m
}

var outcomes = []dilution.Outcome{dilution.Negative, dilution.Positive}

// --- T1: lattice-model manipulation ---------------------------------------

func BenchmarkLatticeUpdateSBGT(b *testing.B) {
	m := benchModel(b, 0, 0, flatResp)
	pm := bitvec.Full(benchN)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.Update(pm, outcomes[i%2]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLatticeUpdateBaseline(b *testing.B) {
	m := benchBaseline(b, flatResp)
	pm := bitvec.Full(benchN)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.Update(pm, outcomes[i%2]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMarginalsSBGT(b *testing.B) {
	m := benchModel(b, 0, 0, benchResp)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Marginals()
	}
}

func BenchmarkMarginalsBaseline(b *testing.B) {
	m := benchBaseline(b, benchResp)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Marginals()
	}
}

// --- T2: test selection -----------------------------------------------------

func BenchmarkHalvingSelectSBGT(b *testing.B) {
	m := benchModel(b, 0, 0, benchResp)
	if err := m.Update(bitvec.Full(8), dilution.Positive); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		halving.Select(m, halving.Options{MaxPool: 32})
	}
}

func BenchmarkHalvingSelectBaseline(b *testing.B) {
	m := benchBaseline(b, benchResp)
	if err := m.Update(bitvec.Full(8), dilution.Positive); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.SelectHalving(32)
	}
}

// --- T3: statistical analyses ------------------------------------------------

func studyCfg() stats.StudyConfig {
	return stats.StudyConfig{
		RiskGen:    func(*rng.Source) []float64 { return workload.UniformRisks(10, 0.05) },
		Response:   benchResp,
		Replicates: 16,
		Seed:       1,
	}
}

func BenchmarkStudyParallel(b *testing.B) {
	pool := engine.NewPool(0)
	defer pool.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := stats.Run(pool, studyCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStudySerial(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := stats.RunSerial(studyCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

// --- F1: strong scaling -------------------------------------------------------

func benchStrongScaling(b *testing.B, workers int) {
	m := benchModel(b, workers, 0, flatResp)
	pm := bitvec.Full(benchN)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.Update(pm, outcomes[i%2]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStrongScalingW1(b *testing.B) { benchStrongScaling(b, 1) }
func BenchmarkStrongScalingW2(b *testing.B) { benchStrongScaling(b, 2) }
func BenchmarkStrongScalingW4(b *testing.B) { benchStrongScaling(b, 4) }

// --- F3: one full surveillance session ----------------------------------------

func BenchmarkSurveillanceSession(b *testing.B) {
	eng := sbgt.NewEngine(0)
	defer eng.Close()
	risks := sbgt.UniformRisks(12, 0.05)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := sbgt.NewRand(uint64(i))
		popu := sbgt.DrawPopulation(risks, r)
		oracle := sbgt.NewOracle(popu, benchResp, r)
		sess, err := eng.NewSession(sbgt.Config{Risks: risks, Response: benchResp})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sess.Run(oracle.Test); err != nil {
			b.Fatal(err)
		}
	}
}

// --- F6: distributed kernels ----------------------------------------------------

func BenchmarkClusterUpdate(b *testing.B) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	exec := cluster.NewExecutor(0)
	go func() { _ = exec.Serve(l) }()
	defer func() { l.Close(); exec.Close() }()
	m, err := cluster.Dial([]string{l.Addr().String()},
		workload.UniformRisks(benchN, 0.05), flatResp, 2*time.Second)
	if err != nil {
		b.Fatal(err)
	}
	defer m.Close()
	pm := bitvec.Full(benchN)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.Update(pm, outcomes[i%2]); err != nil {
			b.Fatal(err)
		}
	}
}

// --- A1: partition granularity ----------------------------------------------------

func benchPartitionGrain(b *testing.B, partsPerWorker int) {
	pool := engine.NewPool(0)
	defer pool.Close()
	m, err := lattice.New(pool, lattice.Config{
		Risks:    workload.UniformRisks(benchN, 0.05),
		Response: flatResp,
		Parts:    pool.Workers() * partsPerWorker,
	})
	if err != nil {
		b.Fatal(err)
	}
	pm := bitvec.Full(benchN)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.Update(pm, outcomes[i%2]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPartitionGrain1(b *testing.B)  { benchPartitionGrain(b, 1) }
func BenchmarkPartitionGrain16(b *testing.B) { benchPartitionGrain(b, 16) }

// --- A2: kernel fusion -----------------------------------------------------------

func BenchmarkFusionFused(b *testing.B) {
	m := benchModel(b, 0, 0, flatResp)
	pm := bitvec.Full(benchN)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.Update(pm, outcomes[i%2]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFusionTwoPass(b *testing.B) {
	m := benchModel(b, 0, 0, flatResp)
	pm := bitvec.Full(benchN)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.UpdateTwoPass(pm, outcomes[i%2])
	}
}
