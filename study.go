package sbgt

import (
	"repro/internal/bitvec"
	"repro/internal/core"
	"repro/internal/stats"
)

// StudyConfig describes a Monte-Carlo surveillance study; see
// stats.StudyConfig for field semantics.
type StudyConfig = stats.StudyConfig

// StudyResult holds per-replicate study metrics.
type StudyResult = stats.StudyResult

// StudySummary aggregates a study for reporting.
type StudySummary = stats.Summary

// Confusion tallies classification outcomes against truth.
type Confusion = stats.Confusion

// RunStudy executes the study with replicates fanned out across the
// engine's workers. Results are deterministic for a fixed seed and
// identical to RunStudySerial.
func (e *Engine) RunStudy(cfg StudyConfig) (*StudyResult, error) {
	return stats.Run(e.pool, cfg)
}

// RunStudySerial executes the study on the calling goroutine.
func RunStudySerial(cfg StudyConfig) (*StudyResult, error) {
	return stats.RunSerial(cfg)
}

// EvaluateResult scores a session result against a known truth.
func EvaluateResult(res *core.Result, truth bitvec.Mask) Confusion {
	return stats.Evaluate(res, truth)
}
