GO ?= go

.PHONY: build test lint vet race fuzz ci bench-baseline bench-check serve-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Repo-invariant static analysis (nine analyzers; `sbgt-lint -list`
# describes them). -audit also fails on stale //lint:allow waivers, and
# the second pass fails on stale entries in lint-baseline.json. Exits
# non-zero on any fresh diagnostic.
lint:
	$(GO) run ./cmd/sbgt-lint -audit ./...
	$(GO) run ./cmd/sbgt-lint -baseline-check ./...

# Race-detector pass over the packages that own goroutines, plus the
# backend conformance suite (which drives the cluster backend end to end
# over loopback TCP). Short mode keeps the statistical loops out.
race:
	$(GO) test -race -short ./internal/engine ./internal/cluster ./internal/bench ./internal/posterior ./internal/core ./internal/obs ./internal/obs/profiler

# Short fuzz smoke over the numeric-kernel and lint-input invariants.
fuzz:
	$(GO) test ./internal/prob -run FuzzLogSumExp -fuzz FuzzLogSumExp -fuzztime 10s
	$(GO) test ./internal/bitvec -run FuzzBitVecRoundTrip -fuzz FuzzBitVecRoundTrip -fuzztime 10s
	$(GO) test ./internal/analysis -run xxx -fuzz FuzzAllowParser -fuzztime 10s
	$(GO) test ./internal/analysis -run xxx -fuzz FuzzBaselineReader -fuzztime 10s
	$(GO) test ./internal/core -run xxx -fuzz FuzzSessionCheckpointLoad -fuzztime 10s

# Perf-regression harness (the BENCH trajectory). BENCH_EXPS picks the
# experiments, BENCH_RATIO the slowdown bound sbgt-benchdiff applies,
# BENCH_FILE the committed baseline being tracked (BENCH_4.json is the
# current head of the trajectory, adding the S1P continuous-profiler
# overhead experiment; BENCH_3.json and earlier are the points it is
# diffed against in EXPERIMENTS.md).
BENCH_EXPS ?= T1,F6,A5,S1,S1R,S1P
BENCH_RATIO ?= 1.5
BENCH_FILE ?= BENCH_4.json

# Record the committed baseline: run the bench experiments quick and
# write $(BENCH_FILE) (wall times + registry snapshot + git SHA).
bench-baseline:
	$(GO) run ./cmd/sbgt-bench -exp $(BENCH_EXPS) -quick -baseline $(BENCH_FILE)

# Compare a fresh run against the committed baseline; exits non-zero on
# regression beyond the thresholds.
bench-check:
	$(GO) run ./cmd/sbgt-bench -exp $(BENCH_EXPS) -quick -baseline BENCH_new.json >/dev/null
	$(GO) run ./cmd/sbgt-benchdiff -ratio $(BENCH_RATIO) $(BENCH_FILE) BENCH_new.json

# End-to-end smoke of the surveillance service: boot sbgt-serve, drive
# cohorts to classification over HTTP, scrape /metrics, SIGTERM-drain,
# and require a clean exit with the open cohort checkpointed.
serve-smoke:
	./scripts/serve_smoke.sh

# The full gate, identical to .github/workflows/ci.yml.
ci:
	./scripts/ci.sh
