GO ?= go

.PHONY: build test lint vet race fuzz ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Repo-invariant static analysis (determinism, concurrency, floats,
# errcheck). Exits non-zero on any diagnostic.
lint:
	$(GO) run ./cmd/sbgt-lint ./...

# Race-detector pass over the packages that own goroutines, plus the
# backend conformance suite (which drives the cluster backend end to end
# over loopback TCP). Short mode keeps the statistical loops out.
race:
	$(GO) test -race -short ./internal/engine ./internal/cluster ./internal/bench ./internal/posterior ./internal/core

# Short fuzz smoke over the numeric-kernel invariants.
fuzz:
	$(GO) test ./internal/prob -run FuzzLogSumExp -fuzz FuzzLogSumExp -fuzztime 10s
	$(GO) test ./internal/bitvec -run FuzzBitVecRoundTrip -fuzz FuzzBitVecRoundTrip -fuzztime 10s

# The full gate, identical to .github/workflows/ci.yml.
ci:
	./scripts/ci.sh
