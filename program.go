package sbgt

import (
	"repro/internal/program"
	"repro/internal/rng"
)

// CampaignConfig configures a population-scale screening campaign; see
// program.Config for field semantics.
type CampaignConfig = program.Config

// CampaignResult aggregates a population campaign.
type CampaignResult = program.Result

// Campaign assignment modes.
const (
	// AssignSorted bins the population by ascending prior risk (default).
	AssignSorted = program.AssignSorted
	// AssignContiguous bins subjects in population order (fixed tube order).
	AssignContiguous = program.AssignContiguous
)

// PoolTest runs one physical pooled test on population-level subject
// indices; it must be safe for concurrent use (cohorts run in parallel).
type PoolTest = program.PoolTest

// LargePopulation couples risks with a realized truth for populations of
// any size (the >64-subject analogue of Population).
type LargePopulation = program.Population

// LargeOracle is the concurrent-safe simulated lab for large populations.
type LargeOracle = program.Oracle

// RunCampaign screens an arbitrarily large population: it bins subjects
// into lattice-sized cohorts, runs one Bayesian session per cohort fanned
// out across the engine's workers, and aggregates the per-subject calls.
func (e *Engine) RunCampaign(cfg CampaignConfig, test PoolTest) (*CampaignResult, error) {
	return program.Run(e.pool, cfg, test)
}

// DrawLargePopulation realizes an infection truth for a population of any
// size.
func DrawLargePopulation(risks []float64, r *Rand) LargePopulation {
	return program.DrawPopulation(risks, r)
}

// NewLargeOracle builds the simulated lab for a large population.
func NewLargeOracle(p LargePopulation, resp Response, r *rng.Source) *LargeOracle {
	return program.NewOracle(p, resp, r)
}
