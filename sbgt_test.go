package sbgt_test

import (
	"math"
	"net"
	"testing"
	"time"

	sbgt "repro"
	"repro/internal/cluster"
)

func newEngine(t *testing.T) *sbgt.Engine {
	t.Helper()
	e := sbgt.NewEngine(4)
	t.Cleanup(e.Close)
	return e
}

func TestPublicQuickstartFlow(t *testing.T) {
	eng := newEngine(t)
	r := sbgt.NewRand(1)
	risks := sbgt.UniformRisks(12, 0.05)
	popu := sbgt.DrawPopulation(risks, r)
	oracle := sbgt.NewOracle(popu, sbgt.IdealTest(), r)
	sess, err := eng.NewSession(sbgt.Config{Risks: risks, Response: sbgt.IdealTest()})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sess.Run(oracle.Test)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Positives(); got != popu.Truth {
		t.Fatalf("classified %v, truth %v", got, popu.Truth)
	}
	if res.TestsPerSubject() >= 1 {
		t.Fatalf("no pooling savings: %v tests/subject", res.TestsPerSubject())
	}
}

func TestSubjectsHelpers(t *testing.T) {
	s := sbgt.Subjects(0, 2)
	if !s.Has(0) || s.Has(1) || !s.Has(2) {
		t.Fatalf("Subjects(0,2) = %v", s)
	}
	if got := sbgt.AllSubjects(5).Count(); got != 5 {
		t.Fatalf("AllSubjects(5) has %d members", got)
	}
}

func TestResponseConstructors(t *testing.T) {
	responses := []sbgt.Response{
		sbgt.IdealTest(),
		sbgt.BinaryTest(0.95, 0.99),
		sbgt.HyperbolicDilutionTest(0.98, 0.99, 0.3),
		sbgt.LogisticDilutionTest(0.98, 0.99, 4, 1.5),
		sbgt.SubsampleDilutionTest(0.95, 0.99),
		sbgt.CtTest(),
		sbgt.CtTestParams(22, 1, 1.5, 40, 0.999, 5),
	}
	for _, resp := range responses {
		if resp.Name() == "" {
			t.Errorf("%T: empty name", resp)
		}
		// Binary likelihoods at a clean pool must be a distribution.
		pos := resp.Likelihood(sbgt.Positive, 1, 4)
		if pos < 0 || pos > 1 {
			t.Errorf("%s: P(pos|1,4) = %v", resp.Name(), pos)
		}
	}
}

func TestRawModelAndSelection(t *testing.T) {
	eng := newEngine(t)
	m, err := eng.NewModel(sbgt.UniformRisks(10, 0.08), sbgt.IdealTest())
	if err != nil {
		t.Fatal(err)
	}
	sel := sbgt.SelectPool(m, 8, false)
	if sel.Pool == 0 || sel.Pool.Count() > 8 {
		t.Fatalf("selection %v", sel.Pool)
	}
	sels := sbgt.SelectPools(m, 2, 8)
	if len(sels) != 2 {
		t.Fatalf("lookahead returned %d pools", len(sels))
	}
	if err := m.Update(sel.Pool, sbgt.Negative); err != nil {
		t.Fatal(err)
	}
	marg := m.Marginals()
	for _, i := range sel.Pool.Indices() {
		if marg[i] != 0 {
			t.Fatalf("marginal[%d] = %v after ideal negative", i, marg[i])
		}
	}
}

func TestStrategies(t *testing.T) {
	eng := newEngine(t)
	for _, strat := range []sbgt.Strategy{
		sbgt.HalvingStrategy(8, true),
		sbgt.IndividualStrategy(),
		sbgt.DorfmanStrategy(4),
	} {
		r := sbgt.NewRand(3)
		risks := sbgt.UniformRisks(8, 0.1)
		popu := sbgt.DrawPopulation(risks, r)
		oracle := sbgt.NewOracle(popu, sbgt.IdealTest(), r)
		sess, err := eng.NewSession(sbgt.Config{Risks: risks, Response: sbgt.IdealTest(), Strategy: strat})
		if err != nil {
			t.Fatalf("%s: %v", strat.Name(), err)
		}
		res, err := sess.Run(oracle.Test)
		if err != nil {
			t.Fatalf("%s: %v", strat.Name(), err)
		}
		if got := res.Positives(); got != popu.Truth {
			t.Fatalf("%s misclassified: %v vs %v", strat.Name(), got, popu.Truth)
		}
	}
}

func TestStudyThroughPublicAPI(t *testing.T) {
	eng := newEngine(t)
	cfg := sbgt.StudyConfig{
		RiskGen:    func(r *sbgt.Rand) []float64 { return sbgt.UniformRisks(10, 0.05) },
		Response:   sbgt.IdealTest(),
		Replicates: 10,
		Seed:       9,
	}
	res, err := eng.RunStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sum := res.Summarize()
	if sum.Accuracy != 1 {
		t.Fatalf("accuracy = %v", sum.Accuracy)
	}
	ser, err := sbgt.RunStudySerial(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ser.Summarize() != sum {
		t.Fatal("serial study summary diverged from parallel")
	}
}

func TestHouseholdAndBetaRisks(t *testing.T) {
	r := sbgt.NewRand(5)
	hh := sbgt.HouseholdRisks(12, 4, 0.3, 0.01, 0.4, r)
	if len(hh) != 12 {
		t.Fatalf("household risks length %d", len(hh))
	}
	bb := sbgt.BetaRisks(12, 2, 20, r)
	for _, p := range bb {
		if !(p > 0 && p < 1) {
			t.Fatalf("beta risk %v out of range", p)
		}
	}
}

func TestClusterThroughPublicAPI(t *testing.T) {
	// One in-process executor on loopback.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	exec := cluster.NewExecutor(2)
	go func() { _ = exec.Serve(l) }()
	t.Cleanup(func() { l.Close(); exec.Close() })

	risks := sbgt.UniformRisks(8, 0.1)
	m, err := sbgt.DialCluster([]string{l.Addr().String()}, risks, sbgt.IdealTest(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if err := m.Update(sbgt.Subjects(0, 1, 2), sbgt.Negative); err != nil {
		t.Fatal(err)
	}
	marg, err := m.Marginals()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if marg[i] != 0 {
			t.Fatalf("cluster marginal[%d] = %v", i, marg[i])
		}
	}
	if math.Abs(marg[4]-0.1) > 1e-9 {
		t.Fatalf("untested marginal = %v", marg[4])
	}
}

func TestEvaluateResultPublic(t *testing.T) {
	eng := newEngine(t)
	r := sbgt.NewRand(11)
	risks := sbgt.UniformRisks(9, 0.1)
	popu := sbgt.DrawPopulation(risks, r)
	oracle := sbgt.NewOracle(popu, sbgt.IdealTest(), r)
	sess, err := eng.NewSession(sbgt.Config{Risks: risks, Response: sbgt.IdealTest()})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sess.Run(oracle.Test)
	if err != nil {
		t.Fatal(err)
	}
	c := sbgt.EvaluateResult(res, popu.Truth)
	if c.Accuracy() != 1 {
		t.Fatalf("accuracy = %v", c.Accuracy())
	}
	if c.Total() != 9 {
		t.Fatalf("total = %d", c.Total())
	}
}
