#!/usr/bin/env sh
# End-to-end smoke of cmd/sbgt-serve: boot the server on an ephemeral
# port, drive a small cohort population to classification over HTTP with
# the built-in load client (which reconciles every classification against
# drawn truth and the server's test counters against the client's sent
# count), walk the API once with curl, scrape the metrics endpoint, then
# SIGTERM the process and require a clean drain: exit status 0 and the
# still-open cohort checkpointed to disk.
set -eu

cd "$(dirname "$0")/.."

dir=$(mktemp -d)
pid=
trap 'status=$?; [ -n "$pid" ] && kill "$pid" 2>/dev/null; rm -rf "$dir"; exit $status' EXIT INT TERM

echo '== build =='
go build -o "$dir/sbgt-serve" ./cmd/sbgt-serve

echo '== start =='
"$dir/sbgt-serve" -addr 127.0.0.1:0 -addr-file "$dir/addr.txt" -ckpt-dir "$dir/ckpt" \
  >"$dir/serve.log" 2>&1 &
pid=$!
i=0
while [ ! -s "$dir/addr.txt" ]; do
  i=$((i + 1))
  [ "$i" -le 100 ] || { echo 'server never wrote its address'; cat "$dir/serve.log"; exit 1; }
  kill -0 "$pid" 2>/dev/null || { echo 'server died on startup'; cat "$dir/serve.log"; exit 1; }
  sleep 0.1
done
base="http://$(cat "$dir/addr.txt")"
echo "listening at $base"

echo '== load drive (25 cohorts to classification, reconciled) =='
"$dir/sbgt-serve" -loadtest -target "$base" -cohorts 25 -subjects 6 -load-workers 8 \
  | tee "$dir/load.json"
grep -q '"misclassified": 0' "$dir/load.json"

echo '== curl walk (create a cohort, leave its proposal open) =='
id=$(curl -sSf -X POST "$base/v1/cohorts" \
  -d '{"tenant":"smoke","risks":[0.02,0.02,0.1,0.02]}' \
  | sed -n 's/.*"id":"\([^"]*\)".*/\1/p')
[ -n "$id" ] || { echo 'create returned no id'; exit 1; }
curl -sSf "$base/v1/cohorts/$id/pools" | grep -q '"pools"'
curl -sSf "$base/v1/cohorts/$id" | grep -q '"tenant":"smoke"'

echo '== observability =='
curl -sSf "$base/readyz" | grep -q ok
curl -sSf "$base/metrics" >"$dir/metrics.txt"
for series in sbgt_serve_requests_total sbgt_serve_cohorts_created_total sbgt_serve_results_total; do
  grep -q "^$series" "$dir/metrics.txt" || { echo "missing metric $series"; exit 1; }
done

echo '== flight recorder (request events with trace IDs after the load drive) =='
curl -sSf "$base/debug/flight" >"$dir/flight.json"
grep -q '"kind": "request"' "$dir/flight.json" || { echo 'no request events in /debug/flight'; exit 1; }
# At least one request event must carry a resolvable (nonzero) trace ID.
grep -q '"trace_id": [1-9]' "$dir/flight.json" || { echo 'no nonzero trace_id in flight events'; exit 1; }

echo '== OpenMetrics negotiation (exemplar-capable exposition) =='
curl -sSf -H 'Accept: application/openmetrics-text' "$base/metrics" >"$dir/openmetrics.txt"
grep -q '^# EOF' "$dir/openmetrics.txt" || { echo 'OpenMetrics exposition missing # EOF'; exit 1; }
grep -q 'trace_id=' "$dir/openmetrics.txt" || { echo 'no exemplars in OpenMetrics exposition'; exit 1; }

echo '== sbgt-top (one frame against the live server) =='
go run ./cmd/sbgt-top -target "$base" -once >"$dir/top.txt"
grep -q 'requests' "$dir/top.txt" || { echo 'sbgt-top rendered nothing'; cat "$dir/top.txt"; exit 1; }
grep -q 'flight:' "$dir/top.txt" || { echo 'sbgt-top missing flight section'; cat "$dir/top.txt"; exit 1; }

echo '== sbgt-metriclint (naming + cardinality over the live registry) =='
curl -sSf "$base/metrics.json" >"$dir/metrics.json"
go run ./cmd/sbgt-metriclint "$dir/metrics.json"

echo '== drain on SIGTERM =='
kill -TERM "$pid"
wait "$pid" || { echo 'server exited non-zero'; cat "$dir/serve.log"; exit 1; }
pid=
grep -q 'drain complete' "$dir/serve.log"
[ -f "$dir/ckpt/$id.ckpt" ] || { echo "no checkpoint for open cohort $id"; ls "$dir/ckpt" || true; exit 1; }

echo 'serve smoke passed.'
