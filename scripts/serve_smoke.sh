#!/usr/bin/env sh
# End-to-end smoke of cmd/sbgt-serve: boot the server on an ephemeral
# port, drive a small cohort population to classification over HTTP with
# the built-in load client (which reconciles every classification against
# drawn truth and the server's test counters against the client's sent
# count), walk the API once with curl, scrape the metrics endpoint, run
# the forensic chain (impossible SLO -> anomaly dump -> profile bundle on
# /debug/profiles -> sbgt-profdiff against a quiet baseline), then
# SIGTERM the process and require a clean drain: exit status 0 and the
# still-open cohort checkpointed to disk.
#
# Set SMOKE_OUT to a directory to keep the captured artifacts (logs,
# metrics, flight dump, profile bundles) after the run — CI uploads them.
set -eu

cd "$(dirname "$0")/.."

dir=$(mktemp -d)
pid=
finish() {
  status=$?
  [ -n "$pid" ] && kill "$pid" 2>/dev/null
  if [ -n "${SMOKE_OUT:-}" ]; then
    mkdir -p "$SMOKE_OUT"
    cp -r "$dir"/*.log "$dir"/*.json "$dir"/*.txt "$dir/profiles" "$SMOKE_OUT"/ 2>/dev/null || true
  fi
  rm -rf "$dir"
  exit $status
}
trap finish EXIT INT TERM

echo '== build =='
go build -o "$dir/sbgt-serve" ./cmd/sbgt-serve

echo '== start (continuous profiler on, impossible p99 objective to induce one anomaly) =='
"$dir/sbgt-serve" -addr 127.0.0.1:0 -addr-file "$dir/addr.txt" -ckpt-dir "$dir/ckpt" \
  -profile-dir "$dir/profiles" -profile-interval 1s -profile-cpu-window 100ms \
  -slo-p99 1ns -slo-interval 1s \
  >"$dir/serve.log" 2>&1 &
pid=$!
i=0
while [ ! -s "$dir/addr.txt" ]; do
  i=$((i + 1))
  [ "$i" -le 100 ] || { echo 'server never wrote its address'; cat "$dir/serve.log"; exit 1; }
  kill -0 "$pid" 2>/dev/null || { echo 'server died on startup'; cat "$dir/serve.log"; exit 1; }
  sleep 0.1
done
base="http://$(cat "$dir/addr.txt")"
echo "listening at $base"

echo '== quiet profile baseline (first background sample, before any load) =='
# Wait for the background sampler's first bundle and pull it down now —
# retention rotates samples away, and the load drive is about to dirty
# the process. This is the "last known good" side of the flame diff.
i=0
quiet=
while [ -z "$quiet" ]; do
  i=$((i + 1))
  [ "$i" -le 100 ] || { echo 'no background sample bundle appeared'; cat "$dir/serve.log"; exit 1; }
  curl -sf "$base/debug/profiles" >"$dir/profindex.json" || true
  quiet=$(awk -F'"' '/"id":/ {id=$4} /"class": "sample"/ {print id; exit}' "$dir/profindex.json" 2>/dev/null || true)
  [ -n "$quiet" ] || sleep 0.2
done
mkdir -p "$dir/quiet/$quiet"
curl -sSf "$base/debug/profiles/$quiet" >"$dir/quiet/$quiet/meta.json"
curl -sSf "$base/debug/profiles/$quiet/cpu.pprof" >"$dir/quiet/$quiet/cpu.pprof"
echo "quiet baseline bundle: $quiet"

echo '== load drive (25 cohorts to classification, reconciled) =='
"$dir/sbgt-serve" -loadtest -target "$base" -cohorts 25 -subjects 6 -load-workers 8 \
  | tee "$dir/load.json"
grep -q '"misclassified": 0' "$dir/load.json"

echo '== curl walk (create a cohort, leave its proposal open) =='
id=$(curl -sSf -X POST "$base/v1/cohorts" \
  -d '{"tenant":"smoke","risks":[0.02,0.02,0.1,0.02]}' \
  | sed -n 's/.*"id":"\([^"]*\)".*/\1/p')
[ -n "$id" ] || { echo 'create returned no id'; exit 1; }
curl -sSf "$base/v1/cohorts/$id/pools" | grep -q '"pools"'
curl -sSf "$base/v1/cohorts/$id" | grep -q '"tenant":"smoke"'

echo '== observability =='
curl -sSf "$base/readyz" | grep -q ok
curl -sSf "$base/metrics" >"$dir/metrics.txt"
for series in sbgt_serve_requests_total sbgt_serve_cohorts_created_total sbgt_serve_results_total; do
  grep -q "^$series" "$dir/metrics.txt" || { echo "missing metric $series"; exit 1; }
done

echo '== flight recorder (request events with trace IDs after the load drive) =='
curl -sSf "$base/debug/flight" >"$dir/flight.json"
grep -q '"kind": "request"' "$dir/flight.json" || { echo 'no request events in /debug/flight'; exit 1; }
# At least one request event must carry a resolvable (nonzero) trace ID.
grep -q '"trace_id": [1-9]' "$dir/flight.json" || { echo 'no nonzero trace_id in flight events'; exit 1; }

echo '== forensic chain (SLO breach -> anomaly ID -> profile bundle -> flame diff) =='
# The impossible p99 objective breached during the load drive, so the
# flight recorder froze a dump and the profiler froze a bundle stamped
# with the same anomaly ID. Resolve the chain from the outside in.
i=0
anom=
while [ -z "$anom" ]; do
  i=$((i + 1))
  [ "$i" -le 150 ] || { echo 'no anomaly profile bundle appeared'; cat "$dir/serve.log"; exit 1; }
  curl -sf "$base/debug/profiles" >"$dir/profindex.json" || true
  anom=$(awk -F'"' '/"id":/ {id=$4} /"anomaly_id":/ {print id; exit}' "$dir/profindex.json" 2>/dev/null || true)
  [ -n "$anom" ] || sleep 0.2
done
anom_id=$(awk -F'"' '/"anomaly_id":/ {print $4; exit}' "$dir/profindex.json")
echo "anomaly $anom_id captured as bundle $anom"
# The same anomaly ID resolves to a dump on /debug/flight.
curl -sSf "$base/debug/flight" >"$dir/flight.json"
grep -q "\"id\": \"$anom_id\"" "$dir/flight.json" || { echo "anomaly $anom_id has no dump in /debug/flight"; exit 1; }
# Pull the bundle the way a remote operator would and flame-diff it.
mkdir -p "$dir/anom/$anom"
curl -sSf "$base/debug/profiles/$anom" >"$dir/anom/$anom/meta.json"
curl -sSf "$base/debug/profiles/$anom/cpu.pprof" >"$dir/anom/$anom/cpu.pprof"
go build -o "$dir/sbgt-profdiff" ./cmd/sbgt-profdiff
# Self-diff is the stable-exit contract: same bundle, exit 0, no noise.
"$dir/sbgt-profdiff" "$dir/anom/$anom" "$dir/anom/$anom" >/dev/null
# Quiet-vs-anomaly must parse both bundles and exit 0 (clean) or 1
# (regressions found) — anything else means an unreadable bundle.
rc=0
"$dir/sbgt-profdiff" "$dir/quiet/$quiet" "$dir/anom/$anom" >"$dir/profdiff.txt" || rc=$?
[ "$rc" -le 1 ] || { echo "sbgt-profdiff could not diff the bundles (exit $rc)"; cat "$dir/profdiff.txt"; exit 1; }
sed -n '1,8p' "$dir/profdiff.txt"

echo '== OpenMetrics negotiation (exemplar-capable exposition) =='
curl -sSf -H 'Accept: application/openmetrics-text' "$base/metrics" >"$dir/openmetrics.txt"
grep -q '^# EOF' "$dir/openmetrics.txt" || { echo 'OpenMetrics exposition missing # EOF'; exit 1; }
grep -q 'trace_id=' "$dir/openmetrics.txt" || { echo 'no exemplars in OpenMetrics exposition'; exit 1; }

echo '== sbgt-top (one frame against the live server) =='
go run ./cmd/sbgt-top -target "$base" -once >"$dir/top.txt"
grep -q 'requests' "$dir/top.txt" || { echo 'sbgt-top rendered nothing'; cat "$dir/top.txt"; exit 1; }
grep -q 'flight:' "$dir/top.txt" || { echo 'sbgt-top missing flight section'; cat "$dir/top.txt"; exit 1; }
grep -q 'profiles:' "$dir/top.txt" || { echo 'sbgt-top missing profiles section'; cat "$dir/top.txt"; exit 1; }

echo '== sbgt-metriclint (naming + cardinality over the live registry) =='
curl -sSf "$base/metrics.json" >"$dir/metrics.json"
go run ./cmd/sbgt-metriclint "$dir/metrics.json"

echo '== drain on SIGTERM =='
kill -TERM "$pid"
wait "$pid" || { echo 'server exited non-zero'; cat "$dir/serve.log"; exit 1; }
pid=
grep -q 'drain complete' "$dir/serve.log"
[ -f "$dir/ckpt/$id.ckpt" ] || { echo "no checkpoint for open cohort $id"; ls "$dir/ckpt" || true; exit 1; }

echo 'serve smoke passed.'
