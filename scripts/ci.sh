#!/usr/bin/env sh
# Full CI gate: build, vet, repo-invariant lint, tests, race tests, fuzz
# smoke. Mirrors .github/workflows/ci.yml so the same gate runs locally via
# `make ci`. Fails on the first broken step.
set -eu

cd "$(dirname "$0")/.."

echo '== go build =='
go build ./...

echo '== go vet =='
go vet ./...

echo '== sbgt-lint (waiver audit + baseline check) =='
go run ./cmd/sbgt-lint -audit ./...
go run ./cmd/sbgt-lint -baseline-check ./...

echo '== go test =='
go test ./...

echo '== go test -race (concurrency substrate + backend conformance + obs) =='
go test -race -short ./internal/engine ./internal/cluster ./internal/bench ./internal/posterior ./internal/core ./internal/obs ./internal/obs/profiler

echo '== fuzz smoke (10s each) =='
go test ./internal/prob -run FuzzLogSumExp -fuzz FuzzLogSumExp -fuzztime 10s
go test ./internal/bitvec -run FuzzBitVecRoundTrip -fuzz FuzzBitVecRoundTrip -fuzztime 10s
go test ./internal/obs -run FuzzTraceContextRoundTrip -fuzz FuzzTraceContextRoundTrip -fuzztime 10s
go test ./internal/analysis -run xxx -fuzz FuzzAllowParser -fuzztime 10s
go test ./internal/analysis -run xxx -fuzz FuzzBaselineReader -fuzztime 10s
go test ./internal/core -run xxx -fuzz FuzzSessionCheckpointLoad -fuzztime 10s

echo '== serve smoke (boot sbgt-serve, drive over HTTP, drain on SIGTERM) =='
./scripts/serve_smoke.sh

echo '== bench smoke (quick, vs committed baseline, 5x bound) =='
go run ./cmd/sbgt-bench -exp T1,F6,A5,S1,S1R,S1P -quick -baseline BENCH_new.json > /dev/null
go run ./cmd/sbgt-benchdiff -ratio 5 BENCH_4.json BENCH_new.json

echo '== sbgt-metriclint (metric naming + cardinality contract over the bench snapshot) =='
go run ./cmd/sbgt-metriclint BENCH_new.json
rm -f BENCH_new.json

echo 'CI gate passed.'
