package sbgt_test

import (
	"bytes"
	"math"
	"testing"

	sbgt "repro"
)

func TestModelCheckpointPublic(t *testing.T) {
	eng := newEngine(t)
	m, err := eng.NewModel(sbgt.UniformRisks(8, 0.1), sbgt.BinaryTest(0.95, 0.99))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Update(sbgt.Subjects(0, 1, 2), sbgt.Positive); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := sbgt.SaveModel(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := eng.LoadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	a, b := m.Marginals(), got.Marginals()
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-12 {
			t.Fatalf("marginal[%d]: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestSessionCheckpointPublic(t *testing.T) {
	eng := newEngine(t)
	r := sbgt.NewRand(12)
	risks := sbgt.UniformRisks(10, 0.08)
	popu := sbgt.DrawPopulation(risks, r)
	oracle := sbgt.NewOracle(popu, sbgt.IdealTest(), r)
	sess, err := eng.NewSession(sbgt.Config{Risks: risks, Response: sbgt.IdealTest()})
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Step(oracle.Test); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := sbgt.SaveSession(&buf, sess); err != nil {
		t.Fatal(err)
	}
	restored, err := eng.LoadSession(&buf, nil)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Stage() != sess.Stage() || restored.Remaining() != sess.Remaining() {
		t.Fatalf("restored session state differs: stage %d/%d remaining %d/%d",
			restored.Stage(), sess.Stage(), restored.Remaining(), sess.Remaining())
	}
	res, err := restored.Run(oracle.Test)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Positives(); got != popu.Truth {
		t.Fatalf("resumed campaign classified %v, truth %v", got, popu.Truth)
	}
}

func TestCampaignPublic(t *testing.T) {
	eng := newEngine(t)
	risks := sbgt.UniformRisks(50, 0.05) // crosses cohort boundaries
	// Extend beyond 64 subjects to prove population scale.
	for i := 0; i < 30; i++ {
		risks = append(risks, 0.05)
	}
	r := sbgt.NewRand(31)
	popu := sbgt.DrawLargePopulation(risks, r)
	oracle := sbgt.NewLargeOracle(popu, sbgt.IdealTest(), r)
	res, err := eng.RunCampaign(sbgt.CampaignConfig{
		Risks:      risks,
		Response:   sbgt.IdealTest(),
		CohortSize: 12,
		Assignment: sbgt.AssignSorted,
	}, oracle.Test)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cohorts != (80+11)/12 {
		t.Fatalf("cohorts = %d", res.Cohorts)
	}
	for g, call := range res.Classifications {
		want := popu.Infected[g]
		if (call.Status == sbgt.StatusPositive) != want {
			t.Fatalf("subject %d misclassified", g)
		}
	}
	if res.TestsPerSubject() >= 1 {
		t.Fatalf("no pooling savings: %v", res.TestsPerSubject())
	}
}

func TestSparseModelPublic(t *testing.T) {
	m, err := sbgt.NewSparseModel(sbgt.SparseConfig{
		Risks:    sbgt.UniformRisks(40, 0.02),
		Response: sbgt.IdealTest(),
		Eps:      1e-10,
	})
	if err != nil {
		t.Fatal(err)
	}
	sel, err := sbgt.SelectPoolSparse(m, 16, false)
	if err != nil {
		t.Fatal(err)
	}
	if sel.Pool == 0 || sel.Pool.Count() > 16 {
		t.Fatalf("sparse selection %v", sel.Pool)
	}
	if err := m.Update(sel.Pool, sbgt.Negative); err != nil {
		t.Fatal(err)
	}
	for _, idx := range sel.Pool.Indices() {
		if g := m.Marginals()[idx]; g != 0 {
			t.Fatalf("marginal[%d] = %v after ideal negative", idx, g)
		}
	}
	// The prior tail (many-positive states) below eps carries ~1e-4 mass
	// at this size; the bound must stay small but won't be zero.
	if m.Pruned() > 1e-2 {
		t.Fatalf("pruned bound %v unexpectedly large", m.Pruned())
	}
}

func TestCredibleSetPublic(t *testing.T) {
	eng := newEngine(t)
	m, err := eng.NewModel(sbgt.UniformRisks(8, 0.1), sbgt.BinaryTest(0.95, 0.99))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Update(sbgt.Subjects(0, 1), sbgt.Positive); err != nil {
		t.Fatal(err)
	}
	set, mass := m.CredibleSet(0.95)
	if len(set) == 0 || mass < 0.95 {
		t.Fatalf("credible set %d states covering %v", len(set), mass)
	}
	// The MAP state leads the set.
	mapState, _ := m.MAP()
	if set[0] != mapState {
		t.Fatalf("set starts at %v, MAP is %v", set[0], mapState)
	}
}

func TestEpidemicPublic(t *testing.T) {
	r := sbgt.NewRand(77)
	epi := sbgt.NewEpidemic(12, 0.1, 0.02, 0.3, 0.01, r)
	if epi.N() != 12 {
		t.Fatalf("N = %d", epi.N())
	}
	marg := make([]float64, 12)
	for i := range marg {
		marg[i] = 0.1
	}
	risks := epi.NextRoundRisks(marg)
	for _, p := range risks {
		if !(p > 0 && p < 1) {
			t.Fatalf("handed-off risk %v invalid", p)
		}
	}
	epi.Advance()
	if p := epi.Prevalence(); p < 0 || p > 1 {
		t.Fatalf("prevalence %v", p)
	}
}
