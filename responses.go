package sbgt

import "repro/internal/dilution"

// IdealTest returns the error-free assay: positive iff the pool contains
// an infected specimen.
func IdealTest() Response { return dilution.Ideal{} }

// BinaryTest returns a fixed sensitivity/specificity assay with no
// dilution dependence.
func BinaryTest(sens, spec float64) Response {
	return dilution.Binary{Sens: sens, Spec: spec}
}

// HyperbolicDilutionTest returns Hwang's dilution model: sensitivity for a
// pool with k of n infected is maxSens·k/(k + d·(n−k)). d in (0,1] sets
// dilution severity (0 disables dilution).
func HyperbolicDilutionTest(maxSens, spec, d float64) Response {
	return dilution.Hyperbolic{MaxSens: maxSens, Spec: spec, D: d}
}

// LogisticDilutionTest returns the logistic limit-of-detection model:
// sensitivity maxSens·σ(alpha + beta·log2(k/n)).
func LogisticDilutionTest(maxSens, spec, alpha, beta float64) Response {
	return dilution.Logistic{MaxSens: maxSens, Spec: spec, Alpha: alpha, Beta: beta}
}

// SubsampleDilutionTest returns the independent-detection dilution model:
// each infected specimen is detected with probability q/n.
func SubsampleDilutionTest(q, spec float64) Response {
	return dilution.Subsample{Q: q, Spec: spec}
}

// CtTest returns the continuous RT-PCR cycle-threshold response with
// literature-typical default parameters (censoring at 40 cycles, one cycle
// per two-fold dilution) — the "general test response distributions beyond
// binary outcomes" the framework supports.
func CtTest() Response { return dilution.DefaultCt() }

// CtTestParams returns a fully parameterized Ct response.
func CtTestParams(base, slope, sigma, maxCycles, spec, contamWindow float64) Response {
	return dilution.CtValue{
		Base: base, Slope: slope, Sigma: sigma,
		MaxCycles: maxCycles, Spec: spec, ContamWindow: contamWindow,
	}
}
