package sbgt

import (
	"net"
	"time"

	"repro/internal/cluster"
)

// ClusterModel is a lattice posterior distributed across TCP executor
// processes — the Spark-cluster analogue. It supports the same update /
// marginal / selection-scan operations as the in-process Model; every
// method reports transport errors explicitly.
type ClusterModel = cluster.Model

// DialCluster connects to running executors (see ServeExecutor or
// cmd/sbgt-exec), shards the lattice across them, and materializes the
// prior remotely.
func DialCluster(addrs []string, risks []float64, resp Response, timeout time.Duration) (*ClusterModel, error) {
	return cluster.Dial(addrs, risks, resp, timeout)
}

// ServeExecutor runs a lattice executor on addr until it is told to shut
// down. It is the library form of cmd/sbgt-exec, handy for tests and
// single-binary deployments.
func ServeExecutor(addr string, workers int) error {
	return cluster.ListenAndServe(addr, workers)
}

// ServeExecutorOn serves a lattice executor on an already-open listener,
// for callers that manage ports themselves (in-process clusters, tests).
func ServeExecutorOn(l net.Listener, workers int) error {
	e := cluster.NewExecutor(workers)
	defer e.Close()
	return e.Serve(l)
}
