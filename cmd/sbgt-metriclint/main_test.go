package main

import (
	"strings"
	"testing"
)

// The TP/FP fixture pair for the profiler value-set rule: the bad
// snapshot smuggles free-form reason/path labels and an undeclared class
// value onto profiler metrics; the ok snapshot is the instrumentation
// the profiler actually emits.

func TestProfilerLabelRuleTruePositives(t *testing.T) {
	snap, err := load("testdata/profiler_labels_bad.json")
	if err != nil {
		t.Fatal(err)
	}
	violations := lint(snap, 64)
	want := []string{
		`label key "reason" is not declared`,
		`label key "path" is not declared`,
		`label class="periodic" is outside the declared value set {anomaly, manual, sample}`,
	}
	for _, w := range want {
		found := false
		for _, v := range violations {
			if strings.Contains(v, w) {
				found = true
			}
		}
		if !found {
			t.Errorf("missing violation %q in:\n%s", w, strings.Join(violations, "\n"))
		}
	}
	// The reason label has only 2 distinct values here — far under the
	// cardinality bound. The value-set rule is what catches it: this is
	// exactly the gap the rule exists to close.
	if len(violations) < len(want) {
		t.Fatalf("violations = %v", violations)
	}
}

func TestProfilerLabelRuleFalsePositives(t *testing.T) {
	snap, err := load("testdata/profiler_labels_ok.json")
	if err != nil {
		t.Fatal(err)
	}
	if violations := lint(snap, 64); len(violations) != 0 {
		t.Fatalf("clean profiler snapshot flagged:\n%s", strings.Join(violations, "\n"))
	}
}

// TestProfilerRuleScopedToProfilerMetrics guards the blast radius: a
// "class" or even "reason" label on a non-profiler metric is not this
// rule's business (the cardinality bound still applies to it).
func TestProfilerRuleScopedToProfilerMetrics(t *testing.T) {
	snap, err := load("testdata/profiler_labels_ok.json")
	if err != nil {
		t.Fatal(err)
	}
	snap.Counters[0].Name = "sbgt_serve_whatever_total"
	snap.Counters[0].Labels[0].Key = "reason"
	snap.Counters[0].Labels[0].Value = "free-form text"
	if violations := lint(snap, 64); len(violations) != 0 {
		t.Fatalf("non-profiler metric flagged by profiler rule:\n%s", strings.Join(violations, "\n"))
	}
}
