// Command sbgt-metriclint checks a registry snapshot (the /metrics.json
// document) against the repo's metric-naming contract. It is the
// observability analogue of sbgt-lint: run it in CI over a snapshot
// captured from a real smoke run and it fails the build when a metric
// sneaks in under a malformed name or with unbounded label cardinality.
//
// Usage:
//
//	sbgt-metriclint [-max-cardinality 64] <snapshot.json | URL | ->
//
// The argument is a file path, an http(s) URL (scraped live), or "-"
// for stdin. Exit status 1 when any rule is violated, 2 on usage or
// read errors.
//
// Rules:
//
//   - every name matches sbgt_<subsystem>_<name>: ^sbgt(_[a-z0-9]+){2,}$
//   - counters end in _total; gauges and histograms never do
//   - histograms end in a base unit: _seconds or _bytes
//   - label keys match ^[a-z][a-z0-9_]*$
//   - no (metric, label key) pair exceeds -max-cardinality distinct
//     values — the bound that keeps per-tenant labels from exploding a
//     scrape (the server caps tenants and overflows into "__other__";
//     this verifies nothing bypasses that cap)
//   - profiler metrics (sbgt_obs_profiler_*) carry only declared label
//     keys with closed value sets: "class" ∈ {anomaly, manual, sample}.
//     Free-form identifiers — capture reasons ("slo:p99_request"),
//     bundle paths, anomaly IDs — are one label per incident, i.e.
//     unbounded; they belong in bundle metadata, never in a label. The
//     cardinality rule above only catches this after the explosion; the
//     value-set rule rejects the first stray value.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"regexp"
	"sort"
	"strings"

	"repro/internal/obs"
	"repro/internal/obs/profiler"
)

var (
	nameRE  = regexp.MustCompile(`^sbgt(_[a-z0-9]+){2,}$`)
	labelRE = regexp.MustCompile(`^[a-z][a-z0-9_]*$`)
)

// profilerPrefix scopes the bounded value-set rule to the continuous
// profiler's metric family.
const profilerPrefix = "sbgt_obs_profiler_"

// profilerLabelSets declares the only label keys profiler metrics may
// carry and the closed value set for each — sourced from the profiler
// package's own declaration so the lint rule and the instrumentation
// cannot drift apart.
var profilerLabelSets = func() map[string]map[string]bool {
	classes := map[string]bool{}
	for _, c := range profiler.CaptureClasses {
		classes[c] = true
	}
	return map[string]map[string]bool{"class": classes}
}()

func allowedValues(set map[string]bool) string {
	var vals []string
	for v := range set {
		vals = append(vals, v)
	}
	sort.Strings(vals)
	return strings.Join(vals, ", ")
}

func main() {
	maxCard := flag.Int("max-cardinality", 64, "max distinct values per (metric, label key)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: sbgt-metriclint [-max-cardinality N] <snapshot.json | URL | ->\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}

	snap, err := load(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "sbgt-metriclint:", err)
		os.Exit(2)
	}

	violations := lint(snap, *maxCard)
	for _, v := range violations {
		fmt.Println(v)
	}
	if len(violations) > 0 {
		fmt.Fprintf(os.Stderr, "sbgt-metriclint: %d violation(s)\n", len(violations))
		os.Exit(1)
	}
	fmt.Printf("sbgt-metriclint: %d series clean\n",
		len(snap.Counters)+len(snap.Gauges)+len(snap.Histograms))
}

func load(src string) (*obs.Snapshot, error) {
	var r io.Reader
	switch {
	case src == "-":
		r = os.Stdin
	case strings.HasPrefix(src, "http://") || strings.HasPrefix(src, "https://"):
		resp, err := http.Get(src)
		if err != nil {
			return nil, err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("GET %s: status %d", src, resp.StatusCode)
		}
		r = resp.Body
	default:
		f, err := os.Open(src)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	// Accept either a bare registry snapshot (/metrics.json) or a bench
	// file (BENCH_<n>.json) whose snapshot sits under the "metrics" key.
	var doc struct {
		obs.Snapshot
		Metrics *obs.Snapshot `json:"metrics"`
	}
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("decode %s: %w", src, err)
	}
	if doc.Metrics != nil {
		return doc.Metrics, nil
	}
	return &doc.Snapshot, nil
}

// series is the name+labels view the rules operate on, flattened across
// the three metric kinds.
type series struct {
	kind   string // "counter" | "gauge" | "histogram"
	name   string
	labels []obs.Label
}

func lint(snap *obs.Snapshot, maxCard int) []string {
	var all []series
	for _, c := range snap.Counters {
		all = append(all, series{"counter", c.Name, c.Labels})
	}
	for _, g := range snap.Gauges {
		all = append(all, series{"gauge", g.Name, g.Labels})
	}
	for _, h := range snap.Histograms {
		all = append(all, series{"histogram", h.Name, h.Labels})
	}

	var out []string
	badName := map[string]bool{} // report shape rules once per family, not per series
	report := func(name, msg string) {
		if !badName[name+msg] {
			badName[name+msg] = true
			out = append(out, fmt.Sprintf("%s: %s", name, msg))
		}
	}

	// cardinality[metric][labelKey] = set of values seen.
	cardinality := map[string]map[string]map[string]bool{}

	for _, s := range all {
		if !nameRE.MatchString(s.name) {
			report(s.kind+" "+s.name, "name must match sbgt_<subsystem>_<name> (^sbgt(_[a-z0-9]+){2,}$)")
		}
		switch s.kind {
		case "counter":
			if !strings.HasSuffix(s.name, "_total") {
				report("counter "+s.name, "counter names must end in _total")
			}
		case "gauge", "histogram":
			if strings.HasSuffix(s.name, "_total") {
				report(s.kind+" "+s.name, "_total is reserved for counters")
			}
		}
		if s.kind == "histogram" &&
			!strings.HasSuffix(s.name, "_seconds") && !strings.HasSuffix(s.name, "_bytes") {
			report("histogram "+s.name, "histogram names must end in a base unit (_seconds or _bytes)")
		}
		for _, l := range s.labels {
			if !labelRE.MatchString(l.Key) {
				report(s.kind+" "+s.name, fmt.Sprintf("label key %q must match ^[a-z][a-z0-9_]*$", l.Key))
			}
			if strings.HasPrefix(s.name, profilerPrefix) {
				set, declared := profilerLabelSets[l.Key]
				switch {
				case !declared:
					report(s.kind+" "+s.name, fmt.Sprintf(
						"label key %q is not declared for profiler metrics — reason/path-style identifiers are unbounded; put them in bundle metadata, not labels", l.Key))
				case !set[l.Value]:
					report(s.kind+" "+s.name, fmt.Sprintf(
						"label %s=%q is outside the declared value set {%s}", l.Key, l.Value, allowedValues(set)))
				}
			}
			byKey := cardinality[s.name]
			if byKey == nil {
				byKey = map[string]map[string]bool{}
				cardinality[s.name] = byKey
			}
			if byKey[l.Key] == nil {
				byKey[l.Key] = map[string]bool{}
			}
			byKey[l.Key][l.Value] = true
		}
	}

	var names []string
	for name := range cardinality {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		var keys []string
		for k := range cardinality[name] {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			if n := len(cardinality[name][k]); n > maxCard {
				out = append(out, fmt.Sprintf("%s: label %q has %d distinct values (max %d) — unbounded cardinality",
					name, k, n, maxCard))
			}
		}
	}
	sort.Strings(out)
	return out
}
