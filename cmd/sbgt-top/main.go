// Command sbgt-top is a terminal live view of a running sbgt-serve (or
// any sbgt process serving the obs mux): it polls /metrics.json,
// /debug/flight, and /debug/profiles and renders per-tenant throughput,
// residency, SLO burn, the most recent anomaly dump, and the profile
// bundles frozen for it (a server without the continuous profiler just
// omits that section).
//
// Usage:
//
//	sbgt-top -target http://127.0.0.1:8344
//
// Flags:
//
//	-target string      base URL of the server (default http://127.0.0.1:8344)
//	-interval duration  refresh period (default 2s)
//	-once               render a single frame and exit (for scripts/smoke)
//
// Rates are computed from counter deltas between consecutive polls, so
// the first frame shows totals and later frames show per-second rates.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/profiler"
)

func main() {
	var (
		target   = flag.String("target", "http://127.0.0.1:8344", "base URL of the server")
		interval = flag.Duration("interval", 2*time.Second, "refresh period")
		once     = flag.Bool("once", false, "render a single frame and exit")
	)
	flag.Parse()

	client := &http.Client{Timeout: 10 * time.Second}
	var prev *frame
	for {
		f, err := poll(client, *target)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sbgt-top:", err)
			os.Exit(1)
		}
		if !*once {
			fmt.Print("\x1b[2J\x1b[H") // clear screen, home cursor
		}
		render(os.Stdout, f, prev)
		if *once {
			return
		}
		prev = f
		time.Sleep(*interval)
	}
}

// frame is one poll's worth of server state.
type frame struct {
	at       time.Time
	metrics  *obs.Snapshot
	flight   *obs.FlightSnapshot
	profiles *profiler.IndexDoc
}

func poll(client *http.Client, target string) (*frame, error) {
	f := &frame{at: time.Now(), metrics: &obs.Snapshot{}, flight: &obs.FlightSnapshot{}}
	if err := getJSON(client, target+"/metrics.json", f.metrics); err != nil {
		return nil, err
	}
	if err := getJSON(client, target+"/debug/flight", f.flight); err != nil {
		return nil, err
	}
	// /debug/profiles exists only when the continuous profiler is on (and
	// not at all on older servers) — a failure here degrades the view, it
	// does not kill it.
	var idx profiler.IndexDoc
	if err := getJSON(client, target+"/debug/profiles", &idx); err == nil {
		f.profiles = &idx
	}
	return f, nil
}

func getJSON(client *http.Client, url string, v any) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: status %d", url, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// counter finds a counter value by name + optional tenant label.
func counter(s *obs.Snapshot, name, tenant string) (uint64, bool) {
	for _, c := range s.Counters {
		if c.Name != name {
			continue
		}
		if tenant == "" && len(c.Labels) == 0 {
			return c.Value, true
		}
		for _, l := range c.Labels {
			if l.Key == "tenant" && l.Value == tenant {
				return c.Value, true
			}
		}
	}
	return 0, false
}

func gauge(s *obs.Snapshot, name string) (float64, bool) {
	for _, g := range s.Gauges {
		if g.Name == name && len(g.Labels) == 0 {
			return g.Value, true
		}
	}
	return 0, false
}

// quantile estimates q from cumulative histogram buckets with linear
// interpolation inside the landing bucket (the Prometheus estimator).
func quantile(h *obs.HistogramSnapshot, q float64) float64 {
	if len(h.Buckets) == 0 || h.Count == 0 {
		return 0
	}
	rank := q * float64(h.Count)
	lowerBound, lowerCount := 0.0, 0.0
	for _, b := range h.Buckets {
		if float64(b.Count) >= rank {
			if math.IsInf(b.UpperBound, 1) {
				return lowerBound
			}
			inBucket := float64(b.Count) - lowerCount
			if inBucket <= 0 {
				return b.UpperBound
			}
			return lowerBound + (b.UpperBound-lowerBound)*(rank-lowerCount)/inBucket
		}
		lowerBound, lowerCount = b.UpperBound, float64(b.Count)
	}
	return lowerBound
}

// tenantRow is one line of the per-tenant table.
type tenantRow struct {
	name     string
	requests uint64
	errors   uint64
	p99      float64
}

func tenantRows(s *obs.Snapshot) []tenantRow {
	byName := map[string]*tenantRow{}
	for _, c := range s.Counters {
		if c.Name != "sbgt_serve_tenant_requests_total" && c.Name != "sbgt_serve_tenant_errors_total" {
			continue
		}
		for _, l := range c.Labels {
			if l.Key != "tenant" {
				continue
			}
			r := byName[l.Value]
			if r == nil {
				r = &tenantRow{name: l.Value}
				byName[l.Value] = r
			}
			if c.Name == "sbgt_serve_tenant_requests_total" {
				r.requests = c.Value
			} else {
				r.errors = c.Value
			}
		}
	}
	for i := range s.Histograms {
		h := &s.Histograms[i]
		if h.Name != "sbgt_serve_tenant_request_seconds" {
			continue
		}
		for _, l := range h.Labels {
			if l.Key == "tenant" {
				if r := byName[l.Value]; r != nil {
					r.p99 = quantile(h, 0.99)
				}
			}
		}
	}
	out := make([]tenantRow, 0, len(byName))
	for _, r := range byName {
		out = append(out, *r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].requests > out[j].requests })
	return out
}

func render(w *os.File, f, prev *frame) {
	fmt.Fprintf(w, "sbgt-top · %s\n\n", f.at.Format("15:04:05"))

	// Headline: aggregate throughput, residency, process health.
	reqs, _ := counter(f.metrics, "sbgt_serve_requests_total", "")
	shed, _ := counter(f.metrics, "sbgt_serve_requests_shed_total", "")
	if prev != nil {
		dt := f.at.Sub(prev.at).Seconds()
		preqs, _ := counter(prev.metrics, "sbgt_serve_requests_total", "")
		pshed, _ := counter(prev.metrics, "sbgt_serve_requests_shed_total", "")
		if dt > 0 {
			fmt.Fprintf(w, "requests %d (%.0f/s)   shed %d (%.0f/s)\n",
				reqs, float64(reqs-preqs)/dt, shed, float64(shed-pshed)/dt)
		}
	} else {
		fmt.Fprintf(w, "requests %d   shed %d\n", reqs, shed)
	}
	if res, ok := gauge(f.metrics, "sbgt_serve_cohorts_resident"); ok {
		total, _ := gauge(f.metrics, "sbgt_serve_cohorts")
		fmt.Fprintf(w, "cohorts %d resident / %d total\n", int(res), int(total))
	}
	if gr, ok := gauge(f.metrics, "sbgt_go_goroutines"); ok {
		heap, _ := gauge(f.metrics, "sbgt_go_heap_inuse_bytes")
		fmt.Fprintf(w, "goroutines %d   heap %.1f MiB\n", int(gr), heap/(1<<20))
	}

	// SLO burn gauges, if an evaluator is running.
	var slo []string
	for _, g := range f.metrics.Gauges {
		if g.Name != "sbgt_slo_burn_ratio" {
			continue
		}
		name := "?"
		for _, l := range g.Labels {
			if l.Key == "objective" {
				name = l.Value
			}
		}
		mark := ""
		if g.Value > 1 {
			mark = "  BREACHED"
		}
		slo = append(slo, fmt.Sprintf("  %-20s burn %.2f%s", name, g.Value, mark))
	}
	if len(slo) > 0 {
		sort.Strings(slo)
		fmt.Fprintf(w, "\nSLO\n%s\n", strings.Join(slo, "\n"))
	}

	// Per-tenant RED table.
	rows := tenantRows(f.metrics)
	if len(rows) > 0 {
		fmt.Fprintf(w, "\n%-16s %10s %8s %10s\n", "TENANT", "REQUESTS", "ERRORS", "P99")
		for _, r := range rows {
			fmt.Fprintf(w, "%-16s %10d %8d %9.1fms\n", r.name, r.requests, r.errors, r.p99*1e3)
		}
	}

	// Flight recorder: window size and the most recent anomaly dump.
	fmt.Fprintf(w, "\nflight: %d events buffered, %d dropped, %d anomaly dumps\n",
		len(f.flight.Events), f.flight.Dropped, len(f.flight.Anomalies))
	if n := len(f.flight.Anomalies); n > 0 {
		d := f.flight.Anomalies[n-1]
		fmt.Fprintf(w, "last anomaly: %s %s at %s (%d events captured, %d coalesced)\n",
			d.ID, d.Reason, d.Time.Format("15:04:05"), len(d.Events), d.Coalesced)
		tail := d.Events
		if len(tail) > 5 {
			tail = tail[len(tail)-5:]
		}
		for _, ev := range tail {
			line := fmt.Sprintf("  %s %-14s", ev.Time.Format("15:04:05.000"), ev.Kind)
			if ev.Tenant != "" {
				line += " tenant=" + ev.Tenant
			}
			if ev.Cohort != "" {
				line += " cohort=" + ev.Cohort
			}
			if ev.TraceID != 0 {
				line += fmt.Sprintf(" trace=%016x", ev.TraceID)
			}
			if ev.Err != "" {
				line += " err=" + ev.Err
			}
			fmt.Fprintln(w, line)
		}
	}

	// Continuous-profiler bundles: the newest few, anomaly IDs first so
	// an operator can go straight from "last anomaly: aNNNNNN" to its
	// flame data (GET /debug/profiles?anomaly=aNNNNNN, then sbgt-profdiff).
	if f.profiles != nil {
		bundles := f.profiles.Bundles
		fmt.Fprintf(w, "\nprofiles: %d bundle(s) on /debug/profiles\n", len(bundles))
		tail := bundles
		if len(tail) > 4 {
			tail = tail[len(tail)-4:]
		}
		for _, b := range tail {
			line := fmt.Sprintf("  %s %s %-7s %s", b.Time.Format("15:04:05"), b.ID, b.Class, b.Reason)
			if b.AnomalyID != "" {
				line += " anomaly=" + b.AnomalyID
			}
			if b.CPUError != "" {
				line += " cpu-error"
			}
			fmt.Fprintln(w, line)
		}
	}
}
