// Command sbgt-lint runs this repository's static-analysis suite over
// every non-test package in the module and exits non-zero on any
// diagnostic, so it can gate CI.
//
// Usage:
//
//	sbgt-lint [flags] [./...]
//
// The suite always covers the whole module; package-pattern arguments are
// accepted for interface parity with go vet but must lie inside it.
//
// Flags:
//
//	-list            print the analyzers and their invariants, then exit
//	-run a,b         run only the named analyzers
//	-format f        text | json | sarif (default text)
//	-baseline path   waiver ledger to apply ("none" disables; default
//	                 lint-baseline.json at the module root when present)
//	-write-baseline  rewrite the ledger from this run's findings and exit
//	-baseline-check  also fail on stale ledger entries (fixed findings
//	                 whose entries must be deleted)
//	-audit           also fail on stale //lint:allow waivers; forces the
//	                 full suite so every waiver can be exercised
//	-log-level       debug | info | warn | error (default info)
//
// Exit status: 0 clean, 1 diagnostics (or stale entries/waivers under
// -baseline-check/-audit) reported, 2 usage or load failure.
// Intentional exceptions are annotated in source as
// "//lint:allow <analyzer> <reason>"; see internal/analysis.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
	"repro/internal/obs"
)

func main() {
	list := flag.Bool("list", false, "list analyzers and exit")
	runNames := flag.String("run", "", "comma-separated analyzer names to run (default: all)")
	format := flag.String("format", "text", "output format: text | json | sarif")
	baselinePath := flag.String("baseline", "", `baseline ledger path ("none" disables; default lint-baseline.json at the module root when present)`)
	writeBaseline := flag.Bool("write-baseline", false, "rewrite the baseline ledger from this run's findings and exit")
	baselineCheck := flag.Bool("baseline-check", false, "fail on stale baseline entries too")
	audit := flag.Bool("audit", false, "fail on stale lint:allow waivers too (forces the full suite)")
	logLevel := flag.String("log-level", "info", "log verbosity: debug | info | warn | error")
	flag.Parse()

	logg, err := obs.CLILogger(os.Stderr, "sbgt-lint", *logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sbgt-lint:", err)
		os.Exit(2)
	}

	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}
	switch *format {
	case "text", "json", "sarif":
	default:
		logg.Error("unknown format (want text, json, or sarif)", "format", *format)
		os.Exit(2)
	}

	analyzers := analysis.All()
	if *runNames != "" {
		if *audit {
			// A waiver for an excluded analyzer would always read as stale;
			// auditing is only sound over the full suite.
			logg.Error("-audit cannot be combined with -run: stale-waiver detection needs the full suite")
			os.Exit(2)
		}
		var unknown string
		analyzers, unknown = analysis.ByName(strings.Split(*runNames, ","))
		if unknown != "" {
			logg.Error("unknown analyzer (use -list)", "name", unknown)
			os.Exit(2)
		}
	}

	root, err := findModuleRoot()
	if err != nil {
		logg.Error(err.Error())
		os.Exit(2)
	}
	for _, arg := range flag.Args() {
		if err := checkPattern(root, arg); err != nil {
			logg.Error(err.Error())
			os.Exit(2)
		}
	}

	pkgs, err := analysis.LoadModule(root)
	if err != nil {
		logg.Error(err.Error())
		os.Exit(2)
	}

	diags, staleWaivers := analysis.RunAudit(pkgs, analyzers)
	// Module-relative paths everywhere downstream: output, the baseline
	// ledger, and SARIF artifact locations all want stable URIs.
	for i := range diags {
		diags[i].Pos.Filename = relTo(root, diags[i].Pos.Filename)
	}
	for i := range staleWaivers {
		staleWaivers[i].Pos.Filename = relTo(root, staleWaivers[i].Pos.Filename)
	}

	ledgerPath := *baselinePath
	switch ledgerPath {
	case "":
		p := filepath.Join(root, "lint-baseline.json")
		if _, err := os.Stat(p); err == nil {
			ledgerPath = p
		}
	case "none":
		ledgerPath = ""
	}

	if *writeBaseline {
		if ledgerPath == "" {
			ledgerPath = filepath.Join(root, "lint-baseline.json")
		}
		data, err := analysis.NewBaseline(diags).Marshal()
		if err != nil {
			logg.Error(err.Error())
			os.Exit(2)
		}
		if err := os.WriteFile(ledgerPath, data, 0o644); err != nil {
			logg.Error(err.Error())
			os.Exit(2)
		}
		logg.Info("baseline written", "path", ledgerPath, "findings", len(diags))
		return
	}

	var staleEntries []analysis.BaselineEntry
	if ledgerPath != "" {
		data, err := os.ReadFile(ledgerPath)
		if err != nil {
			logg.Error(err.Error())
			os.Exit(2)
		}
		ledger, err := analysis.ReadBaseline(data)
		if err != nil {
			logg.Error(err.Error())
			os.Exit(2)
		}
		diags, staleEntries = ledger.Apply(diags)
	}

	report := diags
	if *audit {
		report = append(report, staleWaivers...)
	}

	switch *format {
	case "json":
		err = analysis.WriteJSON(os.Stdout, report)
	case "sarif":
		err = analysis.WriteSARIF(os.Stdout, report, analyzers)
	default:
		for _, d := range report {
			fmt.Println(d)
		}
	}
	if err != nil {
		logg.Error(err.Error())
		os.Exit(2)
	}

	failed := false
	if len(report) > 0 {
		logg.Error("diagnostics reported", "count", len(report))
		failed = true
	}
	if *baselineCheck && len(staleEntries) > 0 {
		for _, e := range staleEntries {
			fmt.Fprintf(os.Stderr, "stale baseline entry: %d x [%s] %s: %s\n", e.Count, e.Analyzer, e.File, e.Message)
		}
		logg.Error("stale baseline entries: the findings were fixed, delete their ledger entries", "count", len(staleEntries))
		failed = true
	}
	if failed {
		os.Exit(1)
	}
}

// relTo rewrites path relative to root when possible.
func relTo(root, path string) string {
	if rel, err := filepath.Rel(root, path); err == nil && !strings.HasPrefix(rel, "..") {
		return rel
	}
	return path
}

// findModuleRoot walks up from the working directory to the nearest go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above the working directory")
		}
		dir = parent
	}
}

// checkPattern validates that a package-pattern argument stays inside the
// module (the suite always lints the whole module regardless).
func checkPattern(root, pattern string) error {
	p := strings.TrimSuffix(pattern, "...")
	p = strings.TrimSuffix(p, "/")
	if p == "" || p == "." {
		return nil
	}
	abs, err := filepath.Abs(p)
	if err != nil {
		return err
	}
	if abs != root && !strings.HasPrefix(abs, root+string(filepath.Separator)) {
		return fmt.Errorf("pattern %q lies outside the module at %s", pattern, root)
	}
	return nil
}
