// Command sbgt-lint runs this repository's static-analysis suite over
// every non-test package in the module and exits non-zero on any
// diagnostic, so it can gate CI.
//
// Usage:
//
//	sbgt-lint [flags] [./...]
//
// The suite always covers the whole module; package-pattern arguments are
// accepted for interface parity with go vet but must lie inside it.
//
// Flags:
//
//	-list        print the analyzers and their invariants, then exit
//	-run a,b     run only the named analyzers
//	-log-level   debug | info | warn | error (default info)
//
// Exit status: 0 clean, 1 diagnostics reported, 2 usage or load failure.
// Intentional exceptions are annotated in source as
// "//lint:allow <analyzer> <reason>"; see internal/analysis.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
	"repro/internal/obs"
)

func main() {
	list := flag.Bool("list", false, "list analyzers and exit")
	runNames := flag.String("run", "", "comma-separated analyzer names to run (default: all)")
	logLevel := flag.String("log-level", "info", "log verbosity: debug | info | warn | error")
	flag.Parse()

	logg, err := obs.CLILogger(os.Stderr, "sbgt-lint", *logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sbgt-lint:", err)
		os.Exit(2)
	}

	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := analysis.All()
	if *runNames != "" {
		var unknown string
		analyzers, unknown = analysis.ByName(strings.Split(*runNames, ","))
		if unknown != "" {
			logg.Error("unknown analyzer (use -list)", "name", unknown)
			os.Exit(2)
		}
	}

	root, err := findModuleRoot()
	if err != nil {
		logg.Error(err.Error())
		os.Exit(2)
	}
	for _, arg := range flag.Args() {
		if err := checkPattern(root, arg); err != nil {
			logg.Error(err.Error())
			os.Exit(2)
		}
	}

	pkgs, err := analysis.LoadModule(root)
	if err != nil {
		logg.Error(err.Error())
		os.Exit(2)
	}

	diags := analysis.Run(pkgs, analyzers)
	for _, d := range diags {
		if rel, err := filepath.Rel(root, d.Pos.Filename); err == nil {
			d.Pos.Filename = rel
		}
		fmt.Println(d)
	}
	if len(diags) > 0 {
		logg.Error("diagnostics reported", "count", len(diags))
		os.Exit(1)
	}
}

// findModuleRoot walks up from the working directory to the nearest go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above the working directory")
		}
		dir = parent
	}
}

// checkPattern validates that a package-pattern argument stays inside the
// module (the suite always lints the whole module regardless).
func checkPattern(root, pattern string) error {
	p := strings.TrimSuffix(pattern, "...")
	p = strings.TrimSuffix(p, "/")
	if p == "" || p == "." {
		return nil
	}
	abs, err := filepath.Abs(p)
	if err != nil {
		return err
	}
	if abs != root && !strings.HasPrefix(abs, root+string(filepath.Separator)) {
		return fmt.Errorf("pattern %q lies outside the module at %s", pattern, root)
	}
	return nil
}
