// Command sbgt-exec runs one lattice executor: it owns a shard of the
// distributed posterior and serves kernel requests from an sbgt driver
// (sbgt.DialCluster or cmd/sbgt-bench -exp F6) until told to shut down.
//
// Usage:
//
//	sbgt-exec -listen 127.0.0.1:7070 -workers 4
//
// Start one process per node (or per NUMA domain), then hand the list of
// addresses to the driver. The executor is stateless between drivers: a
// new driver connection rebuilds the shard with BuildPrior.
//
// With -metrics-addr the executor also serves its own /metrics (request
// counts per op, shard size, worker-pool series), /healthz, /readyz,
// /spans, /debug/flight, and pprof — the per-node introspection surface
// of a real deployment. /readyz mirrors the executor's drain state: it
// serves 200 while accepting drivers and flips to 503 the moment SIGTERM
// or SIGINT arrives, before the listener closes, so an orchestrator
// health-checking executors stops routing new drivers to a terminating
// node. SIGQUIT dumps the flight recorder to stderr without exiting.
// When a driver propagates a trace context, the executor's dispatch
// spans appear both on its /spans endpoint and in the driver's assembled
// trace (they ship back in the response trailer).
//
// With -profile-dir the continuous profiler also runs: anomaly dumps
// freeze profile bundles served on the metrics listener at
// /debug/profiles, where the driver's -harvest-profiles pulls them —
// that is how a cross-process trace resolves to per-executor flame data.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"

	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/obs/profiler"
)

func main() {
	var (
		listen  = flag.String("listen", "127.0.0.1:7070", "address to serve on")
		workers = flag.Int("workers", 0, "local workers (0 = GOMAXPROCS)")
	)
	obsFlags := obs.RegisterFlags(nil)
	flag.Parse()

	rt, err := obsFlags.Start("sbgt-exec")
	if err != nil {
		fmt.Fprintln(os.Stderr, "sbgt-exec:", err)
		os.Exit(2)
	}
	defer rt.Close()
	rt.DumpFlightOnSIGQUIT()

	if _, err := profiler.StartFromRuntime(rt, obsFlags); err != nil {
		rt.Fatal(err)
	}

	lis, err := net.Listen("tcp", *listen)
	if err != nil {
		rt.Fatal(fmt.Errorf("sbgt-exec: listen %s: %w", *listen, err))
	}
	e := cluster.NewExecutor(*workers)
	defer e.Close()
	e.SetLogger(rt.Log)
	e.SetTracer(rt.Tracer)
	e.Instrument(rt.Reg, "")

	// Drain on SIGTERM/SIGINT: flip /readyz to 503 first, then close the
	// listener. In-flight driver connections finish their current RPC; the
	// orchestrator sees not-ready before the port goes away.
	var draining atomic.Bool
	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, syscall.SIGTERM, syscall.SIGINT)
	go func() { //lint:allow goroutineleak the drain watcher lives for the process; it exits with it
		sig := <-sigs
		draining.Store(true)
		rt.SetReadyError(fmt.Errorf("sbgt-exec: draining on %s", sig))
		rt.Log.Info("sbgt-exec: draining on signal", "signal", sig.String())
		lis.Close() //lint:allow errcheck closing the accept loop is the drain action; a double close is harmless
	}()

	rt.Log.Info("sbgt-exec: serving", "addr", lis.Addr().String())
	if err := e.Serve(lis); err != nil && !draining.Load() {
		rt.Fatal(err)
	}
}
