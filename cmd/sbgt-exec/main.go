// Command sbgt-exec runs one lattice executor: it owns a shard of the
// distributed posterior and serves kernel requests from an sbgt driver
// (sbgt.DialCluster or cmd/sbgt-bench -exp F6) until told to shut down.
//
// Usage:
//
//	sbgt-exec -listen 127.0.0.1:7070 -workers 4
//
// Start one process per node (or per NUMA domain), then hand the list of
// addresses to the driver. The executor is stateless between drivers: a
// new driver connection rebuilds the shard with BuildPrior.
//
// With -metrics-addr the executor also serves its own /metrics (request
// counts per op, shard size, worker-pool series), /healthz, /spans, and
// pprof — the per-node introspection surface of a real deployment. When
// a driver propagates a trace context, the executor's dispatch spans
// appear both on its /spans endpoint and in the driver's assembled
// trace (they ship back in the response trailer).
package main

import (
	"flag"
	"fmt"
	"os"

	sbgt "repro"
	"repro/internal/obs"
)

func main() {
	var (
		listen  = flag.String("listen", "127.0.0.1:7070", "address to serve on")
		workers = flag.Int("workers", 0, "local workers (0 = GOMAXPROCS)")
	)
	obsFlags := obs.RegisterFlags(nil)
	flag.Parse()

	rt, err := obsFlags.Start("sbgt-exec")
	if err != nil {
		fmt.Fprintln(os.Stderr, "sbgt-exec:", err)
		os.Exit(2)
	}
	defer rt.Close()

	if err := sbgt.ServeExecutorTraced(*listen, *workers, rt.Reg, rt.Tracer, rt.Log); err != nil {
		rt.Fatal(err)
	}
}
