// Command sbgt-exec runs one lattice executor: it owns a shard of the
// distributed posterior and serves kernel requests from an sbgt driver
// (sbgt.DialCluster or cmd/sbgt-bench -exp F6) until told to shut down.
//
// Usage:
//
//	sbgt-exec -listen 127.0.0.1:7070 -workers 4
//
// Start one process per node (or per NUMA domain), then hand the list of
// addresses to the driver. The executor is stateless between drivers: a
// new driver connection rebuilds the shard with BuildPrior.
package main

import (
	"flag"
	"log"

	sbgt "repro"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sbgt-exec: ")
	var (
		listen  = flag.String("listen", "127.0.0.1:7070", "address to serve on")
		workers = flag.Int("workers", 0, "local workers (0 = GOMAXPROCS)")
	)
	flag.Parse()
	if err := sbgt.ServeExecutor(*listen, *workers); err != nil {
		log.Fatal(err)
	}
}
