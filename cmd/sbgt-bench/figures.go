package main

import (
	"fmt"
	"time"

	"repro/internal/bench"
	"repro/internal/dilution"
	"repro/internal/halving"
	"repro/internal/lattice"
	"repro/internal/posterior"
	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/workload"
)

// workerSweep returns 1,2,4,... up to the configured worker count
// (including the exact count when it is not a power of two).
func (c *ctx) workerSweep() []int {
	var ws []int
	for w := 1; w < c.workers; w *= 2 {
		ws = append(ws, w)
	}
	ws = append(ws, c.workers)
	return ws
}

// runF1 is the strong-scaling figure: fixed lattice, growing worker count.
func runF1(c *ctx) error {
	n := 20
	if c.quick {
		n = 16
	}
	risks := workload.UniformRisks(n, 0.05)
	pm := updatePool(n)
	tab := bench.NewTable(fmt.Sprintf("F1: strong scaling, update kernel, N=%d", n),
		"workers", "time", "speedup", "efficiency")
	var base time.Duration
	for _, w := range c.workerSweep() {
		pool := c.newPool(w)
		m, err := lattice.New(pool, lattice.Config{Risks: risks, Response: benchResponse})
		if err != nil {
			pool.Close()
			return err
		}
		outcomes := []dilution.Outcome{dilution.Negative, dilution.Positive}
		i := 0
		t := bench.Measure(c.reps(), 1, func() {
			if err := m.Update(pm, outcomes[i%2]); err != nil {
				panic(err)
			}
			i++
		})
		pool.Close()
		if base == 0 {
			base = t.Mean
		}
		sp := bench.Speedup(base, t.Mean)
		tab.AddRow(w, t.Mean, sp, bench.Efficiency(sp, w, 1))
	}
	return c.emit(tab)
}

// runF2 is the weak-scaling figure: states per worker held constant, so
// the lattice grows one subject per worker doubling.
func runF2(c *ctx) error {
	basePerWorker := 18 // 2^18 states per worker
	if c.quick {
		basePerWorker = 15
	}
	tab := bench.NewTable(fmt.Sprintf("F2: weak scaling, 2^%d states/worker", basePerWorker),
		"workers", "N", "states", "time", "efficiency")
	var base time.Duration
	w, grow := 1, 0
	for w <= c.workers {
		n := basePerWorker + grow
		risks := workload.UniformRisks(n, 0.05)
		pool := c.newPool(w)
		m, err := lattice.New(pool, lattice.Config{Risks: risks, Response: benchResponse})
		if err != nil {
			pool.Close()
			return err
		}
		pm := updatePool(n)
		outcomes := []dilution.Outcome{dilution.Negative, dilution.Positive}
		i := 0
		t := bench.Measure(c.reps(), 1, func() {
			if err := m.Update(pm, outcomes[i%2]); err != nil {
				panic(err)
			}
			i++
		})
		pool.Close()
		if base == 0 {
			base = t.Mean
		}
		// Weak-scaling efficiency: T(1)/T(w) at matched per-worker load.
		tab.AddRow(w, n, uint64(1)<<uint(n), t.Mean, bench.Speedup(base, t.Mean))
		w *= 2
		grow++
	}
	return c.emit(tab)
}

// runF3 is the operating-characteristics sweep: accuracy, savings, and
// stage counts as prevalence rises, with and without dilution.
func runF3(c *ctx) error {
	pool := c.newPool(c.workers)
	defer pool.Close()
	cohort, reps := 16, 48
	if c.quick {
		cohort, reps = 10, 12
	}
	prevs := []float64{0.005, 0.01, 0.02, 0.05, 0.1, 0.2}
	tab := bench.NewTable(fmt.Sprintf("F3: surveillance vs prevalence, N=%d, %d replicates", cohort, reps),
		"assay", "prevalence", "tests/subj", "savings", "accuracy", "sens", "spec", "stages")
	for _, assay := range []struct {
		name string
		resp dilution.Response
	}{
		{"ideal", dilution.Ideal{}},
		{"dilution", benchResponse},
	} {
		for _, p := range prevs {
			p := p
			cfg := stats.StudyConfig{
				RiskGen:    func(*rng.Source) []float64 { return workload.UniformRisks(cohort, p) },
				Response:   assay.resp,
				Backend:    c.backend,
				Replicates: reps,
				Seed:       c.seed,
				Obs:        c.obs,
				// Thresholds tighter than the lowest prevalence in the
				// sweep: with the default 0.01 negative cutoff above a
				// 0.005 prior, one weak negative would clear everyone.
				PosThreshold: 0.995,
				NegThreshold: 0.002,
			}
			res, err := stats.Run(pool, cfg)
			if err != nil {
				return err
			}
			s := res.Summarize()
			tab.AddRow(assay.name, p, s.TestsPerSubject, res.Savings(), s.Accuracy,
				s.Sensitivity, s.Specificity, s.MeanStages)
		}
	}
	return c.emit(tab)
}

// runF4 is the convergence figure: mean posterior entropy per stage for
// each selection strategy.
func runF4(c *ctx) error {
	cohort, reps, stages := 12, 24, 16
	if c.quick {
		cohort, reps, stages = 10, 8, 12
	}
	mk := func(strat func(r *rng.Source) halving.Strategy) stats.StudyConfig {
		return stats.StudyConfig{
			RiskGen:    func(*rng.Source) []float64 { return workload.UniformRisks(cohort, 0.1) },
			Response:   dilution.Ideal{},
			Strategy:   strat,
			Backend:    c.backend,
			Replicates: reps,
			Seed:       c.seed,
			Obs:        c.obs,
			MaxStages:  stages,
		}
	}
	arms := []struct {
		name  string
		strat func(r *rng.Source) halving.Strategy
	}{
		{"halving", func(*rng.Source) halving.Strategy { return halving.Halving{} }},
		{"random", func(r *rng.Source) halving.Strategy { return halving.Random{Size: cohort / 2, Rng: r.Split()} }},
		{"individual", func(*rng.Source) halving.Strategy { return halving.Individual{} }},
		{"dorfman", func(*rng.Source) halving.Strategy { return &halving.Dorfman{BlockSize: 4} }},
	}
	tab := bench.NewTable(fmt.Sprintf("F4: mean posterior entropy (bits) by stage, N=%d, %d replicates", cohort, reps),
		"strategy", "stage0", "stage2", "stage4", "stage6", "stage8", "stage12")
	for _, arm := range arms {
		trace, err := stats.MeanEntropyTrace(mk(arm.strat), stages)
		if err != nil {
			return err
		}
		tab.AddRow(arm.name, trace[0], trace[2], trace[4], trace[6], trace[8], trace[12])
	}
	return c.emit(tab)
}

// runF5 is the look-ahead trade-off: selecting k pools per stage cuts
// sequential stages at a modest cost in total tests.
func runF5(c *ctx) error {
	pool := c.newPool(c.workers)
	defer pool.Close()
	cohort, reps := 12, 24
	if c.quick {
		cohort, reps = 10, 8
	}
	tab := bench.NewTable(fmt.Sprintf("F5: look-ahead, N=%d, %d replicates", cohort, reps),
		"lookahead", "stages", "tests/subj", "accuracy")
	for _, depth := range []int{1, 2, 4} {
		cfg := stats.StudyConfig{
			RiskGen:    func(*rng.Source) []float64 { return workload.UniformRisks(cohort, 0.08) },
			Response:   benchResponse,
			Lookahead:  depth,
			Replicates: reps,
			Seed:       c.seed,
			Obs:        c.obs,
		}
		res, err := stats.Run(pool, cfg)
		if err != nil {
			return err
		}
		s := res.Summarize()
		tab.AddRow(depth, s.MeanStages, s.TestsPerSubject, s.Accuracy)
	}
	return c.emit(tab)
}

// runF6 measures the distributed runtime: one update+marginals round per
// executor count, executors in-process on loopback TCP — opened through
// the posterior backend spec, the same path sessions and studies use.
func runF6(c *ctx) error {
	n := 18
	if c.quick {
		n = 14
	}
	risks := workload.UniformRisks(n, 0.05)
	pm := updatePool(n)
	tab := bench.NewTable(fmt.Sprintf("F6: distributed lattice kernels over TCP, N=%d", n),
		"executors", "update+marginals", "speedup")
	var base time.Duration
	for _, execs := range []int{1, 2, 4} {
		model, err := posterior.Spec{
			Kind:           posterior.KindCluster,
			LocalExecutors: execs,
			ExecWorkers:    1,
			DialTimeout:    2 * time.Second,
		}.Open(nil, risks, benchResponse)
		if err != nil {
			return err
		}
		outcomes := []dilution.Outcome{dilution.Negative, dilution.Positive}
		i := 0
		t := bench.Measure(c.reps(), 1, func() {
			if err := model.Update(pm, outcomes[i%2]); err != nil {
				panic(err)
			}
			if _, err := model.Marginals(); err != nil {
				panic(err)
			}
			i++
		})
		if err := model.Close(); err != nil {
			return err
		}
		if base == 0 {
			base = t.Mean
		}
		tab.AddRow(execs, t.Mean, bench.Speedup(base, t.Mean))
	}
	return c.emit(tab)
}
