package main

import (
	"fmt"
	"math"

	"repro/internal/bench"
	"repro/internal/dilution"
	"repro/internal/halving"
	"repro/internal/lattice"
	"repro/internal/workload"
)

// runA1 sweeps partition granularity: too few partitions starve dynamic
// load balancing, too many drown in scheduling.
func runA1(c *ctx) error {
	n := 20
	if c.quick {
		n = 16
	}
	pool := c.newPool(c.workers)
	defer pool.Close()
	risks := workload.UniformRisks(n, 0.05)
	pm := updatePool(n)
	tab := bench.NewTable(fmt.Sprintf("A1: partition granularity, N=%d, %d workers", n, c.workers),
		"parts/worker", "partitions", "update", "vs-default")
	var def float64
	for _, ppw := range []int{1, 2, 4, 8, 16} {
		m, err := lattice.New(pool, lattice.Config{Risks: risks, Response: benchResponse, Parts: c.workers * ppw})
		if err != nil {
			return err
		}
		outcomes := []dilution.Outcome{dilution.Negative, dilution.Positive}
		i := 0
		t := bench.Measure(c.reps(), 1, func() {
			if err := m.Update(pm, outcomes[i%2]); err != nil {
				panic(err)
			}
			i++
		})
		if ppw == 4 { // engine default
			def = float64(t.Mean)
		}
		ratio := "-"
		if def > 0 {
			ratio = fmt.Sprintf("%.2fx", float64(t.Mean)/def)
		}
		tab.AddRow(ppw, c.workers*ppw, t.Mean, ratio)
	}
	return c.emit(tab)
}

// runA2 compares the fused update (multiply+sum one pass, scale pass) with
// the unfused two-pass variant (multiply pass, then sum+scale).
func runA2(c *ctx) error {
	pool := c.newPool(c.workers)
	defer pool.Close()
	tab := bench.NewTable("A2: kernel fusion in the posterior update",
		"N", "two-pass", "fused", "speedup")
	for _, n := range c.sizes() {
		risks := workload.UniformRisks(n, 0.05)
		m, err := lattice.New(pool, lattice.Config{Risks: risks, Response: benchResponse})
		if err != nil {
			return err
		}
		pm := updatePool(n)
		outcomes := []dilution.Outcome{dilution.Negative, dilution.Positive}
		i := 0
		tFused := bench.Measure(c.reps(), 1, func() {
			if err := m.Update(pm, outcomes[i%2]); err != nil {
				panic(err)
			}
			i++
		})
		j := 0
		tTwo := bench.Measure(c.reps(), 1, func() {
			m.UpdateTwoPass(pm, outcomes[j%2])
			j++
		})
		tab.AddRow(n, tTwo.Mean, tFused.Mean, bench.Speedup(tTwo.Mean, tFused.Mean))
	}
	return c.emit(tab)
}

// runA3 compares halving candidate sets: prefix-only vs prefix plus
// local search, reporting both cost and split quality on a correlated
// posterior.
func runA3(c *ctx) error {
	n := 16
	if c.quick {
		n = 12
	}
	pool := c.newPool(c.workers)
	defer pool.Close()
	risks := workload.UniformRisks(n, 0.08)
	m, err := lattice.New(pool, lattice.Config{Risks: risks, Response: benchResponse})
	if err != nil {
		return err
	}
	// Correlate the posterior with a few pooled outcomes.
	for i, y := range []dilution.Outcome{dilution.Positive, dilution.Negative, dilution.Positive} {
		pm := updatePool(n - i*3)
		if err := m.Update(pm, y); err != nil {
			return err
		}
	}
	tab := bench.NewTable(fmt.Sprintf("A3: halving candidate set, N=%d", n),
		"candidates", "time", "scanned", "|negmass-0.5|")
	for _, arm := range []struct {
		name string
		opts halving.Options
	}{
		{"prefix", halving.Options{MaxPool: 32}},
		{"prefix+local-search", halving.Options{MaxPool: 32, LocalSearch: true}},
	} {
		var sel halving.Selection
		t := bench.Measure(c.reps(), 1, func() {
			sel = halving.Select(m, arm.opts)
		})
		tab.AddRow(arm.name, t.Mean, sel.Scanned, math.Abs(sel.NegMass-0.5))
	}
	return c.emit(tab)
}
