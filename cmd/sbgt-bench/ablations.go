package main

import (
	"fmt"
	"math"

	"repro/internal/bench"
	"repro/internal/bitvec"
	"repro/internal/dilution"
	"repro/internal/halving"
	"repro/internal/lattice"
	"repro/internal/workload"
)

// runA1 sweeps partition granularity: too few partitions starve dynamic
// load balancing, too many drown in scheduling.
func runA1(c *ctx) error {
	n := 20
	if c.quick {
		n = 16
	}
	pool := c.newPool(c.workers)
	defer pool.Close()
	risks := workload.UniformRisks(n, 0.05)
	pm := updatePool(n)
	tab := bench.NewTable(fmt.Sprintf("A1: partition granularity, N=%d, %d workers", n, c.workers),
		"parts/worker", "partitions", "update", "vs-default")
	var def float64
	for _, ppw := range []int{1, 2, 4, 8, 16} {
		m, err := lattice.New(pool, lattice.Config{Risks: risks, Response: benchResponse, Parts: c.workers * ppw})
		if err != nil {
			return err
		}
		outcomes := []dilution.Outcome{dilution.Negative, dilution.Positive}
		i := 0
		t := bench.Measure(c.reps(), 1, func() {
			if err := m.Update(pm, outcomes[i%2]); err != nil {
				panic(err)
			}
			i++
		})
		if ppw == 4 { // engine default
			def = float64(t.Mean)
		}
		ratio := "-"
		if def > 0 {
			ratio = fmt.Sprintf("%.2fx", float64(t.Mean)/def)
		}
		tab.AddRow(ppw, c.workers*ppw, t.Mean, ratio)
	}
	return c.emit(tab)
}

// runA2 compares the fused update (multiply+sum one pass, scale pass) with
// the unfused two-pass variant (multiply pass, then sum+scale).
func runA2(c *ctx) error {
	pool := c.newPool(c.workers)
	defer pool.Close()
	tab := bench.NewTable("A2: kernel fusion in the posterior update",
		"N", "two-pass", "fused", "speedup")
	for _, n := range c.sizes() {
		risks := workload.UniformRisks(n, 0.05)
		m, err := lattice.New(pool, lattice.Config{Risks: risks, Response: benchResponse})
		if err != nil {
			return err
		}
		pm := updatePool(n)
		outcomes := []dilution.Outcome{dilution.Negative, dilution.Positive}
		i := 0
		tFused := bench.Measure(c.reps(), 1, func() {
			if err := m.Update(pm, outcomes[i%2]); err != nil {
				panic(err)
			}
			i++
		})
		j := 0
		tTwo := bench.Measure(c.reps(), 1, func() {
			m.UpdateTwoPass(pm, outcomes[j%2])
			j++
		})
		tab.AddRow(n, tTwo.Mean, tFused.Mean, bench.Speedup(tTwo.Mean, tFused.Mean))
	}
	return c.emit(tab)
}

// runA3 compares halving candidate sets: prefix-only vs prefix plus
// local search, reporting both cost and split quality on a correlated
// posterior.
func runA3(c *ctx) error {
	n := 16
	if c.quick {
		n = 12
	}
	pool := c.newPool(c.workers)
	defer pool.Close()
	risks := workload.UniformRisks(n, 0.08)
	m, err := lattice.New(pool, lattice.Config{Risks: risks, Response: benchResponse})
	if err != nil {
		return err
	}
	// Correlate the posterior with a few pooled outcomes.
	for i, y := range []dilution.Outcome{dilution.Positive, dilution.Negative, dilution.Positive} {
		pm := updatePool(n - i*3)
		if err := m.Update(pm, y); err != nil {
			return err
		}
	}
	tab := bench.NewTable(fmt.Sprintf("A3: halving candidate set, N=%d", n),
		"candidates", "time", "scanned", "|negmass-0.5|")
	for _, arm := range []struct {
		name string
		opts halving.Options
	}{
		{"prefix", halving.Options{MaxPool: 32}},
		{"prefix+local-search", halving.Options{MaxPool: 32, LocalSearch: true}},
	} {
		var sel halving.Selection
		t := bench.Measure(c.reps(), 1, func() {
			sel = halving.Select(m, arm.opts)
		})
		tab.AddRow(arm.name, t.Mean, sel.Scanned, math.Abs(sel.NegMass-0.5))
	}
	return c.emit(tab)
}

// spreadPool returns a g-subject pool whose members are spread evenly
// across the cohort — the representative case for the sub-lattice walk
// (neither the contiguous-prefix best case nor the low-bits worst case).
func spreadPool(n, g int) bitvec.Mask {
	var pm bitvec.Mask
	for i := 0; i < g; i++ {
		pm = pm.With(i * n / g)
	}
	return pm
}

// candidatePools returns k distinct candidate pools of mixed sizes, the
// shape of a halving local-search scan.
func candidatePools(n, k int) []bitvec.Mask {
	out := make([]bitvec.Mask, 0, k)
	for i := 0; i < k; i++ {
		g := 2 + i%7
		if g > n {
			g = n
		}
		pm := spreadPool(n, g)
		// Rotate so candidates differ; stay inside the cohort.
		out = append(out, bitvec.Mask(uint64(pm)<<uint(i%3)|uint64(pm)>>uint(n-i%3))&bitvec.Full(n))
	}
	return out
}

// runA5 ablates the structure-aware kernels: each row pits the retained
// reference implementation against the shipped kernel on the same
// posterior. NegMass compares the dense filtered scan with the masked
// sub-lattice walk (the crossover tunable is forced to each side);
// Marginals compares the per-state bit walk with the radix-decomposed
// blocks; NegMasses compares the candidate-outer full rescan with the
// cache-tiled scan; Summary compares the four separate full-lattice
// passes a session round used to make with the fused digest.
func runA5(c *ctx) error {
	pool := c.newPool(c.workers)
	defer pool.Close()
	sizes := []int{14, 20, 24}
	if c.quick {
		sizes = []int{12, 14, 16}
	}
	tab := bench.NewTable("A5: structure-aware kernels (reference vs shipped)",
		"kernel", "N", "pool", "old", "new", "speedup")
	for _, n := range sizes {
		risks := workload.UniformRisks(n, 0.05)
		m, err := lattice.New(pool, lattice.Config{Risks: risks, Response: benchResponse})
		if err != nil {
			return err
		}
		if err := m.Update(updatePool(n), dilution.Positive); err != nil {
			return err
		}
		for _, g := range []int{2, 4, 8} {
			pm := spreadPool(n, g)
			prev := lattice.SetSubLatticeMinPool(n + 1) // force the dense path
			tOld := bench.Measure(c.reps(), 1, func() { m.NegMass(pm) })
			lattice.SetSubLatticeMinPool(1) // force the sub-lattice path
			tNew := bench.Measure(c.reps(), 1, func() { m.NegMass(pm) })
			lattice.SetSubLatticeMinPool(prev)
			tab.AddRow("NegMass", n, g, tOld.Mean, tNew.Mean, bench.Speedup(tOld.Mean, tNew.Mean))
		}
		tOld := bench.Measure(c.reps(), 1, func() { m.MarginalsWalk() })
		tNew := bench.Measure(c.reps(), 1, func() { m.Marginals() })
		tab.AddRow("Marginals", n, "-", tOld.Mean, tNew.Mean, bench.Speedup(tOld.Mean, tNew.Mean))
		cands := candidatePools(n, 32)
		tOld = bench.Measure(c.reps(), 1, func() { m.NegMassesUntiled(cands) })
		tNew = bench.Measure(c.reps(), 1, func() { m.NegMasses(cands) })
		tab.AddRow("NegMasses", n, len(cands), tOld.Mean, tNew.Mean, bench.Speedup(tOld.Mean, tNew.Mean))
		tOld = bench.Measure(c.reps(), 1, func() {
			m.Marginals()
			m.Entropy()
			m.MAP()
			m.ExpectedInfected()
			m.Mass()
		})
		tNew = bench.Measure(c.reps(), 1, func() { m.Summary() })
		tab.AddRow("Summary", n, "-", tOld.Mean, tNew.Mean, bench.Speedup(tOld.Mean, tNew.Mean))
	}
	return c.emit(tab)
}
