// Command sbgt-bench regenerates every evaluation artifact of the
// reproduction: the three speedup tables (T1 lattice ops, T2 test
// selection, T3 statistical analyses), the scaling and accuracy figures
// (F1–F6), and the design ablations (A1–A3). See DESIGN.md §4 for the
// experiment index and EXPERIMENTS.md for recorded results.
//
// Usage:
//
//	sbgt-bench -exp all            # everything (minutes)
//	sbgt-bench -exp T1,T2 -quick   # subset at reduced sizes
//	sbgt-bench -list               # show the experiment registry
//
// Flags:
//
//	-exp string     comma-separated experiment ids, or "all" (default "all")
//	-quick          reduced problem sizes for smoke runs
//	-csv            also emit each table as CSV after the aligned form
//	-workers int    engine workers (0 = GOMAXPROCS)
//	-seed uint      root seed for every randomized experiment (default 1)
//	-backend string posterior backend for the study experiments (F3, F4):
//	                dense | sparse | cluster (default dense)
//	-json string    write a machine-readable run report (experiments,
//	                wall times, and the full metric snapshot — including
//	                per-stage session timings) to this file; "-" = stdout
//	-baseline string
//	                write a schema-versioned bench file (BENCH_<n>.json:
//	                per-experiment wall times, registry snapshot, git SHA)
//	                here, for regression comparison with sbgt-benchdiff
//
// Observability flags (shared across the sbgt commands):
//
//	-metrics-addr string  serve /metrics, /healthz, and pprof here
//	-log-level string     debug | info | warn | error (default info)
//	-trace-out string     write collected spans as NDJSON on exit
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/benchfile"
	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/posterior"
)

// experiment is one runnable evaluation artifact.
type experiment struct {
	id    string
	title string
	run   func(c *ctx) error
}

// ctx carries shared experiment configuration.
type ctx struct {
	quick   bool
	csv     bool
	workers int
	seed    uint64
	backend posterior.Spec // posterior backend for the study experiments
	out     *os.File
	obs     *obs.Registry // nil-safe shared registry for every experiment
}

// newPool creates an engine pool instrumented into the run's registry.
func (c *ctx) newPool(workers int) *engine.Pool {
	p := engine.NewPool(workers)
	p.Instrument(c.obs)
	return p
}

// emit prints a finished table (and optionally its CSV form).
func (c *ctx) emit(t *bench.Table) error {
	if _, err := t.WriteTo(c.out); err != nil {
		return err
	}
	fmt.Fprintln(c.out)
	if c.csv {
		if err := t.WriteCSV(c.out); err != nil {
			return err
		}
		fmt.Fprintln(c.out)
	}
	return nil
}

func registry() []experiment {
	return []experiment{
		{"T1", "lattice-model manipulation speedup (SBGT vs serial baseline)", runT1},
		{"T2", "test-selection speedup (halving scan, SBGT vs serial baseline)", runT2},
		{"T3", "statistical-analysis speedup (Monte-Carlo study, parallel vs serial)", runT3},
		{"F1", "strong scaling of the update kernel (speedup & efficiency vs workers)", runF1},
		{"F2", "weak scaling of the update kernel (fixed states/worker)", runF2},
		{"F3", "surveillance operating characteristics vs prevalence", runF3},
		{"F4", "posterior-entropy convergence by selection strategy", runF4},
		{"F5", "look-ahead: stages vs tests trade-off", runF5},
		{"F6", "distributed (TCP executor) lattice kernels", runF6},
		{"F7", "population-scale campaign (cohort composition)", runF7},
		{"A1", "ablation: partition granularity", runA1},
		{"A2", "ablation: fused vs two-pass update", runA2},
		{"A3", "ablation: halving candidate set (prefix vs +local-search)", runA3},
		{"A4", "ablation: cohort assignment (sorted vs contiguous binning)", runA4},
		{"A5", "ablation: structure-aware kernels (sub-lattice, radix, tiling, fusion)", runA5},
		{"S1", "sbgt-serve loopback load (concurrent cohorts, exact p50/p99 latency)", runS1},
		{"S1R", "S1 workload with the observability layer on (recorder overhead)", runS1R},
		{"S1P", "S1 workload with the continuous profiler sampling (profiler overhead)", runS1P},
	}
}

func main() {
	var (
		expFlag  = flag.String("exp", "all", `experiment ids, comma-separated, or "all"`)
		quick    = flag.Bool("quick", false, "reduced problem sizes")
		csv      = flag.Bool("csv", false, "also emit CSV")
		workers  = flag.Int("workers", 0, "engine workers (0 = GOMAXPROCS)")
		seed     = flag.Uint64("seed", 1, "root seed")
		list     = flag.Bool("list", false, "list experiments and exit")
		backend  = flag.String("backend", "dense", "posterior backend for the study experiments: dense | sparse | cluster")
		jsonOut  = flag.String("json", "", `write a JSON run report (wall times + metric snapshot) here; "-" = stdout`)
		baseline = flag.String("baseline", "", `write a schema-versioned bench file (for sbgt-benchdiff) here; "-" = stdout`)
	)
	obsFlags := obs.RegisterFlags(nil)
	flag.Parse()

	rt, err := obsFlags.Start("sbgt-bench")
	if err != nil {
		fmt.Fprintln(os.Stderr, "sbgt-bench:", err)
		os.Exit(2)
	}
	defer rt.Close()

	exps := registry()
	if *list {
		for _, e := range exps {
			fmt.Printf("%-4s %s\n", e.id, e.title)
		}
		return
	}

	want := map[string]bool{}
	if *expFlag != "all" {
		for _, id := range strings.Split(*expFlag, ",") {
			want[strings.ToUpper(strings.TrimSpace(id))] = true
		}
		known := map[string]bool{}
		for _, e := range exps {
			known[e.id] = true
		}
		var unknown []string
		for id := range want {
			if !known[id] {
				unknown = append(unknown, id)
			}
		}
		if len(unknown) > 0 {
			sort.Strings(unknown)
			rt.Fatal(fmt.Errorf("unknown experiment(s): %s (use -list)", strings.Join(unknown, ", ")))
		}
	}

	kind, err := posterior.ParseKind(*backend)
	if err != nil {
		rt.Fatal(err)
	}
	c := &ctx{quick: *quick, csv: *csv, workers: *workers, seed: *seed, out: os.Stdout, obs: rt.Reg}
	// The study experiments replicate campaigns on single-worker models, so
	// the cluster backend gets single-worker local executors to match.
	c.backend = posterior.Spec{
		Kind:           kind,
		Eps:            1e-9,
		LocalExecutors: 2,
		ExecWorkers:    1,
		DialTimeout:    2 * time.Second,
		Obs:            rt.Reg,
	}
	if c.workers <= 0 {
		c.workers = runtime.GOMAXPROCS(0)
	}
	fmt.Printf("sbgt-bench: %d workers, quick=%v, seed=%d, backend=%s\n\n", c.workers, c.quick, c.seed, kind)
	// The run report and the bench baseline are the same schema-versioned
	// artifact (benchfile.File); -json keeps its historical name.
	report := &benchfile.File{Workers: c.workers, Quick: c.quick, Seed: c.seed, Backend: string(kind)}
	for _, e := range exps {
		if *expFlag != "all" && !want[e.id] {
			continue
		}
		fmt.Printf("### %s: %s\n", e.id, e.title)
		start := time.Now()
		if err := e.run(c); err != nil {
			rt.Fatal(fmt.Errorf("%s: %v", e.id, err))
		}
		report.Experiments = append(report.Experiments, benchfile.Experiment{
			ID: e.id, Title: e.title, Seconds: time.Since(start).Seconds(),
		})
	}
	if *jsonOut != "" || *baseline != "" {
		report.Metrics = rt.Reg.Snapshot()
	}
	for _, path := range []string{*jsonOut, *baseline} {
		if path == "" {
			continue
		}
		if err := benchfile.Write(path, report); err != nil {
			rt.Fatal(err)
		}
	}
}

// sizes returns the lattice-size sweep for the speedup tables.
func (c *ctx) sizes() []int {
	if c.quick {
		return []int{12, 14, 16}
	}
	return []int{12, 14, 16, 18, 20}
}

// reps returns measurement repetitions.
func (c *ctx) reps() int {
	if c.quick {
		return 2
	}
	return 3
}
