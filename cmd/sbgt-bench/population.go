package main

import (
	"fmt"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/program"
	"repro/internal/rng"
)

// runF7 shows population scale-out: cohort-sized sessions compose linearly,
// so tests/subject stays flat while population grows.
func runF7(c *ctx) error {
	pool := c.newPool(c.workers)
	defer pool.Close()
	sizes := []int{64, 128, 256, 512}
	if c.quick {
		sizes = []int{48, 96}
	}
	tab := bench.NewTable("F7: population campaigns (cohort size 16, 5% prevalence)",
		"population", "cohorts", "tests", "tests/subj", "accuracy", "wall")
	for _, n := range sizes {
		risks := make([]float64, n)
		for i := range risks {
			risks[i] = 0.05
		}
		r := rng.New(c.seed)
		popu := program.DrawPopulation(risks, r)
		oracle := program.NewOracle(popu, benchResponse, r)
		var res *program.Result
		t := bench.Measure(1, 0, func() {
			var err error
			res, err = program.Run(pool, program.Config{
				Risks:    risks,
				Response: benchResponse,
				MaxPool:  12,
			}, oracle.Test)
			if err != nil {
				panic(err)
			}
		})
		correct := 0
		for g, call := range res.Classifications {
			if (call.Status == core.StatusPositive) == popu.Infected[g] {
				correct++
			}
		}
		tab.AddRow(n, res.Cohorts, res.Tests, res.TestsPerSubject(),
			fmt.Sprintf("%.4f", float64(correct)/float64(n)), t.Mean)
	}
	return c.emit(tab)
}

// runA4 is the binning ablation: with adaptive selection, sorted and
// contiguous assignment should land within noise of each other on cost —
// the measured counterpoint to classical (non-adaptive) pooling folklore.
func runA4(c *ctx) error {
	pool := c.newPool(c.workers)
	defer pool.Close()
	n, reps := 96, 6
	if c.quick {
		n, reps = 48, 3
	}
	// Skewed risk: 1-in-8 at 30%, the rest at 1%.
	risks := make([]float64, n)
	for i := range risks {
		if i%8 == 0 {
			risks[i] = 0.3
		} else {
			risks[i] = 0.01
		}
	}
	tab := bench.NewTable(fmt.Sprintf("A4: cohort assignment under skewed risk, n=%d, %d reps", n, reps),
		"assignment", "tests", "tests/subj", "max stages", "accuracy")
	for _, mode := range []program.Assignment{program.AssignSorted, program.AssignContiguous} {
		var tests, correct, maxStages int
		for rep := 0; rep < reps; rep++ {
			r := rng.New(c.seed + uint64(rep))
			popu := program.DrawPopulation(risks, r)
			oracle := program.NewOracle(popu, benchResponse, r)
			res, err := program.Run(pool, program.Config{
				Risks:      risks,
				Response:   benchResponse,
				Assignment: mode,
				MaxPool:    12,
			}, oracle.Test)
			if err != nil {
				return err
			}
			tests += res.Tests
			if res.MaxStages > maxStages {
				maxStages = res.MaxStages
			}
			for g, call := range res.Classifications {
				if (call.Status == core.StatusPositive) == popu.Infected[g] {
					correct++
				}
			}
		}
		tab.AddRow(mode.String(), tests, float64(tests)/float64(n*reps), maxStages,
			fmt.Sprintf("%.4f", float64(correct)/float64(n*reps)))
	}
	return c.emit(tab)
}
