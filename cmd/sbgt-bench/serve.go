package main

import (
	"errors"
	"net"
	"net/http"
	"os"
	"time"

	"repro/internal/bench"
	"repro/internal/serve"
)

// runS1 measures the sbgt-serve request path end to end: an in-process
// server hosting thousands of concurrent cohorts on the loopback
// interface, driven to classification by the load client. The reported
// p50/p99 are exact request-latency percentiles over every request of
// the run, and the run itself re-verifies correctness — zero lost or
// double-absorbed results, zero misclassifications under the Ideal
// response. Quick runs a few hundred cohorts; the full run sustains the
// 10k-cohort population the service is sized for, with residency bounded
// far below the population so the evict/restore path carries real load.
func runS1(c *ctx) error {
	cohorts, maxResident, workers := 10000, 512, 128
	if c.quick {
		cohorts, maxResident, workers = 300, 64, 32
	}

	pool := c.newPool(c.workers)
	defer pool.Close()
	dir, err := os.MkdirTemp("", "sbgt-serve-bench-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	mgr, err := serve.NewManager(serve.ManagerConfig{
		Pool:        pool,
		Dir:         dir,
		MaxResident: maxResident,
		MaxCohorts:  cohorts * 2,
		Obs:         c.obs,
	})
	if err != nil {
		return err
	}
	defer mgr.Close()

	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	srv := &http.Server{
		Handler:           serve.NewServer(serve.ServerConfig{Manager: mgr, MaxInflight: 1024, Obs: c.obs}),
		ReadHeaderTimeout: 5 * time.Second,
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(lis) }() //lint:allow goroutineleak serveErr is buffered; the single send cannot block
	defer srv.Close()

	report, err := serve.RunLoad(serve.LoadConfig{
		Target:   "http://" + lis.Addr().String(),
		Cohorts:  cohorts,
		Subjects: 8,
		Risk:     0.08,
		Workers:  workers,
		Seed:     c.seed,
	})
	if err != nil {
		return err
	}
	if report.Misclassified != 0 || report.ResultsSent != report.TestsServer {
		return errors.New("S1: load run failed verification (lost results or misclassification)")
	}
	select {
	case err := <-serveErr:
		if !errors.Is(err, http.ErrServerClosed) {
			return err
		}
	default:
	}

	// Land the percentiles in the metric snapshot so the BENCH trajectory
	// tracks them across commits.
	if c.obs != nil {
		c.obs.Gauge("sbgt_serve_loadtest_p50_seconds").Set(report.P50.Seconds())
		c.obs.Gauge("sbgt_serve_loadtest_p99_seconds").Set(report.P99.Seconds())
		c.obs.Gauge("sbgt_serve_loadtest_requests_per_second").Set(report.Throughput())
	}

	tab := bench.NewTable("S1: sbgt-serve loopback load (exact percentiles)",
		"cohorts", "requests", "p50", "p99", "req/s", "elapsed")
	tab.AddRow(report.Cohorts, report.Requests, report.P50, report.P99,
		int(report.Throughput()), report.Elapsed.Round(time.Millisecond))
	return c.emit(tab)
}
