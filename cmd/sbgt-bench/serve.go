package main

import (
	"errors"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"repro/internal/bench"
	"repro/internal/obs"
	"repro/internal/obs/profiler"
	"repro/internal/serve"
)

// serveObs bundles the optional observability stack for a serve load
// run: nil fields mean "off", which is the S1 baseline.
type serveObs struct {
	tracer *obs.Tracer
	flight *obs.FlightRecorder
	slo    *obs.SLO
}

// runServeLoad boots an in-process sbgt-serve on loopback, drives the
// standard load-client population against it, verifies the run (zero
// lost results, zero misclassifications), and returns the load report.
// The same harness backs S1 (observability off) and S1R (flight
// recorder + tracing + SLO evaluator on), so the two measure exactly
// the same workload and their percentile delta is the recorder
// overhead.
func runServeLoad(c *ctx, o serveObs) (*serve.LoadReport, error) {
	cohorts, maxResident, workers := 10000, 512, 128
	if c.quick {
		cohorts, maxResident, workers = 300, 64, 32
	}

	pool := c.newPool(c.workers)
	defer pool.Close()
	dir, err := os.MkdirTemp("", "sbgt-serve-bench-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	mgr, err := serve.NewManager(serve.ManagerConfig{
		Pool:        pool,
		Dir:         dir,
		MaxResident: maxResident,
		MaxCohorts:  cohorts * 2,
		Obs:         c.obs,
		Tracer:      o.tracer,
		Flight:      o.flight,
	})
	if err != nil {
		return nil, err
	}
	defer mgr.Close()

	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	srv := &http.Server{
		Handler: serve.NewServer(serve.ServerConfig{
			Manager:     mgr,
			MaxInflight: 1024,
			Obs:         c.obs,
			Tracer:      o.tracer,
			Flight:      o.flight,
			SLO:         o.slo,
		}),
		ReadHeaderTimeout: 5 * time.Second,
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(lis) }() //lint:allow goroutineleak serveErr is buffered; the single send cannot block
	defer srv.Close()

	report, err := serve.RunLoad(serve.LoadConfig{
		Target:   "http://" + lis.Addr().String(),
		Cohorts:  cohorts,
		Subjects: 8,
		Risk:     0.08,
		Workers:  workers,
		Seed:     c.seed,
	})
	if err != nil {
		return nil, err
	}
	if report.Misclassified != 0 || report.ResultsSent != report.TestsServer {
		return nil, errors.New("load run failed verification (lost results or misclassification)")
	}
	select {
	case err := <-serveErr:
		if !errors.Is(err, http.ErrServerClosed) {
			return nil, err
		}
	default:
	}
	return report, nil
}

// runS1 measures the sbgt-serve request path end to end: an in-process
// server hosting thousands of concurrent cohorts on the loopback
// interface, driven to classification by the load client. The reported
// p50/p99 are exact request-latency percentiles over every request of
// the run, and the run itself re-verifies correctness — zero lost or
// double-absorbed results, zero misclassifications under the Ideal
// response. Quick runs a few hundred cohorts; the full run sustains the
// 10k-cohort population the service is sized for, with residency bounded
// far below the population so the evict/restore path carries real load.
// S1 runs with the flight recorder, tracer, and SLO evaluator OFF — it
// is the baseline S1R's overhead is judged against.
func runS1(c *ctx) error {
	report, err := runServeLoad(c, serveObs{})
	if err != nil {
		return fmt.Errorf("S1: %w", err)
	}

	// Land the percentiles in the metric snapshot so the BENCH trajectory
	// tracks them across commits.
	if c.obs != nil {
		c.obs.Gauge("sbgt_serve_loadtest_p50_seconds").Set(report.P50.Seconds())
		c.obs.Gauge("sbgt_serve_loadtest_p99_seconds").Set(report.P99.Seconds())
		c.obs.Gauge("sbgt_serve_loadtest_requests_per_second").Set(report.Throughput())
	}

	tab := bench.NewTable("S1: sbgt-serve loopback load (exact percentiles)",
		"cohorts", "requests", "p50", "p99", "req/s", "elapsed")
	tab.AddRow(report.Cohorts, report.Requests, report.P50, report.P99,
		int(report.Throughput()), report.Elapsed.Round(time.Millisecond))
	return c.emit(tab)
}

// runS1R repeats the S1 workload with the full observability layer live:
// every request records a flight-recorder event and a span with an
// exemplar, per-tenant RED series update, and an SLO evaluator diffs the
// registry once a second. The p50/p99 delta against S1's gauges (both
// land in the same bench file) is the measured recorder overhead; the
// budget is ≤2% on p99.
func runS1R(c *ctx) error {
	tracer := obs.NewTracer(4096)
	flight := obs.NewFlightRecorder(0)
	flight.Instrument(c.obs)

	o := serveObs{tracer: tracer, flight: flight}
	if c.obs != nil {
		// A realistic-but-unbreached objective: the evaluator runs every
		// second and publishes burn gauges, but a loopback p99 sits far under
		// one second, so the bench never trips an anomaly dump.
		slo, err := obs.NewSLO(c.obs, flight, []obs.Objective{{
			Name:     "p99_request",
			Metric:   "sbgt_serve_request_seconds",
			Quantile: 0.99,
			Target:   1.0,
		}})
		if err != nil {
			return fmt.Errorf("S1R: %w", err)
		}
		stop := slo.Start(time.Second)
		defer stop()
		o.slo = slo
	}

	report, err := runServeLoad(c, o)
	if err != nil {
		return fmt.Errorf("S1R: %w", err)
	}

	if c.obs != nil {
		c.obs.Gauge("sbgt_serve_obsload_p50_seconds").Set(report.P50.Seconds())
		c.obs.Gauge("sbgt_serve_obsload_p99_seconds").Set(report.P99.Seconds())
		c.obs.Gauge("sbgt_serve_obsload_requests_per_second").Set(report.Throughput())
	}

	// When S1 ran earlier in this process its gauges hold the baseline;
	// report the head-to-head overhead inline.
	overhead := "n/a (run S1 too)"
	if c.obs != nil {
		if base := c.obs.Gauge("sbgt_serve_loadtest_p99_seconds").Value(); base > 0 {
			overhead = fmt.Sprintf("%+.1f%%", (report.P99.Seconds()/base-1)*100)
		}
	}

	tab := bench.NewTable("S1R: S1 workload with flight recorder + exemplars + SLO evaluator on",
		"cohorts", "requests", "p50", "p99", "p99 vs S1", "req/s", "elapsed")
	tab.AddRow(report.Cohorts, report.Requests, report.P50, report.P99,
		overhead, int(report.Throughput()), report.Elapsed.Round(time.Millisecond))
	return c.emit(tab)
}

// runS1P repeats the S1 workload with the continuous profiler live:
// background captures fire on a fixed interval — each opening a CPU
// window and snapshotting heap/goroutine/mutex to disk — while the load
// client drives the same request stream S1 measures. The p99 delta
// against S1's gauges is the certified always-on profiling overhead; the
// budget mirrors S1R's ≤2% on p99. The bundle count in the table proves
// the sampler actually ran during the measured window rather than idling.
func runS1P(c *ctx) error {
	flight := obs.NewFlightRecorder(0)
	flight.Instrument(c.obs)

	// A ~5% CPU-window duty cycle, matching how the flag defaults are meant
	// to be deployed. Quick runs finish in well under a second, so the
	// cadence scales down with the workload (same duty cycle) to keep
	// captures landing inside the measured window.
	interval, window := 2*time.Second, 100*time.Millisecond
	if c.quick {
		interval, window = 200*time.Millisecond, 10*time.Millisecond
	}

	dir, err := os.MkdirTemp("", "sbgt-bench-profiles-*")
	if err != nil {
		return fmt.Errorf("S1P: %w", err)
	}
	defer os.RemoveAll(dir)
	prof, err := profiler.New(profiler.Config{
		Dir:       dir,
		Interval:  interval,
		CPUWindow: window,
		Reg:       c.obs,
		Flight:    flight,
	})
	if err != nil {
		return fmt.Errorf("S1P: %w", err)
	}
	prof.Start()
	defer prof.Close()

	report, err := runServeLoad(c, serveObs{flight: flight})
	if err != nil {
		return fmt.Errorf("S1P: %w", err)
	}

	if c.obs != nil {
		c.obs.Gauge("sbgt_serve_profload_p50_seconds").Set(report.P50.Seconds())
		c.obs.Gauge("sbgt_serve_profload_p99_seconds").Set(report.P99.Seconds())
		c.obs.Gauge("sbgt_serve_profload_requests_per_second").Set(report.Throughput())
	}

	overhead := "n/a (run S1 too)"
	if c.obs != nil {
		if base := c.obs.Gauge("sbgt_serve_loadtest_p99_seconds").Value(); base > 0 {
			overhead = fmt.Sprintf("%+.1f%%", (report.P99.Seconds()/base-1)*100)
		}
	}

	tab := bench.NewTable(
		fmt.Sprintf("S1P: S1 workload with continuous profiler sampling (%v interval, %v CPU window)",
			interval, window),
		"cohorts", "requests", "p50", "p99", "p99 vs S1", "bundles", "req/s", "elapsed")
	tab.AddRow(report.Cohorts, report.Requests, report.P50, report.P99,
		overhead, len(prof.Bundles()), int(report.Throughput()), report.Elapsed.Round(time.Millisecond))
	return c.emit(tab)
}
