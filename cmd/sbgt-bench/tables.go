package main

import (
	"fmt"

	"repro/internal/baseline"
	"repro/internal/bench"
	"repro/internal/bitvec"
	"repro/internal/dilution"
	"repro/internal/halving"
	"repro/internal/lattice"
	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/workload"
)

// benchResponse is the assay used by the kernel benchmarks: noisy enough
// that repeated updates never zero the lattice.
var benchResponse = dilution.Hyperbolic{MaxSens: 0.97, Spec: 0.99, D: 0.3}

// updatePool returns the pool the kernel benchmarks test: the first
// min(n, 16) subjects.
func updatePool(n int) bitvec.Mask {
	k := n
	if k > 16 {
		k = 16
	}
	return bitvec.Full(k)
}

// runT1 measures the lattice-manipulation kernel — posterior update plus
// renormalization plus full marginals — on the engine vs the serial
// baseline. This is the paper's "manipulating lattice models" table.
func runT1(c *ctx) error {
	pool := c.newPool(c.workers)
	defer pool.Close()
	tab := bench.NewTable("T1: lattice ops (update + marginals), SBGT vs baseline",
		"N", "states", "baseline", "sbgt", "speedup")
	for _, n := range c.sizes() {
		risks := workload.UniformRisks(n, 0.05)
		fast, err := lattice.New(pool, lattice.Config{Risks: risks, Response: benchResponse})
		if err != nil {
			return err
		}
		slow, err := baseline.New(risks, benchResponse)
		if err != nil {
			return err
		}
		pm := updatePool(n)
		outcomes := []dilution.Outcome{dilution.Negative, dilution.Positive}
		i := 0
		tFast := bench.Measure(c.reps(), 1, func() {
			if err := fast.Update(pm, outcomes[i%2]); err != nil {
				panic(err)
			}
			fast.Marginals()
			i++
		})
		j := 0
		tSlow := bench.Measure(c.reps(), 1, func() {
			if err := slow.Update(pm, outcomes[j%2]); err != nil {
				panic(err)
			}
			slow.Marginals()
			j++
		})
		tab.AddRow(n, uint64(1)<<uint(n), tSlow.Mean, tFast.Mean, bench.Speedup(tSlow.Mean, tFast.Mean))
	}
	return c.emit(tab)
}

// runT2 measures one full halving selection — candidate generation plus
// the clean-mass scan — engine vs baseline ("performing test selections").
func runT2(c *ctx) error {
	pool := c.newPool(c.workers)
	defer pool.Close()
	tab := bench.NewTable("T2: halving test selection, SBGT vs baseline",
		"N", "states", "baseline", "sbgt", "speedup")
	for _, n := range c.sizes() {
		risks := workload.UniformRisks(n, 0.05)
		fast, err := lattice.New(pool, lattice.Config{Risks: risks, Response: benchResponse})
		if err != nil {
			return err
		}
		slow, err := baseline.New(risks, benchResponse)
		if err != nil {
			return err
		}
		// A couple of updates so selection works on a non-trivial posterior.
		for _, y := range []dilution.Outcome{dilution.Positive, dilution.Negative} {
			if err := fast.Update(updatePool(n), y); err != nil {
				return err
			}
			if err := slow.Update(updatePool(n), y); err != nil {
				return err
			}
		}
		tFast := bench.Measure(c.reps(), 1, func() {
			halving.Select(fast, halving.Options{MaxPool: 32})
		})
		tSlow := bench.Measure(c.reps(), 1, func() {
			slow.SelectHalving(32)
		})
		tab.AddRow(n, uint64(1)<<uint(n), tSlow.Mean, tFast.Mean, bench.Speedup(tSlow.Mean, tFast.Mean))
	}
	return c.emit(tab)
}

// runT3 measures a full Monte-Carlo surveillance study, replicates fanned
// out across workers vs strictly serial ("conducting statistical
// analyses").
func runT3(c *ctx) error {
	pool := c.newPool(c.workers)
	defer pool.Close()
	reps := 64
	cohort := 12
	if c.quick {
		reps, cohort = 16, 10
	}
	cfg := stats.StudyConfig{
		RiskGen:    func(*rng.Source) []float64 { return workload.UniformRisks(cohort, 0.05) },
		Response:   benchResponse,
		Replicates: reps,
		Seed:       c.seed,
		Obs:        c.obs,
	}
	tab := bench.NewTable("T3: Monte-Carlo study throughput, parallel vs serial",
		"replicates", "cohort", "serial", "parallel", "speedup", "accuracy")
	var sum stats.Summary
	tSer := bench.Measure(c.reps(), 0, func() {
		res, err := stats.RunSerial(cfg)
		if err != nil {
			panic(err)
		}
		sum = res.Summarize()
	})
	tPar := bench.Measure(c.reps(), 0, func() {
		res, err := stats.Run(pool, cfg)
		if err != nil {
			panic(err)
		}
		sum = res.Summarize()
	})
	tab.AddRow(reps, cohort, tSer.Mean, tPar.Mean, bench.Speedup(tSer.Mean, tPar.Mean),
		fmt.Sprintf("%.4f", sum.Accuracy))
	return c.emit(tab)
}
