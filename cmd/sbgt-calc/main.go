// Command sbgt-calc is the pooling-design calculator: given a prevalence
// and an assay model it compares individual testing, the optimal Dorfman
// two-stage design, and the adaptive Bayesian-halving programme, and
// prints guidance on when and how to pool — the CLI analogue of the
// web-based calculator introduced alongside the Bayesian group-testing
// methodology.
//
// Usage:
//
//	sbgt-calc -prev 0.02 -assay hyperbolic -maxpool 16
//
// Flags:
//
//	-prev float    population prevalence (required to be in (0,1); default 0.02)
//	-assay string  ideal | binary | hyperbolic | logistic | ct (default binary)
//	-maxpool int   largest pool the lab can run (default 32)
//	-cohort int    lattice size for the halving estimate (default 16)
//	-reps int      Monte-Carlo replicates for the halving estimate (default 48)
//	-lookahead int pools per stage for the halving programme (default 1)
//	-seed uint     Monte-Carlo seed (default 1)
//	-sweep         print a prevalence sweep instead of one row
//	-log-level     debug | info | warn | error (default info)
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"repro/internal/calculator"
	"repro/internal/dilution"
	"repro/internal/obs"
)

func main() {
	var (
		prev      = flag.Float64("prev", 0.02, "population prevalence")
		assay     = flag.String("assay", "binary", "ideal | binary | hyperbolic | logistic | ct")
		maxPool   = flag.Int("maxpool", 32, "largest pool the lab can run")
		cohort    = flag.Int("cohort", 16, "lattice size for the halving estimate")
		reps      = flag.Int("reps", 48, "Monte-Carlo replicates")
		lookahead = flag.Int("lookahead", 1, "pools per stage")
		seed      = flag.Uint64("seed", 1, "Monte-Carlo seed")
		sweep     = flag.Bool("sweep", false, "print a prevalence sweep")
		logLevel  = flag.String("log-level", "info", "log verbosity: debug | info | warn | error")
	)
	flag.Parse()

	logg, err := obs.CLILogger(os.Stderr, "sbgt-calc", *logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sbgt-calc:", err)
		os.Exit(2)
	}
	fatal := func(err error) {
		logg.Error(err.Error())
		os.Exit(1)
	}

	resp, err := makeResponse(*assay)
	if err != nil {
		fatal(err)
	}
	hp := calculator.HalvingParams{
		Cohort:     *cohort,
		MaxPool:    *maxPool,
		Lookahead:  *lookahead,
		Replicates: *reps,
		Seed:       *seed,
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "prevalence\tdesign\ttests/subj\tstages\tsens\tspec\tbasis")
	prevs := []float64{*prev}
	if *sweep {
		prevs = []float64{0.005, 0.01, 0.02, 0.05, 0.1, 0.2}
	}
	for _, p := range prevs {
		designs, err := calculator.Compare(p, resp, hp)
		if err != nil {
			fatal(err)
		}
		for _, d := range designs {
			basis := "monte-carlo"
			if d.Exact {
				basis = "exact"
			}
			fmt.Fprintf(w, "%.3f\t%s\t%.4f\t%.2f\t%.4f\t%.4f\t%s\n",
				p, d.Name, d.TestsPerSubject, d.Stages, d.Sens, d.Spec, basis)
		}
	}
	if err := w.Flush(); err != nil {
		fatal(err)
	}

	if !*sweep {
		designs, err := calculator.Compare(*prev, resp, hp)
		if err != nil {
			fatal(err)
		}
		best := calculator.Recommend(designs)
		fmt.Printf("\nrecommendation at prevalence %.3f with %s assay: %s\n", *prev, resp.Name(), best.Name)
		fmt.Println("(cheapest design whose sensitivity reaches 90% of individual testing's)")
		for _, d := range designs {
			if d.Sens < 0.9*designs[0].Sens {
				fmt.Printf("caution: %s is cheap but would miss %.0f%% of infections — dilution dominates it.\n",
					d.Name, 100*(1-d.Sens))
			}
		}
		switch {
		case best.Name == "individual":
			fmt.Println("pooling does not pay here — prevalence is too high or the assay too weak.")
		case best.Stages > 2.5:
			fmt.Printf("note the stage cost: %.1f sequential lab round-trips per cohort on average.\n", best.Stages)
		}
	}
}

func makeResponse(assay string) (dilution.Response, error) {
	switch assay {
	case "ideal":
		return dilution.Ideal{}, nil
	case "binary":
		return dilution.Binary{Sens: 0.95, Spec: 0.99}, nil
	case "hyperbolic":
		return dilution.Hyperbolic{MaxSens: 0.98, Spec: 0.995, D: 0.25}, nil
	case "logistic":
		return dilution.Logistic{MaxSens: 0.98, Spec: 0.995, Alpha: 4, Beta: 1.5}, nil
	case "ct":
		return dilution.DefaultCt(), nil
	default:
		return nil, fmt.Errorf("unknown assay %q", assay)
	}
}
