// Command sbgt-benchdiff compares two bench files written by
// `sbgt-bench -baseline` and fails (exit 1) when any experiment regressed
// beyond the noise thresholds — the perf analogue of a failing test. It
// is the comparison half of the BENCH trajectory: commit BENCH_0.json as
// the baseline, let CI diff fresh runs against it.
//
// Usage:
//
//	sbgt-benchdiff [flags] OLD.json NEW.json
//
// Flags:
//
//	-ratio float        slowdown ratio bound (default 1.5: new > 1.5×old)
//	-min-seconds float  absolute slowdown floor (default 0.05s); both
//	                    bounds must be exceeded to count as a regression
//	-override value     per-experiment ratio override, ID=RATIO
//	                    (repeatable), e.g. -override F6=5
//	-json               emit the comparison as JSON instead of a table
//
// Exit status: 0 no regressions, 1 regressions found, 2 usage or I/O
// error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/benchfile"
)

// overrides collects repeatable -override ID=RATIO flags.
type overrides map[string]float64

func (o overrides) String() string { return fmt.Sprint(map[string]float64(o)) }

func (o overrides) Set(v string) error {
	id, val, ok := strings.Cut(v, "=")
	if !ok || id == "" {
		return fmt.Errorf("want ID=RATIO, got %q", v)
	}
	r, err := strconv.ParseFloat(val, 64)
	if err != nil || r <= 0 {
		return fmt.Errorf("invalid ratio %q", val)
	}
	o[id] = r
	return nil
}

func main() {
	var (
		ratio      = flag.Float64("ratio", 0, "slowdown ratio bound (0 selects 1.5)")
		minSeconds = flag.Float64("min-seconds", 0, "absolute slowdown floor in seconds (0 selects 0.05)")
		jsonOut    = flag.Bool("json", false, "emit the comparison as JSON")
	)
	over := overrides{}
	flag.Var(over, "override", "per-experiment ratio override, ID=RATIO (repeatable)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: sbgt-benchdiff [flags] OLD.json NEW.json\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "sbgt-benchdiff:", err)
		os.Exit(2)
	}
	oldF, err := benchfile.Read(flag.Arg(0))
	if err != nil {
		fail(err)
	}
	newF, err := benchfile.Read(flag.Arg(1))
	if err != nil {
		fail(err)
	}
	res := benchfile.Diff(oldF, newF, benchfile.Thresholds{
		Ratio:         *ratio,
		MinSeconds:    *minSeconds,
		PerExperiment: over,
	})
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fail(err)
		}
	} else if err := res.WriteText(os.Stdout); err != nil {
		fail(err)
	}
	if res.Regressed() {
		os.Exit(1)
	}
}
