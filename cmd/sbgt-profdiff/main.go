// Command sbgt-profdiff compares two profile captures by cumulative
// hot-function share and exits nonzero on regression — the trajectory
// treatment BENCH_n.json gives wall times, applied to where the time
// goes.
//
// Usage:
//
//	sbgt-profdiff [flags] OLD NEW
//	sbgt-profdiff -write-baseline out.json CAPTURE
//
// OLD and NEW each name a capture, in any of three forms:
//
//	a .pprof file        raw gzipped profile (runtime/pprof output, or a
//	                     file downloaded from /debug/profiles/{id}/{file})
//	a bundle directory   a continuous-profiler bundle (contains meta.json);
//	                     -profile picks the file inside (default cpu.pprof)
//	a baseline .json     a share table committed by -write-baseline
//
// The comparison is by per-function share of total, not absolute time,
// so captures of different window lengths and machines diff cleanly. A
// function is a regression when its cumulative share grew by at least
// -threshold-pp percentage points AND its new share clears -min-share
// (the tail of a short 100 Hz window is noise, not signal). Improvements
// never fail the diff.
//
// Flags:
//
//	-profile string       file inside a bundle directory (default cpu.pprof)
//	-sample string        sample type to compare (default: cpu, else the
//	                      profile's default column)
//	-threshold-pp float   regression threshold in percentage points (default 10)
//	-min-share float      ignore functions below this new share (default 0.05)
//	-top int              rows shown (default 15; regressions always shown)
//	-json                 emit the full diff as JSON instead of text
//	-write-baseline path  write CAPTURE's share table to path and exit
//
// Exit status: 0 clean, 1 regression detected, 2 usage or read error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/obs/profiler"
)

func main() {
	var (
		profile     = flag.String("profile", profiler.CPUProfile, "file inside a bundle directory")
		sample      = flag.String("sample", "", "sample type to compare (default: cpu, else the profile's default)")
		thresholdPP = flag.Float64("threshold-pp", profiler.DefaultThresholdPP, "regression threshold in percentage points")
		minShare    = flag.Float64("min-share", profiler.DefaultMinShare, "ignore functions below this new cumulative share")
		top         = flag.Int("top", 15, "rows shown (regressions always shown)")
		asJSON      = flag.Bool("json", false, "emit the diff as JSON")
		writeBase   = flag.String("write-baseline", "", "write the capture's share table to this file and exit")
	)
	flag.Parse()

	if *writeBase != "" {
		if flag.NArg() != 1 {
			usage("writing a baseline takes exactly one capture")
		}
		tab, err := loadTable(flag.Arg(0), *profile, *sample)
		if err != nil {
			fail(err)
		}
		if err := profiler.WriteShareTable(*writeBase, tab, ""); err != nil {
			fail(err)
		}
		fmt.Printf("sbgt-profdiff: wrote baseline %s (%d functions, total %d)\n",
			*writeBase, len(tab.Funcs), tab.Total)
		return
	}

	if flag.NArg() != 2 {
		usage("need OLD and NEW captures")
	}
	oldT, err := loadTable(flag.Arg(0), *profile, *sample)
	if err != nil {
		fail(err)
	}
	newT, err := loadTable(flag.Arg(1), *profile, *sample)
	if err != nil {
		fail(err)
	}
	res := profiler.Diff(oldT, newT, profiler.DiffOptions{
		ThresholdPP: *thresholdPP,
		MinShare:    *minShare,
		Top:         *top,
	})

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fail(err)
		}
	} else {
		render(res, flag.Arg(0), flag.Arg(1))
	}
	if res.Regressions > 0 {
		os.Exit(1)
	}
}

// loadTable resolves one capture reference into a share table.
func loadTable(ref, profile, sample string) (*profiler.ShareTable, error) {
	info, err := os.Stat(ref)
	if err != nil {
		return nil, fmt.Errorf("sbgt-profdiff: %w", err)
	}
	if info.IsDir() {
		// A bundle directory: diff the chosen profile inside it.
		if _, err := os.Stat(filepath.Join(ref, profiler.MetaFile)); err != nil {
			return nil, fmt.Errorf("sbgt-profdiff: %s is not a profile bundle (no %s)", ref, profiler.MetaFile)
		}
		ref = filepath.Join(ref, profile)
		if _, err := os.Stat(ref); err != nil {
			return nil, fmt.Errorf("sbgt-profdiff: bundle has no %s: %w", profile, err)
		}
	}
	if strings.HasSuffix(ref, ".json") {
		return profiler.ReadShareTable(ref)
	}
	p, err := profiler.ParseProfileFile(ref)
	if err != nil {
		return nil, fmt.Errorf("sbgt-profdiff: %s: %w", ref, err)
	}
	return p.Table(sample)
}

func render(res *profiler.DiffResult, oldRef, newRef string) {
	fmt.Printf("sbgt-profdiff: %s (total %d) vs %s (total %d), %s\n",
		oldRef, res.OldTotal, newRef, res.NewTotal, res.SampleType)
	if len(res.Deltas) == 0 {
		fmt.Println("no functions to compare (empty profiles)")
	} else {
		fmt.Printf("%-52s %8s %8s %9s\n", "FUNCTION", "OLD", "NEW", "DELTA")
		for _, d := range res.Deltas {
			mark := ""
			if d.Regress {
				mark = "  REGRESSION"
			}
			name := d.Name
			if len(name) > 52 {
				name = "…" + name[len(name)-51:]
			}
			fmt.Printf("%-52s %7.1f%% %7.1f%% %+8.1fpp%s\n",
				name, d.OldCum*100, d.NewCum*100, d.DeltaPP, mark)
		}
	}
	if res.Regressions > 0 {
		fmt.Printf("sbgt-profdiff: %d regression(s)\n", res.Regressions)
	} else {
		fmt.Println("sbgt-profdiff: clean")
	}
}

func usage(msg string) {
	fmt.Fprintf(os.Stderr, "sbgt-profdiff: %s\nusage: sbgt-profdiff [flags] OLD NEW\n       sbgt-profdiff -write-baseline out.json CAPTURE\n", msg)
	os.Exit(2)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(2)
}
