package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"runtime/pprof"
	"testing"

	"repro/internal/obs/profiler"
)

func writeGoroutineProfile(t *testing.T, path string) {
	t.Helper()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := pprof.Lookup("goroutine").WriteTo(f, 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestLoadTableFromPprofFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "goroutine.pprof")
	writeGoroutineProfile(t, path)
	tab, err := loadTable(path, profiler.CPUProfile, "")
	if err != nil {
		t.Fatalf("loadTable: %v", err)
	}
	if tab.Total == 0 || len(tab.Funcs) == 0 {
		t.Fatalf("empty table from live goroutine profile: %+v", tab)
	}
}

func TestLoadTableFromBundleDir(t *testing.T) {
	// A real bundle: capture one with the profiler and point loadTable at
	// the directory.
	p, err := profiler.New(profiler.Config{Dir: t.TempDir(), CPUWindow: -1, Cooldown: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	meta, err := p.CaptureNow("cli-test")
	if err != nil {
		t.Fatal(err)
	}
	bundleDir := filepath.Join(p.Dir(), meta.ID)
	tab, err := loadTable(bundleDir, profiler.GoroutineProfile, "")
	if err != nil {
		t.Fatalf("loadTable(bundle): %v", err)
	}
	if tab.Total == 0 {
		t.Fatalf("empty table: %+v", tab)
	}
	// A directory without meta.json is rejected, not silently globbed.
	if _, err := loadTable(t.TempDir(), profiler.GoroutineProfile, ""); err == nil {
		t.Fatal("non-bundle directory should be rejected")
	}
}

func TestLoadTableFromBaselineJSON(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "baseline.json")
	want := &profiler.ShareTable{
		SampleType: "cpu/nanoseconds",
		Total:      100,
		Funcs:      []profiler.FuncShare{{Name: "kernel", Cum: 0.8, Flat: 0.8}},
	}
	if err := profiler.WriteShareTable(path, want, "sha"); err != nil {
		t.Fatal(err)
	}
	got, err := loadTable(path, profiler.CPUProfile, "")
	if err != nil {
		t.Fatalf("loadTable(json): %v", err)
	}
	if got.Total != 100 || len(got.Funcs) != 1 || got.Funcs[0].Name != "kernel" {
		t.Fatalf("baseline round trip = %+v", got)
	}
}

func TestSelfDiffIsClean(t *testing.T) {
	// The CI contract: a capture diffed against itself has a stable clean
	// exit, whatever the capture contains.
	dir := t.TempDir()
	path := filepath.Join(dir, "goroutine.pprof")
	writeGoroutineProfile(t, path)
	tab, err := loadTable(path, "", "")
	if err != nil {
		t.Fatal(err)
	}
	res := profiler.Diff(tab, tab, profiler.DiffOptions{})
	if res.Regressions != 0 {
		t.Fatalf("self diff regressed: %+v", res)
	}
	raw, err := json.Marshal(res)
	if err != nil || len(raw) == 0 {
		t.Fatalf("diff result not JSON-encodable: %v", err)
	}
}
