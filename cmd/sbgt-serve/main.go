// Command sbgt-serve hosts surveillance campaigns as a long-lived
// multi-tenant service.
//
// Where cmd/sbgt runs one campaign to completion inside a single
// process, sbgt-serve inverts the loop for the operational reality of
// surveillance: lab round-trips take hours, results arrive out of band,
// and one deployment watches thousands of cohorts. Clients create a
// cohort, fetch proposed pools, run the physical tests on their own
// schedule, and post outcomes back; the session manager keeps a bounded
// number of posteriors resident, checkpoints idle cohorts to disk, and
// restores them on demand.
//
// API (JSON over HTTP):
//
//	POST   /v1/cohorts              create a cohort
//	GET    /v1/cohorts/{id}/pools   next lab work (idempotent)
//	POST   /v1/cohorts/{id}/results submit one stage of outcomes
//	GET    /v1/cohorts/{id}         status + classifications
//	DELETE /v1/cohorts/{id}         close and forget a cohort
//	POST   /v1/drain                checkpoint everything, stop admitting
//
// plus /metrics, /metrics.json, /healthz, /readyz, /spans, and
// /debug/pprof/* on the same listener. SIGTERM and SIGINT drain
// gracefully: admission stops, /readyz flips to 503, every resident
// cohort is checkpointed, and the process exits 0.
//
// Flags:
//
//	-addr string          listen address (default 127.0.0.1:8344)
//	-addr-file string     write the bound address here (for scripts; "" = off)
//	-ckpt-dir string      checkpoint directory (default ./sbgt-ckpt)
//	-max-resident int     posteriors kept in memory (default 256)
//	-max-cohorts int      total cohort bound (default 65536)
//	-max-per-tenant int   per-tenant cohort bound (0 = unbounded)
//	-max-inflight int     concurrently served requests before 429 (default 512)
//	-idle-after duration  idle time before checkpointing a cohort (default 5m)
//	-workers int          engine workers (0 = GOMAXPROCS)
//
// SLO flags (the evaluator runs only when at least one objective is set):
//
//	-slo-p99 duration       p99 request-latency objective (0 = off)
//	-slo-shed-burst int     max sheds per evaluation window (0 = off)
//	-slo-interval duration  evaluation window (default 10s)
//	-slo-degrade            flip /readyz to 503 while an objective burns
//
// Breaches trigger flight-recorder anomaly auto-dumps (view them on
// /debug/flight; SIGQUIT dumps the same JSON to stderr without exiting).
//
// Load-driver mode:
//
//	-loadtest             run the load client instead of the server
//	-target string        server base URL (default http://127.0.0.1:8344)
//	-cohorts int          concurrent cohorts to simulate (default 10000)
//	-subjects int         subjects per cohort (default 8)
//	-risk float           uniform prior risk (default 0.08)
//	-load-workers int     client concurrency (default 128)
//	-seed uint            population seed (default 1)
//
// Observability flags (shared across the sbgt commands): -metrics-addr,
// -log-level, -trace-out, -cpuprofile, -memprofile, and the continuous
// profiler's -profile-dir / -profile-interval / -profile-cpu-window.
// With -profile-dir set, every SLO breach freezes a profile bundle
// (CPU window + heap/goroutine/mutex) under the same anomaly ID as its
// flight dump; bundles are browsable on the API listener at
// /debug/profiles and diffable with sbgt-profdiff.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/obs/profiler"
	"repro/internal/serve"
)

func main() {
	var (
		addr         = flag.String("addr", "127.0.0.1:8344", "listen address")
		addrFile     = flag.String("addr-file", "", "write the bound address to this file (for scripts)")
		ckptDir      = flag.String("ckpt-dir", "sbgt-ckpt", "checkpoint directory for idle and drained cohorts")
		maxResident  = flag.Int("max-resident", 256, "posteriors kept in memory")
		maxCohorts   = flag.Int("max-cohorts", 65536, "total cohort bound")
		maxPerTenant = flag.Int("max-per-tenant", 0, "per-tenant cohort bound (0 = unbounded)")
		maxInflight  = flag.Int("max-inflight", 512, "concurrently served requests before load shedding")
		idleAfter    = flag.Duration("idle-after", 5*time.Minute, "idle time before a cohort is checkpointed")
		workers      = flag.Int("workers", 0, "engine workers (0 = GOMAXPROCS)")

		sloP99       = flag.Duration("slo-p99", 0, "p99 request-latency objective (0 = off)")
		sloShedBurst = flag.Int("slo-shed-burst", 0, "max sheds per evaluation window before anomaly (0 = off)")
		sloInterval  = flag.Duration("slo-interval", 10*time.Second, "SLO evaluation window")
		sloDegrade   = flag.Bool("slo-degrade", false, "flip /readyz to 503 while an SLO objective burns")

		loadtest    = flag.Bool("loadtest", false, "run the load client instead of the server")
		target      = flag.String("target", "http://127.0.0.1:8344", "loadtest: server base URL")
		cohorts     = flag.Int("cohorts", 10000, "loadtest: concurrent cohorts")
		subjects    = flag.Int("subjects", 8, "loadtest: subjects per cohort")
		risk        = flag.Float64("risk", 0.08, "loadtest: uniform prior risk")
		loadWorkers = flag.Int("load-workers", 128, "loadtest: client concurrency")
		seed        = flag.Uint64("seed", 1, "loadtest: population seed")
	)
	obsFlags := obs.RegisterFlags(nil)
	flag.Parse()

	rt, err := obsFlags.Start("sbgt-serve")
	if err != nil {
		fmt.Fprintln(os.Stderr, "sbgt-serve:", err)
		os.Exit(2)
	}
	defer rt.Close()

	if *loadtest {
		report, err := serve.RunLoad(serve.LoadConfig{
			Target:   *target,
			Cohorts:  *cohorts,
			Subjects: *subjects,
			Risk:     *risk,
			Workers:  *loadWorkers,
			Seed:     *seed,
			Log:      rt.Log,
		})
		if err != nil {
			rt.Fatal(err)
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			rt.Fatal(err)
		}
		return
	}

	rt.DumpFlightOnSIGQUIT()

	prof, err := profiler.StartFromRuntime(rt, obsFlags)
	if err != nil {
		rt.Fatal(err)
	}

	pool := engine.NewPool(*workers)
	defer pool.Close()
	pool.Instrument(rt.Reg)

	mgr, err := serve.NewManager(serve.ManagerConfig{
		Pool:         pool,
		Dir:          *ckptDir,
		MaxResident:  *maxResident,
		MaxCohorts:   *maxCohorts,
		MaxPerTenant: *maxPerTenant,
		IdleAfter:    *idleAfter,
		Obs:          rt.Reg,
		Tracer:       rt.Tracer,
		Log:          rt.Log,
		Flight:       rt.Flight,
	})
	if err != nil {
		rt.Fatal(err)
	}

	var objectives []obs.Objective
	if *sloP99 > 0 {
		objectives = append(objectives, obs.Objective{
			Name:     "p99_request",
			Metric:   "sbgt_serve_request_seconds",
			Quantile: 0.99,
			Target:   sloP99.Seconds(),
			Degrade:  *sloDegrade,
		})
	}
	if *sloShedBurst > 0 {
		objectives = append(objectives, obs.Objective{
			Name:        "shed_burst",
			BurstMetric: "sbgt_serve_requests_shed_total",
			Max:         float64(*sloShedBurst),
			Degrade:     *sloDegrade,
		})
	}
	var slo *obs.SLO
	if len(objectives) > 0 {
		slo, err = obs.NewSLO(rt.Reg, rt.Flight, objectives)
		if err != nil {
			rt.Fatal(err)
		}
		stop := slo.Start(*sloInterval)
		defer stop()
		rt.Log.Info("sbgt-serve: SLO evaluator running", "objectives", len(objectives), "interval", *sloInterval)
	}

	handler := serve.NewServer(serve.ServerConfig{
		Manager:     mgr,
		MaxInflight: *maxInflight,
		Obs:         rt.Reg,
		Tracer:      rt.Tracer,
		Log:         rt.Log,
		Flight:      rt.Flight,
		SLO:         slo,
		Profiles:    prof.Handler(),
	})

	lis, err := net.Listen("tcp", *addr)
	if err != nil {
		rt.Fatal(err)
	}
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(lis.Addr().String()+"\n"), 0o644); err != nil {
			rt.Fatal(err)
		}
	}
	srv := &http.Server{Handler: handler, ReadHeaderTimeout: 5 * time.Second}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(lis) }() //lint:allow goroutineleak serveErr is buffered; the single send cannot block
	rt.Log.Info("sbgt-serve: listening", "addr", lis.Addr().String(), "ckpt-dir", *ckptDir,
		"max-resident", *maxResident, "max-cohorts", *maxCohorts)

	// Drain on SIGTERM/SIGINT: stop admitting (429/503 + /readyz 503),
	// checkpoint every resident cohort, then close the listener. A second
	// signal aborts the wait and exits immediately.
	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, syscall.SIGTERM, syscall.SIGINT)
	select {
	case err := <-serveErr:
		rt.Fatal(err)
	case sig := <-sigs:
		rt.Log.Info("sbgt-serve: draining on signal", "signal", sig.String())
	}
	n, derr := mgr.Drain()
	if derr != nil {
		rt.Log.Error("sbgt-serve: drain incomplete", "err", derr)
	}
	rt.Log.Info("sbgt-serve: drain complete", "checkpointed", n)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		rt.Log.Warn("sbgt-serve: shutdown", "err", err)
	}
	if derr != nil {
		os.Exit(1)
	}
}
