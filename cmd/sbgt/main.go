// Command sbgt runs one simulated surveillance campaign end to end and
// prints the stage-by-stage narrative: pools selected, outcomes observed,
// classifications made, and the final operating characteristics.
//
// Usage:
//
//	sbgt [flags]
//
// Flags:
//
//	-n int          cohort size (default 16; max 30 dense/cluster, 64 sparse)
//	-prev float     prior infection risk per subject (default 0.05)
//	-profile string risk profile: uniform | beta | household (default uniform)
//	-assay string   response model: ideal | binary | hyperbolic | logistic | ct (default hyperbolic)
//	-backend string posterior backend: dense | sparse | cluster (default dense)
//	-eps float      sparse backend: relative truncation threshold (default 1e-9)
//	-execs int      cluster backend: local executors to start (default 2)
//	-exec-addrs string
//	                cluster backend: comma-separated external executor
//	                addresses (sbgt-exec processes); overrides -execs
//	-exec-metrics-addrs string
//	                cluster backend: the executors' metrics addresses,
//	                comma-separated, parallel to -exec-addrs
//	-harvest-profiles string
//	                after the campaign, pull each executor's continuous-
//	                profiler bundles (over -exec-metrics-addrs) into this
//	                directory, one subdirectory per executor
//	-maxpool int    pool size cap (default 16)
//	-lookahead int  pools selected per stage (default 1; dense backend only)
//	-seed uint      RNG seed (default 1)
//	-workers int    engine workers (default GOMAXPROCS)
//	-quiet          only print the final summary
//
// Observability flags (shared across the sbgt commands):
//
//	-metrics-addr string  serve /metrics, /healthz, and pprof here
//	-log-level string     debug | info | warn | error (default info)
//	-trace-out string     write per-stage spans as NDJSON on exit
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"time"

	sbgt "repro"
	"repro/internal/obs"
	"repro/internal/obs/profiler"
)

func main() {
	var (
		n         = flag.Int("n", 16, "cohort size (1..30)")
		prev      = flag.Float64("prev", 0.05, "prior infection risk per subject")
		profile   = flag.String("profile", "uniform", "risk profile: uniform | beta | household")
		assay     = flag.String("assay", "hyperbolic", "response: ideal | binary | hyperbolic | logistic | ct")
		maxPool   = flag.Int("maxpool", 16, "pool size cap")
		lookahead = flag.Int("lookahead", 1, "pools selected per stage")
		seed      = flag.Uint64("seed", 1, "RNG seed")
		workers   = flag.Int("workers", 0, "engine workers (0 = GOMAXPROCS)")
		quiet     = flag.Bool("quiet", false, "only print the final summary")
		saveTo    = flag.String("save", "", "checkpoint the session to this file after every stage")
		resume    = flag.String("resume", "", "resume from this checkpoint instead of starting fresh")
		backend   = flag.String("backend", "dense", "posterior backend: dense | sparse | cluster")
		eps       = flag.Float64("eps", 1e-9, "sparse backend: relative truncation threshold")
		execs     = flag.Int("execs", 2, "cluster backend: local executors to start")
		execAddrs = flag.String("exec-addrs", "", "cluster backend: comma-separated external executor addresses (overrides -execs)")

		execMetricsAddrs = flag.String("exec-metrics-addrs", "", "cluster backend: executors' metrics addresses, comma-separated (for -harvest-profiles)")
		harvestProfiles  = flag.String("harvest-profiles", "", "pull executors' profile bundles into this directory after the campaign (requires -exec-metrics-addrs)")
	)
	obsFlags := obs.RegisterFlags(nil)
	flag.Parse()

	rt, err := obsFlags.Start("sbgt")
	if err != nil {
		fmt.Fprintln(os.Stderr, "sbgt:", err)
		os.Exit(2)
	}
	defer rt.Close()

	r := sbgt.NewRand(*seed)
	risks, err := makeRisks(*profile, *n, *prev, r)
	if err != nil {
		rt.Fatal(err)
	}
	resp, err := makeResponse(*assay)
	if err != nil {
		rt.Fatal(err)
	}

	popu := sbgt.DrawPopulation(risks, r)
	oracle := sbgt.NewOracle(popu, resp, r)

	eng := sbgt.NewEngine(*workers)
	defer eng.Close()
	eng.Instrument(rt.Reg)
	var sess *sbgt.Session
	if *resume != "" {
		// Resuming re-simulates the same truth/oracle stream from -seed,
		// so pass the seed the original run used; with a real lab the
		// oracle is the lab and this caveat disappears.
		f, err := os.Open(*resume)
		if err != nil {
			rt.Fatal(err)
		}
		sess, err = eng.LoadSession(f, sbgt.HalvingStrategy(*maxPool, false))
		if cerr := f.Close(); cerr != nil && err == nil {
			err = cerr
		}
		if err != nil {
			rt.Fatal(err)
		}
		fmt.Printf("resumed from %s: stage %d, %d tests, %d subjects remaining\n",
			*resume, sess.Stage(), sess.Tests(), sess.Remaining())
	} else {
		kind, err := sbgt.ParseBackend(*backend)
		if err != nil {
			rt.Fatal(err)
		}
		addrs := splitAddrs(*execAddrs)
		model, err := eng.OpenBackend(sbgt.Backend{
			Kind:           kind,
			Eps:            *eps,
			Addrs:          addrs,
			LocalExecutors: *execs,
			DialTimeout:    10 * time.Second,
			Obs:            rt.Reg,
			Tracer:         rt.Tracer,
		}, risks, resp)
		if err != nil {
			rt.Fatal(err)
		}
		sess, err = eng.NewSessionOn(model, sbgt.Config{
			Risks:     risks,
			Response:  resp,
			Strategy:  sbgt.HalvingStrategy(*maxPool, false),
			Lookahead: *lookahead,
			Obs:       rt.Reg,
			Tracer:    rt.Tracer,
		})
		if err != nil {
			model.Close() //lint:allow errcheck teardown on a constructor failure path; the construction error wins
			rt.Fatal(err)
		}
	}

	fmt.Printf("cohort n=%d profile=%s assay=%s truth=%v (%d infected)\n",
		*n, *profile, resp.Name(), popu.Truth, popu.Infected())

	test := oracle.Test
	if !*quiet {
		test = func(pool sbgt.SubjectSet) sbgt.Outcome {
			y := oracle.Test(pool)
			fmt.Printf("  stage %2d  test pool %-24v -> %s\n", sess.Stage(), pool, y)
			return y
		}
	}
	if *saveTo != "" {
		// Checkpoint after every stage, atomically (temp + rename), so a
		// crash never leaves a torn checkpoint.
		for !sess.Done() && sess.Stage() < 64 {
			if err := sess.Step(test); err != nil {
				rt.Fatal(err)
			}
			if err := checkpoint(sess, *saveTo); err != nil {
				rt.Fatal(err)
			}
		}
	}
	res, err := sess.Run(test)
	if err != nil {
		rt.Fatal(err)
	}

	if !*quiet {
		fmt.Println("classifications:")
		for _, c := range res.Classifications {
			mark := " "
			if (c.Status == sbgt.StatusPositive) != popu.Truth.Has(c.Subject) {
				mark = "✗"
			}
			fmt.Printf("  subject %2d: %-8s (marginal %.4f, stage %d)%s\n",
				c.Subject, c.Status, c.Marginal, c.Stage, mark)
		}
	}
	conf := sbgt.EvaluateResult(res, popu.Truth)
	fmt.Printf("summary: tests=%d (%.2f/subject) stages=%d converged=%v accuracy=%.4f sens=%.4f spec=%.4f\n",
		res.Tests, res.TestsPerSubject(), res.Stages, res.Converged,
		conf.Accuracy(), conf.Sensitivity(), conf.Specificity())
	if !*quiet && len(res.StageTimings) > 0 {
		var sel, tst, upd, cls time.Duration
		for _, st := range res.StageTimings {
			sel += st.Select
			tst += st.Test
			upd += st.Update
			cls += st.Classify
		}
		fmt.Printf("timing: select=%v test=%v update=%v classify=%v over %d stage(s)\n",
			sel.Round(time.Microsecond), tst.Round(time.Microsecond),
			upd.Round(time.Microsecond), cls.Round(time.Microsecond), len(res.StageTimings))
	}
	if *harvestProfiles != "" {
		if err := harvestAll(rt, splitAddrs(*execMetricsAddrs), *harvestProfiles); err != nil {
			rt.Fatal(err)
		}
	}
	// Misclassification under a noisy assay is not an error; exit 0 either way.
}

// splitAddrs parses a comma-separated address list, dropping empties.
func splitAddrs(s string) []string {
	var out []string
	for _, a := range strings.Split(s, ",") {
		if a = strings.TrimSpace(a); a != "" {
			out = append(out, a)
		}
	}
	return out
}

// harvestAll pulls each executor's profile bundles over its metrics
// address into dest/<addr-safe>/ — the cluster-wide harvest that turns a
// cross-process trace into per-executor flame data. Executors without a
// profiler (404 index) are skipped with a warning, not an error, so a
// mixed fleet harvests what it can.
func harvestAll(rt *obs.Runtime, metricsAddrs []string, dest string) error {
	if len(metricsAddrs) == 0 {
		return fmt.Errorf("sbgt: -harvest-profiles requires -exec-metrics-addrs")
	}
	client := &http.Client{Timeout: 30 * time.Second}
	for _, addr := range metricsAddrs {
		sub := strings.NewReplacer(":", "_", "/", "_").Replace(addr)
		got, err := profiler.Harvest(client, addr, filepath.Join(dest, sub))
		if err != nil {
			rt.Log.Warn("sbgt: profile harvest failed", "addr", addr, "err", err)
			continue
		}
		rt.Log.Info("sbgt: harvested profile bundles", "addr", addr, "bundles", len(got))
		fmt.Printf("harvested %d profile bundle(s) from %s into %s\n", len(got), addr, filepath.Join(dest, sub))
	}
	return nil
}

func makeRisks(profile string, n int, prev float64, r *sbgt.Rand) ([]float64, error) {
	switch profile {
	case "uniform":
		return sbgt.UniformRisks(n, prev), nil
	case "beta":
		// Beta with mean prev and concentration 20.
		return sbgt.BetaRisks(n, prev*20, (1-prev)*20, r), nil
	case "household":
		return sbgt.HouseholdRisks(n, 4, 0.25, prev/2, minf(0.5, prev*6), r), nil
	default:
		return nil, fmt.Errorf("unknown profile %q", profile)
	}
}

func makeResponse(assay string) (sbgt.Response, error) {
	switch assay {
	case "ideal":
		return sbgt.IdealTest(), nil
	case "binary":
		return sbgt.BinaryTest(0.95, 0.99), nil
	case "hyperbolic":
		return sbgt.HyperbolicDilutionTest(0.98, 0.995, 0.25), nil
	case "logistic":
		return sbgt.LogisticDilutionTest(0.98, 0.995, 4, 1.5), nil
	case "ct":
		return sbgt.CtTest(), nil
	default:
		return nil, fmt.Errorf("unknown assay %q", assay)
	}
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

// checkpoint writes the session to path atomically.
func checkpoint(sess *sbgt.Session, path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := sbgt.SaveSession(f, sess); err != nil {
		f.Close()      //lint:allow errcheck the save error dominates temp-file cleanup
		os.Remove(tmp) //lint:allow errcheck the save error dominates temp-file cleanup
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp) //lint:allow errcheck the close error dominates temp-file cleanup
		return err
	}
	return os.Rename(tmp, path)
}
