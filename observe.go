package sbgt

import (
	"log/slog"

	"repro/internal/cluster"
	"repro/internal/obs"
)

// Metrics is a process-wide metric registry: counters, gauges, and
// histograms with a lock-free hot path, exportable as Prometheus text,
// JSON, or expvar. Hand one to Engine.Instrument, Backend.Obs, and
// Config.Obs to light up the whole pipeline.
type Metrics = obs.Registry

// NewMetrics creates an empty registry.
func NewMetrics() *Metrics { return obs.NewRegistry() }

// Tracer collects timing spans (Config.Tracer wires it into sessions).
// limit bounds retained spans (<= 0 selects a default); the oldest are
// dropped first.
type Tracer = obs.Tracer

// NewTracer creates a span collector.
func NewTracer(limit int) *Tracer { return obs.NewTracer(limit) }

// SpanRecord is one finished span as tracers store, export (/spans,
// -trace-out NDJSON), and ship it across the cluster RPC boundary.
type SpanRecord = obs.SpanRecord

// Trace is an assembled span tree — one distributed trace merged from
// the driver's buffer and any executor span sets. Walk, Find, and
// WriteText navigate and render it.
type Trace = obs.Trace

// AssembleTraces merges span dumps — a driver tracer's Snapshot or
// Drain, NDJSON rows from -trace-out, /spans scrapes from executors —
// into per-trace trees, oldest first. Duplicate span IDs within a trace
// are deduped, so overlapping dumps (executor spans appear both in the
// driver's absorbed buffer and on the executor's own /spans) merge
// cleanly.
func AssembleTraces(sets ...[]SpanRecord) []*Trace { return obs.Assemble(sets...) }

// Instrument attaches the engine's worker pool to a registry (see
// internal/obs): task counts, queue depth, in-flight gauge, task-time
// and submit-wait histograms under sbgt_engine_pool_*.
func (e *Engine) Instrument(reg *Metrics) { e.pool.Instrument(reg) }

// ServeExecutorObs is ServeExecutor with the executor instrumented into
// reg (request counts, shard size, pool series; nil disables) and its
// protocol warnings routed to log (nil discards).
func ServeExecutorObs(addr string, workers int, reg *Metrics, log *slog.Logger) error {
	return cluster.ListenAndServeObs(addr, workers, reg, log)
}

// ServeExecutorTraced is ServeExecutorObs with the executor's dispatch
// spans additionally recorded into tracer — pass the tracer behind the
// process's /spans endpoint so the executor side of every distributed
// trace is scrapeable in place (spans also ship back to the driver in
// response trailers regardless).
func ServeExecutorTraced(addr string, workers int, reg *Metrics, tracer *Tracer, log *slog.Logger) error {
	return cluster.ListenAndServeTraced(addr, workers, reg, tracer, log)
}
