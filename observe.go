package sbgt

import (
	"log/slog"

	"repro/internal/cluster"
	"repro/internal/obs"
)

// Metrics is a process-wide metric registry: counters, gauges, and
// histograms with a lock-free hot path, exportable as Prometheus text,
// JSON, or expvar. Hand one to Engine.Instrument, Backend.Obs, and
// Config.Obs to light up the whole pipeline.
type Metrics = obs.Registry

// NewMetrics creates an empty registry.
func NewMetrics() *Metrics { return obs.NewRegistry() }

// Tracer collects timing spans (Config.Tracer wires it into sessions).
// limit bounds retained spans (<= 0 selects a default); the oldest are
// dropped first.
type Tracer = obs.Tracer

// NewTracer creates a span collector.
func NewTracer(limit int) *Tracer { return obs.NewTracer(limit) }

// Instrument attaches the engine's worker pool to a registry (see
// internal/obs): task counts, queue depth, in-flight gauge, task-time
// and submit-wait histograms under sbgt_engine_pool_*.
func (e *Engine) Instrument(reg *Metrics) { e.pool.Instrument(reg) }

// ServeExecutorObs is ServeExecutor with the executor instrumented into
// reg (request counts, shard size, pool series; nil disables) and its
// protocol warnings routed to log (nil discards).
func ServeExecutorObs(addr string, workers int, reg *Metrics, log *slog.Logger) error {
	return cluster.ListenAndServeObs(addr, workers, reg, log)
}
