package sbgt

import (
	"repro/internal/core"
	"repro/internal/posterior"
)

// Posterior is the backend-generic posterior interface: the dense
// lattice, the truncated sparse support, and the distributed cluster
// driver all implement it, and sessions, studies, and checkpoints are
// written against it. See posterior.Model for the method contracts.
type Posterior = posterior.Model

// Backend describes which posterior representation to open and with
// what knobs; the zero value is the dense in-process backend. See
// posterior.Spec.
type Backend = posterior.Spec

// BackendKind names a posterior backend.
type BackendKind = posterior.Kind

// The three posterior backends.
const (
	BackendDense   = posterior.KindDense
	BackendSparse  = posterior.KindSparse
	BackendCluster = posterior.KindCluster
)

// ParseBackend maps a flag value ("dense", "sparse", "cluster", or ""
// for dense) to a backend kind.
func ParseBackend(s string) (BackendKind, error) { return posterior.ParseKind(s) }

// OpenBackend builds the prior posterior for the spec on this engine's
// worker pool (the pool is used by the dense backend only). Close the
// returned model when done — the cluster backend holds connections and
// possibly local executors — or hand it to NewSessionOn, which takes
// ownership.
func (e *Engine) OpenBackend(spec Backend, risks []float64, resp Response) (Posterior, error) {
	return spec.Open(e.pool, risks, resp)
}

// NewSessionOn builds a surveillance session that drives the given
// posterior — the backend-generic form of NewSession. The session takes
// ownership of the model and closes it when the campaign completes.
func (e *Engine) NewSessionOn(model Posterior, cfg Config) (*Session, error) {
	return core.NewSessionOn(model, cfg)
}
