// Quickstart: classify a 12-person cohort with pooled testing.
//
// This example walks the whole public-API surface in ~40 lines: build an
// engine, describe the cohort and the assay, run the adaptive campaign
// against a simulated lab, and read the results.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log/slog"
	"os"

	sbgt "repro"
	"repro/internal/obs"
)

func main() {
	logg := obs.NewLogger(os.Stderr, slog.LevelInfo, "example-quickstart")
	fatal := func(err error) {
		logg.Error(err.Error())
		os.Exit(1)
	}
	// One engine per process; it owns the worker pool the Bayesian
	// lattice kernels run on.
	eng := sbgt.NewEngine(0) // 0 = one worker per CPU
	defer eng.Close()

	// A cohort of 12 subjects, each with 5% prior infection risk, tested
	// with a noisy assay whose sensitivity decays with pool dilution.
	risks := sbgt.UniformRisks(12, 0.05)
	assay := sbgt.HyperbolicDilutionTest(0.98, 0.995, 0.25)

	// Simulate a ground truth and a laboratory. In production you would
	// replace oracle.Test with your LIMS integration.
	r := sbgt.NewRand(21)
	population := sbgt.DrawPopulation(risks, r)
	oracle := sbgt.NewOracle(population, assay, r)
	fmt.Printf("hidden truth: %v (%d infected)\n", population.Truth, population.Infected())

	// The session runs the select → test → update → classify loop with
	// the Bayesian Halving Algorithm until everyone is classified.
	sess, err := eng.NewSession(sbgt.Config{
		Risks:    risks,
		Response: assay,
		// Cap pools at 6 specimens: with a diluting assay, very large
		// pools split posterior mass well but are individually weak tests.
		Strategy: sbgt.HalvingStrategy(6, false),
	})
	if err != nil {
		fatal(err)
	}
	result, err := sess.Run(func(pool sbgt.SubjectSet) sbgt.Outcome {
		y := oracle.Test(pool)
		fmt.Printf("  tested pool %v -> %v\n", pool, y)
		return y
	})
	if err != nil {
		fatal(err)
	}

	fmt.Printf("classified positives: %v\n", result.Positives())
	fmt.Printf("used %d tests (%.2f per subject) in %d stages\n",
		result.Tests, result.TestsPerSubject(), result.Stages)
	score := sbgt.EvaluateResult(result, population.Truth)
	fmt.Printf("accuracy %.3f  sensitivity %.3f  specificity %.3f\n",
		score.Accuracy(), score.Sensitivity(), score.Specificity())
}
