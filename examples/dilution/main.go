// Dilution study: how dilution effects change pooled-test selection and
// cost. The Biostatistics companion paper's core message is that the
// Bayesian Halving Algorithm remains optimally convergent *even under
// strong dilution* — but the optimal pools get smaller and campaigns need
// more tests. This example sweeps dilution severity and shows exactly
// that, then demonstrates a continuous Ct-value assay outperforming its
// dichotomized counterpart thanks to the extra information per test.
//
//	go run ./examples/dilution
package main

import (
	"fmt"
	"log/slog"
	"os"
	"text/tabwriter"

	sbgt "repro"
	"repro/internal/obs"
)

const (
	cohort     = 12
	replicates = 30
	prevalence = 0.08
)

func main() {
	logg := obs.NewLogger(os.Stderr, slog.LevelInfo, "example-dilution")
	fatal := func(err error) {
		logg.Error(err.Error())
		os.Exit(1)
	}
	eng := sbgt.NewEngine(0)
	defer eng.Close()

	// The halving criterion splits posterior mass and is response-agnostic:
	// on this prior it picks an 8-subject pool regardless of dilution. What
	// dilution changes is how much a test of that pool is *worth* — the
	// chance it detects a lone positive collapses as d grows, which is why
	// the campaign costs below explode and why capping pool size helps.
	m, err := eng.NewModel(sbgt.UniformRisks(cohort, prevalence), sbgt.IdealTest())
	if err != nil {
		fatal(err)
	}
	sel := sbgt.SelectPool(m, 0, false)
	k := sel.Pool.Count()
	fmt.Printf("-- halving selects a %d-subject pool (clean mass %.3f); its worth under dilution --\n", k, sel.NegMass)
	for _, d := range []float64{0, 0.2, 0.5, 1.0} {
		assay := sbgt.HyperbolicDilutionTest(0.98, 0.995, d)
		pDetect := assay.Likelihood(sbgt.Positive, 1, k)
		fmt.Printf("  dilution d=%.1f: P(detect a single positive among %d) = %.3f\n", d, k, pDetect)
	}

	fmt.Println("\n-- campaign cost vs dilution severity --")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "assay\ttests/subject\tstages\taccuracy")
	run := func(name string, assay sbgt.Response) {
		study, err := eng.RunStudy(sbgt.StudyConfig{
			RiskGen:    func(*sbgt.Rand) []float64 { return sbgt.UniformRisks(cohort, prevalence) },
			Response:   assay,
			Replicates: replicates,
			Seed:       11,
		})
		if err != nil {
			fatal(err)
		}
		s := study.Summarize()
		fmt.Fprintf(w, "%s\t%.3f\t%.1f\t%.4f\n", name, s.TestsPerSubject, s.MeanStages, s.Accuracy)
	}
	run("ideal (no dilution, no error)", sbgt.IdealTest())
	run("mild dilution (d=0.2)", sbgt.HyperbolicDilutionTest(0.98, 0.995, 0.2))
	run("strong dilution (d=0.8)", sbgt.HyperbolicDilutionTest(0.98, 0.995, 0.8))
	run("continuous Ct readout", sbgt.CtTest())
	if err := w.Flush(); err != nil {
		fatal(err)
	}

	fmt.Println("\nthe Ct row shows the value of modeling the full response distribution:")
	fmt.Println("a late cycle-threshold crossing quantifies *how diluted* the positive pool")
	fmt.Println("was, so the posterior separates candidates faster than a bare positive.")
}
