// Cluster: run the lattice distributed across TCP executors — the
// Spark-cluster analogue. The example starts three executors inside this
// process on loopback (in production each would be cmd/sbgt-exec on its
// own node), dials them as a driver, and runs Bayesian updates whose
// posterior lives sharded across the executors.
//
//	go run ./examples/cluster
package main

import (
	"fmt"
	"log/slog"
	"net"
	"os"
	"time"

	sbgt "repro"
	"repro/internal/obs"
)

func main() {
	logg := obs.NewLogger(os.Stderr, slog.LevelInfo, "example-cluster")
	fatal := func(err error) {
		logg.Error(err.Error())
		os.Exit(1)
	}
	// Start three executors on ephemeral loopback ports. Each one owns a
	// shard of the 2^N posterior and serves kernel RPCs.
	var addrs []string
	for i := 0; i < 3; i++ {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fatal(err)
		}
		addrs = append(addrs, l.Addr().String())
		//lint:allow concurrency the demo runs executors in-process; deployments use cmd/sbgt-exec
		go func(l net.Listener) {
			// Library form of cmd/sbgt-exec: serve until shutdown. (The
			// "use of closed network connection" error on process exit is
			// expected; the executors outlive the driver here.)
			if err := sbgt.ServeExecutorOn(l, 0); err != nil {
				logg.Warn("executor stopped", "err", err)
			}
		}(l)
	}
	fmt.Printf("executors: %v\n", addrs)

	// The driver shards a 16-subject lattice (65,536 states) across the
	// three executors and builds the prior remotely.
	risks := sbgt.UniformRisks(16, 0.06)
	assay := sbgt.BinaryTest(0.95, 0.99)
	model, err := sbgt.DialCluster(addrs, risks, assay, 3*time.Second)
	if err != nil {
		fatal(err)
	}
	defer model.Close()
	fmt.Printf("lattice of %d subjects sharded over %d executors\n", model.N(), model.Executors())

	// Drive a few pooled observations through the distributed posterior.
	steps := []struct {
		pool sbgt.SubjectSet
		y    sbgt.Outcome
	}{
		{sbgt.Subjects(0, 1, 2, 3, 4, 5, 6, 7), sbgt.Negative},
		{sbgt.Subjects(8, 9, 10, 11), sbgt.Positive},
		{sbgt.Subjects(8, 9), sbgt.Negative},
		{sbgt.Subjects(10), sbgt.Positive},
	}
	for _, st := range steps {
		if err := model.Update(st.pool, st.y); err != nil {
			fatal(err)
		}
		ent, err := model.Entropy()
		if err != nil {
			fatal(err)
		}
		fmt.Printf("  observed %v on %v -> posterior entropy %.3f bits\n", st.y, st.pool, ent)
	}

	marg, err := model.Marginals()
	if err != nil {
		fatal(err)
	}
	fmt.Println("posterior infection probabilities:")
	for i, g := range marg {
		bar := ""
		for b := 0.0; b < g; b += 0.05 {
			bar += "#"
		}
		fmt.Printf("  subject %2d: %6.4f %s\n", i, g, bar)
	}
	fmt.Println("subject 10 should stand out; 0-7 and 8-9 should be near zero.")
}
