// Longitudinal surveillance: repeated testing of the same cohort as the
// epidemic moves through it — the "repeated testing for surveillance
// under constantly varying conditions" the paper's abstract motivates.
//
// Each week the programme runs one pooled-testing session. The crucial
// Bayesian step is the hand-off between rounds: week t's priors are week
// t−1's posterior marginals pushed through the epidemic dynamics (who
// recovers, who was likely exposed), so information compounds instead of
// resetting. The example contrasts this with an amnesiac programme that
// restarts every week from the same static prior.
//
//	go run ./examples/longitudinal
package main

import (
	"fmt"
	"log/slog"
	"os"

	sbgt "repro"
	"repro/internal/obs"
)

const (
	cohort = 16
	weeks  = 8
	// Epidemic: moderately contagious, slow recovery, low community floor.
	beta      = 0.03
	gamma     = 0.35
	community = 0.01
	initPrev  = 0.08
)

func main() {
	logg := obs.NewLogger(os.Stderr, slog.LevelInfo, "example-longitudinal")
	fatal := func(err error) {
		logg.Error(err.Error())
		os.Exit(1)
	}
	eng := sbgt.NewEngine(0)
	defer eng.Close()
	assay := sbgt.BinaryTest(0.95, 0.99)

	run := func(carryOver bool) (tests int, correct int, total int) {
		// Separate streams so both programmes face the *same* epidemic
		// trajectory: the oracle draws (whose count depends on how many
		// tests each programme runs) must not perturb the disease.
		epiRand := sbgt.NewRand(404)
		r := sbgt.NewRand(405)
		epi := sbgt.NewEpidemic(cohort, initPrev, beta, gamma, community, epiRand)
		static := sbgt.UniformRisks(cohort, initPrev)
		risks := static
		label := "amnesiac "
		if carryOver {
			label = "bayesian "
		}
		fmt.Printf("-- %s programme --\n", label)
		for week := 1; week <= weeks; week++ {
			truth := epi.Truth()
			oracle := sbgt.NewOracle(sbgt.Population{Risks: risks, Truth: truth}, assay, r)
			sess, err := eng.NewSession(sbgt.Config{
				Risks:    risks,
				Response: assay,
				Strategy: sbgt.HalvingStrategy(8, false),
				// Loose thresholds: weekly rounds need triage, not proof.
				PosThreshold: 0.95,
				NegThreshold: 0.02,
				MaxStages:    12,
			})
			if err != nil {
				fatal(err)
			}
			res, err := sess.Run(oracle.Test)
			if err != nil {
				fatal(err)
			}
			weekCorrect := 0
			marginals := make([]float64, cohort)
			for _, c := range res.Classifications {
				marginals[c.Subject] = c.Marginal
				if (c.Status == sbgt.StatusPositive) == truth.Has(c.Subject) {
					weekCorrect++
				}
			}
			tests += res.Tests
			correct += weekCorrect
			total += cohort
			fmt.Printf("  week %d: prevalence %4.1f%%  tests %2d  correct %2d/%d\n",
				week, 100*epi.Prevalence(), res.Tests, weekCorrect, cohort)

			// Advance the epidemic; pick next week's priors.
			epi.Advance()
			if carryOver {
				risks = epi.NextRoundRisks(marginals)
			} else {
				risks = static
			}
		}
		return
	}

	bTests, bCorrect, total := run(true)
	aTests, aCorrect, _ := run(false)
	fmt.Printf("\nover %d weeks x %d subjects:\n", weeks, cohort)
	fmt.Printf("  bayesian hand-off: %3d tests, accuracy %.3f\n", bTests, float64(bCorrect)/float64(total))
	fmt.Printf("  amnesiac restart:  %3d tests, accuracy %.3f\n", aTests, float64(aCorrect)/float64(total))
	fmt.Println("carrying the posterior forward should match or beat the restart programme")
	fmt.Println("on accuracy at comparable (often lower) test budgets.")
}
