// Population campaign: screen 480 people in one call.
//
// A single lattice session handles at most 30 subjects, so population
// screening runs many cohort-sized Bayesian sessions. Engine.RunCampaign
// does the whole pipeline — risk-aware binning, one session per cohort
// fanned out across workers, global aggregation — and this example drives
// it over a synthetic city district with three risk tiers.
//
//	go run ./examples/population
package main

import (
	"fmt"
	"log/slog"
	"os"

	sbgt "repro"
	"repro/internal/obs"
)

func main() {
	logg := obs.NewLogger(os.Stderr, slog.LevelInfo, "example-population")
	fatal := func(err error) {
		logg.Error(err.Error())
		os.Exit(1)
	}
	eng := sbgt.NewEngine(0)
	defer eng.Close()

	// A district of 480 residents: routine screening (1%), an exposed
	// workplace (8%), and symptomatic clinic walk-ins (30%).
	var risks []float64
	for i := 0; i < 400; i++ {
		risks = append(risks, 0.01)
	}
	for i := 0; i < 60; i++ {
		risks = append(risks, 0.08)
	}
	for i := 0; i < 20; i++ {
		risks = append(risks, 0.30)
	}

	assay := sbgt.BinaryTest(0.97, 0.995)
	r := sbgt.NewRand(99)
	popu := sbgt.DrawLargePopulation(risks, r)
	oracle := sbgt.NewLargeOracle(popu, assay, r)
	fmt.Printf("district of %d residents, %d truly infected\n", len(risks), popu.Count())

	res, err := eng.RunCampaign(sbgt.CampaignConfig{
		Risks:      risks,
		Response:   assay,
		CohortSize: 16,
		Assignment: sbgt.AssignSorted, // bin similar risks together
		MaxPool:    12,
	}, oracle.Test)
	if err != nil {
		fatal(err)
	}

	correct := 0
	var missed, spurious []int
	for g, call := range res.Classifications {
		positive := call.Status == sbgt.StatusPositive
		switch {
		case positive == popu.Infected[g]:
			correct++
		case popu.Infected[g]:
			missed = append(missed, g)
		default:
			spurious = append(spurious, g)
		}
	}
	fmt.Printf("campaign: %d cohorts, %d tests (%.3f per resident), critical path %d lab rounds\n",
		res.Cohorts, res.Tests, res.TestsPerSubject(), res.MaxStages)
	fmt.Printf("found %d positives: %v\n", len(res.Positives()), res.Positives())
	fmt.Printf("accuracy %d/%d", correct, len(risks))
	if len(missed)+len(spurious) > 0 {
		fmt.Printf(" (missed %v, spurious %v)", missed, spurious)
	}
	fmt.Println()
	fmt.Printf("individual testing would have taken %d tests; pooling saved %.0f%%\n",
		len(risks), 100*(1-res.TestsPerSubject()))
}
