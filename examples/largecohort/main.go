// Large cohort: Bayesian group testing for 48 subjects on one machine.
//
// The dense lattice tops out at 30 subjects (2^30 states). This example
// uses the truncated sparse posterior — only states above a relative mass
// threshold are retained, with the discarded mass reported as an explicit
// error bound — to run a full halving-driven campaign on a 48-subject
// cohort at 2% prevalence, where the exact lattice would need 2^48 states.
//
//	go run ./examples/largecohort
package main

import (
	"fmt"
	"log/slog"
	"os"

	sbgt "repro"
	"repro/internal/obs"
)

const (
	cohort     = 48
	prevalence = 0.02
	posThresh  = 0.99
	negThresh  = 0.005
)

func main() {
	logg := obs.NewLogger(os.Stderr, slog.LevelInfo, "example-largecohort")
	fatal := func(err error) {
		logg.Error(err.Error())
		os.Exit(1)
	}
	risks := sbgt.UniformRisks(cohort, prevalence)
	assay := sbgt.BinaryTest(0.97, 0.995)
	r := sbgt.NewRand(2027)
	population := sbgt.DrawPopulation(risks, r)
	oracle := sbgt.NewOracle(population, assay, r)
	fmt.Printf("cohort of %d at %.0f%% prevalence; hidden truth %v (%d infected)\n",
		cohort, prevalence*100, population.Truth, population.Infected())

	model, err := sbgt.NewSparseModel(sbgt.SparseConfig{
		Risks:    risks,
		Response: assay,
		Eps:      1e-9,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("truncated prior support: %d states (vs 2^48 ≈ 2.8e14 dense), bound %.2g\n",
		model.Support(), model.Pruned())

	// The classification loop, written out by hand: the sparse model has
	// no session wrapper, which makes it a good tour of the lower-level
	// API. Subjects are classified when their marginal crosses a
	// threshold; classified subjects simply stop appearing in halving's
	// candidate pools (their marginals are extreme), so no explicit
	// conditioning step is needed.
	classified := func(marg []float64) (pos, neg int) {
		for _, g := range marg {
			switch {
			case g >= posThresh:
				pos++
			case g <= negThresh:
				neg++
			}
		}
		return
	}
	stage := 0
	for ; stage < 200; stage++ {
		marg := model.Marginals()
		pos, neg := classified(marg)
		if pos+neg == cohort {
			break
		}
		sel, err := sbgt.SelectPoolSparse(model, 16, false)
		if err != nil {
			fatal(err)
		}
		y := oracle.Test(sel.Pool)
		if err := model.Update(sel.Pool, y); err != nil {
			fatal(err)
		}
		if stage < 6 || stage%10 == 0 {
			fmt.Printf("  stage %3d: pool %-30v -> %-8v  support %6d  entropy %6.2f bits\n",
				stage+1, sel.Pool, y, model.Support(), model.Entropy())
		}
	}

	marg := model.Marginals()
	var called sbgt.SubjectSet
	for i, g := range marg {
		if g >= 0.5 {
			called = called.With(i)
		}
	}
	correct := 0
	for i := 0; i < cohort; i++ {
		if called.Has(i) == population.Truth.Has(i) {
			correct++
		}
	}
	fmt.Printf("finished after %d tests (%.2f per subject)\n", oracle.Tests(),
		float64(oracle.Tests())/cohort)
	fmt.Printf("called positives %v; accuracy %d/%d; truncation bound %.3g\n",
		called, correct, cohort, model.Pruned())
}
