// Surveillance: a community screening study with heterogeneous and
// household-clustered risk — the workload the paper's introduction
// motivates. It compares three testing programmes over many simulated
// cohorts (Bayesian halving pools, classic Dorfman blocks, individual
// testing) and prints their operating characteristics side by side.
//
//	go run ./examples/surveillance
package main

import (
	"fmt"
	"log/slog"
	"os"
	"text/tabwriter"

	sbgt "repro"
	"repro/internal/obs"
)

const (
	cohort     = 16
	replicates = 40
	seed       = 7
)

func main() {
	logg := obs.NewLogger(os.Stderr, slog.LevelInfo, "example-surveillance")
	fatal := func(err error) {
		logg.Error(err.Error())
		os.Exit(1)
	}
	eng := sbgt.NewEngine(0)
	defer eng.Close()

	// Risk model: households of 4; 20% of households had a known exposure
	// (30% individual risk), the rest are background (2%). The assay is a
	// realistic diluting RT-PCR dichotomized to positive/negative.
	riskGen := func(r *sbgt.Rand) []float64 {
		return sbgt.HouseholdRisks(cohort, 4, 0.2, 0.02, 0.3, r)
	}
	assay := sbgt.HyperbolicDilutionTest(0.98, 0.995, 0.25)

	programmes := []struct {
		name  string
		strat func(r *sbgt.Rand) sbgt.Strategy
	}{
		{"bayesian-halving", func(*sbgt.Rand) sbgt.Strategy { return sbgt.HalvingStrategy(16, false) }},
		{"dorfman-blocks-4", func(*sbgt.Rand) sbgt.Strategy { return sbgt.DorfmanStrategy(4) }},
		{"individual", func(*sbgt.Rand) sbgt.Strategy { return sbgt.IndividualStrategy() }},
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "programme\ttests/subject\tstages\taccuracy\tsensitivity\tspecificity")
	for _, p := range programmes {
		study, err := eng.RunStudy(sbgt.StudyConfig{
			RiskGen:    riskGen,
			Response:   assay,
			Strategy:   p.strat,
			Replicates: replicates,
			Seed:       seed,
		})
		if err != nil {
			fatal(err)
		}
		s := study.Summarize()
		fmt.Fprintf(w, "%s\t%.3f\t%.1f\t%.4f\t%.4f\t%.4f\n",
			p.name, s.TestsPerSubject, s.MeanStages, s.Accuracy, s.Sensitivity, s.Specificity)
	}
	if err := w.Flush(); err != nil {
		fatal(err)
	}
	fmt.Printf("\n%d replicates of %d subjects each; household-clustered risk; diluting assay\n",
		replicates, cohort)
	fmt.Println("halving should dominate on tests/subject at equal accuracy; individual testing")
	fmt.Println("pays one test per subject but needs no pooling logistics.")
}
