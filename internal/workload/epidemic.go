package workload

import (
	"fmt"

	"repro/internal/bitvec"
	"repro/internal/prob"
	"repro/internal/rng"
)

// Epidemic drives a cohort's infection status across surveillance rounds
// with discrete SIS-style dynamics: between consecutive testing rounds an
// infected subject recovers with probability Gamma, and a susceptible
// subject is infected with probability
//
//	λ = 1 − (1−Community)·Π(1 − Beta·[contact infected])
//
// where the contact term couples cohort members (everyone mixes with
// everyone, scaled by Beta) and Community is the constant force of
// infection from outside the cohort. Recovered subjects return to
// susceptible (SIS), which is the right shape for surveillance programmes
// that run for months.
//
// The point of this substrate is the abstract's "repeated testing for
// surveillance under constantly varying conditions": round t's prior must
// come from round t−1's posterior pushed through these dynamics, not from
// a static risk table.
type Epidemic struct {
	Beta      float64 // within-cohort transmission probability per infected contact
	Gamma     float64 // per-round recovery probability
	Community float64 // per-round infection probability from outside

	n      int
	status bitvec.Mask // current truth: bit i = subject i infected
	rng    *rng.Source
}

// NewEpidemic seeds a cohort of n subjects with initial infections drawn
// at the given prevalence. It panics on invalid parameters (experiment
// configuration errors).
func NewEpidemic(n int, initPrev, beta, gamma, community float64, r *rng.Source) *Epidemic {
	if n < 1 || n > 64 {
		panic(fmt.Sprintf("workload: epidemic cohort size %d", n))
	}
	if beta < 0 || beta > 1 || gamma < 0 || gamma > 1 || community < 0 || community > 1 {
		panic("workload: epidemic rates outside [0,1]")
	}
	if initPrev < 0 || initPrev > 1 {
		panic("workload: initial prevalence outside [0,1]")
	}
	e := &Epidemic{Beta: beta, Gamma: gamma, Community: community, n: n, rng: r}
	for i := 0; i < n; i++ {
		if r.Bernoulli(initPrev) {
			e.status = e.status.With(i)
		}
	}
	return e
}

// N returns the cohort size.
func (e *Epidemic) N() int { return e.n }

// Truth returns the current infection state.
func (e *Epidemic) Truth() bitvec.Mask { return e.status }

// Prevalence returns the current infected fraction.
func (e *Epidemic) Prevalence() float64 {
	return float64(e.status.Count()) / float64(e.n)
}

// forceOfInfection returns this round's per-susceptible infection
// probability given k infected cohort members.
func (e *Epidemic) forceOfInfection(k int) float64 {
	escape := 1 - e.Community
	for i := 0; i < k; i++ {
		escape *= 1 - e.Beta
	}
	return prob.Clamp01(1 - escape)
}

// Advance evolves the truth by one inter-round step and returns the new
// state. Transitions use the pre-step infected count, so the update is
// synchronous (all subjects see the same force of infection).
func (e *Epidemic) Advance() bitvec.Mask {
	lambda := e.forceOfInfection(e.status.Count())
	var next bitvec.Mask
	for i := 0; i < e.n; i++ {
		if e.status.Has(i) {
			if !e.rng.Bernoulli(e.Gamma) {
				next = next.With(i) // still infected
			}
		} else if e.rng.Bernoulli(lambda) {
			next = next.With(i) // newly infected
		}
	}
	e.status = next
	return next
}

// NextRoundRisks pushes a posterior through the epidemic dynamics to form
// the next round's prior: subject i's risk becomes
//
//	P(infected at t+1) = marg_i·(1−Gamma) + (1−marg_i)·λ̂
//
// where λ̂ is the force of infection evaluated at the posterior-expected
// infected count. Risks are clamped into (ε, 1−ε) so they remain valid
// lattice priors even after a certain classification. This is the
// Bayesian hand-off that makes repeated surveillance coherent: what the
// last round learned is what this round assumes.
func (e *Epidemic) NextRoundRisks(marginals []float64) []float64 {
	if len(marginals) != e.n {
		panic(fmt.Sprintf("workload: %d marginals for cohort of %d", len(marginals), e.n))
	}
	expInfected := 0.0
	for _, g := range marginals {
		expInfected += g
	}
	lambda := e.forceOfInfection(int(expInfected + 0.5))
	const eps = 1e-4
	out := make([]float64, e.n)
	for i, g := range marginals {
		p := g*(1-e.Gamma) + (1-g)*lambda
		if p < eps {
			p = eps
		}
		if p > 1-eps {
			p = 1 - eps
		}
		out[i] = p
	}
	return out
}
