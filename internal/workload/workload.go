// Package workload generates the synthetic surveillance populations and
// test oracles the experiments run on — the stand-in for the COVID-19
// screening data the paper's evaluation used (see DESIGN.md §2).
//
// A workload has three layers:
//
//   - a risk profile assigns per-subject prior infection probabilities
//     (uniform community risk, Beta-heterogeneous individual risk, or
//     household-clustered risk),
//   - a truth draw realizes an infection state from those risks,
//   - an Oracle answers pooled-test queries about the truth through a
//     dilution.Response, which is how simulated lab results are produced.
package workload

import (
	"fmt"

	"repro/internal/bitvec"
	"repro/internal/dilution"
	"repro/internal/rng"
)

// Population couples a cohort's prior risks with one realized truth.
type Population struct {
	Risks []float64   // per-subject prior infection probability
	Truth bitvec.Mask // realized infection state (bit i = subject i infected)
}

// Infected returns the number of truly infected subjects.
func (p Population) Infected() int { return p.Truth.Count() }

// UniformRisks assigns every subject the same prior risk p. It panics when
// p is outside (0, 1) or n is not in [1, 64] — workload construction errors
// are programming errors in experiment configs.
func UniformRisks(n int, p float64) []float64 {
	if n < 1 || n > 64 {
		panic(fmt.Sprintf("workload: cohort size %d", n))
	}
	if !(p > 0 && p < 1) {
		panic(fmt.Sprintf("workload: uniform risk %v outside (0,1)", p))
	}
	rs := make([]float64, n)
	for i := range rs {
		rs[i] = p
	}
	return rs
}

// BetaRisks draws heterogeneous per-subject risks from Beta(a, b) — the
// "varying individual risk" setting in the abstract. Draws are clamped
// into [1e-4, 1−1e-4] so no subject enters the lattice pre-classified.
func BetaRisks(n int, a, b float64, r *rng.Source) []float64 {
	if n < 1 || n > 64 {
		panic(fmt.Sprintf("workload: cohort size %d", n))
	}
	rs := make([]float64, n)
	for i := range rs {
		v := r.Beta(a, b)
		if v < 1e-4 {
			v = 1e-4
		}
		if v > 1-1e-4 {
			v = 1 - 1e-4
		}
		rs[i] = v
	}
	return rs
}

// HouseholdRisks models clustered exposure: subjects are grouped into
// households of the given size, each household is "exposed" with
// probability pExposed, and members of exposed households carry riskHigh
// while the rest carry riskLow. This induces the correlated-prior shape
// community surveillance sees without leaving the independent-prior model:
// the lattice prior stays a product measure, but the risk levels cluster.
func HouseholdRisks(n, householdSize int, pExposed, riskLow, riskHigh float64, r *rng.Source) []float64 {
	if n < 1 || n > 64 || householdSize < 1 {
		panic(fmt.Sprintf("workload: n=%d householdSize=%d", n, householdSize))
	}
	if !(riskLow > 0 && riskLow < 1 && riskHigh > 0 && riskHigh < 1) {
		panic("workload: household risks outside (0,1)")
	}
	rs := make([]float64, n)
	for start := 0; start < n; start += householdSize {
		risk := riskLow
		if r.Bernoulli(pExposed) {
			risk = riskHigh
		}
		end := start + householdSize
		if end > n {
			end = n
		}
		for i := start; i < end; i++ {
			rs[i] = risk
		}
	}
	return rs
}

// Draw realizes a truth from per-subject risks: subject i is infected
// independently with probability risks[i].
func Draw(risks []float64, r *rng.Source) Population {
	var truth bitvec.Mask
	for i, p := range risks {
		if r.Bernoulli(p) {
			truth = truth.With(i)
		}
	}
	return Population{Risks: append([]float64(nil), risks...), Truth: truth}
}

// DrawConditioned rejection-samples a truth with exactly k infected
// subjects, for experiments that fix the realized prevalence. It panics if
// k is infeasible for the cohort size.
func DrawConditioned(risks []float64, k int, r *rng.Source) Population {
	n := len(risks)
	if k < 0 || k > n {
		panic(fmt.Sprintf("workload: cannot draw %d infected among %d", k, n))
	}
	for {
		p := Draw(risks, r)
		if p.Infected() == k {
			return p
		}
	}
}

// Oracle answers pooled-test queries about a fixed truth through a
// response model. It is the simulated laboratory.
type Oracle struct {
	Truth bitvec.Mask
	Resp  dilution.Response
	Rng   *rng.Source
	tests int
}

// NewOracle builds an oracle for the population using the given response
// model and RNG stream.
func NewOracle(p Population, resp dilution.Response, r *rng.Source) *Oracle {
	return &Oracle{Truth: p.Truth, Resp: resp, Rng: r}
}

// Test runs one pooled test on the subjects in pool (global subject IDs)
// and returns the sampled outcome. It panics on an empty pool: requesting
// a test of nobody is a bug in the selection layer.
func (o *Oracle) Test(pool bitvec.Mask) dilution.Outcome {
	if pool == 0 {
		panic("workload: test on empty pool")
	}
	o.tests++
	return o.Resp.Sample(o.Rng, o.Truth.IntersectCount(pool), pool.Count())
}

// Tests returns how many physical tests the oracle has run.
func (o *Oracle) Tests() int { return o.tests }
