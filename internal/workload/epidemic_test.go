package workload

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func TestNewEpidemicValidation(t *testing.T) {
	r := rng.New(1)
	for _, c := range []struct {
		name                        string
		n                           int
		prev, beta, gamma, communal float64
	}{
		{"n too small", 0, 0.1, 0.1, 0.1, 0.01},
		{"n too large", 65, 0.1, 0.1, 0.1, 0.01},
		{"beta", 8, 0.1, 1.5, 0.1, 0.01},
		{"gamma", 8, 0.1, 0.1, -0.1, 0.01},
		{"community", 8, 0.1, 0.1, 0.1, 2},
		{"prev", 8, -0.5, 0.1, 0.1, 0.01},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", c.name)
				}
			}()
			NewEpidemic(c.n, c.prev, c.beta, c.gamma, c.communal, r)
		}()
	}
}

func TestEpidemicInitialPrevalence(t *testing.T) {
	r := rng.New(5)
	total := 0
	const reps = 400
	for i := 0; i < reps; i++ {
		e := NewEpidemic(50, 0.1, 0, 0, 0, r)
		total += e.Truth().Count()
	}
	mean := float64(total) / (50 * reps)
	if math.Abs(mean-0.1) > 0.01 {
		t.Fatalf("initial prevalence %v, want ~0.1", mean)
	}
}

func TestEpidemicRecoveryOnly(t *testing.T) {
	// With gamma=1 and no transmission, everyone recovers in one step.
	r := rng.New(7)
	e := NewEpidemic(20, 0.5, 0, 1, 0, r)
	e.Advance()
	if e.Truth() != 0 {
		t.Fatalf("gamma=1 left infections: %v", e.Truth())
	}
	if e.Prevalence() != 0 {
		t.Fatalf("prevalence %v", e.Prevalence())
	}
}

func TestEpidemicNoDynamicsIsFixedPoint(t *testing.T) {
	r := rng.New(9)
	e := NewEpidemic(16, 0.3, 0, 0, 0, r)
	before := e.Truth()
	for i := 0; i < 5; i++ {
		e.Advance()
	}
	if e.Truth() != before {
		t.Fatalf("state drifted without dynamics: %v -> %v", before, e.Truth())
	}
}

func TestEpidemicEndemicEquilibrium(t *testing.T) {
	// With transmission and recovery balanced, long-run prevalence settles
	// near the SIS equilibrium; just check it stays strictly interior.
	r := rng.New(11)
	e := NewEpidemic(40, 0.2, 0.02, 0.3, 0.005, r)
	var sum float64
	const rounds = 400
	for i := 0; i < rounds; i++ {
		e.Advance()
		sum += e.Prevalence()
	}
	mean := sum / rounds
	if mean <= 0.01 || mean >= 0.9 {
		t.Fatalf("long-run prevalence %v not endemic-interior", mean)
	}
}

func TestForceOfInfectionMonotone(t *testing.T) {
	r := rng.New(13)
	e := NewEpidemic(10, 0, 0.05, 0.1, 0.01, r)
	prev := -1.0
	for k := 0; k <= 10; k++ {
		f := e.forceOfInfection(k)
		if f < prev {
			t.Fatalf("force of infection decreasing at k=%d", k)
		}
		if f < 0 || f > 1 {
			t.Fatalf("force %v out of range", f)
		}
		prev = f
	}
	// Community floor: zero infected still carries the community rate.
	if got := e.forceOfInfection(0); math.Abs(got-0.01) > 1e-12 {
		t.Fatalf("community floor = %v", got)
	}
}

func TestNextRoundRisks(t *testing.T) {
	r := rng.New(17)
	e := NewEpidemic(4, 0, 0.05, 0.2, 0.01, r)
	marg := []float64{0, 0.5, 1, 0.02}
	risks := e.NextRoundRisks(marg)
	if len(risks) != 4 {
		t.Fatalf("len = %d", len(risks))
	}
	for i, p := range risks {
		if !(p > 0 && p < 1) {
			t.Fatalf("risk[%d] = %v not a valid prior", i, p)
		}
	}
	// A certainly-infected subject stays high risk (only recovery pulls it
	// down); a certainly-clean one picks up roughly the force of infection.
	if risks[2] < 0.7 {
		t.Errorf("infected carry-over risk %v too low", risks[2])
	}
	// λ at ~2 expected infected contacts: 1−(1−0.01)(1−0.05)² ≈ 0.107.
	if math.Abs(risks[0]-0.1065) > 0.01 {
		t.Errorf("clean subject risk %v, want ≈ λ = 0.107", risks[0])
	}
	// Monotone in the marginal.
	if !(risks[0] < risks[1] && risks[1] < risks[2]) {
		t.Errorf("risks not monotone in marginals: %v", risks)
	}
}

func TestNextRoundRisksPanicsOnLengthMismatch(t *testing.T) {
	r := rng.New(19)
	e := NewEpidemic(4, 0, 0.05, 0.2, 0.01, r)
	defer func() {
		if recover() == nil {
			t.Error("length mismatch accepted")
		}
	}()
	e.NextRoundRisks([]float64{0.5})
}
