package workload

import (
	"math"
	"testing"

	"repro/internal/bitvec"
	"repro/internal/dilution"
	"repro/internal/rng"
)

func TestUniformRisks(t *testing.T) {
	rs := UniformRisks(10, 0.07)
	if len(rs) != 10 {
		t.Fatalf("len = %d", len(rs))
	}
	for i, p := range rs {
		if p != 0.07 {
			t.Fatalf("risk[%d] = %v", i, p)
		}
	}
}

func TestUniformRisksPanics(t *testing.T) {
	for _, c := range []struct {
		n int
		p float64
	}{{0, 0.1}, {65, 0.1}, {5, 0}, {5, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("UniformRisks(%d, %v) did not panic", c.n, c.p)
				}
			}()
			UniformRisks(c.n, c.p)
		}()
	}
}

func TestBetaRisksInRangeAndMean(t *testing.T) {
	r := rng.New(3)
	a, b := 2.0, 18.0 // mean 0.1
	var sum float64
	const n = 64
	const reps = 500
	for rep := 0; rep < reps; rep++ {
		rs := BetaRisks(n, a, b, r)
		for _, p := range rs {
			if p < 1e-4 || p > 1-1e-4 {
				t.Fatalf("risk %v outside clamp", p)
			}
			sum += p
		}
	}
	mean := sum / (n * reps)
	if math.Abs(mean-0.1) > 0.01 {
		t.Fatalf("Beta risk mean = %v, want ~0.1", mean)
	}
}

func TestHouseholdRisksClusters(t *testing.T) {
	r := rng.New(9)
	rs := HouseholdRisks(20, 4, 0.3, 0.02, 0.4, r)
	if len(rs) != 20 {
		t.Fatalf("len = %d", len(rs))
	}
	// Every household must be internally homogeneous.
	for start := 0; start < 20; start += 4 {
		for i := start; i < start+4 && i < 20; i++ {
			if rs[i] != rs[start] {
				t.Fatalf("household starting at %d not homogeneous", start)
			}
			if rs[i] != 0.02 && rs[i] != 0.4 {
				t.Fatalf("risk %v not one of the two levels", rs[i])
			}
		}
	}
	// Exposure rate roughly matches over many draws.
	exposed := 0
	const reps = 2000
	for rep := 0; rep < reps; rep++ {
		hh := HouseholdRisks(4, 4, 0.3, 0.02, 0.4, r)
		if hh[0] == 0.4 {
			exposed++
		}
	}
	if rate := float64(exposed) / reps; math.Abs(rate-0.3) > 0.03 {
		t.Fatalf("exposure rate = %v", rate)
	}
}

func TestHouseholdRisksRaggedTail(t *testing.T) {
	r := rng.New(1)
	rs := HouseholdRisks(10, 3, 0.5, 0.01, 0.3, r)
	if len(rs) != 10 {
		t.Fatalf("len = %d", len(rs))
	}
	// The last household has only one member; it must still get a level.
	if rs[9] != 0.01 && rs[9] != 0.3 {
		t.Fatalf("tail risk %v", rs[9])
	}
}

func TestDrawMatchesRisks(t *testing.T) {
	r := rng.New(17)
	risks := []float64{0.05, 0.5, 0.95}
	counts := make([]int, 3)
	const reps = 20000
	for rep := 0; rep < reps; rep++ {
		p := Draw(risks, r)
		for i := 0; i < 3; i++ {
			if p.Truth.Has(i) {
				counts[i]++
			}
		}
	}
	for i, want := range risks {
		got := float64(counts[i]) / reps
		if math.Abs(got-want) > 0.01 {
			t.Errorf("subject %d infected rate %v, want %v", i, got, want)
		}
	}
}

func TestDrawCopiesRisks(t *testing.T) {
	r := rng.New(1)
	risks := []float64{0.1, 0.2}
	p := Draw(risks, r)
	risks[0] = 0.9
	if p.Risks[0] != 0.1 {
		t.Fatal("Draw aliased the caller's risk slice")
	}
}

func TestDrawConditioned(t *testing.T) {
	r := rng.New(23)
	risks := UniformRisks(12, 0.2)
	for _, k := range []int{0, 1, 3, 12} {
		p := DrawConditioned(risks, k, r)
		if p.Infected() != k {
			t.Fatalf("conditioned draw has %d infected, want %d", p.Infected(), k)
		}
	}
}

func TestDrawConditionedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("infeasible k did not panic")
		}
	}()
	DrawConditioned(UniformRisks(4, 0.2), 5, rng.New(1))
}

func TestOracleIdeal(t *testing.T) {
	r := rng.New(31)
	pop := Population{Risks: UniformRisks(8, 0.2), Truth: bitvec.FromIndices(2, 5)}
	o := NewOracle(pop, dilution.Ideal{}, r)
	if y := o.Test(bitvec.FromIndices(0, 1)); y.Positive {
		t.Error("clean pool tested positive under ideal response")
	}
	if y := o.Test(bitvec.FromIndices(2, 3)); !y.Positive {
		t.Error("infected pool tested negative under ideal response")
	}
	if o.Tests() != 2 {
		t.Errorf("Tests = %d", o.Tests())
	}
}

func TestOracleEmptyPoolPanics(t *testing.T) {
	o := NewOracle(Population{}, dilution.Ideal{}, rng.New(1))
	defer func() {
		if recover() == nil {
			t.Error("empty pool did not panic")
		}
	}()
	o.Test(0)
}

func TestOracleDilutionRates(t *testing.T) {
	// A single infected specimen in a large pool should miss more often
	// under a strong dilution model than in a small pool.
	resp := dilution.Hyperbolic{MaxSens: 0.99, Spec: 0.99, D: 0.5}
	r := rng.New(41)
	pop := Population{Truth: bitvec.FromIndices(0)}
	o := NewOracle(pop, resp, r)
	miss := func(pool bitvec.Mask) float64 {
		misses := 0
		const reps = 5000
		for i := 0; i < reps; i++ {
			if !o.Test(pool).Positive {
				misses++
			}
		}
		return float64(misses) / reps
	}
	small := miss(bitvec.Full(2))
	large := miss(bitvec.Full(32))
	if small >= large {
		t.Fatalf("dilution did not raise miss rate: pool2=%v pool32=%v", small, large)
	}
}
