package core

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"math"
	"reflect"
	"sort"
	"sync"
	"testing"

	"repro/internal/bitvec"
	"repro/internal/dilution"
	"repro/internal/halving"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/workload"
)

// spanShape reduces a tracer's buffer to a structural signature: one
// "parent>child" edge per span, sorted. Durations and IDs differ between
// runs; the tree (names and nesting) must not.
func spanShape(t *testing.T, tr *obs.Tracer) []string {
	t.Helper()
	recs, _ := tr.Snapshot()
	names := map[uint64]string{}
	for _, r := range recs {
		names[r.ID] = r.Name
	}
	var edges []string
	for _, r := range recs {
		parent := "root"
		if p, ok := names[r.ParentID]; ok {
			parent = p
		}
		edges = append(edges, parent+">"+r.Name)
	}
	sort.Strings(edges)
	return edges
}

// driveProposeAbsorb runs a campaign through the explicit state machine,
// the way a service with out-of-band lab results would.
func driveProposeAbsorb(t *testing.T, sess *Session, test TestFunc) *Result {
	t.Helper()
	for {
		pools, err := sess.ProposePools()
		if err != nil {
			t.Fatal(err)
		}
		if pools == nil {
			break
		}
		// Re-asking must hand back the same proposal, not a new stage.
		again, err := sess.ProposePools()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(pools, again) {
			t.Fatalf("re-proposal diverged: %v vs %v", pools, again)
		}
		results := make([]TestResult, 0, len(pools))
		for _, p := range pools {
			results = append(results, TestResult{Stage: p.Stage, Index: p.Index, Outcome: test(p.Pool)})
		}
		// Deliver in reverse order: absorption must match on (Stage, Index),
		// not arrival order.
		for i, j := 0, len(results)-1; i < j; i, j = i+1, j-1 {
			results[i], results[j] = results[j], results[i]
		}
		if err := sess.AbsorbResults(results); err != nil {
			t.Fatal(err)
		}
	}
	return sess.Result()
}

func TestProposeAbsorbMatchesRun(t *testing.T) {
	pool := newTestPool(t)
	risks := workload.UniformRisks(12, 0.1)
	resp := dilution.Hyperbolic{MaxSens: 0.97, Spec: 0.995, D: 0.25}
	for _, lookahead := range []int{1, 3} {
		popu := workload.Draw(risks, rng.New(91))

		run := func(drive func(*testing.T, *Session, TestFunc) *Result) (*Result, []string) {
			tr := obs.NewTracer(1 << 14)
			oracle := workload.NewOracle(popu, resp, rng.New(92))
			sess, err := NewSession(pool, Config{Risks: risks, Response: resp, Lookahead: lookahead, Tracer: tr})
			if err != nil {
				t.Fatal(err)
			}
			res := drive(t, sess, oracle.Test)
			if !sess.Done() {
				t.Fatal("campaign did not complete")
			}
			return res, spanShape(t, tr)
		}

		a, aspans := run(func(t *testing.T, s *Session, test TestFunc) *Result {
			res, err := s.Run(test)
			if err != nil {
				t.Fatal(err)
			}
			return res
		})
		b, bspans := run(driveProposeAbsorb)

		if !reflect.DeepEqual(a.Classifications, b.Classifications) {
			t.Fatalf("lookahead=%d: classifications diverged:\n%v\n%v", lookahead, a.Classifications, b.Classifications)
		}
		if a.Tests != b.Tests || a.Stages != b.Stages || a.Converged != b.Converged {
			t.Fatalf("lookahead=%d: counters diverged: %d/%d/%v vs %d/%d/%v",
				lookahead, a.Tests, a.Stages, a.Converged, b.Tests, b.Stages, b.Converged)
		}
		if !reflect.DeepEqual(a.EntropyTrace, b.EntropyTrace) {
			t.Fatalf("lookahead=%d: entropy traces diverged:\n%v\n%v", lookahead, a.EntropyTrace, b.EntropyTrace)
		}
		if !reflect.DeepEqual(a.Log, b.Log) {
			t.Fatalf("lookahead=%d: test logs diverged", lookahead)
		}
		if len(a.StageTimings) != len(b.StageTimings) {
			t.Fatalf("lookahead=%d: %d vs %d stage timings", lookahead, len(a.StageTimings), len(b.StageTimings))
		}
		for i := range a.StageTimings {
			if a.StageTimings[i].Stage != b.StageTimings[i].Stage {
				t.Fatalf("lookahead=%d: timing %d stage %d vs %d",
					lookahead, i, a.StageTimings[i].Stage, b.StageTimings[i].Stage)
			}
		}
		// The trace trees must be structurally identical — same span names
		// under the same parents — except the propose/absorb driver runs its
		// tests out of band, so no "test" spans appear under its stages.
		filtered := make([]string, 0, len(aspans))
		for _, e := range aspans {
			if e != "stage>test" {
				filtered = append(filtered, e)
			}
		}
		if !reflect.DeepEqual(filtered, bspans) {
			t.Fatalf("lookahead=%d: span trees diverged:\n%v\n%v", lookahead, filtered, bspans)
		}
	}
}

func TestAbsorbValidation(t *testing.T) {
	pool := newTestPool(t)
	risks := workload.UniformRisks(8, 0.1)
	sess, err := NewSession(pool, Config{Risks: risks, Response: dilution.Ideal{}})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	// Absorbing before proposing is the no-proposal error.
	if err := sess.AbsorbResults([]TestResult{{Stage: 1, Index: 0}}); err != ErrNoProposal {
		t.Fatalf("pre-proposal absorb: %v", err)
	}
	if sess.Outstanding() != nil {
		t.Fatal("idle session reports an outstanding proposal")
	}
	pools, err := sess.ProposePools()
	if err != nil {
		t.Fatal(err)
	}
	if len(pools) != 1 || pools[0].Stage != 1 || pools[0].Index != 0 || pools[0].Pool == 0 {
		t.Fatalf("unexpected proposal %v", pools)
	}
	if got := sess.Outstanding(); !reflect.DeepEqual(got, pools) {
		t.Fatalf("Outstanding %v != proposal %v", got, pools)
	}

	bad := []struct {
		name    string
		results []TestResult
	}{
		{"empty batch", nil},
		{"wrong stage", []TestResult{{Stage: 2, Index: 0, Outcome: dilution.Positive}}},
		{"index out of range", []TestResult{{Stage: 1, Index: 1, Outcome: dilution.Positive}}},
		{"negative index", []TestResult{{Stage: 1, Index: -1, Outcome: dilution.Positive}}},
		{"extra result", []TestResult{{Stage: 1, Index: 0}, {Stage: 1, Index: 0}}},
	}
	for _, c := range bad {
		if err := sess.AbsorbResults(c.results); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
		// Rejected batches must not consume the proposal.
		if sess.Outstanding() == nil {
			t.Fatalf("%s: proposal consumed by a rejected batch", c.name)
		}
		if sess.Tests() != 0 {
			t.Fatalf("%s: rejected batch absorbed a test", c.name)
		}
	}

	// The valid batch lands, and a duplicate submission cannot land twice.
	if err := sess.AbsorbResults([]TestResult{{Stage: 1, Index: 0, Outcome: dilution.Negative}}); err != nil {
		t.Fatal(err)
	}
	if sess.Tests() != 1 {
		t.Fatalf("tests = %d after one absorb", sess.Tests())
	}
	if !sess.Done() {
		if err := sess.AbsorbResults([]TestResult{{Stage: 1, Index: 0, Outcome: dilution.Negative}}); err != ErrNoProposal {
			t.Fatalf("duplicate absorb: %v", err)
		}
	}
}

// failingStrategy errors on every selection, driving Step's failure path.
type failingStrategy struct{}

func (failingStrategy) Next(halving.Posterior) (bitvec.Mask, error) {
	return 0, fmt.Errorf("deliberate selection failure")
}
func (failingStrategy) Name() string { return "failing" }

func TestCloseConcurrentWithFailedStep(t *testing.T) {
	pool := newTestPool(t)
	risks := workload.UniformRisks(6, 0.1)
	for trial := 0; trial < 8; trial++ {
		sess, err := NewSession(pool, Config{Risks: risks, Response: dilution.Ideal{}, Strategy: failingStrategy{}})
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		// One goroutine drives failing Steps; several race Close against it —
		// the session-manager eviction/drain shape.
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				//lint:allow errcheck the error (selection failure or closed session) is the point
				_ = sess.Step(func(bitvec.Mask) dilution.Outcome { return dilution.Negative })
			}
		}()
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				if err := sess.Close(); err != nil {
					t.Errorf("concurrent Close: %v", err)
				}
			}()
		}
		wg.Wait()
		if !sess.Done() {
			t.Fatal("session survived Close")
		}
		if err := sess.Close(); err != nil {
			t.Fatalf("re-Close: %v", err)
		}
		// A closed session ignores further driving.
		if err := sess.Step(func(bitvec.Mask) dilution.Outcome { return dilution.Negative }); err != nil {
			t.Fatalf("Step after Close: %v", err)
		}
	}
}

func TestCloseDuringLabRoundTrip(t *testing.T) {
	// Close fires between ProposePools and AbsorbResults — the proposal is
	// abandoned and the late results are dropped, not absorbed into a
	// closed model.
	pool := newTestPool(t)
	risks := workload.UniformRisks(6, 0.1)
	sess, err := NewSession(pool, Config{Risks: risks, Response: dilution.Ideal{}})
	if err != nil {
		t.Fatal(err)
	}
	pools, err := sess.ProposePools()
	if err != nil || len(pools) == 0 {
		t.Fatalf("propose: %v %v", pools, err)
	}
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}
	results := []TestResult{{Stage: pools[0].Stage, Index: pools[0].Index, Outcome: dilution.Positive}}
	if err := sess.AbsorbResults(results); err != nil {
		t.Fatalf("late absorb on closed session: %v", err)
	}
	if sess.Tests() != 0 {
		t.Fatal("closed session absorbed a result")
	}
}

func TestCheckpointPendingProposalRoundTrip(t *testing.T) {
	pool := newTestPool(t)
	risks := workload.UniformRisks(10, 0.12)
	resp := dilution.Binary{Sens: 0.96, Spec: 0.99}
	popu := workload.Draw(risks, rng.New(404))
	oracle := workload.NewOracle(popu, resp, rng.New(405))

	sess, err := NewSession(pool, Config{Risks: risks, Response: resp})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2 && !sess.Done(); i++ {
		if err := sess.Step(oracle.Test); err != nil {
			t.Fatal(err)
		}
	}
	pools, err := sess.ProposePools()
	if err != nil || len(pools) == 0 {
		t.Fatalf("propose: %v %v", pools, err)
	}

	var buf bytes.Buffer
	if err := sess.SaveSession(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := LoadSession(bytes.NewReader(buf.Bytes()), pool, nil)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Stage() != sess.Stage() || restored.Tests() != sess.Tests() {
		t.Fatalf("counters: %d/%d vs %d/%d", restored.Stage(), restored.Tests(), sess.Stage(), sess.Tests())
	}
	if got := restored.Outstanding(); !reflect.DeepEqual(got, pools) {
		t.Fatalf("restored proposal %v, want %v", got, pools)
	}

	// Both sessions absorb the same lab results and finish on identical
	// oracle streams; the evicted-and-restored cohort must classify the
	// same way as the one that stayed resident.
	finish := func(s *Session, seed uint64) *Result {
		o := workload.NewOracle(popu, resp, rng.New(seed))
		outstanding := s.Outstanding()
		results := make([]TestResult, 0, len(outstanding))
		for _, p := range outstanding {
			results = append(results, TestResult{Stage: p.Stage, Index: p.Index, Outcome: o.Test(p.Pool)})
		}
		if err := s.AbsorbResults(results); err != nil {
			t.Fatal(err)
		}
		res, err := s.Run(o.Test)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a := finish(sess, 777)
	b := finish(restored, 777)
	// Restoring renormalizes the posterior (a ~1-ULP perturbation, same as
	// the historical checkpoint format), so exact marginals and the stage a
	// threshold crossing lands on may differ by rounding; the classification
	// calls must not.
	for i := range a.Classifications {
		if a.Classifications[i].Status != b.Classifications[i].Status {
			t.Fatalf("subject %d: %v resident vs %v restored",
				i, a.Classifications[i].Status, b.Classifications[i].Status)
		}
	}
	if a.Positives() != b.Positives() {
		t.Fatalf("positives diverged: %v vs %v", a.Positives(), b.Positives())
	}
}

func TestCheckpointVersionTagging(t *testing.T) {
	// The historical format is untouched for every historical state: a
	// session with no outstanding proposal writes version 2. Only the new
	// state (a pending proposal) writes the new version.
	pool := newTestPool(t)
	risks := workload.UniformRisks(6, 0.1)
	sess, err := NewSession(pool, Config{Risks: risks, Response: dilution.Ideal{}})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	version := func() int {
		var buf bytes.Buffer
		if err := sess.SaveSession(&buf); err != nil {
			t.Fatal(err)
		}
		var h sessionHeader
		if err := gob.NewDecoder(&buf).Decode(&h); err != nil {
			t.Fatal(err)
		}
		return h.Version
	}
	if v := version(); v != sessionVersion {
		t.Fatalf("idle session wrote version %d, want %d", v, sessionVersion)
	}
	if _, err := sess.ProposePools(); err != nil {
		t.Fatal(err)
	}
	if v := version(); v != sessionVersionPending {
		t.Fatalf("pending session wrote version %d, want %d", v, sessionVersionPending)
	}
}

func TestRunFromRestoredPendingSession(t *testing.T) {
	// Run on a session restored mid-proposal re-issues the same pools
	// through its test function and completes the campaign.
	pool := newTestPool(t)
	risks := workload.UniformRisks(8, 0.15)
	popu := workload.Draw(risks, rng.New(11))
	oracle := workload.NewOracle(popu, dilution.Ideal{}, rng.New(12))
	sess, err := NewSession(pool, Config{Risks: risks, Response: dilution.Ideal{}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.ProposePools(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := sess.SaveSession(&buf); err != nil {
		t.Fatal(err)
	}
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}
	restored, err := LoadSession(&buf, pool, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := restored.Run(oracle.Test)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Positives(); got != popu.Truth {
		t.Fatalf("classified %v, truth %v", got, popu.Truth)
	}
	if math.Abs(float64(res.Tests-len(res.Log))) > 0 {
		t.Fatalf("log has %d records for %d tests", len(res.Log), res.Tests)
	}
}
