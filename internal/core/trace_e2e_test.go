package core

import (
	"strings"
	"testing"
	"time"

	"repro/internal/bitvec"
	"repro/internal/dilution"
	"repro/internal/obs"
	"repro/internal/posterior"
)

// TestSessionClusterTraceAssembles is the end-to-end distributed-tracing
// acceptance test: a cluster-backed session (loopback executors, the real
// wire protocol) run to completion must yield ONE assembled trace in
// which the RPC round trips and the executor-side kernels all hang off
// the session root via the stage-phase spans.
func TestSessionClusterTraceAssembles(t *testing.T) {
	tracer := obs.NewTracer(0)
	risks := []float64{0.05, 0.2, 0.1, 0.3}
	model, err := posterior.Spec{
		Kind:           posterior.KindCluster,
		LocalExecutors: 2,
		ExecWorkers:    1,
		DialTimeout:    5 * time.Second,
		Tracer:         tracer,
	}.Open(nil, risks, dilution.Binary{Sens: 0.95, Spec: 0.99})
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSessionOn(model, Config{Tracer: tracer})
	if err != nil {
		model.Close() //lint:allow errcheck teardown after a failed construction
		t.Fatal(err)
	}
	infected := bitvec.FromIndices(1)
	res, err := s.Run(func(pool bitvec.Mask) dilution.Outcome {
		if !pool.Disjoint(infected) {
			return dilution.Positive
		}
		return dilution.Negative
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil { // idempotent; ends the session span
		t.Fatal(err)
	}
	if res.Stages == 0 {
		t.Fatal("session ran no stages")
	}

	spans, dropped := tracer.Snapshot()
	if dropped != 0 {
		t.Fatalf("tracer dropped %d spans", dropped)
	}
	traces := obs.Assemble(spans)
	if len(traces) != 1 {
		t.Fatalf("assembled %d traces, want 1", len(traces))
	}
	tr := traces[0]
	if len(tr.Roots) != 1 || tr.Roots[0].Name != "session" {
		names := make([]string, len(tr.Roots))
		for i, r := range tr.Roots {
			names[i] = r.Name
		}
		t.Fatalf("trace roots = %v, want exactly [session]", names)
	}

	// Walk the tree checking the layering: stages sit directly under the
	// session; rpc spans only under session (pre-stage prior calls) or
	// phase spans; exec spans only under rpc spans; kernels under exec.
	parentName := map[uint64]string{}
	var stages, rpcs, execs, kernels int
	tr.Walk(func(_ int, n *obs.TraceNode) {
		for _, c := range n.Children {
			parentName[c.ID] = n.Name
		}
	})
	deepKernel := false
	tr.Walk(func(depth int, n *obs.TraceNode) {
		p := parentName[n.ID]
		switch {
		case n.Name == "stage":
			stages++
			if p != "session" {
				t.Errorf("stage span parented by %q, want session", p)
			}
		case strings.HasPrefix(n.Name, "rpc:"):
			rpcs++
			switch p {
			case "session", "select", "update", "classify":
			default:
				t.Errorf("%s parented by %q, want session or a phase span", n.Name, p)
			}
		case strings.HasPrefix(n.Name, "exec:"):
			execs++
			if !strings.HasPrefix(p, "rpc:") {
				t.Errorf("%s parented by %q, want an rpc span", n.Name, p)
			}
		case n.Name == "kernel":
			kernels++
			if !strings.HasPrefix(p, "exec:") {
				t.Errorf("kernel parented by %q, want an exec span", p)
			}
			if depth == 5 { // session → stage → phase → rpc → exec → kernel
				deepKernel = true
			}
		}
	})
	if stages != res.Stages {
		t.Errorf("trace holds %d stage spans, session ran %d stages", stages, res.Stages)
	}
	if rpcs == 0 || execs == 0 || kernels == 0 {
		t.Errorf("span counts rpc=%d exec=%d kernel=%d, want all > 0", rpcs, execs, kernels)
	}
	if execs != rpcs {
		t.Errorf("exec spans (%d) != rpc spans (%d): trailer lost spans", execs, rpcs)
	}
	if !deepKernel {
		t.Error("no kernel span reached via session → stage → phase → rpc → exec")
	}
}
