package core

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"io"

	"repro/internal/bitvec"
	"repro/internal/engine"
	"repro/internal/halving"
	"repro/internal/latticeio"
	"repro/internal/obs"
	"repro/internal/posterior"
	"repro/internal/sparse"
)

// sessionHeader is the gob-encoded session metadata that precedes the
// posterior checkpoint. The selection strategy is deliberately NOT
// serialized: strategies are arbitrary (possibly stateful) implementations
// the checkpoint format cannot promise to round-trip, so LoadSession takes
// the strategy from the caller's config — which also lets an operator
// change selection policy across a restart without invalidating the
// posterior.
type sessionHeader struct {
	Version int
	// Backend tags the payload that follows (a posterior.Kind). Version-1
	// checkpoints predate the field; gob leaves it "", which reads as
	// dense — exactly what every v1 checkpoint holds.
	Backend string
	Active  []int
	Calls   []Classification
	Stage   int
	Tests   int
	Entropy []float64
	Log     []TestRecord
	// Config echo (minus Strategy/Response, which live with the payload
	// or the caller).
	Lookahead    int
	PosThreshold float64
	NegThreshold float64
	MaxStages    int
	Parts        int
	Done         bool
}

const sessionVersion = 2

// sessionVersionPending tags a checkpoint taken while a ProposePools
// proposal was outstanding: the posterior payload is followed by one
// pendingPayload gob message. Sessions with no outstanding proposal keep
// writing version 2, byte-for-byte identical to the historical format —
// the new version exists only for the new state.
const sessionVersionPending = 3

// sparsePayload is the gob-encoded posterior block of a sparse-backed
// checkpoint: the retained support plus the truncation accounting, the
// inputs of sparse.Restore.
type sparsePayload struct {
	Snapshot posterior.Snapshot
}

// pendingPayload trails a version-3 checkpoint: the outstanding proposal's
// pools as model-position masks, in proposal order. The stage counter in
// the header already counts the open stage; the restored session
// re-enters the waiting-for-results state with the same pools. The
// proposal's select wall time is not carried — a restored stage's
// StageTiming reports Select 0.
type pendingPayload struct {
	Pools []bitvec.Mask
}

// SaveSession checkpoints a mid-campaign session: classifications made so
// far, the stage/test counters, the test log, and — unless the session is
// already complete — the live posterior over the still-active subjects.
// The payload is backend-tagged: dense and cluster posteriors write the
// latticeio dense format (a cluster posterior is gathered to the driver
// first), sparse posteriors write their retained support. A session
// checkpointed while a ProposePools proposal is outstanding additionally
// records the proposed pools (version 3), so an evicted-and-restored
// cohort resumes waiting for the same lab results.
func (s *Session) SaveSession(w io.Writer) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	bw := bufio.NewWriter(w)
	h := sessionHeader{
		Version:      sessionVersion,
		Active:       s.active,
		Calls:        s.calls,
		Stage:        s.stage,
		Tests:        s.tests,
		Entropy:      s.entropy,
		Log:          s.log,
		Lookahead:    s.cfg.Lookahead,
		PosThreshold: s.cfg.PosThreshold,
		NegThreshold: s.cfg.NegThreshold,
		MaxStages:    s.cfg.MaxStages,
		Parts:        s.cfg.Parts,
		Done:         s.model == nil,
	}
	if s.pend != nil {
		h.Version = sessionVersionPending
	}
	var snap *posterior.Snapshot
	if s.model != nil {
		var err error
		snap, err = s.model.Snapshot()
		if err != nil {
			return fmt.Errorf("core: snapshot posterior: %w", err)
		}
		h.Backend = string(snap.Kind)
	}
	if err := gob.NewEncoder(bw).Encode(&h); err != nil {
		return fmt.Errorf("core: encode session header: %w", err)
	}
	if snap != nil {
		switch snap.Kind {
		case posterior.KindDense, posterior.KindCluster:
			if err := latticeio.SaveRaw(bw, snap.Risks, snap.Response, snap.Tests, snap.Dense); err != nil {
				return fmt.Errorf("core: save posterior: %w", err)
			}
		case posterior.KindSparse:
			if err := gob.NewEncoder(bw).Encode(&sparsePayload{Snapshot: *snap}); err != nil {
				return fmt.Errorf("core: save sparse posterior: %w", err)
			}
		default:
			return fmt.Errorf("core: cannot checkpoint backend %q", snap.Kind)
		}
	}
	if s.pend != nil {
		if err := gob.NewEncoder(bw).Encode(&pendingPayload{Pools: s.pend.local}); err != nil {
			return fmt.Errorf("core: save pending proposal: %w", err)
		}
	}
	return bw.Flush()
}

// LoadSession restores a session checkpoint onto the pool. strategy
// supplies the selection policy for the resumed campaign (nil selects the
// default halving strategy); it must be compatible with the Lookahead
// recorded in the checkpoint (lookahead > 1 requires halving and the
// dense backend, as at session construction).
//
// Dense checkpoints resume on the dense backend and sparse checkpoints on
// the sparse backend. Cluster checkpoints resume as *dense* sessions: the
// checkpoint carries the gathered posterior, and which executors to dial
// is a deployment decision, not a checkpoint property — re-open a cluster
// session explicitly if distribution is still wanted.
func LoadSession(r io.Reader, pool *engine.Pool, strategy halving.Strategy) (*Session, error) {
	br := bufio.NewReader(r)
	var h sessionHeader
	if err := gob.NewDecoder(br).Decode(&h); err != nil {
		return nil, fmt.Errorf("core: decode session header: %w", err)
	}
	if h.Version < 1 || h.Version > sessionVersionPending {
		return nil, fmt.Errorf("core: unsupported session checkpoint version %d", h.Version)
	}
	if h.Version == sessionVersionPending && h.Done {
		return nil, fmt.Errorf("core: checkpoint claims a pending proposal on a completed session")
	}
	if len(h.Calls) == 0 {
		return nil, fmt.Errorf("core: checkpoint has no subjects")
	}
	if !h.Done && len(h.Active) == 0 {
		return nil, fmt.Errorf("core: checkpoint claims live posterior but has no active subjects")
	}
	for _, g := range h.Active {
		if g < 0 || g >= len(h.Calls) {
			return nil, fmt.Errorf("core: active subject %d outside cohort of %d", g, len(h.Calls))
		}
	}
	s := &Session{
		active:  h.Active,
		calls:   h.Calls,
		stage:   h.Stage,
		tests:   h.Tests,
		entropy: h.Entropy,
		log:     h.Log,
		// Resumed sessions start unobserved; the detached phase metrics and
		// detached root span keep the stage loop's timing path valid. Attach
		// a registry by setting cfg.Obs before resuming a campaign through
		// NewSessionOn instead.
		phases: newStagePhases(nil),
		root:   (*obs.Tracer)(nil).Start("session"),
	}
	if !h.Done {
		backend := posterior.Kind(h.Backend)
		if backend == "" {
			backend = posterior.KindDense // version-1 checkpoints are dense
		}
		var model posterior.Model
		switch backend {
		case posterior.KindDense, posterior.KindCluster:
			lm, err := latticeio.Load(br, pool, h.Parts)
			if err != nil {
				return nil, fmt.Errorf("core: load posterior: %w", err)
			}
			model = posterior.FromLattice(lm)
		case posterior.KindSparse:
			var p sparsePayload
			if err := gob.NewDecoder(br).Decode(&p); err != nil {
				return nil, fmt.Errorf("core: load sparse posterior: %w", err)
			}
			sm, err := sparse.Restore(sparse.Config{
				Risks:    p.Snapshot.Risks,
				Response: p.Snapshot.Response,
				Eps:      p.Snapshot.Eps,
			}, p.Snapshot.States, p.Snapshot.Mass, p.Snapshot.Pruned, p.Snapshot.Tests)
			if err != nil {
				return nil, fmt.Errorf("core: load sparse posterior: %w", err)
			}
			model = posterior.FromSparse(sm)
		default:
			return nil, fmt.Errorf("core: unknown checkpoint backend %q", h.Backend)
		}
		if model.N() != len(h.Active) {
			return nil, fmt.Errorf("core: posterior has %d subjects, header lists %d active", model.N(), len(h.Active))
		}
		s.model = model
		marg, err := model.Marginals()
		if err != nil {
			return nil, fmt.Errorf("core: restored marginals: %w", err)
		}
		s.marg = marg
		// Rebuild the config through the usual validation path so the
		// resumed session enforces the same invariants as a fresh one.
		cfg := Config{
			Risks:        model.Risks(),
			Response:     model.Response(),
			Strategy:     strategy,
			Lookahead:    h.Lookahead,
			PosThreshold: h.PosThreshold,
			NegThreshold: h.NegThreshold,
			MaxStages:    h.MaxStages,
			Parts:        h.Parts,
		}
		full, err := cfg.withDefaults()
		if err != nil {
			return nil, err
		}
		if full.Lookahead > 1 {
			if _, ok := posterior.Base(model).(denseBacked); !ok {
				return nil, fmt.Errorf("core: lookahead requires the dense backend, have %s", model.Kind())
			}
		}
		s.cfg = full
		if h.Version == sessionVersionPending {
			var pp pendingPayload
			if err := gob.NewDecoder(br).Decode(&pp); err != nil {
				return nil, fmt.Errorf("core: load pending proposal: %w", err)
			}
			if len(pp.Pools) == 0 {
				return nil, fmt.Errorf("core: pending proposal is empty")
			}
			if h.Stage < 1 {
				return nil, fmt.Errorf("core: pending proposal on stage %d", h.Stage)
			}
			cohort := bitvec.Full(model.N())
			pend := &pending{
				span:   s.root.Child("stage", obs.A("stage", h.Stage)),
				timing: StageTiming{Stage: h.Stage},
			}
			for i, p := range pp.Pools {
				if p == 0 || !p.SubsetOf(cohort) {
					return nil, fmt.Errorf("core: pending pool %d (%v) outside cohort of %d", i, p, model.N())
				}
				pend.local = append(pend.local, p)
				pend.global = append(pend.global, s.globalMask(p))
			}
			s.pend = pend
		}
	} else {
		s.cfg = Config{
			Lookahead:    h.Lookahead,
			PosThreshold: h.PosThreshold,
			NegThreshold: h.NegThreshold,
			MaxStages:    h.MaxStages,
			Parts:        h.Parts,
		}
	}
	return s, nil
}
