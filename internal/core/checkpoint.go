package core

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"io"

	"repro/internal/engine"
	"repro/internal/halving"
	"repro/internal/latticeio"
)

// sessionHeader is the gob-encoded session metadata that precedes the
// lattice checkpoint. The selection strategy is deliberately NOT
// serialized: strategies are arbitrary (possibly stateful) implementations
// the checkpoint format cannot promise to round-trip, so LoadSession takes
// the strategy from the caller's config — which also lets an operator
// change selection policy across a restart without invalidating the
// posterior.
type sessionHeader struct {
	Version int
	Active  []int
	Calls   []Classification
	Stage   int
	Tests   int
	Entropy []float64
	Log     []TestRecord
	// Config echo (minus Strategy/Response, which live with the lattice
	// or the caller).
	Lookahead    int
	PosThreshold float64
	NegThreshold float64
	MaxStages    int
	Parts        int
	Done         bool
}

const sessionVersion = 1

// SaveSession checkpoints a mid-campaign session: classifications made so
// far, the stage/test counters, the test log, and — unless the session is
// already complete — the live lattice posterior over the still-active
// subjects.
func (s *Session) SaveSession(w io.Writer) error {
	bw := bufio.NewWriter(w)
	h := sessionHeader{
		Version:      sessionVersion,
		Active:       s.active,
		Calls:        s.calls,
		Stage:        s.stage,
		Tests:        s.tests,
		Entropy:      s.entropy,
		Log:          s.log,
		Lookahead:    s.cfg.Lookahead,
		PosThreshold: s.cfg.PosThreshold,
		NegThreshold: s.cfg.NegThreshold,
		MaxStages:    s.cfg.MaxStages,
		Parts:        s.cfg.Parts,
		Done:         s.model == nil,
	}
	if err := gob.NewEncoder(bw).Encode(&h); err != nil {
		return fmt.Errorf("core: encode session header: %w", err)
	}
	if s.model != nil {
		if err := latticeio.Save(bw, s.model); err != nil {
			return fmt.Errorf("core: save lattice: %w", err)
		}
	}
	return bw.Flush()
}

// LoadSession restores a session checkpoint onto the pool. strategy
// supplies the selection policy for the resumed campaign (nil selects the
// default halving strategy); it must be compatible with the Lookahead
// recorded in the checkpoint (lookahead > 1 requires halving, as at
// session construction).
func LoadSession(r io.Reader, pool *engine.Pool, strategy halving.Strategy) (*Session, error) {
	br := bufio.NewReader(r)
	var h sessionHeader
	if err := gob.NewDecoder(br).Decode(&h); err != nil {
		return nil, fmt.Errorf("core: decode session header: %w", err)
	}
	if h.Version != sessionVersion {
		return nil, fmt.Errorf("core: unsupported session checkpoint version %d", h.Version)
	}
	if len(h.Calls) == 0 {
		return nil, fmt.Errorf("core: checkpoint has no subjects")
	}
	if !h.Done && len(h.Active) == 0 {
		return nil, fmt.Errorf("core: checkpoint claims live lattice but has no active subjects")
	}
	for _, g := range h.Active {
		if g < 0 || g >= len(h.Calls) {
			return nil, fmt.Errorf("core: active subject %d outside cohort of %d", g, len(h.Calls))
		}
	}
	s := &Session{
		active:  h.Active,
		calls:   h.Calls,
		stage:   h.Stage,
		tests:   h.Tests,
		entropy: h.Entropy,
		log:     h.Log,
	}
	if !h.Done {
		model, err := latticeio.Load(br, pool, h.Parts)
		if err != nil {
			return nil, fmt.Errorf("core: load lattice: %w", err)
		}
		if model.N() != len(h.Active) {
			return nil, fmt.Errorf("core: lattice has %d subjects, header lists %d active", model.N(), len(h.Active))
		}
		s.model = model
		// Rebuild the config through the usual validation path so the
		// resumed session enforces the same invariants as a fresh one.
		cfg := Config{
			Risks:        model.Risks(),
			Response:     model.Response(),
			Strategy:     strategy,
			Lookahead:    h.Lookahead,
			PosThreshold: h.PosThreshold,
			NegThreshold: h.NegThreshold,
			MaxStages:    h.MaxStages,
			Parts:        h.Parts,
		}
		full, err := cfg.withDefaults()
		if err != nil {
			return nil, err
		}
		s.cfg = full
	} else {
		s.cfg = Config{
			Lookahead:    h.Lookahead,
			PosThreshold: h.PosThreshold,
			NegThreshold: h.NegThreshold,
			MaxStages:    h.MaxStages,
			Parts:        h.Parts,
		}
	}
	return s, nil
}
