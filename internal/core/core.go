// Package core orchestrates the SBGT surveillance loop: build the
// posterior prior, select pools (Bayesian halving or a comparison
// strategy), run the physical tests, fold outcomes into the posterior,
// classify subjects whose marginals cross the decision thresholds, and
// collapse classified subjects out of the model so the state space
// shrinks as certainty accumulates.
//
// A Session owns one cohort's classification campaign and is generic
// over the posterior representation (posterior.Model): the same loop
// runs on the dense in-process lattice, the truncated sparse support,
// and the distributed cluster driver. Subjects are identified by their
// *global* index in the original cohort throughout; internally the
// session maintains the mapping onto the shrinking model.
package core

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"repro/internal/bitvec"
	"repro/internal/dilution"
	"repro/internal/engine"
	"repro/internal/halving"
	"repro/internal/lattice"
	"repro/internal/obs"
	"repro/internal/posterior"
)

// Status is a subject's classification state.
type Status int8

// Classification states.
const (
	StatusUnknown  Status = iota // still in the lattice
	StatusNegative               // classified not infected
	StatusPositive               // classified infected
)

// String renders the status.
func (s Status) String() string {
	switch s {
	case StatusNegative:
		return "negative"
	case StatusPositive:
		return "positive"
	default:
		return "unknown"
	}
}

// Classification records one subject's final call.
type Classification struct {
	Subject  int // global subject index
	Status   Status
	Marginal float64 // posterior infection probability at decision time
	Stage    int     // stage at which the call was made (1-based; 0 = never)
	Forced   bool    // true when called at termination without crossing a threshold
}

// TestRecord logs one physical pooled test.
type TestRecord struct {
	Stage   int
	Pool    bitvec.Mask // global subject indices
	Outcome dilution.Outcome
}

// TestFunc runs one physical pooled test on the given subjects (global
// indices) and returns the outcome — in production a LIMS call, in the
// experiments a workload.Oracle.
type TestFunc func(pool bitvec.Mask) dilution.Outcome

// Pool is one proposed physical test: the session asks the caller to run
// a pooled assay over the given subjects and report the outcome back via
// AbsorbResults. (Stage, Index) is the proposal's identity — results are
// matched against it, so a late or duplicated lab report can never be
// absorbed twice or against the wrong stage.
type Pool struct {
	Stage int         // 1-based stage this proposal belongs to
	Index int         // position within the stage's proposal
	Pool  bitvec.Mask // global subject indices to pool
}

// TestResult reports one completed physical test back to the session.
// Stage and Index must match a pool returned by ProposePools. Elapsed,
// when set, is the wall time of the physical test and is folded into the
// stage's StageTiming.Test (the session cannot time an out-of-band lab
// round-trip itself).
type TestResult struct {
	Stage   int
	Index   int
	Outcome dilution.Outcome
	Elapsed time.Duration
}

// ErrNoProposal is returned by AbsorbResults when the session has no
// outstanding pool proposal — results were already absorbed (a duplicate
// lab report) or ProposePools was never called.
var ErrNoProposal = errors.New("core: no outstanding pool proposal")

// Config configures a surveillance session.
type Config struct {
	// Risks holds per-subject prior infection probabilities (length = cohort
	// size, each in (0,1)). Required for NewSession; NewSessionOn fills it
	// from the model when nil.
	Risks []float64
	// Response models the pooled assay. Required for NewSession;
	// NewSessionOn fills it from the model when nil.
	Response dilution.Response
	// Strategy selects pools; nil defaults to the Bayesian Halving
	// Algorithm with MaxPool 32.
	Strategy halving.Strategy
	// Lookahead > 1 selects that many pools per stage with the halving
	// look-ahead rule (fewer lab round-trips, slightly more tests).
	// Requires the strategy to be halving (or nil) and the dense backend.
	Lookahead int
	// PosThreshold classifies a subject positive when its marginal reaches
	// it; 0 defaults to 0.99.
	PosThreshold float64
	// NegThreshold classifies a subject negative when its marginal falls to
	// it; 0 defaults to 0.01.
	NegThreshold float64
	// MaxStages caps the sequential stages before remaining subjects are
	// force-classified at the posterior mode; 0 defaults to 64.
	MaxStages int
	// Parts is the lattice partition count (engine default when 0). Dense
	// backend only.
	Parts int
	// Obs, when non-nil, receives session metrics
	// (sbgt_session_stage_seconds{phase}, stage/test counters) and wraps
	// the posterior with posterior.Instrument so backend ops report too.
	Obs *obs.Registry
	// Tracer, when non-nil, records one span per stage with select / test /
	// update / classify children.
	Tracer *obs.Tracer
	// Flight, when non-nil, receives stage-transition events (proposals,
	// absorbs, absorb failures) tagged with the session's trace ID — the
	// flight-recorder view of the campaign. The scope carries the tenant
	// and cohort identity; core only stamps stage facts onto it.
	Flight *obs.FlightScope
}

func (c *Config) withDefaults() (Config, error) {
	out := *c
	if len(out.Risks) == 0 {
		return out, fmt.Errorf("core: empty cohort")
	}
	if out.Response == nil {
		return out, fmt.Errorf("core: nil response model")
	}
	if out.Strategy == nil {
		out.Strategy = halving.Halving{Opts: halving.Options{MaxPool: 32}}
	}
	if out.Lookahead < 1 {
		out.Lookahead = 1
	}
	if out.Lookahead > 1 {
		if _, ok := out.Strategy.(halving.Halving); !ok {
			return out, fmt.Errorf("core: lookahead requires the halving strategy, have %s", out.Strategy.Name())
		}
	}
	if out.PosThreshold == 0 { //lint:allow floats the zero value marks the field unset
		out.PosThreshold = 0.99
	}
	if out.NegThreshold == 0 { //lint:allow floats the zero value marks the field unset
		out.NegThreshold = 0.01
	}
	if !(out.NegThreshold > 0 && out.NegThreshold < out.PosThreshold && out.PosThreshold < 1) {
		return out, fmt.Errorf("core: thresholds neg=%v pos=%v invalid", out.NegThreshold, out.PosThreshold)
	}
	if out.MaxStages == 0 {
		out.MaxStages = 64
	}
	if out.MaxStages < 0 {
		return out, fmt.Errorf("core: MaxStages %d negative", out.MaxStages)
	}
	return out, nil
}

// denseBacked is the capability the look-ahead selector needs: direct
// access to a dense lattice. Only posterior.Dense provides it.
type denseBacked interface {
	Lattice() *lattice.Model
}

// traceCarrier is the optional backend capability for distributed
// tracing: a model that can accept a propagated trace context (the
// cluster driver) emits its RPC spans under the session's live phase
// span, so one assembled trace spans session, driver, and executors.
type traceCarrier interface {
	SetTraceContext(obs.TraceContext)
}

// carrierOf probes the backend under any instrumentation decorators for
// the trace-carrier capability.
func carrierOf(m posterior.Model) traceCarrier {
	if m == nil {
		return nil
	}
	if c, ok := posterior.Base(m).(traceCarrier); ok {
		return c
	}
	return nil
}

// StageTiming is the wall-time breakdown of one session stage by phase.
type StageTiming struct {
	Stage    int           `json:"stage"`
	Select   time.Duration `json:"select_ns"`
	Test     time.Duration `json:"test_ns"`
	Update   time.Duration `json:"update_ns"`
	Classify time.Duration `json:"classify_ns"`
}

// stagePhases holds the per-phase latency histograms. The fields are
// detached (but functional) histograms when no registry was configured,
// so the stage loop times unconditionally.
type stagePhases struct {
	sel, test, update, classify *obs.Histogram
	stages, tests               *obs.Counter
}

func newStagePhases(reg *obs.Registry) stagePhases {
	hist := func(phase string) *obs.Histogram {
		return reg.Histogram("sbgt_session_stage_seconds", nil, obs.L("phase", phase))
	}
	return stagePhases{
		sel:      hist("select"),
		test:     hist("test"),
		update:   hist("update"),
		classify: hist("classify"),
		stages:   reg.Counter("sbgt_session_stages_total"),
		tests:    reg.Counter("sbgt_session_tests_total"),
	}
}

// pending is an outstanding ProposePools proposal: the stage span stays
// open across the lab round-trip and the selected pools wait for their
// results.
type pending struct {
	span   *obs.Span
	timing StageTiming
	local  []bitvec.Mask // model-position masks, proposal order
	global []bitvec.Mask // the same pools in global subject indices
}

// proposals renders the pending pools in the public Pool form.
func (p *pending) proposals() []Pool {
	out := make([]Pool, len(p.global))
	for i, g := range p.global {
		out[i] = Pool{Stage: p.timing.Stage, Index: i, Pool: g}
	}
	return out
}

// Session is one cohort's classification campaign, driven either
// synchronously (Step/Run call the test function inline) or as a
// resumable state machine (ProposePools hands pools out, AbsorbResults
// folds the lab's answers back in — the shape a long-lived service with
// out-of-band lab round-trips needs).
//
// A Session is not safe for general concurrent use — drive each campaign
// from one goroutine at a time; the parallelism lives inside the
// posterior kernels. The exception is Close: it may be called from
// another goroutine (an eviction or drain path) concurrently with a
// failed Step/AbsorbResults and with other Close calls, and is
// idempotent.
type Session struct {
	mu      sync.Mutex // guards every field below; held across model kernels
	cfg     Config
	model   posterior.Model // nil once every subject is classified (or Close'd)
	active  []int           // model position -> global subject index
	marg    []float64       // cached marginals for the active subjects
	calls   []Classification
	stage   int
	tests   int
	entropy []float64 // posterior entropy after each stage (bits)
	log     []TestRecord
	pend    *pending // outstanding proposal awaiting results, if any
	phases  stagePhases
	root    *obs.Span    // session-lifetime span; stage spans are its children
	carrier traceCarrier // non-nil when the backend accepts trace contexts
	timings []StageTiming
}

// NewSession builds the prior over the whole cohort on the dense
// in-process backend — the historical constructor, unchanged for
// existing callers. Use NewSessionOn to run a campaign on any backend.
func NewSession(pool *engine.Pool, cfg Config) (*Session, error) {
	full, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	model, err := posterior.NewDense(pool, lattice.Config{Risks: full.Risks, Response: full.Response, Parts: full.Parts})
	if err != nil {
		return nil, err
	}
	return NewSessionOn(model, cfg)
}

// NewSessionOn builds a session that drives the given posterior model —
// dense, sparse, or cluster. The session takes ownership of the model:
// it is Closed when the campaign completes (or when the session is
// Close'd early). cfg.Risks and cfg.Response default to the model's own
// when nil; when set, they must agree with the model.
func NewSessionOn(model posterior.Model, cfg Config) (*Session, error) {
	if model == nil {
		return nil, fmt.Errorf("core: nil posterior model")
	}
	if cfg.Risks == nil {
		cfg.Risks = model.Risks()
	} else if len(cfg.Risks) != model.N() {
		return nil, fmt.Errorf("core: config lists %d risks, model holds %d subjects", len(cfg.Risks), model.N())
	}
	if cfg.Response == nil {
		cfg.Response = model.Response()
	}
	full, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	if full.Lookahead > 1 {
		if _, ok := posterior.Base(model).(denseBacked); !ok {
			return nil, fmt.Errorf("core: lookahead requires the dense backend, have %s", model.Kind())
		}
	}
	model = posterior.Instrument(model, full.Obs)
	n := len(full.Risks)
	s := &Session{
		cfg:     full,
		model:   model,
		active:  make([]int, n),
		calls:   make([]Classification, n),
		phases:  newStagePhases(full.Obs),
		root:    full.Tracer.Start("session", obs.A("subjects", n)),
		carrier: carrierOf(model),
	}
	// Install the session context before the prior marginals/entropy below,
	// so even pre-stage RPCs land in the trace.
	s.setCarrierContext(s.root.Context())
	for i := range s.active {
		s.active[i] = i
		s.calls[i] = Classification{Subject: i, Status: StatusUnknown, Marginal: full.Risks[i]}
	}
	sum, err := model.Summary()
	if err != nil {
		return nil, fmt.Errorf("core: prior summary: %w", err)
	}
	s.marg = sum.Marginals
	s.entropy = append(s.entropy, sum.EntropyBits)
	return s, nil
}

// Done reports whether every subject is classified.
func (s *Session) Done() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.model == nil
}

// Stage returns the number of started stages (a stage counts as soon as
// its pools are proposed).
func (s *Session) Stage() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stage
}

// Tests returns the number of physical tests absorbed so far.
func (s *Session) Tests() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tests
}

// Model exposes the live posterior (nil once the session is done).
// Callers must not mutate it behind the session's back.
func (s *Session) Model() posterior.Model {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.model
}

// Remaining returns the number of unclassified subjects.
func (s *Session) Remaining() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.remainingLocked()
}

func (s *Session) remainingLocked() int {
	if s.model == nil {
		return 0
	}
	return s.model.N()
}

// Close releases the posterior of a session that is being abandoned
// mid-campaign (the backend may hold connections or local executors).
// The session reads as Done afterwards. Idempotent, and safe to call
// concurrently with another Close or after a failed Step/AbsorbResults —
// the eviction and drain paths of a session manager Close from their own
// goroutines.
func (s *Session) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closeLocked()
}

func (s *Session) closeLocked() error {
	if s.pend != nil {
		s.pend.span.End() // an abandoned proposal's stage span ends with the session
		s.pend = nil
	}
	s.root.End() // idempotent; records the session span on first close
	if s.model == nil {
		return nil
	}
	err := s.model.Close()
	s.model = nil
	return err
}

// setCarrierContext points the backend's RPC spans at a new parent, when
// the backend carries trace contexts at all.
func (s *Session) setCarrierContext(tc obs.TraceContext) {
	if s.carrier != nil {
		s.carrier.SetTraceContext(tc)
	}
}

// Classifications returns the per-subject calls made so far (global order).
// Unclassified subjects have StatusUnknown and their marginal as of the
// last completed stage.
func (s *Session) Classifications() []Classification {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.classificationsLocked()
}

func (s *Session) classificationsLocked() []Classification {
	out := make([]Classification, len(s.calls))
	copy(out, s.calls)
	if s.model != nil {
		for pos, g := range s.active {
			out[g].Marginal = s.marg[pos]
		}
	}
	return out
}

// globalMask maps a model-position mask to global subject indices.
func (s *Session) globalMask(m bitvec.Mask) bitvec.Mask {
	var out bitvec.Mask
	for _, pos := range m.Indices() {
		out = out.With(s.active[pos])
	}
	return out
}

// ProposePools starts the next stage: it runs the selection strategy and
// returns the pools the caller must run through the physical assay,
// leaving the session waiting for AbsorbResults. While a proposal is
// outstanding, ProposePools is idempotent — it returns the same pools
// again without re-selecting, so a client that lost the response can
// simply re-ask. It returns (nil, nil) once the session is done.
func (s *Session) ProposePools() ([]Pool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.proposeLocked()
}

func (s *Session) proposeLocked() ([]Pool, error) {
	if s.model == nil {
		return nil, nil
	}
	if s.pend != nil {
		return s.pend.proposals(), nil
	}
	span := s.root.Child("stage", obs.A("stage", s.stage+1))
	timing := StageTiming{Stage: s.stage + 1}
	// A failed selection mirrors the historical Step error path: the stage
	// span ends, the carrier falls back to the session root, and the
	// timing row is recorded with the phases measured so far.
	fail := func(err error) ([]Pool, error) {
		s.timings = append(s.timings, timing)
		s.phases.stages.Inc()
		s.setCarrierContext(s.root.Context())
		span.End()
		return nil, err
	}

	sel := span.Child("select")
	s.setCarrierContext(sel.Context())
	var pools []bitvec.Mask
	if s.cfg.Lookahead > 1 {
		h := s.cfg.Strategy.(halving.Halving)
		dense := posterior.Base(s.model).(denseBacked) // checked at construction
		sels := halving.SelectLookahead(dense.Lattice(), s.cfg.Lookahead, h.Opts)
		for _, se := range sels {
			pools = append(pools, se.Pool)
		}
	} else {
		p, err := s.cfg.Strategy.Next(s.model)
		if err != nil {
			sel.End()
			return fail(fmt.Errorf("core: strategy %s: %w", s.cfg.Strategy.Name(), err))
		}
		pools = []bitvec.Mask{p}
	}
	timing.Select = sel.End()
	s.phases.sel.Observe(timing.Select.Seconds())

	s.stage++
	timing.Stage = s.stage
	pend := &pending{span: span, timing: timing}
	for _, p := range pools {
		if p == 0 {
			return fail(fmt.Errorf("core: strategy %s selected an empty pool", s.cfg.Strategy.Name()))
		}
		pend.local = append(pend.local, p)
		pend.global = append(pend.global, s.globalMask(p))
	}
	s.pend = pend
	s.cfg.Flight.Event(obs.Event{
		Kind:    "stage_propose",
		TraceID: s.root.Context().TraceID,
		Dur:     timing.Select,
		Attrs:   []obs.Attr{obs.A("stage", s.stage), obs.A("pools", len(pend.local))},
	})
	return pend.proposals(), nil
}

// AbsorbResults folds the outcomes of the currently proposed pools into
// the posterior and classifies every subject whose marginal crossed a
// threshold, completing the stage ProposePools opened. Results may arrive
// in any order but must cover the proposal exactly: every (Stage, Index)
// once, no extras. A malformed batch is rejected without touching the
// posterior — the proposal stays outstanding, so the caller can resubmit.
// With no outstanding proposal it returns ErrNoProposal (a duplicate
// submission can never be absorbed twice); on a done session it returns
// nil, mirroring Step.
func (s *Session) AbsorbResults(results []TestResult) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.absorbLocked(results)
}

func (s *Session) absorbLocked(results []TestResult) error {
	if s.model == nil {
		return nil
	}
	if s.pend == nil {
		return ErrNoProposal
	}
	p := s.pend
	// Validate the batch against the proposal before mutating anything.
	if len(results) != len(p.local) {
		return fmt.Errorf("core: stage %d proposed %d pools, got %d results", s.stage, len(p.local), len(results))
	}
	ordered := make([]*TestResult, len(p.local))
	for i := range results {
		r := &results[i]
		if r.Stage != s.stage {
			return fmt.Errorf("core: result for stage %d, outstanding proposal is stage %d", r.Stage, s.stage)
		}
		if r.Index < 0 || r.Index >= len(ordered) {
			return fmt.Errorf("core: result index %d outside proposal of %d pools", r.Index, len(ordered))
		}
		if ordered[r.Index] != nil {
			return fmt.Errorf("core: duplicate result for stage %d pool %d", r.Stage, r.Index)
		}
		ordered[r.Index] = r
	}

	// The batch is valid: the proposal is consumed exactly once, and from
	// here the stage completes (or fails) the same way Step always has.
	s.pend = nil
	span := p.span
	timing := &p.timing
	defer span.End()
	// Each phase re-points the backend's RPC spans at its own child span;
	// after the stage they fall back to the session root, covering any
	// between-stage backend calls.
	defer s.setCarrierContext(s.root.Context())
	defer func() {
		s.timings = append(s.timings, *timing)
		s.phases.stages.Inc()
	}()

	for i, lp := range p.local {
		r := ordered[i]
		timing.Test += r.Elapsed
		s.tests++
		s.phases.tests.Inc()
		s.log = append(s.log, TestRecord{Stage: s.stage, Pool: p.global[i], Outcome: r.Outcome})
		us := span.Child("update")
		s.setCarrierContext(us.Context())
		err := s.model.Update(lp, r.Outcome)
		timing.Update += us.End()
		if err != nil {
			s.cfg.Flight.Event(obs.Event{
				Kind:    "absorb_error",
				TraceID: s.root.Context().TraceID,
				Err:     err.Error(),
				Attrs:   []obs.Attr{obs.A("stage", s.stage), obs.A("pool", i)},
			})
			return fmt.Errorf("core: stage %d: %w", s.stage, err)
		}
	}
	s.phases.test.Observe(timing.Test.Seconds())
	s.phases.update.Observe(timing.Update.Seconds())

	cs := span.Child("classify")
	s.setCarrierContext(cs.Context())
	ent, err := s.classify()
	if err == nil && s.model != nil {
		s.entropy = append(s.entropy, ent)
	}
	timing.Classify = cs.End()
	s.phases.classify.Observe(timing.Classify.Seconds())
	if err != nil {
		s.cfg.Flight.Event(obs.Event{
			Kind:    "absorb_error",
			TraceID: s.root.Context().TraceID,
			Err:     err.Error(),
			Attrs:   []obs.Attr{obs.A("stage", s.stage), obs.A("phase", "classify")},
		})
		return fmt.Errorf("core: stage %d: %w", s.stage, err)
	}
	s.cfg.Flight.Event(obs.Event{
		Kind:    "stage_absorb",
		TraceID: s.root.Context().TraceID,
		Dur:     timing.Update + timing.Classify,
		Attrs:   []obs.Attr{obs.A("stage", s.stage), obs.A("remaining", s.remainingLocked())},
	})
	return nil
}

// Outstanding returns the currently proposed pools awaiting results, or
// nil when the session is idle (between stages) or done. Unlike
// ProposePools it never starts a new stage.
func (s *Session) Outstanding() []Pool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.pend == nil {
		return nil
	}
	return s.pend.proposals()
}

// stageTestSpan opens a "test" child span under the outstanding stage
// span (Step's inline measurement of the test function). It degrades to a
// root child when no proposal is outstanding — e.g. the session was
// closed concurrently.
func (s *Session) stageTestSpan() *obs.Span {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.pend != nil {
		return s.pend.span.Child("test")
	}
	return s.root.Child("test")
}

// Step runs one stage synchronously: select pools, run them through
// test, absorb the outcomes, and classify every subject whose marginal
// crossed a threshold. It is ProposePools + AbsorbResults with the lab
// round-trip inlined, and a no-op when the session is done.
func (s *Session) Step(test TestFunc) error {
	if s.Done() {
		return nil
	}
	if test == nil {
		return fmt.Errorf("core: nil test function")
	}
	pools, err := s.ProposePools()
	if err != nil || pools == nil {
		return err
	}
	results := make([]TestResult, 0, len(pools))
	for _, p := range pools {
		ts := s.stageTestSpan()
		y := test(p.Pool)
		results = append(results, TestResult{Stage: p.Stage, Index: p.Index, Outcome: y, Elapsed: ts.End()})
	}
	return s.AbsorbResults(results)
}

// StageTimings returns the per-stage phase breakdown recorded so far.
func (s *Session) StageTimings() []StageTiming {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]StageTiming(nil), s.timings...)
}

// classify repeatedly conditions out the most certain subject until no
// marginal crosses a threshold, and returns the entropy (bits) of the
// final posterior — valid only while the model survives. Marginals are
// recomputed after each collapse because conditioning shifts the
// survivors' posteriors; each iteration reads the fused Summary, so the
// terminal no-crossing pass yields the stage's entropy for free instead
// of a separate full sweep.
func (s *Session) classify() (float64, error) {
	var ent float64
	for s.model != nil {
		sum, err := s.model.Summary()
		if err != nil {
			return 0, err
		}
		marg := sum.Marginals
		ent = sum.EntropyBits
		s.marg = marg
		// Most extreme crossing first: the strongest call distorts the
		// remaining posterior least when conditioned on.
		bestPos, bestExtremity := -1, 0.0
		positive := false
		for pos, g := range marg {
			var ext float64
			var isPos bool
			switch {
			case g >= s.cfg.PosThreshold:
				ext, isPos = g-s.cfg.PosThreshold, true
			case g <= s.cfg.NegThreshold:
				ext, isPos = s.cfg.NegThreshold-g, false
			default:
				continue
			}
			if bestPos == -1 || ext > bestExtremity {
				bestPos, bestExtremity, positive = pos, ext, isPos
			}
		}
		if bestPos == -1 {
			return ent, nil
		}
		if err := s.record(bestPos, positive, marg[bestPos], false); err != nil {
			return 0, err
		}
	}
	return ent, nil
}

// record classifies the subject at model position pos and collapses it
// out of the posterior. When it is the last subject, the model is closed
// and the session completes.
func (s *Session) record(pos int, positive bool, marginal float64, forced bool) error {
	g := s.active[pos]
	status := StatusNegative
	if positive {
		status = StatusPositive
	}
	s.calls[g] = Classification{Subject: g, Status: status, Marginal: marginal, Stage: s.stage, Forced: forced}
	if s.model.N() == 1 {
		return s.closeLocked()
	}
	reduced, err := s.model.Condition(pos, positive)
	if err != nil {
		return err
	}
	if reduced == nil {
		// Conditioning on a zero-mass event cannot happen for a threshold
		// crossing (the marginal bounds the event mass away from zero), but
		// a forced call at marginal exactly 0 or 1 can hit it; fall back to
		// the complementary event, keeping the recorded call.
		reduced, err = s.model.Condition(pos, !positive)
		if err != nil {
			return err
		}
		if reduced == nil {
			return s.closeLocked()
		}
	}
	s.model = reduced
	// Condition re-wraps the backend, so re-resolve the trace-carrier
	// capability on the new wrapper (the context itself transfers with the
	// driver's connections).
	s.carrier = carrierOf(reduced)
	s.active = append(s.active[:pos], s.active[pos+1:]...)
	return nil
}

// Result summarizes a completed run.
type Result struct {
	Classifications []Classification // per subject, global order
	Tests           int              // physical tests consumed
	Stages          int              // sequential stages consumed
	Converged       bool             // false when MaxStages forced the tail calls
	EntropyTrace    []float64        // posterior entropy (bits) after each stage; [0] is the prior
	Log             []TestRecord     // every test in execution order
	StageTimings    []StageTiming    // wall-time phase breakdown per stage
}

// TestsPerSubject returns Tests divided by the cohort size.
func (r *Result) TestsPerSubject() float64 {
	if len(r.Classifications) == 0 {
		return 0
	}
	return float64(r.Tests) / float64(len(r.Classifications))
}

// Positives returns the set of subjects classified positive.
func (r *Result) Positives() bitvec.Mask {
	var m bitvec.Mask
	for _, c := range r.Classifications {
		if c.Status == StatusPositive {
			m = m.With(c.Subject)
		}
	}
	return m
}

// Run drives Step until every subject is classified or MaxStages is
// reached, then force-classifies any leftovers at the posterior mode
// (marginal ≥ ½ ⇒ positive).
func (s *Session) Run(test TestFunc) (*Result, error) {
	converged := true
	for !s.Done() {
		if s.Stage() >= s.cfg.MaxStages {
			converged = false
			if err := s.forceRemaining(); err != nil {
				return nil, err
			}
			break
		}
		if err := s.Step(test); err != nil {
			return nil, err
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.resultLocked(converged), nil
}

// Result assembles the campaign summary from the session's current state
// — the propose/absorb counterpart of Run's return value. On a completed
// session it matches what Run would have returned: a campaign converged
// exactly when no call was forced.
func (s *Session) Result() *Result {
	s.mu.Lock()
	defer s.mu.Unlock()
	converged := true
	for _, c := range s.calls {
		if c.Forced {
			converged = false
			break
		}
	}
	return s.resultLocked(converged)
}

func (s *Session) resultLocked(converged bool) *Result {
	return &Result{
		Classifications: s.classificationsLocked(),
		Tests:           s.tests,
		Stages:          s.stage,
		Converged:       converged,
		EntropyTrace:    append([]float64(nil), s.entropy...),
		Log:             append([]TestRecord(nil), s.log...),
		StageTimings:    append([]StageTiming(nil), s.timings...),
	}
}

// forceRemaining classifies every still-unknown subject at the posterior
// mode. Calls are marked Forced so analyses can separate them.
func (s *Session) forceRemaining() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for s.model != nil {
		marg, err := s.model.Marginals()
		if err != nil {
			return err
		}
		s.marg = marg
		// Most certain first, mirroring classify.
		best, bestDist := 0, -1.0
		for pos := range marg {
			if d := math.Abs(marg[pos] - 0.5); d > bestDist {
				best, bestDist = pos, d
			}
		}
		if err := s.record(best, marg[best] >= 0.5, marg[best], true); err != nil {
			return err
		}
	}
	return nil
}
