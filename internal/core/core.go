// Package core orchestrates the SBGT surveillance loop: build the
// posterior prior, select pools (Bayesian halving or a comparison
// strategy), run the physical tests, fold outcomes into the posterior,
// classify subjects whose marginals cross the decision thresholds, and
// collapse classified subjects out of the model so the state space
// shrinks as certainty accumulates.
//
// A Session owns one cohort's classification campaign and is generic
// over the posterior representation (posterior.Model): the same loop
// runs on the dense in-process lattice, the truncated sparse support,
// and the distributed cluster driver. Subjects are identified by their
// *global* index in the original cohort throughout; internally the
// session maintains the mapping onto the shrinking model.
package core

import (
	"fmt"
	"math"
	"time"

	"repro/internal/bitvec"
	"repro/internal/dilution"
	"repro/internal/engine"
	"repro/internal/halving"
	"repro/internal/lattice"
	"repro/internal/obs"
	"repro/internal/posterior"
)

// Status is a subject's classification state.
type Status int8

// Classification states.
const (
	StatusUnknown  Status = iota // still in the lattice
	StatusNegative               // classified not infected
	StatusPositive               // classified infected
)

// String renders the status.
func (s Status) String() string {
	switch s {
	case StatusNegative:
		return "negative"
	case StatusPositive:
		return "positive"
	default:
		return "unknown"
	}
}

// Classification records one subject's final call.
type Classification struct {
	Subject  int // global subject index
	Status   Status
	Marginal float64 // posterior infection probability at decision time
	Stage    int     // stage at which the call was made (1-based; 0 = never)
	Forced   bool    // true when called at termination without crossing a threshold
}

// TestRecord logs one physical pooled test.
type TestRecord struct {
	Stage   int
	Pool    bitvec.Mask // global subject indices
	Outcome dilution.Outcome
}

// TestFunc runs one physical pooled test on the given subjects (global
// indices) and returns the outcome — in production a LIMS call, in the
// experiments a workload.Oracle.
type TestFunc func(pool bitvec.Mask) dilution.Outcome

// Config configures a surveillance session.
type Config struct {
	// Risks holds per-subject prior infection probabilities (length = cohort
	// size, each in (0,1)). Required for NewSession; NewSessionOn fills it
	// from the model when nil.
	Risks []float64
	// Response models the pooled assay. Required for NewSession;
	// NewSessionOn fills it from the model when nil.
	Response dilution.Response
	// Strategy selects pools; nil defaults to the Bayesian Halving
	// Algorithm with MaxPool 32.
	Strategy halving.Strategy
	// Lookahead > 1 selects that many pools per stage with the halving
	// look-ahead rule (fewer lab round-trips, slightly more tests).
	// Requires the strategy to be halving (or nil) and the dense backend.
	Lookahead int
	// PosThreshold classifies a subject positive when its marginal reaches
	// it; 0 defaults to 0.99.
	PosThreshold float64
	// NegThreshold classifies a subject negative when its marginal falls to
	// it; 0 defaults to 0.01.
	NegThreshold float64
	// MaxStages caps the sequential stages before remaining subjects are
	// force-classified at the posterior mode; 0 defaults to 64.
	MaxStages int
	// Parts is the lattice partition count (engine default when 0). Dense
	// backend only.
	Parts int
	// Obs, when non-nil, receives session metrics
	// (sbgt_session_stage_seconds{phase}, stage/test counters) and wraps
	// the posterior with posterior.Instrument so backend ops report too.
	Obs *obs.Registry
	// Tracer, when non-nil, records one span per stage with select / test /
	// update / classify children.
	Tracer *obs.Tracer
}

func (c *Config) withDefaults() (Config, error) {
	out := *c
	if len(out.Risks) == 0 {
		return out, fmt.Errorf("core: empty cohort")
	}
	if out.Response == nil {
		return out, fmt.Errorf("core: nil response model")
	}
	if out.Strategy == nil {
		out.Strategy = halving.Halving{Opts: halving.Options{MaxPool: 32}}
	}
	if out.Lookahead < 1 {
		out.Lookahead = 1
	}
	if out.Lookahead > 1 {
		if _, ok := out.Strategy.(halving.Halving); !ok {
			return out, fmt.Errorf("core: lookahead requires the halving strategy, have %s", out.Strategy.Name())
		}
	}
	if out.PosThreshold == 0 { //lint:allow floats the zero value marks the field unset
		out.PosThreshold = 0.99
	}
	if out.NegThreshold == 0 { //lint:allow floats the zero value marks the field unset
		out.NegThreshold = 0.01
	}
	if !(out.NegThreshold > 0 && out.NegThreshold < out.PosThreshold && out.PosThreshold < 1) {
		return out, fmt.Errorf("core: thresholds neg=%v pos=%v invalid", out.NegThreshold, out.PosThreshold)
	}
	if out.MaxStages == 0 {
		out.MaxStages = 64
	}
	if out.MaxStages < 0 {
		return out, fmt.Errorf("core: MaxStages %d negative", out.MaxStages)
	}
	return out, nil
}

// denseBacked is the capability the look-ahead selector needs: direct
// access to a dense lattice. Only posterior.Dense provides it.
type denseBacked interface {
	Lattice() *lattice.Model
}

// traceCarrier is the optional backend capability for distributed
// tracing: a model that can accept a propagated trace context (the
// cluster driver) emits its RPC spans under the session's live phase
// span, so one assembled trace spans session, driver, and executors.
type traceCarrier interface {
	SetTraceContext(obs.TraceContext)
}

// carrierOf probes the backend under any instrumentation decorators for
// the trace-carrier capability.
func carrierOf(m posterior.Model) traceCarrier {
	if m == nil {
		return nil
	}
	if c, ok := posterior.Base(m).(traceCarrier); ok {
		return c
	}
	return nil
}

// StageTiming is the wall-time breakdown of one session stage by phase.
type StageTiming struct {
	Stage    int           `json:"stage"`
	Select   time.Duration `json:"select_ns"`
	Test     time.Duration `json:"test_ns"`
	Update   time.Duration `json:"update_ns"`
	Classify time.Duration `json:"classify_ns"`
}

// stagePhases holds the per-phase latency histograms. The fields are
// detached (but functional) histograms when no registry was configured,
// so the stage loop times unconditionally.
type stagePhases struct {
	sel, test, update, classify *obs.Histogram
	stages, tests               *obs.Counter
}

func newStagePhases(reg *obs.Registry) stagePhases {
	hist := func(phase string) *obs.Histogram {
		return reg.Histogram("sbgt_session_stage_seconds", nil, obs.L("phase", phase))
	}
	return stagePhases{
		sel:      hist("select"),
		test:     hist("test"),
		update:   hist("update"),
		classify: hist("classify"),
		stages:   reg.Counter("sbgt_session_stages_total"),
		tests:    reg.Counter("sbgt_session_tests_total"),
	}
}

// Session is one cohort's classification campaign. Not safe for concurrent
// use; the parallelism lives inside the posterior kernels.
type Session struct {
	cfg     Config
	model   posterior.Model // nil once every subject is classified (or Close'd)
	active  []int           // model position -> global subject index
	marg    []float64       // cached marginals for the active subjects
	calls   []Classification
	stage   int
	tests   int
	entropy []float64 // posterior entropy after each stage (bits)
	log     []TestRecord
	phases  stagePhases
	root    *obs.Span    // session-lifetime span; stage spans are its children
	carrier traceCarrier // non-nil when the backend accepts trace contexts
	timings []StageTiming
}

// NewSession builds the prior over the whole cohort on the dense
// in-process backend — the historical constructor, unchanged for
// existing callers. Use NewSessionOn to run a campaign on any backend.
func NewSession(pool *engine.Pool, cfg Config) (*Session, error) {
	full, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	model, err := posterior.NewDense(pool, lattice.Config{Risks: full.Risks, Response: full.Response, Parts: full.Parts})
	if err != nil {
		return nil, err
	}
	return NewSessionOn(model, cfg)
}

// NewSessionOn builds a session that drives the given posterior model —
// dense, sparse, or cluster. The session takes ownership of the model:
// it is Closed when the campaign completes (or when the session is
// Close'd early). cfg.Risks and cfg.Response default to the model's own
// when nil; when set, they must agree with the model.
func NewSessionOn(model posterior.Model, cfg Config) (*Session, error) {
	if model == nil {
		return nil, fmt.Errorf("core: nil posterior model")
	}
	if cfg.Risks == nil {
		cfg.Risks = model.Risks()
	} else if len(cfg.Risks) != model.N() {
		return nil, fmt.Errorf("core: config lists %d risks, model holds %d subjects", len(cfg.Risks), model.N())
	}
	if cfg.Response == nil {
		cfg.Response = model.Response()
	}
	full, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	if full.Lookahead > 1 {
		if _, ok := posterior.Base(model).(denseBacked); !ok {
			return nil, fmt.Errorf("core: lookahead requires the dense backend, have %s", model.Kind())
		}
	}
	model = posterior.Instrument(model, full.Obs)
	n := len(full.Risks)
	s := &Session{
		cfg:     full,
		model:   model,
		active:  make([]int, n),
		calls:   make([]Classification, n),
		phases:  newStagePhases(full.Obs),
		root:    full.Tracer.Start("session", obs.A("subjects", n)),
		carrier: carrierOf(model),
	}
	// Install the session context before the prior marginals/entropy below,
	// so even pre-stage RPCs land in the trace.
	s.setCarrierContext(s.root.Context())
	for i := range s.active {
		s.active[i] = i
		s.calls[i] = Classification{Subject: i, Status: StatusUnknown, Marginal: full.Risks[i]}
	}
	sum, err := model.Summary()
	if err != nil {
		return nil, fmt.Errorf("core: prior summary: %w", err)
	}
	s.marg = sum.Marginals
	s.entropy = append(s.entropy, sum.EntropyBits)
	return s, nil
}

// Done reports whether every subject is classified.
func (s *Session) Done() bool { return s.model == nil }

// Stage returns the number of completed stages.
func (s *Session) Stage() int { return s.stage }

// Tests returns the number of physical tests run so far.
func (s *Session) Tests() int { return s.tests }

// Model exposes the live posterior (nil once the session is done).
// Callers must not mutate it behind the session's back.
func (s *Session) Model() posterior.Model { return s.model }

// Remaining returns the number of unclassified subjects.
func (s *Session) Remaining() int {
	if s.model == nil {
		return 0
	}
	return s.model.N()
}

// Close releases the posterior of a session that is being abandoned
// mid-campaign (the backend may hold connections or local executors).
// The session reads as Done afterwards. Idempotent; completed sessions
// are already closed.
func (s *Session) Close() error {
	s.root.End() // idempotent; records the session span on first close
	if s.model == nil {
		return nil
	}
	err := s.model.Close()
	s.model = nil
	return err
}

// setCarrierContext points the backend's RPC spans at a new parent, when
// the backend carries trace contexts at all.
func (s *Session) setCarrierContext(tc obs.TraceContext) {
	if s.carrier != nil {
		s.carrier.SetTraceContext(tc)
	}
}

// Classifications returns the per-subject calls made so far (global order).
// Unclassified subjects have StatusUnknown and their marginal as of the
// last completed stage.
func (s *Session) Classifications() []Classification {
	out := make([]Classification, len(s.calls))
	copy(out, s.calls)
	if s.model != nil {
		for pos, g := range s.active {
			out[g].Marginal = s.marg[pos]
		}
	}
	return out
}

// globalMask maps a model-position mask to global subject indices.
func (s *Session) globalMask(m bitvec.Mask) bitvec.Mask {
	var out bitvec.Mask
	for _, pos := range m.Indices() {
		out = out.With(s.active[pos])
	}
	return out
}

// Step runs one stage: select pools, run them through test, absorb the
// outcomes, and classify every subject whose marginal crossed a threshold.
// It is a no-op when the session is done.
func (s *Session) Step(test TestFunc) error {
	if s.Done() {
		return nil
	}
	if test == nil {
		return fmt.Errorf("core: nil test function")
	}
	span := s.root.Child("stage", obs.A("stage", s.stage+1))
	defer span.End()
	// Each phase re-points the backend's RPC spans at its own child span;
	// after the stage they fall back to the session root, covering any
	// between-stage backend calls.
	defer s.setCarrierContext(s.root.Context())
	timing := StageTiming{Stage: s.stage + 1}
	defer func() {
		s.timings = append(s.timings, timing)
		s.phases.stages.Inc()
	}()

	sel := span.Child("select")
	s.setCarrierContext(sel.Context())
	var pools []bitvec.Mask
	if s.cfg.Lookahead > 1 {
		h := s.cfg.Strategy.(halving.Halving)
		dense := posterior.Base(s.model).(denseBacked) // checked at construction
		sels := halving.SelectLookahead(dense.Lattice(), s.cfg.Lookahead, h.Opts)
		for _, se := range sels {
			pools = append(pools, se.Pool)
		}
	} else {
		p, err := s.cfg.Strategy.Next(s.model)
		if err != nil {
			sel.End()
			return fmt.Errorf("core: strategy %s: %w", s.cfg.Strategy.Name(), err)
		}
		pools = []bitvec.Mask{p}
	}
	timing.Select = sel.End()
	s.phases.sel.Observe(timing.Select.Seconds())

	s.stage++
	timing.Stage = s.stage
	for _, p := range pools {
		if p == 0 {
			return fmt.Errorf("core: strategy %s selected an empty pool", s.cfg.Strategy.Name())
		}
		gp := s.globalMask(p)
		ts := span.Child("test")
		y := test(gp)
		timing.Test += ts.End()
		s.tests++
		s.phases.tests.Inc()
		s.log = append(s.log, TestRecord{Stage: s.stage, Pool: gp, Outcome: y})
		us := span.Child("update")
		s.setCarrierContext(us.Context())
		err := s.model.Update(p, y)
		timing.Update += us.End()
		if err != nil {
			return fmt.Errorf("core: stage %d: %w", s.stage, err)
		}
	}
	s.phases.test.Observe(timing.Test.Seconds())
	s.phases.update.Observe(timing.Update.Seconds())

	cs := span.Child("classify")
	s.setCarrierContext(cs.Context())
	ent, err := s.classify()
	if err == nil && s.model != nil {
		s.entropy = append(s.entropy, ent)
	}
	timing.Classify = cs.End()
	s.phases.classify.Observe(timing.Classify.Seconds())
	if err != nil {
		return fmt.Errorf("core: stage %d: %w", s.stage, err)
	}
	return nil
}

// StageTimings returns the per-stage phase breakdown recorded so far.
func (s *Session) StageTimings() []StageTiming {
	return append([]StageTiming(nil), s.timings...)
}

// classify repeatedly conditions out the most certain subject until no
// marginal crosses a threshold, and returns the entropy (bits) of the
// final posterior — valid only while the model survives. Marginals are
// recomputed after each collapse because conditioning shifts the
// survivors' posteriors; each iteration reads the fused Summary, so the
// terminal no-crossing pass yields the stage's entropy for free instead
// of a separate full sweep.
func (s *Session) classify() (float64, error) {
	var ent float64
	for s.model != nil {
		sum, err := s.model.Summary()
		if err != nil {
			return 0, err
		}
		marg := sum.Marginals
		ent = sum.EntropyBits
		s.marg = marg
		// Most extreme crossing first: the strongest call distorts the
		// remaining posterior least when conditioned on.
		bestPos, bestExtremity := -1, 0.0
		positive := false
		for pos, g := range marg {
			var ext float64
			var isPos bool
			switch {
			case g >= s.cfg.PosThreshold:
				ext, isPos = g-s.cfg.PosThreshold, true
			case g <= s.cfg.NegThreshold:
				ext, isPos = s.cfg.NegThreshold-g, false
			default:
				continue
			}
			if bestPos == -1 || ext > bestExtremity {
				bestPos, bestExtremity, positive = pos, ext, isPos
			}
		}
		if bestPos == -1 {
			return ent, nil
		}
		if err := s.record(bestPos, positive, marg[bestPos], false); err != nil {
			return 0, err
		}
	}
	return ent, nil
}

// record classifies the subject at model position pos and collapses it
// out of the posterior. When it is the last subject, the model is closed
// and the session completes.
func (s *Session) record(pos int, positive bool, marginal float64, forced bool) error {
	g := s.active[pos]
	status := StatusNegative
	if positive {
		status = StatusPositive
	}
	s.calls[g] = Classification{Subject: g, Status: status, Marginal: marginal, Stage: s.stage, Forced: forced}
	if s.model.N() == 1 {
		return s.Close()
	}
	reduced, err := s.model.Condition(pos, positive)
	if err != nil {
		return err
	}
	if reduced == nil {
		// Conditioning on a zero-mass event cannot happen for a threshold
		// crossing (the marginal bounds the event mass away from zero), but
		// a forced call at marginal exactly 0 or 1 can hit it; fall back to
		// the complementary event, keeping the recorded call.
		reduced, err = s.model.Condition(pos, !positive)
		if err != nil {
			return err
		}
		if reduced == nil {
			return s.Close()
		}
	}
	s.model = reduced
	// Condition re-wraps the backend, so re-resolve the trace-carrier
	// capability on the new wrapper (the context itself transfers with the
	// driver's connections).
	s.carrier = carrierOf(reduced)
	s.active = append(s.active[:pos], s.active[pos+1:]...)
	return nil
}

// Result summarizes a completed run.
type Result struct {
	Classifications []Classification // per subject, global order
	Tests           int              // physical tests consumed
	Stages          int              // sequential stages consumed
	Converged       bool             // false when MaxStages forced the tail calls
	EntropyTrace    []float64        // posterior entropy (bits) after each stage; [0] is the prior
	Log             []TestRecord     // every test in execution order
	StageTimings    []StageTiming    // wall-time phase breakdown per stage
}

// TestsPerSubject returns Tests divided by the cohort size.
func (r *Result) TestsPerSubject() float64 {
	if len(r.Classifications) == 0 {
		return 0
	}
	return float64(r.Tests) / float64(len(r.Classifications))
}

// Positives returns the set of subjects classified positive.
func (r *Result) Positives() bitvec.Mask {
	var m bitvec.Mask
	for _, c := range r.Classifications {
		if c.Status == StatusPositive {
			m = m.With(c.Subject)
		}
	}
	return m
}

// Run drives Step until every subject is classified or MaxStages is
// reached, then force-classifies any leftovers at the posterior mode
// (marginal ≥ ½ ⇒ positive).
func (s *Session) Run(test TestFunc) (*Result, error) {
	converged := true
	for !s.Done() {
		if s.stage >= s.cfg.MaxStages {
			converged = false
			if err := s.forceRemaining(); err != nil {
				return nil, err
			}
			break
		}
		if err := s.Step(test); err != nil {
			return nil, err
		}
	}
	return &Result{
		Classifications: s.Classifications(),
		Tests:           s.tests,
		Stages:          s.stage,
		Converged:       converged,
		EntropyTrace:    append([]float64(nil), s.entropy...),
		Log:             append([]TestRecord(nil), s.log...),
		StageTimings:    s.StageTimings(),
	}, nil
}

// forceRemaining classifies every still-unknown subject at the posterior
// mode. Calls are marked Forced so analyses can separate them.
func (s *Session) forceRemaining() error {
	for s.model != nil {
		marg, err := s.model.Marginals()
		if err != nil {
			return err
		}
		s.marg = marg
		// Most certain first, mirroring classify.
		best, bestDist := 0, -1.0
		for pos := range marg {
			if d := math.Abs(marg[pos] - 0.5); d > bestDist {
				best, bestDist = pos, d
			}
		}
		if err := s.record(best, marg[best] >= 0.5, marg[best], true); err != nil {
			return err
		}
	}
	return nil
}
