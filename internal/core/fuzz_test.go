package core

import (
	"bytes"
	"testing"

	"repro/internal/dilution"
	"repro/internal/engine"
	"repro/internal/posterior"
	"repro/internal/rng"
	"repro/internal/sparse"
	"repro/internal/workload"
)

// FuzzSessionCheckpointLoad feeds arbitrary byte streams to LoadSession.
// The session manager in internal/serve restores evicted cohorts from
// disk on demand, so a corrupt or truncated checkpoint must come back as
// an error — never a panic, a huge allocation, or a session that lies
// about its state. The corpus seeds every real checkpoint shape: dense
// idle (v2), dense with a pending proposal (v3), sparse-backed, and a
// completed campaign, plus truncations and bit flips of each.
func FuzzSessionCheckpointLoad(f *testing.F) {
	pool := engine.NewPool(1)
	defer pool.Close()

	checkpoint := func(s *Session) []byte {
		var buf bytes.Buffer
		if err := s.SaveSession(&buf); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}

	risks := workload.UniformRisks(8, 0.12)
	resp := dilution.Binary{Sens: 0.95, Spec: 0.99}
	popu := workload.Draw(risks, rng.New(31))
	oracle := workload.NewOracle(popu, resp, rng.New(32))

	// Dense, mid-campaign, no outstanding proposal (version 2).
	dense, err := NewSession(pool, Config{Risks: risks, Response: resp})
	if err != nil {
		f.Fatal(err)
	}
	if err := dense.Step(oracle.Test); err != nil {
		f.Fatal(err)
	}
	idle := checkpoint(dense)
	f.Add(idle)

	// Same session with a proposal outstanding (version 3).
	if _, err := dense.ProposePools(); err != nil {
		f.Fatal(err)
	}
	pending := checkpoint(dense)
	f.Add(pending)
	dense.Close()

	// Sparse-backed session.
	sm, err := sparse.New(sparse.Config{Risks: risks, Response: resp, Eps: 1e-9})
	if err != nil {
		f.Fatal(err)
	}
	sp, err := NewSessionOn(posterior.FromSparse(sm), Config{Risks: risks, Response: resp})
	if err != nil {
		f.Fatal(err)
	}
	if err := sp.Step(oracle.Test); err != nil {
		f.Fatal(err)
	}
	f.Add(checkpoint(sp))
	sp.Close()

	// Completed campaign (no posterior payload).
	fin, err := NewSession(pool, Config{Risks: risks, Response: resp})
	if err != nil {
		f.Fatal(err)
	}
	if _, err := fin.Run(oracle.Test); err != nil {
		f.Fatal(err)
	}
	f.Add(checkpoint(fin))

	// Truncations and corruptions of the structured seeds.
	f.Add(idle[:len(idle)/2])
	f.Add(pending[:len(pending)-3])
	flipped := append([]byte(nil), pending...)
	if len(flipped) > 40 {
		flipped[40] ^= 0x5a
	}
	f.Add(flipped)
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, 96))

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := LoadSession(bytes.NewReader(data), pool, nil)
		if err != nil {
			return // rejection is the expected outcome for junk
		}
		if s == nil {
			t.Fatal("nil session with nil error")
		}
		// An accepted checkpoint must describe a coherent session: every
		// subject classified or active, and a re-save must succeed.
		if len(s.Classifications()) == 0 {
			t.Fatal("accepted checkpoint with no subjects")
		}
		var buf bytes.Buffer
		if err := s.SaveSession(&buf); err != nil {
			t.Fatalf("accepted checkpoint cannot re-save: %v", err)
		}
		s.Close()
	})
}
