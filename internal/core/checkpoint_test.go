package core

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/dilution"
	"repro/internal/halving"
	"repro/internal/rng"
	"repro/internal/workload"
)

func TestSessionCheckpointMidCampaign(t *testing.T) {
	pool := newTestPool(t)
	risks := workload.UniformRisks(10, 0.1)
	resp := dilution.Binary{Sens: 0.95, Spec: 0.99}
	r := rng.New(606)
	popu := workload.Draw(risks, r)
	oracle := workload.NewOracle(popu, resp, r)

	sess, err := NewSession(pool, Config{Risks: risks, Response: resp})
	if err != nil {
		t.Fatal(err)
	}
	// Run a few stages, checkpoint, then finish twice: once on the
	// original and once on the restored session. Outcomes after the
	// checkpoint must match, so both campaigns classify identically.
	for i := 0; i < 3 && !sess.Done(); i++ {
		if err := sess.Step(oracle.Test); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := sess.SaveSession(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	// The oracle stream continues from here; clone its effect by giving
	// both continuations their own identical streams.
	finish := func(s *Session, seed uint64) *Result {
		rr := rng.New(seed)
		o := workload.NewOracle(popu, resp, rr)
		res, err := s.Run(o.Test)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	restored, err := LoadSession(bytes.NewReader(raw), pool, nil)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Stage() != sess.Stage() || restored.Tests() != sess.Tests() {
		t.Fatalf("counters: restored %d/%d vs original %d/%d",
			restored.Stage(), restored.Tests(), sess.Stage(), sess.Tests())
	}
	if restored.Remaining() != sess.Remaining() {
		t.Fatalf("remaining: %d vs %d", restored.Remaining(), sess.Remaining())
	}
	a := finish(sess, 777)
	b := finish(restored, 777)
	if a.Positives() != b.Positives() {
		t.Fatalf("classifications diverged: %v vs %v", a.Positives(), b.Positives())
	}
	if a.Tests != b.Tests || a.Stages != b.Stages {
		t.Fatalf("cost diverged: %d/%d vs %d/%d", a.Tests, a.Stages, b.Tests, b.Stages)
	}
	if len(a.Log) != len(b.Log) {
		t.Fatalf("logs diverged: %d vs %d records", len(a.Log), len(b.Log))
	}
}

func TestSessionCheckpointCompleted(t *testing.T) {
	pool := newTestPool(t)
	risks := workload.UniformRisks(6, 0.1)
	r := rng.New(5)
	popu := workload.Draw(risks, r)
	oracle := workload.NewOracle(popu, dilution.Ideal{}, r)
	sess, err := NewSession(pool, Config{Risks: risks, Response: dilution.Ideal{}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Run(oracle.Test); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := sess.SaveSession(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := LoadSession(&buf, pool, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !restored.Done() {
		t.Fatal("restored completed session not done")
	}
	got := restored.Classifications()
	want := sess.Classifications()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("classification %d: %+v vs %+v", i, got[i], want[i])
		}
	}
	// Stepping a done session is a no-op, not a crash.
	if err := restored.Step(oracle.Test); err != nil {
		t.Fatal(err)
	}
}

func TestLoadSessionRejectsGarbage(t *testing.T) {
	pool := newTestPool(t)
	if _, err := LoadSession(strings.NewReader("not a checkpoint"), pool, nil); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestLoadSessionRejectsTruncatedLattice(t *testing.T) {
	pool := newTestPool(t)
	risks := workload.UniformRisks(8, 0.1)
	sess, err := NewSession(pool, Config{Risks: risks, Response: dilution.Ideal{}})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := sess.SaveSession(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	if _, err := LoadSession(bytes.NewReader(raw[:len(raw)/2]), pool, nil); err == nil {
		t.Fatal("truncated checkpoint accepted")
	}
}

func TestLoadSessionStrategyMismatch(t *testing.T) {
	// A checkpoint recorded with lookahead > 1 must refuse a non-halving
	// strategy at restore, mirroring NewSession validation.
	pool := newTestPool(t)
	risks := workload.UniformRisks(6, 0.1)
	sess, err := NewSession(pool, Config{Risks: risks, Response: dilution.Ideal{}, Lookahead: 2})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := sess.SaveSession(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadSession(&buf, pool, halving.Individual{}); err == nil {
		t.Fatal("lookahead checkpoint accepted a non-halving strategy")
	}
}
