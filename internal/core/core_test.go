package core

import (
	"math"
	"testing"

	"repro/internal/bitvec"
	"repro/internal/dilution"
	"repro/internal/engine"
	"repro/internal/halving"
	"repro/internal/prob"
	"repro/internal/rng"
	"repro/internal/workload"
)

func newTestPool(t *testing.T) *engine.Pool {
	t.Helper()
	p := engine.NewPool(4)
	t.Cleanup(p.Close)
	return p
}

func TestStatusString(t *testing.T) {
	if StatusUnknown.String() != "unknown" || StatusNegative.String() != "negative" || StatusPositive.String() != "positive" {
		t.Error("status names wrong")
	}
	if Status(9).String() != "unknown" {
		t.Error("unknown status should render as unknown")
	}
}

func TestResultEdgeAccessors(t *testing.T) {
	var r Result
	if r.TestsPerSubject() != 0 {
		t.Error("empty result tests/subject")
	}
	if r.Positives() != 0 {
		t.Error("empty result positives")
	}
}

func TestConfigValidation(t *testing.T) {
	pool := newTestPool(t)
	cases := []struct {
		name string
		cfg  Config
	}{
		{"empty cohort", Config{Response: dilution.Ideal{}}},
		{"nil response", Config{Risks: workload.UniformRisks(4, 0.1)}},
		{"bad thresholds", Config{Risks: workload.UniformRisks(4, 0.1), Response: dilution.Ideal{}, PosThreshold: 0.3, NegThreshold: 0.5}},
		{"lookahead without halving", Config{Risks: workload.UniformRisks(4, 0.1), Response: dilution.Ideal{}, Lookahead: 2, Strategy: halving.Individual{}}},
		{"negative MaxStages", Config{Risks: workload.UniformRisks(4, 0.1), Response: dilution.Ideal{}, MaxStages: -1}},
	}
	for _, c := range cases {
		if _, err := NewSession(pool, c.cfg); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestRunIdealClassifiesEveryoneCorrectly(t *testing.T) {
	pool := newTestPool(t)
	r := rng.New(7)
	for trial := 0; trial < 8; trial++ {
		risks := workload.UniformRisks(10, 0.1)
		popu := workload.Draw(risks, r)
		oracle := workload.NewOracle(popu, dilution.Ideal{}, r)
		sess, err := NewSession(pool, Config{Risks: risks, Response: dilution.Ideal{}})
		if err != nil {
			t.Fatal(err)
		}
		res, err := sess.Run(oracle.Test)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Fatalf("trial %d did not converge", trial)
		}
		if got := res.Positives(); got != popu.Truth {
			t.Fatalf("trial %d: classified %v, truth %v", trial, got, popu.Truth)
		}
		if res.Tests != oracle.Tests() {
			t.Fatalf("session counted %d tests, oracle ran %d", res.Tests, oracle.Tests())
		}
		for _, c := range res.Classifications {
			if c.Status == StatusUnknown {
				t.Fatalf("subject %d left unknown", c.Subject)
			}
			if c.Forced {
				t.Fatalf("subject %d force-classified on a converged run", c.Subject)
			}
		}
	}
}

func TestRunSavesTestsVsIndividual(t *testing.T) {
	// At low prevalence, halving-driven group testing must use
	// substantially fewer tests than one-test-per-subject.
	pool := newTestPool(t)
	r := rng.New(11)
	risks := workload.UniformRisks(16, 0.03)
	var total int
	const reps = 6
	for rep := 0; rep < reps; rep++ {
		popu := workload.Draw(risks, r)
		oracle := workload.NewOracle(popu, dilution.Ideal{}, r)
		sess, err := NewSession(pool, Config{Risks: risks, Response: dilution.Ideal{}})
		if err != nil {
			t.Fatal(err)
		}
		res, err := sess.Run(oracle.Test)
		if err != nil {
			t.Fatal(err)
		}
		if got := res.Positives(); got != popu.Truth {
			t.Fatalf("rep %d misclassified", rep)
		}
		total += res.Tests
	}
	perSubject := float64(total) / float64(reps*16)
	if perSubject >= 0.75 {
		t.Fatalf("tests per subject %v, want clear savings vs 1.0", perSubject)
	}
}

func TestRunNoisyResponseAccuracy(t *testing.T) {
	pool := newTestPool(t)
	resp := dilution.Hyperbolic{MaxSens: 0.98, Spec: 0.995, D: 0.2}
	r := rng.New(13)
	risks := workload.UniformRisks(12, 0.08)
	correct, totalSubjects := 0, 0
	for rep := 0; rep < 10; rep++ {
		popu := workload.Draw(risks, r)
		oracle := workload.NewOracle(popu, resp, r)
		sess, err := NewSession(pool, Config{Risks: risks, Response: resp})
		if err != nil {
			t.Fatal(err)
		}
		res, err := sess.Run(oracle.Test)
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range res.Classifications {
			totalSubjects++
			want := StatusNegative
			if popu.Truth.Has(c.Subject) {
				want = StatusPositive
			}
			if c.Status == want {
				correct++
			}
		}
	}
	if acc := float64(correct) / float64(totalSubjects); acc < 0.9 {
		t.Fatalf("noisy-response accuracy %v below 0.9", acc)
	}
}

func TestStepAccounting(t *testing.T) {
	pool := newTestPool(t)
	risks := workload.UniformRisks(8, 0.15)
	r := rng.New(3)
	popu := workload.Draw(risks, r)
	oracle := workload.NewOracle(popu, dilution.Ideal{}, r)
	sess, err := NewSession(pool, Config{Risks: risks, Response: dilution.Ideal{}})
	if err != nil {
		t.Fatal(err)
	}
	if sess.Done() || sess.Remaining() != 8 || sess.Stage() != 0 {
		t.Fatal("fresh session state wrong")
	}
	if err := sess.Step(oracle.Test); err != nil {
		t.Fatal(err)
	}
	if sess.Stage() != 1 || sess.Tests() != 1 {
		t.Fatalf("stage=%d tests=%d after one step", sess.Stage(), sess.Tests())
	}
	// Classifications of unknown subjects expose live marginals in [0,1].
	for _, c := range sess.Classifications() {
		if c.Marginal < 0 || c.Marginal > 1 {
			t.Fatalf("marginal %v out of range", c.Marginal)
		}
	}
	// Step with nil test is an error; step after done is a no-op.
	if err := sess.Step(nil); err == nil {
		t.Error("nil test accepted")
	}
}

func TestLookaheadRunsFewerStages(t *testing.T) {
	pool := newTestPool(t)
	risks := workload.UniformRisks(12, 0.1)
	run := func(lookahead int) (stages, tests int) {
		var sSum, tSum int
		const reps = 8
		for rep := uint64(0); rep < reps; rep++ {
			r := rng.New(100 + rep)
			popu := workload.Draw(risks, r)
			oracle := workload.NewOracle(popu, dilution.Ideal{}, r)
			sess, err := NewSession(pool, Config{Risks: risks, Response: dilution.Ideal{}, Lookahead: lookahead})
			if err != nil {
				t.Fatal(err)
			}
			res, err := sess.Run(oracle.Test)
			if err != nil {
				t.Fatal(err)
			}
			if got := res.Positives(); got != popu.Truth {
				t.Fatalf("lookahead=%d rep %d misclassified", lookahead, rep)
			}
			sSum += res.Stages
			tSum += res.Tests
		}
		return sSum, tSum
	}
	s1, t1 := run(1)
	s3, t3 := run(3)
	if s3 >= s1 {
		t.Fatalf("lookahead did not cut stages: %d vs %d", s3, s1)
	}
	if t3 < t1 {
		t.Logf("note: lookahead also cut tests (%d vs %d)", t3, t1)
	}
}

func TestMaxStagesForcesClassification(t *testing.T) {
	pool := newTestPool(t)
	risks := workload.UniformRisks(10, 0.2)
	r := rng.New(17)
	popu := workload.Draw(risks, r)
	// A nearly uninformative test cannot converge in 2 stages.
	resp := dilution.Binary{Sens: 0.55, Spec: 0.55}
	oracle := workload.NewOracle(popu, resp, r)
	sess, err := NewSession(pool, Config{Risks: risks, Response: resp, MaxStages: 2})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sess.Run(oracle.Test)
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged {
		t.Fatal("claimed convergence under an uninformative assay in 2 stages")
	}
	if res.Stages != 2 {
		t.Fatalf("ran %d stages, cap was 2", res.Stages)
	}
	forced := 0
	for _, c := range res.Classifications {
		if c.Status == StatusUnknown {
			t.Fatalf("subject %d left unknown after forced termination", c.Subject)
		}
		if c.Forced {
			forced++
		}
	}
	if forced == 0 {
		t.Fatal("no forced classifications recorded")
	}
}

func TestEntropyTraceTrendsToZero(t *testing.T) {
	// Realized entropy may rise on an unlikely outcome (only its
	// expectation is monotone), but a converged campaign must start at the
	// prior entropy and end far below it.
	pool := newTestPool(t)
	risks := workload.UniformRisks(10, 0.12)
	r := rng.New(29)
	popu := workload.Draw(risks, r)
	oracle := workload.NewOracle(popu, dilution.Ideal{}, r)
	sess, err := NewSession(pool, Config{Risks: risks, Response: dilution.Ideal{}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sess.Run(oracle.Test)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.EntropyTrace) < 2 {
		t.Fatalf("trace too short: %v", res.EntropyTrace)
	}
	prior := 10 * prob.BernoulliEntropy(0.12) / math.Ln2
	if math.Abs(res.EntropyTrace[0]-prior) > 1e-9 {
		t.Fatalf("trace starts at %v, prior entropy is %v", res.EntropyTrace[0], prior)
	}
	last := res.EntropyTrace[len(res.EntropyTrace)-1]
	if last > res.EntropyTrace[0]/2 {
		t.Fatalf("entropy did not trend down: %v", res.EntropyTrace)
	}
}

func TestTestLogConsistency(t *testing.T) {
	pool := newTestPool(t)
	risks := workload.UniformRisks(9, 0.15)
	r := rng.New(31)
	popu := workload.Draw(risks, r)
	oracle := workload.NewOracle(popu, dilution.Ideal{}, r)
	sess, err := NewSession(pool, Config{Risks: risks, Response: dilution.Ideal{}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sess.Run(oracle.Test)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Log) != res.Tests {
		t.Fatalf("log has %d records, %d tests", len(res.Log), res.Tests)
	}
	for i, rec := range res.Log {
		if rec.Pool == 0 {
			t.Fatalf("record %d has empty pool", i)
		}
		if !rec.Pool.SubsetOf(bitvec.Full(9)) {
			t.Fatalf("record %d pool %v outside cohort", i, rec.Pool)
		}
		if rec.Stage < 1 || rec.Stage > res.Stages {
			t.Fatalf("record %d stage %d outside [1,%d]", i, rec.Stage, res.Stages)
		}
	}
	if got := res.TestsPerSubject(); math.Abs(got-float64(res.Tests)/9) > 1e-15 {
		t.Fatalf("TestsPerSubject = %v", got)
	}
}

func TestHighPrevalencePositivesClassified(t *testing.T) {
	// Mostly infected cohort exercises the positive-conditioning path.
	pool := newTestPool(t)
	risks := workload.UniformRisks(8, 0.7)
	r := rng.New(37)
	popu := workload.Draw(risks, r)
	oracle := workload.NewOracle(popu, dilution.Ideal{}, r)
	sess, err := NewSession(pool, Config{Risks: risks, Response: dilution.Ideal{}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sess.Run(oracle.Test)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Positives(); got != popu.Truth {
		t.Fatalf("classified %v, truth %v", got, popu.Truth)
	}
}

func TestDeterministicGivenSeeds(t *testing.T) {
	pool := newTestPool(t)
	risks := workload.UniformRisks(10, 0.1)
	run := func() *Result {
		r := rng.New(55)
		popu := workload.Draw(risks, r)
		oracle := workload.NewOracle(popu, dilution.Hyperbolic{MaxSens: 0.95, Spec: 0.99, D: 0.3}, r)
		sess, err := NewSession(pool, Config{Risks: risks, Response: dilution.Hyperbolic{MaxSens: 0.95, Spec: 0.99, D: 0.3}})
		if err != nil {
			t.Fatal(err)
		}
		res, err := sess.Run(oracle.Test)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Tests != b.Tests || a.Stages != b.Stages || a.Positives() != b.Positives() {
		t.Fatalf("runs diverged: %d/%d/%v vs %d/%d/%v", a.Tests, a.Stages, a.Positives(), b.Tests, b.Stages, b.Positives())
	}
}
