// Package stats runs and summarizes Monte-Carlo surveillance studies —
// SBGT's third computational kernel ("conducting statistical analyses").
//
// A study repeats the full classify-a-cohort campaign over many simulated
// populations and aggregates operating characteristics: classification
// accuracy/sensitivity/specificity against the simulated truth, tests per
// subject (the group-testing savings), and sequential stages (the lab
// round-trip cost). Replicates are deterministic: the root seed is split
// into one independent RNG stream per replicate before any work starts, so
// the parallel runner and the serial runner produce identical results.
package stats

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"repro/internal/bitvec"
	"repro/internal/core"
	"repro/internal/dilution"
	"repro/internal/engine"
	"repro/internal/halving"
	"repro/internal/obs"
	"repro/internal/posterior"
	"repro/internal/prob"
	"repro/internal/rng"
	"repro/internal/workload"
)

// Confusion tallies per-subject classification outcomes against truth.
type Confusion struct {
	TP, FP, TN, FN int
}

// Add merges another confusion tally into c.
func (c *Confusion) Add(o Confusion) {
	c.TP += o.TP
	c.FP += o.FP
	c.TN += o.TN
	c.FN += o.FN
}

// Total returns the number of classified subjects.
func (c Confusion) Total() int { return c.TP + c.FP + c.TN + c.FN }

// Accuracy returns (TP+TN)/Total, or 1 for an empty tally.
func (c Confusion) Accuracy() float64 {
	if c.Total() == 0 {
		return 1
	}
	return float64(c.TP+c.TN) / float64(c.Total())
}

// Sensitivity returns TP/(TP+FN), or 1 when there were no true positives
// to find (the vacuous case).
func (c Confusion) Sensitivity() float64 {
	if c.TP+c.FN == 0 {
		return 1
	}
	return float64(c.TP) / float64(c.TP+c.FN)
}

// Specificity returns TN/(TN+FP), or 1 when there were no true negatives.
func (c Confusion) Specificity() float64 {
	if c.TN+c.FP == 0 {
		return 1
	}
	return float64(c.TN) / float64(c.TN+c.FP)
}

// Evaluate scores a completed session result against the simulated truth.
func Evaluate(res *core.Result, truth bitvec.Mask) Confusion {
	var c Confusion
	for _, call := range res.Classifications {
		infected := truth.Has(call.Subject)
		positive := call.Status == core.StatusPositive
		switch {
		case infected && positive:
			c.TP++
		case infected && !positive:
			c.FN++
		case !infected && positive:
			c.FP++
		default:
			c.TN++
		}
	}
	return c
}

// StudyConfig describes one Monte-Carlo study.
type StudyConfig struct {
	// RiskGen produces the cohort's prior risks for one replicate. The
	// stream is the replicate's own; generators may draw heterogeneous
	// risks from it. Required.
	RiskGen func(r *rng.Source) []float64
	// Response models the assay (used for both simulation and inference).
	Response dilution.Response
	// Strategy builds a (possibly stateful) selection strategy per
	// replicate; nil selects Bayesian halving with MaxPool 32.
	Strategy func(r *rng.Source) halving.Strategy
	// Backend selects the posterior representation each replicate runs on
	// (dense, sparse, or cluster with local executors). The zero value is
	// the dense in-process backend, the historical behavior.
	Backend posterior.Spec
	// Lookahead, PosThreshold, NegThreshold, MaxStages mirror core.Config.
	Lookahead    int
	PosThreshold float64
	NegThreshold float64
	MaxStages    int
	// Replicates is the number of simulated cohorts. Required > 0.
	Replicates int
	// Seed roots the deterministic replicate streams.
	Seed uint64
	// Obs, when non-nil, instruments every replicate's session and
	// backend into the shared registry: per-stage session phase
	// timings, posterior per-op latency, and (for the cluster backend)
	// RPC and executor series. The registry is concurrency-safe, so the
	// parallel runner's replicates all report into it.
	Obs *obs.Registry
}

// Replicate holds one simulated campaign's metrics.
type Replicate struct {
	Confusion
	Subjects  int
	Infected  int
	Tests     int
	Stages    int
	Converged bool
}

// StudyResult aggregates a finished study.
type StudyResult struct {
	Reps []Replicate
}

// Run executes the study with one replicate per pool job — replicates are
// the unit of parallelism, each on its own single-worker lattice so the
// two levels of parallelism do not fight. Results are identical to
// RunSerial for the same config.
func Run(pool *engine.Pool, cfg StudyConfig) (*StudyResult, error) {
	streams, err := prepare(cfg)
	if err != nil {
		return nil, err
	}
	reps := make([]Replicate, cfg.Replicates)
	var mu sync.Mutex
	var firstErr error
	pool.Run(cfg.Replicates, func(i int) {
		rep, err := runOne(cfg, streams[i])
		if err != nil {
			mu.Lock()
			if firstErr == nil {
				firstErr = fmt.Errorf("replicate %d: %w", i, err)
			}
			mu.Unlock()
			return
		}
		reps[i] = rep
	})
	if firstErr != nil {
		return nil, firstErr
	}
	return &StudyResult{Reps: reps}, nil
}

// RunSerial executes the study on the calling goroutine — the pre-SBGT
// analysis path the T3 experiment benchmarks against.
func RunSerial(cfg StudyConfig) (*StudyResult, error) {
	streams, err := prepare(cfg)
	if err != nil {
		return nil, err
	}
	reps := make([]Replicate, cfg.Replicates)
	for i := range reps {
		rep, err := runOne(cfg, streams[i])
		if err != nil {
			return nil, fmt.Errorf("replicate %d: %w", i, err)
		}
		reps[i] = rep
	}
	return &StudyResult{Reps: reps}, nil
}

func prepare(cfg StudyConfig) ([]*rng.Source, error) {
	if cfg.RiskGen == nil {
		return nil, fmt.Errorf("stats: nil RiskGen")
	}
	if cfg.Response == nil {
		return nil, fmt.Errorf("stats: nil Response")
	}
	if cfg.Replicates <= 0 {
		return nil, fmt.Errorf("stats: Replicates = %d", cfg.Replicates)
	}
	return rng.New(cfg.Seed).SplitN(cfg.Replicates), nil
}

// openSession builds one replicate's session on the study's backend.
// The session owns the opened model and closes it when the campaign
// completes or the caller abandons it.
func openSession(cfg StudyConfig, lp *engine.Pool, risks []float64, strat halving.Strategy) (*core.Session, error) {
	spec := cfg.Backend
	if spec.Obs == nil {
		spec.Obs = cfg.Obs
	}
	model, err := spec.Open(lp, risks, cfg.Response)
	if err != nil {
		return nil, err
	}
	sess, err := core.NewSessionOn(model, core.Config{
		Risks:        risks,
		Response:     cfg.Response,
		Strategy:     strat,
		Lookahead:    cfg.Lookahead,
		PosThreshold: cfg.PosThreshold,
		NegThreshold: cfg.NegThreshold,
		MaxStages:    cfg.MaxStages,
		Obs:          cfg.Obs,
	})
	if err != nil {
		model.Close() //lint:allow errcheck teardown on a constructor failure path; the construction error wins
		return nil, err
	}
	return sess, nil
}

// runOne simulates one cohort end to end on a private single-worker engine.
func runOne(cfg StudyConfig, r *rng.Source) (Replicate, error) {
	risks := cfg.RiskGen(r)
	popu := workload.Draw(risks, r)
	oracle := workload.NewOracle(popu, cfg.Response, r)
	var strat halving.Strategy
	if cfg.Strategy != nil {
		strat = cfg.Strategy(r)
	}
	lp := engine.NewPool(1)
	defer lp.Close()
	sess, err := openSession(cfg, lp, risks, strat)
	if err != nil {
		return Replicate{}, err
	}
	defer sess.Close()
	res, err := sess.Run(oracle.Test)
	if err != nil {
		return Replicate{}, err
	}
	return Replicate{
		Confusion: Evaluate(res, popu.Truth),
		Subjects:  len(risks),
		Infected:  popu.Infected(),
		Tests:     res.Tests,
		Stages:    res.Stages,
		Converged: res.Converged,
	}, nil
}

// Summary holds the study-level aggregates the experiment tables report.
type Summary struct {
	Replicates      int
	Subjects        int // total subjects across replicates
	Accuracy        float64
	AccuracyCI      prob.Interval // 95% Wilson
	Sensitivity     float64
	Specificity     float64
	MeanTests       float64 // per replicate
	TestsPerSubject float64
	MeanStages      float64
	StagesP90       float64
	ConvergedFrac   float64
}

// Summarize aggregates the study.
func (s *StudyResult) Summarize() Summary {
	var total Confusion
	var tests, stages, subjects, converged int
	stageVals := make([]float64, 0, len(s.Reps))
	for _, rep := range s.Reps {
		total.Add(rep.Confusion)
		tests += rep.Tests
		stages += rep.Stages
		subjects += rep.Subjects
		stageVals = append(stageVals, float64(rep.Stages))
		if rep.Converged {
			converged++
		}
	}
	n := len(s.Reps)
	if n == 0 {
		return Summary{}
	}
	sort.Float64s(stageVals)
	sum := Summary{
		Replicates:    n,
		Subjects:      subjects,
		Accuracy:      total.Accuracy(),
		AccuracyCI:    prob.WilsonInterval(total.TP+total.TN, total.Total(), 1.96),
		Sensitivity:   total.Sensitivity(),
		Specificity:   total.Specificity(),
		MeanTests:     float64(tests) / float64(n),
		MeanStages:    float64(stages) / float64(n),
		StagesP90:     prob.Quantile(stageVals, 0.9),
		ConvergedFrac: float64(converged) / float64(n),
	}
	if subjects > 0 {
		sum.TestsPerSubject = float64(tests) / float64(subjects)
	}
	return sum
}

// String renders the summary as one table row body.
func (s Summary) String() string {
	return fmt.Sprintf("acc=%.4f [%.4f,%.4f] sens=%.4f spec=%.4f tests/subj=%.3f stages=%.2f (p90 %.0f) conv=%.0f%%",
		s.Accuracy, s.AccuracyCI.Lo, s.AccuracyCI.Hi, s.Sensitivity, s.Specificity,
		s.TestsPerSubject, s.MeanStages, s.StagesP90, 100*s.ConvergedFrac)
}

// IndividualTestingBaseline returns the per-subject test count individual
// testing would need for the same cohorts (always 1.0) scaled to the
// study's subject total, plus the implied number of tests — the yardstick
// for the savings column. With a noisy assay, confirmatory repetition
// would push individual testing above 1; we report the optimistic 1.0.
func (s *StudyResult) IndividualTestingBaseline() (tests int) {
	for _, rep := range s.Reps {
		tests += rep.Subjects
	}
	return tests
}

// Savings returns 1 − (pooled tests / individual tests): the fraction of
// tests group testing avoided.
func (s *StudyResult) Savings() float64 {
	ind := s.IndividualTestingBaseline()
	if ind == 0 {
		return 0
	}
	var pooled int
	for _, rep := range s.Reps {
		pooled += rep.Tests
	}
	return 1 - float64(pooled)/float64(ind)
}

// MeanEntropyTrace is a helper for the convergence figure: it runs
// replicates capturing per-stage entropy and returns the mean trace padded
// with zeros after convergence (a converged lattice has zero entropy).
func MeanEntropyTrace(cfg StudyConfig, stages int) ([]float64, error) {
	streams, err := prepare(cfg)
	if err != nil {
		return nil, err
	}
	trace := make([]float64, stages+1)
	for _, r := range streams {
		risks := cfg.RiskGen(r)
		popu := workload.Draw(risks, r)
		oracle := workload.NewOracle(popu, cfg.Response, r)
		var strat halving.Strategy
		if cfg.Strategy != nil {
			strat = cfg.Strategy(r)
		}
		lp := engine.NewPool(1)
		sess, err := openSession(cfg, lp, risks, strat)
		if err != nil {
			lp.Close()
			return nil, err
		}
		res, err := sess.Run(oracle.Test)
		sess.Close() //lint:allow errcheck abandoned-session teardown; Run's error wins
		lp.Close()
		if err != nil {
			return nil, err
		}
		for i := 0; i <= stages; i++ {
			if i < len(res.EntropyTrace) {
				trace[i] += res.EntropyTrace[i]
			}
			// else: converged — contributes zero entropy.
		}
	}
	inv := 1 / float64(len(streams))
	for i := range trace {
		trace[i] *= inv
	}
	// Guard: means must be finite.
	for _, v := range trace {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("stats: non-finite entropy trace")
		}
	}
	return trace, nil
}
