package stats

import (
	"math"
	"testing"

	"repro/internal/bitvec"
	"repro/internal/core"
	"repro/internal/dilution"
	"repro/internal/engine"
	"repro/internal/halving"
	"repro/internal/rng"
	"repro/internal/workload"
)

func TestConfusionRates(t *testing.T) {
	c := Confusion{TP: 8, FP: 1, TN: 89, FN: 2}
	if got := c.Total(); got != 100 {
		t.Fatalf("Total = %d", got)
	}
	if got := c.Accuracy(); math.Abs(got-0.97) > 1e-12 {
		t.Errorf("Accuracy = %v", got)
	}
	if got := c.Sensitivity(); math.Abs(got-0.8) > 1e-12 {
		t.Errorf("Sensitivity = %v", got)
	}
	if got := c.Specificity(); math.Abs(got-89.0/90) > 1e-12 {
		t.Errorf("Specificity = %v", got)
	}
}

func TestConfusionVacuousCases(t *testing.T) {
	var empty Confusion
	if empty.Accuracy() != 1 || empty.Sensitivity() != 1 || empty.Specificity() != 1 {
		t.Error("vacuous tallies should report 1")
	}
	onlyNeg := Confusion{TN: 5}
	if onlyNeg.Sensitivity() != 1 {
		t.Error("no positives to find: sensitivity should be vacuous 1")
	}
}

func TestConfusionAdd(t *testing.T) {
	a := Confusion{TP: 1, FP: 2, TN: 3, FN: 4}
	a.Add(Confusion{TP: 10, FP: 20, TN: 30, FN: 40})
	if a != (Confusion{TP: 11, FP: 22, TN: 33, FN: 44}) {
		t.Fatalf("Add = %+v", a)
	}
}

func TestEvaluate(t *testing.T) {
	res := &core.Result{Classifications: []core.Classification{
		{Subject: 0, Status: core.StatusPositive},
		{Subject: 1, Status: core.StatusNegative},
		{Subject: 2, Status: core.StatusPositive},
		{Subject: 3, Status: core.StatusNegative},
	}}
	truth := bitvec.FromIndices(0, 3) // 0 infected (caught), 3 infected (missed)
	c := Evaluate(res, truth)
	if c != (Confusion{TP: 1, FP: 1, TN: 1, FN: 1}) {
		t.Fatalf("Evaluate = %+v", c)
	}
}

func studyCfg(reps int) StudyConfig {
	return StudyConfig{
		RiskGen:    func(*rng.Source) []float64 { return workload.UniformRisks(10, 0.05) },
		Response:   dilution.Ideal{},
		Replicates: reps,
		Seed:       42,
	}
}

func TestPrepareValidation(t *testing.T) {
	bad := []StudyConfig{
		{Response: dilution.Ideal{}, Replicates: 1},
		{RiskGen: func(*rng.Source) []float64 { return nil }, Replicates: 1},
		{RiskGen: func(*rng.Source) []float64 { return nil }, Response: dilution.Ideal{}, Replicates: 0},
	}
	for i, cfg := range bad {
		if _, err := RunSerial(cfg); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
}

func TestParallelMatchesSerial(t *testing.T) {
	// The load-bearing determinism property: Run and RunSerial must agree
	// replicate by replicate.
	pool := engine.NewPool(4)
	defer pool.Close()
	cfg := studyCfg(24)
	par, err := Run(pool, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ser, err := RunSerial(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(par.Reps) != len(ser.Reps) {
		t.Fatalf("replicate counts differ: %d vs %d", len(par.Reps), len(ser.Reps))
	}
	for i := range par.Reps {
		if par.Reps[i] != ser.Reps[i] {
			t.Fatalf("replicate %d diverged:\npar %+v\nser %+v", i, par.Reps[i], ser.Reps[i])
		}
	}
}

func TestStudyIdealIsPerfect(t *testing.T) {
	res, err := RunSerial(studyCfg(20))
	if err != nil {
		t.Fatal(err)
	}
	sum := res.Summarize()
	if sum.Accuracy != 1 {
		t.Fatalf("ideal-assay accuracy = %v", sum.Accuracy)
	}
	if sum.ConvergedFrac != 1 {
		t.Fatalf("converged fraction = %v", sum.ConvergedFrac)
	}
	if sum.Replicates != 20 || sum.Subjects != 200 {
		t.Fatalf("counts: %d reps, %d subjects", sum.Replicates, sum.Subjects)
	}
	// At 5% prevalence group testing must save a lot of tests.
	if sum.TestsPerSubject >= 0.8 {
		t.Fatalf("tests/subject = %v, expected clear savings", sum.TestsPerSubject)
	}
	if sav := res.Savings(); sav <= 0.2 {
		t.Fatalf("savings = %v", sav)
	}
	if res.IndividualTestingBaseline() != 200 {
		t.Fatalf("individual baseline = %d", res.IndividualTestingBaseline())
	}
	if sum.String() == "" {
		t.Error("empty summary string")
	}
}

func TestStudyWithNoisyAssayAndStrategy(t *testing.T) {
	cfg := StudyConfig{
		RiskGen:  func(r *rng.Source) []float64 { return workload.BetaRisks(9, 2, 20, r) },
		Response: dilution.Hyperbolic{MaxSens: 0.97, Spec: 0.99, D: 0.3},
		Strategy: func(r *rng.Source) halving.Strategy {
			return halving.Halving{Opts: halving.Options{MaxPool: 6}}
		},
		Replicates: 12,
		Seed:       7,
	}
	res, err := RunSerial(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sum := res.Summarize()
	if sum.Accuracy < 0.85 {
		t.Fatalf("accuracy = %v", sum.Accuracy)
	}
	if sum.AccuracyCI.Lo > sum.Accuracy+1e-12 || sum.AccuracyCI.Hi < sum.Accuracy-1e-12 {
		t.Fatalf("CI %+v does not bracket accuracy %v", sum.AccuracyCI, sum.Accuracy)
	}
	if sum.StagesP90 < sum.MeanStages {
		t.Fatalf("p90 stages %v below mean %v", sum.StagesP90, sum.MeanStages)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	var s StudyResult
	if got := s.Summarize(); got.Replicates != 0 {
		t.Fatalf("empty summary = %+v", got)
	}
	if got := s.Savings(); got != 0 {
		t.Fatalf("empty savings = %v", got)
	}
}

func TestMeanEntropyTrace(t *testing.T) {
	cfg := studyCfg(6)
	trace, err := MeanEntropyTrace(cfg, 12)
	if err != nil {
		t.Fatal(err)
	}
	if len(trace) != 13 {
		t.Fatalf("trace length %d", len(trace))
	}
	// Starts at the prior entropy of the 10-subject 5% cohort.
	if trace[0] < 1 || trace[0] > 10 {
		t.Fatalf("prior entropy %v implausible", trace[0])
	}
	// Ends near zero once all replicates converge.
	if trace[len(trace)-1] > 0.5 {
		t.Fatalf("trace tail %v not near zero", trace[len(trace)-1])
	}
	// Halving must dominate random pooling stage by stage in the mean.
	cfgRand := cfg
	cfgRand.Strategy = func(r *rng.Source) halving.Strategy {
		return halving.Random{Size: 5, Rng: r.Split()}
	}
	randTrace, err := MeanEntropyTrace(cfgRand, 12)
	if err != nil {
		t.Fatal(err)
	}
	if trace[6] >= randTrace[6] {
		t.Fatalf("halving trace %v not below random %v at stage 6", trace[6], randTrace[6])
	}
}
