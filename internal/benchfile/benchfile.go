// Package benchfile defines the schema-versioned performance-tracking
// artifact of the reproduction (BENCH_<n>.json): one sbgt-bench run's
// per-experiment wall times plus the environment that produced them, and
// the regression comparison between two such files.
//
// The trajectory works like a test suite for performance: `sbgt-bench
// -baseline BENCH_0.json` records a baseline, later runs write new files,
// and sbgt-benchdiff compares them with per-metric noise thresholds so a
// real slowdown fails CI while timer jitter does not.
package benchfile

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"os/exec"
	"runtime"
	"sort"
	"strings"
	"time"

	"repro/internal/obs"
)

// SchemaVersion is the current bench-file schema. Readers accept exactly
// this version: the file is a comparison artifact, and silently comparing
// across schema changes is how regression gates rot.
const SchemaVersion = 1

// Experiment is one experiment's identity and measured wall time.
type Experiment struct {
	ID      string  `json:"id"`
	Title   string  `json:"title"`
	Seconds float64 `json:"seconds"`
}

// File is one bench run: environment, per-experiment wall times, and the
// full metric snapshot for deeper post-hoc analysis.
type File struct {
	Schema    int    `json:"schema"`
	CreatedAt string `json:"created_at"`        // RFC3339, stamped by Write
	GitSHA    string `json:"git_sha,omitempty"` // commit of the measured tree
	GoVersion string `json:"go_version,omitempty"`

	Workers     int           `json:"workers"`
	Quick       bool          `json:"quick"`
	Seed        uint64        `json:"seed"`
	Backend     string        `json:"backend"`
	Experiments []Experiment  `json:"experiments"`
	Metrics     *obs.Snapshot `json:"metrics,omitempty"`
}

// Validate checks the invariants every reader relies on.
func (f *File) Validate() error {
	if f.Schema != SchemaVersion {
		return fmt.Errorf("benchfile: schema %d, this build reads %d", f.Schema, SchemaVersion)
	}
	seen := map[string]bool{}
	for i, e := range f.Experiments {
		if e.ID == "" {
			return fmt.Errorf("benchfile: experiment %d has no id", i)
		}
		if seen[e.ID] {
			return fmt.Errorf("benchfile: duplicate experiment %q", e.ID)
		}
		seen[e.ID] = true
		if !(e.Seconds >= 0) {
			return fmt.Errorf("benchfile: experiment %q has invalid wall time %v", e.ID, e.Seconds)
		}
	}
	return nil
}

// Write stamps the file (schema, timestamp, Go version, and — best
// effort — the git commit) and writes it to path. "-" selects stdout.
func Write(path string, f *File) error {
	f.Schema = SchemaVersion
	if f.CreatedAt == "" {
		f.CreatedAt = time.Now().UTC().Format(time.RFC3339)
	}
	if f.GoVersion == "" {
		f.GoVersion = runtime.Version()
	}
	if f.GitSHA == "" {
		f.GitSHA = GitSHA(".")
	}
	if err := f.Validate(); err != nil {
		return err
	}
	buf, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(buf)
		return err
	}
	return os.WriteFile(path, buf, 0o644)
}

// Read loads and validates a bench file.
func Read(path string) (*File, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f File
	if err := json.Unmarshal(buf, &f); err != nil {
		return nil, fmt.Errorf("benchfile: %s: %w", path, err)
	}
	if err := f.Validate(); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &f, nil
}

// GitSHA returns the short commit hash of the repository containing dir,
// or "" when git (or the repository) is unavailable — bench files remain
// writable from exported tarballs.
func GitSHA(dir string) string {
	cmd := exec.Command("git", "rev-parse", "--short", "HEAD")
	cmd.Dir = dir
	out, err := cmd.Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}

// Thresholds configures what counts as a regression. An experiment
// regresses only when it is BOTH Ratio times slower AND MinSeconds
// absolutely slower — the ratio alone would flag microsecond jitter on
// fast experiments, the absolute floor alone would miss big relative
// slowdowns on them.
type Thresholds struct {
	// Ratio is the multiplicative slowdown bound (<= 0 selects 1.5).
	Ratio float64
	// MinSeconds is the absolute slowdown floor (<= 0 selects 0.05).
	MinSeconds float64
	// PerExperiment overrides Ratio for specific experiment IDs — e.g. a
	// network-bound experiment that needs more headroom in shared CI.
	PerExperiment map[string]float64
}

func (t Thresholds) withDefaults() Thresholds {
	if t.Ratio <= 0 {
		t.Ratio = 1.5
	}
	if t.MinSeconds <= 0 {
		t.MinSeconds = 0.05
	}
	return t
}

// ratioFor returns the slowdown bound applying to one experiment.
func (t Thresholds) ratioFor(id string) float64 {
	if r, ok := t.PerExperiment[id]; ok && r > 0 {
		return r
	}
	return t.Ratio
}

// Status classifies one experiment's delta.
type Status string

// Delta classifications.
const (
	StatusOK         Status = "ok"         // within thresholds
	StatusRegression Status = "regression" // slower beyond thresholds
	StatusImproved   Status = "improved"   // faster beyond the same bounds
	StatusAdded      Status = "added"      // only in the new file
	StatusRemoved    Status = "removed"    // only in the old file
)

// Delta is one experiment's old-vs-new comparison.
type Delta struct {
	ID     string  `json:"id"`
	Old    float64 `json:"old_seconds"`
	New    float64 `json:"new_seconds"`
	Ratio  float64 `json:"ratio"` // new/old; 0 when not comparable
	Limit  float64 `json:"limit"` // the ratio bound applied
	Status Status  `json:"status"`
}

// DiffResult is the comparison of two bench files.
type DiffResult struct {
	Deltas      []Delta `json:"deltas"`
	Regressions int     `json:"regressions"`
}

// Regressed reports whether any experiment regressed.
func (r *DiffResult) Regressed() bool { return r.Regressions > 0 }

// Diff compares two bench files experiment-by-experiment. Experiments
// present on only one side are reported (added/removed) but never count
// as regressions — the gate is about speed, not registry churn.
func Diff(oldF, newF *File, th Thresholds) *DiffResult {
	th = th.withDefaults()
	oldBy := map[string]Experiment{}
	for _, e := range oldF.Experiments {
		oldBy[e.ID] = e
	}
	res := &DiffResult{}
	seen := map[string]bool{}
	for _, ne := range newF.Experiments {
		seen[ne.ID] = true
		oe, ok := oldBy[ne.ID]
		if !ok {
			res.Deltas = append(res.Deltas, Delta{ID: ne.ID, New: ne.Seconds, Status: StatusAdded})
			continue
		}
		d := Delta{ID: ne.ID, Old: oe.Seconds, New: ne.Seconds, Limit: th.ratioFor(ne.ID), Status: StatusOK}
		if oe.Seconds > 0 {
			d.Ratio = ne.Seconds / oe.Seconds
		}
		slower := ne.Seconds - oe.Seconds
		switch {
		case ne.Seconds > oe.Seconds*d.Limit && slower > th.MinSeconds:
			d.Status = StatusRegression
			res.Regressions++
		case oe.Seconds > ne.Seconds*d.Limit && -slower > th.MinSeconds:
			d.Status = StatusImproved
		}
		res.Deltas = append(res.Deltas, d)
	}
	for _, oe := range oldF.Experiments {
		if !seen[oe.ID] {
			res.Deltas = append(res.Deltas, Delta{ID: oe.ID, Old: oe.Seconds, Status: StatusRemoved})
		}
	}
	sort.Slice(res.Deltas, func(i, j int) bool { return res.Deltas[i].ID < res.Deltas[j].ID })
	return res
}

// WriteText renders the comparison as an aligned table, one experiment
// per line, regressions marked — the sbgt-benchdiff output.
func (r *DiffResult) WriteText(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "%-6s %12s %12s %8s %8s  %s\n", "exp", "old (s)", "new (s)", "ratio", "limit", "status")
	for _, d := range r.Deltas {
		ratio := "-"
		if d.Ratio > 0 {
			ratio = fmt.Sprintf("%.2fx", d.Ratio)
		}
		limit := "-"
		if d.Limit > 0 {
			limit = fmt.Sprintf("%.2fx", d.Limit)
		}
		fmt.Fprintf(&b, "%-6s %12.4f %12.4f %8s %8s  %s\n", d.ID, d.Old, d.New, ratio, limit, d.Status)
	}
	if r.Regressions > 0 {
		fmt.Fprintf(&b, "\n%d regression(s)\n", r.Regressions)
	} else {
		b.WriteString("\nno regressions\n")
	}
	_, err := io.WriteString(w, b.String())
	return err
}
