package benchfile

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func sample(times map[string]float64) *File {
	f := &File{Workers: 4, Seed: 1, Backend: "dense"}
	for _, id := range []string{"T1", "T2", "F6"} {
		if s, ok := times[id]; ok {
			f.Experiments = append(f.Experiments, Experiment{ID: id, Title: id + " title", Seconds: s})
		}
	}
	return f
}

func TestWriteReadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_0.json")
	f := sample(map[string]float64{"T1": 1.25, "T2": 0.5, "F6": 2})
	if err := Write(path, f); err != nil {
		t.Fatal(err)
	}
	got, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Schema != SchemaVersion {
		t.Errorf("schema = %d, want %d", got.Schema, SchemaVersion)
	}
	if got.CreatedAt == "" || got.GoVersion == "" {
		t.Errorf("stamps missing: created_at=%q go=%q", got.CreatedAt, got.GoVersion)
	}
	if len(got.Experiments) != 3 || got.Experiments[0] != f.Experiments[0] {
		t.Errorf("experiments = %+v", got.Experiments)
	}
}

func TestReadRejectsBadFiles(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	for name, tc := range map[string]struct{ content, wantErr string }{
		"wrong-schema": {`{"schema": 99}`, "schema 99"},
		"no-id":        {`{"schema": 1, "experiments": [{"seconds": 1}]}`, "no id"},
		"dup-id":       {`{"schema": 1, "experiments": [{"id":"T1","seconds":1},{"id":"T1","seconds":2}]}`, "duplicate"},
		"neg-time":     {`{"schema": 1, "experiments": [{"id":"T1","seconds":-1}]}`, "invalid wall time"},
		"not-json":     {`}{`, "invalid character"},
	} {
		p := write(name+".json", tc.content)
		_, err := Read(p)
		if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: err = %v, want substring %q", name, err, tc.wantErr)
		}
	}
	if _, err := Read(filepath.Join(dir, "absent.json")); err == nil {
		t.Error("reading a missing file succeeded")
	}
}

func TestDiffParityIsClean(t *testing.T) {
	old := sample(map[string]float64{"T1": 1.0, "T2": 0.5, "F6": 2})
	res := Diff(old, sample(map[string]float64{"T1": 1.0, "T2": 0.5, "F6": 2}), Thresholds{})
	if res.Regressed() || res.Regressions != 0 {
		t.Fatalf("parity diff regressed: %+v", res)
	}
	for _, d := range res.Deltas {
		if d.Status != StatusOK {
			t.Errorf("%s status = %s, want ok", d.ID, d.Status)
		}
	}
}

func TestDiffFlagsInjectedRegression(t *testing.T) {
	old := sample(map[string]float64{"T1": 1.0, "T2": 0.5, "F6": 2})
	// T1 slowed 2x — past the default 1.5x ratio and the 50ms floor.
	res := Diff(old, sample(map[string]float64{"T1": 2.0, "T2": 0.5, "F6": 2}), Thresholds{})
	if !res.Regressed() || res.Regressions != 1 {
		t.Fatalf("injected regression not flagged: %+v", res)
	}
	for _, d := range res.Deltas {
		want := StatusOK
		if d.ID == "T1" {
			want = StatusRegression
		}
		if d.Status != want {
			t.Errorf("%s status = %s, want %s", d.ID, d.Status, want)
		}
	}
}

func TestDiffNoiseThresholds(t *testing.T) {
	// 3x slower but only 3ms absolute: under the MinSeconds floor, not a
	// regression — fast experiments jitter multiplicatively.
	old := sample(map[string]float64{"T1": 0.0015})
	res := Diff(old, sample(map[string]float64{"T1": 0.0045}), Thresholds{})
	if res.Regressed() {
		t.Fatalf("sub-floor jitter flagged as regression: %+v", res.Deltas)
	}
	// 1.2x slower on a long experiment: over the floor but under the ratio.
	old = sample(map[string]float64{"T1": 10})
	res = Diff(old, sample(map[string]float64{"T1": 12}), Thresholds{})
	if res.Regressed() {
		t.Fatalf("sub-ratio slowdown flagged as regression: %+v", res.Deltas)
	}
	// Per-experiment override loosens the bound for a named experiment.
	old = sample(map[string]float64{"T1": 1})
	res = Diff(old, sample(map[string]float64{"T1": 3}), Thresholds{PerExperiment: map[string]float64{"T1": 5}})
	if res.Regressed() {
		t.Fatalf("override did not loosen the bound: %+v", res.Deltas)
	}
}

func TestDiffAddedRemovedImproved(t *testing.T) {
	old := sample(map[string]float64{"T1": 2.0, "T2": 0.5})
	res := Diff(old, sample(map[string]float64{"T1": 0.5, "F6": 1}), Thresholds{})
	if res.Regressed() {
		t.Fatalf("added/removed/improved counted as regression: %+v", res)
	}
	byID := map[string]Delta{}
	for _, d := range res.Deltas {
		byID[d.ID] = d
	}
	if byID["T1"].Status != StatusImproved {
		t.Errorf("T1 status = %s, want improved", byID["T1"].Status)
	}
	if byID["F6"].Status != StatusAdded {
		t.Errorf("F6 status = %s, want added", byID["F6"].Status)
	}
	if byID["T2"].Status != StatusRemoved {
		t.Errorf("T2 status = %s, want removed", byID["T2"].Status)
	}
}

func TestDiffWriteText(t *testing.T) {
	old := sample(map[string]float64{"T1": 1.0, "T2": 0.5})
	res := Diff(old, sample(map[string]float64{"T1": 2.0, "T2": 0.5}), Thresholds{})
	var sb strings.Builder
	if err := res.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"T1", "regression", "1 regression(s)", "2.00x", "1.50x"} {
		if !strings.Contains(out, want) {
			t.Errorf("diff text missing %q:\n%s", want, out)
		}
	}
}
