package posterior

import (
	"repro/internal/bitvec"
	"repro/internal/cluster"
	"repro/internal/dilution"
	"repro/internal/obs"
)

// Cluster adapts the distributed driver to the Model interface. The
// wrapper optionally owns a stop function (from cluster.StartLocal) that
// tears down in-process executors when the model is Closed; ownership of
// both the connections and the stop function follows Condition, matching
// the driver's own transfer semantics.
type Cluster struct {
	m    *cluster.Model
	stop func()
}

// FromCluster wraps an existing driver-side model. stop, if non-nil, is
// invoked exactly once when the model (or a conditioned descendant) is
// closed — pass the stop function of cluster.StartLocal, or nil for
// external executors.
func FromCluster(m *cluster.Model, stop func()) *Cluster {
	return &Cluster{m: m, stop: stop}
}

// Driver exposes the wrapped cluster model (executor counts, Ping,
// Shutdown for deployment tooling).
func (c *Cluster) Driver() *cluster.Model { return c.m }

// SetTraceContext forwards a propagated trace context to the driver, so
// subsequent RPCs emit spans under it — the trace-carrier capability the
// session probes for (see cluster.Model.SetTraceContext).
func (c *Cluster) SetTraceContext(tc obs.TraceContext) { c.m.SetTraceContext(tc) }

// N returns the cohort size.
func (c *Cluster) N() int { return c.m.N() }

// Kind returns KindCluster.
func (c *Cluster) Kind() Kind { return KindCluster }

// Risks returns the prior risk vector (a copy).
func (c *Cluster) Risks() []float64 { return c.m.Risks() }

// Response returns the assay model.
func (c *Cluster) Response() dilution.Response { return c.m.Response() }

// Tests returns how many outcomes have been absorbed.
func (c *Cluster) Tests() int { return c.m.Tests() }

// Update folds one pooled-test outcome into the distributed posterior.
func (c *Cluster) Update(pool bitvec.Mask, y dilution.Outcome) error {
	return c.m.Update(pool, y)
}

// Marginals returns each subject's posterior infection probability.
func (c *Cluster) Marginals() ([]float64, error) { return c.m.Marginals() }

// NegMasses scores every candidate pool in one distributed sweep.
func (c *Cluster) NegMasses(cands []bitvec.Mask) ([]float64, error) {
	return c.m.NegMasses(cands)
}

// PrefixNegMasses returns the nested-prefix clean masses, distributed.
func (c *Cluster) PrefixNegMasses(order []int) ([]float64, error) {
	return c.m.PrefixNegMasses(order)
}

// Entropy returns the posterior entropy in bits.
func (c *Cluster) Entropy() (float64, error) { return c.m.Entropy() }

// Summary gathers the fused per-round digest in one distributed round
// trip instead of four.
func (c *Cluster) Summary() (*Summary, error) {
	d, err := c.m.Summary()
	if err != nil {
		return nil, err
	}
	return &Summary{
		Marginals:        d.Marginals,
		EntropyBits:      d.EntropyBits,
		MAPState:         d.MAPState,
		MAPMass:          d.MAPMass,
		ExpectedInfected: d.ExpectedInfected,
		Mass:             d.Mass,
	}, nil
}

// Condition collapses subject onto a known status; see Model.Condition.
// The executor connections (and the local-executor stop function, if
// any) transfer to the returned model. A transport error mid-condition
// tears the whole cluster down before returning.
func (c *Cluster) Condition(subject int, positive bool) (Model, error) {
	out, err := c.m.Condition(subject, positive)
	if err != nil {
		// The driver already closed the connections; release the local
		// executors too — neither model is usable.
		c.runStop()
		return nil, err
	}
	if out == nil {
		return nil, nil
	}
	next := &Cluster{m: out, stop: c.stop}
	c.stop = nil
	return next, nil
}

// Snapshot gathers the full posterior to the driver. The snapshot is
// tagged KindCluster but carries a dense payload: it restores as a dense
// model (see FromSnapshot).
func (c *Cluster) Snapshot() (*Snapshot, error) {
	post, err := c.m.Fetch()
	if err != nil {
		return nil, err
	}
	return &Snapshot{
		Kind:     KindCluster,
		Risks:    c.m.Risks(),
		Response: c.m.Response(),
		Tests:    c.m.Tests(),
		Dense:    post,
	}, nil
}

// Close tears down the executor connections and, if this wrapper owns
// locally started executors, stops them. Idempotent.
func (c *Cluster) Close() error {
	c.m.Close()
	c.runStop()
	return nil
}

func (c *Cluster) runStop() {
	if c.stop != nil {
		c.stop()
		c.stop = nil
	}
}
