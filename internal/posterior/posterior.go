// Package posterior defines the one interface every posterior
// representation in the reproduction implements, and the three conforming
// backends: the dense engine-backed lattice (internal/lattice), the
// truncated sparse support (internal/sparse), and the distributed TCP
// cluster driver (internal/cluster).
//
// Sessions, studies, and checkpoints program against Model and stay
// backend-generic; a shared conformance suite (conformance_test.go)
// exercises every backend through the same scripted scenarios so a new
// representation only has to satisfy one contract. Every method that
// touches the posterior is fallible — the cluster backend can lose an
// executor mid-kernel — and the in-process backends simply never fail,
// so callers pay one uniform error path instead of a panic/trap bridge
// per transport.
package posterior

import (
	"fmt"

	"repro/internal/bitvec"
	"repro/internal/dilution"
	"repro/internal/engine"
	"repro/internal/lattice"
	"repro/internal/sparse"
)

// Kind names a posterior backend.
type Kind string

// The three backends.
const (
	KindDense   Kind = "dense"   // full 2^N lattice on the in-process engine
	KindSparse  Kind = "sparse"  // truncated support with an explicit error bound
	KindCluster Kind = "cluster" // sharded lattice across TCP executors
)

// ParseKind maps a flag value to a Kind. The empty string selects dense,
// matching Spec's zero value.
func ParseKind(s string) (Kind, error) {
	switch Kind(s) {
	case "", KindDense:
		return KindDense, nil
	case KindSparse:
		return KindSparse, nil
	case KindCluster:
		return KindCluster, nil
	}
	return "", fmt.Errorf("posterior: unknown backend %q (want dense, sparse, or cluster)", s)
}

// Model is a Bayesian posterior over the 2^N infection states of one
// cohort, abstracted over representation. It carries exactly the surface
// sessions need: the update/reduction kernels that drive classification
// and halving test selection, conditioning for sequential collapse, and a
// snapshot hook for checkpoints.
//
// Model is a superset of halving.Posterior, so any Model can be passed to
// halving.SelectOn directly. Implementations are not safe for concurrent
// use, matching the models they wrap.
type Model interface {
	// N returns the number of unclassified subjects.
	N() int
	// Kind identifies the backend.
	Kind() Kind
	// Risks returns the prior risk vector (a copy).
	Risks() []float64
	// Response returns the assay model updates use.
	Response() dilution.Response
	// Tests returns how many pooled-test outcomes have been absorbed.
	Tests() int

	// Update folds one observed pooled-test outcome into the posterior.
	Update(pool bitvec.Mask, y dilution.Outcome) error
	// Marginals returns each subject's posterior infection probability.
	Marginals() ([]float64, error)
	// NegMasses returns P(S ∩ cand = ∅ | data) for every candidate pool.
	NegMasses(cands []bitvec.Mask) ([]float64, error)
	// PrefixNegMasses returns the clean masses of every nested prefix of
	// the subject ordering (the halving selection scan).
	PrefixNegMasses(order []int) ([]float64, error)
	// Entropy returns the posterior entropy in bits.
	Entropy() (float64, error)
	// Summary computes marginals, entropy, MAP state, expected-infected,
	// and total posterior mass together in one fused pass — the per-round
	// digest sessions read between tests, at one sweep of memory traffic
	// instead of four.
	Summary() (*Summary, error)

	// Condition collapses subject onto a known status and returns the
	// reduced model over the remaining N−1 subjects. It returns (nil, nil)
	// — receiver unchanged and still usable — when the event has zero
	// posterior mass, the subject index is invalid, or only one subject
	// remains. On success, any underlying resources (e.g. cluster
	// connections) transfer to the returned model: the receiver must not
	// be used or Closed afterwards.
	Condition(subject int, positive bool) (Model, error)

	// Snapshot captures the posterior for checkpointing. The result is
	// independent of the model (safe to hold across further updates).
	Snapshot() (*Snapshot, error)

	// Close releases backend resources (connections, local executors).
	// In-process backends are no-ops. Close is idempotent.
	Close() error
}

// Summary is the fused one-pass posterior digest: the statistics every
// session round reads between tests, computed together so the posterior
// is swept once. Each field matches the corresponding single-statistic
// kernel bit-for-bit (same reduction shapes, same deterministic merges).
type Summary struct {
	// Marginals is each subject's posterior infection probability.
	Marginals []float64
	// EntropyBits is the Shannon entropy of the posterior in bits.
	EntropyBits float64
	// MAPState is the maximum-a-posteriori state (ties break to the
	// lowest state index) and MAPMass its posterior mass.
	MAPState bitvec.Mask
	MAPMass  float64
	// ExpectedInfected is E[|S|], the expected number of infected.
	ExpectedInfected float64
	// Mass is the total posterior mass (≈1 between updates).
	Mass float64
}

// Snapshot is a backend-tagged capture of a posterior, the unit
// checkpoints serialize. Exactly one payload family is populated: Dense
// for dense and cluster models (a cluster posterior is gathered to the
// driver and restores as a dense model), States/Mass/Eps/Pruned for
// sparse models.
type Snapshot struct {
	Kind     Kind
	Risks    []float64
	Response dilution.Response
	Tests    int

	// Dense / cluster payload: the full posterior in state order.
	Dense []float64

	// Sparse payload: the retained support and its truncation accounting.
	States []uint64
	Mass   []float64
	Eps    float64
	Pruned float64
}

// FromSnapshot rebuilds a Model from a snapshot. Dense and cluster
// snapshots restore as dense models on the given pool (resuming onto a
// live cluster is a deployment decision, not a checkpoint property);
// sparse snapshots restore as sparse models and ignore pool. parts is the
// dense partition count (<= 0 selects the engine default).
func FromSnapshot(pool *engine.Pool, snap *Snapshot, parts int) (Model, error) {
	if snap == nil {
		return nil, fmt.Errorf("posterior: nil snapshot")
	}
	switch snap.Kind {
	case KindDense, KindCluster:
		m, err := lattice.Restore(pool, lattice.Config{
			Risks:    snap.Risks,
			Response: snap.Response,
			Parts:    parts,
		}, snap.Dense, snap.Tests)
		if err != nil {
			return nil, err
		}
		return FromLattice(m), nil
	case KindSparse:
		m, err := sparse.Restore(sparse.Config{
			Risks:    snap.Risks,
			Response: snap.Response,
			Eps:      snap.Eps,
		}, snap.States, snap.Mass, snap.Pruned, snap.Tests)
		if err != nil {
			return nil, err
		}
		return FromSparse(m), nil
	}
	return nil, fmt.Errorf("posterior: unknown snapshot kind %q", snap.Kind)
}
