package posterior

import (
	"repro/internal/bitvec"
	"repro/internal/dilution"
	"repro/internal/sparse"
)

// Sparse adapts the truncated sparse model to the Model interface. Like
// Dense, its fallible methods never fail; the truncation error is
// tracked by the wrapped model's Pruned bound, not the error path.
type Sparse struct {
	m *sparse.Model
}

// NewSparse builds the sparse prior backend.
func NewSparse(cfg sparse.Config) (*Sparse, error) {
	m, err := sparse.New(cfg)
	if err != nil {
		return nil, err
	}
	return &Sparse{m: m}, nil
}

// FromSparse wraps an existing sparse model.
func FromSparse(m *sparse.Model) *Sparse { return &Sparse{m: m} }

// Sparse exposes the wrapped model for sparse-only consumers (support
// and pruned-bound diagnostics).
func (s *Sparse) Sparse() *sparse.Model { return s.m }

// N returns the cohort size.
func (s *Sparse) N() int { return s.m.N() }

// Kind returns KindSparse.
func (s *Sparse) Kind() Kind { return KindSparse }

// Risks returns the prior risk vector (a copy).
func (s *Sparse) Risks() []float64 { return s.m.Risks() }

// Response returns the assay model.
func (s *Sparse) Response() dilution.Response { return s.m.Response() }

// Tests returns how many outcomes have been absorbed.
func (s *Sparse) Tests() int { return s.m.Tests() }

// Update folds one pooled-test outcome into the posterior.
func (s *Sparse) Update(pool bitvec.Mask, y dilution.Outcome) error {
	return s.m.Update(pool, y)
}

// Marginals returns each subject's posterior infection probability.
func (s *Sparse) Marginals() ([]float64, error) { return s.m.Marginals(), nil }

// NegMasses scores every candidate pool.
func (s *Sparse) NegMasses(cands []bitvec.Mask) ([]float64, error) {
	return s.m.NegMasses(cands), nil
}

// PrefixNegMasses returns the nested-prefix clean masses.
func (s *Sparse) PrefixNegMasses(order []int) ([]float64, error) {
	return s.m.PrefixNegMasses(order), nil
}

// Entropy returns the posterior entropy in bits over the retained support.
func (s *Sparse) Entropy() (float64, error) { return s.m.Entropy(), nil }

// Summary returns the fused one-pass digest over the retained support.
func (s *Sparse) Summary() (*Summary, error) {
	d := s.m.Summary()
	return &Summary{
		Marginals:        d.Marginals,
		EntropyBits:      d.EntropyBits,
		MAPState:         d.MAPState,
		MAPMass:          d.MAPMass,
		ExpectedInfected: d.ExpectedInfected,
		Mass:             d.Mass,
	}, nil
}

// Condition collapses subject onto a known status; see Model.Condition.
func (s *Sparse) Condition(subject int, positive bool) (Model, error) {
	out := s.m.Condition(subject, positive)
	if out == nil {
		return nil, nil
	}
	return FromSparse(out), nil
}

// Snapshot captures the retained support and its truncation accounting.
func (s *Sparse) Snapshot() (*Snapshot, error) {
	return &Snapshot{
		Kind:     KindSparse,
		Risks:    s.m.Risks(),
		Response: s.m.Response(),
		Tests:    s.m.Tests(),
		States:   s.m.SupportStates(),
		Mass:     s.m.SupportMass(),
		Eps:      s.m.Eps(),
		Pruned:   s.m.Pruned(),
	}, nil
}

// Close is a no-op: the sparse model holds no external resources.
func (s *Sparse) Close() error { return nil }
