package posterior

import (
	"repro/internal/bitvec"
	"repro/internal/dilution"
	"repro/internal/obs"
)

// instrumented decorates a Model with per-operation latency histograms
// and op/error counters, tagged by backend. It adds no behavior: every
// call delegates to the wrapped model, and Condition re-wraps its result
// so instrumentation survives sequential collapse.
type instrumented struct {
	m   Model
	reg *obs.Registry

	update, marginals, negMasses, prefix, entropy, summary, condition *obs.Histogram
	errs                                                              *obs.Counter
}

// Instrument wraps m so that Update, Marginals, NegMasses,
// PrefixNegMasses, Entropy, and Condition report latency into
// sbgt_posterior_op_seconds{backend,op} and failures into
// sbgt_posterior_op_errors_total{backend}. A nil registry (or nil model)
// returns m unchanged, so callers can wire instrumentation
// unconditionally. Wrapping an already-instrumented model re-points it at
// the new registry instead of stacking decorators.
func Instrument(m Model, reg *obs.Registry) Model {
	if m == nil || reg == nil {
		return m
	}
	if w, ok := m.(*instrumented); ok {
		m = w.m
	}
	backend := obs.L("backend", string(m.Kind()))
	hist := func(op string) *obs.Histogram {
		return reg.Histogram("sbgt_posterior_op_seconds", nil, backend, obs.L("op", op))
	}
	return &instrumented{
		m:         m,
		reg:       reg,
		update:    hist("update"),
		marginals: hist("marginals"),
		negMasses: hist("neg_masses"),
		prefix:    hist("prefix_neg_masses"),
		entropy:   hist("entropy"),
		summary:   hist("summary"),
		condition: hist("condition"),
		errs:      reg.Counter("sbgt_posterior_op_errors_total", backend),
	}
}

// Base strips any instrumentation decorators from m, returning the
// underlying backend model. Callers that type-assert on concrete backend
// capabilities (e.g. the dense lattice accessor) should assert on
// Base(m).
func Base(m Model) Model {
	for {
		u, ok := m.(interface{ Unwrap() Model })
		if !ok {
			return m
		}
		m = u.Unwrap()
	}
}

// Unwrap exposes the wrapped model, making the decorator transparent to
// Base and errors.As-style capability probes.
func (w *instrumented) Unwrap() Model { return w.m }

func (w *instrumented) N() int                      { return w.m.N() }
func (w *instrumented) Kind() Kind                  { return w.m.Kind() }
func (w *instrumented) Risks() []float64            { return w.m.Risks() }
func (w *instrumented) Response() dilution.Response { return w.m.Response() }
func (w *instrumented) Tests() int                  { return w.m.Tests() }

// fail counts an error without branching at every call site.
func (w *instrumented) fail(err error) error {
	if err != nil {
		w.errs.Inc()
	}
	return err
}

func (w *instrumented) Update(pool bitvec.Mask, y dilution.Outcome) error {
	stop := w.update.Time()
	defer stop()
	return w.fail(w.m.Update(pool, y))
}

func (w *instrumented) Marginals() ([]float64, error) {
	stop := w.marginals.Time()
	defer stop()
	v, err := w.m.Marginals()
	return v, w.fail(err)
}

func (w *instrumented) NegMasses(cands []bitvec.Mask) ([]float64, error) {
	stop := w.negMasses.Time()
	defer stop()
	v, err := w.m.NegMasses(cands)
	return v, w.fail(err)
}

func (w *instrumented) PrefixNegMasses(order []int) ([]float64, error) {
	stop := w.prefix.Time()
	defer stop()
	v, err := w.m.PrefixNegMasses(order)
	return v, w.fail(err)
}

func (w *instrumented) Entropy() (float64, error) {
	stop := w.entropy.Time()
	defer stop()
	v, err := w.m.Entropy()
	return v, w.fail(err)
}

func (w *instrumented) Summary() (*Summary, error) {
	stop := w.summary.Time()
	defer stop()
	v, err := w.m.Summary()
	return v, w.fail(err)
}

func (w *instrumented) Condition(subject int, positive bool) (Model, error) {
	stop := w.condition.Time()
	defer stop()
	next, err := w.m.Condition(subject, positive)
	if err != nil {
		return nil, w.fail(err)
	}
	if next == nil {
		// Zero-mass event or degenerate collapse: the receiver is unchanged
		// and still instrumented.
		return nil, nil
	}
	return Instrument(next, w.reg), nil
}

func (w *instrumented) Snapshot() (*Snapshot, error) {
	s, err := w.m.Snapshot()
	return s, w.fail(err)
}

func (w *instrumented) Close() error { return w.m.Close() }
