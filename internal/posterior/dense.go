package posterior

import (
	"repro/internal/bitvec"
	"repro/internal/dilution"
	"repro/internal/engine"
	"repro/internal/lattice"
)

// Dense adapts the full in-process lattice model to the Model interface.
// Every fallible method simply never fails.
type Dense struct {
	m *lattice.Model
}

// NewDense builds the dense prior backend on the given pool.
func NewDense(pool *engine.Pool, cfg lattice.Config) (*Dense, error) {
	m, err := lattice.New(pool, cfg)
	if err != nil {
		return nil, err
	}
	return &Dense{m: m}, nil
}

// FromLattice wraps an existing dense model.
func FromLattice(m *lattice.Model) *Dense { return &Dense{m: m} }

// Lattice exposes the wrapped dense model for dense-only consumers (the
// look-ahead selector, ablation benches). Callers that need it should
// type-assert for `interface{ Lattice() *lattice.Model }`.
func (d *Dense) Lattice() *lattice.Model { return d.m }

// N returns the cohort size.
func (d *Dense) N() int { return d.m.N() }

// Kind returns KindDense.
func (d *Dense) Kind() Kind { return KindDense }

// Risks returns the prior risk vector (a copy).
func (d *Dense) Risks() []float64 { return d.m.Risks() }

// Response returns the assay model.
func (d *Dense) Response() dilution.Response { return d.m.Response() }

// Tests returns how many outcomes have been absorbed.
func (d *Dense) Tests() int { return d.m.Tests() }

// Update folds one pooled-test outcome into the posterior.
func (d *Dense) Update(pool bitvec.Mask, y dilution.Outcome) error {
	return d.m.Update(pool, y)
}

// Marginals returns each subject's posterior infection probability.
func (d *Dense) Marginals() ([]float64, error) { return d.m.Marginals(), nil }

// NegMasses scores every candidate pool.
func (d *Dense) NegMasses(cands []bitvec.Mask) ([]float64, error) {
	return d.m.NegMasses(cands), nil
}

// PrefixNegMasses returns the nested-prefix clean masses.
func (d *Dense) PrefixNegMasses(order []int) ([]float64, error) {
	return d.m.PrefixNegMasses(order), nil
}

// Entropy returns the posterior entropy in bits.
func (d *Dense) Entropy() (float64, error) { return d.m.Entropy(), nil }

// Summary returns the fused one-pass posterior digest.
func (d *Dense) Summary() (*Summary, error) {
	s := d.m.Summary()
	return &Summary{
		Marginals:        s.Marginals,
		EntropyBits:      s.EntropyBits,
		MAPState:         s.MAPState,
		MAPMass:          s.MAPMass,
		ExpectedInfected: s.ExpectedInfected,
		Mass:             s.Mass,
	}, nil
}

// Condition collapses subject onto a known status; see Model.Condition.
// The interface transfers ownership on success, so the dense backend uses
// the in-place collapse: the lattice storage is reused rather than
// reallocated, and on rejection (nil, nil) the receiver is untouched.
func (d *Dense) Condition(subject int, positive bool) (Model, error) {
	out := d.m.ConditionInPlace(subject, positive)
	if out == nil {
		return nil, nil
	}
	return FromLattice(out), nil
}

// Snapshot captures the full posterior in state order.
func (d *Dense) Snapshot() (*Snapshot, error) {
	return &Snapshot{
		Kind:     KindDense,
		Risks:    d.m.Risks(),
		Response: d.m.Response(),
		Tests:    d.m.Tests(),
		Dense:    d.m.Posterior().Slice(),
	}, nil
}

// Close is a no-op: the engine pool belongs to the caller.
func (d *Dense) Close() error { return nil }
