package posterior

import (
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/dilution"
	"repro/internal/engine"
	"repro/internal/lattice"
	"repro/internal/obs"
	"repro/internal/sparse"
)

// Spec describes which backend to open and with what knobs. The zero
// value selects the dense backend with engine defaults, so existing
// callers that never mention a backend keep their behavior.
type Spec struct {
	// Kind selects the backend; "" means dense.
	Kind Kind

	// Parts is the dense partition count (<= 0 selects the engine
	// default). Dense only.
	Parts int

	// Eps and MaxStates configure the sparse truncation (see
	// sparse.Config). Sparse only.
	Eps       float64
	MaxStates int

	// Addrs lists executor addresses to dial. Cluster only. When empty
	// and LocalExecutors > 0, that many in-process executors are started
	// on loopback ports and owned by the returned model (Close stops
	// them).
	Addrs          []string
	LocalExecutors int
	// ExecWorkers is each local executor's worker-pool size (<= 0 selects
	// GOMAXPROCS).
	ExecWorkers int
	// DialTimeout bounds each executor's dial + prior build (<= 0 means
	// no deadline).
	DialTimeout time.Duration
	// DialAttempts is how many times each executor is dialed before the
	// fan-out fails (<= 0 selects 1). Cluster only.
	DialAttempts int

	// Obs, when non-nil, instruments the opened model with
	// posterior.Instrument and wires backend-internal metrics: cluster RPC
	// latency, bytes on the wire, dial retries, and (for local executors)
	// executor pool and shard series.
	Obs *obs.Registry

	// Tracer, when non-nil, records driver-side RPC spans (and the
	// executor spans shipped back in response trailers) for the cluster
	// backend. The other backends run in-process and are traced by the
	// session's own spans.
	Tracer *obs.Tracer
}

// Open builds the prior posterior for the spec. pool is used by the
// dense backend only (sparse is single-threaded, cluster executors own
// their pools); it may be nil for the other kinds.
func (s Spec) Open(pool *engine.Pool, risks []float64, resp dilution.Response) (Model, error) {
	kind, err := ParseKind(string(s.Kind))
	if err != nil {
		return nil, err
	}
	var m Model
	switch kind {
	case KindDense:
		m, err = NewDense(pool, lattice.Config{Risks: risks, Response: resp, Parts: s.Parts})
	case KindSparse:
		m, err = NewSparse(sparse.Config{Risks: risks, Response: resp, Eps: s.Eps, MaxStates: s.MaxStates})
	case KindCluster:
		addrs := s.Addrs
		var stop func()
		if len(addrs) == 0 {
			if s.LocalExecutors <= 0 {
				return nil, fmt.Errorf("posterior: cluster backend needs executor addresses or LocalExecutors > 0")
			}
			addrs, stop, err = cluster.StartLocalObs(s.LocalExecutors, s.ExecWorkers, s.Obs)
			if err != nil {
				return nil, err
			}
		}
		var cm *cluster.Model
		cm, err = cluster.DialWith(addrs, risks, resp, cluster.DialOptions{
			Timeout:  s.DialTimeout,
			Attempts: s.DialAttempts,
			Obs:      s.Obs,
			Tracer:   s.Tracer,
		})
		if err != nil {
			if stop != nil {
				stop()
			}
			return nil, err
		}
		m = FromCluster(cm, stop)
	default:
		return nil, fmt.Errorf("posterior: unknown backend %q", kind)
	}
	if err != nil {
		return nil, err
	}
	return Instrument(m, s.Obs), nil
}
