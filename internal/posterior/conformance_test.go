// Conformance suite for posterior backends: every Model implementation
// must pass the same scripted scenarios — kernel agreement against the
// dense reference, Condition ownership semantics, snapshot round-trips,
// and a full classification campaign through core.Session including a
// mid-campaign checkpoint save/resume. Adding a backend means adding one
// entry to backends() and making the suite green.
//
// The tests live in package posterior_test so they can drive the
// backends through core.Session without an import cycle.
package posterior_test

import (
	"bytes"
	"math"
	"testing"
	"time"

	"repro/internal/bitvec"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dilution"
	"repro/internal/engine"
	"repro/internal/lattice"
	"repro/internal/posterior"
	"repro/internal/rng"
	"repro/internal/sparse"
	"repro/internal/workload"
)

// kernelTol bounds the disagreement between any backend and the dense
// reference on the reduction kernels. Dense and cluster differ only in
// summation association order (the cluster merges per-executor partials
// in rank order); sparse additionally truncates at conformanceEps, whose
// discarded mass is far below this tolerance on the test cohorts.
const kernelTol = 1e-9

// conformanceEps is the sparse truncation threshold used throughout the
// suite: tight enough that truncation error stays below kernelTol.
const conformanceEps = 1e-12

// backendCase opens one backend over the given prior. Each call returns
// a fresh model; the test owns it (Close or hand to a session).
type backendCase struct {
	kind posterior.Kind
	open func(t *testing.T, risks []float64, resp dilution.Response) posterior.Model
}

func backends(t *testing.T) []backendCase {
	t.Helper()
	pool := engine.NewPool(2)
	t.Cleanup(pool.Close)
	open := func(spec posterior.Spec) func(*testing.T, []float64, dilution.Response) posterior.Model {
		return func(t *testing.T, risks []float64, resp dilution.Response) posterior.Model {
			t.Helper()
			m, err := spec.Open(pool, risks, resp)
			if err != nil {
				t.Fatalf("open %s: %v", spec.Kind, err)
			}
			return m
		}
	}
	return []backendCase{
		{posterior.KindDense, open(posterior.Spec{Kind: posterior.KindDense})},
		{posterior.KindSparse, open(posterior.Spec{Kind: posterior.KindSparse, Eps: conformanceEps})},
		{posterior.KindCluster, open(posterior.Spec{
			Kind:           posterior.KindCluster,
			LocalExecutors: 2,
			ExecWorkers:    1,
			DialTimeout:    5 * time.Second,
		})},
	}
}

var (
	conformanceRisks = []float64{0.05, 0.2, 0.1, 0.3, 0.15, 0.08, 0.12, 0.07}
	conformanceResp  = dilution.Binary{Sens: 0.95, Spec: 0.99}
)

// script is the fixed update sequence every kernel test replays.
var script = []struct {
	pool bitvec.Mask
	y    dilution.Outcome
}{
	{bitvec.FromIndices(0, 1, 2, 3), dilution.Positive},
	{bitvec.FromIndices(0, 1), dilution.Negative},
	{bitvec.FromIndices(2, 4, 6), dilution.Positive},
	{bitvec.FromIndices(5), dilution.Negative},
}

func replayScript(t *testing.T, m posterior.Model) {
	t.Helper()
	for i, s := range script {
		if err := m.Update(s.pool, s.y); err != nil {
			t.Fatalf("script update %d: %v", i, err)
		}
	}
}

// denseReference computes the ground-truth kernels on a plain lattice.
func denseReference(t *testing.T) *lattice.Model {
	t.Helper()
	pool := engine.NewPool(2)
	t.Cleanup(pool.Close)
	m, err := lattice.New(pool, lattice.Config{Risks: conformanceRisks, Response: conformanceResp})
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range script {
		if err := m.Update(s.pool, s.y); err != nil {
			t.Fatalf("reference update %d: %v", i, err)
		}
	}
	return m
}

func maxAbsDiff(a, b []float64) float64 {
	d := 0.0
	for i := range a {
		if v := math.Abs(a[i] - b[i]); v > d {
			d = v
		}
	}
	return d
}

// TestConformanceKernels replays the update script on every backend and
// checks each reduction kernel against the dense reference.
func TestConformanceKernels(t *testing.T) {
	ref := denseReference(t)
	cands := []bitvec.Mask{
		bitvec.FromIndices(0),
		bitvec.FromIndices(1, 2),
		bitvec.FromIndices(3, 4, 5),
		bitvec.FromIndices(0, 6, 7),
	}
	order := []int{3, 1, 5, 0, 7}
	for _, bc := range backends(t) {
		bc := bc
		t.Run(string(bc.kind), func(t *testing.T) {
			m := bc.open(t, conformanceRisks, conformanceResp)
			defer m.Close() //lint:allow errcheck test teardown; assertions cover the live model
			if m.Kind() != bc.kind {
				t.Fatalf("Kind() = %s, want %s", m.Kind(), bc.kind)
			}
			if m.N() != len(conformanceRisks) {
				t.Fatalf("N() = %d, want %d", m.N(), len(conformanceRisks))
			}
			if got := m.Risks(); maxAbsDiff(got, conformanceRisks) > 0 {
				t.Fatalf("Risks() = %v, want the prior", got)
			}
			if m.Tests() != 0 {
				t.Fatalf("fresh model reports %d tests", m.Tests())
			}
			replayScript(t, m)
			if m.Tests() != len(script) {
				t.Fatalf("Tests() = %d after %d updates", m.Tests(), len(script))
			}

			marg, err := m.Marginals()
			if err != nil {
				t.Fatal(err)
			}
			if d := maxAbsDiff(marg, ref.Marginals()); d > kernelTol {
				t.Fatalf("marginals off by %v", d)
			}
			neg, err := m.NegMasses(cands)
			if err != nil {
				t.Fatal(err)
			}
			if d := maxAbsDiff(neg, ref.NegMasses(cands)); d > kernelTol {
				t.Fatalf("neg masses off by %v", d)
			}
			pre, err := m.PrefixNegMasses(order)
			if err != nil {
				t.Fatal(err)
			}
			if d := maxAbsDiff(pre, ref.PrefixNegMasses(order)); d > kernelTol {
				t.Fatalf("prefix neg masses off by %v", d)
			}
			ent, err := m.Entropy()
			if err != nil {
				t.Fatal(err)
			}
			if d := math.Abs(ent - ref.Entropy()); d > kernelTol {
				t.Fatalf("entropy off by %v", d)
			}

			// The fused digest must agree with the dense single-statistic
			// kernels field by field. The MAP state is compared exactly:
			// this posterior has a unique argmax, so every backend must
			// land on the same state.
			sum, err := m.Summary()
			if err != nil {
				t.Fatal(err)
			}
			if d := maxAbsDiff(sum.Marginals, ref.Marginals()); d > kernelTol {
				t.Fatalf("fused marginals off by %v", d)
			}
			if d := math.Abs(sum.EntropyBits - ref.Entropy()); d > kernelTol {
				t.Fatalf("fused entropy off by %v", d)
			}
			refState, refMass := ref.MAP()
			if sum.MAPState != refState {
				t.Fatalf("fused MAP state %v, want %v", sum.MAPState, refState)
			}
			if d := math.Abs(sum.MAPMass - refMass); d > kernelTol {
				t.Fatalf("fused MAP mass off by %v", d)
			}
			if d := math.Abs(sum.ExpectedInfected - ref.ExpectedInfected()); d > kernelTol {
				t.Fatalf("fused E[|S|] off by %v", d)
			}
			if d := math.Abs(sum.Mass - ref.Mass()); d > kernelTol {
				t.Fatalf("fused mass off by %v", d)
			}
		})
	}
}

// TestConformanceCondition checks the Condition contract on every
// backend: invalid subjects return (nil, nil) with the receiver still
// usable, and a valid collapse transfers to a reduced model whose
// marginals match the dense reference conditioned the same way.
func TestConformanceCondition(t *testing.T) {
	// Reference: condition subject 5 negative on the dense lattice.
	ref := denseReference(t)
	refCond := ref.Condition(5, false)
	if refCond == nil {
		t.Fatal("reference condition collapsed to nil")
	}
	for _, bc := range backends(t) {
		bc := bc
		t.Run(string(bc.kind), func(t *testing.T) {
			m := bc.open(t, conformanceRisks, conformanceResp)
			replayScript(t, m)

			// Out-of-range subjects: (nil, nil), receiver unharmed.
			for _, bad := range []int{-1, m.N()} {
				red, err := m.Condition(bad, true)
				if err != nil || red != nil {
					t.Fatalf("Condition(%d) = %v, %v; want nil, nil", bad, red, err)
				}
			}
			if _, err := m.Marginals(); err != nil {
				t.Fatalf("receiver unusable after rejected condition: %v", err)
			}

			red, err := m.Condition(5, false)
			if err != nil {
				t.Fatal(err)
			}
			if red == nil {
				t.Fatal("valid condition returned nil model")
			}
			defer red.Close() //lint:allow errcheck test teardown; assertions cover the live model
			if red.N() != len(conformanceRisks)-1 {
				t.Fatalf("reduced N = %d, want %d", red.N(), len(conformanceRisks)-1)
			}
			marg, err := red.Marginals()
			if err != nil {
				t.Fatal(err)
			}
			if d := maxAbsDiff(marg, refCond.Marginals()); d > kernelTol {
				t.Fatalf("conditioned marginals off by %v", d)
			}
		})
	}
}

// TestConformanceSnapshotRoundTrip snapshots every backend mid-script
// and restores through FromSnapshot: the restored marginals must match.
// Cluster snapshots are documented to restore as dense models.
func TestConformanceSnapshotRoundTrip(t *testing.T) {
	pool := engine.NewPool(2)
	t.Cleanup(pool.Close)
	for _, bc := range backends(t) {
		bc := bc
		t.Run(string(bc.kind), func(t *testing.T) {
			m := bc.open(t, conformanceRisks, conformanceResp)
			defer m.Close() //lint:allow errcheck test teardown; assertions cover the live model
			replayScript(t, m)
			snap, err := m.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			if snap.Kind != bc.kind {
				t.Fatalf("snapshot kind %s, want %s", snap.Kind, bc.kind)
			}
			if snap.Tests != len(script) {
				t.Fatalf("snapshot records %d tests, want %d", snap.Tests, len(script))
			}
			restored, err := posterior.FromSnapshot(pool, snap, 0)
			if err != nil {
				t.Fatal(err)
			}
			defer restored.Close() //lint:allow errcheck test teardown; assertions cover the live model
			wantKind := bc.kind
			if wantKind == posterior.KindCluster {
				wantKind = posterior.KindDense
			}
			if restored.Kind() != wantKind {
				t.Fatalf("restored kind %s, want %s", restored.Kind(), wantKind)
			}
			origMarg, err := m.Marginals()
			if err != nil {
				t.Fatal(err)
			}
			gotMarg, err := restored.Marginals()
			if err != nil {
				t.Fatal(err)
			}
			if d := maxAbsDiff(gotMarg, origMarg); d > kernelTol {
				t.Fatalf("restored marginals off by %v", d)
			}
			if restored.Tests() != m.Tests() {
				t.Fatalf("restored tests %d, want %d", restored.Tests(), m.Tests())
			}
		})
	}
}

// campaign runs a full classification session on the given model with a
// deterministic (ideal-assay) oracle and returns the result.
func campaign(t *testing.T, model posterior.Model, truth bitvec.Mask) *core.Result {
	t.Helper()
	sess, err := core.NewSessionOn(model, core.Config{})
	if err != nil {
		model.Close() //lint:allow errcheck teardown on a constructor failure path; the construction error wins
		t.Fatal(err)
	}
	res, err := sess.Run(idealOracle(truth))
	if err != nil {
		sess.Close() //lint:allow errcheck teardown after a failed run; the run error wins
		t.Fatal(err)
	}
	return res
}

// idealOracle answers pooled tests from the fixed truth with the ideal
// assay: positive iff the pool intersects the infected set. Fully
// deterministic, so replays across backends and resumes are identical.
func idealOracle(truth bitvec.Mask) core.TestFunc {
	return func(pool bitvec.Mask) dilution.Outcome {
		if truth.IntersectCount(pool) > 0 {
			return dilution.Positive
		}
		return dilution.Negative
	}
}

// sessionPriorRisks is the cohort used for the session-level tests:
// moderately sized, non-uniform so halving has no exact ties.
func sessionPriorRisks() []float64 {
	return []float64{0.04, 0.21, 0.09, 0.33, 0.14, 0.07, 0.11, 0.06, 0.18, 0.05}
}

// TestConformanceSessionCampaign drives a complete campaign through
// core.Session on every backend. With the deterministic ideal oracle the
// three backends must classify every subject identically.
func TestConformanceSessionCampaign(t *testing.T) {
	risks := sessionPriorRisks()
	truth := workload.Draw(risks, rng.New(7)).Truth
	var want *core.Result
	for _, bc := range backends(t) {
		bc := bc
		t.Run(string(bc.kind), func(t *testing.T) {
			model := bc.open(t, risks, dilution.Ideal{})
			res := campaign(t, model, truth)
			if !res.Converged {
				t.Fatal("campaign did not converge")
			}
			if got := res.Positives(); got != truth {
				t.Fatalf("classified %v, truth %v", got, truth)
			}
			if want == nil {
				want = res
				return
			}
			if res.Tests != want.Tests || res.Stages != want.Stages {
				t.Fatalf("campaign shape tests=%d stages=%d, dense reference tests=%d stages=%d",
					res.Tests, res.Stages, want.Tests, want.Stages)
			}
			for i, c := range res.Classifications {
				w := want.Classifications[i]
				if c.Status != w.Status || c.Stage != w.Stage {
					t.Fatalf("subject %d: %s@%d, dense reference %s@%d", i, c.Status, c.Stage, w.Status, w.Stage)
				}
				if math.Abs(c.Marginal-w.Marginal) > 1e-6 {
					t.Fatalf("subject %d decision marginal %v, dense reference %v", i, c.Marginal, w.Marginal)
				}
			}
		})
	}
}

// TestConformanceSessionCheckpoint checkpoints a session mid-campaign on
// every backend, resumes it, and checks the resumed campaign finishes
// exactly like the uninterrupted one. Cluster checkpoints resume on the
// dense backend by design.
func TestConformanceSessionCheckpoint(t *testing.T) {
	pool := engine.NewPool(2)
	t.Cleanup(pool.Close)
	risks := sessionPriorRisks()
	truth := workload.Draw(risks, rng.New(11)).Truth
	for _, bc := range backends(t) {
		bc := bc
		t.Run(string(bc.kind), func(t *testing.T) {
			// The uninterrupted run is the reference.
			want := campaign(t, bc.open(t, risks, dilution.Ideal{}), truth)

			sess, err := core.NewSessionOn(bc.open(t, risks, dilution.Ideal{}), core.Config{})
			if err != nil {
				t.Fatal(err)
			}
			test := idealOracle(truth)
			for i := 0; i < 2 && !sess.Done(); i++ {
				if err := sess.Step(test); err != nil {
					t.Fatal(err)
				}
			}
			var buf bytes.Buffer
			if err := sess.SaveSession(&buf); err != nil {
				t.Fatal(err)
			}
			if err := sess.Close(); err != nil {
				t.Fatal(err)
			}
			resumed, err := core.LoadSession(&buf, pool, nil)
			if err != nil {
				t.Fatal(err)
			}
			if resumed.Done() {
				t.Fatal("resumed session already done")
			}
			wantKind := bc.kind
			if wantKind == posterior.KindCluster {
				wantKind = posterior.KindDense // documented resume behavior
			}
			if got := resumed.Model().Kind(); got != wantKind {
				t.Fatalf("resumed backend %s, want %s", got, wantKind)
			}
			res, err := resumed.Run(test)
			if err != nil {
				t.Fatal(err)
			}
			if res.Tests != want.Tests || res.Stages != want.Stages {
				t.Fatalf("resumed run tests=%d stages=%d, uninterrupted tests=%d stages=%d",
					res.Tests, res.Stages, want.Tests, want.Stages)
			}
			if got := res.Positives(); got != want.Positives() {
				t.Fatalf("resumed positives %v, uninterrupted %v", got, want.Positives())
			}
			for i, c := range res.Classifications {
				w := want.Classifications[i]
				if c.Status != w.Status || c.Stage != w.Stage {
					t.Fatalf("subject %d: %s@%d, uninterrupted %s@%d", i, c.Status, c.Stage, w.Status, w.Stage)
				}
			}
		})
	}
}

// TestMaxSubjectsConsistency pins the per-representation cohort bounds
// and checks every constructor rejects out-of-range cohorts with an
// error (never a panic or a silent truncation).
func TestMaxSubjectsConsistency(t *testing.T) {
	if lattice.MaxSubjects != 30 || cluster.MaxSubjects != 30 {
		t.Fatalf("dense/cluster bounds diverged: lattice %d, cluster %d", lattice.MaxSubjects, cluster.MaxSubjects)
	}
	if sparse.MaxSubjects != bitvec.MaxSubjects {
		t.Fatalf("sparse bound %d, state-mask bound %d", sparse.MaxSubjects, bitvec.MaxSubjects)
	}
	resp := dilution.Ideal{}
	over := func(n int) []float64 {
		rs := make([]float64, n)
		for i := range rs {
			rs[i] = 0.05
		}
		return rs
	}
	pool := engine.NewPool(1)
	t.Cleanup(pool.Close)
	if _, err := lattice.New(pool, lattice.Config{Risks: over(lattice.MaxSubjects + 1), Response: resp}); err == nil {
		t.Error("lattice accepted an over-limit cohort")
	}
	// Dial validates the cohort before touching the network, so a bogus
	// address proves the rejection happens up front.
	if _, err := cluster.Dial([]string{"127.0.0.1:1"}, over(cluster.MaxSubjects+1), resp, time.Second); err == nil {
		t.Error("cluster accepted an over-limit cohort")
	}
	if _, err := sparse.New(sparse.Config{Risks: over(sparse.MaxSubjects + 1), Response: resp, Eps: 1e-9}); err == nil {
		t.Error("sparse accepted an over-limit cohort")
	}
	// The same rejections surface through the backend spec.
	specs := []posterior.Spec{
		{Kind: posterior.KindDense},
		{Kind: posterior.KindCluster, Addrs: []string{"127.0.0.1:1"}, DialTimeout: time.Second},
		{Kind: posterior.KindSparse, Eps: 1e-9},
	}
	limits := []int{lattice.MaxSubjects, cluster.MaxSubjects, sparse.MaxSubjects}
	for i, spec := range specs {
		if _, err := spec.Open(pool, over(limits[i]+1), resp); err == nil {
			t.Errorf("spec %s accepted an over-limit cohort", spec.Kind)
		}
	}
}
