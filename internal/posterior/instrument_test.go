package posterior_test

import (
	"testing"

	"repro/internal/bitvec"
	"repro/internal/core"
	"repro/internal/dilution"
	"repro/internal/obs"
	"repro/internal/posterior"
)

// opCount sums a backend's sbgt_posterior_op_seconds observations for one
// op across the snapshot.
func opCount(snap *obs.Snapshot, backend, op string) uint64 {
	var total uint64
	for _, h := range snap.Histograms {
		if h.Name != "sbgt_posterior_op_seconds" {
			continue
		}
		match := 0
		for _, l := range h.Labels {
			if (l.Key == "backend" && l.Value == backend) || (l.Key == "op" && l.Value == op) {
				match++
			}
		}
		if match == 2 {
			total += h.Count
		}
	}
	return total
}

// TestInstrumentTransparent wraps every backend, replays the script, and
// checks the decorator changes no results while counting every op.
func TestInstrumentTransparent(t *testing.T) {
	ref := denseReference(t)
	refMarg := ref.Marginals()
	for _, bc := range backends(t) {
		t.Run(string(bc.kind), func(t *testing.T) {
			reg := obs.NewRegistry()
			m := posterior.Instrument(bc.open(t, conformanceRisks, conformanceResp), reg)
			defer m.Close()

			if got := posterior.Base(m).Kind(); got != bc.kind {
				t.Fatalf("Base unwrapped to kind %s", got)
			}
			if double := posterior.Instrument(m, reg); posterior.Base(double) != posterior.Base(m) {
				t.Fatal("double instrumentation stacked decorators")
			}

			replayScript(t, m)
			marg, err := m.Marginals()
			if err != nil {
				t.Fatal(err)
			}
			if d := maxAbsDiff(marg, refMarg); d > kernelTol {
				t.Fatalf("instrumented marginals diverge by %g", d)
			}
			if _, err := m.Entropy(); err != nil {
				t.Fatal(err)
			}
			if _, err := m.NegMasses([]bitvec.Mask{bitvec.FromIndices(0, 1)}); err != nil {
				t.Fatal(err)
			}

			snap := reg.Snapshot()
			b := string(bc.kind)
			if got := opCount(snap, b, "update"); got != uint64(len(script)) {
				t.Errorf("update count = %d, want %d", got, len(script))
			}
			if got := opCount(snap, b, "marginals"); got == 0 {
				t.Error("marginals not counted")
			}
			if got := opCount(snap, b, "entropy"); got == 0 {
				t.Error("entropy not counted")
			}
			if got := opCount(snap, b, "neg_masses"); got == 0 {
				t.Error("neg_masses not counted")
			}
		})
	}
}

// TestInstrumentConditionRewraps checks instrumentation survives the
// sequential collapse that replaces the model.
func TestInstrumentConditionRewraps(t *testing.T) {
	reg := obs.NewRegistry()
	for _, bc := range backends(t) {
		t.Run(string(bc.kind), func(t *testing.T) {
			m := posterior.Instrument(bc.open(t, conformanceRisks, conformanceResp), reg)
			next, err := m.Condition(0, false)
			if err != nil {
				t.Fatal(err)
			}
			if next == nil {
				t.Fatal("condition on prior returned nil")
			}
			defer next.Close()
			if next == posterior.Base(next) {
				t.Fatal("conditioned model lost instrumentation")
			}
			if err := next.Update(bitvec.FromIndices(0, 1), dilution.Positive); err != nil {
				t.Fatal(err)
			}
			if got := opCount(reg.Snapshot(), string(bc.kind), "condition"); got == 0 {
				t.Error("condition not counted")
			}
		})
	}
}

// TestSessionObs runs a campaign with Config.Obs/Tracer wired and checks
// session stage metrics, per-stage timings, and posterior op series all
// materialize.
func TestSessionObs(t *testing.T) {
	for _, bc := range backends(t) {
		t.Run(string(bc.kind), func(t *testing.T) {
			reg := obs.NewRegistry()
			tr := obs.NewTracer(256)
			model := bc.open(t, sessionPriorRisks(), conformanceResp)
			s, err := core.NewSessionOn(model, core.Config{
				Obs:    reg,
				Tracer: tr,
			})
			if err != nil {
				t.Fatal(err)
			}
			truth := bitvec.FromIndices(1)
			res, err := s.Run(idealOracle(truth))
			if err != nil {
				t.Fatal(err)
			}
			if len(res.StageTimings) != res.Stages {
				t.Fatalf("recorded %d stage timings over %d stages", len(res.StageTimings), res.Stages)
			}
			for i, st := range res.StageTimings {
				if st.Stage != i+1 {
					t.Errorf("timing %d labeled stage %d", i, st.Stage)
				}
			}

			snap := reg.Snapshot()
			var stages, tests uint64
			for _, c := range snap.Counters {
				switch c.Name {
				case "sbgt_session_stages_total":
					stages = c.Value
				case "sbgt_session_tests_total":
					tests = c.Value
				}
			}
			if stages != uint64(res.Stages) {
				t.Errorf("stage counter = %d, want %d", stages, res.Stages)
			}
			if tests != uint64(res.Tests) {
				t.Errorf("test counter = %d, want %d", tests, res.Tests)
			}
			phases := map[string]bool{}
			for _, h := range snap.Histograms {
				if h.Name != "sbgt_session_stage_seconds" {
					continue
				}
				for _, l := range h.Labels {
					if l.Key == "phase" && h.Count > 0 {
						phases[l.Value] = true
					}
				}
			}
			for _, want := range []string{"select", "test", "update", "classify"} {
				if !phases[want] {
					t.Errorf("phase %q has no observations", want)
				}
			}
			if got := opCount(snap, string(bc.kind), "update"); got == 0 {
				t.Error("session did not report posterior update latency")
			}

			spans := tr.Drain()
			names := map[string]int{}
			for _, sp := range spans {
				names[sp.Name]++
			}
			if names["stage"] != res.Stages {
				t.Errorf("traced %d stage spans over %d stages", names["stage"], res.Stages)
			}
			for _, want := range []string{"select", "update", "classify"} {
				if names[want] == 0 {
					t.Errorf("no %q spans traced", want)
				}
			}
		})
	}
}
