package analysis

// All returns the full analyzer suite in a stable order: the original
// AST-shape analyzers first, then the flow-sensitive ones built on the
// CFG and call graph.
func All() []*Analyzer {
	return []*Analyzer{
		Determinism, Concurrency, Floats, Errcheck, Obslog,
		Goroutineleak, Lockdiscipline, Deadline, Ctxflow,
	}
}

// ByName returns the named analyzers, or nil plus the first unknown name.
func ByName(names []string) ([]*Analyzer, string) {
	index := map[string]*Analyzer{}
	for _, a := range All() {
		index[a.Name] = a
	}
	var out []*Analyzer
	for _, n := range names {
		a, ok := index[n]
		if !ok {
			return nil, n
		}
		out = append(out, a)
	}
	return out, ""
}
