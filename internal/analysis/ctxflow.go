package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Ctxflow enforces context propagation: a function that accepts a
// context.Context must actually thread it into the blocking work it does.
// Two patterns are flagged:
//
//   - a ctx parameter that is never used while the body performs blocking
//     calls (channel operations, network I/O, time.Sleep, or calls that
//     themselves accept a context) — the caller's cancellation silently
//     stops at this frame;
//   - context.Background() or context.TODO() created while a ctx
//     parameter is in scope — a fresh root detaches the entire subtree
//     from the caller's deadline.
//
// The dropped-parameter check is reachability-aware: only blocking work
// reachable from function entry in the CFG counts, so a ctx-less debug
// branch behind a constant guard does not fire it.
var Ctxflow = &Analyzer{
	Name: "ctxflow",
	Doc: "flag context.Context parameters dropped instead of propagated " +
		"into blocking calls, and Background/TODO roots created while a ctx is in scope",
	Run: runCtxflow,
}

func runCtxflow(pass *Pass) {
	cg := pass.CallGraph()
	for _, node := range cg.Nodes {
		if node.Pkg == nil || node.Pkg.Path != pass.PkgPath {
			continue
		}
		checkCtxFunc(pass, node)
	}
}

// ctxParams returns the declared context.Context parameter objects of fn.
func ctxParams(info *types.Info, fn ast.Node) []*types.Var {
	var fields *ast.FieldList
	switch f := fn.(type) {
	case *ast.FuncDecl:
		fields = f.Type.Params
	case *ast.FuncLit:
		fields = f.Type.Params
	}
	if fields == nil {
		return nil
	}
	var out []*types.Var
	for _, field := range fields.List {
		for _, name := range field.Names {
			if name.Name == "_" {
				continue
			}
			if obj, ok := info.Defs[name].(*types.Var); ok && isContextType(obj.Type()) {
				out = append(out, obj)
			}
		}
	}
	return out
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

func checkCtxFunc(pass *Pass, node *CGNode) {
	info := node.Pkg.Info
	body := funcBody(node.Fn)
	if body == nil {
		return
	}
	params := ctxParams(info, node.Fn)

	// Background/TODO roots while a ctx is in scope.
	if len(params) > 0 {
		inspectNoLits(body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			switch fullCalleeName(info, call) {
			case "context.Background", "context.TODO":
				pass.Reportf(call.Pos(),
					"%s creates a fresh context root while parameter %s is in scope; propagate the parameter (or derive with context.WithTimeout) so cancellation reaches this call tree",
					fullCalleeName(info, call), params[0].Name())
			}
			return true
		})
	}

	// Dropped parameters: unused ctx + reachable blocking work.
	for _, param := range params {
		if usedInBody(info, body, param) {
			continue
		}
		desc, pos := reachableBlockingWork(pass, node)
		if desc == "" {
			continue
		}
		blockLine := pass.Fset.Position(pos).Line
		pass.Reportf(param.Pos(),
			"context.Context parameter %s is dropped, but the function performs blocking work (%s at line %d); propagate the context so callers can cancel it",
			param.Name(), desc, blockLine)
	}
}

// usedInBody reports whether param is referenced anywhere in body,
// including inside nested literals (a capture is a use).
func usedInBody(info *types.Info, body *ast.BlockStmt, param *types.Var) bool {
	used := false
	ast.Inspect(body, func(n ast.Node) bool {
		if used {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == param {
			used = true
			return false
		}
		return true
	})
	return used
}

// reachableBlockingWork finds the first CFG-reachable blocking operation
// in node's body: channel ops, selects, network I/O, time.Sleep, or a
// call whose signature accepts a context.
func reachableBlockingWork(pass *Pass, node *CGNode) (string, token.Pos) {
	cfg := pass.CFGOf(node)
	if cfg == nil {
		return "", token.NoPos
	}
	info := node.Pkg.Info
	reach := cfg.Reachable(cfg.Entry)
	for _, blk := range cfg.Blocks {
		if !reach[blk] {
			continue
		}
		for _, bn := range blk.Nodes {
			var desc string
			var pos token.Pos
			inspectNoLits(bn, func(n ast.Node) bool {
				if desc != "" {
					return false
				}
				switch n := n.(type) {
				case *ast.SendStmt:
					desc, pos = "a channel send", n.Pos()
				case *ast.UnaryExpr:
					if n.Op == token.ARROW {
						desc, pos = "a channel receive", n.Pos()
					}
				case *ast.SelectStmt:
					desc, pos = "a select", n.Pos()
				case *ast.CallExpr:
					name := fullCalleeName(info, n)
					switch {
					case name == "time.Sleep":
						desc, pos = "time.Sleep", n.Pos()
					case riskyIONames[name] || gobIONames[name]:
						desc, pos = shortCallName(name), n.Pos()
					case callAcceptsContext(info, n):
						desc, pos = "a context-accepting call", n.Pos()
					}
				}
				return true
			})
			if desc != "" {
				return desc, pos
			}
		}
	}
	return "", token.NoPos
}

// callAcceptsContext reports whether the call's static signature has a
// context.Context parameter.
func callAcceptsContext(info *types.Info, call *ast.CallExpr) bool {
	id := calleeIdent(call)
	if id == nil {
		return false
	}
	fn, ok := info.Uses[id].(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if isContextType(sig.Params().At(i).Type()) {
			return true
		}
	}
	return false
}
