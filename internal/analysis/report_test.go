package analysis

import (
	"bytes"
	"encoding/json"
	"go/token"
	"strings"
	"testing"
)

func sampleDiags() []Diagnostic {
	return []Diagnostic{
		{Analyzer: "deadline", Pos: token.Position{Filename: "internal/cluster/driver.go", Line: 37, Column: 12},
			Message: "gob.Encoder.Encode without a deadline"},
		{Analyzer: "goroutineleak", Pos: token.Position{Filename: "internal/cluster/local.go", Line: 55, Column: 3},
			Message: "goroutine may block forever"},
	}
}

func TestWriteJSONShape(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSON(&buf, sampleDiags()); err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Version     int `json:"version"`
		Diagnostics []struct {
			Analyzer string `json:"analyzer"`
			File     string `json:"file"`
			Line     int    `json:"line"`
			Column   int    `json:"column"`
			Message  string `json:"message"`
		} `json:"diagnostics"`
	}
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if rep.Version != 1 || len(rep.Diagnostics) != 2 {
		t.Fatalf("report = %+v", rep)
	}
	if d := rep.Diagnostics[0]; d.Analyzer != "deadline" || d.File != "internal/cluster/driver.go" || d.Line != 37 {
		t.Fatalf("first diagnostic = %+v", d)
	}
}

func TestWriteJSONEmptyIsValid(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSON(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"diagnostics": []`) {
		t.Fatalf("empty report must render an empty array, got %s", buf.String())
	}
}

// TestWriteSARIFShape validates the output against the SARIF 2.1.0
// surface code-scanning consumers require: schema/version header, a run
// with a named tool driver, one rule per analyzer, and results whose
// locations carry a physical artifact location and 1-based region.
func TestWriteSARIFShape(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSARIF(&buf, sampleDiags(), All()); err != nil {
		t.Fatal(err)
	}
	var log struct {
		Schema  string `json:"$schema"`
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID               string `json:"id"`
						ShortDescription struct {
							Text string `json:"text"`
						} `json:"shortDescription"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID  string `json:"ruleId"`
				Level   string `json:"level"`
				Message struct {
					Text string `json:"text"`
				} `json:"message"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine   int `json:"startLine"`
							StartColumn int `json:"startColumn"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(buf.Bytes(), &log); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if log.Version != "2.1.0" || !strings.Contains(log.Schema, "sarif-2.1.0") {
		t.Fatalf("header = %s %s", log.Schema, log.Version)
	}
	if len(log.Runs) != 1 {
		t.Fatalf("want exactly one run, got %d", len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "sbgt-lint" {
		t.Fatalf("driver name = %q", run.Tool.Driver.Name)
	}
	ruleIDs := map[string]bool{}
	for _, r := range run.Tool.Driver.Rules {
		if r.ShortDescription.Text == "" {
			t.Errorf("rule %s has no description", r.ID)
		}
		ruleIDs[r.ID] = true
	}
	for _, a := range All() {
		if !ruleIDs[a.Name] {
			t.Errorf("analyzer %s missing from rules", a.Name)
		}
	}
	if len(run.Results) != 2 {
		t.Fatalf("want 2 results, got %d", len(run.Results))
	}
	for _, res := range run.Results {
		if !ruleIDs[res.RuleID] {
			t.Errorf("result rule %s not declared in driver rules", res.RuleID)
		}
		if res.Level != "error" || res.Message.Text == "" {
			t.Errorf("result = %+v", res)
		}
		if len(res.Locations) != 1 {
			t.Fatalf("result has %d locations", len(res.Locations))
		}
		loc := res.Locations[0].PhysicalLocation
		if loc.ArtifactLocation.URI == "" || loc.Region.StartLine < 1 {
			t.Errorf("location = %+v", loc)
		}
	}
}

// TestWriteSARIFSynthesizesAllowRule covers diagnostics from the "allow"
// pseudo-analyzer, which is not in the registry but must still resolve to
// a declared rule.
func TestWriteSARIFSynthesizesAllowRule(t *testing.T) {
	var buf bytes.Buffer
	diags := []Diagnostic{{Analyzer: "allow", Pos: token.Position{Filename: "x.go", Line: 3, Column: 1}, Message: "stale lint:allow"}}
	if err := WriteSARIF(&buf, diags, All()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"id": "allow"`) {
		t.Fatal("allow rule not synthesized")
	}
}
