package analysis

import (
	"go/ast"
	"go/token"
)

// Floats enforces floating-point hygiene:
//
//   - `==` / `!=` between floating-point operands is flagged everywhere:
//     after any arithmetic, exact equality is a rounding accident. The few
//     intentional exact comparisons (IEEE-754 sentinel checks such as
//     skipping exactly-zero mass) carry lint:allow annotations explaining
//     why exactness is correct there.
//   - math.Log(math.Exp(x)) and math.Exp(math.Log(x)) are flagged: the
//     round-trip loses precision (and over/underflows) for the values this
//     codebase cares about; use x directly or the internal/prob log-space
//     helpers.
//   - multiplying into a float accumulator declared outside a range loop
//     is flagged: naive probability products underflow long before the
//     posterior does, which is exactly what internal/prob's log-space and
//     compensated-summation helpers exist to prevent.
var Floats = &Analyzer{
	Name: "floats",
	Doc: "flag exact float comparisons, log/exp round-trips, and naive " +
		"probability-product accumulation",
	Run: runFloats,
}

func runFloats(pass *Pass) {
	pass.Inspect(func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BinaryExpr:
			if n.Op == token.EQL || n.Op == token.NEQ {
				checkFloatComparison(pass, n)
			}
		case *ast.CallExpr:
			checkLogExpRoundTrip(pass, n)
		case *ast.RangeStmt:
			checkProductAccumulation(pass, n)
		}
		return true
	})
}

func checkFloatComparison(pass *Pass, cmp *ast.BinaryExpr) {
	xt, yt := pass.Info.Types[cmp.X], pass.Info.Types[cmp.Y]
	if xt.Value != nil && yt.Value != nil {
		return // constant comparison, folded at compile time
	}
	if (xt.Type != nil && isFloat(xt.Type)) || (yt.Type != nil && isFloat(yt.Type)) {
		pass.Reportf(cmp.OpPos,
			"%s on floating-point operands; compare with an explicit tolerance, or lint:allow with the reason exactness is intended", cmp.Op)
	}
}

func checkLogExpRoundTrip(pass *Pass, call *ast.CallExpr) {
	outer := pass.CalleeName(call)
	var inverse string
	switch outer {
	case "math.Log":
		inverse = "math.Exp"
	case "math.Exp":
		inverse = "math.Log"
	default:
		return
	}
	if len(call.Args) != 1 {
		return
	}
	inner, ok := ast.Unparen(call.Args[0]).(*ast.CallExpr)
	if !ok || pass.CalleeName(inner) != inverse {
		return
	}
	pass.Reportf(call.Pos(),
		"%s(%s(x)) round-trip loses precision and over/underflows; use x directly or the internal/prob log-space helpers",
		shortName(outer), shortName(inverse))
}

func shortName(full string) string {
	if i := len("math."); len(full) > i {
		return full[i:]
	}
	return full
}

// checkProductAccumulation flags `acc *= term` inside a range loop when
// acc is a float declared outside the loop — the naive-product shape that
// underflows for per-state probabilities.
func checkProductAccumulation(pass *Pass, rs *ast.RangeStmt) {
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		// Do not descend into nested loops or function literals: their
		// accumulators are judged against their own enclosing range.
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt, *ast.FuncLit:
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Tok != token.MUL_ASSIGN {
			return true
		}
		if id := floatIdentDeclaredOutside(pass, as.Lhs[0], rs); id != nil {
			pass.Reportf(as.Pos(),
				"float product accumulated into %s across a loop underflows for probability-scale terms; accumulate in log space (internal/prob.LogSumExp/LogAdd)", id.Name)
		}
		return true
	})
}
