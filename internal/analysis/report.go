package analysis

import (
	"encoding/json"
	"io"
)

// Machine-readable report formats for cmd/sbgt-lint. Two are supported:
// a compact JSON array for scripting, and SARIF 2.1.0 for code-scanning
// UIs (GitHub's security tab, editor SARIF viewers). Both render the same
// diagnostics the text output does; paths are whatever the caller put in
// Diagnostic.Pos.Filename (cmd/sbgt-lint rewrites them module-relative).

// jsonReport is the -format json shape.
type jsonReport struct {
	Version     int              `json:"version"`
	Diagnostics []jsonDiagnostic `json:"diagnostics"`
}

type jsonDiagnostic struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Message  string `json:"message"`
}

// WriteJSON renders diagnostics as a versioned JSON document.
func WriteJSON(w io.Writer, diags []Diagnostic) error {
	rep := jsonReport{Version: 1, Diagnostics: make([]jsonDiagnostic, 0, len(diags))}
	for _, d := range diags {
		rep.Diagnostics = append(rep.Diagnostics, jsonDiagnostic{
			Analyzer: d.Analyzer,
			File:     d.Pos.Filename,
			Line:     d.Pos.Line,
			Column:   d.Pos.Column,
			Message:  d.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// SARIF 2.1.0 document shape — the subset code-scanning consumers
// require: schema/version header, one run, a tool driver with one rule
// per analyzer, and one result per diagnostic with a physical location.
type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI       string `json:"uri"`
	URIBaseID string `json:"uriBaseId,omitempty"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// WriteSARIF renders diagnostics as a SARIF 2.1.0 log. Every analyzer in
// the run is declared as a rule (found or not) so consumers can
// distinguish "rule passed" from "rule absent". Allow-mechanism
// diagnostics (analyzer "allow") get a synthetic rule on demand.
func WriteSARIF(w io.Writer, diags []Diagnostic, analyzers []*Analyzer) error {
	rules := make([]sarifRule, 0, len(analyzers)+1)
	known := map[string]bool{}
	for _, a := range analyzers {
		rules = append(rules, sarifRule{ID: a.Name, ShortDescription: sarifMessage{Text: a.Doc}})
		known[a.Name] = true
	}
	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		if !known[d.Analyzer] {
			rules = append(rules, sarifRule{ID: d.Analyzer,
				ShortDescription: sarifMessage{Text: "lint:allow annotation hygiene"}})
			known[d.Analyzer] = true
		}
		results = append(results, sarifResult{
			RuleID:  d.Analyzer,
			Level:   "error",
			Message: sarifMessage{Text: d.Message},
			Locations: []sarifLocation{{PhysicalLocation: sarifPhysicalLocation{
				ArtifactLocation: sarifArtifactLocation{URI: d.Pos.Filename, URIBaseID: "%SRCROOT%"},
				Region:           sarifRegion{StartLine: d.Pos.Line, StartColumn: d.Pos.Column},
			}}},
		})
	}
	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "sbgt-lint", Rules: rules}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}
