// Package obslog is a fixture for the obslog analyzer.
package obslog

import (
	"fmt"
	"io"
	"log"
	"os"
)

// logging goes through the process-global logger: flagged.
func logging() {
	log.Printf("x=%d", 1)
	log.Println("boom")
	log.Fatal("die")
}

// printing writes to the process streams: flagged.
func printing(n int) {
	fmt.Println("hello")
	fmt.Printf("n=%d\n", n)
	fmt.Fprintf(os.Stderr, "warn: %d\n", n)
	fmt.Fprintln(os.Stdout, "out")
}

// toWriter targets a caller-supplied writer: fine.
func toWriter(w io.Writer) error {
	_, err := fmt.Fprintf(w, "ok")
	return err
}

// toFile targets a file the caller opened: fine (not a process stream).
func toFile(f *os.File) error {
	_, err := fmt.Fprintln(f, "ok")
	return err
}

// waived spells out the one sanctioned escape hatch.
func waived() {
	//lint:allow obslog usage banner printed before any logger exists
	fmt.Fprintln(os.Stderr, "usage: obslog [flags]")
}

var _ = []any{logging, printing, toWriter, toFile, waived}
