// Package goroutineleak is a fixture for the goroutineleak analyzer.
package goroutineleak

import (
	"context"
	"sync"
)

// leakSend parks the goroutine on an unbuffered send with no cancellation
// path: if the returned channel is never drained, the goroutine is pinned
// forever.
func leakSend() chan int {
	ch := make(chan int)
	go func() {
		ch <- 1
	}()
	return ch
}

// pump blocks on every iteration; leakNamed spawns it through the call
// graph rather than a literal.
func pump(ch chan int) {
	for {
		ch <- 0
	}
}

func leakNamed(ch chan int) {
	go pump(ch)
}

// leakSelect parks on a select with neither a default case nor a
// cancellation arm.
func leakSelect(a, b chan int) {
	go func() {
		select {
		case <-a:
		case <-b:
		}
	}()
}

// leakWait parks directly on a WaitGroup nobody is guaranteed to drain.
func leakWait(wg *sync.WaitGroup) {
	go func() {
		wg.Wait()
	}()
}

// okDone is cancellable through the context arm.
func okDone(ctx context.Context, ch chan int) {
	go func() {
		select {
		case <-ch:
		case <-ctx.Done():
		}
	}()
}

// okDefault never parks: the default case always runs.
func okDefault(ch chan int) {
	go func() {
		select {
		case ch <- 1:
		default:
		}
	}()
}

// okRange terminates when the producer closes the channel.
func okRange(ch chan int) {
	go func() {
		for range ch {
		}
	}()
}

// runJobs is structured fork-join: its Wait is bounded by the Done calls
// it arranges itself.
func runJobs() {
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
		}()
	}
	wg.Wait()
}

// okForkJoin spawns a function that reaches a WaitGroup.Wait only through
// a callee; a transitive Wait is not treated as a leak.
func okForkJoin() {
	go func() {
		runJobs()
	}()
}

// server pairs the watcher's receive with a close in Stop — a protocol
// the analyzer cannot see, so the waiver documents it.
type server struct{ done chan struct{} }

func (s *server) watch() {
	//lint:allow goroutineleak paired with close(s.done) in Stop; the receive unblocks on close
	go func() {
		<-s.done
	}()
}

func (s *server) Stop() { close(s.done) }
