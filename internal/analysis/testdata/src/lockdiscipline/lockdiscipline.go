// Package lockdiscipline is a fixture for the lockdiscipline analyzer.
package lockdiscipline

import "sync"

type box struct {
	mu  sync.Mutex
	aux sync.Mutex
	n   int
}

// leakyLock returns with the lock held on the failure path.
func (b *box) leakyLock(fail bool) int {
	b.mu.Lock()
	if fail {
		return -1
	}
	n := b.n
	b.mu.Unlock()
	return n
}

// okDefer releases through a defer registered right after the acquire.
func (b *box) okDefer() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.n
}

// okAllPaths releases explicitly on every path to return.
func (b *box) okAllPaths(fail bool) int {
	b.mu.Lock()
	if fail {
		b.mu.Unlock()
		return -1
	}
	n := b.n
	b.mu.Unlock()
	return n
}

// lockAB and lockBA acquire the two locks in opposite orders — the
// classic inversion that deadlocks when both run concurrently.
func (b *box) lockAB() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.aux.Lock()
	defer b.aux.Unlock()
	b.n++
}

func (b *box) lockBA() {
	b.aux.Lock()
	defer b.aux.Unlock()
	b.mu.Lock()
	defer b.mu.Unlock()
	b.n--
}

// addLocked acquires b.mu itself, so calling it with b.mu already held
// self-deadlocks.
func (b *box) addLocked() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.n++
}

func (b *box) selfDeadlock() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.addLocked()
}

// beginCritical hands its lock to endCritical — a cross-function pairing
// outside the analyzer's model, so the waiver documents it.
func (b *box) beginCritical() {
	//lint:allow lockdiscipline released by endCritical; deliberate cross-function hand-off
	b.mu.Lock()
	b.n++
}

func (b *box) endCritical() {
	b.mu.Unlock()
}
