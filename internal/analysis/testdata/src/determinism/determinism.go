// Package determinism is a fixture for the determinism analyzer. The test
// loads it under the package path "repro/internal/lattice" so the
// numeric-package rules apply.
package determinism

import (
	"math/rand"
	"time"
)

// seedFromClock ties results to the wall clock.
func seedFromClock() int64 {
	return time.Now().UnixNano()
}

// draw uses the global, schedule-dependent generator.
func draw() float64 {
	return rand.Float64()
}

// accumulateCompound sums floats in map order.
func accumulateCompound(weights map[string]float64) float64 {
	var total float64
	for _, w := range weights {
		total += w
	}
	return total
}

// accumulateAssign is the x = x + w spelling of the same hazard.
func accumulateAssign(weights map[int]float64) float64 {
	total := 0.0
	for _, w := range weights {
		total = total + w
	}
	return total
}

// perKeyIsFine writes each key once; order cannot matter.
func perKeyIsFine(weights map[int]float64) map[int]float64 {
	out := make(map[int]float64, len(weights))
	for k, w := range weights {
		out[k] = w * 2
	}
	return out
}

// intCountIsFine accumulates an int; integer addition is associative.
func intCountIsFine(weights map[int]float64) int {
	n := 0
	for range weights {
		n++
	}
	return n
}

// sliceAccumulationIsFine ranges a slice, not a map: order is fixed.
func sliceAccumulationIsFine(ws []float64) float64 {
	var total float64
	for _, w := range ws {
		total += w
	}
	return total
}

var _ = []any{seedFromClock, draw, accumulateCompound, accumulateAssign, perKeyIsFine, intCountIsFine, sliceAccumulationIsFine}
