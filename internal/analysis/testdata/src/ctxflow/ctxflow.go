// Package ctxflow is a fixture for the ctxflow analyzer.
package ctxflow

import (
	"context"
	"time"
)

// dropped accepts a context and then sleeps without consulting it: the
// caller's cancellation stops dead at this frame.
func dropped(ctx context.Context, d time.Duration) {
	time.Sleep(d)
}

// freshRoot detaches its subtree from the caller's deadline by rooting a
// new context instead of deriving from the parameter.
func freshRoot(ctx context.Context) error {
	c, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	return wait(c)
}

// wait threads its context into the select — the shape the analyzer
// wants everywhere.
func wait(ctx context.Context) error {
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-time.After(time.Millisecond):
		return nil
	}
}

// okThreads propagates the parameter.
func okThreads(ctx context.Context) error {
	return wait(ctx)
}

// ticker's method must keep the parameter to satisfy an interface; the
// sleep is bounded, so dropping ctx is a documented choice.
type ticker struct{}

func (ticker) Tick(ctx context.Context) { //lint:allow ctxflow interface-mandated parameter; the bounded sleep needs no cancellation
	time.Sleep(time.Millisecond)
}
