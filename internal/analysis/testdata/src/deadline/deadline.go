// Package deadline is a fixture for the deadline analyzer.
package deadline

import (
	"encoding/gob"
	"net"
	"time"
)

// rawRead blocks forever on a dead peer: no deadline here and no caller
// to arrange one.
func rawRead(c net.Conn, buf []byte) (int, error) {
	return c.Read(buf)
}

// okLocal arms a read deadline before blocking.
func okLocal(c net.Conn, buf []byte) (int, error) {
	if err := c.SetReadDeadline(time.Now().Add(time.Second)); err != nil {
		return 0, err
	}
	return c.Read(buf)
}

// readFrame has no establisher of its own, but its only caller arms one
// before every entry — the dialOne pattern.
func readFrame(c net.Conn, buf []byte) (int, error) {
	return c.Read(buf)
}

func okCaller(c net.Conn, buf []byte) (int, error) {
	if err := c.SetDeadline(time.Now().Add(time.Second)); err != nil {
		return 0, err
	}
	return readFrame(c, buf)
}

// decodeLoop is conn-backed gob RPC with no bound anywhere.
func decodeLoop(c net.Conn) (int, error) {
	dec := gob.NewDecoder(c)
	var x int
	err := dec.Decode(&x)
	return x, err
}

// countConn is a passthrough byte counter; deadlines are the wrapped
// conn's owner's concern, so the waiver documents the false positive.
type countConn struct {
	net.Conn
	n int
}

func (c *countConn) Read(p []byte) (int, error) {
	//lint:allow deadline passthrough wrapper; the owner arms deadlines on the wrapped conn
	n, err := c.Conn.Read(p)
	c.n += n
	return n, err
}
