// Package flow is a fixture for the CFG and call-graph builders: loops
// with break/continue, defers, switches with fallthrough, selects, method
// values, and closures.
package flow

import "sort"

// loops exercises for-loops with break and continue and a labeled outer
// loop.
func loops(xs []int) int {
	total := 0
outer:
	for i := 0; i < len(xs); i++ {
		for _, x := range xs {
			if x < 0 {
				continue
			}
			if x == 99 {
				break outer
			}
			total += x
		}
	}
	return total
}

// defers registers cleanups on both the early and the normal path.
func defers(fail bool) (err error) {
	defer sort.Ints(nil)
	if fail {
		return nil
	}
	defer sort.Ints(nil)
	return nil
}

// branches exercises switch with fallthrough and select.
func branches(n int, ch chan int) int {
	switch n {
	case 0:
		n++
		fallthrough
	case 1:
		n += 2
	default:
		n = -1
	}
	select {
	case v := <-ch:
		n += v
	default:
	}
	return n
}

// helper is referenced as a method value and called through it.
type counter struct{ n int }

func (c *counter) bump() { c.n++ }

func methodValue(c *counter) func() {
	f := c.bump
	f()
	return c.bump
}

// closures builds a closure that is invoked immediately and one that
// escapes.
func closures(xs []int) func() int {
	sum := 0
	func() {
		for _, x := range xs {
			sum += x
		}
	}()
	return func() int { return sum }
}

// calls ties the package together for the call-graph golden.
func calls(xs []int, c *counter) int {
	n := loops(xs)
	if err := defers(false); err != nil {
		return -1
	}
	methodValue(c)()
	f := closures(xs)
	return n + f()
}
