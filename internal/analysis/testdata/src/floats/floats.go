// Package floats is a fixture for the float-hygiene analyzer.
package floats

import "math"

// compareEq and compareNeq are rounding accidents waiting to happen.
func compareEq(a, b float64) bool {
	return a == b
}

func compareNeq(a, b float64) bool {
	return a != b
}

// compareLiteral is also flagged: a computed value rarely lands on an
// exact literal. Intentional sentinel checks carry lint:allow.
func compareLiteral(x float64) bool {
	return x == 0
}

// compare32 covers float32 operands.
func compare32(a float32, b float64) bool {
	return float64(a) == b
}

// intCompare is exact arithmetic; not flagged.
func intCompare(a, b int) bool {
	return a == b
}

// constFold is folded at compile time; not flagged.
func constFold() bool {
	return 0.1+0.2 == 0.3
}

// roundTrip and inverseRoundTrip cancel catastrophically.
func roundTrip(x float64) float64 {
	return math.Log(math.Exp(x))
}

func inverseRoundTrip(x float64) float64 {
	return math.Exp(math.Log(x))
}

// logOnly is fine.
func logOnly(x float64) float64 {
	return math.Log(x)
}

// naiveProduct underflows for probability-scale terms.
func naiveProduct(ps []float64) float64 {
	prod := 1.0
	for _, p := range ps {
		prod *= p
	}
	return prod
}

// scaleInPlace multiplies element-wise, not into an accumulator; fine.
func scaleInPlace(ps []float64, c float64) {
	for i := range ps {
		ps[i] *= c
	}
}

// boundedBitProduct uses a plain for loop, the shape the lattice prior
// kernels use for products of at most 64 odds; exempt by design.
func boundedBitProduct(odds []float64, state uint64) float64 {
	w := 1.0
	for v := state; v != 0; v &= v - 1 {
		w *= odds[v%uint64(len(odds))]
	}
	return w
}

var _ = []any{compareEq, compareNeq, compareLiteral, compare32, intCompare, constFold,
	roundTrip, inverseRoundTrip, logOnly, naiveProduct, scaleInPlace, boundedBitProduct}
