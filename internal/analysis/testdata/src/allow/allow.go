// Package allow is a fixture for the lint:allow suppression mechanism.
package allow

import "errors"

func work() error { return errors.New("x") }

// trailing: the annotation shares the flagged line.
func trailing() {
	_ = work() //lint:allow errcheck fixture: intentionally discarded
}

// standalone: the annotation covers the line below it.
func standalone() {
	//lint:allow errcheck fixture: standalone annotation covers the next line
	_ = work()
}

// wrongAnalyzer names a different analyzer, so errcheck still fires.
func wrongAnalyzer() {
	_ = work() //lint:allow floats fixture: wrong analyzer name
}

// missingReason is malformed: reported by the allow pseudo-analyzer, and
// the underlying errcheck diagnostic still fires.
func missingReason() {
	_ = work() //lint:allow errcheck
}

var _ = []any{trailing, standalone, wrongAnalyzer, missingReason}
