// Package concurrency is a fixture for the concurrency analyzer. The test
// loads it under the package path "repro/internal/stats", which is not an
// approved substrate package, so goroutines are flagged.
package concurrency

import (
	"sync"
	"sync/atomic"
)

type counter struct {
	mu sync.Mutex
	n  int
}

type nested struct {
	inner counter
	flag  atomic.Bool
}

// spawn starts an ad-hoc goroutine.
func spawn() {
	go func() {}()
}

// value copies the mutex through its receiver.
func (c counter) value() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// ptrValue is the correct spelling.
func (c *counter) ptrValue() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// byValueParam copies the nested atomic through a parameter.
func byValueParam(n nested) bool {
	return n.flag.Load()
}

// copies demonstrates assignment and range copies.
func copies(list []counter, src *counter) {
	dup := *src
	dup.n++
	for _, c := range list {
		spawnUser(c.n)
	}
	fresh := counter{} // a composite literal constructs a fresh value: fine
	fresh.n++
	byIndex(list)
}

// byIndex is the correct spelling of the range above.
func byIndex(list []counter) {
	for i := range list {
		spawnUser(list[i].n)
	}
}

func spawnUser(int) {}

var _ = []any{spawn, counter.value, (*counter).ptrValue, byValueParam, copies}
