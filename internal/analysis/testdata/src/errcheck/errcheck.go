// Package errcheck is a fixture for the errcheck analyzer.
package errcheck

import (
	"errors"
	"fmt"
	"os"
	"strings"
)

func work() error { return errors.New("boom") }

func multi() (int, error) { return 0, errors.New("boom") }

func pure() int { return 7 }

// bare drops the error on the floor.
func bare() {
	work()
}

// blank hides the drop behind the blank identifier.
func blank() {
	_ = work()
}

// blankTuple keeps the value but drops the error.
func blankTuple() int {
	n, _ := multi()
	return n
}

// handled is the correct spelling.
func handled() error {
	if err := work(); err != nil {
		return err
	}
	n, err := multi()
	if err != nil {
		return err
	}
	return fmt.Errorf("n=%d", n)
}

// deferred cleanup is best-effort by convention; not flagged.
func deferred(f *os.File) {
	defer f.Close()
}

// exemptions: fmt printing and never-failing writers.
func printing(b *strings.Builder) {
	fmt.Println("hello")
	fmt.Fprintf(b, "x")
	b.WriteString("y")
	pure()
}

var _ = []any{bare, blank, blankTuple, handled, deferred, printing}
