package analysis

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files under testdata/")

// runGolden loads testdata/src/<dir> under the given package path, runs
// the analyzers, and compares the rendered diagnostics against
// testdata/<golden>.golden. Run `go test ./internal/analysis -update` to
// regenerate the goldens after an intentional analyzer change.
func runGolden(t *testing.T, dir, pkgPath, golden string, analyzers []*Analyzer) {
	t.Helper()
	diags := loadAndRun(t, dir, pkgPath, analyzers)
	var b strings.Builder
	for _, d := range diags {
		name := filepath.ToSlash(d.Pos.Filename)
		if i := strings.Index(name, "testdata/src/"); i >= 0 {
			name = name[i+len("testdata/src/"):]
		}
		fmt.Fprintf(&b, "%s:%d:%d: [%s] %s\n", name, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
	}
	got := b.String()

	goldenPath := filepath.Join("testdata", golden+".golden")
	if *update {
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("diagnostics mismatch for %s\n--- got ---\n%s--- want ---\n%s", dir, got, want)
	}
}

func loadAndRun(t *testing.T, dir, pkgPath string, analyzers []*Analyzer) []Diagnostic {
	t.Helper()
	pkg, err := LoadDir(filepath.Join("testdata", "src", dir), pkgPath)
	if err != nil {
		t.Fatal(err)
	}
	return Run([]*Package{pkg}, analyzers)
}

// countByAnalyzer buckets diagnostics for assertions that do not need
// exact positions.
func countByAnalyzer(diags []Diagnostic) map[string]int {
	out := map[string]int{}
	for _, d := range diags {
		out[d.Analyzer]++
	}
	return out
}

// TestSuiteCleanOnModule is the keystone regression: the full suite must
// run clean over the real module tree modulo the committed baseline
// ledger, with no stale waivers and no stale ledger entries — exactly the
// CI gate (sbgt-lint -audit -baseline-check).
func TestSuiteCleanOnModule(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := LoadModule(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("loaded only %d packages from the module; loader lost coverage", len(pkgs))
	}
	diags, staleWaivers := RunAudit(pkgs, All())
	for i := range diags {
		if rel, err := filepath.Rel(root, diags[i].Pos.Filename); err == nil {
			diags[i].Pos.Filename = rel
		}
	}
	data, err := os.ReadFile(filepath.Join(root, "lint-baseline.json"))
	if err != nil {
		t.Fatalf("committed baseline ledger unreadable: %v", err)
	}
	ledger, err := ReadBaseline(data)
	if err != nil {
		t.Fatal(err)
	}
	fresh, staleEntries := ledger.Apply(diags)
	for _, d := range fresh {
		t.Errorf("unexpected diagnostic on clean tree: %s", d)
	}
	for _, d := range staleWaivers {
		t.Errorf("stale waiver: %s", d)
	}
	for _, e := range staleEntries {
		t.Errorf("stale baseline entry: %d x [%s] %s: %s", e.Count, e.Analyzer, e.File, e.Message)
	}
}

func TestByName(t *testing.T) {
	got, unknown := ByName([]string{"floats", "errcheck"})
	if unknown != "" || len(got) != 2 || got[0].Name != "floats" || got[1].Name != "errcheck" {
		t.Fatalf("ByName(floats,errcheck) = %v, %q", got, unknown)
	}
	if _, unknown := ByName([]string{"nope"}); unknown != "nope" {
		t.Fatalf("ByName(nope) reported %q, want nope", unknown)
	}
}
