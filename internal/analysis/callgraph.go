package analysis

// The module-wide call graph: every function declaration and function
// literal becomes a node; edges are the statically resolvable calls
// (direct calls, method calls, and immediately invoked literals) plus
// "reference" edges for method values and function values passed around
// (a conservative may-call). Dynamic calls through interface methods or
// arbitrary function variables stay unresolved — the analyzers built on
// top treat an unresolved call as "unknown", never as "safe".

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// CGNode is one function in the call graph.
type CGNode struct {
	// Name is the stable diagnostic name: (*pkg.Type).Method or pkg.Func
	// for declarations, parent$n for the n-th function literal inside
	// parent (in source order, 1-based).
	Name string
	// Fn is the *ast.FuncDecl or *ast.FuncLit. Nil only for the synthetic
	// root of externally defined functions (not stored in the graph).
	Fn ast.Node
	// Obj is the declared *types.Func (nil for literals).
	Obj *types.Func
	// Pkg is the package the function's body lives in.
	Pkg *Package

	// Calls are the statically resolved outgoing edges, in source order.
	Calls []CGEdge
	// callers is filled in by finish.
	callers []*CGNode
}

// CGEdge is one resolved call (or may-call reference) site.
type CGEdge struct {
	Callee *CGNode
	// Site is the *ast.CallExpr for calls, or the referencing expression
	// for method/function values.
	Site ast.Node
	Pos  token.Pos
	// Ref marks a may-call reference (a function or method value captured
	// rather than invoked at this site).
	Ref bool
}

// CallGraph indexes every module function.
type CallGraph struct {
	// nodes keyed by the declared object for FuncDecls and by the
	// *ast.FuncLit node for literals.
	byObj map[*types.Func]*CGNode
	byLit map[*ast.FuncLit]*CGNode
	// Nodes in deterministic (package, source) order.
	Nodes []*CGNode
}

// NodeFor returns the graph node for a declared function object, or nil.
func (g *CallGraph) NodeFor(obj *types.Func) *CGNode { return g.byObj[obj] }

// NodeForLit returns the graph node for a function literal, or nil.
func (g *CallGraph) NodeForLit(lit *ast.FuncLit) *CGNode { return g.byLit[lit] }

// Callers returns the nodes with a (call or reference) edge into n.
func (g *CallGraph) Callers(n *CGNode) []*CGNode { return n.callers }

// BuildCallGraph constructs the call graph over the given packages
// (typically the whole module; golden tests pass a single package).
func BuildCallGraph(pkgs []*Package) *CallGraph {
	g := &CallGraph{
		byObj: make(map[*types.Func]*CGNode),
		byLit: make(map[*ast.FuncLit]*CGNode),
	}
	// Pass 1: create nodes for every function declaration and literal.
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				obj, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				name := declName(pkg, fd, obj)
				node := &CGNode{Name: name, Fn: fd, Obj: obj, Pkg: pkg}
				if obj != nil {
					g.byObj[obj] = node
				}
				g.Nodes = append(g.Nodes, node)
				litCount := 0
				collectLits(fd.Body, func(lit *ast.FuncLit) {
					litCount++
					ln := &CGNode{Name: fmt.Sprintf("%s$%d", name, litCount), Fn: lit, Pkg: pkg}
					g.byLit[lit] = ln
					g.Nodes = append(g.Nodes, ln)
				})
			}
		}
	}
	// Package-scope function literals (var x = func(){...}) are rare and
	// skipped: none exist in this module, and their calls are dynamic.

	// Pass 2: resolve edges from each node's body.
	for _, node := range g.Nodes {
		g.resolveEdges(node)
	}
	for _, node := range g.Nodes {
		for _, e := range node.Calls {
			e.Callee.callers = append(e.Callee.callers, node)
		}
	}
	return g
}

// declName renders the diagnostic name of a declared function with the
// module prefix trimmed: "engine.NewPool", "(*engine.Pool).Close".
func declName(pkg *Package, fd *ast.FuncDecl, obj *types.Func) string {
	if obj != nil {
		return trimModule(obj.FullName())
	}
	return pkg.Path + "." + fd.Name.Name
}

// trimModule shortens fully qualified names for diagnostics: import paths
// keep only their last segment ("repro/internal/engine.NewPool" →
// "engine.NewPool").
func trimModule(full string) string {
	shorten := func(path string) string {
		if i := strings.LastIndex(path, "/"); i >= 0 {
			return path[i+1:]
		}
		return path
	}
	if strings.HasPrefix(full, "(") {
		// "(*repro/internal/engine.Pool).Close" or "(repro/....T).M"
		end := strings.Index(full, ")")
		if end > 0 {
			inner := full[1:end]
			star := ""
			if strings.HasPrefix(inner, "*") {
				star = "*"
				inner = inner[1:]
			}
			return "(" + star + shorten(inner) + ")" + full[end+1:]
		}
	}
	return shorten(full)
}

// collectLits calls fn for every function literal under root in source
// order, including literals nested inside other literals.
func collectLits(root ast.Node, fn func(*ast.FuncLit)) {
	if root == nil {
		return
	}
	ast.Inspect(root, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			fn(lit)
		}
		return true
	})
}

// resolveEdges walks one function body (not descending into nested
// literals — those are their own nodes) and records resolvable edges.
func (g *CallGraph) resolveEdges(node *CGNode) {
	var body *ast.BlockStmt
	switch fn := node.Fn.(type) {
	case *ast.FuncDecl:
		body = fn.Body
	case *ast.FuncLit:
		body = fn.Body
	}
	if body == nil {
		return
	}
	info := node.Pkg.Info
	// Pre-mark identifiers in call position so the Ident case below can
	// tell `f(x)` (call edge, owned by the CallExpr case) from `g(f)`
	// (reference edge).
	calleePos := map[*ast.Ident]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if id := calleeIdent(call); id != nil {
				calleePos[id] = true
			}
		}
		return true
	})
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// A literal's occurrence is a reference edge from its parent
			// (it may run later); its body belongs to its own node.
			if callee := g.byLit[n]; callee != nil {
				node.Calls = append(node.Calls, CGEdge{Callee: callee, Site: n, Pos: n.Pos(), Ref: true})
			}
			return false
		case *ast.CallExpr:
			// Direct invocation: f(...), x.m(...), func(){...}(...).
			if lit, ok := ast.Unparen(n.Fun).(*ast.FuncLit); ok {
				if callee := g.byLit[lit]; callee != nil {
					node.Calls = append(node.Calls, CGEdge{Callee: callee, Site: n, Pos: n.Pos()})
				}
				// The literal body belongs to its own node; walk only the
				// arguments (the FuncLit case would record a spurious
				// reference edge on top of the call edge above).
				for _, a := range n.Args {
					ast.Inspect(a, walk)
				}
				return false
			}
			if id := calleeIdent(n); id != nil {
				if obj, ok := info.Uses[id].(*types.Func); ok {
					if callee := g.byObj[obj]; callee != nil {
						node.Calls = append(node.Calls, CGEdge{Callee: callee, Site: n, Pos: n.Pos()})
					}
				}
			}
			return true
		case *ast.Ident:
			// A bare reference to a module function or a method value
			// (passed around to be called later).
			if !calleePos[n] {
				if obj, ok := info.Uses[n].(*types.Func); ok {
					if callee := g.byObj[obj]; callee != nil {
						node.Calls = append(node.Calls, CGEdge{Callee: callee, Site: n, Pos: n.Pos(), Ref: true})
					}
				}
			}
		}
		return true
	}
	ast.Inspect(body, walk)
}

// calleeIdent extracts the identifier a call resolves through.
func calleeIdent(call *ast.CallExpr) *ast.Ident {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fn
	case *ast.SelectorExpr:
		return fn.Sel
	}
	return nil
}

// Dump renders the graph for the golden tests: one line per node with
// its sorted outgoing edges ("ref:" prefix for reference edges).
func (g *CallGraph) Dump() string {
	var sb strings.Builder
	for _, n := range g.Nodes {
		fmt.Fprintf(&sb, "%s\n", n.Name)
		edges := make([]string, 0, len(n.Calls))
		for _, e := range n.Calls {
			s := e.Callee.Name
			if e.Ref {
				s = "ref:" + s
			}
			edges = append(edges, s)
		}
		sort.Strings(edges)
		// Dedup repeated edges to the same callee for dump stability.
		prev := ""
		for _, e := range edges {
			if e == prev {
				continue
			}
			prev = e
			fmt.Fprintf(&sb, "  -> %s\n", e)
		}
	}
	return sb.String()
}
