package analysis

import (
	"fmt"
	"go/token"
	"strings"
)

// The allowlist mechanism: a source comment of the form
//
//	//lint:allow <analyzer> <reason>
//
// suppresses diagnostics from <analyzer> on the comment's own line (for
// trailing comments) and on the line directly below it (for standalone
// comments above the flagged statement). The reason is mandatory — an
// allow without one is reported by the pseudo-analyzer "allow" — so every
// suppression in the tree documents why the invariant is intentionally
// bent at that site.
//
// Every allow is additionally audit-tracked: RunAudit reports waivers
// that suppressed nothing, so fixed code sheds its stale annotations
// instead of accumulating silent holes in the invariants.

const allowPrefix = "//lint:allow"

// parseAllow splits one comment's text into its analyzer name and reason.
// ok is false when the comment is not an allow at all — including when the
// prefix runs straight into other characters ("//lint:allowx"), which is
// some other token, not a waiver. A true ok with an empty name or reason
// is a malformed allow. Fields split on any whitespace, so tabs and
// stray control characters never leak into the analyzer name.
func parseAllow(text string) (name, reason string, ok bool) {
	if !strings.HasPrefix(text, allowPrefix) {
		return "", "", false
	}
	rest := strings.TrimPrefix(text, allowPrefix)
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return "", "", false
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return "", "", true
	}
	return fields[0], strings.Join(fields[1:], " "), true
}

// allowRecord is one well-formed //lint:allow comment.
type allowRecord struct {
	pos      token.Position
	analyzer string
	used     bool
}

// allowIndex maps file:line to the allow records effective there.
type allowIndex struct {
	byLine  map[allowKey][]*allowRecord
	records []*allowRecord
}

type allowKey struct {
	file string
	line int
}

func (idx *allowIndex) allowed(d Diagnostic) bool {
	hit := false
	for _, rec := range idx.byLine[allowKey{d.Pos.Filename, d.Pos.Line}] {
		if rec.analyzer == d.Analyzer {
			rec.used = true
			hit = true
		}
	}
	return hit
}

// stale returns one diagnostic per allow that suppressed nothing.
func (idx *allowIndex) stale() []Diagnostic {
	var out []Diagnostic
	for _, rec := range idx.records {
		if !rec.used {
			out = append(out, Diagnostic{
				Analyzer: "allow",
				Pos:      rec.pos,
				Message: fmt.Sprintf("stale lint:allow: no %s diagnostic is suppressed here; remove the waiver",
					rec.analyzer),
			})
		}
	}
	return out
}

// collectAllows scans a package's comments for lint:allow annotations,
// returning the suppression index and diagnostics for malformed
// annotations (missing analyzer name or missing reason).
func collectAllows(pkg *Package) (*allowIndex, []Diagnostic) {
	idx := &allowIndex{byLine: make(map[allowKey][]*allowRecord)}
	var diags []Diagnostic
	for _, f := range pkg.Files {
		for _, group := range f.Comments {
			for _, c := range group.List {
				name, reason, ok := parseAllow(c.Text)
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				if name == "" || reason == "" {
					diags = append(diags, Diagnostic{
						Analyzer: "allow",
						Pos:      pos,
						Message:  "malformed lint:allow: want //lint:allow <analyzer> <reason>",
					})
					continue
				}
				rec := &allowRecord{pos: pos, analyzer: name}
				idx.records = append(idx.records, rec)
				for _, k := range []allowKey{{pos.Filename, pos.Line}, {pos.Filename, pos.Line + 1}} {
					idx.byLine[k] = append(idx.byLine[k], rec)
				}
			}
		}
	}
	return idx, diags
}
