package analysis

import "strings"

// The allowlist mechanism: a source comment of the form
//
//	//lint:allow <analyzer> <reason>
//
// suppresses diagnostics from <analyzer> on the comment's own line (for
// trailing comments) and on the line directly below it (for standalone
// comments above the flagged statement). The reason is mandatory — an
// allow without one is reported by the pseudo-analyzer "allow" — so every
// suppression in the tree documents why the invariant is intentionally
// bent at that site.

const allowPrefix = "//lint:allow"

// allowIndex maps file:line to the analyzer names allowed there.
type allowIndex map[allowKey]map[string]bool

type allowKey struct {
	file string
	line int
}

func (idx allowIndex) allowed(d Diagnostic) bool {
	set := idx[allowKey{d.Pos.Filename, d.Pos.Line}]
	return set != nil && set[d.Analyzer]
}

func (idx allowIndex) add(file string, line int, analyzer string) {
	k := allowKey{file, line}
	if idx[k] == nil {
		idx[k] = make(map[string]bool)
	}
	idx[k][analyzer] = true
}

// collectAllows scans a package's comments for lint:allow annotations,
// returning the suppression index and diagnostics for malformed
// annotations (missing analyzer name or missing reason).
func collectAllows(pkg *Package) (allowIndex, []Diagnostic) {
	idx := make(allowIndex)
	var diags []Diagnostic
	for _, f := range pkg.Files {
		for _, group := range f.Comments {
			for _, c := range group.List {
				if !strings.HasPrefix(c.Text, allowPrefix) {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				rest := strings.TrimSpace(strings.TrimPrefix(c.Text, allowPrefix))
				name, reason, _ := strings.Cut(rest, " ")
				if name == "" || strings.TrimSpace(reason) == "" {
					diags = append(diags, Diagnostic{
						Analyzer: "allow",
						Pos:      pos,
						Message:  "malformed lint:allow: want //lint:allow <analyzer> <reason>",
					})
					continue
				}
				idx.add(pos.Filename, pos.Line, name)
				idx.add(pos.Filename, pos.Line+1, name)
			}
		}
	}
	return idx, diags
}
