package analysis

import (
	"go/ast"
	"go/types"
)

// obslogBannedLog is the package-log call surface that writes through the
// process-global logger.
var obslogBannedLog = map[string]bool{
	"log.Print": true, "log.Printf": true, "log.Println": true,
	"log.Fatal": true, "log.Fatalf": true, "log.Fatalln": true,
	"log.Panic": true, "log.Panicf": true, "log.Panicln": true,
}

// Obslog enforces the logging discipline inside internal/ packages:
// library code must not write ad-hoc diagnostics to the process streams.
//
//   - package log calls (Print*/Fatal*/Panic*) go through the unleveled
//     process-global logger, invisible to -log-level and untagged by
//     component — take a *slog.Logger (internal/obs builds them) instead;
//   - fmt.Print/Printf/Println write to stdout a library does not own;
//   - fmt.Fprint* aimed at the os.Stderr or os.Stdout literals is the
//     same problem with extra steps.
//
// Command mains (cmd/*) and examples own their streams and are exempt,
// as is internal/obs itself — it is the substrate the rule points to.
// Intentional exceptions are waived with "//lint:allow obslog <reason>".
var Obslog = &Analyzer{
	Name: "obslog",
	Doc: "flag ad-hoc logging in internal packages (package log, fmt printing " +
		"to the process streams); route diagnostics through internal/obs loggers",
	Run: runObslog,
}

func runObslog(pass *Pass) {
	if !pathHasSegment(pass.PkgPath, "internal") {
		return
	}
	if pathHasSuffix(pass.PkgPath, "internal/obs") {
		return // the logging substrate itself
	}
	pass.Inspect(func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name := pass.CalleeName(call)
		switch {
		case obslogBannedLog[name]:
			pass.Reportf(call.Pos(),
				"%s writes through the process-global logger; take a *slog.Logger (internal/obs) so output honors -log-level", name)
		case name == "fmt.Print" || name == "fmt.Printf" || name == "fmt.Println":
			pass.Reportf(call.Pos(),
				"%s prints to stdout from library code; write to a caller-supplied io.Writer or an obs logger", name)
		case name == "fmt.Fprint" || name == "fmt.Fprintf" || name == "fmt.Fprintln":
			if stream := processStreamArg(pass, call); stream != "" {
				pass.Reportf(call.Pos(),
					"%s to %s bypasses the obs logger; take an io.Writer or a *slog.Logger (internal/obs)", name, stream)
			}
		}
		return true
	})
}

// processStreamArg returns "os.Stderr" or "os.Stdout" when the call's
// first argument is that literal selector, else "".
func processStreamArg(pass *Pass, call *ast.CallExpr) string {
	if len(call.Args) == 0 {
		return ""
	}
	sel, ok := ast.Unparen(call.Args[0]).(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Stderr" && sel.Sel.Name != "Stdout") {
		return ""
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return ""
	}
	if pkg, ok := pass.Info.Uses[id].(*types.PkgName); ok && pkg.Imported().Path() == "os" {
		return "os." + sel.Sel.Name
	}
	return ""
}
