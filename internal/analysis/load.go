package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed and type-checked, non-test package of the module.
type Package struct {
	// Path is the package's import path.
	Path string
	// Dir is the directory the package was loaded from.
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// newInfo returns a types.Info with every map analyzers need populated.
func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// moduleImporter resolves module-local import paths from the packages
// type-checked so far and delegates everything else (the standard
// library) to the compiler's default importer.
type moduleImporter struct {
	local map[string]*types.Package
	std   types.Importer
}

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	if p, ok := m.local[path]; ok {
		return p, nil
	}
	return m.std.Import(path)
}

// LoadModule parses and type-checks every non-test package under the
// module rooted at dir (the directory containing go.mod). Packages are
// returned in dependency order. _test.go files, testdata directories, and
// hidden directories are skipped: the lint invariants govern shipped
// code, while tests intentionally exercise edge cases (ad-hoc goroutines,
// exact comparisons) the analyzers forbid elsewhere.
func LoadModule(dir string) ([]*Package, error) {
	modPath, err := modulePath(filepath.Join(dir, "go.mod"))
	if err != nil {
		return nil, err
	}

	// Discover package directories.
	var dirs []string
	err = filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != dir && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
			name == "testdata" || name == "vendor") {
			return filepath.SkipDir
		}
		ents, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		for _, e := range ents {
			if isSourceFile(e.Name()) {
				dirs = append(dirs, path)
				break
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)

	// Parse each directory into an unchecked package.
	fset := token.NewFileSet()
	type parsed struct {
		pkg     *Package
		imports []string
	}
	byPath := make(map[string]*parsed)
	var order []string
	for _, pdir := range dirs {
		rel, err := filepath.Rel(dir, pdir)
		if err != nil {
			return nil, err
		}
		ipath := modPath
		if rel != "." {
			ipath = modPath + "/" + filepath.ToSlash(rel)
		}
		files, err := parseDir(fset, pdir)
		if err != nil {
			return nil, err
		}
		if len(files) == 0 {
			continue
		}
		p := &parsed{pkg: &Package{Path: ipath, Dir: pdir, Fset: fset, Files: files}}
		seen := map[string]bool{}
		for _, f := range files {
			for _, imp := range f.Imports {
				v := strings.Trim(imp.Path.Value, `"`)
				if strings.HasPrefix(v, modPath+"/") && !seen[v] {
					seen[v] = true
					p.imports = append(p.imports, v)
				}
			}
		}
		byPath[ipath] = p
		order = append(order, ipath)
	}

	// Topologically sort by intra-module imports, then type-check in order
	// so each package's dependencies are already available to the importer.
	sorted, err := toposort(order, func(path string) []string {
		if p, ok := byPath[path]; ok {
			return p.imports
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	imp := &moduleImporter{local: make(map[string]*types.Package), std: importer.Default()}
	var out []*Package
	for _, ipath := range sorted {
		p := byPath[ipath]
		if err := typecheck(p.pkg, imp); err != nil {
			return nil, err
		}
		imp.local[ipath] = p.pkg.Types
		out = append(out, p.pkg)
	}
	return out, nil
}

// LoadDir parses and type-checks the single package in dir, assigning it
// the given import path. It is the loader the golden-file tests use:
// testdata packages import only the standard library, and the assigned
// path controls which package-scoped rules apply.
func LoadDir(dir, ipath string) (*Package, error) {
	fset := token.NewFileSet()
	files, err := parseDir(fset, dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	pkg := &Package{Path: ipath, Dir: dir, Fset: fset, Files: files}
	if err := typecheck(pkg, importer.Default()); err != nil {
		return nil, err
	}
	return pkg, nil
}

func isSourceFile(name string) bool {
	return strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") &&
		!strings.HasPrefix(name, ".") && !strings.HasPrefix(name, "_")
}

func parseDir(fset *token.FileSet, dir string) ([]*ast.File, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range ents {
		if e.IsDir() || !isSourceFile(e.Name()) {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

func typecheck(pkg *Package, imp types.Importer) error {
	var errs []error
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { errs = append(errs, err) },
	}
	pkg.Info = newInfo()
	tpkg, err := conf.Check(pkg.Path, pkg.Fset, pkg.Files, pkg.Info)
	if len(errs) > 0 {
		return fmt.Errorf("analysis: type-checking %s: %w", pkg.Path, errs[0])
	}
	if err != nil {
		return fmt.Errorf("analysis: type-checking %s: %w", pkg.Path, err)
	}
	pkg.Types = tpkg
	return nil
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", fmt.Errorf("analysis: %w (run sbgt-lint from inside the module)", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("analysis: no module directive in %s", gomod)
}

// toposort orders paths so dependencies precede dependents, failing on
// import cycles.
func toposort(paths []string, deps func(string) []string) ([]string, error) {
	const (
		white = iota // unvisited
		gray         // on stack
		black        // done
	)
	state := make(map[string]int, len(paths))
	var out []string
	var visit func(string) error
	visit = func(p string) error {
		switch state[p] {
		case gray:
			return fmt.Errorf("analysis: import cycle through %s", p)
		case black:
			return nil
		}
		state[p] = gray
		for _, d := range deps(p) {
			if err := visit(d); err != nil {
				return err
			}
		}
		state[p] = black
		out = append(out, p)
		return nil
	}
	for _, p := range paths {
		if err := visit(p); err != nil {
			return nil, err
		}
	}
	return out, nil
}
