package analysis

import (
	"strings"
	"testing"
)

// FuzzAllowParser drives the //lint:allow comment parser with arbitrary
// comment text: it must never panic, and its classification must stay
// consistent (an accepted allow always carries the prefix; name and
// reason never contain leading/trailing space).
func FuzzAllowParser(f *testing.F) {
	f.Add("//lint:allow errcheck teardown of an abandoned connection")
	f.Add("//lint:allow deadline")
	f.Add("//lint:allow")
	f.Add("// ordinary comment")
	f.Add("//lint:allowdeadline smashed together")
	f.Add("//lint:allow   deadline   spaced   reason  ")
	f.Add("//lint:allow\tdeadline\ttabbed")
	f.Add("//lint:allow \x00 nul bytes")
	f.Fuzz(func(t *testing.T, text string) {
		name, reason, ok := parseAllow(text)
		wantOK := text == allowPrefix ||
			strings.HasPrefix(text, allowPrefix+" ") ||
			strings.HasPrefix(text, allowPrefix+"\t")
		if ok != wantOK {
			t.Fatalf("parseAllow(%q) ok = %v, want %v", text, ok, wantOK)
		}
		if !ok {
			return
		}
		if reason != strings.TrimSpace(reason) {
			t.Fatalf("unnormalized reason %q from %q", reason, text)
		}
		for _, s := range []string{name, reason} {
			for _, r := range s {
				if r == '\n' || r == '\r' || r == '\t' {
					t.Fatalf("control character leaked into %q from %q", s, text)
				}
			}
		}
	})
}

// FuzzBaselineReader drives the committed-ledger parser with hostile
// bytes: malformed JSON, wrong versions, and truncated documents must
// return an error, never panic, and an accepted baseline must satisfy the
// invariants ReadBaseline promises (version match, positive counts, no
// duplicate keys).
func FuzzBaselineReader(f *testing.F) {
	f.Add([]byte(`{"version": 1, "entries": []}`))
	f.Add([]byte(`{"version": 1, "entries": [{"analyzer": "deadline", "file": "a.go", "message": "m", "count": 2}]}`))
	f.Add([]byte(`{"version": 9}`))
	f.Add([]byte(`{"version": 1, "entries": [{"count": -1}]}`))
	f.Add([]byte(`[]`))
	f.Add([]byte(`{`))
	f.Add([]byte(``))
	f.Add([]byte("\x00\x01\x02"))
	f.Fuzz(func(t *testing.T, data []byte) {
		b, err := ReadBaseline(data)
		if err != nil {
			return
		}
		if b.Version != baselineVersion {
			t.Fatalf("accepted version %d", b.Version)
		}
		seen := map[string]bool{}
		for _, e := range b.Entries {
			if e.Analyzer == "" || e.File == "" || e.Message == "" || e.Count < 1 {
				t.Fatalf("accepted invalid entry %+v", e)
			}
			key := baselineKey(e.Analyzer, e.File, e.Message)
			if seen[key] {
				t.Fatalf("accepted duplicate entry %+v", e)
			}
			seen[key] = true
		}
		// An accepted ledger must survive a marshal/read round trip.
		data2, err := b.Marshal()
		if err != nil {
			t.Fatalf("marshal of accepted baseline failed: %v", err)
		}
		if _, err := ReadBaseline(data2); err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
	})
}
