// Package analysis is a zero-dependency static-analysis framework for this
// repository, built directly on go/parser and go/types.
//
// SBGT's reproducibility claims rest on invariants the compiler cannot
// check: simulations must be bit-stable for a fixed seed regardless of
// goroutine scheduling, all parallelism must flow through the approved
// substrate (internal/engine, internal/cluster), floating-point code must
// not rely on exact equality or naive probability products, and errors
// must not be silently dropped. Each invariant is encoded as an Analyzer;
// cmd/sbgt-lint runs the suite over every package in the module and exits
// non-zero on any diagnostic, so the invariants gate CI.
//
// Intentional exceptions are annotated in source with
//
//	//lint:allow <analyzer> <reason>
//
// which suppresses diagnostics from <analyzer> on the comment's line and
// the line below it. The reason is mandatory; a bare allow is itself a
// diagnostic. See allow.go.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one finding: a position, the analyzer that produced it,
// and a human-readable message.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Analyzer is one named invariant check. Run inspects a single
// type-checked package through the Pass and reports findings.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and lint:allow comments.
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Run executes the analyzer over one package.
	Run func(*Pass)
}

// Pass carries one type-checked package through one analyzer execution.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// PkgPath is the package's import path (e.g. "repro/internal/prob").
	PkgPath string
	Files   []*ast.File
	Pkg     *types.Package
	Info    *types.Info

	flow *flowCache
	sink *[]Diagnostic
}

// flowCache shares the expensive flow structures — the module-wide call
// graph, per-function CFGs, and analyzer summaries — across every
// (package, analyzer) pass of one Run.
type flowCache struct {
	pkgs []*Package
	cg   *CallGraph
	cfgs map[ast.Node]*CFG
	// memo holds analyzer-owned module-wide computations (e.g. the
	// blocks-forever summary), keyed by analyzer name.
	memo map[string]any
}

func newFlowCache(pkgs []*Package) *flowCache {
	return &flowCache{pkgs: pkgs, cfgs: make(map[ast.Node]*CFG), memo: make(map[string]any)}
}

func (f *flowCache) callGraph() *CallGraph {
	if f.cg == nil {
		f.cg = BuildCallGraph(f.pkgs)
	}
	return f.cg
}

func (f *flowCache) cfg(n *CGNode) *CFG {
	if n == nil || n.Fn == nil {
		return nil
	}
	c, ok := f.cfgs[n.Fn]
	if !ok {
		c = BuildCFG(n.Fn, n.Name)
		f.cfgs[n.Fn] = c
	}
	return c
}

// CallGraph returns the call graph over every package of this run (the
// whole module under cmd/sbgt-lint; the single loaded package in tests).
func (p *Pass) CallGraph() *CallGraph { return p.flow.callGraph() }

// CFGOf returns the (cached) control-flow graph of a call-graph node.
func (p *Pass) CFGOf(n *CGNode) *CFG { return p.flow.cfg(n) }

// Memo returns the analyzer's module-wide scratch value, creating it with
// build on first use. Analyzers use it to compute interprocedural
// summaries once instead of once per package.
func (p *Pass) Memo(build func() any) any {
	v, ok := p.flow.memo[p.Analyzer.Name]
	if !ok {
		v = build()
		p.flow.memo[p.Analyzer.Name] = v
	}
	return v
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.sink = append(*p.sink, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of expr, or nil when type information is
// unavailable (which analyzers treat as "don't flag").
func (p *Pass) TypeOf(expr ast.Expr) types.Type {
	return p.Info.TypeOf(expr)
}

// CalleeName resolves the fully qualified name of a call's target, such
// as "math.Log", "time.Now", "(*strings.Builder).WriteString", or
// "(net.Listener).Close". It returns "" for calls it cannot resolve
// (function values, builtins, type conversions).
func (p *Pass) CalleeName(call *ast.CallExpr) string {
	var id *ast.Ident
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fn
	case *ast.SelectorExpr:
		id = fn.Sel
	default:
		return ""
	}
	if f, ok := p.Info.Uses[id].(*types.Func); ok {
		return f.FullName()
	}
	return ""
}

// Inspect walks every file in the package in depth-first order.
func (p *Pass) Inspect(fn func(ast.Node) bool) {
	for _, f := range p.Files {
		ast.Inspect(f, fn)
	}
}

// pathHasSegment reports whether the import path contains seg as a whole
// "/"-separated segment (so "cmd" matches "repro/cmd/sbgt" but not
// "repro/cmdlets").
func pathHasSegment(path, seg string) bool {
	for _, s := range strings.Split(path, "/") {
		if s == seg {
			return true
		}
	}
	return false
}

// pathHasSuffix reports whether path ends with the "/"-separated suffix,
// e.g. pathHasSuffix("repro/internal/prob", "internal/prob").
func pathHasSuffix(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}

// Run executes every analyzer over every package, applies the per-file
// allowlists, and returns the surviving diagnostics sorted by position.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	diags, _ := run(pkgs, analyzers)
	return diags
}

// RunAudit is Run plus the waiver audit: the second slice holds one
// diagnostic (analyzer "allow") per //lint:allow comment that suppressed
// nothing in this run. Auditing is only meaningful when every analyzer
// runs — a waiver for an analyzer excluded from the run is reported as
// stale, which is exactly the CI-facing behavior (-audit forces the full
// suite in cmd/sbgt-lint).
func RunAudit(pkgs []*Package, analyzers []*Analyzer) (diags, stale []Diagnostic) {
	return run(pkgs, analyzers)
}

func run(pkgs []*Package, analyzers []*Analyzer) (out, stale []Diagnostic) {
	flow := newFlowCache(pkgs)
	for _, pkg := range pkgs {
		allows, allowDiags := collectAllows(pkg)
		out = append(out, allowDiags...)
		var raw []Diagnostic
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				PkgPath:  pkg.Path,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				flow:     flow,
				sink:     &raw,
			}
			a.Run(pass)
		}
		for _, d := range raw {
			if !allows.allowed(d) {
				out = append(out, d)
			}
		}
		stale = append(stale, allows.stale()...)
	}
	sortDiagnostics(out)
	sortDiagnostics(stale)
	return out, stale
}

func sortDiagnostics(out []Diagnostic) {
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}
