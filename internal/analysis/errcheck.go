package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// Errcheck flags discarded error returns in non-test code: bare call
// statements whose callee returns an error, and assignments that bind an
// error result to the blank identifier. A dropped error turns a failed
// update into a silently wrong posterior, which in a surveillance system
// is worse than a crash.
//
// Exemptions, chosen to keep the signal high:
//
//   - deferred calls: deferred cleanup (Close on teardown paths) is
//     conventionally best-effort;
//   - fmt.Print*/Fprint*: formatted-output errors surface through the
//     underlying writer's Flush/Close, which this analyzer does check;
//   - methods on strings.Builder and bytes.Buffer, which are documented
//     never to return a non-nil error.
var Errcheck = &Analyzer{
	Name: "errcheck",
	Doc:  "flag discarded error returns (bare calls and _ assignments)",
	Run:  runErrcheck,
}

func runErrcheck(pass *Pass) {
	pass.Inspect(func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			return false // deferred cleanup is best-effort by convention
		case *ast.ExprStmt:
			call, ok := n.X.(*ast.CallExpr)
			if !ok || errcheckExempt(pass, call) {
				return true
			}
			if errorResultPositions(pass, call) != nil {
				pass.Reportf(call.Pos(), "result of %s contains an error that is discarded; handle it or lint:allow with a reason", calleeLabel(pass, call))
			}
		case *ast.AssignStmt:
			checkBlankErrorAssign(pass, n)
		}
		return true
	})
}

// checkBlankErrorAssign flags `_ = f()` and `v, _ := g()` forms where the
// blanked position carries an error.
func checkBlankErrorAssign(pass *Pass, as *ast.AssignStmt) {
	if len(as.Rhs) != 1 {
		return
	}
	call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
	if !ok || errcheckExempt(pass, call) {
		return
	}
	errPos := errorResultPositions(pass, call)
	if errPos == nil {
		return
	}
	if len(as.Lhs) == 1 {
		// `_ = f()` with f returning exactly one value (an error).
		if isBlank(as.Lhs[0]) {
			pass.Reportf(as.Pos(), "error result of %s assigned to _; handle it or lint:allow with a reason", calleeLabel(pass, call))
		}
		return
	}
	for _, i := range errPos {
		if i < len(as.Lhs) && isBlank(as.Lhs[i]) {
			pass.Reportf(as.Lhs[i].Pos(), "error result of %s assigned to _; handle it or lint:allow with a reason", calleeLabel(pass, call))
		}
	}
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}

// errorResultPositions returns the indices of error-typed results of the
// call, or nil when it returns no error (or no type info is available).
func errorResultPositions(pass *Pass, call *ast.CallExpr) []int {
	t := pass.TypeOf(call)
	if t == nil {
		return nil
	}
	errType := types.Universe.Lookup("error").Type()
	switch t := t.(type) {
	case *types.Tuple:
		var out []int
		for i := 0; i < t.Len(); i++ {
			if types.Identical(t.At(i).Type(), errType) {
				out = append(out, i)
			}
		}
		return out
	default:
		if types.Identical(t, errType) {
			return []int{0}
		}
	}
	return nil
}

// errcheckExempt reports whether the call is on the analyzer's exemption
// list.
func errcheckExempt(pass *Pass, call *ast.CallExpr) bool {
	name := pass.CalleeName(call)
	if name == "" {
		return false
	}
	if strings.HasPrefix(name, "(*strings.Builder).") || strings.HasPrefix(name, "(*bytes.Buffer).") {
		return true
	}
	switch name {
	case "fmt.Print", "fmt.Printf", "fmt.Println",
		"fmt.Fprint", "fmt.Fprintf", "fmt.Fprintln":
		return true
	}
	return false
}

// calleeLabel names the call for diagnostics, falling back to "call" for
// dynamic callees.
func calleeLabel(pass *Pass, call *ast.CallExpr) string {
	if name := pass.CalleeName(call); name != "" {
		return name
	}
	return "call"
}
