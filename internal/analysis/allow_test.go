package analysis

import "testing"

func TestAllowGolden(t *testing.T) {
	// The golden holds exactly: the errcheck diagnostic the wrong-analyzer
	// annotation failed to suppress, the malformed-allow diagnostic, and
	// the errcheck diagnostic the malformed annotation failed to suppress.
	// The correctly annotated sites must be absent.
	runGolden(t, "allow", "repro/internal/latticeio", "allow", []*Analyzer{Errcheck})
}

func TestAllowSuppressesOnlyNamedAnalyzer(t *testing.T) {
	diags := loadAndRun(t, "allow", "repro/internal/latticeio", []*Analyzer{Errcheck})
	counts := countByAnalyzer(diags)
	if counts["errcheck"] != 2 {
		t.Errorf("want 2 surviving errcheck diagnostics (wrong analyzer + malformed), got %d", counts["errcheck"])
	}
	if counts["allow"] != 1 {
		t.Errorf("want 1 malformed-allow diagnostic, got %d", counts["allow"])
	}
}
