package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Lockdiscipline enforces two mutex invariants on the CFG and call graph:
//
//  1. Release on every path: a sync.Mutex/RWMutex Lock (or RLock) must be
//     followed by the matching Unlock on every path to function exit,
//     either explicitly or by a defer registered on the path. A return
//     that sneaks out with the lock held deadlocks the next caller.
//
//  2. Consistent order across functions: if one call path acquires lock A
//     and then (still holding A) reaches code that acquires B, while
//     another acquires B then A, the two paths can deadlock against each
//     other. Lock identities are type-qualified field paths, so `p.mu` in
//     one method and `pool.mu` in another unify. Acquiring the same lock
//     again while it is held (via a static call chain) is reported as a
//     self-deadlock.
var Lockdiscipline = &Analyzer{
	Name: "lockdiscipline",
	Doc: "flag Lock calls without a matching Unlock/defer on every exit " +
		"path, and lock-order inversions across the call graph",
	Run: runLockdiscipline,
}

// lockNames maps acquire methods to their release counterparts.
var lockNames = map[string]string{
	"(*sync.Mutex).Lock":    "(*sync.Mutex).Unlock",
	"(*sync.RWMutex).Lock":  "(*sync.RWMutex).Unlock",
	"(*sync.RWMutex).RLock": "(*sync.RWMutex).RUnlock",
}

// lockOrderEdge is one "A held while acquiring B" observation.
type lockOrderEdge struct {
	from, to string
	pos      token.Pos
	pkg      *Package
	via      string // callee name the acquisition happens through ("" = direct)
}

// lockSummaries is the module-wide half: per-function acquired locks and
// the held-while-acquiring order graph.
type lockSummaries struct {
	cg    *CallGraph
	flow  *flowCache
	acqs  map[*CGNode]map[string]token.Pos // memo: transitively acquired lock keys
	state map[*CGNode]int                  // 0 unvisited, 1 visiting, 2 done
	edges []lockOrderEdge
	built bool
}

func runLockdiscipline(pass *Pass) {
	sums := pass.Memo(func() any {
		s := &lockSummaries{
			cg:    pass.CallGraph(),
			flow:  pass.flow,
			acqs:  make(map[*CGNode]map[string]token.Pos),
			state: make(map[*CGNode]int),
		}
		s.build()
		return s
	}).(*lockSummaries)

	// Per-function release-on-every-path checks, for functions whose body
	// lives in this package.
	for _, node := range sums.cg.Nodes {
		if node.Pkg == nil || node.Pkg.Path != pass.PkgPath {
			continue
		}
		checkLockReleases(pass, sums, node)
	}

	// Order-inversion and self-deadlock reports for edges observed in this
	// package.
	sums.reportInversions(pass)
}

// checkLockReleases verifies every Lock site in node's CFG reaches a
// matching Unlock (or registered defer) on all paths to exit.
func checkLockReleases(pass *Pass, sums *lockSummaries, node *CGNode) {
	cfg := sums.flow.cfg(node)
	if cfg == nil {
		return
	}
	info := node.Pkg.Info
	body := funcBody(node.Fn)
	inspectNoLits(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name := fullCalleeName(info, call)
		unlockName, isLock := lockNames[name]
		if !isLock {
			return true
		}
		recv := receiverExprString(call)
		isRelease := func(m ast.Node) bool {
			return containsCallNamed(info, m, func(cn string, c *ast.CallExpr) bool {
				return cn == unlockName && receiverExprString(c) == recv
			})
		}
		// Covered when no exit path avoids the release, or when a matching
		// defer was registered before the Lock (unusual but sound).
		if !cfg.PathAvoiding(call, isRelease) {
			return true
		}
		for _, prior := range cfg.BackwardNodes(call) {
			if d, ok := prior.(*ast.DeferStmt); ok && isRelease(d) {
				return true
			}
		}
		pass.Reportf(call.Pos(),
			"%s.%s is not released on every path to return; add %s.%s or a defer on the escaping path",
			recv, shortLockName(name), recv, shortLockName(unlockName))
		return true
	})
}

// shortLockName renders "(*sync.Mutex).Lock" as "Lock()".
func shortLockName(full string) string {
	for i := len(full) - 1; i >= 0; i-- {
		if full[i] == '.' {
			return full[i+1:] + "()"
		}
	}
	return full
}

// receiverExprString renders the receiver expression of a method call
// ("p.mu", "m.pool.mu") for same-function matching.
func receiverExprString(call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	return types.ExprString(sel.X)
}

// lockKey renders a cross-function lock identity: the receiver's
// innermost named type plus the field selector path, or the package-level
// variable's qualified name.
func lockKey(info *types.Info, pkg *Package, call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	recv := ast.Unparen(sel.X)
	switch r := recv.(type) {
	case *ast.SelectorExpr:
		// x.mu (or x.inner.mu): qualify by the type of x and the field name.
		if t := info.TypeOf(r.X); t != nil {
			return trimModule(typeString(t)) + "." + r.Sel.Name
		}
		return r.Sel.Name
	case *ast.Ident:
		if obj := info.Uses[r]; obj != nil {
			if obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope() {
				return trimModule(obj.Pkg().Path()) + "." + r.Name
			}
			// Function-local mutex: identity is scoped to this module run;
			// the position string keeps distinct locals distinct.
			return "local." + r.Name
		}
	}
	return types.ExprString(recv)
}

// typeString renders a type with pointers stripped so (*Pool).mu and
// Pool.mu unify.
func typeString(t types.Type) string {
	for {
		p, ok := t.(*types.Pointer)
		if !ok {
			break
		}
		t = p.Elem()
	}
	return t.String()
}

// build computes acquired-lock summaries for every node and collects the
// held-while-acquiring order edges.
func (s *lockSummaries) build() {
	for _, node := range s.cg.Nodes {
		s.acquired(node)
	}
	for _, node := range s.cg.Nodes {
		s.collectHeldEdges(node)
	}
	s.built = true
}

// acquired returns the set of lock keys node may acquire, directly or
// through static calls (memoized; cycles break optimistically).
func (s *lockSummaries) acquired(node *CGNode) map[string]token.Pos {
	if s.state[node] == 2 {
		return s.acqs[node]
	}
	if s.state[node] == 1 {
		return nil
	}
	s.state[node] = 1
	out := make(map[string]token.Pos)
	info := node.Pkg.Info
	inspectNoLits(funcBody(node.Fn), func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if _, isLock := lockNames[fullCalleeName(info, call)]; isLock {
			if key := lockKey(info, node.Pkg, call); key != "" {
				if _, seen := out[key]; !seen {
					out[key] = call.Pos()
				}
			}
		}
		return true
	})
	for _, e := range node.Calls {
		if e.Ref {
			continue
		}
		for key, pos := range s.acquired(e.Callee) {
			if _, seen := out[key]; !seen {
				out[key] = pos
			}
		}
	}
	s.acqs[node] = out
	s.state[node] = 2
	return out
}

// collectHeldEdges walks each Lock→Unlock window in node's CFG and
// records an order edge for every lock acquired inside the window —
// directly or via a static callee.
func (s *lockSummaries) collectHeldEdges(node *CGNode) {
	cfg := s.flow.cfg(node)
	if cfg == nil {
		return
	}
	info := node.Pkg.Info
	inspectNoLits(funcBody(node.Fn), func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name := fullCalleeName(info, call)
		unlockName, isLock := lockNames[name]
		if !isLock {
			return true
		}
		heldKey := lockKey(info, node.Pkg, call)
		if heldKey == "" {
			return true
		}
		recv := receiverExprString(call)
		isRelease := func(m ast.Node) bool {
			if _, ok := m.(*ast.DeferStmt); ok {
				// A deferred unlock runs at function exit: the lock stays held
				// through everything after it, so it must not close the window.
				return false
			}
			return containsCallNamed(info, m, func(cn string, c *ast.CallExpr) bool {
				return cn == unlockName && receiverExprString(c) == recv
			})
		}
		for _, held := range cfg.NodesBetween(call, isRelease) {
			inspectNoLits(held, func(m ast.Node) bool {
				inner, ok := m.(*ast.CallExpr)
				if !ok {
					return true
				}
				// Direct nested acquisition.
				if _, isL := lockNames[fullCalleeName(info, inner)]; isL {
					if key := lockKey(info, node.Pkg, inner); key != "" && inner != call {
						s.edges = append(s.edges, lockOrderEdge{heldKey, key, inner.Pos(), node.Pkg, ""})
					}
					return true
				}
				// Acquisition through a static module callee.
				if id := calleeIdent(inner); id != nil {
					if obj, ok := info.Uses[id].(*types.Func); ok {
						if callee := s.cg.NodeFor(obj); callee != nil {
							for key := range s.acquired(callee) {
								s.edges = append(s.edges, lockOrderEdge{heldKey, key, inner.Pos(), node.Pkg, callee.Name})
							}
						}
					}
				}
				return true
			})
		}
		return true
	})
}

// reportInversions emits order-inversion and self-deadlock diagnostics
// for edges sited in the current package.
func (s *lockSummaries) reportInversions(pass *Pass) {
	// Index edges by (from, to) for the inversion lookup.
	type pair struct{ from, to string }
	index := make(map[pair]lockOrderEdge, len(s.edges))
	for _, e := range s.edges {
		p := pair{e.from, e.to}
		if prev, ok := index[p]; !ok || e.pos < prev.pos {
			index[p] = e
		}
	}
	var msgs []Diagnostic
	seen := map[string]bool{}
	for _, e := range s.edges {
		if e.pkg == nil || e.pkg.Path != pass.PkgPath {
			continue
		}
		if e.from == e.to {
			via := ""
			if e.via != "" {
				via = fmt.Sprintf(" (via %s)", e.via)
			}
			key := fmt.Sprintf("self|%s|%d", e.from, e.pos)
			if !seen[key] {
				seen[key] = true
				msgs = append(msgs, Diagnostic{
					Analyzer: pass.Analyzer.Name,
					Pos:      pass.Fset.Position(e.pos),
					Message: fmt.Sprintf("possible self-deadlock: %s may be acquired%s while already held",
						e.from, via),
				})
			}
			continue
		}
		if rev, ok := index[pair{e.to, e.from}]; ok {
			key := fmt.Sprintf("inv|%s|%s|%d", e.from, e.to, e.pos)
			if !seen[key] {
				seen[key] = true
				revPos := rev.pkg.Fset.Position(rev.pos)
				msgs = append(msgs, Diagnostic{
					Analyzer: pass.Analyzer.Name,
					Pos:      pass.Fset.Position(e.pos),
					Message: fmt.Sprintf("lock order inversion: %s is held while acquiring %s here, but the opposite order occurs at %s:%d",
						e.from, e.to, shortFile(revPos.Filename), revPos.Line),
				})
			}
		}
	}
	sort.Slice(msgs, func(i, j int) bool {
		if msgs[i].Pos.Line != msgs[j].Pos.Line {
			return msgs[i].Pos.Line < msgs[j].Pos.Line
		}
		return msgs[i].Message < msgs[j].Message
	})
	for _, d := range msgs {
		*pass.sink = append(*pass.sink, d)
	}
}
