package analysis

import (
	"go/ast"
	"go/types"
)

// approvedConcurrencyPackage reports whether a package may spawn
// goroutines directly. Everything else must route parallelism through
// engine.Pool (or the cluster driver/executor built on it) so that work
// decomposition — and therefore reduction order — stays under the
// substrate's control.
func approvedConcurrencyPackage(path string) bool {
	return pathHasSuffix(path, "internal/engine") ||
		pathHasSuffix(path, "internal/cluster") ||
		pathHasSuffix(path, "internal/obs") ||
		pathHasSegment(path, "cmd")
}

// Concurrency enforces the parallelism discipline:
//
//   - `go` statements are flagged outside internal/engine, internal/cluster, internal/obs,
//     and cmd/* — ad-hoc goroutines bypass the pool's deterministic
//     partition-ordered reductions and its panic containment;
//   - copying a value whose type (transitively) contains sync.Mutex,
//     sync.WaitGroup, sync.Once, sync.Cond, sync.Map, sync.Pool, or a
//     sync/atomic value splits its internal state, a classic source of
//     silent races. Value receivers, by-value parameters, plain
//     assignments, and range clauses are checked.
var Concurrency = &Analyzer{
	Name: "concurrency",
	Doc: "flag goroutines outside the approved substrate packages and " +
		"by-value copies of lock-containing types",
	Run: runConcurrency,
}

func runConcurrency(pass *Pass) {
	approved := approvedConcurrencyPackage(pass.PkgPath)

	pass.Inspect(func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			if !approved {
				pass.Reportf(n.Pos(),
					"goroutine outside the approved concurrency substrate (internal/engine, internal/cluster, internal/obs, cmd/*); route parallelism through engine.Pool")
			}
		case *ast.FuncDecl:
			if n.Recv != nil && len(n.Recv.List) == 1 {
				checkLockParam(pass, n.Recv.List[0], "receiver of method "+n.Name.Name)
			}
			for _, p := range n.Type.Params.List {
				checkLockParam(pass, p, "parameter of "+n.Name.Name)
			}
		case *ast.FuncLit:
			for _, p := range n.Type.Params.List {
				checkLockParam(pass, p, "parameter of function literal")
			}
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				// `_ = x` discards the copy; nothing can observe the split state.
				if len(n.Lhs) == len(n.Rhs) && isBlank(n.Lhs[i]) {
					continue
				}
				checkLockCopyExpr(pass, rhs)
			}
		case *ast.RangeStmt:
			if n.Value != nil && !isBlank(n.Value) {
				if t := pass.TypeOf(n.Value); t != nil {
					if lock := lockComponent(t); lock != "" {
						pass.Reportf(n.Value.Pos(),
							"range clause copies %s, which contains %s; iterate by index or use pointers", t, lock)
					}
				}
			}
		}
		return true
	})
}

// checkLockParam flags a by-value receiver or parameter whose type
// contains a lock.
func checkLockParam(pass *Pass, field *ast.Field, what string) {
	t := pass.TypeOf(field.Type)
	if t == nil {
		return
	}
	if _, ok := t.(*types.Pointer); ok {
		return
	}
	if lock := lockComponent(t); lock != "" {
		pass.Reportf(field.Pos(), "%s passes %s by value, copying its %s; use a pointer", what, t, lock)
	}
}

// checkLockCopyExpr flags assignment right-hand sides that copy a
// lock-containing value. Composite literals and calls construct fresh
// values and are not copies of live state.
func checkLockCopyExpr(pass *Pass, rhs ast.Expr) {
	switch ast.Unparen(rhs).(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
	default:
		return
	}
	t := pass.TypeOf(rhs)
	if t == nil {
		return
	}
	if _, ok := t.(*types.Pointer); ok {
		return
	}
	if lock := lockComponent(t); lock != "" {
		pass.Reportf(rhs.Pos(), "assignment copies %s, which contains %s; use a pointer", t, lock)
	}
}

// lockTypes are the sync and sync/atomic types that must never be copied
// once in use.
var lockTypes = map[string]bool{
	"sync.Mutex": true, "sync.RWMutex": true, "sync.WaitGroup": true,
	"sync.Once": true, "sync.Cond": true, "sync.Map": true, "sync.Pool": true,
	"sync/atomic.Bool": true, "sync/atomic.Int32": true, "sync/atomic.Int64": true,
	"sync/atomic.Uint32": true, "sync/atomic.Uint64": true, "sync/atomic.Uintptr": true,
	"sync/atomic.Pointer": true, "sync/atomic.Value": true,
}

// lockComponent returns the name of a no-copy component reachable from t
// by value (fields, array elements), or "" if none.
func lockComponent(t types.Type) string {
	return lockComponentRec(t, make(map[types.Type]bool))
}

func lockComponentRec(t types.Type, seen map[types.Type]bool) string {
	if seen[t] {
		return ""
	}
	seen[t] = true
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil {
			name := obj.Pkg().Path() + "." + obj.Name()
			if lockTypes[name] {
				return obj.Pkg().Name() + "." + obj.Name()
			}
		}
		return lockComponentRec(named.Underlying(), seen)
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if lock := lockComponentRec(u.Field(i).Type(), seen); lock != "" {
				return lock
			}
		}
	case *types.Array:
		return lockComponentRec(u.Elem(), seen)
	}
	return ""
}
