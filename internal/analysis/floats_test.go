package analysis

import "testing"

func TestFloatsGolden(t *testing.T) {
	runGolden(t, "floats", "repro/internal/prob", "floats", []*Analyzer{Floats})
}

func TestFloatsModuleWide(t *testing.T) {
	// Float hygiene is not package-gated: the same diagnostics fire under
	// any import path.
	a := loadAndRun(t, "floats", "repro/internal/prob", []*Analyzer{Floats})
	b := loadAndRun(t, "floats", "repro/cmd/sbgt-bench", []*Analyzer{Floats})
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("floats diagnostics differ by package: %d vs %d", len(a), len(b))
	}
}
