package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// numericPackages are the packages whose results must be bit-stable for a
// fixed seed: the probability kernels, the lattice posterior, the pool
// selection strategies, and the simulation harnesses. Matching is by
// import-path suffix so the rules also apply under test loaders.
var numericPackages = []string{
	"internal/prob",
	"internal/lattice",
	"internal/halving",
	"internal/dilution",
	"internal/stats",
	"internal/sparse",
	"internal/posterior",
	"internal/baseline",
	"internal/calculator",
	"internal/rng",
}

func isNumericPackage(path string) bool {
	for _, p := range numericPackages {
		if pathHasSuffix(path, p) {
			return true
		}
	}
	return false
}

// Determinism enforces schedule- and clock-independent results:
//
//   - math/rand (and math/rand/v2) is banned module-wide except in
//     internal/rng, whose splittable xoshiro256** streams are the one
//     sanctioned randomness source. A shared global generator makes
//     replicate output depend on goroutine scheduling.
//   - time.Now is banned in numeric packages: seeding or branching on the
//     wall clock makes runs unreproducible.
//   - accumulating floats across a map range in a numeric package is
//     banned: Go randomizes map iteration order, and floating-point
//     addition is not associative, so the sum changes run to run.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc: "forbid math/rand, wall-clock randomness, and map-iteration-order-" +
		"dependent accumulation so simulations are bit-stable for a fixed seed",
	Run: runDeterminism,
}

func runDeterminism(pass *Pass) {
	rngSanctioned := pathHasSuffix(pass.PkgPath, "internal/rng")
	numeric := isNumericPackage(pass.PkgPath)

	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			if (path == "math/rand" || path == "math/rand/v2") && !rngSanctioned {
				pass.Reportf(imp.Pos(),
					"import %s is forbidden: thread a *rng.Source (internal/rng) so results are schedule-independent", path)
			}
		}
	}

	if !numeric {
		return
	}

	pass.Inspect(func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if pass.CalleeName(n) == "time.Now" {
				pass.Reportf(n.Pos(),
					"time.Now in a numeric package makes results clock-dependent; accept an explicit seed or timestamp parameter")
			}
		case *ast.RangeStmt:
			if t := pass.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Map); ok {
					checkMapAccumulation(pass, n)
				}
			}
		}
		return true
	})
}

// checkMapAccumulation flags float accumulation into variables declared
// outside a map-range loop: the iteration order is randomized, and float
// addition is order-sensitive, so the accumulated value is nondeterministic.
func checkMapAccumulation(pass *Pass, rs *ast.RangeStmt) {
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		switch as.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
			if id := floatIdentDeclaredOutside(pass, as.Lhs[0], rs); id != nil {
				pass.Reportf(as.Pos(),
					"float accumulation into %s across map iteration is order-dependent (map order is randomized); iterate sorted keys or use a partition-ordered reduction", id.Name)
			}
		case token.ASSIGN:
			// x = x + w style accumulation.
			if len(as.Lhs) != 1 || len(as.Rhs) != 1 {
				return true
			}
			id := floatIdentDeclaredOutside(pass, as.Lhs[0], rs)
			if id == nil {
				return true
			}
			if be, ok := as.Rhs[0].(*ast.BinaryExpr); ok && mentionsIdent(be, id.Name) {
				pass.Reportf(as.Pos(),
					"float accumulation into %s across map iteration is order-dependent (map order is randomized); iterate sorted keys or use a partition-ordered reduction", id.Name)
			}
		}
		return true
	})
}

// floatIdentDeclaredOutside returns expr as an identifier when it names a
// float variable declared outside the given statement's span.
func floatIdentDeclaredOutside(pass *Pass, expr ast.Expr, outside ast.Node) *ast.Ident {
	id, ok := expr.(*ast.Ident)
	if !ok {
		return nil
	}
	obj := pass.Info.Uses[id]
	if obj == nil {
		obj = pass.Info.Defs[id]
	}
	if obj == nil {
		return nil
	}
	if !isFloat(obj.Type()) {
		return nil
	}
	if obj.Pos() >= outside.Pos() && obj.Pos() < outside.End() {
		return nil
	}
	return id
}

func mentionsIdent(expr ast.Expr, name string) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && id.Name == name {
			found = true
		}
		return !found
	})
	return found
}

func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
