package analysis

// Shared helpers for the flow-sensitive analyzers: callee resolution
// against an arbitrary package's type info (the module-wide summaries
// cross package boundaries, so Pass.CalleeName is not enough) and AST
// walks that respect function-literal boundaries.

import (
	"go/ast"
	"go/types"
)

// fullCalleeName resolves a call's target to its fully qualified name
// ("math.Log", "(*sync.Mutex).Lock", "(net.Conn).Read") using the given
// package's type info. It returns "" for dynamic calls, builtins, and
// type conversions.
func fullCalleeName(info *types.Info, call *ast.CallExpr) string {
	id := calleeIdent(call)
	if id == nil {
		return ""
	}
	if f, ok := info.Uses[id].(*types.Func); ok {
		return f.FullName()
	}
	return ""
}

// inspectNoLits walks n's subtree like ast.Inspect but does not descend
// into nested function literals: their bodies execute on their own
// schedule and belong to their own CFG/call-graph node.
func inspectNoLits(n ast.Node, f func(ast.Node) bool) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok && m != n {
			return false
		}
		return f(m)
	})
}

// containsCallNamed reports whether n's subtree (literal boundaries
// respected) contains a call matching pred.
func containsCallNamed(info *types.Info, n ast.Node, pred func(name string, call *ast.CallExpr) bool) bool {
	found := false
	inspectNoLits(n, func(m ast.Node) bool {
		if found {
			return false
		}
		if call, ok := m.(*ast.CallExpr); ok {
			if pred(fullCalleeName(info, call), call) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// funcBody returns the body of a FuncDecl or FuncLit node.
func funcBody(fn ast.Node) *ast.BlockStmt {
	switch f := fn.(type) {
	case *ast.FuncDecl:
		return f.Body
	case *ast.FuncLit:
		return f.Body
	}
	return nil
}
