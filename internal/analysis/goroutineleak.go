package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Goroutineleak flags `go` statements that spawn a function which can
// block forever with no cancellation path. A goroutine parked on a
// channel nobody will ever service is a leak: it pins its stack, its
// captures, and — in this codebase — often a connection or a shard.
//
// The analysis is flow- and call-graph-sensitive. The spawned function
// (a literal or a statically resolved module function) and everything it
// statically calls are scanned for blocking operations reachable from
// entry in their CFGs:
//
//   - a channel send outside select,
//   - a channel receive outside select (close unblocks it, but only if
//     some path actually closes the channel — the waiver documents that),
//   - a select with neither a default case nor a cancellation arm
//     (<-ctx.Done(), <-time.After(...), a .C timer channel),
//   - sync.WaitGroup.Wait and sync.Cond.Wait, in the spawned function's
//     own body only: a Wait inside a transitive callee is overwhelmingly
//     a structured fork-join whose completion the callee guarantees.
//
// Ranging over a channel is treated as cancellable (close terminates the
// loop), which keeps the engine pool's worker pattern clean by
// construction. Dynamic calls (function values, interface methods) are
// not followed.
var Goroutineleak = &Analyzer{
	Name: "goroutineleak",
	Doc: "flag go statements whose function can block forever on a " +
		"channel, WaitGroup, or select with no cancellation path",
	Run: runGoroutineleak,
}

// blockSite is one blocking operation found in a function.
type blockSite struct {
	desc string
	pos  token.Pos
}

// leakSummaries memoizes, per call-graph node, the first uncancellable
// blocking operation transitively reachable through static calls (nil if
// none).
type leakSummaries struct {
	cg   *CallGraph
	memo map[cacheKey]*blockSite
	// visiting breaks call cycles: a cycle is optimistically assumed
	// non-blocking while being explored; any real blocking op on the cycle
	// is still found when the walk returns to it.
	visiting map[*CGNode]bool
	flow     *flowCache
}

func runGoroutineleak(pass *Pass) {
	sums := pass.Memo(func() any {
		return &leakSummaries{
			cg:       pass.CallGraph(),
			memo:     make(map[cacheKey]*blockSite),
			visiting: make(map[*CGNode]bool),
			flow:     pass.flow,
		}
	}).(*leakSummaries)

	pass.Inspect(func(n ast.Node) bool {
		g, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		target := sums.resolveTarget(pass, g.Call)
		if target == nil {
			return true
		}
		if site := sums.blocks(target, true); site != nil {
			pos := pass.Fset.Position(site.pos)
			pass.Reportf(g.Pos(),
				"goroutine may block forever: %s in %s (%s:%d) has no cancellation path; select on a done/context channel, add a default, or close the channel",
				site.desc, target.Name, shortFile(pos.Filename), pos.Line)
		}
		return true
	})
}

// resolveTarget maps a go statement's call to the spawned function's
// call-graph node: a literal, or a statically resolved module function.
func (s *leakSummaries) resolveTarget(pass *Pass, call *ast.CallExpr) *CGNode {
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		return s.cg.NodeForLit(lit)
	}
	if id := calleeIdent(call); id != nil {
		if obj, ok := pass.Info.Uses[id].(*types.Func); ok {
			return s.cg.NodeFor(obj)
		}
	}
	return nil
}

// blocks returns the first uncancellable blocking site reachable from
// node, or nil. direct marks the immediately spawned function: WaitGroup
// and Cond waits only count there — a Wait inside a transitive callee is
// overwhelmingly the structured fork-join pattern (engine.Pool.For,
// Pool.Close) whose completion the callee itself guarantees, while a Wait
// directly inside a spawned watcher is the shape that leaks.
func (s *leakSummaries) blocks(node *CGNode, direct bool) *blockSite {
	if site, ok := s.memo[cacheKey{node, direct}]; ok {
		return site
	}
	if s.visiting[node] {
		return nil
	}
	s.visiting[node] = true
	defer delete(s.visiting, node)

	site := s.localBlock(node, direct)
	if site == nil {
		for _, e := range node.Calls {
			if e.Ref {
				continue // a captured value may never run; calls only
			}
			if inner := s.blocks(e.Callee, false); inner != nil {
				site = inner
				break
			}
		}
	}
	s.memo[cacheKey{node, direct}] = site
	return site
}

type cacheKey struct {
	node   *CGNode
	direct bool
}

// localBlock scans one function's CFG-reachable statements for an
// uncancellable blocking operation.
func (s *leakSummaries) localBlock(node *CGNode, direct bool) *blockSite {
	cfg := s.flow.cfg(node)
	if cfg == nil {
		return nil
	}
	info := node.Pkg.Info
	reach := cfg.Reachable(cfg.Entry)

	// Select comm statements are exempt from the send/recv checks: their
	// blocking semantics are judged per select statement. The SelectStmt
	// node itself lives in no CFG block (dispatch scatters its clauses), so
	// selects are collected here and judged against their clauses' blocks.
	comms := map[ast.Node]bool{}
	var selects []*ast.SelectStmt
	inspectNoLits(funcBody(node.Fn), func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectStmt); ok {
			selects = append(selects, sel)
			for _, cl := range sel.Body.List {
				if cc, ok := cl.(*ast.CommClause); ok && cc.Comm != nil {
					comms[cc.Comm] = true
				}
			}
		}
		return true
	})

	var found *blockSite
	for _, blk := range cfg.Blocks {
		if !reach[blk] || found != nil {
			continue
		}
		for _, bn := range blk.Nodes {
			if found != nil {
				break
			}
			inspectNoLits(bn, func(n ast.Node) bool {
				if found != nil {
					return false
				}
				switch n := n.(type) {
				case *ast.SendStmt:
					if !comms[n] && !insideComm(comms, bn, n) {
						found = &blockSite{"channel send", n.Pos()}
						return false
					}
				case *ast.UnaryExpr:
					if n.Op == token.ARROW && !insideComm(comms, bn, n) {
						found = &blockSite{"channel receive", n.Pos()}
						return false
					}
				case *ast.CallExpr:
					if direct {
						switch fullCalleeName(info, n) {
						case "(*sync.WaitGroup).Wait":
							found = &blockSite{"sync.WaitGroup.Wait", n.Pos()}
							return false
						case "(*sync.Cond).Wait":
							found = &blockSite{"sync.Cond.Wait", n.Pos()}
							return false
						}
					}
				}
				return true
			})
		}
	}
	if found == nil {
		for _, sel := range selects {
			if selectCancellable(info, sel) || !selectInReach(cfg, reach, sel) {
				continue
			}
			found = &blockSite{"select with no default or cancellation arm", sel.Pos()}
			break
		}
	}
	return found
}

// selectInReach reports whether sel executes on some entry-reachable
// path, judged by its comm statements' blocks (an empty `select {}` has
// none to locate and is skipped — its surrounding code is unreachable
// anyway, which is its own problem).
func selectInReach(cfg *CFG, reach map[*Block]bool, sel *ast.SelectStmt) bool {
	for _, cl := range sel.Body.List {
		cc, ok := cl.(*ast.CommClause)
		if !ok || cc.Comm == nil {
			continue
		}
		if ref, ok := cfg.findNode(cc.Comm); ok && reach[ref.block] {
			return true
		}
	}
	return false
}

// insideComm reports whether inner sits inside a select comm statement
// within the block node bn (comm clauses' guards are judged with their
// select, not as bare sends/receives).
func insideComm(comms map[ast.Node]bool, bn, inner ast.Node) bool {
	if comms[bn] {
		return true
	}
	for comm := range comms {
		if containsNode(comm, inner) {
			return true
		}
	}
	return false
}

// selectCancellable reports whether a select statement has an escape arm:
// a default case, a receive from ctx.Done()/time.After/time.Tick, or a
// receive from a timer/ticker .C channel.
func selectCancellable(info *types.Info, sel *ast.SelectStmt) bool {
	for _, cl := range sel.Body.List {
		cc, ok := cl.(*ast.CommClause)
		if !ok {
			continue
		}
		if cc.Comm == nil {
			return true // default case
		}
		if recvChannelIsCancel(info, cc.Comm) {
			return true
		}
	}
	return false
}

// recvChannelIsCancel inspects one comm statement for a cancellation
// receive.
func recvChannelIsCancel(info *types.Info, comm ast.Stmt) bool {
	var expr ast.Expr
	switch c := comm.(type) {
	case *ast.ExprStmt:
		expr = c.X
	case *ast.AssignStmt:
		if len(c.Rhs) == 1 {
			expr = c.Rhs[0]
		}
	}
	un, ok := ast.Unparen(expr).(*ast.UnaryExpr)
	if !ok || un.Op != token.ARROW {
		return false
	}
	switch ch := ast.Unparen(un.X).(type) {
	case *ast.CallExpr:
		switch fullCalleeName(info, ch) {
		case "time.After", "time.Tick":
			return true
		}
		if id := calleeIdent(ch); id != nil && id.Name == "Done" {
			return true // context.Context.Done or a done()-style accessor
		}
	case *ast.SelectorExpr:
		if ch.Sel.Name == "C" {
			return true // time.Timer.C / time.Ticker.C
		}
		if ch.Sel.Name == "done" || ch.Sel.Name == "quit" || ch.Sel.Name == "stop" {
			return true // conventional cancellation channel fields
		}
	case *ast.Ident:
		switch ch.Name {
		case "done", "quit", "stop", "cancel":
			return true // conventional cancellation channel names
		}
	}
	return false
}

// shortFile trims a path to its final two segments for message brevity.
func shortFile(path string) string {
	parts := []rune(path)
	slashes := 0
	for i := len(parts) - 1; i >= 0; i-- {
		if parts[i] == '/' {
			slashes++
			if slashes == 2 {
				return string(parts[i+1:])
			}
		}
	}
	return path
}
