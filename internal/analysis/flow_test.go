package analysis

import (
	"fmt"
	"go/ast"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestGoroutineleakGolden, and its three siblings, pin the flow-sensitive
// analyzers' behavior on fixtures holding at least one true positive and
// one waived false positive each.
func TestGoroutineleakGolden(t *testing.T) {
	runGolden(t, "goroutineleak", "repro/internal/goroutineleak", "goroutineleak", []*Analyzer{Goroutineleak})
}

func TestLockdisciplineGolden(t *testing.T) {
	runGolden(t, "lockdiscipline", "repro/internal/lockdiscipline", "lockdiscipline", []*Analyzer{Lockdiscipline})
}

func TestDeadlineGolden(t *testing.T) {
	runGolden(t, "deadline", "repro/internal/deadline", "deadline", []*Analyzer{Deadline})
}

func TestCtxflowGolden(t *testing.T) {
	runGolden(t, "ctxflow", "repro/internal/ctxflow", "ctxflow", []*Analyzer{Ctxflow})
}

// compareGolden diffs got against testdata/<name>.golden, rewriting the
// golden when -update is set.
func compareGolden(t *testing.T, name, got string) {
	t.Helper()
	goldenPath := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("%s mismatch\n--- got ---\n%s--- want ---\n%s", name, got, want)
	}
}

// TestCFGGolden pins the CFG builder's block structure on the flow
// fixture: loops with break/continue and labels, defers, fallthrough,
// select, method values, closures.
func TestCFGGolden(t *testing.T) {
	pkg, err := LoadDir(filepath.Join("testdata", "src", "flow"), "repro/internal/flow")
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			cfg := BuildCFG(fd, fd.Name.Name)
			fmt.Fprintf(&b, "== %s ==\n%s\n", fd.Name.Name, cfg.Dump(pkg.Fset))
		}
	}
	compareGolden(t, "cfg_flow", b.String())
}

// TestCallGraphGolden pins the call-graph builder: direct edges, method
// values as ref edges, immediately invoked literals, and $n literal
// naming.
func TestCallGraphGolden(t *testing.T) {
	pkg, err := LoadDir(filepath.Join("testdata", "src", "flow"), "repro/internal/flow")
	if err != nil {
		t.Fatal(err)
	}
	cg := BuildCallGraph([]*Package{pkg})
	compareGolden(t, "callgraph_flow", cg.Dump())
}

// TestCFGPathQueries exercises the reachability helpers the analyzers
// depend on, beyond what the dump shows.
func TestCFGPathQueries(t *testing.T) {
	pkg, err := LoadDir(filepath.Join("testdata", "src", "flow"), "repro/internal/flow")
	if err != nil {
		t.Fatal(err)
	}
	var loopsFn *ast.FuncDecl
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Name.Name == "loops" {
				loopsFn = fd
			}
		}
	}
	if loopsFn == nil {
		t.Fatal("fixture function loops not found")
	}
	cfg := BuildCFG(loopsFn, "loops")
	reach := cfg.Reachable(cfg.Entry)
	if !reach[cfg.Exit] {
		t.Fatal("exit not reachable from entry in loops")
	}
	// Every block except the builder's post-jump "dead" placeholders must
	// be reachable: the builder must not orphan loop bodies or
	// labeled-break targets.
	for _, blk := range cfg.Blocks {
		if blk.Kind != "dead" && !reach[blk] {
			t.Errorf("block b%d (%s) unreachable from entry", blk.Index, blk.Kind)
		}
	}
}
