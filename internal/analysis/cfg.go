package analysis

// The control-flow graph builder: the flow-sensitive half of the
// framework. Each function body (declaration or literal) becomes a graph
// of basic blocks whose edges follow Go's structured control flow —
// if/else, loops with break/continue (labeled or not), switch and select
// dispatch, goto, and early returns. Deferred calls are recorded both in
// their block (where they are registered) and on the CFG (where they run:
// every function exit), because lock-discipline and leak analyses treat
// "defer mu.Unlock()" as covering all exits reachable after registration.
//
// The graph is intra-procedural; callgraph.go stitches functions together.

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/printer"
	"go/token"
	"strings"
)

// Block is one basic block: a straight-line run of statements (and the
// occasional condition expression) with edges to its successors.
type Block struct {
	Index int
	// Kind names the structural role of the block ("entry", "body",
	// "if.then", "for.head", "select.case", "exit", ...), used by the
	// golden dumps and diagnostics.
	Kind string
	// Nodes are the statements and condition expressions executed in
	// order. Condition expressions (if/for guards, switch tags) appear as
	// ast.Expr entries.
	Nodes []ast.Node
	Succs []*Block
	Preds []*Block // filled in by finish
}

// CFG is the control-flow graph of one function body.
type CFG struct {
	// Fn is the *ast.FuncDecl or *ast.FuncLit the graph was built from.
	Fn ast.Node
	// Name is the function's diagnostic name (methods are receiver
	// qualified; literals get a parent$n suffix — see FlowInfo).
	Name   string
	Blocks []*Block
	Entry  *Block
	// Exit is the single synthetic exit block every return, panic, and
	// body fall-through edge targets. Deferred calls conceptually run here.
	Exit *Block
	// Defers lists every *ast.DeferStmt in the body, in source order.
	Defers []*ast.DeferStmt
}

// cfgBuilder carries the under-construction graph plus the break/continue
// and label environments.
type cfgBuilder struct {
	cfg *CFG
	cur *Block

	// breakTargets / continueTargets are stacks of enclosing loop (and,
	// for break, switch/select) join blocks, innermost last, each with the
	// statement's label ("" when unlabeled).
	breakTargets    []labeledBlock
	continueTargets []labeledBlock

	// gotoLabels maps a label name to its block; forward gotos park edges
	// in pendingGotos until the label is built.
	gotoLabels   map[string]*Block
	pendingGotos map[string][]*Block

	// fallthroughTarget is the next case clause while a dispatch body is
	// being built (fallthrough is only legal directly inside one).
	fallthroughTarget *Block
	// loopDepths tracks whether each enclosing loop pushed a labeled pair
	// onto the target stacks, so popLoop removes the right number.
	loopDepths []loopMark
}

type labeledBlock struct {
	label string
	block *Block
}

// BuildCFG constructs the control-flow graph for fn, which must be an
// *ast.FuncDecl (with a body) or *ast.FuncLit. name is the diagnostic
// name recorded on the graph. Function literals nested inside fn are NOT
// traversed into — each literal gets its own CFG (their bodies run on
// their own schedule, not inline).
func BuildCFG(fn ast.Node, name string) *CFG {
	var body *ast.BlockStmt
	switch f := fn.(type) {
	case *ast.FuncDecl:
		body = f.Body
	case *ast.FuncLit:
		body = f.Body
	default:
		return nil
	}
	if body == nil {
		return nil
	}
	b := &cfgBuilder{
		cfg:          &CFG{Fn: fn, Name: name},
		gotoLabels:   make(map[string]*Block),
		pendingGotos: make(map[string][]*Block),
	}
	entry := b.newBlock("entry")
	b.cfg.Entry = entry
	b.cfg.Exit = b.newBlock("exit")
	b.cur = entry
	b.stmts(body.List)
	// Fall off the end of the body: implicit return.
	b.edge(b.cur, b.cfg.Exit)
	// Unresolved gotos (syntactically impossible in type-checked code, but
	// stay total): route them to exit.
	for _, srcs := range b.pendingGotos {
		for _, s := range srcs {
			b.edge(s, b.cfg.Exit)
		}
	}
	b.finish()
	return b.cfg
}

func (b *cfgBuilder) newBlock(kind string) *Block {
	blk := &Block{Index: len(b.cfg.Blocks), Kind: kind}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from, to *Block) {
	if from == nil || to == nil {
		return
	}
	for _, s := range from.Succs {
		if s == to {
			return
		}
	}
	from.Succs = append(from.Succs, to)
}

// add appends a node to the current block.
func (b *cfgBuilder) add(n ast.Node) {
	if b.cur != nil {
		b.cur.Nodes = append(b.cur.Nodes, n)
	}
}

// terminate ends the current block with no fall-through successor and
// starts a fresh (initially unreachable) block for any dead code after a
// return/branch.
func (b *cfgBuilder) terminate(kind string) {
	b.cur = b.newBlock(kind)
}

func (b *cfgBuilder) stmts(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmts(s.List)

	case *ast.IfStmt:
		b.ifStmt(s)

	case *ast.ForStmt:
		b.forStmt(s, "")

	case *ast.RangeStmt:
		b.rangeStmt(s, "")

	case *ast.SwitchStmt:
		b.switchStmt(s, "")

	case *ast.TypeSwitchStmt:
		b.typeSwitchStmt(s, "")

	case *ast.SelectStmt:
		b.selectStmt(s, "")

	case *ast.LabeledStmt:
		b.labeledStmt(s)

	case *ast.ReturnStmt:
		b.add(s)
		b.edge(b.cur, b.cfg.Exit)
		b.terminate("dead")

	case *ast.BranchStmt:
		b.branchStmt(s)

	case *ast.DeferStmt:
		b.add(s)
		b.cfg.Defers = append(b.cfg.Defers, s)

	case *ast.ExprStmt:
		b.add(s)
		if isTerminalCall(s.X) {
			b.edge(b.cur, b.cfg.Exit)
			b.terminate("dead")
		}

	default:
		// Assignments, declarations, sends, go statements, inc/dec,
		// empty statements: straight-line.
		b.add(s)
	}
}

// isTerminalCall reports whether expr is a call that never returns:
// panic(...) or os.Exit-alikes (resolved syntactically; the CFG has no
// type info, and the over-approximation of treating a shadowed "panic" as
// terminal is harmless for the analyses built on top).
func isTerminalCall(expr ast.Expr) bool {
	call, ok := ast.Unparen(expr).(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fn.Name == "panic"
	case *ast.SelectorExpr:
		if pkg, ok := fn.X.(*ast.Ident); ok {
			if pkg.Name == "os" && fn.Sel.Name == "Exit" {
				return true
			}
			if fn.Sel.Name == "Fatal" || fn.Sel.Name == "Fatalf" {
				return true // log.Fatal family
			}
		}
	}
	return false
}

func (b *cfgBuilder) ifStmt(s *ast.IfStmt) {
	if s.Init != nil {
		b.add(s.Init)
	}
	b.add(s.Cond)
	head := b.cur

	then := b.newBlock("if.then")
	join := b.newBlock("if.join")
	b.edge(head, then)
	b.cur = then
	b.stmts(s.Body.List)
	b.edge(b.cur, join)

	if s.Else != nil {
		els := b.newBlock("if.else")
		b.edge(head, els)
		b.cur = els
		b.stmt(s.Else)
		b.edge(b.cur, join)
	} else {
		b.edge(head, join)
	}
	b.cur = join
}

func (b *cfgBuilder) forStmt(s *ast.ForStmt, label string) {
	if s.Init != nil {
		b.add(s.Init)
	}
	head := b.newBlock("for.head")
	b.edge(b.cur, head)
	if s.Cond != nil {
		head.Nodes = append(head.Nodes, s.Cond)
	}

	body := b.newBlock("for.body")
	join := b.newBlock("for.join")
	post := head
	if s.Post != nil {
		post = b.newBlock("for.post")
		post.Nodes = append(post.Nodes, s.Post)
		b.edge(post, head)
	}

	b.edge(head, body)
	if s.Cond != nil {
		// `for {}` has no exit edge from the head; anything after it is
		// reachable only via break.
		b.edge(head, join)
	}

	b.pushLoop(label, join, post)
	b.cur = body
	b.stmts(s.Body.List)
	b.edge(b.cur, post)
	b.popLoop()

	b.cur = join
}

func (b *cfgBuilder) rangeStmt(s *ast.RangeStmt, label string) {
	head := b.newBlock("range.head")
	b.edge(b.cur, head)
	// Only the ranged expression lives in the head: the body statements
	// get their own blocks, and storing the whole RangeStmt here would
	// wrongly attribute them to the head (containsNode walks subtrees).
	head.Nodes = append(head.Nodes, s.X)

	body := b.newBlock("range.body")
	join := b.newBlock("range.join")
	b.edge(head, body)
	b.edge(head, join) // ranges always terminate (or are broken out of)

	b.pushLoop(label, join, head)
	b.cur = body
	b.stmts(s.Body.List)
	b.edge(b.cur, head)
	b.popLoop()

	b.cur = join
}

func (b *cfgBuilder) switchStmt(s *ast.SwitchStmt, label string) {
	if s.Init != nil {
		b.add(s.Init)
	}
	if s.Tag != nil {
		b.add(s.Tag)
	}
	b.dispatch(s.Body.List, label, "switch", hasDefaultClause(s.Body.List))
}

func (b *cfgBuilder) typeSwitchStmt(s *ast.TypeSwitchStmt, label string) {
	if s.Init != nil {
		b.add(s.Init)
	}
	b.add(s.Assign)
	b.dispatch(s.Body.List, label, "typeswitch", hasDefaultClause(s.Body.List))
}

func (b *cfgBuilder) selectStmt(s *ast.SelectStmt, label string) {
	b.dispatch(s.Body.List, label, "select", true)
	// A select with no default still proceeds once a case fires; the
	// "blocks forever when no case can fire" hazard is goroutineleak's
	// concern, not an edge-shape one: every clause edge exists either way.
}

// dispatch builds the shared clause structure of switch / type switch /
// select statements. complete marks dispatches that always take a clause
// (select, or a switch with a default): incomplete ones get a direct
// head→join edge.
func (b *cfgBuilder) dispatch(clauses []ast.Stmt, label, kind string, complete bool) {
	head := b.cur
	join := b.newBlock(kind + ".join")
	// break (optionally labeled) inside a clause exits the statement.
	b.breakTargets = append(b.breakTargets, labeledBlock{label, join}, labeledBlock{"", join})

	var blocks []*Block
	var bodies [][]ast.Stmt
	for _, cl := range clauses {
		blk := b.newBlock(kind + ".case")
		b.edge(head, blk)
		switch cl := cl.(type) {
		case *ast.CaseClause:
			for _, e := range cl.List {
				blk.Nodes = append(blk.Nodes, e)
			}
			bodies = append(bodies, cl.Body)
		case *ast.CommClause:
			if cl.Comm != nil {
				blk.Nodes = append(blk.Nodes, cl.Comm)
			}
			bodies = append(bodies, cl.Body)
		default:
			bodies = append(bodies, nil)
		}
		blocks = append(blocks, blk)
	}
	if !complete {
		b.edge(head, join)
	}
	for i, blk := range blocks {
		b.cur = blk
		// fallthrough in clause i jumps to clause i+1's block; model it by
		// letting branchStmt see the next block (saved/restored so nested
		// dispatches inside a clause body do not clobber it).
		next := join
		if i+1 < len(blocks) {
			next = blocks[i+1]
		}
		saved := b.fallthroughTarget
		b.fallthroughTarget = next
		b.stmts(bodies[i])
		b.fallthroughTarget = saved
		b.edge(b.cur, join)
	}
	b.breakTargets = b.breakTargets[:len(b.breakTargets)-2]
	b.cur = join
}

func hasDefaultClause(clauses []ast.Stmt) bool {
	for _, cl := range clauses {
		if cc, ok := cl.(*ast.CaseClause); ok && cc.List == nil {
			return true
		}
		if cc, ok := cl.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

func (b *cfgBuilder) labeledStmt(s *ast.LabeledStmt) {
	// A label is a join point: give it its own block so gotos have a
	// target, then build the labeled statement with the label in scope so
	// `break L` / `continue L` resolve.
	blk, ok := b.gotoLabels[s.Label.Name]
	if !ok {
		blk = b.newBlock("label." + s.Label.Name)
		b.gotoLabels[s.Label.Name] = blk
	} else {
		blk.Kind = "label." + s.Label.Name
	}
	for _, src := range b.pendingGotos[s.Label.Name] {
		b.edge(src, blk)
	}
	delete(b.pendingGotos, s.Label.Name)
	b.edge(b.cur, blk)
	b.cur = blk

	switch inner := s.Stmt.(type) {
	case *ast.ForStmt:
		b.forStmt(inner, s.Label.Name)
	case *ast.RangeStmt:
		b.rangeStmt(inner, s.Label.Name)
	case *ast.SwitchStmt:
		b.switchStmt(inner, s.Label.Name)
	case *ast.TypeSwitchStmt:
		b.typeSwitchStmt(inner, s.Label.Name)
	case *ast.SelectStmt:
		b.selectStmt(inner, s.Label.Name)
	default:
		b.stmt(s.Stmt)
	}
}

func (b *cfgBuilder) branchStmt(s *ast.BranchStmt) {
	b.add(s)
	label := ""
	if s.Label != nil {
		label = s.Label.Name
	}
	switch s.Tok {
	case token.BREAK:
		if t := findTarget(b.breakTargets, label); t != nil {
			b.edge(b.cur, t)
		} else {
			b.edge(b.cur, b.cfg.Exit)
		}
		b.terminate("dead")
	case token.CONTINUE:
		if t := findTarget(b.continueTargets, label); t != nil {
			b.edge(b.cur, t)
		} else {
			b.edge(b.cur, b.cfg.Exit)
		}
		b.terminate("dead")
	case token.GOTO:
		if blk, ok := b.gotoLabels[label]; ok {
			b.edge(b.cur, blk)
		} else {
			b.pendingGotos[label] = append(b.pendingGotos[label], b.cur)
		}
		b.terminate("dead")
	case token.FALLTHROUGH:
		if b.fallthroughTarget != nil {
			b.edge(b.cur, b.fallthroughTarget)
		}
		b.terminate("dead")
	}
}

func (b *cfgBuilder) pushLoop(label string, brk, cont *Block) {
	b.breakTargets = append(b.breakTargets, labeledBlock{"", brk})
	b.continueTargets = append(b.continueTargets, labeledBlock{"", cont})
	if label != "" {
		b.breakTargets = append(b.breakTargets, labeledBlock{label, brk})
		b.continueTargets = append(b.continueTargets, labeledBlock{label, cont})
	}
	b.loopDepths = append(b.loopDepths, loopMark{label != ""})
}

func (b *cfgBuilder) popLoop() {
	mark := b.loopDepths[len(b.loopDepths)-1]
	b.loopDepths = b.loopDepths[:len(b.loopDepths)-1]
	n := 1
	if mark.labeled {
		n = 2
	}
	b.breakTargets = b.breakTargets[:len(b.breakTargets)-n]
	b.continueTargets = b.continueTargets[:len(b.continueTargets)-n]
}

type loopMark struct{ labeled bool }

// findTarget resolves a (possibly labeled) break/continue target,
// innermost match last.
func findTarget(stack []labeledBlock, label string) *Block {
	for i := len(stack) - 1; i >= 0; i-- {
		if stack[i].label == label {
			return stack[i].block
		}
	}
	return nil
}

// finish computes predecessor lists and prunes nothing: unreachable
// "dead" blocks stay in the graph (harmless — traversals start at Entry).
func (b *cfgBuilder) finish() {
	for _, blk := range b.cfg.Blocks {
		for _, s := range blk.Succs {
			s.Preds = append(s.Preds, blk)
		}
	}
}

// Reachable returns the set of blocks reachable from `from` (inclusive)
// along forward edges.
func (c *CFG) Reachable(from *Block) map[*Block]bool {
	seen := map[*Block]bool{}
	var walk func(*Block)
	walk = func(b *Block) {
		if seen[b] {
			return
		}
		seen[b] = true
		for _, s := range b.Succs {
			walk(s)
		}
	}
	walk(from)
	return seen
}

// nodeRef addresses one node occurrence inside a CFG.
type nodeRef struct {
	block *Block
	index int // position in block.Nodes
}

// findNode locates the occurrence of n (by identity) in the graph.
func (c *CFG) findNode(n ast.Node) (nodeRef, bool) {
	for _, blk := range c.Blocks {
		for i, node := range blk.Nodes {
			if node == n || containsNode(node, n) {
				return nodeRef{blk, i}, true
			}
		}
	}
	return nodeRef{}, false
}

// containsNode reports whether outer's subtree contains inner. Condition
// expressions and whole statements are block nodes; analyzers often hold
// an inner expression (a call) instead.
func containsNode(outer, inner ast.Node) bool {
	if outer == nil {
		return false
	}
	found := false
	ast.Inspect(outer, func(n ast.Node) bool {
		if found {
			return false
		}
		if n == inner {
			found = true
			return false
		}
		// Do not descend into nested function literals: their statements
		// belong to a different CFG.
		if _, ok := n.(*ast.FuncLit); ok && n != outer {
			return false
		}
		return true
	})
	return found
}

// PathAvoiding reports whether some path from the occurrence of `from`
// to the exit block avoids every node for which stop returns true. The
// search resumes AFTER `from` within its block. This is the primitive
// behind "Lock without a dominating Unlock on some exit path".
func (c *CFG) PathAvoiding(from ast.Node, stop func(ast.Node) bool) bool {
	ref, ok := c.findNode(from)
	if !ok {
		return false
	}
	// Remainder of the starting block first.
	for i := ref.index + 1; i < len(ref.block.Nodes); i++ {
		if stop(ref.block.Nodes[i]) {
			return false
		}
	}
	seen := map[*Block]bool{ref.block: true}
	var walk func(*Block) bool
	walk = func(b *Block) bool {
		if b == c.Exit {
			return true
		}
		if seen[b] {
			return false
		}
		seen[b] = true
		for _, n := range b.Nodes {
			if stop(n) {
				return false
			}
		}
		for _, s := range b.Succs {
			if walk(s) {
				return true
			}
		}
		return false
	}
	for _, s := range ref.block.Succs {
		if walk(s) {
			return true
		}
	}
	return false
}

// NodesBetween returns every node that can execute after the occurrence
// of `from` and before a node matching stop on the same path (the
// Lock→Unlock window). Nodes on paths that never hit stop are included
// up to the exit.
func (c *CFG) NodesBetween(from ast.Node, stop func(ast.Node) bool) []ast.Node {
	ref, ok := c.findNode(from)
	if !ok {
		return nil
	}
	var out []ast.Node
	emit := func(n ast.Node) bool { // returns true when the window closed
		if stop(n) {
			return true
		}
		out = append(out, n)
		return false
	}
	for i := ref.index + 1; i < len(ref.block.Nodes); i++ {
		if emit(ref.block.Nodes[i]) {
			return out
		}
	}
	seen := map[*Block]bool{ref.block: true}
	var walk func(*Block)
	walk = func(b *Block) {
		if seen[b] {
			return
		}
		seen[b] = true
		for _, n := range b.Nodes {
			if emit(n) {
				return
			}
		}
		for _, s := range b.Succs {
			walk(s)
		}
	}
	for _, s := range ref.block.Succs {
		walk(s)
	}
	return out
}

// BackwardNodes returns every node that can execute strictly before the
// occurrence of n on some path from entry: the nodes preceding n in its
// own block plus all nodes of transitively preceding blocks. Used by the
// deadline analyzer ("is any SetDeadline backward-reachable?").
func (c *CFG) BackwardNodes(n ast.Node) []ast.Node {
	ref, ok := c.findNode(n)
	if !ok {
		return nil
	}
	var out []ast.Node
	out = append(out, ref.block.Nodes[:ref.index]...)
	seen := map[*Block]bool{ref.block: true}
	var walk func(*Block)
	walk = func(b *Block) {
		if seen[b] {
			return
		}
		seen[b] = true
		out = append(out, b.Nodes...)
		for _, p := range b.Preds {
			walk(p)
		}
	}
	for _, p := range ref.block.Preds {
		walk(p)
	}
	return out
}

// Dump renders the graph in the stable text form the golden tests
// assert: one line per block with kind and successor list, then one
// indented line per node with its line number and a compact rendering.
func (c *CFG) Dump(fset *token.FileSet) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "func %s\n", c.Name)
	for _, blk := range c.Blocks {
		// Skip empty unreachable filler blocks to keep goldens stable.
		if blk.Kind == "dead" && len(blk.Nodes) == 0 && len(blk.Preds) == 0 && len(blk.Succs) == 0 {
			continue
		}
		succs := make([]string, 0, len(blk.Succs))
		for _, s := range blk.Succs {
			succs = append(succs, fmt.Sprintf("b%d", s.Index))
		}
		arrow := ""
		if len(succs) > 0 {
			arrow = " -> " + strings.Join(succs, " ")
		}
		fmt.Fprintf(&sb, "  b%d %s%s\n", blk.Index, blk.Kind, arrow)
		for _, n := range blk.Nodes {
			fmt.Fprintf(&sb, "    L%d %s\n", fset.Position(n.Pos()).Line, renderNode(fset, n))
		}
	}
	return sb.String()
}

// renderNode prints a node as a single truncated line of source.
func renderNode(fset *token.FileSet, n ast.Node) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, fset, n); err != nil {
		return fmt.Sprintf("<%T>", n)
	}
	s := strings.Join(strings.Fields(buf.String()), " ")
	const max = 60
	if len(s) > max {
		s = s[:max-3] + "..."
	}
	return s
}
