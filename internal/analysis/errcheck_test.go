package analysis

import "testing"

func TestErrcheckGolden(t *testing.T) {
	runGolden(t, "errcheck", "repro/internal/latticeio", "errcheck", []*Analyzer{Errcheck})
}
