package analysis

import (
	"go/token"
	"strings"
	"testing"
)

func diagAt(analyzer, file string, line int, msg string) Diagnostic {
	return Diagnostic{Analyzer: analyzer, Pos: token.Position{Filename: file, Line: line, Column: 1}, Message: msg}
}

func TestBaselineRoundTrip(t *testing.T) {
	diags := []Diagnostic{
		diagAt("deadline", "a.go", 10, "read without a deadline"),
		diagAt("deadline", "a.go", 20, "read without a deadline"),
		diagAt("ctxflow", "b.go", 5, "ctx dropped"),
	}
	b := NewBaseline(diags)
	if len(b.Entries) != 2 {
		t.Fatalf("entries = %+v", b.Entries)
	}
	data, err := b.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	back, err := ReadBaseline(data)
	if err != nil {
		t.Fatal(err)
	}
	fresh, stale := back.Apply(diags)
	if len(fresh) != 0 || len(stale) != 0 {
		t.Fatalf("round-tripped baseline must waive its own findings exactly: fresh=%v stale=%v", fresh, stale)
	}
}

// TestBaselineLineChurn is the design property: moving a finding within
// its file (unrelated edits shifting line numbers) does not un-waive it.
func TestBaselineLineChurn(t *testing.T) {
	b := NewBaseline([]Diagnostic{diagAt("deadline", "a.go", 10, "read without a deadline")})
	fresh, stale := b.Apply([]Diagnostic{diagAt("deadline", "a.go", 99, "read without a deadline")})
	if len(fresh) != 0 || len(stale) != 0 {
		t.Fatalf("line churn must not matter: fresh=%v stale=%v", fresh, stale)
	}
}

func TestBaselineFreshAndStale(t *testing.T) {
	b := NewBaseline([]Diagnostic{
		diagAt("deadline", "a.go", 10, "read without a deadline"),
		diagAt("deadline", "a.go", 20, "read without a deadline"),
		diagAt("ctxflow", "b.go", 5, "ctx dropped"),
	})
	// One deadline occurrence fixed (stale count 1), ctxflow fixed
	// entirely (stale), and a brand-new finding appears (fresh).
	run := []Diagnostic{
		diagAt("deadline", "a.go", 10, "read without a deadline"),
		diagAt("goroutineleak", "c.go", 7, "goroutine may block forever"),
	}
	fresh, stale := b.Apply(run)
	if len(fresh) != 1 || fresh[0].Analyzer != "goroutineleak" {
		t.Fatalf("fresh = %v", fresh)
	}
	if len(stale) != 2 {
		t.Fatalf("stale = %v", stale)
	}
	for _, e := range stale {
		switch e.Analyzer {
		case "deadline":
			if e.Count != 1 {
				t.Errorf("deadline stale count = %d, want 1", e.Count)
			}
		case "ctxflow":
			if e.Count != 1 {
				t.Errorf("ctxflow stale count = %d, want 1", e.Count)
			}
		default:
			t.Errorf("unexpected stale entry %+v", e)
		}
	}
}

func TestBaselineOverflowIsFresh(t *testing.T) {
	b := NewBaseline([]Diagnostic{diagAt("deadline", "a.go", 10, "m")})
	fresh, stale := b.Apply([]Diagnostic{
		diagAt("deadline", "a.go", 10, "m"),
		diagAt("deadline", "a.go", 30, "m"),
	})
	if len(fresh) != 1 || fresh[0].Pos.Line != 30 {
		t.Fatalf("fresh = %v", fresh)
	}
	if len(stale) != 0 {
		t.Fatalf("stale = %v", stale)
	}
}

func TestReadBaselineRejects(t *testing.T) {
	cases := map[string]string{
		"not json":          `{"version": 1,`,
		"wrong version":     `{"version": 9, "entries": []}`,
		"missing analyzer":  `{"version": 1, "entries": [{"file": "a.go", "message": "m", "count": 1}]}`,
		"zero count":        `{"version": 1, "entries": [{"analyzer": "deadline", "file": "a.go", "message": "m", "count": 0}]}`,
		"duplicate entries": `{"version": 1, "entries": [{"analyzer": "d", "file": "a.go", "message": "m", "count": 1}, {"analyzer": "d", "file": "a.go", "message": "m", "count": 2}]}`,
	}
	for name, doc := range cases {
		if _, err := ReadBaseline([]byte(doc)); err == nil {
			t.Errorf("%s: accepted %s", name, doc)
		}
	}
}

func TestBaselineMarshalDeterministic(t *testing.T) {
	diags := []Diagnostic{
		diagAt("floats", "z.go", 1, "zz"),
		diagAt("deadline", "a.go", 2, "aa"),
	}
	a, err := NewBaseline(diags).Marshal()
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewBaseline([]Diagnostic{diags[1], diags[0]}).Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatalf("order-dependent marshal:\n%s\nvs\n%s", a, b)
	}
	if !strings.HasSuffix(string(a), "\n") {
		t.Fatal("marshal must end with a newline for committed-file hygiene")
	}
}
