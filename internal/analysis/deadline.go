package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// Deadline enforces the invariant the cluster's fault-tolerance work
// depends on: no blocking network I/O without a bound. A net.Conn
// Read/Write — or a gob Encode/Decode in a package that speaks the
// cluster's conn-backed RPC — must have a deadline arranged before it
// runs, or a dead peer parks the goroutine (and with it a session)
// forever.
//
// The check is flow-sensitive and interprocedural. An I/O call is
// covered when a deadline establisher — SetDeadline / SetReadDeadline /
// SetWriteDeadline, context.WithTimeout / WithDeadline, net.DialTimeout,
// or time.AfterFunc — is backward-reachable from the call in its
// function's CFG. An uncovered call is still fine when every static
// caller chain establishes a deadline before entering (the dialOne
// pattern: the dial path sets the deadline, the helper does the I/O);
// the diagnostic fires only when some chain reaches the I/O with no
// bound arranged anywhere.
var Deadline = &Analyzer{
	Name: "deadline",
	Doc: "flag net.Conn reads/writes and conn-backed gob RPC calls with " +
		"no deadline reachable before them, here or in any caller",
	Run: runDeadline,
}

// riskyIONames are the direct network operations.
var riskyIONames = map[string]bool{
	"(net.Conn).Read":      true,
	"(net.Conn).Write":     true,
	"(*net.TCPConn).Read":  true,
	"(*net.TCPConn).Write": true,
	"(*net.UDPConn).Read":  true,
	"(*net.UDPConn).Write": true,
}

// gobIONames are risky only in packages that also import net: there the
// codec is (or wraps) a live connection. File-backed checkpoint codecs in
// net-free packages stay out of scope.
var gobIONames = map[string]bool{
	"(*encoding/gob.Encoder).Encode": true,
	"(*encoding/gob.Decoder).Decode": true,
}

// isDeadlineEstablisher recognizes the calls that arrange a bound.
func isDeadlineEstablisher(name string) bool {
	if name == "" {
		return false
	}
	switch name {
	case "net.DialTimeout", "context.WithTimeout", "context.WithDeadline", "time.AfterFunc":
		return true
	}
	return strings.HasSuffix(name, ").SetDeadline") ||
		strings.HasSuffix(name, ").SetReadDeadline") ||
		strings.HasSuffix(name, ").SetWriteDeadline")
}

// deadlineSummaries caches, per call-graph node, whether every caller
// chain into it establishes a deadline.
type deadlineSummaries struct {
	cg   *CallGraph
	flow *flowCache
	// coveredByCallers memo: 0 unknown, 1 visiting, 2 covered, 3 uncovered.
	state map[*CGNode]int
}

func runDeadline(pass *Pass) {
	sums := pass.Memo(func() any {
		return &deadlineSummaries{cg: pass.CallGraph(), flow: pass.flow, state: make(map[*CGNode]int)}
	}).(*deadlineSummaries)

	gobRisky := importsNet(pass.Files)

	for _, node := range sums.cg.Nodes {
		if node.Pkg == nil || node.Pkg.Path != pass.PkgPath {
			continue
		}
		cfg := sums.flow.cfg(node)
		if cfg == nil {
			continue
		}
		info := node.Pkg.Info
		inspectNoLits(funcBody(node.Fn), func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			name := fullCalleeName(info, call)
			if !riskyIONames[name] && !(gobRisky && gobIONames[name]) {
				return true
			}
			if establisherBefore(info, cfg, call) {
				return true
			}
			if sums.coveredByCallers(node) {
				return true
			}
			pass.Reportf(call.Pos(),
				"%s without a deadline: no SetDeadline/SetReadDeadline/SetWriteDeadline, context.WithTimeout, or net.DialTimeout is reachable before this call, here or in any caller of %s; a dead peer blocks this goroutine forever",
				shortCallName(name), node.Name)
			return true
		})
	}
}

// establisherBefore reports whether a deadline establisher can execute
// before the call within its own function.
func establisherBefore(info *types.Info, cfg *CFG, call *ast.CallExpr) bool {
	for _, prior := range cfg.BackwardNodes(call) {
		if containsCallNamed(info, prior, func(name string, _ *ast.CallExpr) bool {
			return isDeadlineEstablisher(name)
		}) {
			return true
		}
	}
	return false
}

// coveredByCallers reports whether every static path into node arranges
// a deadline before the call site. A node with no module callers is
// uncovered (it is an entry point, so nothing above it can help).
func (s *deadlineSummaries) coveredByCallers(node *CGNode) bool {
	switch s.state[node] {
	case 1:
		return true // optimistic on cycles; the cycle's entry edge is still checked
	case 2:
		return true
	case 3:
		return false
	}
	s.state[node] = 1
	covered := s.computeCoveredByCallers(node)
	if covered {
		s.state[node] = 2
	} else {
		s.state[node] = 3
	}
	return covered
}

func (s *deadlineSummaries) computeCoveredByCallers(node *CGNode) bool {
	callers := s.cg.Callers(node)
	if len(callers) == 0 {
		return false
	}
	for _, caller := range callers {
		cfg := s.flow.cfg(caller)
		if cfg == nil {
			return false
		}
		info := caller.Pkg.Info
		// Every edge from this caller into node must be preceded by an
		// establisher (or the caller itself must be covered).
		for _, e := range caller.Calls {
			if e.Callee != node {
				continue
			}
			call, ok := e.Site.(*ast.CallExpr)
			if !ok {
				// Reference edge: the function value can run from anywhere;
				// assume uncovered.
				return false
			}
			if establisherBefore(info, cfg, call) {
				continue
			}
			if !s.coveredByCallers(caller) {
				return false
			}
		}
	}
	return true
}

// importsNet reports whether any file of the package imports "net".
func importsNet(files []*ast.File) bool {
	for _, f := range files {
		for _, imp := range f.Imports {
			if imp.Path.Value == `"net"` {
				return true
			}
		}
	}
	return false
}

// shortCallName renders "(net.Conn).Read" as "net.Conn.Read" for message
// readability.
func shortCallName(full string) string {
	s := strings.ReplaceAll(strings.ReplaceAll(full, "(", ""), ")", "")
	s = strings.ReplaceAll(s, "*", "")
	if i := strings.LastIndex(s, "/"); i >= 0 {
		s = s[i+1:]
	}
	return s
}
