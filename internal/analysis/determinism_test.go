package analysis

import (
	"strings"
	"testing"
)

func TestDeterminismGolden(t *testing.T) {
	// Loaded as internal/lattice: a numeric package, so every rule applies.
	runGolden(t, "determinism", "repro/internal/lattice", "determinism",
		[]*Analyzer{Determinism})
}

func TestDeterminismSanctionedRngPackage(t *testing.T) {
	// internal/rng is the sanctioned randomness source: the math/rand ban
	// does not apply there, but the wall-clock ban still does.
	diags := loadAndRun(t, "determinism", "repro/internal/rng", []*Analyzer{Determinism})
	for _, d := range diags {
		if msgContains(d, "math/rand") {
			t.Errorf("math/rand flagged inside internal/rng: %s", d)
		}
	}
	if n := countByAnalyzer(diags)["determinism"]; n == 0 {
		t.Error("time.Now and map accumulation should still be flagged in internal/rng")
	}
}

func TestDeterminismNonNumericPackage(t *testing.T) {
	// Outside the numeric set only the module-wide math/rand ban fires;
	// clocks and map iteration are tooling concerns there, not correctness.
	diags := loadAndRun(t, "determinism", "repro/cmd/sbgt-bench", []*Analyzer{Determinism})
	if len(diags) != 1 || !msgContains(diags[0], "math/rand") {
		t.Fatalf("want exactly the math/rand import diagnostic, got %v", diags)
	}
}

func msgContains(d Diagnostic, sub string) bool {
	return strings.Contains(d.Message, sub)
}
