package analysis

import "testing"

func TestConcurrencyGolden(t *testing.T) {
	// Loaded as internal/stats: not an approved substrate package, so the
	// goroutine is flagged alongside the lock copies.
	runGolden(t, "concurrency", "repro/internal/stats", "concurrency",
		[]*Analyzer{Concurrency})
}

func TestConcurrencyApprovedPackages(t *testing.T) {
	// The same source under an approved package keeps its lock-copy
	// diagnostics but loses the goroutine one.
	for _, path := range []string{"repro/internal/engine", "repro/internal/cluster", "repro/cmd/sbgt-bench"} {
		diags := loadAndRun(t, "concurrency", path, []*Analyzer{Concurrency})
		for _, d := range diags {
			if msgContains(d, "goroutine") {
				t.Errorf("goroutine flagged in approved package %s: %s", path, d)
			}
		}
		if countByAnalyzer(diags)["concurrency"] == 0 {
			t.Errorf("lock-copy diagnostics missing under %s", path)
		}
	}
}
