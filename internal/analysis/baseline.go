package analysis

import (
	"encoding/json"
	"fmt"
	"sort"
)

// Baseline is the committed ledger of waived pre-existing findings:
// diagnostics matching an entry do not gate CI, while anything new does.
// Entries are keyed by (analyzer, file, message) with an occurrence
// count — deliberately no line numbers, so unrelated edits to a file do
// not churn the ledger. When a baselined finding is fixed, the entry goes
// stale and `sbgt-lint -baseline-check` fails until it is removed: the
// ledger only ever shrinks.
type Baseline struct {
	Version int             `json:"version"`
	Entries []BaselineEntry `json:"entries"`
}

// BaselineEntry waives Count occurrences of one diagnostic shape.
type BaselineEntry struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Message  string `json:"message"`
	Count    int    `json:"count"`
}

// baselineVersion is the schema version this package writes and accepts.
const baselineVersion = 1

func baselineKey(analyzer, file, message string) string {
	return analyzer + "\x00" + file + "\x00" + message
}

// ReadBaseline parses a baseline document, rejecting malformed input with
// an error (never a panic — the parser is fuzzed against hostile bytes).
func ReadBaseline(data []byte) (*Baseline, error) {
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("baseline: %w", err)
	}
	if b.Version != baselineVersion {
		return nil, fmt.Errorf("baseline: unsupported version %d (want %d)", b.Version, baselineVersion)
	}
	seen := map[string]bool{}
	for i, e := range b.Entries {
		if e.Analyzer == "" || e.File == "" || e.Message == "" {
			return nil, fmt.Errorf("baseline: entry %d is missing analyzer, file, or message", i)
		}
		if e.Count < 1 {
			return nil, fmt.Errorf("baseline: entry %d has count %d (want >= 1)", i, e.Count)
		}
		key := baselineKey(e.Analyzer, e.File, e.Message)
		if seen[key] {
			return nil, fmt.Errorf("baseline: duplicate entry for %s %s", e.Analyzer, e.File)
		}
		seen[key] = true
	}
	return &b, nil
}

// NewBaseline builds the ledger that waives exactly the given
// diagnostics, in deterministic order.
func NewBaseline(diags []Diagnostic) *Baseline {
	counts := map[string]*BaselineEntry{}
	var order []string
	for _, d := range diags {
		key := baselineKey(d.Analyzer, d.Pos.Filename, d.Message)
		if e, ok := counts[key]; ok {
			e.Count++
			continue
		}
		counts[key] = &BaselineEntry{Analyzer: d.Analyzer, File: d.Pos.Filename, Message: d.Message, Count: 1}
		order = append(order, key)
	}
	sort.Strings(order)
	b := &Baseline{Version: baselineVersion}
	for _, key := range order {
		b.Entries = append(b.Entries, *counts[key])
	}
	if b.Entries == nil {
		b.Entries = []BaselineEntry{}
	}
	return b
}

// Marshal renders the baseline as committed JSON.
func (b *Baseline) Marshal() ([]byte, error) {
	out, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

// Apply splits a run's diagnostics against the ledger: fresh findings
// (not covered, these gate CI) and stale entries (waiving more than the
// run produced — the finding was fixed, so the entry must be deleted).
// When a file yields more occurrences of a shape than its entry waives,
// the later ones (by position) are fresh.
func (b *Baseline) Apply(diags []Diagnostic) (fresh []Diagnostic, stale []BaselineEntry) {
	budget := map[string]int{}
	for _, e := range b.Entries {
		budget[baselineKey(e.Analyzer, e.File, e.Message)] = e.Count
	}
	used := map[string]int{}
	for _, d := range diags {
		key := baselineKey(d.Analyzer, d.Pos.Filename, d.Message)
		if used[key] < budget[key] {
			used[key]++
			continue
		}
		fresh = append(fresh, d)
	}
	for _, e := range b.Entries {
		key := baselineKey(e.Analyzer, e.File, e.Message)
		if used[key] < e.Count {
			leftover := e
			leftover.Count = e.Count - used[key]
			stale = append(stale, leftover)
		}
	}
	return fresh, stale
}
