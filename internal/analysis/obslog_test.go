package analysis

import "testing"

func TestObslogGolden(t *testing.T) {
	runGolden(t, "obslog", "repro/internal/obslog", "obslog", []*Analyzer{Obslog})
}

// TestObslogScope pins the scoping rules: the same fixture is silent when
// loaded outside an internal/ path, and when loaded as internal/obs itself.
func TestObslogScope(t *testing.T) {
	for _, path := range []string{"repro/cmd/obslog", "repro/internal/obs"} {
		diags := loadAndRun(t, "obslog", path, []*Analyzer{Obslog})
		for _, d := range diags {
			t.Errorf("unexpected diagnostic under %s: %s", path, d)
		}
	}
}
