package cluster

import (
	"encoding/gob"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/dilution"
)

// stallExecutor speaks just enough of the RPC protocol to let DialWith
// succeed (BuildPrior, then the normalization Scale round), then goes
// silent: every later request is read and never answered, the connection
// held open. It models an executor process that wedged after dial — the
// failure mode RPCTimeout exists for.
func stallExecutor(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	t.Cleanup(func() {
		close(done)
		l.Close()
	})
	go func() {
		c, err := l.Accept()
		if err != nil {
			return
		}
		defer c.Close()
		if err := c.SetDeadline(time.Now().Add(time.Minute)); err != nil {
			return
		}
		dec := gob.NewDecoder(c)
		enc := gob.NewEncoder(c)
		for {
			var req Request
			if err := dec.Decode(&req); err != nil {
				return
			}
			switch req.Op {
			case OpBuildPrior:
				if err := enc.Encode(Response{Op: req.Op, Sum: 1}); err != nil {
					return
				}
			case OpScale:
				if err := enc.Encode(Response{Op: req.Op}); err != nil {
					return
				}
			default:
				// Wedge: hold the connection open, answer nothing.
				<-done
				return
			}
		}
	}()
	return l.Addr().String()
}

// TestRPCTimeoutBoundsDeadExecutor is the regression test for the
// unbounded conn.call defect: before RPCTimeout existed, an executor that
// died (or wedged) after dial parked the next RPC — and the session
// driving it — forever. With the per-RPC deadline, the call must fail, and
// promptly.
func TestRPCTimeoutBoundsDeadExecutor(t *testing.T) {
	addr := stallExecutor(t)
	m, err := DialWith([]string{addr}, uniform(4, 0.1), dilution.Ideal{}, DialOptions{
		Timeout:    2 * time.Second,
		RPCTimeout: 150 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("DialWith: %v", err)
	}
	defer m.Close()
	start := time.Now()
	err = m.Ping()
	if err == nil {
		t.Fatal("Ping against a wedged executor succeeded; want a deadline error")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("Ping took %v to fail; the RPC deadline did not fire", elapsed)
	}
	if !strings.Contains(err.Error(), addr) {
		t.Fatalf("error %q does not name the wedged executor %s", err, addr)
	}
}

// TestRPCTimeoutRecoversConnDeadline checks the deadline is disarmed
// between calls: a session that idles longer than RPCTimeout between
// stages must not inherit a stale deadline on its next RPC.
func TestRPCTimeoutRecoversConnDeadline(t *testing.T) {
	addrs := startExecutors(t, 1)
	m, err := DialWith(addrs, uniform(4, 0.1), dilution.Ideal{}, DialOptions{
		Timeout:    2 * time.Second,
		RPCTimeout: 200 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("DialWith: %v", err)
	}
	defer m.Close()
	if err := m.Ping(); err != nil {
		t.Fatalf("first Ping: %v", err)
	}
	time.Sleep(300 * time.Millisecond) // outlive the per-RPC window
	if err := m.Ping(); err != nil {
		t.Fatalf("Ping after idling past RPCTimeout: %v", err)
	}
}

// TestIdleTimeoutFreesServeLoop is the regression test for the serial
// accept-loop starvation defect: a driver connection that goes silent
// (half-open TCP, a stalled process) used to hold handle's Decode forever,
// and with it the executor's single serve slot. With an idle timeout the
// executor drops the wedged connection and serves the next driver.
func TestIdleTimeoutFreesServeLoop(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	e := NewExecutor(1)
	e.SetIdleTimeout(100 * time.Millisecond)
	go func() { _ = e.Serve(l) }()
	t.Cleanup(func() {
		l.Close()
		e.Close()
	})

	// The wedged driver: connects, says nothing, keeps the socket open.
	wedged, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer wedged.Close()

	// The healthy driver behind it must get served once the idle timeout
	// evicts the wedged connection.
	healthy, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer healthy.Close()
	if err := healthy.SetDeadline(time.Now().Add(5 * time.Second)); err != nil {
		t.Fatal(err)
	}
	enc := gob.NewEncoder(healthy)
	dec := gob.NewDecoder(healthy)
	if err := enc.Encode(Request{Op: OpPing}); err != nil {
		t.Fatalf("send ping: %v", err)
	}
	var resp Response
	if err := dec.Decode(&resp); err != nil {
		t.Fatalf("the executor never served the healthy driver: %v", err)
	}
	if resp.Op != OpPing || resp.Err != "" {
		t.Fatalf("ping response = %+v", resp)
	}
}
