package cluster

import (
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/bitvec"
	"repro/internal/dilution"
	"repro/internal/obs"
)

// TestDialWithRetriesWrapsAddressAndAttempt pins the Dial error contract:
// a connection that keeps failing surfaces the executor address and the
// attempt number, and each retry is counted.
func TestDialWithRetriesWrapsAddressAndAttempt(t *testing.T) {
	// A listener that is immediately closed yields a refused port.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dead := l.Addr().String()
	l.Close()

	reg := obs.NewRegistry()
	_, err = DialWith([]string{dead}, []float64{0.1, 0.2}, dilution.Binary{Sens: 0.95, Spec: 0.99},
		DialOptions{Timeout: time.Second, Attempts: 3, Obs: reg})
	if err == nil {
		t.Fatal("dial of a dead executor succeeded")
	}
	if !strings.Contains(err.Error(), dead) {
		t.Errorf("error does not name the executor: %v", err)
	}
	if !strings.Contains(err.Error(), "attempt 3/3") {
		t.Errorf("error does not carry the attempt number: %v", err)
	}
	var retries uint64
	for _, c := range reg.Snapshot().Counters {
		if c.Name == "sbgt_cluster_dial_retries_total" {
			retries = c.Value
		}
	}
	if retries != 2 {
		t.Errorf("dial retries = %d, want 2", retries)
	}
}

// TestDialDeadlineErrorNamesExecutor covers the satellite bug: a
// per-connection deadline firing during the prior build must still name
// the executor that timed out.
func TestDialDeadlineErrorNamesExecutor(t *testing.T) {
	// A listener that accepts but never speaks the protocol stalls the
	// prior build until the deadline fires.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			defer c.Close()
		}
	}()
	addr := l.Addr().String()
	_, err = DialWith([]string{addr}, []float64{0.1, 0.2}, dilution.Binary{Sens: 0.95, Spec: 0.99},
		DialOptions{Timeout: 50 * time.Millisecond})
	if err == nil {
		t.Fatal("dial of a mute executor succeeded")
	}
	if !strings.Contains(err.Error(), addr) {
		t.Errorf("deadline error does not name the executor: %v", err)
	}
	if !strings.Contains(err.Error(), "attempt 1/1") {
		t.Errorf("deadline error does not carry the attempt number: %v", err)
	}
}

// TestClusterMetricsEndToEnd drives an instrumented local cluster and
// checks RPC latency, byte counters, shard gauges, and executor-side
// request counts all materialize — including after a Condition re-shard.
func TestClusterMetricsEndToEnd(t *testing.T) {
	reg := obs.NewRegistry()
	addrs, stop, err := StartLocalObs(2, 1, reg)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	risks := []float64{0.05, 0.2, 0.1, 0.3}
	m, err := DialWith(addrs, risks, dilution.Binary{Sens: 0.95, Spec: 0.99},
		DialOptions{Timeout: 5 * time.Second, Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Update(bitvec.FromIndices(0, 1), dilution.Positive); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Marginals(); err != nil {
		t.Fatal(err)
	}
	next, err := m.Condition(0, false)
	if err != nil {
		t.Fatal(err)
	}
	defer next.Close()

	snap := reg.Snapshot()
	counters := map[string]uint64{}
	for _, c := range snap.Counters {
		counters[c.Name] += c.Value
	}
	if counters["sbgt_cluster_bytes_sent_total"] == 0 || counters["sbgt_cluster_bytes_recv_total"] == 0 {
		t.Errorf("byte counters empty: %v", counters)
	}
	if counters["sbgt_cluster_executor_requests_total"] == 0 {
		t.Error("executor request counter empty")
	}
	var rpcCount uint64
	for _, h := range snap.Histograms {
		if h.Name == "sbgt_cluster_rpc_seconds" {
			rpcCount += h.Count
		}
	}
	if rpcCount == 0 {
		t.Error("no RPC latencies observed")
	}
	var executors float64
	shardTotal := 0.0
	for _, g := range snap.Gauges {
		switch g.Name {
		case "sbgt_cluster_executors":
			executors = g.Value
		case "sbgt_cluster_shard_states":
			shardTotal += g.Value
		}
	}
	if executors != 2 {
		t.Errorf("executors gauge = %v, want 2", executors)
	}
	// After conditioning 4 subjects down to 3 the driver-side shard gauges
	// must reflect the halved lattice: 2^3 states across the fan-out.
	if shardTotal != 8 {
		t.Errorf("driver shard gauges sum to %v, want 8", shardTotal)
	}
	// Executor pools report through the shared engine pool series.
	poolSeries := false
	for _, c := range snap.Counters {
		if c.Name == "sbgt_engine_pool_tasks_total" || c.Name == "sbgt_engine_pool_inline_total" {
			if c.Value > 0 {
				poolSeries = true
			}
		}
	}
	if !poolSeries {
		t.Error("executor pools reported no tasks")
	}
}
