package cluster

import (
	"math"
	"testing"

	"repro/internal/bitvec"
	"repro/internal/dilution"
	"repro/internal/engine"
	"repro/internal/halving"
	"repro/internal/lattice"
)

func TestPrefixNegMassesMatchesLocal(t *testing.T) {
	risks := []float64{0.05, 0.2, 0.1, 0.3, 0.15, 0.08}
	resp := dilution.Binary{Sens: 0.95, Spec: 0.99}
	pool := engine.NewPool(2)
	defer pool.Close()
	local, err := lattice.New(pool, lattice.Config{Risks: risks, Response: resp})
	if err != nil {
		t.Fatal(err)
	}
	addrs := startExecutors(t, 3)
	dist := dialTest(t, addrs, risks, resp)
	for _, m := range []interface {
		Update(bitvec.Mask, dilution.Outcome) error
	}{local, dist} {
		if err := m.Update(bitvec.FromIndices(0, 1, 2), dilution.Positive); err != nil {
			t.Fatal(err)
		}
	}
	order := []int{3, 1, 5, 0}
	want := local.PrefixNegMasses(order)
	got, err := dist.PrefixNegMasses(order)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("lengths %d vs %d", len(got), len(want))
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("prefix %d: %v vs %v", i, got[i], want[i])
		}
	}
	// Empty order is a no-op.
	if v, err := dist.PrefixNegMasses(nil); err != nil || v != nil {
		t.Fatalf("empty order: %v, %v", v, err)
	}
}

func TestPrefixScanValidation(t *testing.T) {
	e := NewExecutor(1)
	defer e.Close()
	if resp := e.dispatch(Request{Op: OpPrefix, Order: []int{0}}); resp.Err == "" {
		t.Error("prefix scan on unbuilt shard accepted")
	}
	if r := e.dispatch(Request{Op: OpBuildPrior, Risks: []float64{0.1, 0.2, 0.3}, Lo: 0, Hi: 8}); r.Err != "" {
		t.Fatal(r.Err)
	}
	if resp := e.dispatch(Request{Op: OpPrefix, Order: nil}); resp.Err == "" {
		t.Error("empty order accepted")
	}
	if resp := e.dispatch(Request{Op: OpPrefix, Order: []int{0, 0}}); resp.Err == "" {
		t.Error("duplicate subject accepted")
	}
	if resp := e.dispatch(Request{Op: OpPrefix, Order: []int{5}}); resp.Err == "" {
		t.Error("out-of-cohort subject accepted")
	}
}

func TestSelectOnClusterMatchesLocal(t *testing.T) {
	risks := []float64{0.05, 0.2, 0.1, 0.3, 0.15, 0.08, 0.12, 0.07}
	resp := dilution.Binary{Sens: 0.95, Spec: 0.99}
	pool := engine.NewPool(2)
	defer pool.Close()
	local, err := lattice.New(pool, lattice.Config{Risks: risks, Response: resp})
	if err != nil {
		t.Fatal(err)
	}
	addrs := startExecutors(t, 2)
	dist := dialTest(t, addrs, risks, resp)
	if err := local.Update(bitvec.FromIndices(1, 3), dilution.Positive); err != nil {
		t.Fatal(err)
	}
	if err := dist.Update(bitvec.FromIndices(1, 3), dilution.Positive); err != nil {
		t.Fatal(err)
	}
	want := halving.Select(local, halving.Options{MaxPool: 6})
	got, err := halving.SelectOn(dist, halving.Options{MaxPool: 6})
	if err != nil {
		t.Fatal(err)
	}
	if got.Pool != want.Pool {
		t.Fatalf("distributed selection %v, local %v", got.Pool, want.Pool)
	}
	if math.Abs(got.NegMass-want.NegMass) > 1e-12 {
		t.Fatalf("clean mass %v vs %v", got.NegMass, want.NegMass)
	}
}

func TestSelectOnSurfacesTransportError(t *testing.T) {
	// Kill the executors mid-session: the next selection must return an
	// error, not panic or hang.
	addrs := startExecutors(t, 1)
	m := dialTest(t, addrs, []float64{0.1, 0.2, 0.3}, dilution.Ideal{})
	if err := m.Ping(); err != nil {
		t.Fatal(err)
	}
	// Close the driver-side connections to simulate a dead link.
	for _, c := range m.conns {
		c.nc.Close()
	}
	if _, err := halving.SelectOn(m, halving.Options{}); err == nil {
		t.Fatal("selection over dead connections returned no error")
	}
}
