package cluster

import (
	"strings"
	"testing"
	"time"

	"repro/internal/bitvec"
	"repro/internal/dilution"
	"repro/internal/obs"
)

// dialTraced starts a local cluster and dials it with a tracer attached.
func dialTraced(t *testing.T, k int, risks []float64, tracer *obs.Tracer) (*Model, func()) {
	t.Helper()
	addrs, stop, err := StartLocal(k, 1)
	if err != nil {
		t.Fatal(err)
	}
	m, err := DialWith(addrs, risks, dilution.Binary{Sens: 0.95, Spec: 0.99},
		DialOptions{Timeout: 5 * time.Second, Tracer: tracer})
	if err != nil {
		stop()
		t.Fatal(err)
	}
	return m, func() { m.Close(); stop() }
}

// TestRPCTracePropagation pins the distributed-tracing contract of the
// protocol: once a parent context is installed, every fan-out RPC emits a
// driver-side rpc:<op> span, the executor opens exec:<op> + kernel spans
// under the propagated context, and the trailer ships them back — so the
// driver's tracer alone assembles into one tree rooted at the parent.
func TestRPCTracePropagation(t *testing.T) {
	tracer := obs.NewTracer(0)
	m, cleanup := dialTraced(t, 2, []float64{0.05, 0.2, 0.1}, tracer)
	defer cleanup()

	root := tracer.Start("session")
	m.SetTraceContext(root.Context())
	if err := m.Update(bitvec.FromIndices(0, 1), dilution.Positive); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Marginals(); err != nil {
		t.Fatal(err)
	}
	root.End()

	spans, dropped := tracer.Snapshot()
	if dropped != 0 {
		t.Fatalf("tracer dropped %d spans", dropped)
	}
	traces := obs.Assemble(spans)
	if len(traces) != 1 {
		t.Fatalf("assembled %d traces, want 1: %+v", len(traces), traces)
	}
	tr := traces[0]
	if len(tr.Roots) != 1 || tr.Roots[0].Name != "session" {
		t.Fatalf("trace roots = %+v, want single session root", tr.Roots)
	}
	// Update = update-mul + scale rounds, Marginals one more; each fans out
	// to 2 executors, so 6 rpc spans each holding one exec span with one
	// kernel child.
	var rpcs, execs, kernels int
	tr.Walk(func(depth int, n *obs.TraceNode) {
		switch {
		case strings.HasPrefix(n.Name, "rpc:"):
			rpcs++
			if depth != 1 {
				t.Errorf("rpc span %s at depth %d, want 1", n.Name, depth)
			}
			if len(n.Children) != 1 || !strings.HasPrefix(n.Children[0].Name, "exec:") {
				t.Errorf("rpc span %s children = %+v, want one exec child", n.Name, n.Children)
			}
		case strings.HasPrefix(n.Name, "exec:"):
			execs++
			if len(n.Children) != 1 || n.Children[0].Name != "kernel" {
				t.Errorf("exec span %s children = %+v, want one kernel child", n.Name, n.Children)
			}
		case n.Name == "kernel":
			kernels++
		}
	})
	if rpcs != 6 || execs != 6 || kernels != 6 {
		t.Errorf("span counts rpc=%d exec=%d kernel=%d, want 6 each", rpcs, execs, kernels)
	}
	if tr.TraceID != root.Context().TraceID {
		t.Errorf("assembled trace ID %x, want %x", tr.TraceID, root.Context().TraceID)
	}
	tr.Walk(func(_ int, n *obs.TraceNode) {
		if n.TraceID != root.Context().TraceID {
			t.Errorf("span %s carries trace %x, want %x", n.Name, n.TraceID, root.Context().TraceID)
		}
	})
}

// TestRPCUntracedByDefault: with no parent context installed (or after it
// is cleared), requests go out untraced and the tracer stays empty — the
// protocol must not pay for tracing nobody asked for.
func TestRPCUntracedByDefault(t *testing.T) {
	tracer := obs.NewTracer(0)
	m, cleanup := dialTraced(t, 2, []float64{0.05, 0.2}, tracer)
	defer cleanup()

	if err := m.Ping(); err != nil {
		t.Fatal(err)
	}
	if spans, _ := tracer.Snapshot(); len(spans) != 0 {
		t.Fatalf("untraced ping recorded %d spans: %+v", len(spans), spans)
	}

	// Clearing the context mid-life turns tracing back off.
	root := tracer.Start("session")
	m.SetTraceContext(root.Context())
	if err := m.Ping(); err != nil {
		t.Fatal(err)
	}
	m.SetTraceContext(obs.TraceContext{})
	if err := m.Ping(); err != nil {
		t.Fatal(err)
	}
	root.End()
	spans, _ := tracer.Snapshot()
	var pings int
	for _, rec := range spans {
		if rec.Name == "rpc:ping" || rec.Name == "exec:ping" {
			pings++
		}
	}
	if pings != 2*2 { // one traced ping round × 2 executors × (rpc + exec)
		t.Fatalf("traced-ping span count = %d, want 4", pings)
	}
}

// TestConditionKeepsTracer: the reduced model returned by Condition must
// keep emitting spans into the same trace.
func TestConditionKeepsTracer(t *testing.T) {
	tracer := obs.NewTracer(0)
	m, cleanup := dialTraced(t, 2, []float64{0.05, 0.2, 0.1}, tracer)
	defer cleanup()

	root := tracer.Start("session")
	m.SetTraceContext(root.Context())
	next, err := m.Condition(0, false)
	if err != nil {
		t.Fatal(err)
	}
	defer next.Close()
	if _, err := next.Marginals(); err != nil {
		t.Fatal(err)
	}
	root.End()

	spans, _ := tracer.Snapshot()
	traces := obs.Assemble(spans)
	if len(traces) != 1 {
		t.Fatalf("assembled %d traces, want 1", len(traces))
	}
	if traces[0].Find("rpc:marginals") == nil {
		t.Error("post-Condition marginals RPC missing from the trace")
	}
	if traces[0].Find("rpc:load-shard") == nil {
		t.Error("Condition's scatter RPC missing from the trace")
	}
}

// benchSelectPath measures the distributed pool-selection hot path (the
// NegMasses sweep) with tracing on or off, for the RPC-overhead budget.
// n sets the cohort size: 14 is a deliberately small lattice where the
// fixed per-RPC tracing cost is most visible; 16 is the sbgt CLI default
// and the representative campaign size.
func benchSelectPath(b *testing.B, n int, traced bool) {
	addrs, stop, err := StartLocal(2, 0)
	if err != nil {
		b.Fatal(err)
	}
	defer stop()
	risks := make([]float64, n)
	for i := range risks {
		risks[i] = 0.02 + 0.01*float64(i%5)
	}
	opts := DialOptions{Timeout: 5 * time.Second}
	var tracer *obs.Tracer
	if traced {
		tracer = obs.NewTracer(1024)
		opts.Tracer = tracer
	}
	m, err := DialWith(addrs, risks, dilution.Binary{Sens: 0.95, Spec: 0.99}, opts)
	if err != nil {
		b.Fatal(err)
	}
	defer m.Close()
	if traced {
		root := tracer.Start("bench")
		defer root.End()
		m.SetTraceContext(root.Context())
	}
	cands := make([]bitvec.Mask, 32)
	for i := range cands {
		cands[i] = bitvec.Mask(uint64(i)*2654435761%(1<<uint(n))) | 1
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.NegMasses(cands); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNegMassesUntraced(b *testing.B)   { benchSelectPath(b, 14, false) }
func BenchmarkNegMassesTraced(b *testing.B)     { benchSelectPath(b, 14, true) }
func BenchmarkNegMasses16Untraced(b *testing.B) { benchSelectPath(b, 16, false) }
func BenchmarkNegMasses16Traced(b *testing.B)   { benchSelectPath(b, 16, true) }
