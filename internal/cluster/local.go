package cluster

import (
	"errors"
	"fmt"
	"log/slog"
	"net"
	"strconv"

	"repro/internal/obs"
)

// StartLocal launches k in-process executors on ephemeral loopback ports
// and returns their addresses plus a stop function that tears all of
// them down. It exists so single-machine callers (CLIs, studies, tests)
// can use the distributed backend without arranging external executor
// processes: the wire protocol, sharding, and merge order are exactly
// those of a real deployment — only the network is loopback.
//
// workers sets each executor's local pool size as in NewExecutor
// (<= 0 means GOMAXPROCS). stop is safe to call more than once and
// after the executors have already failed.
func StartLocal(k, workers int) (addrs []string, stop func(), err error) {
	return StartLocalObs(k, workers, nil)
}

// StartLocalObs is StartLocal with every executor instrumented into reg
// (nil disables metrics): executor pools report into the shared
// sbgt_engine_pool_* series, and per-executor request counts and shard
// sizes carry an executor="<rank>" label.
func StartLocalObs(k, workers int, reg *obs.Registry) (addrs []string, stop func(), err error) {
	if k <= 0 {
		return nil, nil, fmt.Errorf("cluster: executor count %d outside [1,∞)", k)
	}
	listeners := make([]net.Listener, 0, k)
	execs := make([]*Executor, 0, k)
	stop = func() {
		for _, l := range listeners {
			l.Close() //lint:allow errcheck one-way teardown of a loopback listener
		}
		for _, e := range execs {
			e.Close()
		}
	}
	for i := 0; i < k; i++ {
		l, lerr := net.Listen("tcp", "127.0.0.1:0")
		if lerr != nil {
			stop()
			return nil, nil, fmt.Errorf("cluster: local listener %d: %w", i, lerr)
		}
		e := NewExecutor(workers)
		e.Instrument(reg, strconv.Itoa(i))
		listeners = append(listeners, l)
		execs = append(execs, e)
		go func(e *Executor, l net.Listener) {
			if serr := e.Serve(l); serr != nil && !errors.Is(serr, net.ErrClosed) {
				// Serve only returns on accept failure; after stop() that is
				// the expected ErrClosed, anything else is worth a log line.
				slog.Default().Warn("cluster: local executor failed", "addr", l.Addr().String(), "err", serr)
			}
		}(e, l)
		addrs = append(addrs, l.Addr().String())
	}
	return addrs, stop, nil
}
