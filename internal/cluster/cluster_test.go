package cluster

import (
	"math"
	"net"
	"testing"
	"time"

	"repro/internal/bitvec"
	"repro/internal/dilution"
	"repro/internal/engine"
	"repro/internal/lattice"
	"repro/internal/rng"
)

// startExecutors launches k in-process executors on loopback and returns
// their addresses. Cleanup shuts everything down.
func startExecutors(t *testing.T, k int) []string {
	t.Helper()
	addrs := make([]string, k)
	for i := 0; i < k; i++ {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		e := NewExecutor(2)
		go func() { _ = e.Serve(l) }()
		t.Cleanup(func() {
			l.Close()
			e.Close()
		})
		addrs[i] = l.Addr().String()
	}
	return addrs
}

func dialTest(t *testing.T, addrs []string, risks []float64, resp dilution.Response) *Model {
	t.Helper()
	m, err := Dial(addrs, risks, resp, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)
	return m
}

func uniform(n int, p float64) []float64 {
	rs := make([]float64, n)
	for i := range rs {
		rs[i] = p
	}
	return rs
}

func TestDialValidation(t *testing.T) {
	addrs := startExecutors(t, 1)
	if _, err := Dial(nil, uniform(4, 0.1), dilution.Ideal{}, time.Second); err == nil {
		t.Error("no executors accepted")
	}
	if _, err := Dial(addrs, nil, dilution.Ideal{}, time.Second); err == nil {
		t.Error("empty cohort accepted")
	}
	if _, err := Dial(addrs, uniform(4, 0.1), nil, time.Second); err == nil {
		t.Error("nil response accepted")
	}
	if _, err := Dial([]string{"127.0.0.1:1"}, uniform(4, 0.1), dilution.Ideal{}, 200*time.Millisecond); err == nil {
		t.Error("unreachable executor accepted")
	}
	if _, err := Dial(addrs, []float64{0.1, 1.5}, dilution.Ideal{}, time.Second); err == nil {
		t.Error("invalid risk accepted")
	}
}

func TestPingAndShards(t *testing.T) {
	addrs := startExecutors(t, 3)
	m := dialTest(t, addrs, uniform(8, 0.1), dilution.Ideal{})
	if err := m.Ping(); err != nil {
		t.Fatal(err)
	}
	if m.Executors() != 3 || m.N() != 8 {
		t.Fatalf("executors=%d n=%d", m.Executors(), m.N())
	}
	// Shards must partition [0, 2^8).
	var covered uint64
	for _, c := range m.conns {
		if c.lo != covered {
			t.Fatalf("shard gap at %d", covered)
		}
		covered = c.hi
	}
	if covered != 256 {
		t.Fatalf("shards cover %d states", covered)
	}
}

func TestDistributedMatchesLocal(t *testing.T) {
	// The load-bearing test: the distributed model must agree with the
	// local engine-backed model on every quantity after a realistic
	// update sequence, for 1..4 executors.
	risks := []float64{0.05, 0.2, 0.1, 0.3, 0.15, 0.08, 0.25, 0.12}
	resp := dilution.Hyperbolic{MaxSens: 0.96, Spec: 0.99, D: 0.3}
	pool := engine.NewPool(2)
	defer pool.Close()

	for _, execs := range []int{1, 2, 3, 4} {
		local, err := lattice.New(pool, lattice.Config{Risks: risks, Response: resp})
		if err != nil {
			t.Fatal(err)
		}
		addrs := startExecutors(t, execs)
		dist := dialTest(t, addrs, risks, resp)

		r := rng.New(uint64(execs))
		for round := 0; round < 5; round++ {
			pm := bitvec.Mask(r.Uint64() & 0xff)
			if pm == 0 {
				pm = bitvec.FromIndices(round % 8)
			}
			y := dilution.Negative
			if r.Bool() {
				y = dilution.Positive
			}
			errL := local.Update(pm, y)
			errD := dist.Update(pm, y)
			if (errL == nil) != (errD == nil) {
				t.Fatalf("execs=%d round %d: error divergence %v vs %v", execs, round, errL, errD)
			}
			if errL != nil {
				break
			}
		}

		lm := local.Marginals()
		dm, err := dist.Marginals()
		if err != nil {
			t.Fatal(err)
		}
		for i := range lm {
			if math.Abs(lm[i]-dm[i]) > 1e-10 {
				t.Fatalf("execs=%d: marginal[%d] %v vs %v", execs, i, lm[i], dm[i])
			}
		}
		le := local.Entropy()
		de, err := dist.Entropy()
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(le-de) > 1e-9 {
			t.Fatalf("execs=%d: entropy %v vs %v", execs, le, de)
		}
		probe := bitvec.FromIndices(1, 3, 5)
		ln := local.NegMass(probe)
		dn, err := dist.NegMass(probe)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(ln-dn) > 1e-12 {
			t.Fatalf("execs=%d: negmass %v vs %v", execs, ln, dn)
		}
		cands := []bitvec.Mask{bitvec.FromIndices(0), bitvec.FromIndices(0, 1), bitvec.FromIndices(2, 4, 6)}
		lnm := local.NegMasses(cands)
		dnm, err := dist.NegMasses(cands)
		if err != nil {
			t.Fatal(err)
		}
		for i := range cands {
			if math.Abs(lnm[i]-dnm[i]) > 1e-12 {
				t.Fatalf("execs=%d: negmasses[%d] %v vs %v", execs, i, lnm[i], dnm[i])
			}
		}
		ld := local.IntersectDist(probe)
		dd, err := dist.IntersectDist(probe)
		if err != nil {
			t.Fatal(err)
		}
		for k := range ld {
			if math.Abs(ld[k]-dd[k]) > 1e-12 {
				t.Fatalf("execs=%d: intersect[%d] %v vs %v", execs, k, ld[k], dd[k])
			}
		}
		dmass, err := dist.Mass()
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(dmass-1) > 1e-9 {
			t.Fatalf("execs=%d: mass %v", execs, dmass)
		}
		// Full posterior agreement via Fetch.
		post, err := dist.Fetch()
		if err != nil {
			t.Fatal(err)
		}
		if len(post) != 256 {
			t.Fatalf("Fetch returned %d states", len(post))
		}
		for s := range post {
			want := local.StateMass(bitvec.Mask(s))
			if math.Abs(post[s]-want) > 1e-12*math.Max(1, want) {
				t.Fatalf("execs=%d: state %d %v vs %v", execs, s, post[s], want)
			}
		}
	}
}

func TestUpdateErrorsRemote(t *testing.T) {
	addrs := startExecutors(t, 2)
	m := dialTest(t, addrs, uniform(5, 0.2), dilution.Ideal{})
	if err := m.Update(0, dilution.Positive); err == nil {
		t.Error("empty pool accepted")
	}
	if err := m.Update(bitvec.FromIndices(7), dilution.Positive); err == nil {
		t.Error("out-of-cohort pool accepted")
	}
	pm := bitvec.Full(5)
	if err := m.Update(pm, dilution.Negative); err != nil {
		t.Fatal(err)
	}
	if err := m.Update(pm, dilution.Positive); err == nil {
		t.Error("impossible outcome accepted")
	}
	if m.Tests() != 1 {
		t.Errorf("Tests = %d", m.Tests())
	}
}

func TestKernelBeforeBuildFails(t *testing.T) {
	// Direct executor-level check: ops on an unbuilt shard must error,
	// not crash.
	e := NewExecutor(1)
	defer e.Close()
	for _, op := range []Op{OpUpdateMul, OpSumWhere, OpMarginals, OpEntropy, OpMass, OpFetch} {
		resp := e.dispatch(Request{Op: op, Pool: 1, Lik: []float64{1, 1}})
		if resp.Err == "" {
			t.Errorf("op %s on unbuilt shard did not error", op)
		}
	}
}

func TestDispatchValidation(t *testing.T) {
	e := NewExecutor(1)
	defer e.Close()
	if resp := e.dispatch(Request{Op: OpBuildPrior, Risks: uniform(4, 0.1), Lo: 10, Hi: 5}); resp.Err == "" {
		t.Error("inverted shard range accepted")
	}
	if resp := e.dispatch(Request{Op: OpBuildPrior, Risks: uniform(4, 0.1), Lo: 0, Hi: 17}); resp.Err == "" {
		t.Error("oversized shard range accepted")
	}
	ok := e.dispatch(Request{Op: OpBuildPrior, Risks: uniform(4, 0.1), Lo: 0, Hi: 16})
	if ok.Err != "" {
		t.Fatalf("valid build failed: %s", ok.Err)
	}
	if resp := e.dispatch(Request{Op: OpUpdateMul, Pool: 0b11, Lik: []float64{1}}); resp.Err == "" {
		t.Error("short likelihood table accepted")
	}
	if resp := e.dispatch(Request{Op: OpScale, Factor: math.NaN()}); resp.Err == "" {
		t.Error("NaN scale accepted")
	}
	if resp := e.dispatch(Request{Op: OpNegMasses}); resp.Err == "" {
		t.Error("empty candidate scan accepted")
	}
	if resp := e.dispatch(Request{Op: Op(200)}); resp.Err == "" {
		t.Error("unknown op accepted")
	}
}

func TestDriverReconnectAfterClose(t *testing.T) {
	// Executors survive a driver disconnect: a second Dial must succeed
	// and rebuild the shard.
	addrs := startExecutors(t, 2)
	m1 := dialTest(t, addrs, uniform(6, 0.1), dilution.Ideal{})
	if err := m1.Update(bitvec.FromIndices(0, 1), dilution.Negative); err != nil {
		t.Fatal(err)
	}
	m1.Close()
	m2 := dialTest(t, addrs, uniform(6, 0.1), dilution.Ideal{})
	mass, err := m2.Mass()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mass-1) > 1e-9 {
		t.Fatalf("rebuilt prior mass = %v", mass)
	}
	// Fresh prior, not the conditioned posterior from m1.
	marg, err := m2.Marginals()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(marg[0]-0.1) > 1e-9 {
		t.Fatalf("marginal after reconnect = %v, want prior 0.1", marg[0])
	}
}

func TestShutdownTerminatesServe(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	e := NewExecutor(1)
	defer e.Close()
	done := make(chan error, 1)
	go func() { done <- e.Serve(l) }()
	m, err := Dial([]string{l.Addr().String()}, uniform(4, 0.1), dilution.Ideal{}, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	m.Shutdown()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Serve returned %v", err)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("Serve did not return after shutdown")
	}
	l.Close()
}

func TestOpStrings(t *testing.T) {
	for op := OpPing; op <= OpShutdown; op++ {
		if op.String() == "" {
			t.Errorf("op %d has empty name", op)
		}
	}
	if got := Op(250).String(); got != "op(250)" {
		t.Errorf("unknown op string = %q", got)
	}
}
