// Package cluster is the distributed runtime of the reproduction: a
// driver/executor architecture over TCP that plays the role of SBGT's
// Spark cluster.
//
// Each executor owns one contiguous shard of the 2^N lattice posterior and
// runs the same partition kernels the in-process engine uses (with its own
// local worker pool). The driver fans a request out to every executor,
// waits for all partial results, and merges them in executor-rank order so
// distributed reductions are as deterministic as local ones. The wire
// format is encoding/gob over one persistent TCP connection per executor,
// with exactly one request in flight per connection.
//
// The protocol is intentionally lattice-specific rather than a generic
// serialized-closure RPC: shipping *named kernels + small parameter
// tables* (a likelihood table, a candidate list) instead of code is what
// makes the distributed mode safe, debuggable, and fast — the same design
// point Spark reaches with its closure-cleaning + broadcast machinery.
package cluster

import (
	"fmt"
	"time"

	"repro/internal/obs"
)

// Op identifies a kernel the driver can invoke on an executor.
type Op uint8

// Protocol operations.
const (
	OpPing       Op = iota // liveness check; echoes
	OpBuildPrior           // materialize the prior product measure on the shard
	OpUpdateMul            // multiply shard by a likelihood table, return partial sum
	OpScale                // multiply shard by a scalar
	OpSumWhere             // partial sum of states disjoint from a mask (NegMass)
	OpMarginals            // partial per-subject marginal vector
	OpNegMasses            // partial clean-mass vector for candidate pools
	OpEntropy              // partial Σ −p·ln p
	OpIntersect            // partial intersect-count distribution for one pool
	OpMass                 // partial total mass
	OpFetch                // return the raw shard (tests / checkpointing)
	OpShutdown             // close the executor process
	OpPrefix               // partial min-rank histogram for the halving prefix scan
	OpLoadShard            // install a driver-supplied shard (conditioning / restore scatter)
	OpSummary              // fused shard digest: marginals + entropy + MAP + E[|S|] + mass
)

// String names the op for errors and logs.
func (o Op) String() string {
	switch o {
	case OpPing:
		return "ping"
	case OpBuildPrior:
		return "build-prior"
	case OpUpdateMul:
		return "update-mul"
	case OpScale:
		return "scale"
	case OpSumWhere:
		return "sum-where"
	case OpMarginals:
		return "marginals"
	case OpNegMasses:
		return "neg-masses"
	case OpEntropy:
		return "entropy"
	case OpIntersect:
		return "intersect"
	case OpMass:
		return "mass"
	case OpFetch:
		return "fetch"
	case OpShutdown:
		return "shutdown"
	case OpPrefix:
		return "prefix-scan"
	case OpLoadShard:
		return "load-shard"
	case OpSummary:
		return "summary"
	default:
		return fmt.Sprintf("op(%d)", uint8(o))
	}
}

// Request is one driver→executor message. Fields are op-specific; unused
// fields stay zero and gob elides them.
type Request struct {
	Op Op
	// BuildPrior.
	Risks  []float64 // per-subject prior risks (defines N too)
	Lo, Hi uint64    // global state range [Lo, Hi) owned by this executor
	// UpdateMul / SumWhere / NegMasses / Intersect.
	Pool  uint64    // pool mask
	Lik   []float64 // likelihood by intersect count, len = popcount(Pool)+1
	Cands []uint64  // candidate pool masks
	// Prefix: subject ordering for the prefix scan.
	Order []int
	// Scale.
	Factor float64
	// LoadShard: the shard's state masses, len = Hi − Lo (Risks defines N,
	// Lo/Hi the owned range, as in BuildPrior; Lo == Hi is a valid empty
	// shard when the lattice has shrunk below the executor count).
	Data []float64
	// Trace, when non-empty, is the W3C-traceparent-style context of the
	// driver-side RPC span (obs.TraceContext.Encode). The executor opens
	// its dispatch span as a child of it and ships the completed spans
	// back in Response.Spans, so one session trace crosses the process
	// boundary. Empty means the call is untraced and the executor records
	// no spans for it.
	Trace string
}

// Response is one executor→driver message.
type Response struct {
	Op  Op
	Err string // non-empty on failure; the rest of the payload is invalid
	Sum float64
	Vec []float64
	// Summary is the fused shard digest, present only for OpSummary.
	Summary *WireSummary
	// Spans is the trace trailer: the executor-side spans completed while
	// serving this request (dispatch + kernel), present only when the
	// request carried a trace context. The driver absorbs them into its
	// own tracer so the assembled trace holds both sides of the RPC.
	Spans []WireSpan
}

// WireSummary is one executor's partial fused digest of its shard: the
// per-subject marginal partials plus the scalar statistics and the
// shard-local argmax. Entropy ships in nats — the driver merges partials
// first and converts to bits once, matching the in-process kernel's
// reduction shape.
type WireSummary struct {
	Marginals []float64
	Entropy   float64 // Σ −p·ln p over the shard (nats)
	Expected  float64 // Σ p·|S| over the shard
	Mass      float64 // Σ p over the shard
	MAPState  uint64  // shard-local argmax state
	MAPMass   float64 // its mass; −Inf is encoded as MAPOK=false
	MAPOK     bool    // false when the shard is empty (no argmax)
}

// WireSpan is one finished span in wire form: a gob-friendly flattening
// of obs.SpanRecord (attribute values become strings, timestamps become
// Unix nanos) so the protocol stays free of interface-typed payloads.
type WireSpan struct {
	TraceID  uint64
	ID       uint64
	ParentID uint64
	Name     string
	StartNs  int64 // span start, Unix nanoseconds (executor clock)
	DurNs    int64
	Attrs    []WireAttr
}

// WireAttr is one span attribute with its value rendered as a string.
type WireAttr struct {
	Key   string
	Value string
}

// wireFromRecord flattens a finished span record for the wire.
func wireFromRecord(rec obs.SpanRecord) WireSpan {
	w := WireSpan{
		TraceID:  rec.TraceID,
		ID:       rec.ID,
		ParentID: rec.ParentID,
		Name:     rec.Name,
		StartNs:  rec.Start.UnixNano(),
		DurNs:    int64(rec.Duration),
	}
	for _, a := range rec.Attrs {
		w.Attrs = append(w.Attrs, WireAttr{Key: a.Key, Value: fmt.Sprint(a.Value)})
	}
	return w
}

// Record re-inflates a wire span into the tracer's record form.
func (w WireSpan) Record() obs.SpanRecord {
	rec := obs.SpanRecord{
		TraceID:  w.TraceID,
		ID:       w.ID,
		ParentID: w.ParentID,
		Name:     w.Name,
		Start:    time.Unix(0, w.StartNs),
		Duration: time.Duration(w.DurNs),
	}
	for _, a := range w.Attrs {
		rec.Attrs = append(rec.Attrs, obs.Attr{Key: a.Key, Value: a.Value})
	}
	return rec
}

// errorf builds a failure response for the given op.
func errorf(op Op, format string, args ...any) Response {
	return Response{Op: op, Err: fmt.Sprintf(format, args...)}
}
