// Package cluster is the distributed runtime of the reproduction: a
// driver/executor architecture over TCP that plays the role of SBGT's
// Spark cluster.
//
// Each executor owns one contiguous shard of the 2^N lattice posterior and
// runs the same partition kernels the in-process engine uses (with its own
// local worker pool). The driver fans a request out to every executor,
// waits for all partial results, and merges them in executor-rank order so
// distributed reductions are as deterministic as local ones. The wire
// format is encoding/gob over one persistent TCP connection per executor,
// with exactly one request in flight per connection.
//
// The protocol is intentionally lattice-specific rather than a generic
// serialized-closure RPC: shipping *named kernels + small parameter
// tables* (a likelihood table, a candidate list) instead of code is what
// makes the distributed mode safe, debuggable, and fast — the same design
// point Spark reaches with its closure-cleaning + broadcast machinery.
package cluster

import "fmt"

// Op identifies a kernel the driver can invoke on an executor.
type Op uint8

// Protocol operations.
const (
	OpPing       Op = iota // liveness check; echoes
	OpBuildPrior           // materialize the prior product measure on the shard
	OpUpdateMul            // multiply shard by a likelihood table, return partial sum
	OpScale                // multiply shard by a scalar
	OpSumWhere             // partial sum of states disjoint from a mask (NegMass)
	OpMarginals            // partial per-subject marginal vector
	OpNegMasses            // partial clean-mass vector for candidate pools
	OpEntropy              // partial Σ −p·ln p
	OpIntersect            // partial intersect-count distribution for one pool
	OpMass                 // partial total mass
	OpFetch                // return the raw shard (tests / checkpointing)
	OpShutdown             // close the executor process
	OpPrefix               // partial min-rank histogram for the halving prefix scan
	OpLoadShard            // install a driver-supplied shard (conditioning / restore scatter)
)

// String names the op for errors and logs.
func (o Op) String() string {
	switch o {
	case OpPing:
		return "ping"
	case OpBuildPrior:
		return "build-prior"
	case OpUpdateMul:
		return "update-mul"
	case OpScale:
		return "scale"
	case OpSumWhere:
		return "sum-where"
	case OpMarginals:
		return "marginals"
	case OpNegMasses:
		return "neg-masses"
	case OpEntropy:
		return "entropy"
	case OpIntersect:
		return "intersect"
	case OpMass:
		return "mass"
	case OpFetch:
		return "fetch"
	case OpShutdown:
		return "shutdown"
	case OpPrefix:
		return "prefix-scan"
	case OpLoadShard:
		return "load-shard"
	default:
		return fmt.Sprintf("op(%d)", uint8(o))
	}
}

// Request is one driver→executor message. Fields are op-specific; unused
// fields stay zero and gob elides them.
type Request struct {
	Op Op
	// BuildPrior.
	Risks  []float64 // per-subject prior risks (defines N too)
	Lo, Hi uint64    // global state range [Lo, Hi) owned by this executor
	// UpdateMul / SumWhere / NegMasses / Intersect.
	Pool  uint64    // pool mask
	Lik   []float64 // likelihood by intersect count, len = popcount(Pool)+1
	Cands []uint64  // candidate pool masks
	// Prefix: subject ordering for the prefix scan.
	Order []int
	// Scale.
	Factor float64
	// LoadShard: the shard's state masses, len = Hi − Lo (Risks defines N,
	// Lo/Hi the owned range, as in BuildPrior; Lo == Hi is a valid empty
	// shard when the lattice has shrunk below the executor count).
	Data []float64
}

// Response is one executor→driver message.
type Response struct {
	Op  Op
	Err string // non-empty on failure; the rest of the payload is invalid
	Sum float64
	Vec []float64
}

// errorf builds a failure response for the given op.
func errorf(op Op, format string, args ...any) Response {
	return Response{Op: op, Err: fmt.Sprintf(format, args...)}
}
