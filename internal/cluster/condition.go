package cluster

import (
	"repro/internal/prob"
)

// Condition collapses subject onto a known status and returns the reduced
// distributed model over the remaining N−1 subjects, the cluster analogue
// of lattice.Condition: the driver gathers the posterior (Fetch), splices
// the subject's bit out and renormalizes locally, then scatters fresh
// shard ranges back to the same executors (OpLoadShard).
//
// On success, ownership of the executor connections transfers to the
// returned model and the receiver must not be used again (its Close
// becomes a no-op). It returns (nil, nil) — receiver unchanged and still
// usable — when the conditioning event has zero posterior mass, the
// subject index is invalid, or only one subject remains. A transport
// error mid-scatter leaves the cluster ambiguous, so both models' shared
// connections are torn down before the error is returned.
func (m *Model) Condition(subject int, positive bool) (*Model, error) {
	if subject < 0 || subject >= m.n || m.n <= 1 {
		return nil, nil
	}
	post, err := m.Fetch()
	if err != nil {
		return nil, err
	}
	nn := m.n - 1
	bit := uint64(1) << uint(subject)
	low := bit - 1
	reduced := make([]float64, uint64(1)<<uint(nn))
	var acc prob.Accumulator
	for sp := range reduced {
		old := (uint64(sp) & low) | ((uint64(sp) &^ low) << 1)
		if positive {
			old |= bit
		}
		reduced[sp] = post[old]
		acc.Add(post[old])
	}
	total := acc.Value()
	if !(total > 0) {
		return nil, nil
	}
	inv := 1 / total
	for i := range reduced {
		reduced[i] *= inv
	}

	risks := make([]float64, 0, nn)
	risks = append(risks, m.risks[:subject]...)
	risks = append(risks, m.risks[subject+1:]...)
	out := &Model{conns: m.conns, n: nn, risks: risks, resp: m.resp, tests: m.tests, met: m.met, tracer: m.tracer, parent: m.parent, flight: m.flight}
	m.conns = nil // ownership transfers; the receiver's Close is now a no-op

	// Reassign contiguous shard ranges over the halved lattice. Executors
	// past the state count get valid empty shards, so every connection
	// stays a member of the fan-out.
	states := uint64(len(reduced))
	per := states / uint64(len(out.conns))
	rem := states % uint64(len(out.conns))
	var off uint64
	for i, c := range out.conns {
		size := per
		if uint64(i) < rem {
			size++
		}
		c.lo, c.hi = off, off+size
		off += size
	}
	if _, err := out.fanout(func(c *conn) Request {
		return Request{Op: OpLoadShard, Risks: risks, Lo: c.lo, Hi: c.hi, Data: reduced[c.lo:c.hi]}
	}); err != nil {
		out.Close()
		return nil, err
	}
	out.met.noteShards(out.conns)
	return out, nil
}
