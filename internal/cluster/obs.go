package cluster

import (
	"net"
	"strconv"

	"repro/internal/obs"
)

// allOps enumerates the protocol for per-op metric registration.
var allOps = []Op{
	OpPing, OpBuildPrior, OpUpdateMul, OpScale, OpSumWhere, OpMarginals,
	OpNegMasses, OpEntropy, OpIntersect, OpMass, OpFetch, OpShutdown,
	OpPrefix, OpLoadShard, OpSummary,
}

// clusterMetrics is the driver-side reporting surface, shared by every
// executor connection of one model (and transferred with them on
// Condition). A nil *clusterMetrics disables all reporting.
//
// Per-executor series are labelled by the executor's stable fan-out rank
// ("0", "1", …) rather than its host:port: ranks bound the label
// cardinality at the fan-out width and stay comparable across redials,
// where raw addresses would mint a fresh series per ephemeral port.
type clusterMetrics struct {
	reg         *obs.Registry
	rpc         []map[Op]*obs.Histogram // round-trip latency by executor rank and op
	bytesSent   *obs.Counter
	bytesRecv   *obs.Counter
	dialRetries []*obs.Counter // by executor rank
}

func newClusterMetrics(reg *obs.Registry, executors int) *clusterMetrics {
	if reg == nil {
		return nil
	}
	m := &clusterMetrics{
		reg:         reg,
		rpc:         make([]map[Op]*obs.Histogram, executors),
		bytesSent:   reg.Counter("sbgt_cluster_bytes_sent_total"),
		bytesRecv:   reg.Counter("sbgt_cluster_bytes_recv_total"),
		dialRetries: make([]*obs.Counter, executors),
	}
	for rank := 0; rank < executors; rank++ {
		idx := obs.L("executor", strconv.Itoa(rank))
		m.dialRetries[rank] = reg.Counter("sbgt_cluster_dial_retries_total", idx)
		m.rpc[rank] = make(map[Op]*obs.Histogram, len(allOps))
		for _, op := range allOps {
			m.rpc[rank][op] = reg.Histogram("sbgt_cluster_rpc_seconds", nil, obs.L("op", op.String()), idx)
		}
	}
	return m
}

// rpcHist returns the latency histogram for one (op, executor-rank) pair.
func (m *clusterMetrics) rpcHist(op Op, rank int) *obs.Histogram {
	if m == nil || rank < 0 || rank >= len(m.rpc) {
		return nil // nil *obs.Histogram still times; it just records nowhere
	}
	return m.rpc[rank][op]
}

// dialRetry counts one redial of the executor at the given rank.
func (m *clusterMetrics) dialRetry(rank int) {
	if m == nil || rank < 0 || rank >= len(m.dialRetries) {
		return
	}
	m.dialRetries[rank].Inc()
}

// noteShards publishes the fan-out width and each connection's shard size
// (kept current across Condition re-sharding).
func (m *clusterMetrics) noteShards(conns []*conn) {
	if m == nil {
		return
	}
	m.reg.Gauge("sbgt_cluster_executors").Set(float64(len(conns)))
	for i, c := range conns {
		m.reg.Gauge("sbgt_cluster_shard_states", obs.L("executor", strconv.Itoa(i))).
			Set(float64(c.hi - c.lo))
	}
}

// countingConn counts bytes moved over one executor connection. The
// deadline and close methods pass through the embedded net.Conn.
type countingConn struct {
	net.Conn
	sent, recv *obs.Counter
}

func (c *countingConn) Read(p []byte) (int, error) {
	//lint:allow deadline passthrough wrapper; the owner of the wrapped conn arms deadlines
	n, err := c.Conn.Read(p)
	c.recv.Add(uint64(n))
	return n, err
}

func (c *countingConn) Write(p []byte) (int, error) {
	//lint:allow deadline passthrough wrapper; the owner of the wrapped conn arms deadlines
	n, err := c.Conn.Write(p)
	c.sent.Add(uint64(n))
	return n, err
}

// executorMetrics is the executor-side reporting surface.
type executorMetrics struct {
	requests map[Op]*obs.Counter
	shard    *obs.Gauge
}

// noteShard publishes the currently owned shard size.
func (e *Executor) noteShard() {
	if e.met != nil {
		e.met.shard.Set(float64(len(e.data)))
	}
}

// Instrument attaches the executor to a registry: its kernel pool reports
// as sbgt_engine_pool_*, served requests as
// sbgt_cluster_executor_requests_total{op}, and the owned shard size as
// sbgt_cluster_executor_shard_states. id, when non-empty, becomes an
// executor label so co-resident executors (StartLocal) stay
// distinguishable; pool metrics are unlabeled and aggregate across
// executors sharing a registry. A nil registry is a no-op.
func (e *Executor) Instrument(reg *obs.Registry, id string) {
	if reg == nil {
		return
	}
	e.pool.Instrument(reg)
	var labels []obs.Label
	if id != "" {
		labels = []obs.Label{obs.L("executor", id)}
	}
	m := &executorMetrics{
		requests: make(map[Op]*obs.Counter, len(allOps)),
		shard:    reg.Gauge("sbgt_cluster_executor_shard_states", labels...),
	}
	for _, op := range allOps {
		m.requests[op] = reg.Counter("sbgt_cluster_executor_requests_total",
			append([]obs.Label{obs.L("op", op.String())}, labels...)...)
	}
	e.met = m
}
