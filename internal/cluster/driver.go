package cluster

import (
	"encoding/gob"
	"fmt"
	"math"
	"math/bits"
	"net"
	"sync"
	"time"

	"repro/internal/bitvec"
	"repro/internal/dilution"
	"repro/internal/obs"
	"repro/internal/prob"
)

// conn is one executor connection with its shard assignment. rank is the
// executor's stable index in the fan-out — the bounded-cardinality label
// dial and RPC metrics use instead of the (ephemeral) host:port string.
type conn struct {
	addr   string
	rank   int
	nc     net.Conn
	enc    *gob.Encoder
	dec    *gob.Decoder
	lo, hi uint64
	met    *clusterMetrics // nil when the model is uninstrumented
	// rpcTimeout bounds each call's send+receive round; <= 0 leaves the
	// connection unbounded (the pre-RPCTimeout behaviour, where a dead
	// executor parked the calling goroutine — and its session — forever).
	rpcTimeout time.Duration
}

// call sends one request and waits for its response.
func (c *conn) call(req Request) (Response, error) {
	if c.met != nil {
		stop := c.met.rpcHist(req.Op, c.rank).Time()
		defer stop()
	}
	if c.rpcTimeout > 0 {
		if err := c.nc.SetDeadline(time.Now().Add(c.rpcTimeout)); err != nil {
			return Response{}, fmt.Errorf("cluster: arm rpc deadline for %s to %s: %w", req.Op, c.addr, err)
		}
		// Disarm after the round so an idle session between stages cannot
		// trip a stale deadline on the next call's write.
		defer c.nc.SetDeadline(time.Time{})
	}
	if err := c.enc.Encode(req); err != nil {
		return Response{}, fmt.Errorf("cluster: send %s to %s: %w", req.Op, c.addr, err)
	}
	var resp Response
	if err := c.dec.Decode(&resp); err != nil {
		return Response{}, fmt.Errorf("cluster: recv %s from %s: %w", req.Op, c.addr, err)
	}
	if resp.Err != "" {
		return Response{}, fmt.Errorf("cluster: executor %s: %s: %s", c.addr, req.Op, resp.Err)
	}
	return resp, nil
}

// DefaultRPCTimeout is the post-dial per-RPC bound DialWith applies when
// DialOptions.RPCTimeout is zero. It is deliberately generous — an RPC
// covers a full shard kernel on the largest supported lattice — while
// still guaranteeing that a dead executor fails the fan-out instead of
// hanging the session forever.
const DefaultRPCTimeout = 2 * time.Minute

// MaxSubjects bounds the cohort size of one distributed lattice model:
// the full 2^N lattice must fit a uint64 state count, and shards are
// dense float64 arrays like the in-process engine's (whose own bound is
// lattice.MaxSubjects).
const MaxSubjects = 30

// Model is the driver-side distributed lattice model. It mirrors the
// relevant subset of lattice.Model's API; every method fans out to all
// executors and merges partials in executor-rank order.
//
// A Model is not safe for concurrent use (like its local counterpart).
type Model struct {
	conns []*conn
	n     int
	risks []float64
	resp  dilution.Response
	tests int
	met   *clusterMetrics // nil when uninstrumented; shared by the conns

	// Distributed tracing state: when tracer is set and parent holds a
	// valid context (injected by the session via SetTraceContext), every
	// fan-out RPC opens an rpc:<op> span under parent, propagates its
	// context in the request frame, and absorbs the executor-side spans
	// shipped back in the response trailer. Both transfer to the reduced
	// model on Condition, like the connections themselves.
	tracer *obs.Tracer
	parent obs.TraceContext

	// flight, when non-nil, receives rpc_error events so the flight
	// recorder captures which executor failed, on which op, in which
	// trace — the post-hoc view the aggregate error counters cannot give.
	flight *obs.FlightScope
}

// SetTraceContext points subsequent RPC spans at a new parent — the
// session calls this with each stage-phase span's context so driver and
// executor spans land under the right node of the session trace. An
// invalid (zero) context disables tracing for subsequent calls.
func (m *Model) SetTraceContext(tc obs.TraceContext) { m.parent = tc }

// Tracer exposes the tracer RPC spans record into (nil when tracing is
// not wired), for callers that assemble or export the trace.
func (m *Model) Tracer() *obs.Tracer { return m.tracer }

// call issues one RPC on c, wrapped in a driver-side span when tracing
// is active: the span's context rides in the request frame, and the
// executor's completed spans come back in the response trailer and are
// absorbed into the driver's tracer.
func (m *Model) call(c *conn, req Request) (Response, error) {
	var span *obs.Span
	if m.tracer != nil && m.parent.Valid() {
		span = m.tracer.StartUnder("rpc:"+req.Op.String(), m.parent, obs.A("executor", c.rank))
		req.Trace = span.Context().Encode()
	}
	resp, err := c.call(req)
	if span != nil {
		if len(resp.Spans) > 0 {
			recs := make([]obs.SpanRecord, len(resp.Spans))
			for i, ws := range resp.Spans {
				recs[i] = ws.Record()
			}
			m.tracer.Absorb(recs...)
		}
		span.End()
	}
	if err != nil {
		m.flight.Event(obs.Event{
			Kind:    "rpc_error",
			TraceID: m.parent.TraceID,
			Err:     err.Error(),
			Attrs:   []obs.Attr{obs.A("op", req.Op.String()), obs.A("executor", c.rank), obs.A("addr", c.addr)},
		})
	}
	return resp, err
}

// DialOptions tunes DialWith beyond the required executor set.
type DialOptions struct {
	// Timeout bounds each connection attempt — the TCP dial plus that
	// executor's prior-materialization round. <= 0 means no deadline.
	Timeout time.Duration
	// Attempts is how many times each executor is dialed before its
	// failure aborts the fan-out (<= 0 selects 1). Retries are counted in
	// sbgt_cluster_dial_retries_total when a registry is attached.
	Attempts int
	// RPCTimeout bounds every post-dial RPC round (request send plus
	// response receive) on each connection. 0 selects DefaultRPCTimeout;
	// negative disables the bound entirely, restoring the old behaviour in
	// which a dead executor parks the calling goroutine forever.
	RPCTimeout time.Duration
	// Obs, when non-nil, receives driver-side metrics: per-op RPC latency
	// histograms, bytes sent/received, dial retries, and per-executor
	// shard-size gauges. Per-executor series use the stable fan-out rank
	// as the executor label, not the host:port string.
	Obs *obs.Registry
	// Tracer, when non-nil, records driver-side rpc:<op> spans and absorbs
	// the executor spans shipped back in response trailers. Spans are only
	// emitted once SetTraceContext installs a valid parent context.
	Tracer *obs.Tracer
	// Flight, when non-nil, receives structured dial_retry and rpc_error
	// events — the flight-recorder counterpart of the aggregate retry and
	// error counters, carrying executor rank, op, and trace identity.
	Flight *obs.FlightScope
}

// Dial connects to the executors, shards the lattice across them
// proportionally to their order, and materializes the prior product
// measure remotely. The model is normalized before Dial returns.
//
// Executors are dialed concurrently, and the deadline applies per
// connection — covering both the TCP dial and that executor's
// prior-materialization round — so N executors cost one timeout
// worst-case, not N of them. timeout <= 0 means no deadline.
func Dial(addrs []string, risks []float64, resp dilution.Response, timeout time.Duration) (*Model, error) {
	return DialWith(addrs, risks, resp, DialOptions{Timeout: timeout})
}

// dialOne runs one connection attempt: TCP dial, deadline, prior build.
// Errors are unadorned — DialWith wraps them with the executor address
// and attempt number.
func dialOne(addr string, rank int, lo, hi uint64, risks []float64, timeout, rpcTimeout time.Duration, met *clusterMetrics) (*conn, float64, error) {
	nc, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, 0, err
	}
	if met != nil {
		nc = &countingConn{Conn: nc, sent: met.bytesSent, recv: met.bytesRecv}
	}
	if timeout > 0 {
		// The same per-connection deadline also bounds the prior build: a
		// hung executor fails this dial, not the whole fan-out serially.
		if err := nc.SetDeadline(time.Now().Add(timeout)); err != nil {
			nc.Close() //lint:allow errcheck teardown of a connection we are abandoning
			return nil, 0, fmt.Errorf("set deadline: %w", err)
		}
	}
	c := &conn{addr: addr, rank: rank, nc: nc, enc: gob.NewEncoder(nc), dec: gob.NewDecoder(nc), lo: lo, hi: hi, met: met}
	resp, err := c.call(Request{Op: OpBuildPrior, Risks: risks, Lo: lo, Hi: hi})
	if err != nil {
		nc.Close() //lint:allow errcheck teardown of a connection we are abandoning
		return nil, 0, err
	}
	if timeout > 0 {
		if err := nc.SetDeadline(time.Time{}); err != nil {
			nc.Close() //lint:allow errcheck teardown of a connection we are abandoning
			return nil, 0, fmt.Errorf("clear deadline: %w", err)
		}
	}
	// Arm per-RPC deadlines only now: the dial deadline above owns the
	// prior-build round, so the two bounds never fight over the socket.
	c.rpcTimeout = rpcTimeout
	return c, resp.Sum, nil
}

// DialWith is Dial with retries and observability. Every connection
// failure — including a per-connection deadline firing mid prior build —
// is wrapped with the executor address and the attempt number, so a
// failed fan-out names the executor that sank it.
func DialWith(addrs []string, risks []float64, resp dilution.Response, opts DialOptions) (*Model, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("cluster: no executors")
	}
	n := len(risks)
	if n == 0 || n > MaxSubjects {
		return nil, fmt.Errorf("cluster: cohort size %d outside [1,%d]", n, MaxSubjects)
	}
	if resp == nil {
		return nil, fmt.Errorf("cluster: nil response model")
	}
	for i, p := range risks {
		if !(p > 0 && p < 1) {
			return nil, fmt.Errorf("cluster: risk[%d] = %v outside (0,1)", i, p)
		}
	}
	total := uint64(1) << uint(n)
	if uint64(len(addrs)) > total {
		return nil, fmt.Errorf("cluster: more executors (%d) than states (%d)", len(addrs), total)
	}
	attempts := opts.Attempts
	if attempts < 1 {
		attempts = 1
	}
	rpcTimeout := opts.RPCTimeout
	if rpcTimeout == 0 {
		rpcTimeout = DefaultRPCTimeout
	}
	met := newClusterMetrics(opts.Obs, len(addrs))
	per := total / uint64(len(addrs))
	rem := total % uint64(len(addrs))
	conns := make([]*conn, len(addrs))
	sums := make([]float64, len(addrs))
	errs := make([]error, len(addrs))
	var off uint64
	var wg sync.WaitGroup
	for i, addr := range addrs {
		size := per
		if uint64(i) < rem {
			size++
		}
		lo, hi := off, off+size
		off = hi
		wg.Add(1)
		go func(i int, addr string, lo, hi uint64) {
			defer wg.Done()
			for attempt := 1; attempt <= attempts; attempt++ {
				c, sum, err := dialOne(addr, i, lo, hi, risks, opts.Timeout, rpcTimeout, met)
				if err == nil {
					conns[i] = c
					sums[i] = sum
					return
				}
				errs[i] = fmt.Errorf("cluster: executor %s attempt %d/%d: %w", addr, attempt, attempts, err)
				if attempt < attempts {
					met.dialRetry(i)
					opts.Flight.Event(obs.Event{
						Kind:  "dial_retry",
						Err:   err.Error(),
						Attrs: []obs.Attr{obs.A("executor", i), obs.A("addr", addr), obs.A("attempt", attempt)},
					})
				}
			}
		}(i, addr, lo, hi)
	}
	wg.Wait()
	m := &Model{conns: make([]*conn, 0, len(addrs)), n: n, risks: append([]float64(nil), risks...), resp: resp, met: met, tracer: opts.Tracer, flight: opts.Flight}
	var firstErr error
	for i, c := range conns {
		if c != nil {
			m.conns = append(m.conns, c)
		} else if firstErr == nil {
			firstErr = errs[i] // first failure in executor-rank order
		}
	}
	if firstErr != nil {
		m.Close()
		return nil, firstErr
	}
	met.noteShards(m.conns)
	// Merge the prior partials in rank order and normalize remotely.
	var acc prob.Accumulator
	for _, s := range sums {
		acc.Add(s)
	}
	sum := acc.Value()
	if !(sum > 0) {
		m.Close()
		return nil, fmt.Errorf("cluster: degenerate prior (total %v)", sum)
	}
	if err := m.scale(1 / sum); err != nil {
		m.Close()
		return nil, err
	}
	return m, nil
}

// Close tears down every connection. Executors stay alive for the next
// driver; use Shutdown to terminate them.
func (m *Model) Close() {
	for _, c := range m.conns {
		if c.nc != nil {
			c.nc.Close() //lint:allow errcheck one-way teardown; a close error leaves nothing to recover
		}
	}
	m.conns = nil
}

// Shutdown asks every executor process to exit, then closes connections.
func (m *Model) Shutdown() {
	for _, c := range m.conns {
		_, _ = c.call(Request{Op: OpShutdown}) //lint:allow errcheck best-effort shutdown fan-out; executor exit races the response
	}
	m.Close()
}

// N returns the cohort size.
func (m *Model) N() int { return m.n }

// Risks returns the prior risk vector (a copy).
func (m *Model) Risks() []float64 { return append([]float64(nil), m.risks...) }

// Response returns the assay model updates use.
func (m *Model) Response() dilution.Response { return m.resp }

// Executors returns the number of remote shards.
func (m *Model) Executors() int { return len(m.conns) }

// Tests returns how many outcomes have been absorbed.
func (m *Model) Tests() int { return m.tests }

// fanout issues build(c) on every executor concurrently and returns the
// responses in executor-rank order (first error wins).
func (m *Model) fanout(build func(c *conn) Request) ([]Response, error) {
	resps := make([]Response, len(m.conns))
	errs := make([]error, len(m.conns))
	var wg sync.WaitGroup
	wg.Add(len(m.conns))
	for i, c := range m.conns {
		go func(i int, c *conn) {
			defer wg.Done()
			resps[i], errs[i] = m.call(c, build(c))
		}(i, c)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return resps, nil
}

// fanoutSum fans out and merges scalar partials with compensation, in rank
// order.
func (m *Model) fanoutSum(build func(c *conn) Request) (float64, error) {
	resps, err := m.fanout(build)
	if err != nil {
		return 0, err
	}
	var acc prob.Accumulator
	for _, r := range resps {
		acc.Add(r.Sum)
	}
	return acc.Value(), nil
}

// fanoutVec fans out and merges vector partials element-wise in rank order.
func (m *Model) fanoutVec(length int, build func(c *conn) Request) ([]float64, error) {
	resps, err := m.fanout(build)
	if err != nil {
		return nil, err
	}
	accs := make([]prob.Accumulator, length)
	for _, r := range resps {
		if len(r.Vec) != length {
			return nil, fmt.Errorf("cluster: partial vector has %d entries, want %d", len(r.Vec), length)
		}
		for j, x := range r.Vec {
			accs[j].Add(x)
		}
	}
	out := make([]float64, length)
	for j := range accs {
		out[j] = accs[j].Value()
	}
	return out, nil
}

func (m *Model) scale(factor float64) error {
	_, err := m.fanout(func(*conn) Request {
		return Request{Op: OpScale, Factor: factor}
	})
	return err
}

// Update folds one pooled-test outcome into the distributed posterior:
// one fused multiply-and-sum round, one scale round.
func (m *Model) Update(pool bitvec.Mask, y dilution.Outcome) error {
	if pool == 0 {
		return fmt.Errorf("cluster: empty pool")
	}
	if !pool.SubsetOf(bitvec.Full(m.n)) {
		return fmt.Errorf("cluster: pool %v outside cohort of %d", pool, m.n)
	}
	size := pool.Count()
	lik := make([]float64, size+1)
	for k := 0; k <= size; k++ {
		l := m.resp.Likelihood(y, k, size)
		if l < 0 || math.IsNaN(l) {
			return fmt.Errorf("cluster: invalid likelihood %v at k=%d", l, k)
		}
		lik[k] = l
	}
	total, err := m.fanoutSum(func(*conn) Request {
		return Request{Op: OpUpdateMul, Pool: uint64(pool), Lik: lik}
	})
	if err != nil {
		return err
	}
	if !(total > 0) || math.IsInf(total, 0) {
		return fmt.Errorf("cluster: outcome %v on pool %v has zero total likelihood", y, pool)
	}
	if err := m.scale(1 / total); err != nil {
		return err
	}
	m.tests++
	return nil
}

// Marginals returns every subject's posterior infection probability.
func (m *Model) Marginals() ([]float64, error) {
	return m.fanoutVec(m.n, func(*conn) Request {
		return Request{Op: OpMarginals}
	})
}

// NegMass returns P(S ∩ pool = ∅ | data).
func (m *Model) NegMass(pool bitvec.Mask) (float64, error) {
	return m.fanoutSum(func(*conn) Request {
		return Request{Op: OpSumWhere, Pool: uint64(pool)}
	})
}

// NegMasses scores every candidate pool in one distributed sweep.
func (m *Model) NegMasses(cands []bitvec.Mask) ([]float64, error) {
	if len(cands) == 0 {
		return nil, nil
	}
	masks := make([]uint64, len(cands))
	for i, c := range cands {
		masks[i] = uint64(c)
	}
	return m.fanoutVec(len(cands), func(*conn) Request {
		return Request{Op: OpNegMasses, Cands: masks}
	})
}

// Entropy returns the posterior entropy in bits.
func (m *Model) Entropy() (float64, error) {
	nats, err := m.fanoutSum(func(*conn) Request {
		return Request{Op: OpEntropy}
	})
	if err != nil {
		return 0, err
	}
	return nats / math.Ln2, nil
}

// Summary is the driver-side merged fused digest; fields mirror
// posterior.Summary.
type Summary struct {
	Marginals        []float64
	EntropyBits      float64
	MAPState         bitvec.Mask
	MAPMass          float64
	ExpectedInfected float64
	Mass             float64
}

// Summary gathers every statistic a session round reads in ONE
// distributed round trip — marginals, entropy, MAP, expected-infected,
// and total mass — where the separate kernels would pay four. Executor
// partials merge in rank order with compensated accumulators; the argmax
// takes the lowest state on ties (shards are rank-ordered by state range,
// so first-wins is the lowest state).
func (m *Model) Summary() (*Summary, error) {
	resps, err := m.fanout(func(*conn) Request { return Request{Op: OpSummary} })
	if err != nil {
		return nil, err
	}
	out := &Summary{Marginals: make([]float64, m.n), MAPMass: math.Inf(-1)}
	margAccs := make([]prob.Accumulator, m.n)
	var ent, exp, mass prob.Accumulator
	for i, r := range resps {
		ws := r.Summary
		if ws == nil {
			return nil, fmt.Errorf("cluster: executor %d returned no summary payload", i)
		}
		if len(ws.Marginals) != m.n {
			return nil, fmt.Errorf("cluster: summary marginals have %d entries, want %d", len(ws.Marginals), m.n)
		}
		for j, x := range ws.Marginals {
			margAccs[j].Add(x)
		}
		ent.Add(ws.Entropy)
		exp.Add(ws.Expected)
		mass.Add(ws.Mass)
		if ws.MAPOK && (ws.MAPMass > out.MAPMass || (ws.MAPMass == out.MAPMass && ws.MAPState < uint64(out.MAPState))) { //lint:allow floats exact equality is the deterministic argmax tie-break
			out.MAPState, out.MAPMass = bitvec.Mask(ws.MAPState), ws.MAPMass
		}
	}
	for j := range margAccs {
		out.Marginals[j] = margAccs[j].Value()
	}
	out.EntropyBits = ent.Value() / math.Ln2
	out.ExpectedInfected = exp.Value()
	out.Mass = mass.Value()
	return out, nil
}

// IntersectDist returns the posterior distribution of |S ∩ pool|.
func (m *Model) IntersectDist(pool bitvec.Mask) ([]float64, error) {
	return m.fanoutVec(bits.OnesCount64(uint64(pool))+1, func(*conn) Request {
		return Request{Op: OpIntersect, Pool: uint64(pool)}
	})
}

// Mass returns the total posterior mass (≈1 between updates).
func (m *Model) Mass() (float64, error) {
	return m.fanoutSum(func(*conn) Request {
		return Request{Op: OpMass}
	})
}

// Fetch materializes the full posterior on the driver, in state order.
// Intended for tests and small lattices only: it moves 8·2^N bytes.
func (m *Model) Fetch() ([]float64, error) {
	resps, err := m.fanout(func(*conn) Request {
		return Request{Op: OpFetch}
	})
	if err != nil {
		return nil, err
	}
	var out []float64
	for i, r := range resps {
		want := int(m.conns[i].hi - m.conns[i].lo)
		if len(r.Vec) != want {
			return nil, fmt.Errorf("cluster: shard %d returned %d states, want %d", i, len(r.Vec), want)
		}
		out = append(out, r.Vec...)
	}
	return out, nil
}

// Ping verifies every executor is reachable.
func (m *Model) Ping() error {
	_, err := m.fanout(func(*conn) Request { return Request{Op: OpPing} })
	return err
}
