package cluster

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math"
	"math/bits"
	"net"
	"time"

	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/prob"
)

// Executor serves lattice-shard kernels to one driver connection at a
// time. It owns a contiguous state range [lo, hi) and evaluates kernels
// over it with a local engine pool.
type Executor struct {
	pool   *engine.Pool
	log    *slog.Logger
	met    *executorMetrics // nil when uninstrumented
	tracer *obs.Tracer      // always non-nil; records traced dispatches
	idle   time.Duration    // per-round read/write bound; 0 disables

	// Shard state, valid after OpBuildPrior.
	n    int
	lo   uint64
	data []float64
}

// NewExecutor returns an executor whose kernels run on workers local
// goroutines (<= 0 selects GOMAXPROCS). Transport hiccups log through
// slog.Default; redirect with SetLogger. The executor owns a span tracer
// (replaceable with SetTracer) so traced RPCs can ship their spans back
// even when no introspection endpoint was configured.
func NewExecutor(workers int) *Executor {
	return &Executor{pool: engine.NewPool(workers), log: slog.Default(), tracer: obs.NewTracer(0)}
}

// SetLogger redirects the executor's transport logging. A nil logger
// silences it.
func (e *Executor) SetLogger(l *slog.Logger) { e.log = obs.OrNop(l) }

// SetTracer redirects span recording — pass the runtime tracer served on
// /spans so a standalone sbgt-exec exposes its side of every trace. A
// nil tracer is replaced with a detached one: dispatch spans then still
// get IDs and ship in response trailers, they just aren't retained.
func (e *Executor) SetTracer(t *obs.Tracer) {
	if t == nil {
		t = obs.NewTracer(0)
	}
	e.tracer = t
}

// SetIdleTimeout bounds how long one driver connection may sit silent (or
// refuse to accept a response) before the executor drops it and returns to
// accepting. Serve handles connections serially, so without a bound a
// wedged driver — half-open TCP, a stalled process holding the socket —
// starves every future driver forever. d <= 0 disables the bound.
func (e *Executor) SetIdleTimeout(d time.Duration) {
	if d < 0 {
		d = 0
	}
	e.idle = d
}

// Close releases the local worker pool.
func (e *Executor) Close() { e.pool.Close() }

// Serve accepts driver connections on l until l is closed or a Shutdown
// request arrives. Each connection is handled serially — the protocol has
// a single driver — and a dropped connection returns the executor to
// accepting, so a restarted driver can reclaim a live executor (the
// re-sent BuildPrior re-materializes the shard).
func (e *Executor) Serve(l net.Listener) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			return err
		}
		shutdown := e.handle(conn)
		if err := conn.Close(); err != nil {
			e.log.Warn("cluster executor: close conn", "err", err)
		}
		if shutdown {
			return nil
		}
	}
}

// handle runs one connection's request loop. It reports whether a
// shutdown was requested.
func (e *Executor) handle(conn net.Conn) bool {
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	for {
		if e.idle > 0 {
			// Bound the wait for the next request: a silent or half-open
			// driver releases the (serial) accept loop instead of holding it.
			if err := conn.SetReadDeadline(time.Now().Add(e.idle)); err != nil {
				e.log.Warn("cluster executor: arm read deadline", "err", err)
				return false
			}
		}
		var req Request
		if err := dec.Decode(&req); err != nil {
			if !errors.Is(err, io.EOF) {
				e.log.Warn("cluster executor: decode", "err", err)
			}
			return false
		}
		if e.idle > 0 {
			// A fresh write window per response: the read deadline above may
			// be nearly spent by the time a long kernel finishes.
			if err := conn.SetWriteDeadline(time.Now().Add(e.idle)); err != nil {
				e.log.Warn("cluster executor: arm write deadline", "err", err)
				return false
			}
		}
		if req.Op == OpShutdown {
			//lint:allow errcheck best-effort shutdown ack; the driver may already have hung up
			_ = enc.Encode(Response{Op: OpShutdown})
			return true
		}
		resp := e.serve(req)
		if err := enc.Encode(resp); err != nil {
			e.log.Warn("cluster executor: encode", "err", err)
			return false
		}
	}
}

// serve evaluates one request, opening executor-side spans under the
// propagated trace context when the request carries one: an exec:<op>
// span for the whole dispatch with a kernel child for the shard
// computation itself. Completed spans ride back in the response trailer
// (and stay in the executor's own tracer for its /spans endpoint).
func (e *Executor) serve(req Request) Response {
	if req.Trace == "" {
		return e.dispatch(req)
	}
	parent, err := obs.ParseTraceContext(req.Trace)
	if err != nil {
		// Tracing is advisory: a malformed context degrades the call to
		// untraced rather than failing real work.
		e.log.Warn("cluster executor: bad trace context", "err", err)
		return e.dispatch(req)
	}
	span := e.tracer.StartUnder("exec:"+req.Op.String(), parent, obs.A("states", len(e.data)))
	kernel := span.Child("kernel")
	resp := e.dispatch(req)
	kernel.End()
	span.End()
	resp.Spans = make([]WireSpan, 0, 2)
	if rec, ok := span.Record(); ok {
		resp.Spans = append(resp.Spans, wireFromRecord(rec))
	}
	if rec, ok := kernel.Record(); ok {
		resp.Spans = append(resp.Spans, wireFromRecord(rec))
	}
	return resp
}

// dispatch evaluates one request against the shard.
func (e *Executor) dispatch(req Request) Response {
	if e.met != nil {
		if c, ok := e.met.requests[req.Op]; ok {
			c.Inc()
		}
	}
	switch req.Op {
	case OpPing:
		return Response{Op: OpPing}
	case OpBuildPrior:
		return e.buildPrior(req)
	case OpLoadShard:
		return e.loadShard(req)
	case OpFetch:
		if e.data == nil {
			return errorf(req.Op, "no shard built")
		}
		return Response{Op: req.Op, Vec: append([]float64(nil), e.data...)}
	}
	// Every remaining op needs a built shard.
	if e.data == nil {
		return errorf(req.Op, "no shard built")
	}
	switch req.Op {
	case OpUpdateMul:
		return e.updateMul(req)
	case OpScale:
		return e.scale(req)
	case OpSumWhere:
		return e.sumWhere(req)
	case OpMarginals:
		return e.marginals(req)
	case OpNegMasses:
		return e.negMasses(req)
	case OpEntropy:
		return e.entropy(req)
	case OpIntersect:
		return e.intersect(req)
	case OpMass:
		return e.mass(req)
	case OpPrefix:
		return e.prefixScan(req)
	case OpSummary:
		return e.summary(req)
	default:
		return errorf(req.Op, "unknown op")
	}
}

// Kernel blocking parameters, mirroring the in-process lattice layer (the
// executor re-implements the shard-local kernels rather than importing
// lattice, keeping the dependency arrow one-way).
const (
	// radixBits decomposes a state into a low byte walked per state and
	// high bits accounted once per aligned 256-state block.
	radixBits  = 8
	radixBlock = 1 << radixBits
	// negMassesTile is the shard tile (in states) kept cache-resident
	// across all candidates during a candidate scan: 4096 × 8 B = 32 KiB.
	negMassesTile = 1 << 12
)

// forRange runs body over local index chunks of the shard in parallel.
func (e *Executor) forRange(body func(lo, hi int)) {
	e.pool.For(len(e.data), 0, body)
}

// reduceChunks evaluates a compensated partial sum per fixed-size chunk
// and merges the chunk partials in order, mirroring engine.Vector's
// deterministic reduction shape.
func (e *Executor) reduceChunks(body func(lo, hi int) prob.Accumulator) float64 {
	const chunk = 1 << 14
	n := len(e.data)
	parts := (n + chunk - 1) / chunk
	partials := make([]prob.Accumulator, parts)
	e.pool.For(parts, 1, func(plo, phi int) {
		for p := plo; p < phi; p++ {
			lo := p * chunk
			hi := lo + chunk
			if hi > n {
				hi = n
			}
			partials[p] = body(lo, hi)
		}
	})
	var total prob.Accumulator
	for _, acc := range partials {
		total.Merge(acc)
	}
	return total.Value()
}

func (e *Executor) buildPrior(req Request) Response {
	n := len(req.Risks)
	if n == 0 || n > MaxSubjects {
		return errorf(req.Op, "invalid cohort size %d", n)
	}
	total := uint64(1) << uint(n)
	if req.Lo >= req.Hi || req.Hi > total {
		return errorf(req.Op, "invalid shard range [%d,%d) of %d", req.Lo, req.Hi, total)
	}
	odds := make([]float64, n)
	logBase := 0.0
	for i, p := range req.Risks {
		if !(p > 0 && p < 1) {
			return errorf(req.Op, "risk[%d] = %v outside (0,1)", i, p)
		}
		odds[i] = p / (1 - p)
		logBase += math.Log1p(-p)
	}
	base := math.Exp(logBase)
	e.n = n
	e.lo = req.Lo
	e.data = make([]float64, req.Hi-req.Lo)
	e.noteShard()
	e.forRange(func(lo, hi int) {
		for j := lo; j < hi; j++ {
			s := e.lo + uint64(j)
			w := base
			for v := s; v != 0; v &= v - 1 {
				w *= odds[bits.TrailingZeros64(v)]
			}
			e.data[j] = w
		}
	})
	return Response{Op: req.Op, Sum: e.reduceChunks(func(lo, hi int) prob.Accumulator {
		var acc prob.Accumulator
		for _, w := range e.data[lo:hi] {
			acc.Add(w)
		}
		return acc
	})}
}

// loadShard installs a driver-supplied shard verbatim: the scatter half of
// driver-side conditioning (and of checkpoint restores). Unlike BuildPrior
// it accepts an empty range, so a lattice that has shrunk below the
// executor count still keeps every connection assigned.
func (e *Executor) loadShard(req Request) Response {
	n := len(req.Risks)
	if n == 0 || n > MaxSubjects {
		return errorf(req.Op, "invalid cohort size %d", n)
	}
	total := uint64(1) << uint(n)
	if req.Lo > req.Hi || req.Hi > total {
		return errorf(req.Op, "invalid shard range [%d,%d) of %d", req.Lo, req.Hi, total)
	}
	if uint64(len(req.Data)) != req.Hi-req.Lo {
		return errorf(req.Op, "shard payload has %d states, range holds %d", len(req.Data), req.Hi-req.Lo)
	}
	for _, w := range req.Data {
		if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return errorf(req.Op, "invalid shard mass %v", w)
		}
	}
	e.n = n
	e.lo = req.Lo
	// make (not append) so an empty shard is non-nil: nil means "no shard
	// built" to dispatch, and an empty shard is a built shard.
	e.data = make([]float64, req.Hi-req.Lo)
	copy(e.data, req.Data)
	e.noteShard()
	return Response{Op: req.Op}
}

func (e *Executor) updateMul(req Request) Response {
	want := bits.OnesCount64(req.Pool) + 1
	if len(req.Lik) != want {
		return errorf(req.Op, "likelihood table has %d entries, want %d", len(req.Lik), want)
	}
	sum := e.reduceChunks(func(lo, hi int) prob.Accumulator {
		var acc prob.Accumulator
		for j := lo; j < hi; j++ {
			s := e.lo + uint64(j)
			w := e.data[j] * req.Lik[bits.OnesCount64(s&req.Pool)]
			e.data[j] = w
			acc.Add(w)
		}
		return acc
	})
	return Response{Op: req.Op, Sum: sum}
}

func (e *Executor) scale(req Request) Response {
	if math.IsNaN(req.Factor) || math.IsInf(req.Factor, 0) {
		return errorf(req.Op, "invalid factor %v", req.Factor)
	}
	e.forRange(func(lo, hi int) {
		for j := lo; j < hi; j++ {
			e.data[j] *= req.Factor
		}
	})
	return Response{Op: req.Op}
}

func (e *Executor) sumWhere(req Request) Response {
	sum := e.reduceChunks(func(lo, hi int) prob.Accumulator {
		var acc prob.Accumulator
		for j := lo; j < hi; j++ {
			if (e.lo+uint64(j))&req.Pool == 0 {
				acc.Add(e.data[j])
			}
		}
		return acc
	})
	return Response{Op: req.Op, Sum: sum}
}

func (e *Executor) marginals(Request) Response {
	out := make([]float64, e.n)
	// Single-threaded accumulation per executor keeps this allocation-free
	// and is still distributed across executors; shards are the unit of
	// parallelism for vector-valued reductions on the wire. The radix
	// decomposition (see lattice.Marginals) walks only each state's low
	// byte and books the shared high bits once per aligned block.
	addMarginalsRadix(e.lo, e.data, out)
	return Response{Op: OpMarginals, Vec: out}
}

// addMarginalsWalk accumulates marginal mass with the plain per-state bit
// walk; the ragged-edge path of the radix kernel.
func addMarginalsWalk(offset uint64, data []float64, out []float64) {
	for j := range data {
		w := data[j]
		if w == 0 { //lint:allow floats exact-zero sparsity skip; near-zero mass must still count
			continue
		}
		for v := offset + uint64(j); v != 0; v &= v - 1 {
			out[bits.TrailingZeros64(v)] += w
		}
	}
}

// addMarginalsRadix accumulates marginal mass block-wise: within an
// aligned radixBlock run of states only the low radixBits differ, so each
// state walks at most 8 bits and the block's total mass is added to the
// shared high bits once.
func addMarginalsRadix(offset uint64, data []float64, out []float64) {
	lo := offset
	hi := offset + uint64(len(data))
	head := (lo + radixBlock - 1) &^ uint64(radixBlock-1)
	tail := hi &^ uint64(radixBlock-1)
	if head >= tail {
		addMarginalsWalk(lo, data, out)
		return
	}
	addMarginalsWalk(lo, data[:head-lo], out)
	for b := head; b < tail; b += radixBlock {
		blk := data[b-lo : b-lo+radixBlock]
		var blockSum float64
		for j := range blk {
			w := blk[j]
			if w == 0 { //lint:allow floats exact-zero sparsity skip; near-zero mass must still count
				continue
			}
			blockSum += w
			for v := uint64(j); v != 0; v &= v - 1 {
				out[bits.TrailingZeros64(v)] += w
			}
		}
		if blockSum == 0 { //lint:allow floats exact-zero sparsity skip; near-zero mass must still count
			continue
		}
		for v := b >> radixBits; v != 0; v &= v - 1 {
			out[radixBits+bits.TrailingZeros64(v)] += blockSum
		}
	}
	addMarginalsWalk(tail, data[tail-lo:], out)
}

func (e *Executor) negMasses(req Request) Response {
	if len(req.Cands) == 0 {
		return errorf(req.Op, "no candidates")
	}
	out := make([]float64, len(req.Cands))
	// Tile-outer, candidate-inner loop (see lattice.NegMasses): each
	// 32 KiB shard tile stays cache-resident while every candidate in the
	// worker's chunk scores it, instead of re-streaming the whole shard
	// once per candidate. Workers split the candidate list; each out[c]
	// has a single writer accumulating in fixed tile order, so the result
	// is deterministic.
	e.pool.For(len(req.Cands), 1, func(clo, chi int) {
		for t0 := 0; t0 < len(e.data); t0 += negMassesTile {
			t1 := t0 + negMassesTile
			if t1 > len(e.data) {
				t1 = len(e.data)
			}
			blk := e.data[t0:t1]
			toff := e.lo + uint64(t0)
			for c := clo; c < chi; c++ {
				pm := req.Cands[c]
				var acc float64
				for j := range blk {
					if (toff+uint64(j))&pm == 0 {
						acc += blk[j]
					}
				}
				out[c] += acc
			}
		}
	})
	return Response{Op: req.Op, Vec: out}
}

func (e *Executor) entropy(req Request) Response {
	sum := e.reduceChunks(func(lo, hi int) prob.Accumulator {
		var acc prob.Accumulator
		for _, p := range e.data[lo:hi] {
			if p > 0 {
				acc.Add(-p * math.Log(p))
			}
		}
		return acc
	})
	return Response{Op: req.Op, Sum: sum}
}

func (e *Executor) intersect(req Request) Response {
	out := make([]float64, bits.OnesCount64(req.Pool)+1)
	for j, w := range e.data {
		if w == 0 { //lint:allow floats exact-zero sparsity skip; near-zero mass must still count
			continue
		}
		out[bits.OnesCount64((e.lo+uint64(j))&req.Pool)] += w
	}
	return Response{Op: OpIntersect, Vec: out}
}

// prefixScan returns the shard's min-rank histogram for the halving
// prefix candidates: slot r accumulates the mass of states whose
// lowest-ranked infected subject (per req.Order) has rank r, slot
// len(Order) the mass of states disjoint from the whole ordering. The
// driver merges histograms and suffix-sums them into prefix clean masses.
func (e *Executor) prefixScan(req Request) Response {
	k := len(req.Order)
	if k == 0 || k > e.n {
		return errorf(req.Op, "order has %d subjects for cohort of %d", k, e.n)
	}
	var rank [64]uint8
	for i := range rank {
		rank[i] = uint8(k)
	}
	for r, subj := range req.Order {
		if subj < 0 || subj >= e.n {
			return errorf(req.Op, "order subject %d outside cohort of %d", subj, e.n)
		}
		if rank[subj] != uint8(k) {
			return errorf(req.Op, "duplicate subject %d in order", subj)
		}
		rank[subj] = uint8(r)
	}
	out := make([]float64, k+1)
	for j, w := range e.data {
		if w == 0 { //lint:allow floats exact-zero sparsity skip; near-zero mass must still count
			continue
		}
		rmin := uint8(k)
		for v := e.lo + uint64(j); v != 0; v &= v - 1 {
			if r := rank[bits.TrailingZeros64(v)]; r < rmin {
				rmin = r
				if rmin == 0 {
					break // rank 0 is the floor; the rest of the walk can't lower it
				}
			}
		}
		out[rmin] += w
	}
	return Response{Op: req.Op, Vec: out}
}

// summary computes the shard's fused digest in one pass: marginal
// partials via the radix decomposition, with the scalar statistics and
// the shard-local argmax folded into the same sweep. Entropy ships in
// nats; the driver merges executor partials in rank order and converts
// to bits once.
func (e *Executor) summary(req Request) Response {
	ws := &WireSummary{Marginals: make([]float64, e.n), MAPMass: math.Inf(-1), MAPOK: len(e.data) > 0}
	var ent, exp, mass prob.Accumulator
	walk := func(offset uint64, data []float64) {
		for j := range data {
			w := data[j]
			s := offset + uint64(j)
			mass.Add(w)
			if w > ws.MAPMass {
				ws.MAPState, ws.MAPMass = s, w
			}
			if w == 0 { //lint:allow floats exact-zero sparsity skip; near-zero mass must still count
				continue
			}
			if w > 0 {
				ent.Add(-w * math.Log(w))
			}
			exp.Add(w * float64(bits.OnesCount64(s)))
			for v := s; v != 0; v &= v - 1 {
				ws.Marginals[bits.TrailingZeros64(v)] += w
			}
		}
	}
	lo := e.lo
	hi := e.lo + uint64(len(e.data))
	head := (lo + radixBlock - 1) &^ uint64(radixBlock-1)
	tail := hi &^ uint64(radixBlock-1)
	if head >= tail {
		walk(lo, e.data)
	} else {
		walk(lo, e.data[:head-lo])
		for b := head; b < tail; b += radixBlock {
			blk := e.data[b-lo : b-lo+radixBlock]
			highCount := float64(bits.OnesCount64(b >> radixBits))
			var blockSum float64
			for j := range blk {
				w := blk[j]
				mass.Add(w)
				if w > ws.MAPMass {
					ws.MAPState, ws.MAPMass = b+uint64(j), w
				}
				if w == 0 { //lint:allow floats exact-zero sparsity skip; near-zero mass must still count
					continue
				}
				blockSum += w
				if w > 0 {
					ent.Add(-w * math.Log(w))
				}
				exp.Add(w * (highCount + float64(bits.OnesCount64(uint64(j)))))
				for v := uint64(j); v != 0; v &= v - 1 {
					ws.Marginals[bits.TrailingZeros64(v)] += w
				}
			}
			if blockSum == 0 { //lint:allow floats exact-zero sparsity skip; near-zero mass must still count
				continue
			}
			for v := b >> radixBits; v != 0; v &= v - 1 {
				ws.Marginals[radixBits+bits.TrailingZeros64(v)] += blockSum
			}
		}
		walk(tail, e.data[tail-lo:])
	}
	ws.Entropy = ent.Value()
	ws.Expected = exp.Value()
	ws.Mass = mass.Value()
	if !ws.MAPOK {
		ws.MAPMass = 0 // keep the wire form finite; MAPOK marks the argmax absent
	}
	return Response{Op: req.Op, Summary: ws}
}

func (e *Executor) mass(req Request) Response {
	sum := e.reduceChunks(func(lo, hi int) prob.Accumulator {
		var acc prob.Accumulator
		for _, w := range e.data[lo:hi] {
			acc.Add(w)
		}
		return acc
	})
	return Response{Op: req.Op, Sum: sum}
}

// ListenAndServe runs an executor on addr until shutdown. It is the body
// of cmd/sbgt-exec.
func ListenAndServe(addr string, workers int) error {
	return ListenAndServeObs(addr, workers, nil, nil)
}

// ListenAndServeObs is ListenAndServe with the executor instrumented into
// reg (nil disables metrics) and logging through log (nil selects
// slog.Default).
func ListenAndServeObs(addr string, workers int, reg *obs.Registry, log *slog.Logger) error {
	return ListenAndServeTraced(addr, workers, reg, nil, log)
}

// ListenAndServeTraced is ListenAndServeObs with the executor's dispatch
// spans recorded into tracer — pass the runtime tracer backing the
// process's /spans endpoint so the executor side of every distributed
// trace is scrapeable in place as well as shipped back to the driver. A
// nil tracer keeps the executor's private one.
func ListenAndServeTraced(addr string, workers int, reg *obs.Registry, tracer *obs.Tracer, log *slog.Logger) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("cluster: listen %s: %w", addr, err)
	}
	defer l.Close()
	e := NewExecutor(workers)
	defer e.Close()
	if log != nil {
		e.SetLogger(log)
	}
	if tracer != nil {
		e.SetTracer(tracer)
	}
	e.Instrument(reg, "")
	e.log.Info("cluster executor: serving", "addr", l.Addr().String())
	return e.Serve(l)
}
