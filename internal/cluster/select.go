package cluster

import (
	"fmt"

	"repro/internal/bitvec"
	"repro/internal/halving"
	"repro/internal/prob"
)

// PrefixNegMasses returns the clean masses of every nested prefix of the
// subject ordering, distributed: each executor histograms its shard by
// minimum order-rank, the driver merges in rank order and suffix-sums.
func (m *Model) PrefixNegMasses(order []int) ([]float64, error) {
	k := len(order)
	if k == 0 {
		return nil, nil
	}
	hist, err := m.fanoutVec(k+1, func(*conn) Request {
		return Request{Op: OpPrefix, Order: order}
	})
	if err != nil {
		return nil, err
	}
	neg := make([]float64, k)
	var acc prob.Accumulator
	for i := k - 1; i >= 0; i-- {
		acc.Add(hist[i+1])
		neg[i] = acc.Value()
	}
	return neg, nil
}

// SelectHalving runs the Bayesian Halving Algorithm over the distributed
// posterior. It reuses the exact selection logic of internal/halving via
// an adapter; transport failures surface as the returned error rather
// than a partial answer.
func (m *Model) SelectHalving(opts halving.Options) (halving.Selection, error) {
	ad := &posteriorAdapter{m: m}
	sel, err := ad.trap(func() halving.Selection {
		return halving.SelectOn(ad, opts)
	})
	if err != nil {
		return halving.Selection{}, err
	}
	return sel, nil
}

// posteriorAdapter exposes the distributed model through the error-free
// halving.Posterior interface. Transport errors panic with a private
// type that trap converts back into an error — the panic never crosses
// this package's boundary.
type posteriorAdapter struct {
	m *Model
}

type transportPanic struct{ err error }

func (a *posteriorAdapter) trap(fn func() halving.Selection) (sel halving.Selection, err error) {
	defer func() {
		if r := recover(); r != nil {
			tp, ok := r.(transportPanic)
			if !ok {
				panic(r) // not ours: propagate
			}
			err = tp.err
		}
	}()
	return fn(), nil
}

func (a *posteriorAdapter) N() int { return a.m.N() }

func (a *posteriorAdapter) Marginals() []float64 {
	v, err := a.m.Marginals()
	if err != nil {
		panic(transportPanic{fmt.Errorf("cluster: marginals during selection: %w", err)})
	}
	return v
}

func (a *posteriorAdapter) NegMasses(cands []bitvec.Mask) []float64 {
	v, err := a.m.NegMasses(cands)
	if err != nil {
		panic(transportPanic{fmt.Errorf("cluster: candidate scan during selection: %w", err)})
	}
	return v
}

func (a *posteriorAdapter) PrefixNegMasses(order []int) []float64 {
	v, err := a.m.PrefixNegMasses(order)
	if err != nil {
		panic(transportPanic{fmt.Errorf("cluster: prefix scan during selection: %w", err)})
	}
	return v
}
