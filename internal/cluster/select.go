package cluster

import (
	"repro/internal/prob"
)

// PrefixNegMasses returns the clean masses of every nested prefix of the
// subject ordering, distributed: each executor histograms its shard by
// minimum order-rank, the driver merges in rank order and suffix-sums.
//
// Together with N, Marginals, and NegMasses this makes *Model satisfy
// halving.Posterior, so pool selection over the distributed posterior is
// just halving.SelectOn(m, opts) — transport failures surface as the
// returned error.
func (m *Model) PrefixNegMasses(order []int) ([]float64, error) {
	k := len(order)
	if k == 0 {
		return nil, nil
	}
	hist, err := m.fanoutVec(k+1, func(*conn) Request {
		return Request{Op: OpPrefix, Order: order}
	})
	if err != nil {
		return nil, err
	}
	neg := make([]float64, k)
	var acc prob.Accumulator
	for i := k - 1; i >= 0; i-- {
		acc.Add(hist[i+1])
		neg[i] = acc.Value()
	}
	return neg, nil
}
