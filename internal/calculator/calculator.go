// Package calculator computes pooling-design operating characteristics —
// the engine behind cmd/sbgt-calc, this reproduction's analogue of the
// "web-based calculator … to assist in weighing these factors and to
// guide decisions on when and how to pool" introduced by the companion
// Biostatistics paper.
//
// For classical designs (individual testing, Dorfman two-stage blocks)
// the expectations are computed exactly by summing over the binomial
// distribution of infected counts per block, through the same
// dilution.Response models the inference engine uses. For the adaptive
// Bayesian-halving programme, whose cost has no closed form, the
// calculator runs a deterministic Monte-Carlo study.
package calculator

import (
	"fmt"
	"math"

	"repro/internal/bitvec"
	"repro/internal/dilution"
	"repro/internal/halving"
	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Design summarizes one testing programme's expected operating
// characteristics at a given prevalence.
type Design struct {
	Name            string
	TestsPerSubject float64
	Stages          float64 // sequential lab round-trips
	Sens            float64 // P(classified positive | infected)
	Spec            float64 // P(classified negative | clean)
	Exact           bool    // true when computed analytically
}

// String renders the design as one row body.
func (d Design) String() string {
	kind := "monte-carlo"
	if d.Exact {
		kind = "exact"
	}
	return fmt.Sprintf("%-18s tests/subj=%.4f stages=%.2f sens=%.4f spec=%.4f (%s)",
		d.Name, d.TestsPerSubject, d.Stages, d.Sens, d.Spec, kind)
}

// binomPMF returns C(n,k)·p^k·(1−p)^(n−k), computed stably in log space
// for large n.
func binomPMF(n, k int, p float64) float64 {
	if k < 0 || k > n {
		return 0
	}
	if p == 0 { //lint:allow floats exact degenerate endpoint of the PMF
		if k == 0 {
			return 1
		}
		return 0
	}
	if p == 1 { //lint:allow floats exact degenerate endpoint of the PMF
		if k == n {
			return 1
		}
		return 0
	}
	logC := math.Log(float64(bitvec.Binomial(n, k)))
	return math.Exp(logC + float64(k)*math.Log(p) + float64(n-k)*math.Log(1-p))
}

// Individual returns the exact characteristics of one-test-per-subject
// testing under the response model.
func Individual(resp dilution.Response) Design {
	return Design{
		Name:            "individual",
		TestsPerSubject: 1,
		Stages:          1,
		Sens:            resp.Likelihood(dilution.Positive, 1, 1),
		Spec:            resp.Likelihood(dilution.Negative, 0, 1),
		Exact:           true,
	}
}

// Dorfman returns the exact characteristics of the classical two-stage
// design with blocks of size k at prevalence p: stage one tests each
// block pooled; members of positive blocks are retested individually.
//
// Derivation: with J ~ Binomial(k, p) infected in a block,
//
//	E[tests]/k   = 1/k + P(block positive)
//	P(block positive) = Σ_j P(J=j)·L(+| j, k)
//	sens = Σ_j P(J−1=j | subject infected)·L(+| j+1, k)·L(+|1,1)
//	spec = 1 − Σ_j P(J=j | subject clean)·L(+| j, k)·L(+|0,1)
//
// where the conditional block compositions use k−1 draws for the other
// members. It panics when k < 1 or p is outside (0,1): calculator inputs
// are operator-supplied and validated by the caller.
func Dorfman(p float64, k int, resp dilution.Response) Design {
	if k < 1 || !(p > 0 && p < 1) {
		panic(fmt.Sprintf("calculator: invalid Dorfman inputs p=%v k=%d", p, k))
	}
	// P(block positive) over the full block.
	var pPos float64
	for j := 0; j <= k; j++ {
		pPos += binomPMF(k, j, p) * resp.Likelihood(dilution.Positive, j, k)
	}
	// Sensitivity: condition on one infected member; the other k−1 are iid.
	var sens float64
	for j := 0; j <= k-1; j++ {
		sens += binomPMF(k-1, j, p) * resp.Likelihood(dilution.Positive, j+1, k)
	}
	sens *= resp.Likelihood(dilution.Positive, 1, 1)
	// False-positive path: clean subject, block fires (others may be
	// infected), individual test fires spuriously.
	var fp float64
	for j := 0; j <= k-1; j++ {
		fp += binomPMF(k-1, j, p) * resp.Likelihood(dilution.Positive, j, k)
	}
	fp *= resp.Likelihood(dilution.Positive, 0, 1)
	stages := 1 + pPos // second stage happens only for positive blocks
	return Design{
		Name:            fmt.Sprintf("dorfman-%d", k),
		TestsPerSubject: 1/float64(k) + pPos,
		Stages:          stages,
		Sens:            sens,
		Spec:            1 - fp,
		Exact:           true,
	}
}

// OptimalDorfman scans block sizes 2..maxK and returns the block size
// minimizing tests per subject, with its design. Note that under dilution
// the cheapest block can have terrible sensitivity (a huge pool rarely
// fires, so it rarely triggers second-stage tests); use
// OptimalDorfmanWithFloor to optimize under a detection constraint.
func OptimalDorfman(p float64, maxK int, resp dilution.Response) (int, Design) {
	bestK, best := 2, Dorfman(p, 2, resp)
	for k := 3; k <= maxK; k++ {
		if d := Dorfman(p, k, resp); d.TestsPerSubject < best.TestsPerSubject {
			bestK, best = k, d
		}
	}
	return bestK, best
}

// OptimalDorfmanWithFloor returns the cheapest Dorfman design whose
// sensitivity is at least minSens, or (0, zero Design, false) when no
// block size 2..maxK meets the floor.
func OptimalDorfmanWithFloor(p float64, maxK int, resp dilution.Response, minSens float64) (int, Design, bool) {
	bestK := 0
	var best Design
	found := false
	for k := 2; k <= maxK; k++ {
		d := Dorfman(p, k, resp)
		if d.Sens < minSens {
			continue
		}
		if !found || d.TestsPerSubject < best.TestsPerSubject {
			bestK, best, found = k, d, true
		}
	}
	return bestK, best, found
}

// HalvingParams configures the Monte-Carlo estimate for the adaptive
// Bayesian programme.
type HalvingParams struct {
	Cohort     int // lattice size per session (<= 30)
	MaxPool    int
	Lookahead  int
	Replicates int
	Seed       uint64
}

// Halving estimates the Bayesian-halving programme's characteristics at
// prevalence p by a deterministic Monte-Carlo study.
func Halving(p float64, resp dilution.Response, hp HalvingParams) (Design, error) {
	if !(p > 0 && p < 1) {
		return Design{}, fmt.Errorf("calculator: prevalence %v outside (0,1)", p)
	}
	if hp.Cohort <= 0 {
		hp.Cohort = 16
	}
	if hp.Replicates <= 0 {
		hp.Replicates = 32
	}
	res, err := stats.RunSerial(stats.StudyConfig{
		RiskGen:  func(*rng.Source) []float64 { return workload.UniformRisks(hp.Cohort, p) },
		Response: resp,
		Strategy: func(*rng.Source) halving.Strategy {
			return halving.Halving{Opts: halving.Options{MaxPool: hp.MaxPool}}
		},
		Lookahead:  hp.Lookahead,
		Replicates: hp.Replicates,
		Seed:       hp.Seed,
	})
	if err != nil {
		return Design{}, err
	}
	s := res.Summarize()
	return Design{
		Name:            "bayesian-halving",
		TestsPerSubject: s.TestsPerSubject,
		Stages:          s.MeanStages,
		Sens:            s.Sensitivity,
		Spec:            s.Specificity,
	}, nil
}

// Compare produces the guidance table: individual testing, the optimal
// Dorfman design, and the Bayesian-halving programme at prevalence p.
// The Dorfman optimum is taken under a sensitivity floor of 90% of the
// individual test's sensitivity — the cheapest unconstrained block can be
// a detection disaster under dilution (a huge pool rarely fires at all).
// When no block meets the floor, the unconstrained optimum is returned so
// the table still shows what "cheap" costs in missed cases.
func Compare(p float64, resp dilution.Response, hp HalvingParams) ([]Design, error) {
	if !(p > 0 && p < 1) {
		return nil, fmt.Errorf("calculator: prevalence %v outside (0,1)", p)
	}
	maxK := hp.MaxPool
	if maxK < 2 {
		maxK = 32
	}
	ind := Individual(resp)
	_, dorf, ok := OptimalDorfmanWithFloor(p, maxK, resp, 0.9*ind.Sens)
	if !ok {
		_, dorf = OptimalDorfman(p, maxK, resp)
	}
	halv, err := Halving(p, resp, hp)
	if err != nil {
		return nil, err
	}
	return []Design{ind, dorf, halv}, nil
}

// Recommend picks the cheapest design from a Compare table whose
// sensitivity reaches 90% of individual testing's — the rule the CLI
// prints. Individual testing always qualifies, so a result is guaranteed.
func Recommend(designs []Design) Design {
	floor := 0.9 * designs[0].Sens
	best := designs[0]
	for _, d := range designs[1:] {
		if d.Sens >= floor && d.TestsPerSubject < best.TestsPerSubject {
			best = d
		}
	}
	return best
}
