package calculator

import (
	"math"
	"testing"

	"repro/internal/dilution"
)

func TestBinomPMF(t *testing.T) {
	// Sums to one.
	for _, n := range []int{1, 5, 20} {
		for _, p := range []float64{0.1, 0.5, 0.9} {
			sum := 0.0
			for k := 0; k <= n; k++ {
				sum += binomPMF(n, k, p)
			}
			if math.Abs(sum-1) > 1e-12 {
				t.Fatalf("pmf(n=%d,p=%v) sums to %v", n, p, sum)
			}
		}
	}
	// Known value: C(4,2)·0.5^4 = 0.375.
	if got := binomPMF(4, 2, 0.5); math.Abs(got-0.375) > 1e-12 {
		t.Errorf("binomPMF(4,2,0.5) = %v", got)
	}
	// Edge probabilities.
	if binomPMF(3, 0, 0) != 1 || binomPMF(3, 1, 0) != 0 {
		t.Error("p=0 edge wrong")
	}
	if binomPMF(3, 3, 1) != 1 || binomPMF(3, 2, 1) != 0 {
		t.Error("p=1 edge wrong")
	}
	if binomPMF(3, 4, 0.5) != 0 || binomPMF(3, -1, 0.5) != 0 {
		t.Error("out-of-range k wrong")
	}
}

func TestIndividualIdeal(t *testing.T) {
	d := Individual(dilution.Ideal{})
	if d.TestsPerSubject != 1 || d.Stages != 1 || d.Sens != 1 || d.Spec != 1 || !d.Exact {
		t.Fatalf("ideal individual = %+v", d)
	}
}

func TestDorfmanMatchesClosedFormIdeal(t *testing.T) {
	// With an ideal test, E[tests]/subject = 1/k + 1 − (1−p)^k.
	for _, p := range []float64{0.01, 0.05, 0.2} {
		for _, k := range []int{2, 5, 10} {
			d := Dorfman(p, k, dilution.Ideal{})
			want := 1/float64(k) + 1 - math.Pow(1-p, float64(k))
			if math.Abs(d.TestsPerSubject-want) > 1e-12 {
				t.Fatalf("Dorfman(p=%v,k=%d) = %v, closed form %v", p, k, d.TestsPerSubject, want)
			}
			if math.Abs(d.Sens-1) > 1e-12 || math.Abs(d.Spec-1) > 1e-12 {
				t.Fatalf("ideal Dorfman sens/spec = %v/%v", d.Sens, d.Spec)
			}
		}
	}
}

func TestDorfmanDilutionLowersSensitivity(t *testing.T) {
	resp := dilution.Hyperbolic{MaxSens: 0.98, Spec: 0.99, D: 0.5}
	small := Dorfman(0.05, 3, resp)
	large := Dorfman(0.05, 20, resp)
	if large.Sens >= small.Sens {
		t.Fatalf("dilution did not lower block sensitivity: k=3 %v vs k=20 %v", small.Sens, large.Sens)
	}
	if small.Sens >= Individual(resp).Sens {
		t.Fatalf("pooled sensitivity %v not below individual %v", small.Sens, Individual(resp).Sens)
	}
}

func TestDorfmanPanicsOnBadInput(t *testing.T) {
	for _, f := range []func(){
		func() { Dorfman(0, 4, dilution.Ideal{}) },
		func() { Dorfman(0.5, 0, dilution.Ideal{}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("no panic")
				}
			}()
			f()
		}()
	}
}

func TestOptimalDorfmanNearSqrtRule(t *testing.T) {
	// The classical optimum for ideal tests is k ≈ 1/√p.
	for _, p := range []float64{0.01, 0.04} {
		k, d := OptimalDorfman(p, 32, dilution.Ideal{})
		want := 1 / math.Sqrt(p)
		if math.Abs(float64(k)-want) > want/2 {
			t.Fatalf("optimal block %d far from sqrt rule %v at p=%v", k, want, p)
		}
		if d.TestsPerSubject >= 1 {
			t.Fatalf("optimal Dorfman saves nothing at p=%v: %v", p, d.TestsPerSubject)
		}
	}
}

func TestHalvingEstimate(t *testing.T) {
	d, err := Halving(0.05, dilution.Ideal{}, HalvingParams{Cohort: 10, Replicates: 12, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if d.Exact {
		t.Error("halving claimed exact")
	}
	if d.TestsPerSubject <= 0 || d.TestsPerSubject >= 1 {
		t.Fatalf("halving tests/subject = %v", d.TestsPerSubject)
	}
	if d.Sens != 1 || d.Spec != 1 {
		t.Fatalf("ideal-assay halving sens/spec = %v/%v", d.Sens, d.Spec)
	}
	if _, err := Halving(1.5, dilution.Ideal{}, HalvingParams{}); err == nil {
		t.Error("bad prevalence accepted")
	}
}

func TestHalvingDeterministic(t *testing.T) {
	hp := HalvingParams{Cohort: 10, Replicates: 8, Seed: 9}
	a, err := Halving(0.08, dilution.Binary{Sens: 0.95, Spec: 0.99}, hp)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Halving(0.08, dilution.Binary{Sens: 0.95, Spec: 0.99}, hp)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("halving estimate not deterministic: %+v vs %+v", a, b)
	}
}

func TestOptimalDorfmanWithFloor(t *testing.T) {
	// Ideal assay: floor is vacuous, must match the unconstrained optimum.
	kU, dU := OptimalDorfman(0.02, 32, dilution.Ideal{})
	kF, dF, ok := OptimalDorfmanWithFloor(0.02, 32, dilution.Ideal{}, 0.9)
	if !ok || kF != kU || dF.TestsPerSubject != dU.TestsPerSubject {
		t.Fatalf("floor changed the ideal optimum: %d/%v vs %d/%v", kF, dF, kU, dU)
	}
	// Strong dilution: the constrained optimum must be smaller (or absent)
	// and at least as sensitive as the floor.
	resp := dilution.Hyperbolic{MaxSens: 0.98, Spec: 0.995, D: 0.25}
	kU, _ = OptimalDorfman(0.05, 32, resp)
	kF, dF, ok = OptimalDorfmanWithFloor(0.05, 32, resp, 0.5)
	if ok {
		if dF.Sens < 0.5 {
			t.Fatalf("floor violated: sens %v", dF.Sens)
		}
		if kF > kU {
			t.Fatalf("constrained block %d larger than unconstrained %d", kF, kU)
		}
	}
	// An impossible floor reports absence.
	if _, _, ok := OptimalDorfmanWithFloor(0.05, 32, resp, 0.999); ok {
		t.Fatal("impossible floor satisfied")
	}
}

func TestRecommendRespectsSensitivityFloor(t *testing.T) {
	designs := []Design{
		{Name: "individual", TestsPerSubject: 1, Sens: 0.98, Exact: true},
		{Name: "cheap-but-blind", TestsPerSubject: 0.2, Sens: 0.3, Exact: true},
		{Name: "good-pooling", TestsPerSubject: 0.5, Sens: 0.95},
	}
	if got := Recommend(designs); got.Name != "good-pooling" {
		t.Fatalf("Recommend picked %s", got.Name)
	}
	// When nothing else qualifies, individual testing wins.
	designs[2].Sens = 0.2
	if got := Recommend(designs); got.Name != "individual" {
		t.Fatalf("Recommend picked %s", got.Name)
	}
}

func TestCompare(t *testing.T) {
	designs, err := Compare(0.03, dilution.Ideal{}, HalvingParams{Cohort: 10, Replicates: 12, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(designs) != 3 {
		t.Fatalf("got %d designs", len(designs))
	}
	// At 3% prevalence with an ideal assay both pooled designs beat
	// individual testing, and adaptive halving beats Dorfman.
	ind, dorf, halv := designs[0], designs[1], designs[2]
	if dorf.TestsPerSubject >= ind.TestsPerSubject {
		t.Fatalf("Dorfman %v not below individual %v", dorf.TestsPerSubject, ind.TestsPerSubject)
	}
	if halv.TestsPerSubject >= dorf.TestsPerSubject {
		t.Fatalf("halving %v not below Dorfman %v", halv.TestsPerSubject, dorf.TestsPerSubject)
	}
	for _, d := range designs {
		if d.String() == "" {
			t.Error("empty design string")
		}
	}
	if _, err := Compare(0, dilution.Ideal{}, HalvingParams{}); err == nil {
		t.Error("bad prevalence accepted")
	}
}
