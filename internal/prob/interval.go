package prob

import "math"

// Interval is a two-sided confidence interval on a proportion.
type Interval struct {
	Lo, Hi float64
}

// WilsonInterval returns the Wilson score interval for observing successes
// out of trials at confidence level given by z (z = 1.96 for 95%).
// The Monte-Carlo study reports classification accuracy with Wilson bounds
// because accuracies sit near 1, where the normal approximation interval
// collapses or escapes [0,1]. trials == 0 yields the vacuous [0,1] interval.
func WilsonInterval(successes, trials int, z float64) Interval {
	if trials == 0 {
		return Interval{0, 1}
	}
	n := float64(trials)
	p := float64(successes) / n
	z2 := z * z
	denom := 1 + z2/n
	center := (p + z2/(2*n)) / denom
	half := z / denom * math.Sqrt(p*(1-p)/n+z2/(4*n*n))
	return Interval{Clamp01(center - half), Clamp01(center + half)}
}

// MeanStddev returns the sample mean and the unbiased (n-1) sample standard
// deviation of xs via a compensated two-pass computation. It returns
// (0, 0) for an empty slice and stddev 0 for a single observation.
func MeanStddev(xs []float64) (mean, stddev float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	mean = Sum(xs) / float64(len(xs))
	if len(xs) == 1 {
		return mean, 0
	}
	var acc Accumulator
	for _, x := range xs {
		d := x - mean
		acc.Add(d * d)
	}
	return mean, math.Sqrt(acc.Value() / float64(len(xs)-1))
}

// Quantile returns the q-quantile (0 <= q <= 1) of sorted xs using linear
// interpolation between order statistics. It panics when xs is empty or not
// ascending, or q is outside [0,1]; sortedness is the caller's contract and
// is checked cheaply (adjacent pairs) to catch misuse in analysis code.
func Quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		panic("prob: Quantile of empty slice")
	}
	if q < 0 || q > 1 {
		panic("prob: Quantile q outside [0,1]")
	}
	for i := 1; i < len(sorted); i++ {
		if sorted[i] < sorted[i-1] {
			panic("prob: Quantile input not sorted")
		}
	}
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(pos)
	if lo == len(sorted)-1 {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}
