package prob

import (
	"math"
	"testing"
)

func TestEntropyUniform(t *testing.T) {
	ps := []float64{0.25, 0.25, 0.25, 0.25}
	if got, want := Entropy(ps), math.Log(4); math.Abs(got-want) > 1e-12 {
		t.Fatalf("Entropy = %v, want %v", got, want)
	}
	if got := EntropyBits(ps); math.Abs(got-2) > 1e-12 {
		t.Fatalf("EntropyBits = %v, want 2", got)
	}
}

func TestEntropyDegenerate(t *testing.T) {
	if got := Entropy([]float64{1, 0, 0}); got != 0 {
		t.Errorf("Entropy(point mass) = %v", got)
	}
	if got := Entropy(nil); got != 0 {
		t.Errorf("Entropy(nil) = %v", got)
	}
}

func TestBernoulliEntropy(t *testing.T) {
	if got, want := BernoulliEntropy(0.5), math.Ln2; math.Abs(got-want) > 1e-12 {
		t.Errorf("H(1/2) = %v, want ln 2", got)
	}
	if got := BernoulliEntropy(0); got != 0 {
		t.Errorf("H(0) = %v", got)
	}
	if got := BernoulliEntropy(1); got != 0 {
		t.Errorf("H(1) = %v", got)
	}
	// Symmetry.
	if a, b := BernoulliEntropy(0.2), BernoulliEntropy(0.8); math.Abs(a-b) > 1e-12 {
		t.Errorf("H(0.2)=%v != H(0.8)=%v", a, b)
	}
}

func TestKL(t *testing.T) {
	p := []float64{0.5, 0.5}
	q := []float64{0.9, 0.1}
	want := 0.5*math.Log(0.5/0.9) + 0.5*math.Log(0.5/0.1)
	if got := KL(p, q); math.Abs(got-want) > 1e-12 {
		t.Fatalf("KL = %v, want %v", got, want)
	}
	if got := KL(p, p); got != 0 {
		t.Errorf("KL(p,p) = %v, want exactly 0", got)
	}
	if got := KL([]float64{1, 0}, []float64{0, 1}); !math.IsInf(got, 1) {
		t.Errorf("KL with unsupported mass = %v, want +Inf", got)
	}
	// q zero where p zero is fine.
	if got := KL([]float64{0, 1}, []float64{0, 1}); got != 0 {
		t.Errorf("KL with matched zeros = %v", got)
	}
}

func TestKLNonNegative(t *testing.T) {
	p := []float64{0.3, 0.2, 0.5}
	q := []float64{0.2, 0.3, 0.5}
	if got := KL(p, q); got < 0 {
		t.Errorf("KL = %v, must be nonnegative", got)
	}
}

func TestKLPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("KL mismatch did not panic")
		}
	}()
	KL([]float64{1}, []float64{0.5, 0.5})
}

func TestTotalVariation(t *testing.T) {
	p := []float64{1, 0}
	q := []float64{0, 1}
	if got := TotalVariation(p, q); math.Abs(got-1) > 1e-15 {
		t.Fatalf("TV = %v, want 1", got)
	}
	if got := TotalVariation(p, p); got != 0 {
		t.Errorf("TV(p,p) = %v", got)
	}
}

func TestClamp01(t *testing.T) {
	cases := []struct{ in, want float64 }{
		{-0.5, 0}, {0, 0}, {0.5, 0.5}, {1, 1}, {1.5, 1},
	}
	for _, c := range cases {
		if got := Clamp01(c.in); got != c.want {
			t.Errorf("Clamp01(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestLogistic(t *testing.T) {
	if got := Logistic(0); math.Abs(got-0.5) > 1e-15 {
		t.Errorf("Logistic(0) = %v", got)
	}
	// Symmetry: σ(-x) = 1 - σ(x).
	for _, x := range []float64{0.1, 1, 10, 100, 1000} {
		a, b := Logistic(-x), 1-Logistic(x)
		if math.Abs(a-b) > 1e-15 {
			t.Errorf("Logistic symmetry fails at %v: %v vs %v", x, a, b)
		}
	}
	// No overflow at extremes.
	if got := Logistic(1e308); got != 1 {
		t.Errorf("Logistic(huge) = %v", got)
	}
	if got := Logistic(-1e308); got != 0 {
		t.Errorf("Logistic(-huge) = %v", got)
	}
}

func TestWilsonInterval(t *testing.T) {
	iv := WilsonInterval(0, 0, 1.96)
	if iv.Lo != 0 || iv.Hi != 1 {
		t.Fatalf("vacuous interval = %+v", iv)
	}
	iv = WilsonInterval(95, 100, 1.96)
	if iv.Lo >= 0.95 || iv.Hi <= 0.95 {
		t.Fatalf("interval %+v does not contain point estimate 0.95", iv)
	}
	if iv.Lo < 0.87 || iv.Hi > 0.99 {
		t.Errorf("interval %+v wider than expected for n=100", iv)
	}
	// Degenerate all-success: upper bound must stay within [0,1].
	iv = WilsonInterval(50, 50, 1.96)
	if iv.Hi > 1 || iv.Lo > 1 || iv.Lo < 0.8 {
		t.Errorf("all-success interval %+v", iv)
	}
	// Wider at lower n.
	narrow := WilsonInterval(950, 1000, 1.96)
	wide := WilsonInterval(95, 100, 1.96)
	if (narrow.Hi - narrow.Lo) >= (wide.Hi - wide.Lo) {
		t.Errorf("interval did not narrow with n: %+v vs %+v", narrow, wide)
	}
}

func TestMeanStddev(t *testing.T) {
	mean, sd := MeanStddev([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if math.Abs(mean-5) > 1e-12 {
		t.Errorf("mean = %v, want 5", mean)
	}
	if math.Abs(sd-2.13808993529939) > 1e-9 {
		t.Errorf("stddev = %v", sd)
	}
	if m, s := MeanStddev(nil); m != 0 || s != 0 {
		t.Errorf("empty MeanStddev = %v, %v", m, s)
	}
	if m, s := MeanStddev([]float64{3}); m != 3 || s != 0 {
		t.Errorf("single MeanStddev = %v, %v", m, s)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {1, 5}, {0.5, 3}, {0.25, 2}, {0.1, 1.4},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if got := Quantile([]float64{7}, 0.5); got != 7 {
		t.Errorf("Quantile single = %v", got)
	}
}

func TestQuantilePanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("empty", func() { Quantile(nil, 0.5) })
	mustPanic("q>1", func() { Quantile([]float64{1}, 1.5) })
	mustPanic("unsorted", func() { Quantile([]float64{2, 1}, 0.5) })
}
