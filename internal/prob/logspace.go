package prob

import "math"

// LogSumExp returns log(sum_i exp(xs[i])) with the max-shift trick.
// It returns -Inf for an empty slice (the log of an empty sum).
// Entries of -Inf (log of zero mass) are handled transparently.
func LogSumExp(xs []float64) float64 {
	if len(xs) == 0 {
		return math.Inf(-1)
	}
	maxV := math.Inf(-1)
	for _, x := range xs {
		if x > maxV {
			maxV = x
		}
	}
	if math.IsInf(maxV, -1) {
		return maxV // all mass is zero
	}
	if math.IsInf(maxV, 1) {
		return maxV
	}
	var acc Accumulator
	for _, x := range xs {
		acc.Add(math.Exp(x - maxV))
	}
	return maxV + math.Log(acc.Value())
}

// LogAdd returns log(exp(a) + exp(b)) stably.
func LogAdd(a, b float64) float64 {
	if math.IsInf(a, -1) {
		return b
	}
	if math.IsInf(b, -1) {
		return a
	}
	if a < b {
		a, b = b, a
	}
	return a + math.Log1p(math.Exp(b-a))
}

// LogNormalize shifts log-weights in place so that LogSumExp(xs) == 0
// (i.e. the implied linear weights sum to 1) and returns the log of the
// pre-shift total. All -Inf input (zero total mass) leaves xs unchanged and
// returns -Inf.
func LogNormalize(xs []float64) float64 {
	lz := LogSumExp(xs)
	if math.IsInf(lz, -1) {
		return lz
	}
	for i := range xs {
		xs[i] -= lz
	}
	return lz
}

// Log1mExp returns log(1 - exp(x)) for x <= 0, using the standard
// two-branch form that is accurate across the whole domain. It returns NaN
// for x > 0 (probability above one) and -Inf at x == 0.
func Log1mExp(x float64) float64 {
	if x > 0 {
		return math.NaN()
	}
	if x == 0 { //lint:allow floats exact domain boundary: log(1-exp(0)) is -Inf by definition
		return math.Inf(-1)
	}
	const ln2 = 0.6931471805599453
	if x > -ln2 {
		return math.Log(-math.Expm1(x))
	}
	return math.Log1p(-math.Exp(x))
}
