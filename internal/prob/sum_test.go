package prob

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSumEmptyAndSingle(t *testing.T) {
	if got := Sum(nil); got != 0 {
		t.Errorf("Sum(nil) = %v", got)
	}
	if got := Sum([]float64{3.5}); got != 3.5 {
		t.Errorf("Sum single = %v", got)
	}
}

func TestSumCompensation(t *testing.T) {
	// 1 + 1e-16 added 1e4 times: naive float summation loses every addend;
	// compensated summation must keep them.
	xs := make([]float64, 10001)
	xs[0] = 1
	for i := 1; i < len(xs); i++ {
		xs[i] = 1e-16
	}
	got := Sum(xs)
	want := 1 + 1e-12
	if math.Abs(got-want) > 1e-15 {
		t.Fatalf("Sum = %.18f, want %.18f", got, want)
	}
}

func TestSumNeumaierHardCase(t *testing.T) {
	// The case plain Kahan gets wrong: big addend after small running sum.
	xs := []float64{1, 1e100, 1, -1e100}
	if got := Sum(xs); got != 2 {
		t.Fatalf("Sum = %v, want 2", got)
	}
}

func TestAccumulatorMatchesSum(t *testing.T) {
	f := func(xs []float64) bool {
		// Restrict to finite, overflow-safe magnitudes: the intermediate
		// running sum must stay finite for the comparison to be meaningful.
		for i := range xs {
			if math.IsNaN(xs[i]) || math.IsInf(xs[i], 0) || math.Abs(xs[i]) > 1e300 {
				xs[i] = 1
			}
			xs[i] = math.Mod(xs[i], 1e15)
		}
		var acc Accumulator
		for _, x := range xs {
			acc.Add(x)
		}
		a, b := acc.Value(), Sum(xs)
		if a == b {
			return true
		}
		scale := math.Max(math.Abs(a), math.Abs(b))
		return math.Abs(a-b) <= 1e-12*scale
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAccumulatorMerge(t *testing.T) {
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = 1e-16
	}
	xs[0] = 1
	var left, right Accumulator
	for _, x := range xs[:500] {
		left.Add(x)
	}
	for _, x := range xs[500:] {
		right.Add(x)
	}
	left.Merge(right)
	if got, want := left.Value(), Sum(xs); math.Abs(got-want) > 1e-18 {
		t.Fatalf("merged = %.20f, sequential = %.20f", got, want)
	}
}

func TestAccumulatorReset(t *testing.T) {
	var a Accumulator
	a.Add(5)
	a.Reset()
	if a.Value() != 0 {
		t.Fatalf("Value after Reset = %v", a.Value())
	}
}

func TestPairwiseSumMatchesSum(t *testing.T) {
	xs := make([]float64, 4097)
	for i := range xs {
		xs[i] = 1.0 / float64(i+1)
	}
	a, b := PairwiseSum(xs), Sum(xs)
	if math.Abs(a-b) > 1e-12 {
		t.Fatalf("PairwiseSum = %v, Sum = %v", a, b)
	}
}

func TestDot(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{4, 5, 6}
	if got := Dot(a, b); got != 32 {
		t.Fatalf("Dot = %v, want 32", got)
	}
}

func TestDotPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Dot mismatch did not panic")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}

func TestNormalize(t *testing.T) {
	xs := []float64{2, 6, 2}
	total := Normalize(xs)
	if total != 10 {
		t.Fatalf("total = %v", total)
	}
	want := []float64{0.2, 0.6, 0.2}
	for i := range xs {
		if math.Abs(xs[i]-want[i]) > 1e-15 {
			t.Fatalf("normalized[%d] = %v, want %v", i, xs[i], want[i])
		}
	}
}

func TestNormalizeDegenerate(t *testing.T) {
	zero := []float64{0, 0}
	if total := Normalize(zero); total != 0 {
		t.Errorf("total of zeros = %v", total)
	}
	if zero[0] != 0 || zero[1] != 0 {
		t.Error("Normalize mutated a zero vector")
	}
	if total := Normalize(nil); total != 0 {
		t.Errorf("total of nil = %v", total)
	}
}

func TestNormalizeSumsToOne(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, math.Abs(math.Mod(v, 1e100)))
			}
		}
		total := Normalize(xs)
		if total <= 0 || math.IsInf(total, 0) || math.IsNaN(total) {
			return true // degenerate input: vector left untouched by contract
		}
		return math.Abs(Sum(xs)-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
