package prob

import (
	"math"
	"testing"
)

// FuzzLogSumExp checks the log-space reduction invariants that the lattice
// posterior updates lean on: LogSumExp dominates its max term, agrees with
// the naive linear-space sum when that sum cannot overflow, agrees with
// pairwise LogAdd, and is invariant under reordering.
func FuzzLogSumExp(f *testing.F) {
	f.Add(0.0, 0.0, 0.0, 0.0)
	f.Add(-1.5, -2.5, -3.5, -700.0)
	f.Add(math.Inf(-1), math.Inf(-1), math.Inf(-1), math.Inf(-1))
	f.Add(math.Inf(-1), -0.1, -744.44, 0.0)
	f.Add(700.0, 700.0, 700.0, 700.0)
	f.Add(-1e-12, 1e-12, -1e300, 1e300)

	f.Fuzz(func(t *testing.T, a, b, c, d float64) {
		xs := []float64{a, b, c, d}
		maxV := math.Inf(-1)
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 1) {
				return // outside the log-probability domain
			}
			if x > maxV {
				maxV = x
			}
		}

		lse := LogSumExp(xs)
		if math.IsNaN(lse) {
			t.Fatalf("LogSumExp(%v) = NaN", xs)
		}
		// The sum of exp terms dominates its largest term.
		if lse < maxV-1e-12 {
			t.Fatalf("LogSumExp(%v) = %v below max term %v", xs, lse, maxV)
		}
		// With len(xs) terms it is bounded above by max + log(len).
		if lse > maxV+math.Log(float64(len(xs)))+1e-12 {
			t.Fatalf("LogSumExp(%v) = %v above max+log(n) bound", xs, lse)
		}

		// Against the naive sum, where exp neither over- nor underflows.
		naiveOK := true
		sum := 0.0
		for _, x := range xs {
			if x < -700 || x > 700 {
				naiveOK = false
				break
			}
			sum += math.Exp(x)
		}
		if naiveOK && !math.IsInf(sum, 1) && sum > 0 {
			want := math.Log(sum)
			if diff := math.Abs(lse - want); diff > 1e-9*math.Max(1, math.Abs(want)) {
				t.Fatalf("LogSumExp(%v) = %v, naive log-sum = %v (diff %v)", xs, lse, want, diff)
			}
		}

		// Pairwise LogAdd folds to the same total.
		folded := LogAdd(LogAdd(a, b), LogAdd(c, d))
		if delta := math.Abs(lse - folded); !(math.IsInf(lse, -1) && math.IsInf(folded, -1)) && delta > 1e-9*math.Max(1, math.Abs(lse)) {
			t.Fatalf("LogSumExp(%v) = %v but LogAdd fold = %v", xs, lse, folded)
		}

		// Order independence.
		rev := []float64{d, c, b, a}
		lseRev := LogSumExp(rev)
		if !(math.IsInf(lse, -1) && math.IsInf(lseRev, -1)) && math.Abs(lse-lseRev) > 1e-9*math.Max(1, math.Abs(lse)) {
			t.Fatalf("LogSumExp not order-independent: %v vs %v", lse, lseRev)
		}
	})
}
