// Package prob provides the numerical kernels shared by the lattice model:
// compensated and pairwise summation, log-space arithmetic, entropy and
// divergence measures, normalization, and binomial confidence intervals.
//
// The lattice posterior is a vector of up to 2^N nonnegative weights whose
// magnitudes span many orders of magnitude after a few strongly informative
// updates. Naive summation loses the small-mass tail that classification
// thresholds depend on, so every reduction here is either Kahan-compensated
// or pairwise with a compensated base case.
package prob

import "math"

// Sum returns a Kahan–Babuška (Neumaier variant) compensated sum of xs.
// Unlike classic Kahan it also tracks compensation when the addend exceeds
// the running sum, which matters for the spiky mass distributions produced
// by likelihood updates.
func Sum(xs []float64) float64 {
	var sum, comp float64
	for _, x := range xs {
		t := sum + x
		if math.Abs(sum) >= math.Abs(x) {
			comp += (sum - t) + x
		} else {
			comp += (x - t) + sum
		}
		sum = t
	}
	return sum + comp
}

// Accumulator is a streaming Neumaier-compensated summer. The zero value is
// an empty sum ready to use. Engine workers each keep one Accumulator per
// partial reduction so merging partials stays compensated end to end.
type Accumulator struct {
	sum, comp float64
}

// Add folds x into the accumulator.
func (a *Accumulator) Add(x float64) {
	t := a.sum + x
	if math.Abs(a.sum) >= math.Abs(x) {
		a.comp += (a.sum - t) + x
	} else {
		a.comp += (x - t) + a.sum
	}
	a.sum = t
}

// Merge folds another accumulator's state into a. Merging preserves each
// side's compensation term, so tree reductions lose no more accuracy than a
// single sequential pass.
func (a *Accumulator) Merge(b Accumulator) {
	a.Add(b.sum)
	a.Add(b.comp)
}

// Value returns the compensated total.
func (a *Accumulator) Value() float64 { return a.sum + a.comp }

// Reset returns the accumulator to the empty sum.
func (a *Accumulator) Reset() { a.sum, a.comp = 0, 0 }

// PairwiseSum sums xs by recursive halving with a compensated base case.
// It exists as the reference reduction for the deterministic fixed-shape
// reduction trees the engine uses: for a fixed length, the evaluation order
// is a pure function of the data layout.
func PairwiseSum(xs []float64) float64 {
	const base = 128
	if len(xs) <= base {
		return Sum(xs)
	}
	half := len(xs) / 2
	return PairwiseSum(xs[:half]) + PairwiseSum(xs[half:])
}

// Dot returns the compensated dot product of a and b.
// It panics when the lengths differ.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("prob: Dot length mismatch")
	}
	var acc Accumulator
	for i := range a {
		acc.Add(a[i] * b[i])
	}
	return acc.Value()
}

// Normalize scales xs in place so it sums to 1 and returns the pre-scaling
// total. When the total is zero, not finite, or xs is empty, xs is left
// unchanged and the total is returned for the caller to diagnose — a zero
// total after an update means the observed outcome had likelihood zero under
// every lattice state (an impossible observation under the model).
func Normalize(xs []float64) float64 {
	total := Sum(xs)
	if total <= 0 || math.IsInf(total, 0) || math.IsNaN(total) {
		return total
	}
	inv := 1 / total
	for i := range xs {
		xs[i] *= inv
	}
	return total
}
