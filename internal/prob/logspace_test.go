package prob

import (
	"math"
	"testing"
	"testing/quick"
)

func TestLogSumExpBasic(t *testing.T) {
	xs := []float64{math.Log(1), math.Log(2), math.Log(3)}
	if got, want := LogSumExp(xs), math.Log(6); math.Abs(got-want) > 1e-12 {
		t.Fatalf("LogSumExp = %v, want %v", got, want)
	}
}

func TestLogSumExpEmptyAndNegInf(t *testing.T) {
	if got := LogSumExp(nil); !math.IsInf(got, -1) {
		t.Errorf("LogSumExp(nil) = %v, want -Inf", got)
	}
	all := []float64{math.Inf(-1), math.Inf(-1)}
	if got := LogSumExp(all); !math.IsInf(got, -1) {
		t.Errorf("LogSumExp(all -Inf) = %v, want -Inf", got)
	}
	mixed := []float64{math.Inf(-1), 0}
	if got := LogSumExp(mixed); math.Abs(got) > 1e-15 {
		t.Errorf("LogSumExp([-Inf, 0]) = %v, want 0", got)
	}
}

func TestLogSumExpExtremeRange(t *testing.T) {
	// exp(-800) underflows float64 alone, but relative to -800 the sum
	// must still be exact.
	xs := []float64{-800, -800}
	want := -800 + math.Log(2)
	if got := LogSumExp(xs); math.Abs(got-want) > 1e-12 {
		t.Fatalf("LogSumExp = %v, want %v", got, want)
	}
}

func TestLogAdd(t *testing.T) {
	got := LogAdd(math.Log(0.25), math.Log(0.75))
	if math.Abs(got) > 1e-12 {
		t.Fatalf("LogAdd(log .25, log .75) = %v, want 0", got)
	}
	if got := LogAdd(math.Inf(-1), 1.5); got != 1.5 {
		t.Errorf("LogAdd(-Inf, x) = %v", got)
	}
	if got := LogAdd(2.5, math.Inf(-1)); got != 2.5 {
		t.Errorf("LogAdd(x, -Inf) = %v", got)
	}
}

func TestLogAddCommutesAndMatchesLSE(t *testing.T) {
	f := func(a, b float64) bool {
		a = math.Mod(a, 700) // keep exp in range
		b = math.Mod(b, 700)
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		x, y := LogAdd(a, b), LogAdd(b, a)
		if x != y {
			return false
		}
		z := LogSumExp([]float64{a, b})
		return math.Abs(x-z) < 1e-9*math.Max(1, math.Abs(z))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLogNormalize(t *testing.T) {
	xs := []float64{math.Log(2), math.Log(6), math.Log(2)}
	lz := LogNormalize(xs)
	if math.Abs(lz-math.Log(10)) > 1e-12 {
		t.Fatalf("log total = %v, want log 10", lz)
	}
	if got := LogSumExp(xs); math.Abs(got) > 1e-12 {
		t.Fatalf("post-normalize LogSumExp = %v, want 0", got)
	}
}

func TestLogNormalizeAllZeroMass(t *testing.T) {
	xs := []float64{math.Inf(-1), math.Inf(-1)}
	if lz := LogNormalize(xs); !math.IsInf(lz, -1) {
		t.Fatalf("LogNormalize all -Inf = %v", lz)
	}
	if !math.IsInf(xs[0], -1) {
		t.Error("degenerate LogNormalize mutated input")
	}
}

func TestLog1mExp(t *testing.T) {
	cases := []struct{ x float64 }{{-1e-10}, {-0.1}, {-0.5}, {-1}, {-5}, {-50}}
	for _, c := range cases {
		got := Log1mExp(c.x)
		want := math.Log(1 - math.Exp(c.x))
		// For tiny |x| the naive form is itself inaccurate; compare with
		// generous tolerance there and rely on the exact branch checks below.
		tol := 1e-9 * math.Max(1, math.Abs(want))
		if math.Abs(c.x) > 1e-8 && math.Abs(got-want) > tol {
			t.Errorf("Log1mExp(%v) = %v, want %v", c.x, got, want)
		}
		if got >= 0 {
			t.Errorf("Log1mExp(%v) = %v, must be negative", c.x, got)
		}
	}
	if got := Log1mExp(0); !math.IsInf(got, -1) {
		t.Errorf("Log1mExp(0) = %v, want -Inf", got)
	}
	if got := Log1mExp(0.5); !math.IsNaN(got) {
		t.Errorf("Log1mExp(0.5) = %v, want NaN", got)
	}
	// Tiny |x|: 1 - exp(x) ≈ -x, so result ≈ log(-x).
	x := -1e-12
	if got, want := Log1mExp(x), math.Log(1e-12); math.Abs(got-want) > 1e-6 {
		t.Errorf("Log1mExp(%v) = %v, want ~%v", x, got, want)
	}
}
