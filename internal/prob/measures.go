package prob

import "math"

// Entropy returns the Shannon entropy (in nats) of the distribution ps.
// Zero entries contribute zero by the usual 0·log 0 = 0 convention. The
// caller is responsible for ps being normalized; Entropy does not rescale.
func Entropy(ps []float64) float64 {
	var acc Accumulator
	for _, p := range ps {
		if p > 0 {
			acc.Add(-p * math.Log(p))
		}
	}
	return acc.Value()
}

// EntropyBits returns the Shannon entropy in bits. The halving algorithm's
// convergence diagnostics are most readable in bits: an ideal binary split
// removes exactly one bit per test.
func EntropyBits(ps []float64) float64 { return Entropy(ps) / math.Ln2 }

// BernoulliEntropy returns the entropy (nats) of a coin with P(heads)=p.
func BernoulliEntropy(p float64) float64 {
	if p <= 0 || p >= 1 {
		return 0
	}
	return -p*math.Log(p) - (1-p)*math.Log(1-p)
}

// KL returns the Kullback–Leibler divergence KL(p ‖ q) in nats. A point
// where p > 0 but q == 0 yields +Inf, per the definition. Lengths must
// match or KL panics.
func KL(p, q []float64) float64 {
	if len(p) != len(q) {
		panic("prob: KL length mismatch")
	}
	var acc Accumulator
	for i := range p {
		if p[i] == 0 { //lint:allow floats exact-zero support check: 0·log(0/q) is 0 by convention
			continue
		}
		if q[i] == 0 { //lint:allow floats exact-zero support check defines KL = +Inf
			return math.Inf(1)
		}
		acc.Add(p[i] * math.Log(p[i]/q[i]))
	}
	v := acc.Value()
	if v < 0 && v > -1e-12 {
		v = 0 // wash out compensation residue on identical inputs
	}
	return v
}

// TotalVariation returns the total-variation distance between p and q,
// (1/2)·Σ|p_i − q_i|. Lengths must match or it panics.
func TotalVariation(p, q []float64) float64 {
	if len(p) != len(q) {
		panic("prob: TotalVariation length mismatch")
	}
	var acc Accumulator
	for i := range p {
		acc.Add(math.Abs(p[i] - q[i]))
	}
	return acc.Value() / 2
}

// Clamp01 clamps x into [0, 1]. Likelihood models use it to keep
// floating-point drift from producing probabilities epsilon outside range.
func Clamp01(x float64) float64 {
	switch {
	case x < 0:
		return 0
	case x > 1:
		return 1
	default:
		return x
	}
}

// Logistic returns the standard logistic function 1/(1+exp(-x)), computed
// through the numerically symmetric branch form.
func Logistic(x float64) float64 {
	if x >= 0 {
		z := math.Exp(-x)
		return 1 / (1 + z)
	}
	z := math.Exp(x)
	return z / (1 + z)
}
