package serve

import (
	"fmt"
	"net/http"
	"testing"

	"repro/internal/obs"
	"repro/internal/workload"
)

// TestTenantLabelCardinalityBound proves the per-tenant RED series can
// never explode: drive requests from more distinct tenants than the
// bound and the surplus aggregates under the "__other__" label, keeping
// total tenant label values at the bound plus the overflow bucket.
func TestTenantLabelCardinalityBound(t *testing.T) {
	reg := obs.NewRegistry()
	const bound = 4
	_, ts := newTestServer(t,
		ManagerConfig{Obs: reg},
		ServerConfig{Obs: reg, MaxTenantLabels: bound})

	risks := workload.UniformRisks(4, 0.1)
	const tenants = 10
	for i := 0; i < tenants; i++ {
		var created CreateCohortResponse
		code, _ := doJSON(t, "POST", ts.URL+"/v1/cohorts", CreateCohortRequest{
			Tenant: fmt.Sprintf("tenant-%02d", i),
			Risks:  risks,
		}, &created)
		if code != http.StatusCreated {
			t.Fatalf("create %d: status %d", i, code)
		}
	}

	snap := reg.Snapshot()
	values := map[string]uint64{}
	for _, c := range snap.Counters {
		if c.Name != "sbgt_serve_tenant_requests_total" {
			continue
		}
		for _, l := range c.Labels {
			if l.Key == "tenant" {
				values[l.Value] = c.Value
			}
		}
	}
	if len(values) > bound+1 {
		t.Fatalf("tenant label cardinality %d exceeds bound %d (+overflow): %v", len(values), bound, values)
	}
	overflow, ok := values[TenantOverflow]
	if !ok {
		t.Fatalf("no %s series despite %d tenants past the %d bound: %v", TenantOverflow, tenants, bound, values)
	}
	if want := uint64(tenants - bound); overflow != want {
		t.Fatalf("overflow requests = %d, want %d", overflow, want)
	}
	// The in-bound tenants each keep their own series.
	for i := 0; i < bound; i++ {
		name := fmt.Sprintf("tenant-%02d", i)
		if values[name] != 1 {
			t.Fatalf("tenant %s requests = %d, want 1 (%v)", name, values[name], values)
		}
	}

	// The histogram family obeys the same bound.
	histTenants := map[string]bool{}
	for _, h := range snap.Histograms {
		if h.Name != "sbgt_serve_tenant_request_seconds" {
			continue
		}
		for _, l := range h.Labels {
			if l.Key == "tenant" {
				histTenants[l.Value] = true
			}
		}
	}
	if len(histTenants) > bound+1 || !histTenants[TenantOverflow] {
		t.Fatalf("latency family tenants = %v", histTenants)
	}
}

// TestInducedAnomalyExactlyOneDump breaches an impossible p99 objective
// with live traffic and checks the whole forensic chain the tentpole
// promises: exactly one auto-dump fires at breach onset (later
// evaluations coalesce), the dump carries the offending tenant, cohort,
// and trace ID, and that trace ID resolves to a well-formed span tree
// via obs.Assemble. With Degrade set, /readyz turns 503 while burning.
func TestInducedAnomalyExactlyOneDump(t *testing.T) {
	reg := obs.NewRegistry()
	tracer := obs.NewTracer(256)
	flight := obs.NewFlightRecorder(64)
	flight.SetCooldown(0) // isolate the SLO edge-trigger from the recorder cooldown

	slo, err := obs.NewSLO(reg, flight, []obs.Objective{{
		Name:     "p99_request",
		Metric:   "sbgt_serve_request_seconds",
		Quantile: 0.99,
		Target:   1e-9, // one nanosecond: any real request breaches
		Degrade:  true,
	}})
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t,
		ManagerConfig{Obs: reg, Tracer: tracer, Flight: flight},
		ServerConfig{Obs: reg, Tracer: tracer, Flight: flight, SLO: slo})

	slo.Eval() // baseline window

	var created CreateCohortResponse
	code, _ := doJSON(t, "POST", ts.URL+"/v1/cohorts", CreateCohortRequest{
		Tenant: "acme",
		Risks:  workload.UniformRisks(4, 0.1),
	}, &created)
	if code != http.StatusCreated {
		t.Fatalf("create: status %d", code)
	}
	if code, _ := doJSON(t, "GET", ts.URL+"/v1/cohorts/"+created.ID+"/pools", nil, nil); code != http.StatusOK {
		t.Fatalf("pools: status %d", code)
	}

	// Breach onset: the window has traffic, all of it slower than 1ns.
	if st := slo.Eval(); !st[0].Breached {
		t.Fatalf("objective not breached: %+v", st[0])
	}
	// The breach persists across later windows with fresh traffic — still
	// exactly one dump.
	for i := 0; i < 3; i++ {
		doJSON(t, "GET", ts.URL+"/v1/cohorts/"+created.ID, nil, nil)
		slo.Eval()
	}

	dumps := flight.Anomalies()
	if len(dumps) != 1 {
		t.Fatalf("got %d anomaly dumps, want exactly 1", len(dumps))
	}
	dump := dumps[0]
	if dump.Reason != "slo:p99_request" {
		t.Fatalf("dump reason = %q", dump.Reason)
	}

	// The dump must carry an actionable request event: tenant, cohort, and
	// a resolvable trace ID.
	var offender *obs.Event
	for i := range dump.Events {
		ev := &dump.Events[i]
		if ev.Kind == "request" && ev.Tenant == "acme" && ev.Cohort == created.ID && ev.TraceID != 0 {
			offender = ev
			break
		}
	}
	if offender == nil {
		t.Fatalf("dump has no request event for tenant acme cohort %s with a trace ID: %+v", created.ID, dump.Events)
	}

	// Resolve the offending trace through the tracer.
	spans, _ := tracer.Snapshot()
	var found *obs.Trace
	for _, tr := range obs.Assemble(spans) {
		if tr.TraceID == offender.TraceID {
			found = tr
			break
		}
	}
	if found == nil {
		t.Fatalf("trace %016x from the dump not resolvable from the tracer", offender.TraceID)
	}
	if len(found.Roots) == 0 || found.Roots[0].Name != "http" {
		t.Fatalf("assembled trace = %+v, want an http root span", found.Roots)
	}

	// Degrade feeds readiness: /readyz is 503 while the objective burns.
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/readyz = %d during breach, want 503", resp.StatusCode)
	}

	// A quiet window recovers readiness.
	slo.Eval()
	resp, err = http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/readyz = %d after recovery, want 200", resp.StatusCode)
	}
}

// TestFlightShedEvent: shed requests leave a flight event even though no
// handler runs.
func TestFlightShedEvent(t *testing.T) {
	reg := obs.NewRegistry()
	flight := obs.NewFlightRecorder(16)
	s, _ := newTestServer(t,
		ManagerConfig{Obs: reg},
		ServerConfig{Obs: reg, Flight: flight, MaxInflight: 1})

	// Fill the only inflight slot so the next request sheds.
	s.inflight <- struct{}{}
	defer func() { <-s.inflight }()

	req, _ := http.NewRequest("GET", "/v1/cohorts/nope", nil)
	rec := newRecorder()
	s.ServeHTTP(rec, req)
	if rec.status != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", rec.status)
	}
	var shed bool
	for _, ev := range flight.Snapshot().Events {
		if ev.Kind == "shed" {
			shed = true
		}
	}
	if !shed {
		t.Fatal("no shed event recorded")
	}
}

// newRecorder is a minimal ResponseWriter capturing status for direct
// ServeHTTP calls.
type testRecorder struct {
	header http.Header
	status int
	body   []byte
}

func newRecorder() *testRecorder { return &testRecorder{header: http.Header{}, status: http.StatusOK} }

func (r *testRecorder) Header() http.Header { return r.header }
func (r *testRecorder) WriteHeader(c int)   { r.status = c }
func (r *testRecorder) Write(b []byte) (int, error) {
	r.body = append(r.body, b...)
	return len(b), nil
}
