package serve

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/profiler"
	"repro/internal/workload"
)

// TestTenantLabelCardinalityBound proves the per-tenant RED series can
// never explode: drive requests from more distinct tenants than the
// bound and the surplus aggregates under the "__other__" label, keeping
// total tenant label values at the bound plus the overflow bucket.
func TestTenantLabelCardinalityBound(t *testing.T) {
	reg := obs.NewRegistry()
	const bound = 4
	_, ts := newTestServer(t,
		ManagerConfig{Obs: reg},
		ServerConfig{Obs: reg, MaxTenantLabels: bound})

	risks := workload.UniformRisks(4, 0.1)
	const tenants = 10
	for i := 0; i < tenants; i++ {
		var created CreateCohortResponse
		code, _ := doJSON(t, "POST", ts.URL+"/v1/cohorts", CreateCohortRequest{
			Tenant: fmt.Sprintf("tenant-%02d", i),
			Risks:  risks,
		}, &created)
		if code != http.StatusCreated {
			t.Fatalf("create %d: status %d", i, code)
		}
	}

	snap := reg.Snapshot()
	values := map[string]uint64{}
	for _, c := range snap.Counters {
		if c.Name != "sbgt_serve_tenant_requests_total" {
			continue
		}
		for _, l := range c.Labels {
			if l.Key == "tenant" {
				values[l.Value] = c.Value
			}
		}
	}
	if len(values) > bound+1 {
		t.Fatalf("tenant label cardinality %d exceeds bound %d (+overflow): %v", len(values), bound, values)
	}
	overflow, ok := values[TenantOverflow]
	if !ok {
		t.Fatalf("no %s series despite %d tenants past the %d bound: %v", TenantOverflow, tenants, bound, values)
	}
	if want := uint64(tenants - bound); overflow != want {
		t.Fatalf("overflow requests = %d, want %d", overflow, want)
	}
	// The in-bound tenants each keep their own series.
	for i := 0; i < bound; i++ {
		name := fmt.Sprintf("tenant-%02d", i)
		if values[name] != 1 {
			t.Fatalf("tenant %s requests = %d, want 1 (%v)", name, values[name], values)
		}
	}

	// The histogram family obeys the same bound.
	histTenants := map[string]bool{}
	for _, h := range snap.Histograms {
		if h.Name != "sbgt_serve_tenant_request_seconds" {
			continue
		}
		for _, l := range h.Labels {
			if l.Key == "tenant" {
				histTenants[l.Value] = true
			}
		}
	}
	if len(histTenants) > bound+1 || !histTenants[TenantOverflow] {
		t.Fatalf("latency family tenants = %v", histTenants)
	}
}

// TestInducedAnomalyExactlyOneDump breaches an impossible p99 objective
// with live traffic and checks the whole forensic chain the tentpole
// promises: exactly one auto-dump fires at breach onset (later
// evaluations coalesce), the dump carries the offending tenant, cohort,
// and trace ID, and that trace ID resolves to a well-formed span tree
// via obs.Assemble. With Degrade set, /readyz turns 503 while burning.
func TestInducedAnomalyExactlyOneDump(t *testing.T) {
	reg := obs.NewRegistry()
	tracer := obs.NewTracer(256)
	flight := obs.NewFlightRecorder(64)
	flight.SetCooldown(0) // isolate the SLO edge-trigger from the recorder cooldown

	slo, err := obs.NewSLO(reg, flight, []obs.Objective{{
		Name:     "p99_request",
		Metric:   "sbgt_serve_request_seconds",
		Quantile: 0.99,
		Target:   1e-9, // one nanosecond: any real request breaches
		Degrade:  true,
	}})
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t,
		ManagerConfig{Obs: reg, Tracer: tracer, Flight: flight},
		ServerConfig{Obs: reg, Tracer: tracer, Flight: flight, SLO: slo})

	slo.Eval() // baseline window

	var created CreateCohortResponse
	code, _ := doJSON(t, "POST", ts.URL+"/v1/cohorts", CreateCohortRequest{
		Tenant: "acme",
		Risks:  workload.UniformRisks(4, 0.1),
	}, &created)
	if code != http.StatusCreated {
		t.Fatalf("create: status %d", code)
	}
	if code, _ := doJSON(t, "GET", ts.URL+"/v1/cohorts/"+created.ID+"/pools", nil, nil); code != http.StatusOK {
		t.Fatalf("pools: status %d", code)
	}

	// Breach onset: the window has traffic, all of it slower than 1ns.
	if st := slo.Eval(); !st[0].Breached {
		t.Fatalf("objective not breached: %+v", st[0])
	}
	// The breach persists across later windows with fresh traffic — still
	// exactly one dump.
	for i := 0; i < 3; i++ {
		doJSON(t, "GET", ts.URL+"/v1/cohorts/"+created.ID, nil, nil)
		slo.Eval()
	}

	dumps := flight.Anomalies()
	if len(dumps) != 1 {
		t.Fatalf("got %d anomaly dumps, want exactly 1", len(dumps))
	}
	dump := dumps[0]
	if dump.Reason != "slo:p99_request" {
		t.Fatalf("dump reason = %q", dump.Reason)
	}

	// The dump must carry an actionable request event: tenant, cohort, and
	// a resolvable trace ID.
	var offender *obs.Event
	for i := range dump.Events {
		ev := &dump.Events[i]
		if ev.Kind == "request" && ev.Tenant == "acme" && ev.Cohort == created.ID && ev.TraceID != 0 {
			offender = ev
			break
		}
	}
	if offender == nil {
		t.Fatalf("dump has no request event for tenant acme cohort %s with a trace ID: %+v", created.ID, dump.Events)
	}

	// Resolve the offending trace through the tracer.
	spans, _ := tracer.Snapshot()
	var found *obs.Trace
	for _, tr := range obs.Assemble(spans) {
		if tr.TraceID == offender.TraceID {
			found = tr
			break
		}
	}
	if found == nil {
		t.Fatalf("trace %016x from the dump not resolvable from the tracer", offender.TraceID)
	}
	if len(found.Roots) == 0 || found.Roots[0].Name != "http" {
		t.Fatalf("assembled trace = %+v, want an http root span", found.Roots)
	}

	// Degrade feeds readiness: /readyz is 503 while the objective burns.
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/readyz = %d during breach, want 503", resp.StatusCode)
	}

	// A quiet window recovers readiness.
	slo.Eval()
	resp, err = http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/readyz = %d after recovery, want 200", resp.StatusCode)
	}
}

// TestForensicChainBreachToFlameDiff is the PR's acceptance test: one
// induced SLO breach yields exactly one anomaly ID, and from that single
// ID an operator can pull — over HTTP, from the same listener that took
// the traffic — the flight dump, the offending request's assembled
// trace, AND a frozen profile bundle (CPU + goroutine) stamped with the
// same anomaly ID, then flame-diff it against a quiet baseline with a
// stable result.
func TestForensicChainBreachToFlameDiff(t *testing.T) {
	reg := obs.NewRegistry()
	tracer := obs.NewTracer(256)
	flight := obs.NewFlightRecorder(64)
	flight.SetCooldown(0)

	prof, err := profiler.New(profiler.Config{
		Dir:       t.TempDir(),
		CPUWindow: 30 * time.Millisecond,
		Cooldown:  -1,
		Reg:       reg,
		Flight:    flight,
	})
	if err != nil {
		t.Fatal(err)
	}
	prof.Start()
	defer prof.Close()

	slo, err := obs.NewSLO(reg, flight, []obs.Objective{{
		Name:     "p99_request",
		Metric:   "sbgt_serve_request_seconds",
		Quantile: 0.99,
		Target:   1e-9,
	}})
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t,
		ManagerConfig{Obs: reg, Tracer: tracer, Flight: flight},
		ServerConfig{Obs: reg, Tracer: tracer, Flight: flight, SLO: slo, Profiles: prof.Handler()})

	// Freeze the quiet baseline before any traffic misbehaves — the
	// "last known good" side of the flame diff.
	baseline, err := prof.CaptureNow("quiet-baseline")
	if err != nil {
		t.Fatal(err)
	}

	slo.Eval() // baseline window

	var created CreateCohortResponse
	code, _ := doJSON(t, "POST", ts.URL+"/v1/cohorts", CreateCohortRequest{
		Tenant: "acme",
		Risks:  workload.UniformRisks(4, 0.1),
	}, &created)
	if code != http.StatusCreated {
		t.Fatalf("create: status %d", code)
	}
	if code, _ := doJSON(t, "GET", ts.URL+"/v1/cohorts/"+created.ID+"/pools", nil, nil); code != http.StatusOK {
		t.Fatalf("pools: status %d", code)
	}
	if st := slo.Eval(); !st[0].Breached {
		t.Fatalf("objective not breached: %+v", st[0])
	}

	dumps := flight.Anomalies()
	if len(dumps) != 1 {
		t.Fatalf("got %d anomaly dumps, want exactly 1", len(dumps))
	}
	dump := dumps[0]
	if dump.ID == "" {
		t.Fatal("anomaly dump has no ID")
	}

	// The profiler captures asynchronously off the dump hook; poll the
	// public /debug/profiles index — served by the API listener itself —
	// until the bundle stamped with the dump's anomaly ID appears.
	var bundle *profiler.BundleMeta
	for deadline := time.Now().Add(10 * time.Second); time.Now().Before(deadline); {
		var idx profiler.IndexDoc
		if code, _ := doJSON(t, "GET", ts.URL+"/debug/profiles/", nil, &idx); code == http.StatusOK {
			for i := range idx.Bundles {
				if idx.Bundles[i].AnomalyID == dump.ID {
					bundle = &idx.Bundles[i]
					break
				}
			}
		}
		if bundle != nil {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if bundle == nil {
		t.Fatalf("no profile bundle stamped with anomaly %s on /debug/profiles", dump.ID)
	}
	if bundle.Class != profiler.ClassAnomaly {
		t.Errorf("bundle class = %q, want %q", bundle.Class, profiler.ClassAnomaly)
	}
	if bundle.Reason != "slo:p99_request" {
		t.Errorf("bundle reason = %q", bundle.Reason)
	}
	if bundle.Tenant != "acme" {
		t.Errorf("bundle tenant = %q, want the offending tenant", bundle.Tenant)
	}
	if bundle.TraceID == 0 {
		t.Error("bundle carries no trace ID")
	}
	if bundle.CPUError != "" {
		t.Errorf("CPU window failed: %s", bundle.CPUError)
	}

	// The bundle's trace ID resolves through the tracer to a span tree —
	// the same pivot the flight dump offers, now reachable from the
	// profile side too.
	spans, _ := tracer.Snapshot()
	var found *obs.Trace
	for _, tr := range obs.Assemble(spans) {
		if tr.TraceID == bundle.TraceID {
			found = tr
			break
		}
	}
	if found == nil {
		t.Fatalf("trace %016x from the bundle not resolvable from the tracer", bundle.TraceID)
	}

	// Pull the profiles over HTTP like a remote operator would and check
	// they are real pprof documents.
	fetch := func(name string) *profiler.Profile {
		t.Helper()
		resp, err := http.Get(ts.URL + "/debug/profiles/" + bundle.ID + "/" + name)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", name, resp.StatusCode)
		}
		raw, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		p, err := profiler.ParseProfile(bytes.NewReader(raw))
		if err != nil {
			t.Fatalf("parse %s: %v", name, err)
		}
		return p
	}
	goro := fetch(profiler.GoroutineProfile)
	goroTable, err := goro.Table("")
	if err != nil {
		t.Fatal(err)
	}
	if goroTable.Total == 0 || len(goroTable.Funcs) == 0 {
		t.Fatalf("goroutine profile is empty: %+v", goroTable)
	}
	fetch(profiler.CPUProfile) // parseable even when the window saw no samples

	// Flame diff, anomaly vs quiet baseline. The diff must be well-formed
	// on live data, and self-diff must be clean — the stable-exit-code
	// contract sbgt-profdiff builds on.
	basep, err := profiler.ParseProfileFile(
		filepath.Join(prof.Dir(), baseline.ID, profiler.GoroutineProfile))
	if err != nil {
		t.Fatal(err)
	}
	baseTable, err := basep.Table("")
	if err != nil {
		t.Fatal(err)
	}
	res := profiler.Diff(baseTable, goroTable, profiler.DiffOptions{})
	if res.SampleType != goroTable.SampleType {
		t.Errorf("diff sample type = %q, want %q", res.SampleType, goroTable.SampleType)
	}
	if self := profiler.Diff(goroTable, goroTable, profiler.DiffOptions{}); self.Regressions != 0 {
		t.Fatalf("self-diff reports %d regressions, want 0: %+v", self.Regressions, self.Deltas)
	}
}

// TestFlightShedEvent: shed requests leave a flight event even though no
// handler runs.
func TestFlightShedEvent(t *testing.T) {
	reg := obs.NewRegistry()
	flight := obs.NewFlightRecorder(16)
	s, _ := newTestServer(t,
		ManagerConfig{Obs: reg},
		ServerConfig{Obs: reg, Flight: flight, MaxInflight: 1})

	// Fill the only inflight slot so the next request sheds.
	s.inflight <- struct{}{}
	defer func() { <-s.inflight }()

	req, _ := http.NewRequest("GET", "/v1/cohorts/nope", nil)
	rec := newRecorder()
	s.ServeHTTP(rec, req)
	if rec.status != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", rec.status)
	}
	var shed bool
	for _, ev := range flight.Snapshot().Events {
		if ev.Kind == "shed" {
			shed = true
		}
	}
	if !shed {
		t.Fatal("no shed event recorded")
	}
}

// newRecorder is a minimal ResponseWriter capturing status for direct
// ServeHTTP calls.
type testRecorder struct {
	header http.Header
	status int
	body   []byte
}

func newRecorder() *testRecorder { return &testRecorder{header: http.Header{}, status: http.StatusOK} }

func (r *testRecorder) Header() http.Header { return r.header }
func (r *testRecorder) WriteHeader(c int)   { r.status = c }
func (r *testRecorder) Write(b []byte) (int, error) {
	r.body = append(r.body, b...)
	return len(b), nil
}
