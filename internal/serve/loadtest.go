package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/bitvec"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/workload"
)

// LoadConfig sizes a load run against a live sbgt-serve instance.
type LoadConfig struct {
	// Target is the server base URL, e.g. "http://127.0.0.1:8344".
	Target string
	// Cohorts is how many concurrent campaigns to run.
	Cohorts int
	// Subjects per cohort and their uniform prior risk.
	Subjects int
	Risk     float64
	// Workers bounds client-side concurrency. Zero means 64.
	Workers int
	// Seed makes the simulated populations and lab noise reproducible.
	Seed uint64
	// Client overrides the HTTP client (nil = http.DefaultClient with a
	// 30s timeout).
	Client *http.Client
	Log    *slog.Logger
}

// LoadReport is what a load run measured.
type LoadReport struct {
	Cohorts       int           `json:"cohorts"`
	Requests      int           `json:"requests"`
	ResultsSent   int           `json:"results_sent"`
	TestsServer   int           `json:"tests_server"`
	Misclassified int           `json:"misclassified"`
	Elapsed       time.Duration `json:"elapsed_ns"`
	P50           time.Duration `json:"p50_ns"`
	P99           time.Duration `json:"p99_ns"`
}

// Throughput returns requests per second over the whole run.
func (r *LoadReport) Throughput() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Requests) / r.Elapsed.Seconds()
}

// loadClient drives one cohort against the server and samples every
// request's latency.
type loadClient struct {
	base   string
	client *http.Client

	mu       sync.Mutex
	samples  []time.Duration
	requests int
}

func (lc *loadClient) do(method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		b, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, lc.base+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	start := time.Now()
	resp, err := lc.client.Do(req)
	elapsed := time.Since(start)
	if err != nil {
		return err
	}
	defer resp.Body.Close()

	lc.mu.Lock()
	lc.samples = append(lc.samples, elapsed)
	lc.requests++
	lc.mu.Unlock()

	if resp.StatusCode == http.StatusTooManyRequests {
		// Honor the server's backpressure and retry once the window
		// passes — load generators that ignore Retry-After measure their
		// own retry storm, not the server.
		delay := RetryAfter(resp.Header)
		if delay == 0 {
			delay = time.Second
		}
		io.Copy(io.Discard, resp.Body) //lint:allow errcheck draining a body we are about to retry past
		time.Sleep(delay)
		return lc.do(method, path, in, out)
	}
	if resp.StatusCode >= 300 {
		var e ErrorResponse
		json.NewDecoder(resp.Body).Decode(&e) //lint:allow errcheck error body is best-effort context on an already-failed request
		return fmt.Errorf("%s %s: status %d: %s", method, path, resp.StatusCode, e.Error)
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return fmt.Errorf("%s %s: decode: %w", method, path, err)
		}
	}
	return nil
}

// RunLoad drives cfg.Cohorts concurrent campaigns against a live server
// and reports exact (not sketched) latency percentiles. Every cohort is
// created before any is driven, so the server holds the full population
// at once — residency bounds and eviction are exercised, not bypassed.
// The oracle uses the Ideal response, so every classification is checked
// against the drawn ground truth, and the server's test counters are
// reconciled against the client's sent-result count: a lost or
// double-absorbed result shows up as a mismatch.
func RunLoad(cfg LoadConfig) (*LoadReport, error) {
	if cfg.Cohorts <= 0 || cfg.Subjects <= 0 || cfg.Subjects > bitvec.MaxSubjects {
		return nil, fmt.Errorf("serve: bad load config: %d cohorts of %d subjects", cfg.Cohorts, cfg.Subjects)
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 64
	}
	if cfg.Risk <= 0 || cfg.Risk >= 1 {
		cfg.Risk = 0.05
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{Timeout: 30 * time.Second}
	}
	log := obs.OrNop(cfg.Log)
	lc := &loadClient{base: cfg.Target, client: cfg.Client}
	risks := workload.UniformRisks(cfg.Subjects, cfg.Risk)

	type campaign struct {
		id    string
		truth bitvec.Mask
		sent  int
	}
	campaigns := make([]campaign, cfg.Cohorts)
	start := time.Now()

	// Phase 1: create every cohort so the whole population is live on the
	// server before any campaign advances.
	var wg sync.WaitGroup
	errs := make(chan error, cfg.Cohorts)
	sem := make(chan struct{}, cfg.Workers)
	for i := range campaigns {
		wg.Add(1)
		sem <- struct{}{}
		//lint:allow concurrency load workers simulate independent HTTP clients, not lattice work; engine.Pool is the wrong substrate
		go func(i int) { //lint:allow goroutineleak errs is buffered to cfg.Cohorts and each worker sends at most once
			defer wg.Done()
			defer func() { <-sem }()
			var out CreateCohortResponse
			err := lc.do("POST", "/v1/cohorts", CreateCohortRequest{
				Tenant:   fmt.Sprintf("t%02d", i%16),
				Risks:    risks,
				Response: ResponseSpec{Kind: "ideal"},
			}, &out)
			if err != nil {
				errs <- fmt.Errorf("create cohort %d: %w", i, err)
				return
			}
			campaigns[i].id = out.ID
			campaigns[i].truth = workload.Draw(risks, rng.New(cfg.Seed+uint64(i))).Truth
		}(i)
	}
	wg.Wait()
	select {
	case err := <-errs:
		return nil, err
	default:
	}
	log.Info("loadtest: cohorts created", "cohorts", cfg.Cohorts, "elapsed", time.Since(start))

	// Phase 2: drive every campaign to completion through the pools /
	// results loop.
	for i := range campaigns {
		wg.Add(1)
		sem <- struct{}{}
		//lint:allow concurrency load workers simulate independent HTTP clients, not lattice work; engine.Pool is the wrong substrate
		go func(c *campaign) { //lint:allow goroutineleak errs is buffered to cfg.Cohorts and each worker sends at most once
			defer wg.Done()
			defer func() { <-sem }()
			var pools PoolsResponse
			if err := lc.do("GET", "/v1/cohorts/"+c.id+"/pools", nil, &pools); err != nil {
				errs <- err
				return
			}
			for !pools.Done {
				req := SubmitResultsRequest{Results: make([]ResultJSON, len(pools.Pools))}
				for j, p := range pools.Pools {
					positive := c.truth.IntersectCount(bitvec.FromIndices(p.Subjects...)) > 0
					req.Results[j] = ResultJSON{Stage: p.Stage, Index: p.Index, Positive: positive}
				}
				c.sent += len(req.Results)
				pools = PoolsResponse{}
				if err := lc.do("POST", "/v1/cohorts/"+c.id+"/results", req, &pools); err != nil {
					errs <- err
					return
				}
			}
		}(&campaigns[i])
	}
	wg.Wait()
	select {
	case err := <-errs:
		return nil, err
	default:
	}

	// Phase 3: reconcile. The server's per-cohort test counter must equal
	// the client's sent-result count (zero lost, zero double-absorbed),
	// and with the Ideal response every classification must match truth.
	report := &LoadReport{Cohorts: cfg.Cohorts}
	for i := range campaigns {
		wg.Add(1)
		sem <- struct{}{}
		//lint:allow concurrency load workers simulate independent HTTP clients, not lattice work; engine.Pool is the wrong substrate
		go func(c *campaign) { //lint:allow goroutineleak errs is buffered to cfg.Cohorts and each worker sends at most once
			defer wg.Done()
			defer func() { <-sem }()
			var st StatusResponse
			if err := lc.do("GET", "/v1/cohorts/"+c.id, nil, &st); err != nil {
				errs <- err
				return
			}
			if !st.Done {
				errs <- fmt.Errorf("cohort %s not done after drive", c.id)
				return
			}
			if st.Tests != c.sent {
				errs <- fmt.Errorf("cohort %s: server absorbed %d tests, client sent %d", c.id, st.Tests, c.sent)
				return
			}
			mis := 0
			for _, cl := range st.Classifications {
				want := "negative"
				if c.truth.Has(cl.Subject) {
					want = "positive"
				}
				if cl.Status != want {
					mis++
				}
			}
			lc.mu.Lock()
			report.ResultsSent += c.sent
			report.TestsServer += st.Tests
			report.Misclassified += mis
			lc.mu.Unlock()
		}(&campaigns[i])
	}
	wg.Wait()
	select {
	case err := <-errs:
		return nil, err
	default:
	}

	report.Elapsed = time.Since(start)
	lc.mu.Lock()
	report.Requests = lc.requests
	samples := lc.samples
	lc.mu.Unlock()
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	report.P50 = percentile(samples, 0.50)
	report.P99 = percentile(samples, 0.99)
	log.Info("loadtest: complete",
		"cohorts", report.Cohorts, "requests", report.Requests,
		"p50", report.P50, "p99", report.P99,
		"misclassified", report.Misclassified, "elapsed", report.Elapsed)
	return report, nil
}

// percentile returns the exact q-quantile of sorted samples (nearest
// rank); load runs keep every sample, so no sketch error bars apply.
func percentile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}
