// Package serve hosts long-lived surveillance campaigns behind an
// HTTP/JSON API.
//
// Every other entry point in this repository is a one-shot process: it
// builds a session, drives it to completion through a callback, and
// exits. Real surveillance is the opposite shape — lab round-trips take
// hours, results arrive out of band, and one deployment watches
// thousands of cohorts at once. This package inverts the loop using the
// core propose/absorb state machine: a client asks for the next pools,
// runs the physical tests on its own clock, and posts the outcomes back,
// while the session manager keeps only the hottest posteriors resident
// and checkpoints the rest to disk.
//
// The wire format is deliberately plain JSON over plain HTTP: lab
// information systems integrate over decades, not release cycles.
package serve

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/dilution"
)

// ResponseSpec selects a dilution response model on the wire. Kind is
// one of "ideal", "binary", "hyperbolic"; the numeric fields apply per
// kind (binary: sens/spec, hyperbolic: max_sens/spec/d).
type ResponseSpec struct {
	Kind    string  `json:"kind"`
	Sens    float64 `json:"sens,omitempty"`
	Spec    float64 `json:"spec,omitempty"`
	MaxSens float64 `json:"max_sens,omitempty"`
	D       float64 `json:"d,omitempty"`
}

// Response materializes the spec into a dilution model.
func (r ResponseSpec) Response() (dilution.Response, error) {
	switch r.Kind {
	case "", "ideal":
		return dilution.Ideal{}, nil
	case "binary":
		return dilution.Binary{Sens: r.Sens, Spec: r.Spec}, nil
	case "hyperbolic":
		return dilution.Hyperbolic{MaxSens: r.MaxSens, Spec: r.Spec, D: r.D}, nil
	default:
		return nil, fmt.Errorf("serve: unknown response kind %q", r.Kind)
	}
}

// CreateCohortRequest opens a new campaign. Risks carries the per-subject
// prior infection probabilities (its length is the cohort size); the
// remaining knobs mirror core.Config and are optional.
type CreateCohortRequest struct {
	Tenant       string       `json:"tenant"`
	Risks        []float64    `json:"risks"`
	Response     ResponseSpec `json:"response"`
	Lookahead    int          `json:"lookahead,omitempty"`
	PosThreshold float64      `json:"pos_threshold,omitempty"`
	NegThreshold float64      `json:"neg_threshold,omitempty"`
	MaxStages    int          `json:"max_stages,omitempty"`
}

// CreateCohortResponse returns the server-assigned cohort ID.
type CreateCohortResponse struct {
	ID string `json:"id"`
}

// PoolJSON is one proposed pool: pipette together the listed subjects
// and test the pool once. (Stage, Index) identifies the proposal slot a
// result must answer.
type PoolJSON struct {
	Stage    int   `json:"stage"`
	Index    int   `json:"index"`
	Subjects []int `json:"subjects"`
}

// PoolsResponse is the next batch of lab work for a cohort. Done means
// the campaign is complete and Pools is empty — fetch the status for the
// classifications.
type PoolsResponse struct {
	ID    string     `json:"id"`
	Done  bool       `json:"done"`
	Stage int        `json:"stage"`
	Pools []PoolJSON `json:"pools"`
}

// ResultJSON reports one pool's lab outcome back to its proposal slot.
type ResultJSON struct {
	Stage     int     `json:"stage"`
	Index     int     `json:"index"`
	Positive  bool    `json:"positive"`
	Ct        float64 `json:"ct,omitempty"`
	ElapsedMS int64   `json:"elapsed_ms,omitempty"`
}

// SubmitResultsRequest posts a full stage of outcomes. The batch must
// answer the outstanding proposal exactly — every (stage, index) once.
type SubmitResultsRequest struct {
	Results []ResultJSON `json:"results"`
}

// ClassificationJSON is one subject's call.
type ClassificationJSON struct {
	Subject  int     `json:"subject"`
	Status   string  `json:"status"` // "unknown" | "negative" | "positive"
	Marginal float64 `json:"marginal"`
	Stage    int     `json:"stage"`
	Forced   bool    `json:"forced,omitempty"`
}

// StatusResponse is a cohort's current state.
type StatusResponse struct {
	ID              string               `json:"id"`
	Tenant          string               `json:"tenant,omitempty"`
	Done            bool                 `json:"done"`
	Stage           int                  `json:"stage"`
	Tests           int                  `json:"tests"`
	Remaining       int                  `json:"remaining"`
	Classifications []ClassificationJSON `json:"classifications"`
}

// ErrorResponse is the body of every non-2xx reply.
type ErrorResponse struct {
	Error string `json:"error"`
}

// DrainResponse acknowledges a drain request.
type DrainResponse struct {
	Draining     bool `json:"draining"`
	Checkpointed int  `json:"checkpointed"`
}

func poolsJSON(pools []core.Pool) []PoolJSON {
	out := make([]PoolJSON, len(pools))
	for i, p := range pools {
		out[i] = PoolJSON{Stage: p.Stage, Index: p.Index, Subjects: p.Pool.Indices()}
	}
	return out
}

func resultsFromJSON(in []ResultJSON) []core.TestResult {
	out := make([]core.TestResult, len(in))
	for i, r := range in {
		out[i] = core.TestResult{
			Stage:   r.Stage,
			Index:   r.Index,
			Outcome: dilution.Outcome{Positive: r.Positive, Ct: r.Ct},
			Elapsed: time.Duration(r.ElapsedMS) * time.Millisecond,
		}
	}
	return out
}

func classificationsJSON(calls []core.Classification) []ClassificationJSON {
	out := make([]ClassificationJSON, len(calls))
	for i, c := range calls {
		out[i] = ClassificationJSON{
			Subject:  c.Subject,
			Status:   statusString(c.Status),
			Marginal: c.Marginal,
			Stage:    c.Stage,
			Forced:   c.Forced,
		}
	}
	return out
}

func statusString(s core.Status) string {
	switch s {
	case core.StatusPositive:
		return "positive"
	case core.StatusNegative:
		return "negative"
	default:
		return "unknown"
	}
}
