package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
)

// maxBodyBytes bounds a request body: the largest legitimate payload is
// a cohort's worth of risks or one stage of results, both tiny.
const maxBodyBytes = 1 << 20

// latencyBounds are the request-latency histogram buckets (seconds),
// tuned for loopback-to-LAN service times.
var latencyBounds = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5,
}

// DefaultTenantLabels bounds how many distinct tenant label values the
// per-tenant RED metrics may create; tenants past the bound aggregate
// under the "__other__" label, so a tenant-ID churn (or an abusive
// client minting tenants) can never blow up series cardinality.
const DefaultTenantLabels = 32

// TenantOverflow is the label value requests from beyond-the-bound
// tenants aggregate under.
const TenantOverflow = "__other__"

// ServerConfig wires a Server.
type ServerConfig struct {
	Manager *Manager
	// MaxInflight bounds concurrently-served API requests; excess load is
	// shed with 429 + Retry-After instead of queueing without bound. Zero
	// means 512.
	MaxInflight int
	// MaxTenantLabels bounds the distinct tenant values in per-tenant RED
	// series (zero means DefaultTenantLabels); overflow aggregates under
	// TenantOverflow.
	MaxTenantLabels int
	Obs             *obs.Registry
	Tracer          *obs.Tracer
	Log             *slog.Logger
	// Flight, when non-nil, records request summaries and sheds (the
	// manager records lifecycle events through its own config).
	Flight *obs.FlightRecorder
	// SLO, when non-nil, joins the /readyz chain: a breached Degrade
	// objective turns readiness 503 so the load balancer backs off while
	// the error budget burns.
	SLO *obs.SLO
	// Profiles, when non-nil, serves the continuous profiler's bundle
	// store on /debug/profiles — the same listener that serves the API,
	// so one anomaly ID resolves to flight dump and profile bundle from
	// one address.
	Profiles http.Handler
}

// Server is the sbgt-serve HTTP API:
//
//	POST   /v1/cohorts              create a cohort
//	GET    /v1/cohorts/{id}/pools   next lab work (propose; idempotent)
//	POST   /v1/cohorts/{id}/results submit one stage of outcomes
//	GET    /v1/cohorts/{id}         status + classifications
//	DELETE /v1/cohorts/{id}         close and forget a cohort
//	POST   /v1/drain                checkpoint everything, stop admitting
//
// plus the observability endpoints from obs.NewMux (/metrics,
// /metrics.json, /healthz, /readyz, /spans, /debug/pprof/*). Readiness
// follows the manager: /readyz turns 503 the moment a drain starts.
type Server struct {
	mgr      *Manager
	mux      *http.ServeMux
	log      *slog.Logger
	tracer   *obs.Tracer
	flight   *obs.FlightRecorder
	inflight chan struct{}

	mRequests *obs.Counter
	mShed     *obs.Counter
	mLatency  *obs.Histogram

	// Per-tenant RED series, bounded at maxTenants distinct labels with
	// overflow under TenantOverflow. reg is kept so new tenants register
	// their handles lazily on first request.
	reg        *obs.Registry
	maxTenants int
	tenantMu   sync.Mutex
	tenants    map[string]*tenantMetrics
}

// tenantMetrics is one tenant's RED handle set.
type tenantMetrics struct {
	requests *obs.Counter
	errors   *obs.Counter
	latency  *obs.Histogram
}

// tenant returns the metrics handles for one tenant label, registering
// them on first use and aggregating under TenantOverflow once the bound
// is hit. Returns nil when no registry is wired.
func (s *Server) tenant(name string) *tenantMetrics {
	if s.reg == nil {
		return nil
	}
	if name == "" {
		name = "default"
	}
	s.tenantMu.Lock()
	defer s.tenantMu.Unlock()
	if tm, ok := s.tenants[name]; ok {
		return tm
	}
	if len(s.tenants) >= s.maxTenants {
		name = TenantOverflow
		if tm, ok := s.tenants[name]; ok {
			return tm
		}
	}
	l := obs.L("tenant", name)
	tm := &tenantMetrics{
		requests: s.reg.Counter("sbgt_serve_tenant_requests_total", l),
		errors:   s.reg.Counter("sbgt_serve_tenant_errors_total", l),
		latency:  s.reg.Histogram("sbgt_serve_tenant_request_seconds", latencyBounds, l),
	}
	s.tenants[name] = tm
	return tm
}

// NewServer builds the API handler around a manager.
func NewServer(cfg ServerConfig) *Server {
	if cfg.MaxInflight <= 0 {
		cfg.MaxInflight = 512
	}
	if cfg.MaxTenantLabels <= 0 {
		cfg.MaxTenantLabels = DefaultTenantLabels
	}
	ready := []func() error{cfg.Manager.Ready}
	if cfg.SLO != nil {
		ready = append(ready, cfg.SLO.Ready)
	}
	s := &Server{
		mgr: cfg.Manager,
		mux: obs.NewMuxConfig(obs.MuxConfig{
			Reg: cfg.Obs, Tracer: cfg.Tracer, Flight: cfg.Flight,
			Profiles: cfg.Profiles, Ready: ready,
		}),
		log:        obs.OrNop(cfg.Log),
		tracer:     cfg.Tracer,
		flight:     cfg.Flight,
		inflight:   make(chan struct{}, cfg.MaxInflight),
		reg:        cfg.Obs,
		maxTenants: cfg.MaxTenantLabels,
		tenants:    make(map[string]*tenantMetrics),
	}
	if reg := cfg.Obs; reg != nil {
		s.mRequests = reg.Counter("sbgt_serve_requests_total")
		s.mShed = reg.Counter("sbgt_serve_requests_shed_total")
		s.mLatency = reg.Histogram("sbgt_serve_request_seconds", latencyBounds)
	}
	s.mux.HandleFunc("POST /v1/cohorts", s.guard(s.handleCreate))
	s.mux.HandleFunc("GET /v1/cohorts/{id}/pools", s.guard(s.handlePools))
	s.mux.HandleFunc("POST /v1/cohorts/{id}/results", s.guard(s.handleResults))
	s.mux.HandleFunc("GET /v1/cohorts/{id}", s.guard(s.handleStatus))
	s.mux.HandleFunc("DELETE /v1/cohorts/{id}", s.guard(s.handleDelete))
	s.mux.HandleFunc("POST /v1/drain", s.guard(s.handleDrain))
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	s.mux.ServeHTTP(w, req)
}

// reqInfo threads per-request identity from handler to guard: which
// tenant and cohort the request touched (set by the handler once it
// knows) plus the response status, captured by the statusRecorder.
type reqInfo struct {
	tenant string
	cohort string
	status int
}

// bind resolves the cohort's tenant and stamps both identities — the
// one-liner every {id}-routed handler opens with.
func (ri *reqInfo) bind(s *Server, cohortID string) {
	ri.cohort = cohortID
	ri.tenant = s.mgr.Tenant(cohortID)
}

// statusRecorder captures the response status for metrics and events.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

// guard wraps an API handler with backpressure, metrics (aggregate and
// per-tenant RED with exemplars), flight-recorder events, and a
// per-request span.
func (s *Server) guard(h func(http.ResponseWriter, *http.Request, *reqInfo) error) http.HandlerFunc {
	return func(w http.ResponseWriter, req *http.Request) {
		select {
		case s.inflight <- struct{}{}:
			defer func() { <-s.inflight }()
		default:
			inc(s.mShed)
			s.flight.Record(obs.Event{
				Kind:  "shed",
				Attrs: []obs.Attr{obs.A("method", req.Method), obs.A("path", req.URL.Path)},
			})
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusTooManyRequests, errors.New("serve: too many in-flight requests"))
			return
		}
		inc(s.mRequests)
		start := time.Now()
		var span *obs.Span
		var traceID uint64
		if s.tracer != nil {
			span = s.tracer.Start("http", obs.A("method", req.Method), obs.A("path", req.URL.Path))
			traceID = span.Context().TraceID
		}
		ri := &reqInfo{status: http.StatusOK}
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		err := h(rec, req, ri)
		ri.status = rec.status
		if span != nil {
			if err != nil {
				span.SetAttr("err", err.Error())
			}
			span.End()
		}
		elapsed := time.Since(start).Seconds()
		if s.mLatency != nil {
			s.mLatency.ObserveExemplar(elapsed, traceID)
		}
		if tm := s.tenant(ri.tenant); tm != nil {
			tm.requests.Inc()
			tm.latency.ObserveExemplar(elapsed, traceID)
			if ri.status >= http.StatusInternalServerError {
				tm.errors.Inc()
			}
		}
		ev := obs.Event{
			Kind:    "request",
			Tenant:  ri.tenant,
			Cohort:  ri.cohort,
			TraceID: traceID,
			Dur:     time.Since(start),
			Attrs: []obs.Attr{
				obs.A("method", req.Method), obs.A("path", req.URL.Path), obs.A("status", ri.status),
			},
		}
		if err != nil {
			ev.Err = err.Error()
			s.log.Debug("serve: request failed", "method", req.Method, "path", req.URL.Path, "err", err)
		}
		s.flight.Record(ev)
	}
}

// writeError emits the uniform JSON error body. Write errors are
// swallowed: the client hung up and there is no one left to tell.
func writeError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(ErrorResponse{Error: err.Error()}) //lint:allow errcheck client disconnect mid-error-write leaves nothing to recover
}

func writeJSON(w http.ResponseWriter, status int, v any) error {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	return json.NewEncoder(w).Encode(v)
}

// fail maps a manager/core error onto an HTTP status.
func fail(w http.ResponseWriter, err error) error {
	status := http.StatusBadRequest
	switch {
	case errors.Is(err, ErrNotFound):
		status = http.StatusNotFound
	case errors.Is(err, ErrDraining):
		w.Header().Set("Retry-After", "5")
		status = http.StatusServiceUnavailable
	case errors.Is(err, ErrBusy), errors.Is(err, ErrTenantLimit):
		w.Header().Set("Retry-After", "1")
		status = http.StatusTooManyRequests
	case errors.Is(err, core.ErrNoProposal):
		// A duplicate or premature submission: the state is fine, the
		// request is out of sequence.
		status = http.StatusConflict
	}
	writeError(w, status, err)
	return err
}

func decode(req *http.Request, v any) error {
	body := http.MaxBytesReader(nil, req.Body, maxBodyBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("serve: decode request: %w", err)
	}
	// Exactly one JSON document per request.
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		return fmt.Errorf("serve: trailing data after request body")
	}
	return nil
}

func (s *Server) handleCreate(w http.ResponseWriter, req *http.Request, ri *reqInfo) error {
	var in CreateCohortRequest
	if err := decode(req, &in); err != nil {
		return fail(w, err)
	}
	ri.tenant = in.Tenant
	id, err := s.mgr.Create(in)
	if err != nil {
		return fail(w, err)
	}
	ri.cohort = id
	return writeJSON(w, http.StatusCreated, CreateCohortResponse{ID: id})
}

func (s *Server) handlePools(w http.ResponseWriter, req *http.Request, ri *reqInfo) error {
	id := req.PathValue("id")
	ri.bind(s, id)
	out, err := s.mgr.Pools(id)
	if err != nil {
		return fail(w, err)
	}
	return writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleResults(w http.ResponseWriter, req *http.Request, ri *reqInfo) error {
	id := req.PathValue("id")
	ri.bind(s, id)
	var in SubmitResultsRequest
	if err := decode(req, &in); err != nil {
		return fail(w, err)
	}
	if err := s.mgr.Submit(id, resultsFromJSON(in.Results)); err != nil {
		return fail(w, err)
	}
	out, err := s.mgr.Pools(id)
	if err != nil {
		return fail(w, err)
	}
	return writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleStatus(w http.ResponseWriter, req *http.Request, ri *reqInfo) error {
	id := req.PathValue("id")
	ri.bind(s, id)
	out, err := s.mgr.Status(id)
	if err != nil {
		return fail(w, err)
	}
	return writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleDelete(w http.ResponseWriter, req *http.Request, ri *reqInfo) error {
	id := req.PathValue("id")
	ri.bind(s, id)
	if err := s.mgr.Delete(id); err != nil {
		return fail(w, err)
	}
	w.WriteHeader(http.StatusNoContent)
	return nil
}

func (s *Server) handleDrain(w http.ResponseWriter, req *http.Request, ri *reqInfo) error {
	n, err := s.mgr.Drain()
	if err != nil {
		return fail(w, err)
	}
	return writeJSON(w, http.StatusOK, DrainResponse{Draining: true, Checkpointed: n})
}

// RetryAfter parses a Retry-After header value in seconds (the only form
// this server emits); 0 when absent or malformed.
func RetryAfter(h http.Header) time.Duration {
	v := h.Get("Retry-After")
	if v == "" {
		return 0
	}
	secs, err := strconv.Atoi(v)
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}
