package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
)

// maxBodyBytes bounds a request body: the largest legitimate payload is
// a cohort's worth of risks or one stage of results, both tiny.
const maxBodyBytes = 1 << 20

// latencyBounds are the request-latency histogram buckets (seconds),
// tuned for loopback-to-LAN service times.
var latencyBounds = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5,
}

// ServerConfig wires a Server.
type ServerConfig struct {
	Manager *Manager
	// MaxInflight bounds concurrently-served API requests; excess load is
	// shed with 429 + Retry-After instead of queueing without bound. Zero
	// means 512.
	MaxInflight int
	Obs         *obs.Registry
	Tracer      *obs.Tracer
	Log         *slog.Logger
}

// Server is the sbgt-serve HTTP API:
//
//	POST   /v1/cohorts              create a cohort
//	GET    /v1/cohorts/{id}/pools   next lab work (propose; idempotent)
//	POST   /v1/cohorts/{id}/results submit one stage of outcomes
//	GET    /v1/cohorts/{id}         status + classifications
//	DELETE /v1/cohorts/{id}         close and forget a cohort
//	POST   /v1/drain                checkpoint everything, stop admitting
//
// plus the observability endpoints from obs.NewMux (/metrics,
// /metrics.json, /healthz, /readyz, /spans, /debug/pprof/*). Readiness
// follows the manager: /readyz turns 503 the moment a drain starts.
type Server struct {
	mgr      *Manager
	mux      *http.ServeMux
	log      *slog.Logger
	tracer   *obs.Tracer
	inflight chan struct{}

	mRequests *obs.Counter
	mShed     *obs.Counter
	mLatency  *obs.Histogram
}

// NewServer builds the API handler around a manager.
func NewServer(cfg ServerConfig) *Server {
	if cfg.MaxInflight <= 0 {
		cfg.MaxInflight = 512
	}
	s := &Server{
		mgr:      cfg.Manager,
		mux:      obs.NewMux(cfg.Obs, cfg.Tracer, cfg.Manager.Ready),
		log:      obs.OrNop(cfg.Log),
		tracer:   cfg.Tracer,
		inflight: make(chan struct{}, cfg.MaxInflight),
	}
	if reg := cfg.Obs; reg != nil {
		s.mRequests = reg.Counter("sbgt_serve_requests_total")
		s.mShed = reg.Counter("sbgt_serve_requests_shed_total")
		s.mLatency = reg.Histogram("sbgt_serve_request_seconds", latencyBounds)
	}
	s.mux.HandleFunc("POST /v1/cohorts", s.guard(s.handleCreate))
	s.mux.HandleFunc("GET /v1/cohorts/{id}/pools", s.guard(s.handlePools))
	s.mux.HandleFunc("POST /v1/cohorts/{id}/results", s.guard(s.handleResults))
	s.mux.HandleFunc("GET /v1/cohorts/{id}", s.guard(s.handleStatus))
	s.mux.HandleFunc("DELETE /v1/cohorts/{id}", s.guard(s.handleDelete))
	s.mux.HandleFunc("POST /v1/drain", s.guard(s.handleDrain))
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	s.mux.ServeHTTP(w, req)
}

// guard wraps an API handler with backpressure, metrics, and a
// per-request span.
func (s *Server) guard(h func(http.ResponseWriter, *http.Request) error) http.HandlerFunc {
	return func(w http.ResponseWriter, req *http.Request) {
		select {
		case s.inflight <- struct{}{}:
			defer func() { <-s.inflight }()
		default:
			inc(s.mShed)
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusTooManyRequests, errors.New("serve: too many in-flight requests"))
			return
		}
		inc(s.mRequests)
		start := time.Now()
		var span *obs.Span
		if s.tracer != nil {
			span = s.tracer.Start("http", obs.A("method", req.Method), obs.A("path", req.URL.Path))
		}
		err := h(w, req)
		if span != nil {
			if err != nil {
				span.SetAttr("err", err.Error())
			}
			span.End()
		}
		if s.mLatency != nil {
			s.mLatency.Observe(time.Since(start).Seconds())
		}
		if err != nil {
			s.log.Debug("serve: request failed", "method", req.Method, "path", req.URL.Path, "err", err)
		}
	}
}

// writeError emits the uniform JSON error body. Write errors are
// swallowed: the client hung up and there is no one left to tell.
func writeError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(ErrorResponse{Error: err.Error()}) //lint:allow errcheck client disconnect mid-error-write leaves nothing to recover
}

func writeJSON(w http.ResponseWriter, status int, v any) error {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	return json.NewEncoder(w).Encode(v)
}

// fail maps a manager/core error onto an HTTP status.
func fail(w http.ResponseWriter, err error) error {
	status := http.StatusBadRequest
	switch {
	case errors.Is(err, ErrNotFound):
		status = http.StatusNotFound
	case errors.Is(err, ErrDraining):
		w.Header().Set("Retry-After", "5")
		status = http.StatusServiceUnavailable
	case errors.Is(err, ErrBusy), errors.Is(err, ErrTenantLimit):
		w.Header().Set("Retry-After", "1")
		status = http.StatusTooManyRequests
	case errors.Is(err, core.ErrNoProposal):
		// A duplicate or premature submission: the state is fine, the
		// request is out of sequence.
		status = http.StatusConflict
	}
	writeError(w, status, err)
	return err
}

func decode(req *http.Request, v any) error {
	body := http.MaxBytesReader(nil, req.Body, maxBodyBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("serve: decode request: %w", err)
	}
	// Exactly one JSON document per request.
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		return fmt.Errorf("serve: trailing data after request body")
	}
	return nil
}

func (s *Server) handleCreate(w http.ResponseWriter, req *http.Request) error {
	var in CreateCohortRequest
	if err := decode(req, &in); err != nil {
		return fail(w, err)
	}
	id, err := s.mgr.Create(in)
	if err != nil {
		return fail(w, err)
	}
	return writeJSON(w, http.StatusCreated, CreateCohortResponse{ID: id})
}

func (s *Server) handlePools(w http.ResponseWriter, req *http.Request) error {
	out, err := s.mgr.Pools(req.PathValue("id"))
	if err != nil {
		return fail(w, err)
	}
	return writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleResults(w http.ResponseWriter, req *http.Request) error {
	id := req.PathValue("id")
	var in SubmitResultsRequest
	if err := decode(req, &in); err != nil {
		return fail(w, err)
	}
	if err := s.mgr.Submit(id, resultsFromJSON(in.Results)); err != nil {
		return fail(w, err)
	}
	out, err := s.mgr.Pools(id)
	if err != nil {
		return fail(w, err)
	}
	return writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleStatus(w http.ResponseWriter, req *http.Request) error {
	out, err := s.mgr.Status(req.PathValue("id"))
	if err != nil {
		return fail(w, err)
	}
	return writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleDelete(w http.ResponseWriter, req *http.Request) error {
	if err := s.mgr.Delete(req.PathValue("id")); err != nil {
		return fail(w, err)
	}
	w.WriteHeader(http.StatusNoContent)
	return nil
}

func (s *Server) handleDrain(w http.ResponseWriter, req *http.Request) error {
	n, err := s.mgr.Drain()
	if err != nil {
		return fail(w, err)
	}
	return writeJSON(w, http.StatusOK, DrainResponse{Draining: true, Checkpointed: n})
}

// RetryAfter parses a Retry-After header value in seconds (the only form
// this server emits); 0 when absent or malformed.
func RetryAfter(h http.Header) time.Duration {
	v := h.Get("Retry-After")
	if v == "" {
		return 0
	}
	secs, err := strconv.Atoi(v)
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}
