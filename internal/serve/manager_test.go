package serve

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/bitvec"
	"repro/internal/core"
	"repro/internal/dilution"
	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/workload"
)

// idealOutcome is the noiseless lab: positive iff the pool touches an
// infected subject.
func idealOutcome(truth, mask bitvec.Mask) dilution.Outcome {
	return dilution.Outcome{Positive: truth.IntersectCount(mask) > 0}
}

func newTestPool(t *testing.T) *engine.Pool {
	t.Helper()
	pool := engine.NewPool(2)
	t.Cleanup(pool.Close)
	return pool
}

func newTestManager(t *testing.T, cfg ManagerConfig) *Manager {
	t.Helper()
	if cfg.Pool == nil {
		cfg.Pool = newTestPool(t)
	}
	if cfg.Dir == "" {
		cfg.Dir = t.TempDir()
	}
	m, err := NewManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { m.Close() }) //lint:allow errcheck test teardown
	return m
}

// driveToCompletion answers every proposal from truth (Ideal response)
// until the cohort is done, returning how many results were sent.
func driveToCompletion(t *testing.T, m *Manager, id string, truth bitvec.Mask) int {
	t.Helper()
	sent := 0
	for {
		pools, err := m.Pools(id)
		if err != nil {
			t.Fatalf("pools %s: %v", id, err)
		}
		if pools.Done {
			return sent
		}
		results := make([]core.TestResult, len(pools.Pools))
		for i, p := range pools.Pools {
			mask := bitvec.FromIndices(p.Subjects...)
			results[i] = core.TestResult{
				Stage:   p.Stage,
				Index:   p.Index,
				Outcome: idealOutcome(truth, mask),
			}
		}
		if err := m.Submit(id, results); err != nil {
			t.Fatalf("submit %s: %v", id, err)
		}
		sent += len(results)
	}
}

func TestManagerLifecycle(t *testing.T) {
	m := newTestManager(t, ManagerConfig{})
	risks := workload.UniformRisks(8, 0.1)
	truth := workload.Draw(risks, rng.New(9)).Truth

	id, err := m.Create(CreateCohortRequest{Tenant: "t1", Risks: risks})
	if err != nil {
		t.Fatal(err)
	}
	sent := driveToCompletion(t, m, id, truth)

	st, err := m.Status(id)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Done || st.Tests != sent || st.Remaining != 0 {
		t.Fatalf("status = %+v after %d results", st, sent)
	}
	for _, c := range st.Classifications {
		want := "negative"
		if truth.Has(c.Subject) {
			want = "positive"
		}
		if c.Status != want {
			t.Errorf("subject %d classified %s, truth %s", c.Subject, c.Status, want)
		}
	}

	if err := m.Delete(id); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Status(id); !errors.Is(err, ErrNotFound) {
		t.Fatalf("status after delete: %v", err)
	}
	if err := m.Delete(id); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double delete: %v", err)
	}
}

// TestResidencyFlightEvents pins the forensic shape of residency churn:
// every evict-to-checkpoint and restore-on-demand lands in the flight
// recorder stamped with tenant, cohort, the reason it happened
// (lru/idle/drain for evicts, demand for restores), and how long the
// checkpoint or load took — so an anomaly dump shows whether churn
// drove a latency breach.
func TestResidencyFlightEvents(t *testing.T) {
	flight := obs.NewFlightRecorder(256)
	m := newTestManager(t, ManagerConfig{MaxResident: 1, Flight: flight})
	risks := workload.UniformRisks(6, 0.1)

	a, err := m.Create(CreateCohortRequest{Tenant: "ta", Risks: risks})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Create(CreateCohortRequest{Tenant: "tb", Risks: risks}); err != nil {
		t.Fatal(err)
	}
	// Touching a forces a restore (it was LRU-evicted when b arrived).
	if _, err := m.Pools(a); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Drain(); err != nil {
		t.Fatal(err)
	}

	reason := func(ev obs.Event) string {
		for _, at := range ev.Attrs {
			if at.Key == "reason" {
				if s, ok := at.Value.(string); ok {
					return s
				}
			}
		}
		return ""
	}
	evicts := map[string]obs.Event{} // reason -> example event
	var restore *obs.Event
	for _, ev := range flight.Snapshot().Events {
		switch ev.Kind {
		case "evict":
			evicts[reason(ev)] = ev
		case "restore":
			restore = &ev
		}
	}
	lru, ok := evicts["lru"]
	if !ok {
		t.Fatalf("no lru evict event: %+v", evicts)
	}
	if lru.Tenant == "" || lru.Cohort == "" || lru.Dur <= 0 {
		t.Fatalf("lru evict missing identity or duration: %+v", lru)
	}
	drain, ok := evicts["drain"]
	if !ok {
		t.Fatalf("no drain evict event: %+v", evicts)
	}
	if drain.Dur <= 0 {
		t.Fatalf("drain evict has no duration: %+v", drain)
	}
	if restore == nil {
		t.Fatal("no restore event")
	}
	if reason(*restore) != "demand" || restore.Tenant != "ta" || restore.Cohort != a || restore.Dur <= 0 {
		t.Fatalf("restore event = %+v", restore)
	}
}

func TestManagerEvictionRoundTrip(t *testing.T) {
	// The acceptance test for residency: with MaxResident 1, two cohorts
	// force each other to disk on every touch, so cohort A completes its
	// campaign across repeated evict/restore cycles while cohort B (on a
	// roomy manager) stays resident throughout. Both must classify
	// identically — eviction is a residency decision, not an inference
	// decision.
	pool := newTestPool(t)
	risks := workload.UniformRisks(10, 0.12)
	truth := workload.Draw(risks, rng.New(21)).Truth

	tight := newTestManager(t, ManagerConfig{Pool: pool, MaxResident: 1})
	roomy := newTestManager(t, ManagerConfig{Pool: pool, MaxResident: 1024})

	a, err := tight.Create(CreateCohortRequest{Tenant: "t", Risks: risks})
	if err != nil {
		t.Fatal(err)
	}
	b, err := tight.Create(CreateCohortRequest{Tenant: "t", Risks: risks})
	if err != nil {
		t.Fatal(err)
	}
	r, err := roomy.Create(CreateCohortRequest{Tenant: "t", Risks: risks})
	if err != nil {
		t.Fatal(err)
	}

	// Alternate stages between a and b so each touch evicts the other.
	type drive struct {
		m    *Manager
		id   string
		done bool
		sent int
	}
	drives := []*drive{{m: tight, id: a}, {m: tight, id: b}, {m: roomy, id: r}}
	for remaining := len(drives); remaining > 0; {
		remaining = 0
		for _, d := range drives {
			if d.done {
				continue
			}
			pools, err := d.m.Pools(d.id)
			if err != nil {
				t.Fatalf("pools %s: %v", d.id, err)
			}
			if pools.Done {
				d.done = true
				continue
			}
			results := make([]core.TestResult, len(pools.Pools))
			for i, p := range pools.Pools {
				mask := bitvec.FromIndices(p.Subjects...)
				results[i] = core.TestResult{
					Stage:   p.Stage,
					Index:   p.Index,
					Outcome: idealOutcome(truth, mask),
				}
			}
			if err := d.m.Submit(d.id, results); err != nil {
				t.Fatalf("submit %s: %v", d.id, err)
			}
			d.sent += len(results)
			remaining++
		}
	}

	if tight.Resident() > 1 {
		t.Fatalf("tight manager holds %d resident posteriors, bound is 1", tight.Resident())
	}
	var got [3]*StatusResponse
	for i, d := range drives {
		st, err := d.m.Status(d.id)
		if err != nil {
			t.Fatal(err)
		}
		if st.Tests != d.sent {
			t.Fatalf("cohort %s absorbed %d results, client sent %d", d.id, st.Tests, d.sent)
		}
		got[i] = st
	}
	for i := 0; i < 2; i++ {
		for j, c := range got[i].Classifications {
			if c.Status != got[2].Classifications[j].Status {
				t.Errorf("cohort %d subject %d: %s evicted vs %s resident",
					i, c.Subject, c.Status, got[2].Classifications[j].Status)
			}
		}
	}
}

func TestManagerAdmissionControl(t *testing.T) {
	m := newTestManager(t, ManagerConfig{MaxCohorts: 2, MaxPerTenant: 1})
	risks := workload.UniformRisks(4, 0.1)

	if _, err := m.Create(CreateCohortRequest{Tenant: "alpha", Risks: risks}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Create(CreateCohortRequest{Tenant: "alpha", Risks: risks}); !errors.Is(err, ErrTenantLimit) {
		t.Fatalf("second alpha cohort: %v, want ErrTenantLimit", err)
	}
	if _, err := m.Create(CreateCohortRequest{Tenant: "beta", Risks: risks}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Create(CreateCohortRequest{Tenant: "gamma", Risks: risks}); !errors.Is(err, ErrBusy) {
		t.Fatalf("third cohort: %v, want ErrBusy", err)
	}
}

func TestManagerIdleSweep(t *testing.T) {
	// A cohort untouched past IdleAfter is checkpointed by the background
	// sweep without any request traffic.
	m := newTestManager(t, ManagerConfig{IdleAfter: 50 * time.Millisecond})
	risks := workload.UniformRisks(6, 0.1)
	id, err := m.Create(CreateCohortRequest{Tenant: "t", Risks: risks})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for m.Resident() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("idle cohort was never checkpointed")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if _, err := os.Stat(filepath.Join(m.cfg.Dir, id+".ckpt")); err != nil {
		t.Fatalf("checkpoint file: %v", err)
	}
	// The cohort still answers — restored on demand.
	if _, err := m.Pools(id); err != nil {
		t.Fatalf("pools after idle eviction: %v", err)
	}
}

func TestManagerDrainAndRecover(t *testing.T) {
	pool := newTestPool(t)
	dir := t.TempDir()
	m := newTestManager(t, ManagerConfig{Pool: pool, Dir: dir})
	risks := workload.UniformRisks(8, 0.12)
	truth := workload.Draw(risks, rng.New(33)).Truth

	id, err := m.Create(CreateCohortRequest{Tenant: "t", Risks: risks})
	if err != nil {
		t.Fatal(err)
	}
	// Leave a proposal outstanding so drain must persist the pending
	// state, not just the posterior.
	pools, err := m.Pools(id)
	if err != nil || pools.Done {
		t.Fatalf("pools: %+v %v", pools, err)
	}

	if m.Ready() != nil {
		t.Fatal("manager not ready before drain")
	}
	n, err := m.Drain()
	if err != nil || n != 1 {
		t.Fatalf("drain checkpointed %d, err %v", n, err)
	}
	if m.Ready() == nil {
		t.Fatal("manager ready after drain")
	}
	if _, err := m.Create(CreateCohortRequest{Tenant: "t", Risks: risks}); !errors.Is(err, ErrDraining) {
		t.Fatalf("create during drain: %v", err)
	}

	// A successor process picks the cohort up from the same directory and
	// serves the identical outstanding proposal.
	m2 := newTestManager(t, ManagerConfig{Pool: pool, Dir: dir})
	pools2, err := m2.Pools(id)
	if err != nil {
		t.Fatal(err)
	}
	if len(pools2.Pools) != len(pools.Pools) {
		t.Fatalf("recovered proposal %+v, want %+v", pools2.Pools, pools.Pools)
	}
	for i := range pools.Pools {
		if pools2.Pools[i].Stage != pools.Pools[i].Stage ||
			pools2.Pools[i].Index != pools.Pools[i].Index {
			t.Fatalf("recovered proposal %+v, want %+v", pools2.Pools, pools.Pools)
		}
	}
	driveToCompletion(t, m2, id, truth)
	st, err := m2.Status(id)
	if err != nil || !st.Done {
		t.Fatalf("status after recovery: %+v %v", st, err)
	}
}

func TestManagerDuplicateSubmit(t *testing.T) {
	// The same batch absorbed twice would double-count evidence; the
	// second submission must fail without touching the posterior.
	m := newTestManager(t, ManagerConfig{})
	risks := workload.UniformRisks(10, 0.3)
	truth := workload.Draw(risks, rng.New(55)).Truth
	id, err := m.Create(CreateCohortRequest{Tenant: "t", Risks: risks})
	if err != nil {
		t.Fatal(err)
	}
	pools, err := m.Pools(id)
	if err != nil {
		t.Fatal(err)
	}
	results := make([]core.TestResult, len(pools.Pools))
	for i, p := range pools.Pools {
		results[i] = core.TestResult{
			Stage:   p.Stage,
			Index:   p.Index,
			Outcome: idealOutcome(truth, bitvec.FromIndices(p.Subjects...)),
		}
	}
	if err := m.Submit(id, results); err != nil {
		t.Fatal(err)
	}
	tests, _ := m.Status(id)
	if tests.Done {
		t.Fatal("campaign finished after one stage; the duplicate-submit premise needs an open session")
	}
	if err := m.Submit(id, results); !errors.Is(err, core.ErrNoProposal) {
		t.Fatalf("duplicate submit: %v, want ErrNoProposal", err)
	}
	after, _ := m.Status(id)
	if tests.Tests != after.Tests {
		t.Fatalf("duplicate submit changed test count: %d -> %d", tests.Tests, after.Tests)
	}
}
