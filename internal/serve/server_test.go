package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/workload"
)

func newTestServer(t *testing.T, mcfg ManagerConfig, scfg ServerConfig) (*Server, *httptest.Server) {
	t.Helper()
	m := newTestManager(t, mcfg)
	scfg.Manager = m
	s := NewServer(scfg)
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return s, ts
}

func doJSON(t *testing.T, method, url string, in, out any) (int, http.Header) {
	t.Helper()
	var body io.Reader
	if in != nil {
		b, err := json.Marshal(in)
		if err != nil {
			t.Fatal(err)
		}
		body = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, url, body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode < 300 {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("%s %s: decode: %v", method, url, err)
		}
	}
	return resp.StatusCode, resp.Header
}

func TestServerEndToEnd(t *testing.T) {
	reg := obs.NewRegistry()
	tracer := obs.NewTracer(256)
	_, ts := newTestServer(t,
		ManagerConfig{Obs: reg, Tracer: tracer},
		ServerConfig{Obs: reg, Tracer: tracer})

	risks := workload.UniformRisks(8, 0.15)
	truth := workload.Draw(risks, rng.New(77)).Truth

	var created CreateCohortResponse
	code, _ := doJSON(t, "POST", ts.URL+"/v1/cohorts", CreateCohortRequest{
		Tenant:   "lab-a",
		Risks:    risks,
		Response: ResponseSpec{Kind: "binary", Sens: 1, Spec: 1},
	}, &created)
	if code != http.StatusCreated || created.ID == "" {
		t.Fatalf("create: %d %+v", code, created)
	}

	var pools PoolsResponse
	if code, _ := doJSON(t, "GET", ts.URL+"/v1/cohorts/"+created.ID+"/pools", nil, &pools); code != http.StatusOK {
		t.Fatalf("pools: %d", code)
	}
	// Re-fetching must re-serve the identical proposal, not advance it.
	var again PoolsResponse
	doJSON(t, "GET", ts.URL+"/v1/cohorts/"+created.ID+"/pools", nil, &again)
	if fmt.Sprint(again) != fmt.Sprint(pools) {
		t.Fatalf("pools not idempotent: %+v vs %+v", again, pools)
	}

	for !pools.Done {
		req := SubmitResultsRequest{}
		for _, p := range pools.Pools {
			var mask int64
			for _, s := range p.Subjects {
				mask |= 1 << s
			}
			req.Results = append(req.Results, ResultJSON{
				Stage:    p.Stage,
				Index:    p.Index,
				Positive: int64(truth)&mask != 0,
			})
		}
		pools = PoolsResponse{}
		if code, _ := doJSON(t, "POST", ts.URL+"/v1/cohorts/"+created.ID+"/results", req, &pools); code != http.StatusOK {
			t.Fatalf("results: %d", code)
		}
	}

	var st StatusResponse
	if code, _ := doJSON(t, "GET", ts.URL+"/v1/cohorts/"+created.ID, nil, &st); code != http.StatusOK {
		t.Fatalf("status: %d", code)
	}
	if !st.Done || st.Tenant != "lab-a" {
		t.Fatalf("status: %+v", st)
	}
	for _, c := range st.Classifications {
		want := "negative"
		if truth.Has(c.Subject) {
			want = "positive"
		}
		if c.Status != want {
			t.Errorf("subject %d: %s, truth %s", c.Subject, c.Status, want)
		}
	}

	// The observability surface rides the same mux.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, metric := range []string{"sbgt_serve_requests_total", "sbgt_serve_cohorts_created_total", "sbgt_serve_request_seconds"} {
		if !strings.Contains(string(body), metric) {
			t.Errorf("/metrics missing %s", metric)
		}
	}

	if code, _ := doJSON(t, "DELETE", ts.URL+"/v1/cohorts/"+created.ID, nil, nil); code != http.StatusNoContent {
		t.Fatalf("delete: %d", code)
	}
	if code, _ := doJSON(t, "GET", ts.URL+"/v1/cohorts/"+created.ID, nil, nil); code != http.StatusNotFound {
		t.Fatalf("status after delete: %d", code)
	}
}

func TestServerValidation(t *testing.T) {
	_, ts := newTestServer(t, ManagerConfig{}, ServerConfig{})

	// Malformed JSON.
	resp, err := http.Post(ts.URL+"/v1/cohorts", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed create: %d", resp.StatusCode)
	}

	// Unknown response kind.
	code, _ := doJSON(t, "POST", ts.URL+"/v1/cohorts", CreateCohortRequest{
		Risks: workload.UniformRisks(4, 0.1), Response: ResponseSpec{Kind: "psychic"},
	}, nil)
	if code != http.StatusBadRequest {
		t.Fatalf("bad kind: %d", code)
	}

	// Unknown cohort.
	if code, _ := doJSON(t, "GET", ts.URL+"/v1/cohorts/c99999999/pools", nil, nil); code != http.StatusNotFound {
		t.Fatalf("unknown cohort: %d", code)
	}

	// A results batch answering the wrong stage leaves the proposal open.
	var created CreateCohortResponse
	doJSON(t, "POST", ts.URL+"/v1/cohorts", CreateCohortRequest{Risks: workload.UniformRisks(6, 0.2)}, &created)
	var pools PoolsResponse
	doJSON(t, "GET", ts.URL+"/v1/cohorts/"+created.ID+"/pools", nil, &pools)
	bad := SubmitResultsRequest{Results: []ResultJSON{{Stage: 99, Index: 0}}}
	if code, _ := doJSON(t, "POST", ts.URL+"/v1/cohorts/"+created.ID+"/results", bad, nil); code != http.StatusBadRequest {
		t.Fatalf("wrong-stage results: %d", code)
	}
	var after PoolsResponse
	doJSON(t, "GET", ts.URL+"/v1/cohorts/"+created.ID+"/pools", nil, &after)
	if fmt.Sprint(after) != fmt.Sprint(pools) {
		t.Fatalf("rejected batch moved the proposal: %+v vs %+v", after, pools)
	}
}

func TestServerBackpressure(t *testing.T) {
	s, ts := newTestServer(t, ManagerConfig{}, ServerConfig{MaxInflight: 1})

	// Fill the only admission slot, then watch load shed.
	s.inflight <- struct{}{}
	resp, err := http.Get(ts.URL + "/v1/cohorts/c00000001/pools")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated server answered %d, want 429", resp.StatusCode)
	}
	if RetryAfter(resp.Header) <= 0 {
		t.Fatal("429 without a Retry-After hint")
	}
	<-s.inflight

	// The slot freed; the same request now reaches the API (404 — the
	// cohort never existed — but it was served, not shed).
	resp, err = http.Get(ts.URL + "/v1/cohorts/c00000001/pools")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("after release: %d, want 404", resp.StatusCode)
	}
}

func TestServerDrain(t *testing.T) {
	_, ts := newTestServer(t, ManagerConfig{}, ServerConfig{})
	risks := workload.UniformRisks(6, 0.1)

	var created CreateCohortResponse
	doJSON(t, "POST", ts.URL+"/v1/cohorts", CreateCohortRequest{Risks: risks}, &created)
	doJSON(t, "GET", ts.URL+"/v1/cohorts/"+created.ID+"/pools", nil, nil)

	// Ready before the drain, not after.
	resp, _ := http.Get(ts.URL + "/readyz")
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/readyz before drain: %d", resp.StatusCode)
	}

	var drained DrainResponse
	if code, _ := doJSON(t, "POST", ts.URL+"/v1/drain", nil, &drained); code != http.StatusOK {
		t.Fatalf("drain: %d", code)
	}
	if !drained.Draining || drained.Checkpointed != 1 {
		t.Fatalf("drain response: %+v", drained)
	}

	resp, _ = http.Get(ts.URL + "/readyz")
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || !strings.Contains(string(body), "draining") {
		t.Fatalf("/readyz during drain: %d %q", resp.StatusCode, body)
	}
	// Liveness is unaffected.
	resp, _ = http.Get(ts.URL + "/healthz")
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz during drain: %d", resp.StatusCode)
	}

	code, hdr := doJSON(t, "POST", ts.URL+"/v1/cohorts", CreateCohortRequest{Risks: risks}, nil)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("create during drain: %d, want 503", code)
	}
	if RetryAfter(hdr) <= 0 {
		t.Fatal("503 without a Retry-After hint")
	}
}

func TestRunLoadSmall(t *testing.T) {
	// A miniature of the 10k loadtest: enough cohorts to exercise the
	// eviction path (MaxResident below the population), full verification
	// of counters and classifications.
	reg := obs.NewRegistry()
	_, ts := newTestServer(t,
		ManagerConfig{Obs: reg, MaxResident: 8},
		ServerConfig{Obs: reg})

	report, err := RunLoad(LoadConfig{
		Target:   ts.URL,
		Cohorts:  32,
		Subjects: 8,
		Risk:     0.1,
		Workers:  16,
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.Misclassified != 0 {
		t.Fatalf("%d misclassifications under the Ideal response", report.Misclassified)
	}
	if report.ResultsSent != report.TestsServer {
		t.Fatalf("client sent %d results, server absorbed %d", report.ResultsSent, report.TestsServer)
	}
	if report.P99 < report.P50 || report.P50 <= 0 {
		t.Fatalf("implausible latency percentiles: p50=%v p99=%v", report.P50, report.P99)
	}
	if v := reg.Gauge("sbgt_serve_cohorts_resident").Value(); v > 8 {
		t.Fatalf("resident gauge %v exceeds MaxResident", v)
	}
}

func TestRunLoad10kCohorts(t *testing.T) {
	if testing.Short() {
		t.Skip("10k-cohort load run in -short mode")
	}
	reg := obs.NewRegistry()
	_, ts := newTestServer(t,
		ManagerConfig{Obs: reg, MaxResident: 512, MaxCohorts: 20000},
		ServerConfig{Obs: reg, MaxInflight: 256})

	report, err := RunLoad(LoadConfig{
		Target:   ts.URL,
		Cohorts:  10000,
		Subjects: 8,
		Risk:     0.08,
		Workers:  128,
		Seed:     2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.Misclassified != 0 {
		t.Fatalf("%d misclassifications across 10k cohorts", report.Misclassified)
	}
	if report.ResultsSent != report.TestsServer {
		t.Fatalf("lost or double-absorbed results: client sent %d, server absorbed %d",
			report.ResultsSent, report.TestsServer)
	}
	t.Logf("10k cohorts: %d requests, p50=%v p99=%v, %.0f req/s",
		report.Requests, report.P50, report.P99, report.Throughput())
}
