package serve

import (
	"errors"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/obs"
)

// Manager errors the HTTP layer maps onto status codes.
var (
	// ErrNotFound: the cohort ID does not exist (404).
	ErrNotFound = errors.New("serve: cohort not found")
	// ErrDraining: the server is shutting down and admits no work (503).
	ErrDraining = errors.New("serve: draining")
	// ErrBusy: the cohort admission bound is reached (429).
	ErrBusy = errors.New("serve: at capacity")
	// ErrTenantLimit: the per-tenant admission bound is reached (429).
	ErrTenantLimit = errors.New("serve: tenant at capacity")
)

// ManagerConfig sizes a session manager.
type ManagerConfig struct {
	// Pool is the shared compute substrate every resident posterior
	// updates on. Required.
	Pool *engine.Pool
	// Dir is where idle cohorts are checkpointed. Required.
	Dir string
	// MaxResident bounds how many posteriors stay in memory at once;
	// admitting or restoring past the bound evicts the least-recently-used
	// cohort to disk first. Zero means 256.
	MaxResident int
	// MaxCohorts bounds the total population, resident plus checkpointed.
	// Zero means 65536.
	MaxCohorts int
	// MaxPerTenant bounds one tenant's share of MaxCohorts. Zero means no
	// per-tenant bound.
	MaxPerTenant int
	// IdleAfter is how long a cohort may sit untouched before the
	// background sweep checkpoints it to disk. Zero means 5 minutes.
	IdleAfter time.Duration
	// Obs and Tracer instrument the sessions and the manager itself; nil
	// disables. Log receives lifecycle events (nil = discard).
	Obs    *obs.Registry
	Tracer *obs.Tracer
	Log    *slog.Logger
	// Flight, when non-nil, receives structured lifecycle events (creates,
	// evictions, restores, deletes, drains) and absorb-failure anomaly
	// triggers, each tagged with tenant and cohort identity.
	Flight *obs.FlightRecorder
	// Clock overrides time.Now for tests.
	Clock func() time.Time
}

// cohort is one campaign under management. mu serializes every session
// operation (propose, absorb, checkpoint, restore, close) so a request
// and an eviction never interleave inside the session; sess is nil while
// the cohort lives on disk.
type cohort struct {
	id     string
	tenant string

	mu       sync.Mutex
	sess     *core.Session
	lastUsed time.Time
	deleted  bool
}

// Manager owns the cohort population: admission, residency, idle
// eviction, restore-on-demand, and drain. All methods are safe for
// concurrent use.
type Manager struct {
	cfg ManagerConfig

	mu        sync.Mutex
	cohorts   map[string]*cohort
	perTenant map[string]int
	seq       uint64
	draining  atomic.Bool
	resident  atomic.Int64

	stop chan struct{}
	done chan struct{}

	mCreated  *obs.Counter
	mEvicted  *obs.Counter
	mRestored *obs.Counter
	mRejected *obs.Counter
	mResults  *obs.Counter
	mResident *obs.Gauge
	mCohorts  *obs.Gauge
}

// NewManager starts a session manager (including its background idle
// sweep). Close or Drain stops it.
func NewManager(cfg ManagerConfig) (*Manager, error) {
	if cfg.Pool == nil {
		return nil, fmt.Errorf("serve: ManagerConfig.Pool is required")
	}
	if cfg.Dir == "" {
		return nil, fmt.Errorf("serve: ManagerConfig.Dir is required")
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("serve: checkpoint dir: %w", err)
	}
	if cfg.MaxResident <= 0 {
		cfg.MaxResident = 256
	}
	if cfg.MaxCohorts <= 0 {
		cfg.MaxCohorts = 65536
	}
	if cfg.IdleAfter <= 0 {
		cfg.IdleAfter = 5 * time.Minute
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	cfg.Log = obs.OrNop(cfg.Log)
	m := &Manager{
		cfg:       cfg,
		cohorts:   make(map[string]*cohort),
		perTenant: make(map[string]int),
		stop:      make(chan struct{}),
		done:      make(chan struct{}),
	}
	// Re-register checkpoints a predecessor left behind (a drained server
	// writes every cohort to Dir): the cohorts come back lazily — each
	// stays on disk until its first request restores it. Tenant labels do
	// not survive a restart (they live in the manager, not the checkpoint);
	// recovered cohorts count against the global bound but not a tenant's.
	entries, err := os.ReadDir(cfg.Dir)
	if err != nil {
		return nil, fmt.Errorf("serve: scan checkpoint dir: %w", err)
	}
	for _, e := range entries {
		name := e.Name()
		id, ok := strings.CutSuffix(name, ".ckpt")
		if !ok || e.IsDir() {
			continue
		}
		m.cohorts[id] = &cohort{id: id, lastUsed: cfg.Clock()}
		var n uint64
		if _, err := fmt.Sscanf(id, "c%d", &n); err == nil && n > m.seq {
			m.seq = n
		}
	}
	if len(m.cohorts) > 0 {
		cfg.Log.Info("serve: recovered checkpointed cohorts", "count", len(m.cohorts))
	}
	if reg := cfg.Obs; reg != nil {
		m.mCreated = reg.Counter("sbgt_serve_cohorts_created_total")
		m.mEvicted = reg.Counter("sbgt_serve_evictions_total")
		m.mRestored = reg.Counter("sbgt_serve_restores_total")
		m.mRejected = reg.Counter("sbgt_serve_admission_rejected_total")
		m.mResults = reg.Counter("sbgt_serve_results_total")
		m.mResident = reg.Gauge("sbgt_serve_cohorts_resident")
		m.mCohorts = reg.Gauge("sbgt_serve_cohorts")
	}
	go m.sweep() //lint:allow concurrency the sweep is a timer loop, not lattice work; it exits via m.stop in Close and Drain
	return m, nil
}

func inc(c *obs.Counter) {
	if c != nil {
		c.Inc()
	}
}

func gaugeAdd(g *obs.Gauge, d float64) {
	if g != nil {
		g.Add(d)
	}
}

// sweep periodically checkpoints cohorts idle past IdleAfter.
func (m *Manager) sweep() {
	defer close(m.done)
	tick := time.NewTicker(m.cfg.IdleAfter / 2)
	defer tick.Stop()
	for {
		select {
		case <-m.stop:
			return
		case <-tick.C:
			cutoff := m.cfg.Clock().Add(-m.cfg.IdleAfter)
			for _, c := range m.snapshot() {
				select {
				case <-m.stop:
					return
				default:
				}
				m.evictIfIdle(c, cutoff)
			}
		}
	}
}

// snapshot returns the current cohort list without holding the map lock
// during per-cohort work.
func (m *Manager) snapshot() []*cohort {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*cohort, 0, len(m.cohorts))
	for _, c := range m.cohorts {
		out = append(out, c)
	}
	return out
}

func (m *Manager) evictIfIdle(c *cohort, cutoff time.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.sess == nil || c.deleted || c.lastUsed.After(cutoff) {
		return
	}
	if err := m.checkpointLocked(c, "idle"); err != nil {
		m.cfg.Log.Error("serve: idle eviction failed", "cohort", c.id, "err", err)
	}
}

// checkpointLocked writes c's session to disk and releases the resident
// posterior. Caller holds c.mu and c.sess != nil. reason says why the
// cohort is leaving residency — "idle" (sweep), "lru" (evicted to make
// room), or "drain" — and rides the flight event so an anomaly dump
// shows not just that residency churned but what drove it.
func (m *Manager) checkpointLocked(c *cohort, reason string) error {
	start := time.Now()
	f, err := os.CreateTemp(m.cfg.Dir, c.id+".tmp*")
	if err != nil {
		return err
	}
	err = c.sess.SaveSession(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(f.Name(), m.path(c.id))
	}
	if err != nil {
		os.Remove(f.Name()) //lint:allow errcheck best-effort cleanup of a temp file we are abandoning
		return err
	}
	if cerr := c.sess.Close(); cerr != nil {
		m.cfg.Log.Warn("serve: close after checkpoint", "cohort", c.id, "err", cerr)
	}
	c.sess = nil
	m.resident.Add(-1)
	gaugeAdd(m.mResident, -1)
	inc(m.mEvicted)
	m.cfg.Flight.Record(obs.Event{
		Kind: "evict", Tenant: c.tenant, Cohort: c.id, Dur: time.Since(start),
		Attrs: []obs.Attr{obs.A("reason", reason)},
	})
	m.cfg.Log.Debug("serve: cohort checkpointed", "cohort", c.id, "reason", reason)
	return nil
}

func (m *Manager) path(id string) string {
	return filepath.Join(m.cfg.Dir, id+".ckpt")
}

// restoreLocked loads c's session back from disk. Caller holds c.mu and
// c.sess == nil.
func (m *Manager) restoreLocked(c *cohort) error {
	start := time.Now()
	f, err := os.Open(m.path(c.id))
	if err != nil {
		return fmt.Errorf("serve: restore %s: %w", c.id, err)
	}
	defer f.Close()
	sess, err := core.LoadSession(f, m.cfg.Pool, nil)
	if err != nil {
		return fmt.Errorf("serve: restore %s: %w", c.id, err)
	}
	c.sess = sess
	m.resident.Add(1)
	gaugeAdd(m.mResident, 1)
	inc(m.mRestored)
	m.cfg.Flight.Record(obs.Event{
		Kind: "restore", Tenant: c.tenant, Cohort: c.id, Dur: time.Since(start),
		Attrs: []obs.Attr{obs.A("reason", "demand")},
	})
	m.cfg.Log.Debug("serve: cohort restored", "cohort", c.id)
	return nil
}

// makeRoom evicts least-recently-used resident cohorts until the
// resident count is back under MaxResident. Called outside any cohort
// lock.
func (m *Manager) makeRoom() {
	for m.resident.Load() > int64(m.cfg.MaxResident) {
		var victim *cohort
		var oldest time.Time
		for _, c := range m.snapshot() {
			c.mu.Lock()
			live := c.sess != nil && !c.deleted
			used := c.lastUsed
			c.mu.Unlock()
			if live && (victim == nil || used.Before(oldest)) {
				victim, oldest = c, used
			}
		}
		if victim == nil {
			return
		}
		victim.mu.Lock()
		if victim.sess != nil && !victim.deleted {
			if err := m.checkpointLocked(victim, "lru"); err != nil {
				m.cfg.Log.Error("serve: LRU eviction failed", "cohort", victim.id, "err", err)
				victim.mu.Unlock()
				return
			}
		}
		victim.mu.Unlock()
	}
}

// lookup finds a cohort by ID.
func (m *Manager) lookup(id string) (*cohort, error) {
	m.mu.Lock()
	c, ok := m.cohorts[id]
	m.mu.Unlock()
	if !ok {
		return nil, ErrNotFound
	}
	return c, nil
}

// withSession runs fn with the cohort resident and its lock held,
// restoring from disk first when needed. LRU pressure from a restore is
// relieved after the cohort lock drops — makeRoom locks other cohorts,
// and this one is now the most recently used, so it is not the victim.
func (m *Manager) withSession(id string, fn func(*core.Session) error) error {
	c, err := m.lookup(id)
	if err != nil {
		return err
	}
	restored, err := func() (bool, error) {
		c.mu.Lock()
		defer c.mu.Unlock()
		if c.deleted {
			return false, ErrNotFound
		}
		restored := false
		if c.sess == nil {
			if err := m.restoreLocked(c); err != nil {
				return false, err
			}
			restored = true
		}
		c.lastUsed = m.cfg.Clock()
		return restored, fn(c.sess)
	}()
	if restored {
		m.makeRoom()
	}
	return err
}

// Create admits a new cohort and returns its ID.
func (m *Manager) Create(req CreateCohortRequest) (string, error) {
	if m.draining.Load() {
		return "", ErrDraining
	}
	resp, err := req.Response.Response()
	if err != nil {
		return "", err
	}

	m.mu.Lock()
	if len(m.cohorts) >= m.cfg.MaxCohorts {
		m.mu.Unlock()
		inc(m.mRejected)
		return "", ErrBusy
	}
	if m.cfg.MaxPerTenant > 0 && m.perTenant[req.Tenant] >= m.cfg.MaxPerTenant {
		m.mu.Unlock()
		inc(m.mRejected)
		return "", fmt.Errorf("%w: tenant %q", ErrTenantLimit, req.Tenant)
	}
	m.seq++
	id := fmt.Sprintf("c%08d", m.seq)
	c := &cohort{id: id, tenant: req.Tenant, lastUsed: m.cfg.Clock()}
	m.cohorts[id] = c
	m.perTenant[req.Tenant]++
	m.mu.Unlock()

	sess, err := core.NewSession(m.cfg.Pool, core.Config{
		Risks:        req.Risks,
		Response:     resp,
		Lookahead:    req.Lookahead,
		PosThreshold: req.PosThreshold,
		NegThreshold: req.NegThreshold,
		MaxStages:    req.MaxStages,
		Obs:          m.cfg.Obs,
		Tracer:       m.cfg.Tracer,
		Flight:       m.cfg.Flight.Scope(req.Tenant, id),
	})
	if err != nil {
		m.drop(c)
		return "", err
	}
	c.mu.Lock()
	c.sess = sess
	c.mu.Unlock()
	m.resident.Add(1)
	gaugeAdd(m.mResident, 1)
	gaugeAdd(m.mCohorts, 1)
	inc(m.mCreated)
	m.cfg.Flight.Record(obs.Event{
		Kind: "create", Tenant: req.Tenant, Cohort: id,
		Attrs: []obs.Attr{obs.A("subjects", len(req.Risks))},
	})
	m.makeRoom()
	m.cfg.Log.Debug("serve: cohort created", "cohort", id, "tenant", req.Tenant, "subjects", len(req.Risks))
	return id, nil
}

// drop removes a cohort from the maps (bookkeeping only).
func (m *Manager) drop(c *cohort) {
	m.mu.Lock()
	delete(m.cohorts, c.id)
	if m.perTenant[c.tenant] <= 1 {
		delete(m.perTenant, c.tenant)
	} else {
		m.perTenant[c.tenant]--
	}
	m.mu.Unlock()
}

// Pools returns the cohort's outstanding lab work, proposing a new stage
// when none is outstanding. Safe to call repeatedly: a proposal is
// re-served, not re-made.
func (m *Manager) Pools(id string) (*PoolsResponse, error) {
	var out *PoolsResponse
	err := m.withSession(id, func(s *core.Session) error {
		pools, err := s.ProposePools()
		if err != nil {
			return err
		}
		out = &PoolsResponse{ID: id, Done: s.Done(), Stage: s.Stage(), Pools: poolsJSON(pools)}
		return nil
	})
	return out, err
}

// Submit absorbs one stage of lab results. The batch must answer the
// outstanding proposal exactly; a rejected batch leaves the proposal
// open, and a duplicate submission fails with core.ErrNoProposal rather
// than double-counting evidence.
//
// Failure triage feeds the flight recorder: a duplicate submission
// (ErrNoProposal) and a rejected batch (proposal still outstanding) are
// client errors and stay out of the anomaly stream, but an absorb that
// consumed the proposal and then failed is an internal posterior fault —
// the cohort is wedged mid-stage — and triggers an anomaly auto-dump
// naming the tenant and cohort.
func (m *Manager) Submit(id string, results []core.TestResult) error {
	var tenant string
	if c, err := m.lookup(id); err == nil {
		tenant = c.tenant
	}
	return m.withSession(id, func(s *core.Session) error {
		if err := s.AbsorbResults(results); err != nil {
			if !errors.Is(err, core.ErrNoProposal) && s.Outstanding() == nil && !s.Done() {
				m.cfg.Flight.TriggerAnomaly("absorb_failure",
					obs.A("tenant", tenant), obs.A("cohort", id), obs.A("err", err.Error()))
			}
			return err
		}
		if m.mResults != nil {
			m.mResults.Add(uint64(len(results)))
		}
		return nil
	})
}

// Status reports a cohort's progress and classifications.
func (m *Manager) Status(id string) (*StatusResponse, error) {
	var out *StatusResponse
	err := m.withSession(id, func(s *core.Session) error {
		out = &StatusResponse{
			ID:              id,
			Done:            s.Done(),
			Stage:           s.Stage(),
			Tests:           s.Tests(),
			Remaining:       s.Remaining(),
			Classifications: classificationsJSON(s.Classifications()),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if c, cerr := m.lookup(id); cerr == nil {
		out.Tenant = c.tenant
	}
	return out, err
}

// Delete closes a cohort and removes its checkpoint.
func (m *Manager) Delete(id string) error {
	c, err := m.lookup(id)
	if err != nil {
		return err
	}
	c.mu.Lock()
	if c.deleted {
		c.mu.Unlock()
		return ErrNotFound
	}
	c.deleted = true
	if c.sess != nil {
		if err := c.sess.Close(); err != nil {
			m.cfg.Log.Warn("serve: close on delete", "cohort", id, "err", err)
		}
		c.sess = nil
		m.resident.Add(-1)
		gaugeAdd(m.mResident, -1)
	}
	c.mu.Unlock()
	if err := os.Remove(m.path(id)); err != nil && !errors.Is(err, os.ErrNotExist) {
		m.cfg.Log.Warn("serve: remove checkpoint", "cohort", id, "err", err)
	}
	m.drop(c)
	gaugeAdd(m.mCohorts, -1)
	m.cfg.Flight.Record(obs.Event{Kind: "delete", Tenant: c.tenant, Cohort: id})
	return nil
}

// Tenant reports which tenant owns the cohort ("" when unknown — e.g. a
// cohort recovered from a predecessor's checkpoint directory).
func (m *Manager) Tenant(id string) string {
	c, err := m.lookup(id)
	if err != nil {
		return ""
	}
	return c.tenant
}

// Ready reports whether the manager should receive traffic — the /readyz
// hook. It fails while draining.
func (m *Manager) Ready() error {
	if m.draining.Load() {
		return ErrDraining
	}
	return nil
}

// Drain stops admission, halts the idle sweep, and checkpoints every
// resident cohort to disk so a successor process can restore them. It
// returns how many cohorts were checkpointed. Idempotent.
func (m *Manager) Drain() (int, error) {
	if m.draining.Swap(true) {
		<-m.done
		return 0, nil
	}
	close(m.stop)
	<-m.done
	n := 0
	var first error
	for _, c := range m.snapshot() {
		c.mu.Lock()
		if c.sess != nil && !c.deleted {
			if err := m.checkpointLocked(c, "drain"); err != nil {
				m.cfg.Log.Error("serve: drain checkpoint failed", "cohort", c.id, "err", err)
				if first == nil {
					first = err
				}
			} else {
				n++
			}
		}
		c.mu.Unlock()
	}
	m.cfg.Flight.Record(obs.Event{Kind: "drain", Attrs: []obs.Attr{obs.A("checkpointed", n)}})
	m.cfg.Log.Info("serve: drained", "checkpointed", n)
	return n, first
}

// Close releases the manager without checkpointing: the idle sweep stops
// and every resident session is closed. Use Drain first when state must
// survive. Idempotent.
func (m *Manager) Close() error {
	if !m.draining.Swap(true) {
		close(m.stop)
	}
	<-m.done
	for _, c := range m.snapshot() {
		c.mu.Lock()
		if c.sess != nil {
			c.sess.Close() //lint:allow errcheck teardown of a session we are abandoning
			c.sess = nil
			m.resident.Add(-1)
			gaugeAdd(m.mResident, -1)
		}
		c.mu.Unlock()
	}
	return nil
}

// Cohorts lists the managed cohort IDs in ID order — a diagnostic
// surface, not a paged API.
func (m *Manager) Cohorts() []string {
	cs := m.snapshot()
	sort.Slice(cs, func(i, j int) bool { return cs[i].id < cs[j].id })
	out := make([]string, len(cs))
	for i, c := range cs {
		out[i] = c.id
	}
	return out
}

// Resident reports how many posteriors are currently in memory.
func (m *Manager) Resident() int { return int(m.resident.Load()) }
