package obs

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"strings"
	"time"
)

// NewMux builds the observability HTTP mux:
//
//	/metrics        Prometheus text exposition of the registry; clients
//	                whose Accept header asks for application/openmetrics-text
//	                get OpenMetrics 1.0 instead (the format that carries
//	                histogram exemplars)
//	/metrics.json   JSON snapshot of the registry
//	/healthz        liveness probe (200 "ok")
//	/readyz         readiness probe (200 "ok", or 503 + reason)
//	/spans          JSON {"dropped": n, "spans": [...]} of the tracer's
//	                buffered spans plus its retention-bound eviction count
//	/debug/flight   flight-recorder snapshot: recent events + anomaly dumps
//	/debug/profiles continuous-profiler bundle store (only when a Profiles
//	                handler is mounted via MuxConfig)
//	/debug/pprof/*  net/http/pprof profiles
//
// Liveness and readiness are distinct probes: /healthz answers "is the
// process running" and is always 200, while /readyz answers "should a
// load balancer route traffic here". Optional readiness funcs drive
// /readyz — nil error means ready; a non-nil error serves 503 with the
// error text as the body, which is how a draining server sheds traffic
// before its listener closes. With no readiness func /readyz mirrors
// /healthz (a process with no drain states is always ready).
//
// reg, tracer, and flight may be nil; the corresponding endpoints then
// serve empty documents. A non-nil reg gets the Go runtime collector
// (sbgt_go_*) installed, so every served registry reports process health
// for free. The mux is standalone (not http.DefaultServeMux), so
// importing this package never leaks pprof onto a server the caller did
// not ask for.
func NewMux(reg *Registry, tracer *Tracer, flight *FlightRecorder, ready ...func() error) *http.ServeMux {
	return NewMuxConfig(MuxConfig{Reg: reg, Tracer: tracer, Flight: flight, Ready: ready})
}

// MuxConfig is the full-surface form of NewMux for callers that mount
// optional endpoints. Profiles, when non-nil, is served under
// /debug/profiles (the continuous profiler's bundle store; this package
// cannot import internal/obs/profiler — the profiler imports obs — so
// the handler arrives as a plain http.Handler).
type MuxConfig struct {
	Reg      *Registry
	Tracer   *Tracer
	Flight   *FlightRecorder
	Profiles http.Handler
	Ready    []func() error
}

// NewMuxConfig builds the observability mux from an explicit config.
func NewMuxConfig(cfg MuxConfig) *http.ServeMux {
	reg, tracer, flight, ready := cfg.Reg, cfg.Tracer, cfg.Flight, cfg.Ready
	RegisterRuntimeMetrics(reg)
	mux := http.NewServeMux()
	if cfg.Profiles != nil {
		h := http.StripPrefix("/debug/profiles", cfg.Profiles)
		mux.Handle("/debug/profiles", h)
		mux.Handle("/debug/profiles/", h)
	}
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		var snap *Snapshot
		if reg != nil {
			snap = reg.Snapshot()
		} else {
			snap = &Snapshot{}
		}
		if strings.Contains(req.Header.Get("Accept"), "application/openmetrics-text") {
			w.Header().Set("Content-Type", "application/openmetrics-text; version=1.0.0; charset=utf-8")
			//lint:allow errcheck the client hung up mid-write; nothing to recover
			_ = snap.WriteOpenMetrics(w)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := snap.WritePrometheus(w); err != nil {
			// The client hung up mid-write; nothing to recover.
			return
		}
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		var snap *Snapshot
		if reg != nil {
			snap = reg.Snapshot()
		} else {
			snap = &Snapshot{}
		}
		if err := snap.WriteJSON(w); err != nil {
			return
		}
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if _, err := io.WriteString(w, "ok\n"); err != nil {
			return
		}
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		for _, fn := range ready {
			if fn == nil {
				continue
			}
			if err := fn(); err != nil {
				w.WriteHeader(http.StatusServiceUnavailable)
				fmt.Fprintf(w, "not ready: %v\n", err)
				return
			}
		}
		if _, err := io.WriteString(w, "ok\n"); err != nil {
			return
		}
	})
	mux.HandleFunc("/spans", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		spans, dropped := tracer.Snapshot()
		if spans == nil {
			spans = []SpanRecord{}
		}
		payload := struct {
			Dropped uint64       `json:"dropped"`
			Spans   []SpanRecord `json:"spans"`
		}{Dropped: dropped, Spans: spans}
		enc := json.NewEncoder(w)
		if err := enc.Encode(payload); err != nil {
			// The client hung up mid-write; nothing to recover.
			return
		}
	})
	mux.HandleFunc("/debug/flight", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		//lint:allow errcheck the client hung up mid-write; nothing to recover
		_ = flight.WriteJSON(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Server is a running observability endpoint.
type Server struct {
	lis net.Listener
	srv *http.Server
}

// Serve starts the observability mux on addr (host:port; ":0" picks an
// ephemeral port) and serves it on a background goroutine. The returned
// Server reports the bound address and shuts the listener down on Close.
// log, if non-nil, receives a startup line and any serve failure.
func Serve(addr string, reg *Registry, tracer *Tracer, flight *FlightRecorder, log *slog.Logger, ready ...func() error) (*Server, error) {
	return ServeConfig(addr, MuxConfig{Reg: reg, Tracer: tracer, Flight: flight, Ready: ready}, log)
}

// ServeConfig is Serve over an explicit MuxConfig (the form that mounts
// /debug/profiles).
func ServeConfig(addr string, cfg MuxConfig, log *slog.Logger) (*Server, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	log = OrNop(log)
	srv := &http.Server{
		Handler:           NewMuxConfig(cfg),
		ReadHeaderTimeout: 5 * time.Second,
	}
	s := &Server{lis: lis, srv: srv}
	go func() {
		if err := srv.Serve(lis); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Error("obs: metrics server stopped", "addr", lis.Addr().String(), "err", err)
		}
	}()
	log.Info("obs: serving metrics", "addr", lis.Addr().String())
	return s, nil
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() string { return s.lis.Addr().String() }

// Close stops the server and releases the listener. Idempotent.
func (s *Server) Close() error { return s.srv.Close() }
