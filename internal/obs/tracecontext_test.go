package obs

import (
	"strings"
	"testing"
)

func TestTraceContextRoundTrip(t *testing.T) {
	for _, tc := range []TraceContext{
		{TraceID: 1, SpanID: 1},
		{TraceID: 0xdeadbeefcafef00d, SpanID: 0x0123456789abcdef},
		{TraceID: ^uint64(0), SpanID: ^uint64(0)},
	} {
		enc := tc.Encode()
		if len(enc) != traceparentLen {
			t.Fatalf("Encode(%+v) length %d, want %d: %q", tc, len(enc), traceparentLen, enc)
		}
		got, err := ParseTraceContext(enc)
		if err != nil {
			t.Fatalf("Parse(Encode(%+v)) = %v", tc, err)
		}
		if got != tc {
			t.Fatalf("round trip %+v -> %q -> %+v", tc, enc, got)
		}
	}
}

func TestTraceContextEncodeShape(t *testing.T) {
	enc := TraceContext{TraceID: 0xab, SpanID: 0xcd}.Encode()
	want := "00-000000000000000000000000000000ab-00000000000000cd-01"
	if enc != want {
		t.Fatalf("Encode = %q, want %q", enc, want)
	}
}

func TestParseTraceContextRejects(t *testing.T) {
	valid := TraceContext{TraceID: 7, SpanID: 9}.Encode()
	for name, in := range map[string]string{
		"empty":          "",
		"short":          valid[:len(valid)-1],
		"long":           valid + "0",
		"bad version":    "01" + valid[2:],
		"bad separator":  valid[:2] + "_" + valid[3:],
		"uppercase hex":  strings.ToUpper(TraceContext{TraceID: 0xab, SpanID: 0xcd}.Encode()),
		"high trace id":  "00-10000000000000000000000000000007-0000000000000009-01",
		"zero trace id":  TraceContext{TraceID: 0, SpanID: 9}.Encode(),
		"zero span id":   TraceContext{TraceID: 7, SpanID: 0}.Encode(),
		"bad flags":      valid[:53] + "00",
		"non hex digits": valid[:3] + "zz" + valid[5:],
	} {
		if _, err := ParseTraceContext(in); err == nil {
			t.Errorf("%s: ParseTraceContext(%q) accepted", name, in)
		}
	}
}

func TestTraceContextValid(t *testing.T) {
	if (TraceContext{}).Valid() {
		t.Error("zero context reads valid")
	}
	if !(TraceContext{TraceID: 1, SpanID: 2}).Valid() {
		t.Error("populated context reads invalid")
	}
}

// FuzzTraceContextRoundTrip is the wire-encoding invariant: every context
// this package can emit must parse back to itself, and any string the
// parser accepts must re-encode to the identical bytes.
func FuzzTraceContextRoundTrip(f *testing.F) {
	f.Add(uint64(1), uint64(1))
	f.Add(uint64(0), uint64(0))
	f.Add(^uint64(0), uint64(0x9e3779b97f4a7c15))
	f.Fuzz(func(t *testing.T, trace, span uint64) {
		tc := TraceContext{TraceID: trace, SpanID: span}
		enc := tc.Encode()
		got, err := ParseTraceContext(enc)
		if !tc.Valid() {
			if err == nil {
				t.Fatalf("invalid context %+v encoded to parseable %q", tc, enc)
			}
			return
		}
		if err != nil {
			t.Fatalf("Parse(Encode(%+v)) = %v", tc, err)
		}
		if got != tc {
			t.Fatalf("round trip %+v -> %q -> %+v", tc, enc, got)
		}
		if re := got.Encode(); re != enc {
			t.Fatalf("re-encode %q != %q", re, enc)
		}
	})
}

// FuzzParseTraceContext feeds arbitrary strings to the parser: it must
// never panic, and anything it accepts must survive a re-encode cycle.
func FuzzParseTraceContext(f *testing.F) {
	f.Add(TraceContext{TraceID: 3, SpanID: 5}.Encode())
	f.Add("00-00000000000000000000000000000000-0000000000000000-01")
	f.Add("garbage")
	f.Fuzz(func(t *testing.T, in string) {
		tc, err := ParseTraceContext(in)
		if err != nil {
			return
		}
		if !tc.Valid() {
			t.Fatalf("parser accepted invalid context %+v from %q", tc, in)
		}
		if enc := tc.Encode(); enc != in {
			t.Fatalf("accepted %q re-encodes to %q", in, enc)
		}
	})
}
