package obs

import (
	"strings"
	"testing"
	"time"
)

// sloFixture wires a registry, a zero-cooldown flight recorder, and an
// evaluator with a manual clock.
func sloFixture(t *testing.T, objs []Objective) (*Registry, *FlightRecorder, *SLO) {
	t.Helper()
	reg := NewRegistry()
	flight := NewFlightRecorder(16)
	flight.SetCooldown(0)
	slo, err := NewSLO(reg, flight, objs)
	if err != nil {
		t.Fatal(err)
	}
	return reg, flight, slo
}

func TestSLOLatencyBurn(t *testing.T) {
	reg, flight, slo := sloFixture(t, []Objective{{
		Name:     "p99_request",
		Metric:   "sbgt_serve_request_seconds",
		Quantile: 0.99,
		Target:   0.05,
		Degrade:  true,
	}})
	h := reg.Histogram("sbgt_serve_request_seconds", nil)

	// First Eval is the baseline: no window yet, everything healthy.
	states := slo.Eval()
	if len(states) != 1 || states[0].Breached || states[0].Burn != 0 {
		t.Fatalf("baseline states = %+v", states)
	}

	// A window where every request takes 1s blows a 50ms p99 objective:
	// the bad fraction is ~1, and the budget is 1%, so burn ≈ 100.
	for i := 0; i < 100; i++ {
		h.Observe(1.0)
	}
	states = slo.Eval()
	st := states[0]
	if !st.Breached || st.Burn < 50 {
		t.Fatalf("breach window state = %+v, want breached with burn ≈ 100", st)
	}
	if st.Since.IsZero() {
		t.Fatal("breach onset time not stamped")
	}
	if err := slo.Ready(); err == nil {
		t.Fatal("Ready must fail while a Degrade objective is breached")
	}
	dumps := flight.Anomalies()
	if len(dumps) != 1 || dumps[0].Reason != "slo:p99_request" {
		t.Fatalf("anomaly dumps = %+v, want one slo:p99_request", dumps)
	}

	// Exported gauges mirror the state.
	snap := reg.Snapshot()
	var burn, breached float64
	for _, g := range snap.Gauges {
		switch g.Name {
		case "sbgt_slo_burn_ratio":
			burn = g.Value
		case "sbgt_slo_breached":
			breached = g.Value
		}
	}
	if burn < 50 || breached != 1 {
		t.Fatalf("gauges burn=%v breached=%v", burn, breached)
	}
	if got := reg.Counter("sbgt_slo_breaches_total").Value(); got != 1 {
		t.Fatalf("breach counter = %d, want 1", got)
	}

	// A quiet window recovers: no new observations, burn falls to zero.
	states = slo.Eval()
	if states[0].Breached || !states[0].Since.IsZero() {
		t.Fatalf("post-recovery state = %+v", states[0])
	}
	if err := slo.Ready(); err != nil {
		t.Fatalf("Ready after recovery: %v", err)
	}
}

func TestSLOLatencyWithinTarget(t *testing.T) {
	reg, flight, slo := sloFixture(t, []Objective{{
		Name:     "p99_request",
		Metric:   "sbgt_serve_request_seconds",
		Quantile: 0.99,
		Target:   0.5,
	}})
	h := reg.Histogram("sbgt_serve_request_seconds", nil)
	slo.Eval()
	for i := 0; i < 1000; i++ {
		h.Observe(0.001) // 1ms, far under a 500ms target
	}
	st := slo.Eval()[0]
	if st.Breached || st.Burn > 0.5 {
		t.Fatalf("healthy window reported %+v", st)
	}
	if len(flight.Anomalies()) != 0 {
		t.Fatal("healthy window produced an anomaly dump")
	}
}

func TestSLOSustainedBreachDumpsOnce(t *testing.T) {
	// Edge-triggering: a breach that persists across many evaluation ticks
	// produces exactly one auto-dump (the onset), even with a zero
	// recorder cooldown.
	reg, flight, slo := sloFixture(t, []Objective{{
		Name:     "p99_request",
		Metric:   "sbgt_serve_request_seconds",
		Quantile: 0.9,
		Target:   0.01,
	}})
	h := reg.Histogram("sbgt_serve_request_seconds", nil)
	slo.Eval()
	for tick := 0; tick < 5; tick++ {
		for i := 0; i < 50; i++ {
			h.Observe(1.0)
		}
		if st := slo.Eval()[0]; !st.Breached {
			t.Fatalf("tick %d: not breached: %+v", tick, st)
		}
	}
	if dumps := flight.Anomalies(); len(dumps) != 1 {
		t.Fatalf("sustained breach produced %d dumps, want exactly 1", len(dumps))
	}
	if got := reg.Counter("sbgt_slo_breaches_total").Value(); got != 1 {
		t.Fatalf("breach counter = %d, want 1", got)
	}
}

func TestSLOErrorRatio(t *testing.T) {
	reg, _, slo := sloFixture(t, []Objective{{
		Name:        "error_budget",
		ErrorMetric: "sbgt_serve_tenant_errors_total",
		TotalMetric: "sbgt_serve_tenant_requests_total",
		MaxRatio:    0.1,
	}})
	errs := reg.Counter("sbgt_serve_tenant_errors_total")
	total := reg.Counter("sbgt_serve_tenant_requests_total")
	slo.Eval()

	total.Add(100)
	errs.Add(5) // 5% < 10% budget
	st := slo.Eval()[0]
	if st.Breached || st.Burn < 0.4 || st.Burn > 0.6 {
		t.Fatalf("5%% errors vs 10%% budget = %+v, want burn 0.5", st)
	}

	total.Add(100)
	errs.Add(50) // 50% >> 10%
	st = slo.Eval()[0]
	if !st.Breached || st.Current < 0.49 || st.Current > 0.51 {
		t.Fatalf("50%% error window = %+v", st)
	}
}

func TestSLOBurstObjective(t *testing.T) {
	reg, flight, slo := sloFixture(t, []Objective{{
		Name:        "shed_burst",
		BurstMetric: "sbgt_serve_requests_shed_total",
		Max:         10,
		Degrade:     true,
	}})
	shed := reg.Counter("sbgt_serve_requests_shed_total")
	slo.Eval()

	shed.Add(3)
	if st := slo.Eval()[0]; st.Breached {
		t.Fatalf("3 sheds vs max 10 breached: %+v", st)
	}
	shed.Add(40)
	st := slo.Eval()[0]
	if !st.Breached || st.Current != 40 {
		t.Fatalf("40-shed window = %+v", st)
	}
	if err := slo.Ready(); err == nil || !strings.Contains(err.Error(), "shed_burst") {
		t.Fatalf("Ready = %v, want shed_burst breach", err)
	}
	if dumps := flight.Anomalies(); len(dumps) != 1 || dumps[0].Reason != "slo:shed_burst" {
		t.Fatalf("dumps = %+v", dumps)
	}
}

func TestSLONonDegradeDoesNotAffectReadiness(t *testing.T) {
	reg, _, slo := sloFixture(t, []Objective{{
		Name:        "shed_burst",
		BurstMetric: "sbgt_serve_requests_shed_total",
		Max:         1,
		// Degrade unset: observe-only objective.
	}})
	shed := reg.Counter("sbgt_serve_requests_shed_total")
	slo.Eval()
	shed.Add(100)
	if st := slo.Eval()[0]; !st.Breached {
		t.Fatalf("expected breach: %+v", st)
	}
	if err := slo.Ready(); err != nil {
		t.Fatalf("observe-only breach degraded readiness: %v", err)
	}
}

func TestSLOValidation(t *testing.T) {
	reg := NewRegistry()
	if _, err := NewSLO(nil, nil, nil); err == nil {
		t.Fatal("nil registry accepted")
	}
	bad := []Objective{
		{Name: "no-metric"},
		{Name: "bad-quantile", Metric: "m_seconds", Quantile: 1.5, Target: 0.1},
		{Name: "bad-target", Metric: "m_seconds", Quantile: 0.99},
		{Name: "no-total", ErrorMetric: "e_total", MaxRatio: 0.1},
		{Name: "bad-ratio", ErrorMetric: "e_total", TotalMetric: "t_total"},
		{Name: "bad-max", BurstMetric: "b_total"},
	}
	for _, o := range bad {
		if _, err := NewSLO(reg, nil, []Objective{o}); err == nil {
			t.Errorf("objective %q accepted, want validation error", o.Name)
		}
	}
}

func TestSLOStatesAndStartStop(t *testing.T) {
	reg, _, slo := sloFixture(t, []Objective{{
		Name:        "shed_burst",
		BurstMetric: "sbgt_serve_requests_shed_total",
		Max:         1,
	}})
	_ = reg.Counter("sbgt_serve_requests_shed_total")

	before := time.Now()
	slo.SetClock(func() time.Time { return before })
	if got := slo.States(); len(got) != 1 || got[0].Name != "shed_burst" || got[0].Kind != "burst" {
		t.Fatalf("States = %+v", got)
	}

	stop := slo.Start(time.Millisecond)
	time.Sleep(20 * time.Millisecond)
	stop()
	stop() // idempotent
	if got := slo.States(); len(got) != 1 {
		t.Fatalf("States after Start/stop = %+v", got)
	}
}
