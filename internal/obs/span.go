package obs

import (
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Attr is one span attribute.
type Attr struct {
	Key   string `json:"key"`
	Value any    `json:"value"`
}

// A builds an Attr.
func A(key string, value any) Attr { return Attr{Key: key, Value: value} }

// SpanRecord is one finished span as the tracer stores and exports it.
type SpanRecord struct {
	ID       uint64        `json:"id"`
	ParentID uint64        `json:"parent_id,omitempty"`
	Name     string        `json:"name"`
	Start    time.Time     `json:"start"`
	Duration time.Duration `json:"duration_ns"`
	Attrs    []Attr        `json:"attrs,omitempty"`
}

// Tracer collects finished spans in a bounded buffer. When the buffer is
// full the oldest spans are dropped (and counted), so a long-running
// process keeps the most recent trace window. A nil *Tracer is valid:
// spans started on it still measure time but record nowhere.
type Tracer struct {
	mu      sync.Mutex
	spans   []SpanRecord
	limit   int
	dropped uint64
	nextID  atomic.Uint64
}

// NewTracer returns a tracer retaining at most limit finished spans
// (limit <= 0 selects 4096).
func NewTracer(limit int) *Tracer {
	if limit <= 0 {
		limit = 4096
	}
	return &Tracer{limit: limit}
}

// Start opens a root span. The span measures from now until End; it is
// recorded only if the tracer is non-nil.
func (t *Tracer) Start(name string, attrs ...Attr) *Span {
	s := &Span{tracer: t, name: name, start: time.Now(), attrs: attrs}
	if t != nil {
		s.id = t.nextID.Add(1)
	}
	return s
}

// record appends one finished span, evicting the oldest on overflow.
func (t *Tracer) record(rec SpanRecord) {
	t.mu.Lock()
	if len(t.spans) >= t.limit {
		drop := len(t.spans) - t.limit + 1
		t.dropped += uint64(drop)
		t.spans = append(t.spans[:0], t.spans[drop:]...)
	}
	t.spans = append(t.spans, rec)
	t.mu.Unlock()
}

// Drain returns the finished spans in completion order and clears the
// buffer.
func (t *Tracer) Drain() []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := t.spans
	t.spans = nil
	t.mu.Unlock()
	return out
}

// Dropped reports how many spans were evicted by the buffer bound.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// WriteJSON renders the currently buffered spans as one JSON-lines
// record per span (without draining), the -trace-out file format.
func (t *Tracer) WriteJSON(w io.Writer) error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	spans := append([]SpanRecord(nil), t.spans...)
	t.mu.Unlock()
	enc := json.NewEncoder(w)
	for _, rec := range spans {
		if err := enc.Encode(rec); err != nil {
			return err
		}
	}
	return nil
}

// Span is one named timed region. Spans nest: Child opens a sub-region
// attributed to this span. Spans are not safe for concurrent use; give
// each goroutine its own child.
type Span struct {
	tracer *Tracer
	name   string
	id     uint64
	parent uint64
	start  time.Time
	attrs  []Attr
	ended  bool
}

// Child opens a nested span under s, sharing its tracer.
func (s *Span) Child(name string, attrs ...Attr) *Span {
	c := s.tracer.Start(name, attrs...)
	c.parent = s.id
	return c
}

// SetAttr attaches an attribute to the span before it ends.
func (s *Span) SetAttr(key string, value any) {
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
}

// End closes the span, records it if a tracer is attached, and returns
// the measured duration. End is idempotent; the first call wins.
func (s *Span) End() time.Duration {
	d := time.Since(s.start)
	if s.ended {
		return d
	}
	s.ended = true
	if s.tracer != nil {
		s.tracer.record(SpanRecord{
			ID:       s.id,
			ParentID: s.parent,
			Name:     s.name,
			Start:    s.start,
			Duration: d,
			Attrs:    s.attrs,
		})
	}
	return d
}
