package obs

import (
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Attr is one span attribute.
type Attr struct {
	Key   string `json:"key"`
	Value any    `json:"value"`
}

// A builds an Attr.
func A(key string, value any) Attr { return Attr{Key: key, Value: value} }

// SpanRecord is one finished span as the tracer stores and exports it.
type SpanRecord struct {
	TraceID  uint64        `json:"trace_id,omitempty"`
	ID       uint64        `json:"id"`
	ParentID uint64        `json:"parent_id,omitempty"`
	Name     string        `json:"name"`
	Start    time.Time     `json:"start"`
	Duration time.Duration `json:"duration_ns"`
	Attrs    []Attr        `json:"attrs,omitempty"`
}

// Context returns the record's propagatable identity.
func (r SpanRecord) Context() TraceContext {
	return TraceContext{TraceID: r.TraceID, SpanID: r.ID}
}

// Tracer collects finished spans in a bounded buffer. When the buffer is
// full the oldest spans are dropped (and counted), so a long-running
// process keeps the most recent trace window. A nil *Tracer is valid:
// spans started on it still measure time but record nowhere.
//
// Span and trace IDs are allocated from a per-tracer namespace seeded
// with process entropy, so spans recorded by tracers in different
// processes (driver and executors) can be merged into one trace without
// ID collisions.
type Tracer struct {
	mu      sync.Mutex
	spans   []SpanRecord // ring storage; grows to limit, then wraps
	head    int          // index of the oldest span once len(spans) == limit
	limit   int
	dropped uint64
	drops   *Counter // optional exported drop counter; may be nil
	seed    uint64
	nextID  atomic.Uint64
}

// NewTracer returns a tracer retaining at most limit finished spans
// (limit <= 0 selects 4096).
func NewTracer(limit int) *Tracer {
	if limit <= 0 {
		limit = 4096
	}
	return &Tracer{limit: limit, seed: idSeed()}
}

// SetDropCounter routes buffer evictions into an exported counter
// (conventionally sbgt_obs_spans_dropped_total) in addition to the
// tracer's own Dropped tally. A nil tracer or counter is a no-op.
func (t *Tracer) SetDropCounter(c *Counter) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.drops = c
	t.mu.Unlock()
}

// newID allocates the next scattered span/trace ID (never zero).
func (t *Tracer) newID() uint64 {
	for {
		if id := splitmix64(t.seed + t.nextID.Add(1)); id != 0 {
			return id
		}
	}
}

// Start opens a root span of a new trace. The span measures from now
// until End; it is recorded only if the tracer is non-nil.
func (t *Tracer) Start(name string, attrs ...Attr) *Span {
	s := &Span{tracer: t, name: name, start: time.Now(), attrs: attrs}
	if t != nil {
		s.id = t.newID()
		s.trace = t.newID()
	}
	return s
}

// StartUnder opens a span as a child of an existing trace context —
// typically one propagated from another process (the executor side of an
// RPC) or from another subsystem's live span. An invalid parent context
// degrades to Start: the span opens a fresh trace.
func (t *Tracer) StartUnder(name string, parent TraceContext, attrs ...Attr) *Span {
	s := t.Start(name, attrs...)
	if parent.Valid() {
		s.trace = parent.TraceID
		s.parent = parent.SpanID
	}
	return s
}

// record appends one finished span, evicting the oldest on overflow.
// The buffer is a ring: once full, each new span overwrites the oldest
// in place, keeping the hot path O(1) regardless of the retention limit
// (a copy-down here would move the whole window per span and dominates
// the RPC tracing overhead).
func (t *Tracer) record(rec SpanRecord) {
	t.mu.Lock()
	if len(t.spans) < t.limit {
		t.spans = append(t.spans, rec)
	} else {
		t.spans[t.head] = rec
		t.head++
		if t.head == len(t.spans) {
			t.head = 0
		}
		t.dropped++
		if t.drops != nil {
			t.drops.Add(1)
		}
	}
	t.mu.Unlock()
}

// linearize returns the buffered spans oldest-first as a fresh slice.
// Callers must hold t.mu.
func (t *Tracer) linearize() []SpanRecord {
	if t.head == 0 {
		return append([]SpanRecord(nil), t.spans...)
	}
	out := make([]SpanRecord, 0, len(t.spans))
	out = append(out, t.spans[t.head:]...)
	return append(out, t.spans[:t.head]...)
}

// Absorb records externally produced span records — the completed
// executor spans shipped back in an RPC response trailer — into this
// tracer's buffer, subject to the same retention bound. A nil tracer
// discards them.
func (t *Tracer) Absorb(recs ...SpanRecord) {
	if t == nil {
		return
	}
	for _, rec := range recs {
		t.record(rec)
	}
}

// Drain returns the finished spans in completion order and clears the
// buffer.
func (t *Tracer) Drain() []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := t.linearize()
	t.spans = nil
	t.head = 0
	t.mu.Unlock()
	return out
}

// Snapshot returns a copy of the buffered spans without draining, plus
// the eviction count — the /spans payload.
func (t *Tracer) Snapshot() (spans []SpanRecord, dropped uint64) {
	if t == nil {
		return nil, 0
	}
	t.mu.Lock()
	spans = t.linearize()
	dropped = t.dropped
	t.mu.Unlock()
	return spans, dropped
}

// Dropped reports how many spans were evicted by the buffer bound.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// WriteJSON renders the currently buffered spans as one JSON-lines
// record per span (without draining), the -trace-out file format.
func (t *Tracer) WriteJSON(w io.Writer) error {
	if t == nil {
		return nil
	}
	spans, _ := t.Snapshot()
	enc := json.NewEncoder(w)
	for _, rec := range spans {
		if err := enc.Encode(rec); err != nil {
			return err
		}
	}
	return nil
}

// Span is one named timed region. Spans nest: Child opens a sub-region
// attributed to this span. Spans are not safe for concurrent use; give
// each goroutine its own child.
type Span struct {
	tracer *Tracer
	name   string
	id     uint64
	parent uint64
	trace  uint64
	start  time.Time
	attrs  []Attr
	ended  bool
	rec    SpanRecord // the finished record, valid once ended
}

// Child opens a nested span under s, sharing its tracer and trace.
func (s *Span) Child(name string, attrs ...Attr) *Span {
	c := s.tracer.Start(name, attrs...)
	c.parent = s.id
	c.trace = s.trace
	return c
}

// Context returns the span's propagatable identity, for injection into
// outgoing RPC frames. Spans started on a nil tracer return an invalid
// context (they have no IDs), which receivers treat as "not traced".
func (s *Span) Context() TraceContext {
	return TraceContext{TraceID: s.trace, SpanID: s.id}
}

// SetAttr attaches an attribute to the span before it ends.
func (s *Span) SetAttr(key string, value any) {
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
}

// End closes the span, records it if a tracer is attached, and returns
// the measured duration. End is idempotent; the first call wins.
func (s *Span) End() time.Duration {
	d := time.Since(s.start)
	if s.ended {
		return d
	}
	s.ended = true
	s.rec = SpanRecord{
		TraceID:  s.trace,
		ID:       s.id,
		ParentID: s.parent,
		Name:     s.name,
		Start:    s.start,
		Duration: d,
		Attrs:    s.attrs,
	}
	if s.tracer != nil {
		s.tracer.record(s.rec)
	}
	return d
}

// Record returns the finished span record (for shipping across a process
// boundary). ok is false until End has been called.
func (s *Span) Record() (rec SpanRecord, ok bool) {
	return s.rec, s.ended
}
