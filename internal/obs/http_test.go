package obs

import (
	"io"
	"net/http"
	"strings"
	"testing"
)

func TestServeEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("sbgt_http_test_total").Add(3)
	tr := NewTracer(8)
	tr.Start("probe").End()

	srv, err := Serve("127.0.0.1:0", reg, tr, NopLogger())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) (string, string) {
		t.Helper()
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: read: %v", path, err)
		}
		return string(body), resp.Header.Get("Content-Type")
	}

	body, ctype := get("/metrics")
	if !strings.Contains(body, "sbgt_http_test_total 3") {
		t.Errorf("/metrics missing counter:\n%s", body)
	}
	if !strings.Contains(ctype, "text/plain") {
		t.Errorf("/metrics content type %q", ctype)
	}

	body, _ = get("/healthz")
	if body != "ok\n" {
		t.Errorf("/healthz = %q", body)
	}

	body, ctype = get("/metrics.json")
	if !strings.Contains(body, `"sbgt_http_test_total"`) || !strings.Contains(ctype, "json") {
		t.Errorf("/metrics.json = %q (%s)", body, ctype)
	}

	body, _ = get("/spans")
	if !strings.Contains(body, `"probe"`) {
		t.Errorf("/spans = %q", body)
	}

	// pprof index must answer (it proves the mux wiring, not the profiler).
	body, _ = get("/debug/pprof/")
	if !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/ index did not render: %q", body)
	}

	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestServeBadAddr(t *testing.T) {
	if _, err := Serve("256.0.0.1:bad", nil, nil, nil); err == nil {
		t.Fatal("Serve on an invalid address succeeded")
	}
}

func TestParseLevel(t *testing.T) {
	for _, tc := range []struct {
		in   string
		ok   bool
		want string
	}{
		{"", true, "INFO"}, {"info", true, "INFO"}, {"DEBUG", true, "DEBUG"},
		{"warn", true, "WARN"}, {"warning", true, "WARN"}, {"error", true, "ERROR"},
		{"verbose", false, ""},
	} {
		lv, err := ParseLevel(tc.in)
		if tc.ok != (err == nil) {
			t.Errorf("ParseLevel(%q) err = %v", tc.in, err)
			continue
		}
		if tc.ok && lv.String() != tc.want {
			t.Errorf("ParseLevel(%q) = %s, want %s", tc.in, lv, tc.want)
		}
	}
}

func TestCLILogger(t *testing.T) {
	var sb strings.Builder
	l, err := CLILogger(&sb, "sbgt", "debug")
	if err != nil {
		t.Fatal(err)
	}
	l.Debug("hello", "k", "v")
	out := sb.String()
	if !strings.Contains(out, "component=sbgt") || !strings.Contains(out, "hello") {
		t.Errorf("log line = %q", out)
	}
	if _, err := CLILogger(&sb, "sbgt", "loud"); err == nil {
		t.Error("bad level accepted")
	}
	// The nop logger must swallow output silently.
	OrNop(nil).Error("dropped")
}
