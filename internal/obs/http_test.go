package obs

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

func TestServeEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("sbgt_http_test_total").Add(3)
	tr := NewTracer(8)
	tr.Start("probe").End()

	srv, err := Serve("127.0.0.1:0", reg, tr, nil, NopLogger())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) (string, string) {
		t.Helper()
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: read: %v", path, err)
		}
		return string(body), resp.Header.Get("Content-Type")
	}

	body, ctype := get("/metrics")
	if !strings.Contains(body, "sbgt_http_test_total 3") {
		t.Errorf("/metrics missing counter:\n%s", body)
	}
	// Prometheus scrapers negotiate on the exposition-format version.
	if ctype != "text/plain; version=0.0.4; charset=utf-8" {
		t.Errorf("/metrics content type %q", ctype)
	}

	body, _ = get("/healthz")
	if body != "ok\n" {
		t.Errorf("/healthz = %q", body)
	}

	body, ctype = get("/metrics.json")
	if !strings.Contains(body, `"sbgt_http_test_total"`) {
		t.Errorf("/metrics.json = %q", body)
	}
	if ctype != "application/json" {
		t.Errorf("/metrics.json content type %q", ctype)
	}

	body, ctype = get("/spans")
	if !strings.Contains(body, `"probe"`) || !strings.Contains(body, `"dropped":0`) {
		t.Errorf("/spans = %q", body)
	}
	if ctype != "application/json" {
		t.Errorf("/spans content type %q", ctype)
	}
	var spansPayload struct {
		Dropped uint64       `json:"dropped"`
		Spans   []SpanRecord `json:"spans"`
	}
	if err := json.Unmarshal([]byte(body), &spansPayload); err != nil {
		t.Fatalf("/spans payload not JSON: %v", err)
	}
	if len(spansPayload.Spans) != 1 || spansPayload.Spans[0].Name != "probe" {
		t.Errorf("/spans payload = %+v", spansPayload)
	}

	// pprof index must answer (it proves the mux wiring, not the profiler).
	body, _ = get("/debug/pprof/")
	if !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/ index did not render: %q", body)
	}

	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestServeBadAddr(t *testing.T) {
	if _, err := Serve("256.0.0.1:bad", nil, nil, nil, nil); err == nil {
		t.Fatal("Serve on an invalid address succeeded")
	}
}

func TestParseLevel(t *testing.T) {
	for _, tc := range []struct {
		in   string
		ok   bool
		want string
	}{
		{"", true, "INFO"}, {"info", true, "INFO"}, {"DEBUG", true, "DEBUG"},
		{"warn", true, "WARN"}, {"warning", true, "WARN"}, {"error", true, "ERROR"},
		{"verbose", false, ""},
	} {
		lv, err := ParseLevel(tc.in)
		if tc.ok != (err == nil) {
			t.Errorf("ParseLevel(%q) err = %v", tc.in, err)
			continue
		}
		if tc.ok && lv.String() != tc.want {
			t.Errorf("ParseLevel(%q) = %s, want %s", tc.in, lv, tc.want)
		}
	}
}

func TestCLILogger(t *testing.T) {
	var sb strings.Builder
	l, err := CLILogger(&sb, "sbgt", "debug")
	if err != nil {
		t.Fatal(err)
	}
	l.Debug("hello", "k", "v")
	out := sb.String()
	if !strings.Contains(out, "component=sbgt") || !strings.Contains(out, "hello") {
		t.Errorf("log line = %q", out)
	}
	if _, err := CLILogger(&sb, "sbgt", "loud"); err == nil {
		t.Error("bad level accepted")
	}
	// The nop logger must swallow output silently.
	OrNop(nil).Error("dropped")
}

// TestMuxConcurrentScrape is the race-gate test for the HTTP surface:
// scraping /metrics and /spans while writers pound the registry and
// tracer must be data-race-free and never return a failed request.
func TestMuxConcurrentScrape(t *testing.T) {
	reg := NewRegistry()
	tracer := NewTracer(64)
	tracer.SetDropCounter(reg.Counter("sbgt_obs_spans_dropped_total"))
	srv, err := Serve("127.0.0.1:0", reg, tracer, nil, NopLogger())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	const writers = 4
	const scrapes = 25
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(writers)
	for w := 0; w < writers; w++ {
		go func(w int) {
			defer wg.Done()
			c := reg.Counter("sbgt_scrape_race_total", L("w", string(rune('a'+w))))
			h := reg.Histogram("sbgt_scrape_race_seconds", nil)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				c.Inc()
				h.Observe(float64(i) * 1e-6)
				tracer.Start("race-span", A("w", w)).End()
			}
		}(w)
	}
	for _, path := range []string{"/metrics", "/spans", "/metrics.json"} {
		for i := 0; i < scrapes; i++ {
			resp, err := http.Get("http://" + srv.Addr() + path)
			if err != nil {
				t.Fatalf("GET %s: %v", path, err)
			}
			if _, err := io.ReadAll(resp.Body); err != nil {
				t.Fatalf("GET %s: read: %v", path, err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("GET %s: status %d", path, resp.StatusCode)
			}
		}
	}
	close(stop)
	wg.Wait()
}

func TestReadyzDefault(t *testing.T) {
	// With no readiness func /readyz mirrors /healthz: always 200.
	srv := httptest.NewServer(NewMux(nil, nil, nil))
	defer srv.Close()
	for _, path := range []string{"/healthz", "/readyz"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || string(body) != "ok\n" {
			t.Errorf("GET %s = %d %q, want 200 ok", path, resp.StatusCode, body)
		}
	}
}

func TestReadyzDrainFlipsTo503(t *testing.T) {
	// A draining server flips /readyz to 503 (with the reason in the body)
	// while /healthz stays 200 — the load balancer stops routing but the
	// orchestrator does not kill the process mid-drain.
	var draining atomic.Bool
	ready := func() error {
		if draining.Load() {
			return errors.New("draining")
		}
		return nil
	}
	srv := httptest.NewServer(NewMux(nil, nil, nil, ready))
	defer srv.Close()

	status := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	if code, body := status("/readyz"); code != http.StatusOK || body != "ok\n" {
		t.Fatalf("/readyz before drain = %d %q", code, body)
	}
	draining.Store(true)
	code, body := status("/readyz")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz during drain = %d, want 503", code)
	}
	if !strings.Contains(body, "draining") {
		t.Errorf("/readyz body %q does not carry the reason", body)
	}
	if code, _ := status("/healthz"); code != http.StatusOK {
		t.Errorf("/healthz during drain = %d, want 200 (liveness is not readiness)", code)
	}
	draining.Store(false)
	if code, _ := status("/readyz"); code != http.StatusOK {
		t.Errorf("/readyz after drain = %d, want 200", code)
	}
}

func TestReadyzNilFunc(t *testing.T) {
	// A nil entry in the readiness chain is skipped, not dereferenced.
	srv := httptest.NewServer(NewMux(nil, nil, nil, nil, func() error { return nil }))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/readyz = %d, want 200", resp.StatusCode)
	}
}
