package obs

import "testing"

// TestSpanDropAccounting forces a tiny tracer window, overflows it, and
// checks the two contracts that make a bounded trace buffer usable in
// production: every eviction is counted (tracer tally and the exported
// counter agree), and Assemble still produces a well-formed partial tree
// from whatever survived — surviving children whose parent span is gone
// surface as extra roots instead of vanishing.
func TestSpanDropAccounting(t *testing.T) {
	reg := NewRegistry()
	tr := NewTracer(4)
	tr.SetDropCounter(reg.Counter("sbgt_obs_spans_dropped_total"))

	root := tr.Start("session")
	for i := 0; i < 10; i++ {
		root.Child("stage", A("stage", i)).End()
	}
	root.End()

	// 11 finished spans through a 4-slot window: 7 evicted.
	spans, dropped := tr.Snapshot()
	if len(spans) != 4 {
		t.Fatalf("retained %d spans, want 4", len(spans))
	}
	if dropped != 7 || tr.Dropped() != 7 {
		t.Fatalf("dropped = %d/%d, want 7", dropped, tr.Dropped())
	}
	if got := reg.Counter("sbgt_obs_spans_dropped_total").Value(); got != 7 {
		t.Fatalf("exported drop counter = %d, want 7", got)
	}

	// The window keeps the most recent spans: the last three stages plus
	// the root (which ended last).
	if spans[len(spans)-1].Name != "session" {
		t.Fatalf("newest span = %q, want the root", spans[len(spans)-1].Name)
	}

	// Assemble the partial window: one trace, rooted at the session span,
	// with the surviving stages attached to it.
	traces := Assemble(spans)
	if len(traces) != 1 {
		t.Fatalf("assembled %d traces, want 1", len(traces))
	}
	tree := traces[0]
	if tree.TraceID != root.Context().TraceID {
		t.Fatalf("trace ID = %x, want %x", tree.TraceID, root.Context().TraceID)
	}
	if len(tree.Roots) != 1 || tree.Roots[0].Name != "session" {
		t.Fatalf("roots = %+v, want the single session root", tree.Roots)
	}
	if got := len(tree.Roots[0].Children); got != 3 {
		t.Fatalf("surviving children = %d, want 3", got)
	}
	for _, c := range tree.Roots[0].Children {
		if c.ParentID != tree.Roots[0].ID {
			t.Fatalf("child %q not parented under the root", c.Name)
		}
	}
}

// TestSpanDropOrphanedChildren drops the *root* out of the window (it
// ends first) and checks orphaned children still assemble as roots of a
// partial tree rather than disappearing.
func TestSpanDropOrphanedChildren(t *testing.T) {
	tr := NewTracer(2)
	root := tr.Start("session")
	rootCtx := root.Context()
	root.End() // recorded first, evicted first
	for i := 0; i < 4; i++ {
		c := tr.StartUnder("stage", rootCtx, A("stage", i))
		c.End()
	}
	spans, dropped := tr.Snapshot()
	if len(spans) != 2 || dropped != 3 {
		t.Fatalf("window = %d spans / %d dropped, want 2/3", len(spans), dropped)
	}
	traces := Assemble(spans)
	if len(traces) != 1 {
		t.Fatalf("assembled %d traces, want 1", len(traces))
	}
	// Both survivors lost their parent; each surfaces as a root.
	if got := len(traces[0].Roots); got != 2 {
		t.Fatalf("orphan roots = %d, want 2", got)
	}
	for _, r := range traces[0].Roots {
		if r.Name != "stage" {
			t.Fatalf("unexpected root %q", r.Name)
		}
	}
}
