package obs

import (
	"strings"
	"testing"
	"time"
)

func TestAssembleSingleProcess(t *testing.T) {
	tr := NewTracer(64)
	root := tr.Start("session")
	stage := root.Child("stage", A("stage", 1))
	sel := stage.Child("select")
	sel.End()
	upd := stage.Child("update")
	upd.End()
	stage.End()
	root.End()

	traces := Assemble(tr.Drain())
	if len(traces) != 1 {
		t.Fatalf("assembled %d traces, want 1", len(traces))
	}
	got := traces[0]
	if got.Spans() != 4 {
		t.Fatalf("trace holds %d spans, want 4", got.Spans())
	}
	if len(got.Roots) != 1 || got.Roots[0].Name != "session" {
		t.Fatalf("roots = %+v", got.Roots)
	}
	stageNode := got.Roots[0].Children[0]
	if stageNode.Name != "stage" || len(stageNode.Children) != 2 {
		t.Fatalf("stage node = %+v", stageNode)
	}
	if stageNode.Children[0].Name != "select" || stageNode.Children[1].Name != "update" {
		t.Fatalf("stage children out of order: %s, %s", stageNode.Children[0].Name, stageNode.Children[1].Name)
	}
	if got.Find("select") == nil || got.Find("missing") != nil {
		t.Fatal("Find misbehaved")
	}
}

func TestAssembleCrossProcess(t *testing.T) {
	// Driver and executor tracers are independent (distinct ID seeds); the
	// executor parents its span under the propagated context.
	driver := NewTracer(64)
	executor := NewTracer(64)

	rpc := driver.Start("rpc:update-mul")
	ctx, err := ParseTraceContext(rpc.Context().Encode())
	if err != nil {
		t.Fatal(err)
	}
	remote := executor.StartUnder("exec:update-mul", ctx)
	kernel := remote.Child("kernel")
	kernel.End()
	remote.End()
	// The executor ships its records back; the driver absorbs them.
	rec, ok := remote.Record()
	if !ok {
		t.Fatal("ended span has no record")
	}
	krec, _ := kernel.Record()
	driver.Absorb(rec, krec)
	rpc.End()

	traces := Assemble(driver.Drain())
	if len(traces) != 1 {
		t.Fatalf("assembled %d traces, want 1", len(traces))
	}
	tr := traces[0]
	if tr.TraceID != ctx.TraceID {
		t.Fatalf("trace id %x, want %x", tr.TraceID, ctx.TraceID)
	}
	if len(tr.Roots) != 1 || tr.Roots[0].Name != "rpc:update-mul" {
		t.Fatalf("roots = %+v", tr.Roots)
	}
	execNode := tr.Roots[0].Children[0]
	if execNode.Name != "exec:update-mul" || len(execNode.Children) != 1 || execNode.Children[0].Name != "kernel" {
		t.Fatalf("executor subtree = %+v", execNode)
	}
	// Re-absorbing the same records must not duplicate nodes.
	traces = Assemble([]SpanRecord{rpc.rec, rec, krec}, []SpanRecord{rec, krec})
	if traces[0].Spans() != 3 {
		t.Fatalf("dedup failed: %d spans, want 3", traces[0].Spans())
	}
}

func TestAssembleOrphansAndZeroTrace(t *testing.T) {
	orphan := SpanRecord{TraceID: 42, ID: 7, ParentID: 99, Name: "orphan", Start: time.Unix(10, 0)}
	anon := SpanRecord{Name: "anon", Start: time.Unix(5, 0)}
	anon2 := SpanRecord{Name: "anon2", Start: time.Unix(6, 0)}
	traces := Assemble([]SpanRecord{orphan, anon, anon2})
	if len(traces) != 2 {
		t.Fatalf("assembled %d traces, want 2", len(traces))
	}
	// Oldest first: the zero-trace group starts at t=5.
	if traces[0].TraceID != 0 || len(traces[0].Roots) != 2 {
		t.Fatalf("zero trace = %+v", traces[0])
	}
	if traces[1].TraceID != 42 || len(traces[1].Roots) != 1 || traces[1].Roots[0].Name != "orphan" {
		t.Fatalf("orphan trace = %+v", traces[1])
	}
}

func TestTraceWriteText(t *testing.T) {
	tr := NewTracer(16)
	root := tr.Start("session")
	c := root.Child("stage", A("stage", 2))
	c.End()
	root.End()
	traces := Assemble(tr.Drain())
	var sb strings.Builder
	if err := traces[0].WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"trace ", "session", "  stage", "stage=2"} {
		if !strings.Contains(out, want) {
			t.Errorf("WriteText output missing %q:\n%s", want, out)
		}
	}
}
