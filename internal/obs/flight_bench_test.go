package obs

import (
	"testing"
	"time"
)

// The flight recorder and exemplar path sit on the serve request hot
// path, so their per-call cost is the observability layer's per-request
// overhead (the S1 vs S1R comparison in the bench file measures the same
// thing end to end, but single-run loopback p99 is noisy; these pin the
// per-operation cost directly).

func BenchmarkFlightRecord(b *testing.B) {
	r := NewFlightRecorder(2048)
	ev := Event{Kind: "request", Tenant: "acme", Cohort: "c1", TraceID: 42, Dur: time.Millisecond}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Record(ev)
	}
}

func BenchmarkFlightRecordParallel(b *testing.B) {
	r := NewFlightRecorder(2048)
	ev := Event{Kind: "request", Tenant: "acme", Cohort: "c1", TraceID: 42, Dur: time.Millisecond}
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			r.Record(ev)
		}
	})
}

func BenchmarkFlightRecordNil(b *testing.B) {
	var r *FlightRecorder
	ev := Event{Kind: "request"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Record(ev)
	}
}

func BenchmarkObserveExemplar(b *testing.B) {
	reg := NewRegistry()
	h := reg.Histogram("sbgt_serve_request_seconds", nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.ObserveExemplar(0.004, uint64(i)+1)
	}
}

func BenchmarkObserveNoExemplar(b *testing.B) {
	reg := NewRegistry()
	h := reg.Histogram("sbgt_serve_request_seconds", nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(0.004)
	}
}
