package obs

import (
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("requests_total", L("op", "update"))
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	// Same name+labels returns the same metric.
	if c2 := r.Counter("requests_total", L("op", "update")); c2 != c {
		t.Fatal("re-registration returned a different counter")
	}
	// Label order does not change identity.
	g := r.Gauge("depth", L("a", "1"), L("b", "2"))
	if g2 := r.Gauge("depth", L("b", "2"), L("a", "1")); g2 != g {
		t.Fatal("label order changed gauge identity")
	}
	g.Set(3)
	g.Add(-1.5)
	if got := g.Value(); math.Abs(got-1.5) > 1e-12 {
		t.Fatalf("gauge = %v, want 1.5", got)
	}
}

func TestHistogramBucketPlacement(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.01, 0.05, 0.5, 2, 100} {
		h.Observe(v)
	}
	snap := r.Snapshot()
	if len(snap.Histograms) != 1 {
		t.Fatalf("snapshot has %d histograms, want 1", len(snap.Histograms))
	}
	hs := snap.Histograms[0]
	// Cumulative: <=0.01 holds 0.005 and 0.01; <=0.1 adds 0.05; <=1 adds
	// 0.5; +Inf adds 2 and 100.
	wantCum := []uint64{2, 3, 4, 6}
	for i, bk := range hs.Buckets {
		if bk.Count != wantCum[i] {
			t.Errorf("bucket %d (le %v) = %d, want %d", i, bk.UpperBound, bk.Count, wantCum[i])
		}
	}
	if hs.Count != 6 {
		t.Errorf("count = %d, want 6", hs.Count)
	}
	if math.Abs(hs.Sum-102.565) > 1e-9 {
		t.Errorf("sum = %v, want 102.565", hs.Sum)
	}
	if !math.IsInf(hs.Buckets[len(hs.Buckets)-1].UpperBound, 1) {
		t.Error("last bucket bound is not +Inf")
	}
}

func TestHistogramTime(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("op_seconds", nil)
	stop := h.Time()
	time.Sleep(time.Millisecond)
	d := stop()
	if d < time.Millisecond {
		t.Fatalf("measured %v, want >= 1ms", d)
	}
	if h.Count() != 1 {
		t.Fatalf("count = %d, want 1", h.Count())
	}
	// A nil histogram still measures.
	var nh *Histogram
	stop = nh.Time()
	if d := stop(); d < 0 {
		t.Fatalf("nil histogram measured %v", d)
	}
}

func TestNilRegistryHandsOutDetachedMetrics(t *testing.T) {
	var r *Registry
	c := r.Counter("x_total")
	c.Inc()
	if c.Value() != 1 {
		t.Fatal("detached counter does not count")
	}
	g := r.Gauge("x")
	g.Set(2)
	h := r.Histogram("x_seconds", nil)
	h.Observe(0.1)
	r.GaugeFunc("y", func() float64 { return 1 })
	r.PublishExpvar("nil_registry")
	if snap := r.Snapshot(); len(snap.Counters)+len(snap.Gauges)+len(snap.Histograms) != 0 {
		t.Fatal("nil registry snapshot is not empty")
	}
}

func TestKindConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m")
	defer func() {
		if recover() == nil {
			t.Fatal("registering m as gauge after counter did not panic")
		}
	}()
	r.Gauge("m")
}

func TestInvalidNamePanics(t *testing.T) {
	// Registration must fail fast on anything outside the Prometheus
	// charset [a-zA-Z_:][a-zA-Z0-9_:]*, naming the offender.
	mustPanic := func(want string, fn func()) {
		t.Helper()
		defer func() {
			r := recover()
			if r == nil {
				t.Errorf("registering %q did not panic", want)
				return
			}
			if msg := fmt.Sprint(r); !strings.Contains(msg, want) {
				t.Errorf("panic %q does not name the offender %q", msg, want)
			}
		}()
		fn()
	}
	r := NewRegistry()
	for _, bad := range []string{"", "bad name", "0leading", "dash-ed", "uni·code", "semi;colon"} {
		bad := bad
		mustPanic(fmt.Sprintf("%q", bad), func() { r.Counter(bad) })
		mustPanic(fmt.Sprintf("%q", bad), func() { r.Gauge(bad) })
		mustPanic(fmt.Sprintf("%q", bad), func() { r.Histogram(bad, nil) })
		mustPanic(fmt.Sprintf("%q", bad), func() { r.GaugeFunc(bad, func() float64 { return 0 }) })
	}
	// Label keys share the charset; values are free-form.
	mustPanic(`"bad key"`, func() { r.Counter("ok_metric", L("bad key", "v")) })
	r.Counter("ok_metric", L("ok_key", "free form value ✓"))
	// The valid charset registers cleanly, including leading underscore
	// and colons (recording-rule style names).
	for _, good := range []string{"a", "_hidden", "ns:sub:metric_total", "Xy9_"} {
		r.Counter(good)
	}
}

func TestGaugeFunc(t *testing.T) {
	r := NewRegistry()
	depth := 7
	r.GaugeFunc("queue_depth", func() float64 { return float64(depth) })
	snap := r.Snapshot()
	if len(snap.Gauges) != 1 || math.Abs(snap.Gauges[0].Value-7) > 1e-12 {
		t.Fatalf("gauge func snapshot = %+v", snap.Gauges)
	}
}

// TestRegistryConcurrency is the race-gate conformance test: parallel
// writers on counters, gauges, and histograms (plus snapshots taken
// mid-flight) must be data-race-free, and once writers quiesce the
// snapshot must account for every observation exactly.
func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	const writers = 8
	const perWriter = 2000
	var wg sync.WaitGroup
	stopSnaps := make(chan struct{})
	snapsDone := make(chan struct{})
	go func() {
		defer close(snapsDone)
		for {
			select {
			case <-stopSnaps:
				return
			default:
				// Snapshots race harmlessly with writers; assert only that
				// they do not crash or trip the race detector.
				_ = r.Snapshot()
			}
		}
	}()
	wg.Add(writers)
	for w := 0; w < writers; w++ {
		go func(w int) {
			defer wg.Done()
			// All writers contend on the same three metrics; half also
			// register their own labelled counter to exercise the
			// registration path concurrently.
			c := r.Counter("shared_total")
			g := r.Gauge("shared_level")
			h := r.Histogram("shared_seconds", []float64{0.25, 0.5, 0.75})
			var own *Counter
			if w%2 == 0 {
				own = r.Counter("own_total", L("writer", string(rune('a'+w))))
			}
			for i := 0; i < perWriter; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i%4) / 4.0)
				if own != nil {
					own.Inc()
				}
			}
		}(w)
	}
	wg.Wait()
	close(stopSnaps)
	<-snapsDone

	snap := r.Snapshot()
	byName := map[string]CounterSnapshot{}
	for _, c := range snap.Counters {
		byName[fullName(c.Name, c.Labels)] = c
	}
	if got := byName["shared_total"].Value; got != writers*perWriter {
		t.Errorf("shared_total = %d, want %d", got, writers*perWriter)
	}
	for w := 0; w < writers; w += 2 {
		name := fullName("own_total", []Label{L("writer", string(rune('a' + w)))})
		if got := byName[name].Value; got != perWriter {
			t.Errorf("%s = %d, want %d", name, got, perWriter)
		}
	}
	var gauge *GaugeSnapshot
	for i := range snap.Gauges {
		if snap.Gauges[i].Name == "shared_level" {
			gauge = &snap.Gauges[i]
		}
	}
	if gauge == nil || math.Abs(gauge.Value-writers*perWriter) > 1e-9 {
		t.Errorf("shared_level = %+v, want %d", gauge, writers*perWriter)
	}
	var hist *HistogramSnapshot
	for i := range snap.Histograms {
		if snap.Histograms[i].Name == "shared_seconds" {
			hist = &snap.Histograms[i]
		}
	}
	if hist == nil {
		t.Fatal("shared_seconds missing from snapshot")
	}
	if hist.Count != writers*perWriter {
		t.Errorf("histogram count = %d, want %d", hist.Count, writers*perWriter)
	}
	if last := hist.Buckets[len(hist.Buckets)-1].Count; last != hist.Count {
		t.Errorf("+Inf bucket %d != count %d", last, hist.Count)
	}
	// Each writer observes 0, 0.25, 0.5, 0.75 round-robin: sum is exact
	// in binary floating point, so equality within an epsilon is safe.
	want := float64(writers) * float64(perWriter) / 4 * (0 + 0.25 + 0.5 + 0.75)
	if math.Abs(hist.Sum-want) > 1e-6 {
		t.Errorf("histogram sum = %v, want %v", hist.Sum, want)
	}
	// Cumulative buckets must be monotone.
	for i := 1; i < len(hist.Buckets); i++ {
		if hist.Buckets[i].Count < hist.Buckets[i-1].Count {
			t.Errorf("bucket counts not cumulative at %d: %+v", i, hist.Buckets)
		}
	}
}

func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(1e-6, 10, 4)
	want := []float64{1e-6, 1e-5, 1e-4, 1e-3}
	for i := range want {
		if math.Abs(b[i]-want[i]) > want[i]*1e-12 {
			t.Fatalf("ExpBuckets[%d] = %v, want %v", i, b[i], want[i])
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("ExpBuckets with factor 1 did not panic")
		}
	}()
	ExpBuckets(1, 1, 3)
}
