package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files under testdata/")

// goldenRegistry builds a deterministic registry covering every metric
// kind, label rendering, histogram bucket expansion, and special float
// values.
func goldenRegistry() *Registry {
	r := NewRegistry()
	r.Counter("sbgt_engine_pool_tasks_total").Add(42)
	r.Counter("sbgt_posterior_ops_total", L("backend", "dense"), L("op", "update")).Add(7)
	r.Counter("sbgt_posterior_ops_total", L("backend", "sparse"), L("op", "update")).Add(3)
	r.Gauge("sbgt_engine_pool_inflight").Set(2)
	r.Gauge("sbgt_cluster_shard_states", L("executor", "0")).Set(131072)
	r.GaugeFunc("sbgt_engine_pool_queue_depth", func() float64 { return 5 })
	h := r.Histogram("sbgt_posterior_op_seconds", []float64{0.001, 0.01, 0.1},
		L("backend", "dense"), L("op", "update"))
	for _, v := range []float64{0.0005, 0.002, 0.002, 0.05, 0.5} {
		h.Observe(v)
	}
	return r
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s mismatch\n--- got ---\n%s--- want ---\n%s", name, got, want)
	}
}

func TestPrometheusGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRegistry().Snapshot().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "metrics.prom.golden", buf.Bytes())
}

func TestJSONGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRegistry().Snapshot().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	// The golden must also be valid JSON round-trippable into a Snapshot.
	var back Snapshot
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("JSON snapshot does not round-trip: %v", err)
	}
	if len(back.Counters) != 3 || len(back.Gauges) != 3 || len(back.Histograms) != 1 {
		t.Fatalf("round-tripped snapshot has %d/%d/%d metrics",
			len(back.Counters), len(back.Gauges), len(back.Histograms))
	}
	checkGolden(t, "metrics.json.golden", buf.Bytes())
}

func TestSnapshotDeterministicOrder(t *testing.T) {
	a, b := goldenRegistry().Snapshot(), goldenRegistry().Snapshot()
	aj, _ := json.Marshal(a) //lint:allow errcheck test-only marshal of a known-good value
	bj, _ := json.Marshal(b) //lint:allow errcheck test-only marshal of a known-good value
	if !bytes.Equal(aj, bj) {
		t.Error("two snapshots of identical registries differ")
	}
}

func TestPublishExpvar(t *testing.T) {
	r := goldenRegistry()
	r.PublishExpvar("sbgt_test_registry")
	// Double-publish must not panic.
	r.PublishExpvar("sbgt_test_registry")
}
