package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"sync"
	"sync/atomic"
	"time"
)

// Event is one structured flight-recorder entry: a request summary, a
// stage transition, an eviction, a shed, an RPC failure. Events carry the
// identities an operator needs after the fact — which tenant, which
// cohort, which trace — so an anomaly dump is directly actionable.
type Event struct {
	Time    time.Time     `json:"t"`
	Kind    string        `json:"kind"`
	Tenant  string        `json:"tenant,omitempty"`
	Cohort  string        `json:"cohort,omitempty"`
	TraceID uint64        `json:"trace_id,omitempty"`
	Dur     time.Duration `json:"dur_ns,omitempty"`
	Err     string        `json:"err,omitempty"`
	Attrs   []Attr        `json:"attrs,omitempty"`
}

// flightSlot pairs an event with its global sequence number so a
// snapshot taken concurrently with writers can be ordered without a
// writer-side lock.
type flightSlot struct {
	seq uint64
	ev  Event
}

// AnomalyDump is one auto-captured ring snapshot: the trigger reason,
// when it fired, and the events that led up to it. Dumps are retained in
// memory (most recent last) and served on /debug/flight so the window
// around an incident survives the incident. ID is the anomaly's handle
// across the forensic surfaces: the same ID names the dump here, the
// profile bundle the profiler freezes for it, and the sbgt-top line an
// operator starts from.
type AnomalyDump struct {
	ID        string    `json:"id"`
	Time      time.Time `json:"t"`
	Reason    string    `json:"reason"`
	Attrs     []Attr    `json:"attrs,omitempty"`
	Coalesced uint64    `json:"coalesced,omitempty"` // triggers suppressed by the cooldown since this dump
	Events    []Event   `json:"events"`
}

// FlightSnapshot is the /debug/flight payload: the current event window,
// how many older events the ring bound has discarded, and the retained
// anomaly dumps.
type FlightSnapshot struct {
	Dropped   uint64        `json:"dropped"`
	Events    []Event       `json:"events"`
	Anomalies []AnomalyDump `json:"anomalies"`
}

// maxAnomalyDumps bounds the retained anomaly history. Old dumps fall
// off the front; the newest is what sbgt-top and an operator want first.
const maxAnomalyDumps = 4

// FlightRecorder is a bounded ring of recent events. Record is lock-free
// (one atomic increment plus one atomic pointer store), so it can sit on
// the request hot path; Snapshot and the anomaly machinery take a mutex
// but run only on scrapes and triggers. A nil *FlightRecorder is valid
// and discards everything, like the rest of this package.
type FlightRecorder struct {
	slots []atomic.Pointer[flightSlot]
	next  atomic.Uint64

	mu        sync.Mutex
	anomalies []AnomalyDump
	anomSeq   uint64
	lastFire  map[string]time.Time
	cooldown  time.Duration
	clock     func() time.Time
	onDump    []func(AnomalyDump)

	mEvents   *Counter
	mDumps    *Counter
	mCoalesce *Counter
}

// DefaultAnomalyCooldown spaces auto-dumps for the same trigger reason:
// a sustained incident produces one dump plus a coalesced-trigger count,
// not a dump per evaluation tick.
const DefaultAnomalyCooldown = time.Minute

// NewFlightRecorder returns a recorder retaining the most recent limit
// events (limit <= 0 selects 2048).
func NewFlightRecorder(limit int) *FlightRecorder {
	if limit <= 0 {
		limit = 2048
	}
	return &FlightRecorder{
		slots:    make([]atomic.Pointer[flightSlot], limit),
		lastFire: make(map[string]time.Time),
		cooldown: DefaultAnomalyCooldown,
		clock:    time.Now,
	}
}

// Instrument routes recorder activity into reg:
// sbgt_obs_flight_events_total, sbgt_obs_flight_dumps_total, and
// sbgt_obs_flight_dumps_coalesced_total. Nil recorder or registry is a
// no-op.
func (r *FlightRecorder) Instrument(reg *Registry) {
	if r == nil || reg == nil {
		return
	}
	r.mu.Lock()
	r.mEvents = reg.Counter("sbgt_obs_flight_events_total")
	r.mDumps = reg.Counter("sbgt_obs_flight_dumps_total")
	r.mCoalesce = reg.Counter("sbgt_obs_flight_dumps_coalesced_total")
	r.mu.Unlock()
}

// SetCooldown overrides the per-reason anomaly dump spacing (tests use a
// zero clock step with a tiny cooldown).
func (r *FlightRecorder) SetCooldown(d time.Duration) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.cooldown = d
	r.mu.Unlock()
}

// SetClock overrides time.Now for tests.
func (r *FlightRecorder) SetClock(clock func() time.Time) {
	if r == nil || clock == nil {
		return
	}
	r.mu.Lock()
	r.clock = clock
	r.mu.Unlock()
}

// OnDump registers a callback invoked (under the recorder's lock, keep it
// cheap — hand real work to a channel) for every anomaly dump. Hooks
// accumulate: the logger and the continuous profiler both observe the
// same dump stream.
func (r *FlightRecorder) OnDump(fn func(AnomalyDump)) {
	if r == nil || fn == nil {
		return
	}
	r.mu.Lock()
	r.onDump = append(r.onDump, fn)
	r.mu.Unlock()
}

// Record appends one event, overwriting the oldest when the ring is
// full. Safe for concurrent use and lock-free. Time defaults to now.
func (r *FlightRecorder) Record(ev Event) {
	if r == nil {
		return
	}
	if ev.Time.IsZero() {
		ev.Time = time.Now()
	}
	seq := r.next.Add(1)
	r.slots[(seq-1)%uint64(len(r.slots))].Store(&flightSlot{seq: seq, ev: ev})
	if r.mEvents != nil {
		r.mEvents.Inc()
	}
}

// Len reports how many events are currently retained.
func (r *FlightRecorder) Len() int {
	if r == nil {
		return 0
	}
	n := r.next.Load()
	if n > uint64(len(r.slots)) {
		return len(r.slots)
	}
	return int(n)
}

// events returns the retained events oldest-first. A snapshot racing
// writers can miss an in-flight store or see a slot from the next lap;
// sorting by sequence and dropping out-of-window entries keeps the
// result consistent without stalling Record.
func (r *FlightRecorder) events() (out []Event, dropped uint64) {
	n := r.next.Load()
	if n > uint64(len(r.slots)) {
		dropped = n - uint64(len(r.slots))
	}
	type seqEv struct {
		seq uint64
		ev  Event
	}
	tmp := make([]seqEv, 0, len(r.slots))
	for i := range r.slots {
		if s := r.slots[i].Load(); s != nil && s.seq <= n {
			tmp = append(tmp, seqEv{s.seq, s.ev})
		}
	}
	// Insertion sort by sequence: the ring is nearly ordered already (one
	// rotation), and windows are small.
	for i := 1; i < len(tmp); i++ {
		for j := i; j > 0 && tmp[j].seq < tmp[j-1].seq; j-- {
			tmp[j], tmp[j-1] = tmp[j-1], tmp[j]
		}
	}
	out = make([]Event, len(tmp))
	for i, s := range tmp {
		out[i] = s.ev
	}
	return out, dropped
}

// Snapshot captures the current window plus the retained anomaly dumps —
// the /debug/flight payload.
func (r *FlightRecorder) Snapshot() *FlightSnapshot {
	if r == nil {
		return &FlightSnapshot{Events: []Event{}, Anomalies: []AnomalyDump{}}
	}
	events, dropped := r.events()
	r.mu.Lock()
	anoms := append([]AnomalyDump(nil), r.anomalies...)
	r.mu.Unlock()
	if anoms == nil {
		anoms = []AnomalyDump{}
	}
	return &FlightSnapshot{Dropped: dropped, Events: events, Anomalies: anoms}
}

// TriggerAnomaly captures an auto-dump for the given reason: the current
// ring contents are frozen into an AnomalyDump and retained. Triggers for
// the same reason within the cooldown are coalesced into the previous
// dump's Coalesced count instead of producing another dump, so a breach
// that persists across evaluation ticks yields exactly one dump. Returns
// true when a new dump was captured.
func (r *FlightRecorder) TriggerAnomaly(reason string, attrs ...Attr) bool {
	if r == nil {
		return false
	}
	r.mu.Lock()
	now := r.clock()
	if last, ok := r.lastFire[reason]; ok && now.Sub(last) < r.cooldown {
		for i := len(r.anomalies) - 1; i >= 0; i-- {
			if r.anomalies[i].Reason == reason {
				r.anomalies[i].Coalesced++
				break
			}
		}
		if r.mCoalesce != nil {
			r.mCoalesce.Inc()
		}
		r.mu.Unlock()
		return false
	}
	r.lastFire[reason] = now
	r.anomSeq++
	events, _ := r.events()
	dump := AnomalyDump{
		ID:     fmt.Sprintf("a%06d", r.anomSeq),
		Time:   now, Reason: reason, Attrs: attrs, Events: events,
	}
	r.anomalies = append(r.anomalies, dump)
	if len(r.anomalies) > maxAnomalyDumps {
		r.anomalies = append(r.anomalies[:0], r.anomalies[len(r.anomalies)-maxAnomalyDumps:]...)
	}
	if r.mDumps != nil {
		r.mDumps.Inc()
	}
	for _, fn := range r.onDump {
		fn(dump)
	}
	r.mu.Unlock()
	return true
}

// Anomalies returns the retained dumps, oldest first.
func (r *FlightRecorder) Anomalies() []AnomalyDump {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]AnomalyDump(nil), r.anomalies...)
}

// WriteJSON renders the full snapshot as indented JSON — the SIGQUIT
// dump format, identical to the /debug/flight body.
func (r *FlightRecorder) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// LogDumps wires OnDump to log each anomaly dump's headline (reason,
// event count, trigger attrs) through log at error level — the "a dump
// happened, go look at /debug/flight" operator signal.
func (r *FlightRecorder) LogDumps(log *slog.Logger) {
	if r == nil || log == nil {
		return
	}
	r.OnDump(func(d AnomalyDump) {
		args := []any{"anomaly", d.ID, "reason", d.Reason, "events", len(d.Events)}
		for _, a := range d.Attrs {
			args = append(args, a.Key, a.Value)
		}
		log.Error("obs: anomaly auto-dump captured", args...)
	})
}

// FlightScope pre-binds tenant and cohort identity onto recorded events —
// the shape session-level instrumentation wants, where the recorder is
// shared but every event belongs to one cohort. A nil scope discards.
type FlightScope struct {
	rec    *FlightRecorder
	tenant string
	cohort string
}

// Scope returns a recorder view that stamps tenant and cohort onto every
// event. A nil recorder returns a nil (safe to use) scope.
func (r *FlightRecorder) Scope(tenant, cohort string) *FlightScope {
	if r == nil {
		return nil
	}
	return &FlightScope{rec: r, tenant: tenant, cohort: cohort}
}

// Event records one event under the scope's identity.
func (s *FlightScope) Event(ev Event) {
	if s == nil {
		return
	}
	if ev.Tenant == "" {
		ev.Tenant = s.tenant
	}
	if ev.Cohort == "" {
		ev.Cohort = s.cohort
	}
	s.rec.Record(ev)
}

// Recorder exposes the underlying recorder (nil for a nil scope).
func (s *FlightScope) Recorder() *FlightRecorder {
	if s == nil {
		return nil
	}
	return s.rec
}
