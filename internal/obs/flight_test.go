package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestFlightRecorderRingBound(t *testing.T) {
	r := NewFlightRecorder(8)
	for i := 0; i < 20; i++ {
		r.Record(Event{Kind: fmt.Sprintf("ev%d", i)})
	}
	snap := r.Snapshot()
	if len(snap.Events) != 8 {
		t.Fatalf("retained %d events, want 8", len(snap.Events))
	}
	if snap.Dropped != 12 {
		t.Fatalf("dropped = %d, want 12", snap.Dropped)
	}
	// The window is the most recent 8, oldest first.
	for i, ev := range snap.Events {
		if want := fmt.Sprintf("ev%d", 12+i); ev.Kind != want {
			t.Fatalf("events[%d].Kind = %q, want %q", i, ev.Kind, want)
		}
	}
	if r.Len() != 8 {
		t.Fatalf("Len = %d, want 8", r.Len())
	}
}

func TestFlightRecorderPartialWindow(t *testing.T) {
	r := NewFlightRecorder(16)
	r.Record(Event{Kind: "a"})
	r.Record(Event{Kind: "b"})
	snap := r.Snapshot()
	if len(snap.Events) != 2 || snap.Dropped != 0 {
		t.Fatalf("events=%d dropped=%d, want 2/0", len(snap.Events), snap.Dropped)
	}
	if snap.Events[0].Kind != "a" || snap.Events[1].Kind != "b" {
		t.Fatalf("order = %q,%q", snap.Events[0].Kind, snap.Events[1].Kind)
	}
	if snap.Events[0].Time.IsZero() {
		t.Fatal("Record did not default Time")
	}
}

func TestFlightRecorderConcurrent(t *testing.T) {
	r := NewFlightRecorder(64)
	r.Instrument(NewRegistry())
	var writers sync.WaitGroup
	stop := make(chan struct{})
	readerDone := make(chan struct{})
	for g := 0; g < 8; g++ {
		writers.Add(1)
		go func(g int) {
			defer writers.Done()
			for i := 0; i < 500; i++ {
				r.Record(Event{Kind: "w", Attrs: []Attr{A("g", g), A("i", i)}})
			}
		}(g)
	}
	// A concurrent reader snapshots and triggers dumps while writers lap
	// the ring; the point is that nothing tears or panics under race.
	go func() {
		defer close(readerDone)
		for {
			select {
			case <-stop:
				return
			default:
				_ = r.Snapshot()
				r.TriggerAnomaly("race")
			}
		}
	}()
	writers.Wait()
	close(stop)
	<-readerDone
	if got := r.Len(); got != 64 {
		t.Fatalf("Len = %d, want 64", got)
	}
	snap := r.Snapshot()
	if len(snap.Events) != 64 || snap.Dropped != 8*500-64 {
		t.Fatalf("events=%d dropped=%d, want 64/%d", len(snap.Events), snap.Dropped, 8*500-64)
	}
}

func TestTriggerAnomalyCooldownCoalescing(t *testing.T) {
	r := NewFlightRecorder(8)
	now := time.Unix(1000, 0)
	r.SetClock(func() time.Time { return now })
	r.SetCooldown(time.Minute)
	r.Record(Event{Kind: "request", Tenant: "acme", Cohort: "c1", TraceID: 0xabc})

	if !r.TriggerAnomaly("p99_breach", A("burn", 2.5)) {
		t.Fatal("first trigger should dump")
	}
	// Repeats inside the cooldown coalesce into the first dump.
	for i := 0; i < 3; i++ {
		now = now.Add(10 * time.Second)
		if r.TriggerAnomaly("p99_breach") {
			t.Fatalf("trigger %d inside cooldown should coalesce", i)
		}
	}
	// A different reason is independent.
	if !r.TriggerAnomaly("shed_burst") {
		t.Fatal("distinct reason should dump")
	}
	// Past the cooldown the same reason dumps again.
	now = now.Add(2 * time.Minute)
	if !r.TriggerAnomaly("p99_breach") {
		t.Fatal("trigger after cooldown should dump")
	}

	dumps := r.Anomalies()
	if len(dumps) != 3 {
		t.Fatalf("retained %d dumps, want 3", len(dumps))
	}
	first := dumps[0]
	if first.Reason != "p99_breach" || first.Coalesced != 3 {
		t.Fatalf("first dump = %q coalesced=%d, want p99_breach/3", first.Reason, first.Coalesced)
	}
	if len(first.Events) != 1 || first.Events[0].Tenant != "acme" || first.Events[0].TraceID != 0xabc {
		t.Fatalf("dump did not freeze the ring: %+v", first.Events)
	}
	if len(first.Attrs) != 1 || first.Attrs[0].Key != "burn" {
		t.Fatalf("dump attrs = %+v", first.Attrs)
	}
}

func TestAnomalyDumpRetentionBound(t *testing.T) {
	r := NewFlightRecorder(4)
	r.SetCooldown(0)
	for i := 0; i < maxAnomalyDumps+3; i++ {
		if !r.TriggerAnomaly(fmt.Sprintf("reason%d", i)) {
			t.Fatalf("trigger %d suppressed with zero cooldown", i)
		}
	}
	dumps := r.Anomalies()
	if len(dumps) != maxAnomalyDumps {
		t.Fatalf("retained %d dumps, want %d", len(dumps), maxAnomalyDumps)
	}
	if got, want := dumps[len(dumps)-1].Reason, fmt.Sprintf("reason%d", maxAnomalyDumps+2); got != want {
		t.Fatalf("newest dump = %q, want %q", got, want)
	}
}

func TestFlightScopeStamping(t *testing.T) {
	r := NewFlightRecorder(8)
	sc := r.Scope("acme", "c42")
	sc.Event(Event{Kind: "stage_propose"})
	sc.Event(Event{Kind: "request", Tenant: "explicit", Cohort: "other"})
	snap := r.Snapshot()
	if len(snap.Events) != 2 {
		t.Fatalf("recorded %d events, want 2", len(snap.Events))
	}
	if ev := snap.Events[0]; ev.Tenant != "acme" || ev.Cohort != "c42" {
		t.Fatalf("scope did not stamp identity: %+v", ev)
	}
	if ev := snap.Events[1]; ev.Tenant != "explicit" || ev.Cohort != "other" {
		t.Fatalf("scope overwrote explicit identity: %+v", ev)
	}
	if sc.Recorder() != r {
		t.Fatal("Recorder() lost the underlying recorder")
	}
}

func TestFlightNilSafety(t *testing.T) {
	var r *FlightRecorder
	r.Record(Event{Kind: "x"})
	r.Instrument(NewRegistry())
	r.SetCooldown(time.Second)
	r.SetClock(time.Now)
	r.OnDump(func(AnomalyDump) {})
	r.LogDumps(NopLogger())
	if r.TriggerAnomaly("x") {
		t.Fatal("nil recorder dumped")
	}
	if r.Len() != 0 || len(r.Anomalies()) != 0 {
		t.Fatal("nil recorder retained state")
	}
	snap := r.Snapshot()
	if snap == nil || snap.Events == nil || snap.Anomalies == nil {
		t.Fatal("nil recorder snapshot must be non-nil and JSON-friendly")
	}
	if err := r.WriteJSON(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}

	var sc *FlightScope
	sc.Event(Event{Kind: "x"})
	if sc.Recorder() != nil {
		t.Fatal("nil scope has a recorder")
	}
	if (*FlightRecorder)(nil).Scope("t", "c") != nil {
		t.Fatal("nil recorder scope must be nil")
	}
}

func TestFlightWriteJSONShape(t *testing.T) {
	r := NewFlightRecorder(4)
	r.Record(Event{Kind: "evict", Tenant: "t1", Cohort: "c1"})
	r.TriggerAnomaly("absorb_failure", A("err", "boom"))
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var snap FlightSnapshot
	if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
		t.Fatalf("dump is not valid JSON: %v", err)
	}
	if len(snap.Events) != 1 || snap.Events[0].Kind != "evict" {
		t.Fatalf("round-tripped events = %+v", snap.Events)
	}
	if len(snap.Anomalies) != 1 || snap.Anomalies[0].Reason != "absorb_failure" {
		t.Fatalf("round-tripped anomalies = %+v", snap.Anomalies)
	}
}

func TestFlightInstrumentCounters(t *testing.T) {
	reg := NewRegistry()
	r := NewFlightRecorder(4)
	r.Instrument(reg)
	r.SetCooldown(time.Hour)
	r.Record(Event{Kind: "a"})
	r.Record(Event{Kind: "b"})
	r.TriggerAnomaly("x")
	r.TriggerAnomaly("x") // coalesced
	if got := reg.Counter("sbgt_obs_flight_events_total").Value(); got != 2 {
		t.Fatalf("events counter = %d, want 2", got)
	}
	if got := reg.Counter("sbgt_obs_flight_dumps_total").Value(); got != 1 {
		t.Fatalf("dumps counter = %d, want 1", got)
	}
	if got := reg.Counter("sbgt_obs_flight_dumps_coalesced_total").Value(); got != 1 {
		t.Fatalf("coalesced counter = %d, want 1", got)
	}
}
