package obs

import (
	"fmt"
	"math"
	"sync"
	"time"
)

// Objective is one service-level objective evaluated against the metric
// registry. Exactly one of the three shapes should be configured:
//
//   - Latency: Metric names a histogram; the fraction of observations
//     above Target seconds in each evaluation window must stay below
//     1-Quantile (e.g. Quantile 0.99, Target 0.05 reads "p99 propose
//     < 50ms"). Burn is badFraction/(1-Quantile).
//   - Error rate: ErrorMetric and TotalMetric name counters; the window
//     delta ratio must stay below MaxRatio. Burn is ratio/MaxRatio.
//   - Burst: BurstMetric names a counter whose per-window delta must stay
//     below Max (e.g. a shed storm). Burn is delta/Max.
//
// Burn > 1 is a breach. An objective with Degrade set feeds /readyz:
// while breached, SLO.Ready returns an error, which a load balancer sees
// as 503.
type Objective struct {
	Name string

	// Latency shape.
	Metric   string
	Labels   []Label
	Quantile float64
	Target   float64 // seconds

	// Error-rate shape.
	ErrorMetric string
	ErrorLabels []Label
	TotalMetric string
	TotalLabels []Label
	MaxRatio    float64

	// Burst shape.
	BurstMetric string
	BurstLabels []Label
	Max         float64

	// Degrade feeds breaches into readiness.
	Degrade bool
}

// kind discriminates the configured shape.
func (o *Objective) kind() string {
	switch {
	case o.Metric != "":
		return "latency"
	case o.ErrorMetric != "":
		return "errors"
	case o.BurstMetric != "":
		return "burst"
	default:
		return "invalid"
	}
}

func (o *Objective) validate() error {
	switch o.kind() {
	case "latency":
		if !(o.Quantile > 0 && o.Quantile < 1) {
			return fmt.Errorf("obs: objective %q: quantile %v outside (0,1)", o.Name, o.Quantile)
		}
		if !(o.Target > 0) {
			return fmt.Errorf("obs: objective %q: target %v must be positive", o.Name, o.Target)
		}
	case "errors":
		if o.TotalMetric == "" {
			return fmt.Errorf("obs: objective %q: error-rate objective needs TotalMetric", o.Name)
		}
		if !(o.MaxRatio > 0) {
			return fmt.Errorf("obs: objective %q: MaxRatio %v must be positive", o.Name, o.MaxRatio)
		}
	case "burst":
		if !(o.Max > 0) {
			return fmt.Errorf("obs: objective %q: Max %v must be positive", o.Name, o.Max)
		}
	default:
		return fmt.Errorf("obs: objective %q configures no metric", o.Name)
	}
	return nil
}

// ObjectiveState is one objective's evaluated state.
type ObjectiveState struct {
	Name     string    `json:"name"`
	Kind     string    `json:"kind"`
	Burn     float64   `json:"burn"`     // budget consumption rate; > 1 is a breach
	Current  float64   `json:"current"`  // bad fraction / error ratio / burst delta
	Breached bool      `json:"breached"`
	Since    time.Time `json:"since,omitempty"` // when the current breach began
}

// SLO evaluates objectives against a registry on a fixed cadence. Each
// Eval diffs the current snapshot against the previous one, so the
// evaluation interval is the burn window. Breach transitions are
// edge-triggered into the flight recorder (one anomaly auto-dump per
// onset, coalesced by the recorder's cooldown while the breach holds),
// and the per-objective burn/breach state is republished as gauges
// (sbgt_slo_burn_ratio, sbgt_slo_breached) so any metrics consumer —
// including sbgt-top — sees SLO health without a dedicated endpoint.
type SLO struct {
	reg    *Registry
	flight *FlightRecorder
	objs   []Objective

	mu     sync.Mutex
	prev   *Snapshot
	states []ObjectiveState
	clock  func() time.Time

	burn    []*Gauge
	breach  []*Gauge
	mBreach *Counter
}

// NewSLO builds an evaluator over reg. flight may be nil (no auto-dumps).
func NewSLO(reg *Registry, flight *FlightRecorder, objs []Objective) (*SLO, error) {
	if reg == nil {
		return nil, fmt.Errorf("obs: SLO needs a registry")
	}
	s := &SLO{
		reg:     reg,
		flight:  flight,
		objs:    append([]Objective(nil), objs...),
		states:  make([]ObjectiveState, len(objs)),
		clock:   time.Now,
		burn:    make([]*Gauge, len(objs)),
		breach:  make([]*Gauge, len(objs)),
		mBreach: reg.Counter("sbgt_slo_breaches_total"),
	}
	for i := range s.objs {
		o := &s.objs[i]
		if err := o.validate(); err != nil {
			return nil, err
		}
		s.states[i] = ObjectiveState{Name: o.Name, Kind: o.kind()}
		s.burn[i] = reg.Gauge("sbgt_slo_burn_ratio", L("objective", o.Name))
		s.breach[i] = reg.Gauge("sbgt_slo_breached", L("objective", o.Name))
	}
	return s, nil
}

// SetClock overrides time.Now for tests.
func (s *SLO) SetClock(clock func() time.Time) {
	s.mu.Lock()
	s.clock = clock
	s.mu.Unlock()
}

// findHistogram locates a histogram snapshot by name and label subset.
func findHistogram(snap *Snapshot, name string, labels []Label) *HistogramSnapshot {
	for i := range snap.Histograms {
		if snap.Histograms[i].Name == name && labelsMatch(snap.Histograms[i].Labels, labels) {
			return &snap.Histograms[i]
		}
	}
	return nil
}

// findCounter locates a counter snapshot by name and label subset.
func findCounter(snap *Snapshot, name string, labels []Label) (uint64, bool) {
	for i := range snap.Counters {
		if snap.Counters[i].Name == name && labelsMatch(snap.Counters[i].Labels, labels) {
			return snap.Counters[i].Value, true
		}
	}
	return 0, false
}

// labelsMatch reports whether have contains every wanted pair.
func labelsMatch(have, want []Label) bool {
	for _, w := range want {
		found := false
		for _, h := range have {
			if h.Key == w.Key && h.Value == w.Value {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return len(have) == len(want) || len(want) == 0 && len(have) == 0 || len(want) > 0
}

// countAbove estimates how many of the histogram's cumulative-bucket
// observations exceeded the target, interpolating linearly inside the
// bucket the target falls in (the standard Prometheus quantile-estimate
// assumption run in reverse).
func countAbove(h *HistogramSnapshot, target float64) float64 {
	if len(h.Buckets) == 0 {
		return 0
	}
	total := float64(h.Buckets[len(h.Buckets)-1].Count)
	var below float64
	lowerBound, lowerCount := 0.0, 0.0
	for _, b := range h.Buckets {
		if math.IsInf(b.UpperBound, 1) || b.UpperBound >= target {
			// Interpolate within [lowerBound, b.UpperBound).
			width := b.UpperBound - lowerBound
			inBucket := float64(b.Count) - lowerCount
			if math.IsInf(b.UpperBound, 1) || width <= 0 {
				below = lowerCount
			} else {
				below = lowerCount + inBucket*(target-lowerBound)/width
			}
			break
		}
		lowerBound, lowerCount = b.UpperBound, float64(b.Count)
		below = lowerCount
	}
	if above := total - below; above > 0 {
		return above
	}
	return 0
}

// deltaHistogram subtracts prev's cumulative buckets from cur's,
// returning a window-local histogram snapshot. A nil prev means "since
// process start".
func deltaHistogram(cur, prev *HistogramSnapshot) HistogramSnapshot {
	out := HistogramSnapshot{Name: cur.Name, Labels: cur.Labels, Count: cur.Count, Sum: cur.Sum}
	out.Buckets = append([]BucketSnapshot(nil), cur.Buckets...)
	if prev == nil {
		return out
	}
	out.Count -= prev.Count
	out.Sum -= prev.Sum
	for i := range out.Buckets {
		if i < len(prev.Buckets) && out.Buckets[i].Count >= prev.Buckets[i].Count {
			out.Buckets[i].Count -= prev.Buckets[i].Count
		}
	}
	return out
}

// Eval runs one evaluation pass and returns the refreshed states. The
// first call establishes the baseline snapshot and reports every
// objective healthy (there is no window yet).
func (s *SLO) Eval() []ObjectiveState {
	snap := s.reg.Snapshot()
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.clock()
	prev := s.prev
	s.prev = snap

	for i := range s.objs {
		o := &s.objs[i]
		st := &s.states[i]
		burn, current := 0.0, 0.0
		if prev != nil {
			switch o.kind() {
			case "latency":
				cur := findHistogram(snap, o.Metric, o.Labels)
				if cur != nil {
					d := deltaHistogram(cur, findHistogram(prev, o.Metric, o.Labels))
					if d.Count > 0 {
						current = countAbove(&d, o.Target) / float64(d.Count)
						burn = current / (1 - o.Quantile)
					}
				}
			case "errors":
				ce, oke := findCounter(snap, o.ErrorMetric, o.ErrorLabels)
				ct, okt := findCounter(snap, o.TotalMetric, o.TotalLabels)
				pe, _ := findCounter(prev, o.ErrorMetric, o.ErrorLabels)
				pt, _ := findCounter(prev, o.TotalMetric, o.TotalLabels)
				if oke && okt && ct > pt {
					current = float64(ce-pe) / float64(ct-pt)
					burn = current / o.MaxRatio
				}
			case "burst":
				cb, ok := findCounter(snap, o.BurstMetric, o.BurstLabels)
				pb, _ := findCounter(prev, o.BurstMetric, o.BurstLabels)
				if ok && cb > pb {
					current = float64(cb - pb)
					burn = current / o.Max
				}
			}
		}
		breached := burn > 1
		if breached && !st.Breached {
			st.Since = now
			s.mBreach.Inc()
			s.flight.TriggerAnomaly("slo:"+o.Name,
				A("kind", o.kind()), A("burn", burn), A("current", current))
		}
		if !breached {
			st.Since = time.Time{}
		}
		st.Burn, st.Current, st.Breached = burn, current, breached
		s.burn[i].Set(burn)
		if breached {
			s.breach[i].Set(1)
		} else {
			s.breach[i].Set(0)
		}
	}
	return append([]ObjectiveState(nil), s.states...)
}

// States returns the most recently evaluated states without re-evaluating.
func (s *SLO) States() []ObjectiveState {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]ObjectiveState(nil), s.states...)
}

// Ready is the /readyz hook: it fails while any Degrade objective is
// breached, so a burning server sheds load-balancer traffic before it
// falls over. Objectives without Degrade never affect readiness.
func (s *SLO) Ready() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.objs {
		if s.objs[i].Degrade && s.states[i].Breached {
			return fmt.Errorf("obs: SLO %q breached (burn %.2f)", s.objs[i].Name, s.states[i].Burn)
		}
	}
	return nil
}

// Start evaluates on the given interval until the returned stop function
// is called. Interval <= 0 selects 10s.
func (s *SLO) Start(interval time.Duration) (stop func()) {
	if interval <= 0 {
		interval = 10 * time.Second
	}
	done := make(chan struct{})
	quit := make(chan struct{})
	go func() {
		defer close(done)
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-quit:
				return
			case <-tick.C:
				s.Eval()
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			close(quit)
			<-done
		})
	}
}
