package obs

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"time"
)

// TestWriteOpenMetricsGolden pins the exact exposition text: counter
// families declared under the base name with the _total sample suffix,
// bucket exemplars in the `# {trace_id="…"} value timestamp` form, and
// the mandatory # EOF terminator. Any drift here breaks real scrapers.
func TestWriteOpenMetricsGolden(t *testing.T) {
	snap := &Snapshot{
		Counters: []CounterSnapshot{
			{Name: "sbgt_serve_requests_total", Value: 42},
			{Name: "sbgt_serve_tenant_requests_total", Labels: []Label{L("tenant", "acme")}, Value: 7},
			{Name: "sbgt_serve_tenant_requests_total", Labels: []Label{L("tenant", "zoo")}, Value: 1},
		},
		Gauges: []GaugeSnapshot{
			{Name: "sbgt_serve_cohorts", Value: 3},
		},
		Histograms: []HistogramSnapshot{{
			Name:  "sbgt_serve_request_seconds",
			Count: 4,
			Sum:   0.25,
			Buckets: []BucketSnapshot{
				{UpperBound: 0.01, Count: 1},
				{UpperBound: 0.1, Count: 3},
				{UpperBound: math.Inf(1), Count: 4},
			},
			Exemplars: []ExemplarSnapshot{{
				Bucket:  1,
				Value:   0.05,
				TraceID: 0xdeadbeef,
				Time:    time.Unix(1700000000, 123000000).UTC(),
			}},
		}},
	}

	var buf bytes.Buffer
	if err := snap.WriteOpenMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	want := strings.Join([]string{
		`# TYPE sbgt_serve_requests counter`,
		`sbgt_serve_requests_total 42`,
		`# TYPE sbgt_serve_tenant_requests counter`,
		`sbgt_serve_tenant_requests_total{tenant="acme"} 7`,
		`sbgt_serve_tenant_requests_total{tenant="zoo"} 1`,
		`# TYPE sbgt_serve_cohorts gauge`,
		`sbgt_serve_cohorts 3`,
		`# TYPE sbgt_serve_request_seconds histogram`,
		`sbgt_serve_request_seconds_bucket{le="0.01"} 1`,
		`sbgt_serve_request_seconds_bucket{le="0.1"} 3 # {trace_id="00000000deadbeef"} 0.05 1700000000.123`,
		`sbgt_serve_request_seconds_bucket{le="+Inf"} 4`,
		`sbgt_serve_request_seconds_sum 0.25`,
		`sbgt_serve_request_seconds_count 4`,
		`# EOF`,
	}, "\n") + "\n"
	if got := buf.String(); got != want {
		t.Fatalf("OpenMetrics exposition drifted.\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestExemplarLiveRegistry drives an exemplar through a real histogram
// and checks it survives into the snapshot and the OpenMetrics text.
func TestExemplarLiveRegistry(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("sbgt_serve_request_seconds", nil)
	h.ObserveExemplar(0.003, 0xabcdef0123456789)
	h.ObserveExemplar(0.004, 0) // zero trace ID: observed, but no exemplar stored

	snap := reg.Snapshot()
	if len(snap.Histograms) != 1 {
		t.Fatalf("histograms = %d, want 1", len(snap.Histograms))
	}
	hs := snap.Histograms[0]
	if hs.Count != 2 {
		t.Fatalf("count = %d, want 2 (zero-trace observation still counts)", hs.Count)
	}
	if len(hs.Exemplars) != 1 {
		t.Fatalf("exemplars = %+v, want exactly one", hs.Exemplars)
	}
	ex := hs.Exemplars[0]
	if ex.TraceID != 0xabcdef0123456789 || ex.Value != 0.003 {
		t.Fatalf("exemplar = %+v", ex)
	}
	if ex.Time.IsZero() {
		t.Fatal("exemplar timestamp not stamped")
	}

	var buf bytes.Buffer
	if err := snap.WriteOpenMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	if !strings.Contains(text, `# {trace_id="abcdef0123456789"}`) {
		t.Fatalf("exposition lacks the exemplar:\n%s", text)
	}
	if !strings.HasSuffix(text, "# EOF\n") {
		t.Fatal("exposition must end with # EOF")
	}
}

// TestExemplarLastWriteWins: two observations landing in the same bucket
// keep the most recent trace — recency is the debugging contract.
func TestExemplarLastWriteWins(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("sbgt_serve_request_seconds", nil)
	h.ObserveExemplar(0.003, 1)
	h.ObserveExemplar(0.0031, 2)
	hs := reg.Snapshot().Histograms[0]
	if len(hs.Exemplars) != 1 || hs.Exemplars[0].TraceID != 2 {
		t.Fatalf("exemplars = %+v, want the later trace (2)", hs.Exemplars)
	}
}
