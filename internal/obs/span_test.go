package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestSpanNesting(t *testing.T) {
	tr := NewTracer(16)
	stage := tr.Start("stage", A("stage", 1))
	sel := stage.Child("select")
	time.Sleep(time.Millisecond)
	if d := sel.End(); d < time.Millisecond {
		t.Fatalf("child span measured %v", d)
	}
	upd := stage.Child("update")
	upd.SetAttr("op", "update")
	upd.End()
	stage.End()

	spans := tr.Drain()
	if len(spans) != 3 {
		t.Fatalf("drained %d spans, want 3", len(spans))
	}
	// Children finish before the parent.
	if spans[0].Name != "select" || spans[1].Name != "update" || spans[2].Name != "stage" {
		t.Fatalf("span order = %v", []string{spans[0].Name, spans[1].Name, spans[2].Name})
	}
	parentID := spans[2].ID
	for _, child := range spans[:2] {
		if child.ParentID != parentID {
			t.Errorf("span %s parent = %d, want %d", child.Name, child.ParentID, parentID)
		}
	}
	if spans[2].ParentID != 0 {
		t.Errorf("root span has parent %d", spans[2].ParentID)
	}
	if len(spans[1].Attrs) != 1 || spans[1].Attrs[0].Key != "op" {
		t.Errorf("update span attrs = %+v", spans[1].Attrs)
	}
	if tr.Drain() != nil {
		t.Error("second drain returned spans")
	}
}

func TestSpanEndIdempotent(t *testing.T) {
	tr := NewTracer(4)
	s := tr.Start("once")
	s.End()
	s.End()
	if got := len(tr.Drain()); got != 1 {
		t.Fatalf("double End recorded %d spans", got)
	}
}

func TestNilTracerSpansStillTime(t *testing.T) {
	var tr *Tracer
	s := tr.Start("free", A("k", "v"))
	c := s.Child("child")
	time.Sleep(time.Millisecond)
	if d := c.End(); d < time.Millisecond {
		t.Fatalf("nil-tracer child measured %v", d)
	}
	if d := s.End(); d < time.Millisecond {
		t.Fatalf("nil-tracer span measured %v", d)
	}
	if tr.Drain() != nil || tr.Dropped() != 0 {
		t.Error("nil tracer retained spans")
	}
	if err := tr.WriteJSON(&bytes.Buffer{}); err != nil {
		t.Error(err)
	}
}

func TestTracerEviction(t *testing.T) {
	tr := NewTracer(3)
	for i := 0; i < 5; i++ {
		tr.Start("s").End()
	}
	if got := tr.Dropped(); got != 2 {
		t.Fatalf("dropped = %d, want 2", got)
	}
	if got := len(tr.Drain()); got != 3 {
		t.Fatalf("retained = %d, want 3", got)
	}
}

func TestTracerWriteJSON(t *testing.T) {
	tr := NewTracer(8)
	tr.Start("alpha", A("n", 1)).End()
	tr.Start("beta").End()
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("wrote %d lines, want 2", len(lines))
	}
	var rec SpanRecord
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatal(err)
	}
	if rec.Name != "alpha" {
		t.Fatalf("first record = %+v", rec)
	}
	// WriteJSON does not drain.
	if got := len(tr.Drain()); got != 2 {
		t.Fatalf("WriteJSON drained the tracer: %d left", got)
	}
}

func TestSpanTraceIdentity(t *testing.T) {
	tr := NewTracer(16)
	root := tr.Start("root")
	child := root.Child("child")
	if !root.Context().Valid() {
		t.Fatal("root context invalid")
	}
	if child.Context().TraceID != root.Context().TraceID {
		t.Fatal("child left the parent's trace")
	}
	if child.Context().SpanID == root.Context().SpanID {
		t.Fatal("child shares the parent's span id")
	}
	other := tr.Start("other")
	if other.Context().TraceID == root.Context().TraceID {
		t.Fatal("independent roots share a trace id")
	}
	child.End()
	root.End()
	other.End()
	for _, rec := range tr.Drain() {
		if rec.TraceID == 0 || rec.ID == 0 {
			t.Fatalf("record %q missing ids: %+v", rec.Name, rec)
		}
	}
}

func TestStartUnder(t *testing.T) {
	parent := TraceContext{TraceID: 0xfeed, SpanID: 0xbeef}
	tr := NewTracer(16)
	s := tr.StartUnder("remote", parent)
	if got := s.Context().TraceID; got != parent.TraceID {
		t.Fatalf("StartUnder trace id %x, want %x", got, parent.TraceID)
	}
	s.End()
	rec, ok := s.Record()
	if !ok || rec.ParentID != parent.SpanID || rec.TraceID != parent.TraceID {
		t.Fatalf("record = %+v, ok=%v", rec, ok)
	}
	// An invalid parent degrades to a fresh root trace.
	fresh := tr.StartUnder("fresh", TraceContext{})
	if fresh.Context().TraceID == 0 || fresh.parent != 0 {
		t.Fatalf("invalid parent produced %+v", fresh.Context())
	}
	fresh.End()
}

func TestSpanRecordBeforeEnd(t *testing.T) {
	tr := NewTracer(4)
	s := tr.Start("open")
	if _, ok := s.Record(); ok {
		t.Fatal("unended span has a record")
	}
	s.End()
	if rec, ok := s.Record(); !ok || rec.Name != "open" {
		t.Fatalf("record = %+v, ok=%v", rec, ok)
	}
}

func TestTracerAbsorbAndSnapshot(t *testing.T) {
	tr := NewTracer(2)
	tr.Absorb(SpanRecord{ID: 1, Name: "a"}, SpanRecord{ID: 2, Name: "b"}, SpanRecord{ID: 3, Name: "c"})
	spans, dropped := tr.Snapshot()
	if len(spans) != 2 || dropped != 1 {
		t.Fatalf("snapshot = %d spans, %d dropped; want 2, 1", len(spans), dropped)
	}
	if spans[0].Name != "b" || spans[1].Name != "c" {
		t.Fatalf("retained %q, %q; want newest two", spans[0].Name, spans[1].Name)
	}
	// Snapshot does not drain.
	if got := len(tr.Drain()); got != 2 {
		t.Fatalf("drain after snapshot = %d", got)
	}
	var nilTracer *Tracer
	nilTracer.Absorb(SpanRecord{ID: 9})
	if s, d := nilTracer.Snapshot(); s != nil || d != 0 {
		t.Fatal("nil tracer snapshot non-empty")
	}
}

func TestTracerDropCounter(t *testing.T) {
	tr := NewTracer(2)
	c := new(Counter)
	tr.SetDropCounter(c)
	for i := 0; i < 5; i++ {
		tr.Start("s").End()
	}
	if got := c.Value(); got != 3 {
		t.Fatalf("drop counter = %d, want 3", got)
	}
	if got := tr.Dropped(); got != 3 {
		t.Fatalf("Dropped() = %d, want 3", got)
	}
	var nilTracer *Tracer
	nilTracer.SetDropCounter(c) // must not panic
}
