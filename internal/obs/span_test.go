package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestSpanNesting(t *testing.T) {
	tr := NewTracer(16)
	stage := tr.Start("stage", A("stage", 1))
	sel := stage.Child("select")
	time.Sleep(time.Millisecond)
	if d := sel.End(); d < time.Millisecond {
		t.Fatalf("child span measured %v", d)
	}
	upd := stage.Child("update")
	upd.SetAttr("op", "update")
	upd.End()
	stage.End()

	spans := tr.Drain()
	if len(spans) != 3 {
		t.Fatalf("drained %d spans, want 3", len(spans))
	}
	// Children finish before the parent.
	if spans[0].Name != "select" || spans[1].Name != "update" || spans[2].Name != "stage" {
		t.Fatalf("span order = %v", []string{spans[0].Name, spans[1].Name, spans[2].Name})
	}
	parentID := spans[2].ID
	for _, child := range spans[:2] {
		if child.ParentID != parentID {
			t.Errorf("span %s parent = %d, want %d", child.Name, child.ParentID, parentID)
		}
	}
	if spans[2].ParentID != 0 {
		t.Errorf("root span has parent %d", spans[2].ParentID)
	}
	if len(spans[1].Attrs) != 1 || spans[1].Attrs[0].Key != "op" {
		t.Errorf("update span attrs = %+v", spans[1].Attrs)
	}
	if tr.Drain() != nil {
		t.Error("second drain returned spans")
	}
}

func TestSpanEndIdempotent(t *testing.T) {
	tr := NewTracer(4)
	s := tr.Start("once")
	s.End()
	s.End()
	if got := len(tr.Drain()); got != 1 {
		t.Fatalf("double End recorded %d spans", got)
	}
}

func TestNilTracerSpansStillTime(t *testing.T) {
	var tr *Tracer
	s := tr.Start("free", A("k", "v"))
	c := s.Child("child")
	time.Sleep(time.Millisecond)
	if d := c.End(); d < time.Millisecond {
		t.Fatalf("nil-tracer child measured %v", d)
	}
	if d := s.End(); d < time.Millisecond {
		t.Fatalf("nil-tracer span measured %v", d)
	}
	if tr.Drain() != nil || tr.Dropped() != 0 {
		t.Error("nil tracer retained spans")
	}
	if err := tr.WriteJSON(&bytes.Buffer{}); err != nil {
		t.Error(err)
	}
}

func TestTracerEviction(t *testing.T) {
	tr := NewTracer(3)
	for i := 0; i < 5; i++ {
		tr.Start("s").End()
	}
	if got := tr.Dropped(); got != 2 {
		t.Fatalf("dropped = %d, want 2", got)
	}
	if got := len(tr.Drain()); got != 3 {
		t.Fatalf("retained = %d, want 3", got)
	}
}

func TestTracerWriteJSON(t *testing.T) {
	tr := NewTracer(8)
	tr.Start("alpha", A("n", 1)).End()
	tr.Start("beta").End()
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("wrote %d lines, want 2", len(lines))
	}
	var rec SpanRecord
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatal(err)
	}
	if rec.Name != "alpha" {
		t.Fatalf("first record = %+v", rec)
	}
	// WriteJSON does not drain.
	if got := len(tr.Drain()); got != 2 {
		t.Fatalf("WriteJSON drained the tracer: %d left", got)
	}
}
