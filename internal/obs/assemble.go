package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// TraceNode is one span in an assembled trace tree.
type TraceNode struct {
	SpanRecord
	Children []*TraceNode
}

// Trace is one assembled span tree: every recorded span sharing a trace
// ID, linked parent to child. Spans whose parent was never recorded (or
// arrived from a process whose parent span is still open) surface as
// additional roots rather than being dropped, so a partial trace is still
// inspectable.
type Trace struct {
	TraceID uint64
	Roots   []*TraceNode
}

// Start returns the earliest span start in the trace (zero when empty).
func (t *Trace) Start() time.Time {
	var min time.Time
	t.Walk(func(_ int, n *TraceNode) {
		if min.IsZero() || n.SpanRecord.Start.Before(min) {
			min = n.SpanRecord.Start
		}
	})
	return min
}

// Walk visits every node depth-first, roots in start order, children in
// start order, calling fn with the node's depth (0 for roots).
func (t *Trace) Walk(fn func(depth int, n *TraceNode)) {
	var rec func(depth int, n *TraceNode)
	rec = func(depth int, n *TraceNode) {
		fn(depth, n)
		for _, c := range n.Children {
			rec(depth+1, c)
		}
	}
	for _, r := range t.Roots {
		rec(0, r)
	}
}

// Spans returns the number of spans in the trace.
func (t *Trace) Spans() int {
	n := 0
	t.Walk(func(int, *TraceNode) { n++ })
	return n
}

// Find returns the first node (depth-first) whose name matches, or nil.
func (t *Trace) Find(name string) *TraceNode {
	var hit *TraceNode
	t.Walk(func(_ int, n *TraceNode) {
		if hit == nil && n.Name == name {
			hit = n
		}
	})
	return hit
}

// WriteText renders the trace as an indented tree, one span per line:
//
//	session 41.2ms
//	  stage 12.1ms stage=1
//	    rpc:prefix-scan 1.3ms executor=0
//	      exec:prefix-scan 1.1ms
//
// for logs, CLIs, and the documentation walkthrough.
func (t *Trace) WriteText(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "trace %016x (%d spans)\n", t.TraceID, t.Spans())
	t.Walk(func(depth int, n *TraceNode) {
		fmt.Fprintf(&b, "%s%s %s", strings.Repeat("  ", depth+1), n.Name, n.Duration.Round(time.Microsecond))
		for _, a := range n.Attrs {
			fmt.Fprintf(&b, " %s=%v", a.Key, a.Value)
		}
		b.WriteByte('\n')
	})
	_, err := io.WriteString(w, b.String())
	return err
}

// Assemble merges span sets — typically the driver tracer's buffer plus
// the executor spans it absorbed, or span dumps scraped from several
// /spans endpoints — into per-trace trees. Spans with a zero trace ID
// (recorded before tracing was distributed, or by a nil-tracer span) are
// grouped under trace 0. Traces are returned oldest first; duplicate span
// IDs within a trace keep the first occurrence, so re-absorbing an
// already-merged span set is harmless.
func Assemble(sets ...[]SpanRecord) []*Trace {
	byTrace := make(map[uint64]map[uint64]*TraceNode)
	order := make(map[uint64][]*TraceNode) // insertion order per trace
	traceIDs := []uint64{}
	for _, set := range sets {
		for _, rec := range set {
			nodes := byTrace[rec.TraceID]
			if nodes == nil {
				nodes = make(map[uint64]*TraceNode)
				byTrace[rec.TraceID] = nodes
				traceIDs = append(traceIDs, rec.TraceID)
			}
			if _, dup := nodes[rec.ID]; dup && rec.ID != 0 {
				continue
			}
			n := &TraceNode{SpanRecord: rec}
			if rec.ID != 0 {
				// ID-less records (from spans that never had a tracer) stay
				// addressable as roots but cannot parent anything.
				nodes[rec.ID] = n
			}
			order[rec.TraceID] = append(order[rec.TraceID], n)
		}
	}
	out := make([]*Trace, 0, len(byTrace))
	for _, traceID := range traceIDs {
		nodes := byTrace[traceID]
		tr := &Trace{TraceID: traceID}
		for _, n := range order[traceID] {
			if parent, ok := nodes[n.ParentID]; ok && n.ParentID != 0 && n.ParentID != n.ID {
				parent.Children = append(parent.Children, n)
			} else {
				tr.Roots = append(tr.Roots, n)
			}
		}
		for _, n := range nodes {
			sortNodes(n.Children)
		}
		sortNodes(tr.Roots)
		out = append(out, tr)
	}
	sort.Slice(out, func(i, j int) bool {
		si, sj := out[i].Start(), out[j].Start()
		if si.Equal(sj) {
			return out[i].TraceID < out[j].TraceID
		}
		return si.Before(sj)
	})
	return out
}

// sortNodes orders siblings by start time, then ID for stability.
func sortNodes(ns []*TraceNode) {
	sort.Slice(ns, func(i, j int) bool {
		if ns[i].SpanRecord.Start.Equal(ns[j].SpanRecord.Start) {
			return ns[i].ID < ns[j].ID
		}
		return ns[i].SpanRecord.Start.Before(ns[j].SpanRecord.Start)
	})
}
