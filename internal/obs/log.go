package obs

import (
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// ParseLevel maps a -log-level flag value to a slog.Level. Accepted
// values (case-insensitive): debug, info, warn, error. The empty string
// selects info.
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "info":
		return slog.LevelInfo, nil
	case "debug":
		return slog.LevelDebug, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("obs: unknown log level %q (want debug, info, warn, or error)", s)
}

// NewLogger returns a leveled text logger writing to w, tagged with the
// component name. It is the one logger constructor the CLIs and
// long-running components share, so log output is uniform across the
// system.
func NewLogger(w io.Writer, level slog.Level, component string) *slog.Logger {
	h := slog.NewTextHandler(w, &slog.HandlerOptions{Level: level})
	l := slog.New(h)
	if component != "" {
		l = l.With("component", component)
	}
	return l
}

// CLILogger builds the standard CLI logger from a -log-level flag value,
// writing to w (conventionally os.Stderr).
func CLILogger(w io.Writer, component, level string) (*slog.Logger, error) {
	lv, err := ParseLevel(level)
	if err != nil {
		return nil, err
	}
	return NewLogger(w, lv, component), nil
}

// NopLogger returns a logger that discards everything — the default for
// library components whose caller wired no logger.
func NopLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, &slog.HandlerOptions{Level: slog.Level(127)}))
}

// OrNop returns l, or a discarding logger when l is nil, so library code
// can log unconditionally.
func OrNop(l *slog.Logger) *slog.Logger {
	if l == nil {
		return NopLogger()
	}
	return l
}
