package obs

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing uint64. The zero value is ready
// to use; all methods are safe for concurrent use and lock-free.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add increases the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a float64 that can move both ways (queue depths, shard sizes,
// in-flight work). The zero value is ready to use; all methods are safe
// for concurrent use and lock-free.
type Gauge struct {
	bits atomic.Uint64 // float64 bits
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add shifts the gauge by delta (negative deltas decrease it).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Inc adds one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current level.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Exemplar attaches a trace identity to one histogram bucket: the trace
// ID of a sampled observation that landed there, with its exact value
// and timestamp. Exemplars are what turn "the p99 bucket filled up" into
// "here is a trace of a request that did that".
type Exemplar struct {
	Value   float64   `json:"value"`
	TraceID uint64    `json:"trace_id"`
	Time    time.Time `json:"t"`
}

// Histogram is a fixed-bucket distribution of float64 observations with
// a running count and sum. Buckets are cumulative at snapshot time,
// Prometheus-style; internally each bucket is an independent atomic so
// Observe never takes a lock. Each bucket can additionally hold one
// exemplar (last write wins), stored behind an atomic pointer so the
// exemplar path is lock-free too.
type Histogram struct {
	bounds    []float64 // ascending upper bounds; implicit +Inf bucket at the end
	buckets   []atomic.Uint64
	exemplars []atomic.Pointer[Exemplar]
	count     atomic.Uint64
	sumBits   atomic.Uint64 // float64 bits, CAS-accumulated
}

func newHistogram(bounds []float64) *Histogram {
	bs := append([]float64(nil), bounds...)
	for i := 1; i < len(bs); i++ {
		if !(bs[i] > bs[i-1]) {
			panic(fmt.Sprintf("obs: histogram bounds not strictly ascending at %d: %v", i, bs))
		}
	}
	return &Histogram{
		bounds:    bs,
		buckets:   make([]atomic.Uint64, len(bs)+1),
		exemplars: make([]atomic.Pointer[Exemplar], len(bs)+1),
	}
}

// bucketIndex returns the bucket slot for v: the first bound >= v, or
// the +Inf slot. Binary search; the ladders are short (8–16 bounds) so
// this is a handful of branches.
func (h *Histogram) bucketIndex(v float64) int {
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if v <= h.bounds[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// Observe records one value. A nil histogram discards it.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.buckets[h.bucketIndex(v)].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveExemplar records one value and, when traceID is non-zero,
// attaches it as the bucket's exemplar (last write wins — recency is
// exactly what an operator chasing a live latency spike wants). A nil
// histogram discards both.
func (h *Histogram) ObserveExemplar(v float64, traceID uint64) {
	if h == nil {
		return
	}
	if traceID != 0 {
		h.exemplars[h.bucketIndex(v)].Store(&Exemplar{Value: v, TraceID: traceID, Time: time.Now()})
	}
	h.Observe(v)
}

// exemplarAt returns the bucket's exemplar, nil when none was recorded.
func (h *Histogram) exemplarAt(bucket int) *Exemplar {
	if h == nil || bucket < 0 || bucket >= len(h.exemplars) {
		return nil
	}
	return h.exemplars[bucket].Load()
}

// Time starts a wall-clock measurement of one region. The returned stop
// function observes the elapsed time in seconds and returns the elapsed
// duration. A nil histogram still times — instrumented code can measure
// unconditionally and only export when a registry was wired:
//
//	stop := hist.Time()
//	defer stop()
func (h *Histogram) Time() (stop func() time.Duration) {
	t0 := time.Now()
	return func() time.Duration {
		d := time.Since(t0)
		if h != nil {
			h.Observe(d.Seconds())
		}
		return d
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the running sum of observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// kind discriminates registry entries.
type kind uint8

const (
	kindCounter kind = iota
	kindGauge
	kindGaugeFunc
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge, kindGaugeFunc:
		return "gauge"
	case kindHistogram:
		return "histogram"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// entry is one registered metric.
type entry struct {
	kind   kind
	name   string // base name, no labels
	labels []Label
	c      *Counter
	g      *Gauge
	gf     func() float64
	h      *Histogram
}

// Registry holds named metrics. Registration (Counter, Gauge, Histogram,
// GaugeFunc) takes a mutex; the returned metric handles are lock-free,
// so hot paths register once and observe through the handle. A nil
// *Registry is valid: it hands out detached metrics that work but are
// never exported, which lets instrumentation run unconditionally.
type Registry struct {
	mu      sync.Mutex
	entries map[string]*entry // by fullName
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{entries: make(map[string]*entry)}
}

// lookup returns the entry for the full name, creating it with mk when
// absent. It panics when the name is invalid or already registered as a
// different kind — both programmer errors in metric declarations.
func (r *Registry) lookup(k kind, name string, labels []Label, mk func() *entry) *entry {
	if !validName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !validName(l.Key) {
			panic(fmt.Sprintf("obs: invalid label key %q on metric %q", l.Key, name))
		}
	}
	full := fullName(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.entries[full]; ok {
		if e.kind != k {
			panic(fmt.Sprintf("obs: metric %s registered as %s, requested as %s", full, e.kind, k))
		}
		return e
	}
	e := mk()
	r.entries[full] = e
	return e
}

// Counter returns the counter registered under name+labels, creating it
// on first use.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	if r == nil {
		return new(Counter)
	}
	return r.lookup(kindCounter, name, labels, func() *entry {
		return &entry{kind: kindCounter, name: name, labels: labels, c: new(Counter)}
	}).c
}

// Gauge returns the gauge registered under name+labels, creating it on
// first use.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	if r == nil {
		return new(Gauge)
	}
	return r.lookup(kindGauge, name, labels, func() *entry {
		return &entry{kind: kindGauge, name: name, labels: labels, g: new(Gauge)}
	}).g
}

// GaugeFunc registers a gauge whose value is computed by fn at snapshot
// time (e.g. a live queue depth). Re-registering the same full name
// replaces the function.
func (r *Registry) GaugeFunc(name string, fn func() float64, labels ...Label) {
	if r == nil {
		return
	}
	e := r.lookup(kindGaugeFunc, name, labels, func() *entry {
		return &entry{kind: kindGaugeFunc, name: name, labels: labels}
	})
	r.mu.Lock()
	e.gf = fn
	r.mu.Unlock()
}

// Histogram returns the histogram registered under name+labels, creating
// it with the given upper bounds on first use (later calls reuse the
// existing buckets and ignore bounds). A nil bounds slice selects
// LatencyBuckets.
func (r *Registry) Histogram(name string, bounds []float64, labels ...Label) *Histogram {
	if bounds == nil {
		bounds = LatencyBuckets
	}
	if r == nil {
		return newHistogram(bounds)
	}
	return r.lookup(kindHistogram, name, labels, func() *entry {
		return &entry{kind: kindHistogram, name: name, labels: labels, h: newHistogram(bounds)}
	}).h
}

// snapshotEntries returns the entries sorted by full name, for exporters.
func (r *Registry) snapshotEntries() []*entry {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.entries))
	for n := range r.entries {
		names = append(names, n)
	}
	out := make([]*entry, 0, len(names))
	r.mu.Unlock()
	// Sort outside the lock; entries are append-only so the handles stay
	// valid, and gauge functions run unlocked (they may take other locks).
	sort.Strings(names)
	r.mu.Lock()
	for _, n := range names {
		out = append(out, r.entries[n])
	}
	r.mu.Unlock()
	return out
}
