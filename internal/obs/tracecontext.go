package obs

import (
	"fmt"
	"time"
)

// TraceContext is the serializable identity of a span: the trace it
// belongs to and the span itself. It is what crosses process boundaries —
// the driver encodes the active span's context into every outgoing RPC
// frame, and executors open child spans under it, so one surveillance
// stage yields a single trace spanning driver and executors.
//
// The zero value is "not traced"; Valid reports whether a context can be
// propagated.
type TraceContext struct {
	TraceID uint64 `json:"trace_id"`
	SpanID  uint64 `json:"span_id"`
}

// Valid reports whether the context identifies a live trace. W3C
// semantics: an all-zero trace or span ID cannot be propagated.
func (tc TraceContext) Valid() bool { return tc.TraceID != 0 && tc.SpanID != 0 }

// traceparentVersion is the only header version this repo emits or
// accepts. The format is W3C trace-context shaped —
// version-traceid-parentid-flags — with the 128-bit trace ID zero-padded
// down to this package's 64-bit IDs.
const traceparentVersion = "00"

// traceparentLen is the fixed encoded length: 2+1+32+1+16+1+2.
const traceparentLen = 55

// Encode renders the context as a W3C-traceparent-style header value:
//
//	00-0000000000000000<16 hex trace>-<16 hex span>-01
//
// Encoding an invalid (zero) context yields a string that Parse rejects,
// mirroring the W3C rule that all-zero IDs are not propagatable.
func (tc TraceContext) Encode() string {
	// Hand-rolled hex: this runs once per traced RPC, and fmt.Sprintf
	// measurably widens the select-path tracing overhead.
	var b [traceparentLen]byte
	b[0], b[1], b[2] = '0', '0', '-'
	for i := 3; i < 19; i++ {
		b[i] = '0'
	}
	putHex64(b[19:35], tc.TraceID)
	b[35] = '-'
	putHex64(b[36:52], tc.SpanID)
	b[52], b[53], b[54] = '-', '0', '1'
	return string(b[:])
}

// putHex64 writes v as exactly 16 lowercase hex digits into dst.
func putHex64(dst []byte, v uint64) {
	const digits = "0123456789abcdef"
	for i := 15; i >= 0; i-- {
		dst[i] = digits[v&0xf]
		v >>= 4
	}
}

// ParseTraceContext decodes an Encode'd context. It rejects anything it
// could not have produced: wrong length or version, non-hex digits,
// trace IDs above 64 bits, and the all-zero IDs W3C declares invalid.
func ParseTraceContext(s string) (TraceContext, error) {
	if len(s) != traceparentLen {
		return TraceContext{}, fmt.Errorf("obs: traceparent %q: length %d, want %d", s, len(s), traceparentLen)
	}
	if s[0:2] != traceparentVersion {
		return TraceContext{}, fmt.Errorf("obs: traceparent %q: unsupported version %q", s, s[0:2])
	}
	if s[2] != '-' || s[35] != '-' || s[52] != '-' {
		return TraceContext{}, fmt.Errorf("obs: traceparent %q: malformed separators", s)
	}
	hi, err := parseHex64(s[3:19])
	if err != nil {
		return TraceContext{}, fmt.Errorf("obs: traceparent %q: trace id: %w", s, err)
	}
	if hi != 0 {
		return TraceContext{}, fmt.Errorf("obs: traceparent %q: trace id exceeds 64 bits", s)
	}
	var tc TraceContext
	if tc.TraceID, err = parseHex64(s[19:35]); err != nil {
		return TraceContext{}, fmt.Errorf("obs: traceparent %q: trace id: %w", s, err)
	}
	if tc.SpanID, err = parseHex64(s[36:52]); err != nil {
		return TraceContext{}, fmt.Errorf("obs: traceparent %q: span id: %w", s, err)
	}
	if s[53:55] != "01" {
		return TraceContext{}, fmt.Errorf("obs: traceparent %q: unsupported flags %q", s, s[53:55])
	}
	if !tc.Valid() {
		return TraceContext{}, fmt.Errorf("obs: traceparent %q: all-zero id", s)
	}
	return tc, nil
}

// parseHex64 decodes exactly 16 lowercase hex digits.
func parseHex64(s string) (uint64, error) {
	var v uint64
	for i := 0; i < len(s); i++ {
		c := s[i]
		var d uint64
		switch {
		case c >= '0' && c <= '9':
			d = uint64(c - '0')
		case c >= 'a' && c <= 'f':
			d = uint64(c-'a') + 10
		default:
			return 0, fmt.Errorf("invalid hex digit %q", c)
		}
		v = v<<4 | d
	}
	return v, nil
}

// splitmix64 is the SplitMix64 finalizer: a cheap bijective mixer that
// turns a counter into a scattered 64-bit ID. Tracers in different
// processes seed the counter differently, so span IDs do not collide when
// driver and executor span sets are merged into one trace.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// idSeed derives a per-tracer ID namespace. Wall-clock entropy is enough:
// IDs only need to be unique across the handful of processes that
// contribute spans to one trace, and splitmix64 scatters the namespace so
// sequentially allocated IDs from two seeds interleave without colliding.
func idSeed() uint64 {
	return splitmix64(uint64(time.Now().UnixNano()))
}
