package obs

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"sync"
	"syscall"
)

// CLIFlags bundles the observability flags every sbgt command shares:
// -metrics-addr, -log-level, -trace-out, and the offline profiling pair
// -cpuprofile / -memprofile. Register them with RegisterFlags, parse,
// then call Start to materialize the runtime.
type CLIFlags struct {
	MetricsAddr string
	LogLevel    string
	TraceOut    string
	CPUProfile  string
	MemProfile  string
}

// RegisterFlags installs the shared observability flags on fs
// (flag.CommandLine when nil) and returns the struct they populate.
func RegisterFlags(fs *flag.FlagSet) *CLIFlags {
	if fs == nil {
		fs = flag.CommandLine
	}
	f := &CLIFlags{}
	fs.StringVar(&f.MetricsAddr, "metrics-addr", "",
		"serve /metrics, /metrics.json, /healthz, /spans, and pprof on this address (empty = off)")
	fs.StringVar(&f.LogLevel, "log-level", "info",
		"log verbosity: debug | info | warn | error")
	fs.StringVar(&f.TraceOut, "trace-out", "",
		"write collected spans as NDJSON to this file on exit (empty = off)")
	fs.StringVar(&f.CPUProfile, "cpuprofile", "",
		"write a CPU profile covering Start-to-Close to this file (empty = off)")
	fs.StringVar(&f.MemProfile, "memprofile", "",
		"write an allocation profile at Close to this file (empty = off)")
	return f
}

// Runtime is the live observability state a command builds from its
// flags: a metric registry, a span tracer, a leveled stderr logger, and
// (when -metrics-addr is set) an HTTP introspection server. Close
// releases the server and flushes the trace file.
type Runtime struct {
	Reg    *Registry
	Tracer *Tracer
	Flight *FlightRecorder
	Log    *slog.Logger

	server   *Server
	traceOut string
	cpuOut   *os.File // non-nil while a CPU profile is being collected
	memOut   string

	readyMu  sync.Mutex
	readyErr error
}

// Start materializes the parsed flags into a Runtime. component tags
// every log line with the command's name.
func (f *CLIFlags) Start(component string) (*Runtime, error) {
	log, err := CLILogger(os.Stderr, component, f.LogLevel)
	if err != nil {
		return nil, err
	}
	rt := &Runtime{
		Reg:      NewRegistry(),
		Tracer:   NewTracer(0),
		Flight:   NewFlightRecorder(0),
		Log:      log,
		traceOut: f.TraceOut,
		memOut:   f.MemProfile,
	}
	rt.Tracer.SetDropCounter(rt.Reg.Counter("sbgt_obs_spans_dropped_total"))
	rt.Flight.Instrument(rt.Reg)
	rt.Flight.LogDumps(rt.Log)
	if f.MetricsAddr != "" {
		rt.server, err = Serve(f.MetricsAddr, rt.Reg, rt.Tracer, rt.Flight, rt.Log, rt.ReadyError)
		if err != nil {
			return nil, err
		}
	}
	if f.CPUProfile != "" {
		out, err := os.Create(f.CPUProfile)
		if err != nil {
			return nil, fmt.Errorf("obs: cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(out); err != nil {
			//lint:allow errcheck the create just succeeded; nothing to do about a close error on the bail-out path
			_ = out.Close()
			return nil, fmt.Errorf("obs: cpuprofile: %w", err)
		}
		rt.cpuOut = out
	}
	return rt, nil
}

// SetReadyError flips the runtime's /readyz state: nil means serving,
// non-nil serves 503 with the error text. Executors flip this to a drain
// error on SIGTERM so a load balancer (or the driver's redial loop) stops
// routing to them before the listener closes.
func (rt *Runtime) SetReadyError(err error) {
	rt.readyMu.Lock()
	rt.readyErr = err
	rt.readyMu.Unlock()
}

// ReadyError reports the current readiness state (the func form NewMux
// wants).
func (rt *Runtime) ReadyError() error {
	rt.readyMu.Lock()
	defer rt.readyMu.Unlock()
	return rt.readyErr
}

// DumpFlightOnSIGQUIT installs a SIGQUIT handler that writes the flight
// recorder's snapshot (events + anomaly dumps) to stderr as indented
// JSON and keeps the process running — kill -QUIT becomes a
// non-destructive "what just happened" probe. Note this replaces the Go
// runtime's default SIGQUIT stack dump; /debug/pprof/goroutine still
// serves stacks when -metrics-addr is set.
func (rt *Runtime) DumpFlightOnSIGQUIT() {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, syscall.SIGQUIT)
	go func() {
		for range ch {
			rt.Log.Info("obs: SIGQUIT received, dumping flight recorder to stderr")
			if err := rt.Flight.WriteJSON(os.Stderr); err != nil {
				rt.Log.Error("obs: flight dump failed", "err", err)
			}
		}
	}()
}

// MetricsAddr reports the bound metrics address ("" when disabled) —
// useful when the flag asked for port 0.
func (rt *Runtime) MetricsAddr() string {
	if rt.server == nil {
		return ""
	}
	return rt.server.Addr()
}

// Fatal logs err at error level and exits the process with status 1.
// It is the obs-flavored replacement for log.Fatal in command mains.
func (rt *Runtime) Fatal(err error) {
	rt.Log.Error(err.Error())
	os.Exit(1)
}

// Close stops the metrics server (if any), finishes the CPU profile and
// writes the allocation profile (when requested), and writes the trace
// file (if configured). It returns the first error; commands exiting
// anyway may log it at warn level.
func (rt *Runtime) Close() error {
	var first error
	if rt.server != nil {
		if err := rt.server.Close(); err != nil {
			first = err
		}
	}
	if rt.cpuOut != nil {
		pprof.StopCPUProfile()
		if err := rt.cpuOut.Close(); err != nil && first == nil {
			first = fmt.Errorf("obs: cpuprofile: %w", err)
		}
		rt.cpuOut = nil
	}
	if rt.memOut != "" {
		f, err := os.Create(rt.memOut)
		if err == nil {
			runtime.GC() // settle live-heap accounting before the snapshot
			err = pprof.Lookup("allocs").WriteTo(f, 0)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil && first == nil {
			first = fmt.Errorf("obs: memprofile: %w", err)
		}
		rt.memOut = ""
	}
	if rt.traceOut != "" {
		f, err := os.Create(rt.traceOut)
		if err == nil {
			err = rt.Tracer.WriteJSON(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil && first == nil {
			first = fmt.Errorf("obs: trace-out: %w", err)
		}
	}
	return first
}
