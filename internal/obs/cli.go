package obs

import (
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"sync"
	"sync/atomic"
	"syscall"
	"time"
)

// CLIFlags bundles the observability flags every sbgt command shares:
// -metrics-addr, -log-level, -trace-out, the offline profiling pair
// -cpuprofile / -memprofile, and the continuous-profiler trio
// -profile-dir / -profile-interval / -profile-cpu-window. Register them
// with RegisterFlags, parse, then call Start to materialize the runtime.
type CLIFlags struct {
	MetricsAddr string
	LogLevel    string
	TraceOut    string
	CPUProfile  string
	MemProfile  string

	// Continuous profiler (consumed by profiler.StartFromRuntime — the
	// obs package itself never reads these, the profiler package does, so
	// the dependency arrow stays profiler → obs).
	ProfileDir       string
	ProfileInterval  time.Duration
	ProfileCPUWindow time.Duration
}

// RegisterFlags installs the shared observability flags on fs
// (flag.CommandLine when nil) and returns the struct they populate.
func RegisterFlags(fs *flag.FlagSet) *CLIFlags {
	if fs == nil {
		fs = flag.CommandLine
	}
	f := &CLIFlags{}
	fs.StringVar(&f.MetricsAddr, "metrics-addr", "",
		"serve /metrics, /metrics.json, /healthz, /spans, and pprof on this address (empty = off)")
	fs.StringVar(&f.LogLevel, "log-level", "info",
		"log verbosity: debug | info | warn | error")
	fs.StringVar(&f.TraceOut, "trace-out", "",
		"write collected spans as NDJSON to this file on exit (empty = off)")
	fs.StringVar(&f.CPUProfile, "cpuprofile", "",
		"write a CPU profile covering Start-to-Close to this file (empty = off)")
	fs.StringVar(&f.MemProfile, "memprofile", "",
		"write an allocation profile at Close to this file (empty = off)")
	fs.StringVar(&f.ProfileDir, "profile-dir", "",
		"continuous profiler: keep anomaly/background profile bundles in this directory, served on /debug/profiles (empty = off)")
	fs.DurationVar(&f.ProfileInterval, "profile-interval", 0,
		"continuous profiler: background capture period (0 = anomaly-triggered captures only)")
	fs.DurationVar(&f.ProfileCPUWindow, "profile-cpu-window", 0,
		"continuous profiler: CPU-profile window per capture (0 = default 1s, negative = snapshots only)")
	return f
}

// Runtime is the live observability state a command builds from its
// flags: a metric registry, a span tracer, a leveled stderr logger, and
// (when -metrics-addr is set) an HTTP introspection server. Close
// releases the server and flushes the trace file.
type Runtime struct {
	Reg    *Registry
	Tracer *Tracer
	Flight *FlightRecorder
	Log    *slog.Logger

	server   *Server
	traceOut string
	cpuOut   *os.File // non-nil while a CPU profile is being collected
	memOut   string

	// profiles delegates /debug/profiles to a handler installed after
	// Start (the profiler is built on top of the runtime, so the server
	// necessarily boots first). Holds an http.Handler.
	profiles atomic.Value

	readyMu  sync.Mutex
	readyErr error

	closeMu  sync.Mutex
	closed   bool
	onClose  []func() error
	closeErr error
}

// Start materializes the parsed flags into a Runtime. component tags
// every log line with the command's name.
func (f *CLIFlags) Start(component string) (*Runtime, error) {
	log, err := CLILogger(os.Stderr, component, f.LogLevel)
	if err != nil {
		return nil, err
	}
	rt := &Runtime{
		Reg:      NewRegistry(),
		Tracer:   NewTracer(0),
		Flight:   NewFlightRecorder(0),
		Log:      log,
		traceOut: f.TraceOut,
		memOut:   f.MemProfile,
	}
	rt.Tracer.SetDropCounter(rt.Reg.Counter("sbgt_obs_spans_dropped_total"))
	rt.Flight.Instrument(rt.Reg)
	rt.Flight.LogDumps(rt.Log)
	if f.MetricsAddr != "" {
		rt.server, err = ServeConfig(f.MetricsAddr, MuxConfig{
			Reg:      rt.Reg,
			Tracer:   rt.Tracer,
			Flight:   rt.Flight,
			Profiles: http.HandlerFunc(rt.serveProfiles),
			Ready:    []func() error{rt.ReadyError},
		}, rt.Log)
		if err != nil {
			return nil, err
		}
	}
	if f.CPUProfile != "" {
		out, err := os.Create(f.CPUProfile)
		if err != nil {
			return nil, fmt.Errorf("obs: cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(out); err != nil {
			//lint:allow errcheck the create just succeeded; nothing to do about a close error on the bail-out path
			_ = out.Close()
			return nil, fmt.Errorf("obs: cpuprofile: %w", err)
		}
		rt.cpuOut = out
	}
	return rt, nil
}

// SetProfilesHandler installs the /debug/profiles handler after the
// metrics server is already up — the continuous profiler is built on top
// of the runtime, so this indirection closes the loop without an import
// cycle (obs cannot import internal/obs/profiler).
func (rt *Runtime) SetProfilesHandler(h http.Handler) {
	if h == nil {
		return
	}
	rt.profiles.Store(h)
}

// serveProfiles delegates to the installed profiles handler, or 404s
// until one exists.
func (rt *Runtime) serveProfiles(w http.ResponseWriter, req *http.Request) {
	if h, ok := rt.profiles.Load().(http.Handler); ok {
		h.ServeHTTP(w, req)
		return
	}
	http.Error(w, "continuous profiler not enabled", http.StatusNotFound)
}

// OnClose registers fn to run at the head of Close, before the metrics
// server and profile files are torn down — the hook the continuous
// profiler uses so an in-flight CPU window finishes before the
// -cpuprofile flag's StopCPUProfile runs.
func (rt *Runtime) OnClose(fn func() error) {
	if fn == nil {
		return
	}
	rt.closeMu.Lock()
	rt.onClose = append(rt.onClose, fn)
	rt.closeMu.Unlock()
}

// SetReadyError flips the runtime's /readyz state: nil means serving,
// non-nil serves 503 with the error text. Executors flip this to a drain
// error on SIGTERM so a load balancer (or the driver's redial loop) stops
// routing to them before the listener closes.
func (rt *Runtime) SetReadyError(err error) {
	rt.readyMu.Lock()
	rt.readyErr = err
	rt.readyMu.Unlock()
}

// ReadyError reports the current readiness state (the func form NewMux
// wants).
func (rt *Runtime) ReadyError() error {
	rt.readyMu.Lock()
	defer rt.readyMu.Unlock()
	return rt.readyErr
}

// DumpFlightOnSIGQUIT installs a SIGQUIT handler that writes the flight
// recorder's snapshot (events + anomaly dumps) to stderr as indented
// JSON and keeps the process running — kill -QUIT becomes a
// non-destructive "what just happened" probe. Note this replaces the Go
// runtime's default SIGQUIT stack dump; /debug/pprof/goroutine still
// serves stacks when -metrics-addr is set.
func (rt *Runtime) DumpFlightOnSIGQUIT() {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, syscall.SIGQUIT)
	go func() {
		for range ch {
			rt.Log.Info("obs: SIGQUIT received, dumping flight recorder to stderr")
			if err := rt.Flight.WriteJSON(os.Stderr); err != nil {
				rt.Log.Error("obs: flight dump failed", "err", err)
			}
		}
	}()
}

// MetricsAddr reports the bound metrics address ("" when disabled) —
// useful when the flag asked for port 0.
func (rt *Runtime) MetricsAddr() string {
	if rt.server == nil {
		return ""
	}
	return rt.server.Addr()
}

// Fatal logs err at error level and exits the process with status 1.
// It is the obs-flavored replacement for log.Fatal in command mains.
func (rt *Runtime) Fatal(err error) {
	rt.Log.Error(err.Error())
	os.Exit(1)
}

// Close runs the registered OnClose hooks, stops the metrics server (if
// any), finishes the CPU profile and writes the allocation profile (when
// requested), and writes the trace file (if configured). It returns the
// first error; commands exiting anyway may log it at warn level. Safe to
// call concurrently and more than once: one caller does the teardown,
// the rest wait for it and observe the same result — the shape a
// SIGTERM drain racing a deferred Close needs.
func (rt *Runtime) Close() error {
	rt.closeMu.Lock()
	defer rt.closeMu.Unlock()
	if rt.closed {
		return rt.closeErr
	}
	rt.closed = true
	rt.closeErr = rt.closeLocked()
	return rt.closeErr
}

func (rt *Runtime) closeLocked() error {
	var first error
	for _, fn := range rt.onClose {
		if err := fn(); err != nil && first == nil {
			first = err
		}
	}
	if rt.server != nil {
		if err := rt.server.Close(); err != nil {
			first = err
		}
	}
	if rt.cpuOut != nil {
		pprof.StopCPUProfile()
		if err := rt.cpuOut.Close(); err != nil && first == nil {
			first = fmt.Errorf("obs: cpuprofile: %w", err)
		}
		rt.cpuOut = nil
	}
	if rt.memOut != "" {
		f, err := os.Create(rt.memOut)
		if err == nil {
			runtime.GC() // settle live-heap accounting before the snapshot
			err = pprof.Lookup("allocs").WriteTo(f, 0)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil && first == nil {
			first = fmt.Errorf("obs: memprofile: %w", err)
		}
		rt.memOut = ""
	}
	if rt.traceOut != "" {
		f, err := os.Create(rt.traceOut)
		if err == nil {
			err = rt.Tracer.WriteJSON(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil && first == nil {
			first = fmt.Errorf("obs: trace-out: %w", err)
		}
	}
	return first
}
