package profiler

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// Profile-share diffing: the trajectory treatment BENCH_n.json gives
// wall times, applied to where the time goes. Two captures (or a
// capture and a committed baseline table) are compared by cumulative
// hot-function share; a function whose share of total grew by more than
// a threshold — and is large enough to matter — is a regression.
// Shares, not absolute nanoseconds, so a diff is meaningful across
// windows of different lengths and machines of different speeds.

// DiffOptions bounds what counts as a regression.
type DiffOptions struct {
	// ThresholdPP is the cumulative-share growth (percentage points) that
	// flags a function. Zero selects DefaultThresholdPP.
	ThresholdPP float64
	// MinShare ignores functions whose new cumulative share is below this
	// floor — noise in the tail of a 100 Hz profile, not signal. Zero
	// selects DefaultMinShare.
	MinShare float64
	// Top bounds the rows recorded in the result (0 = all).
	Top int
}

// DefaultThresholdPP flags a function whose cumulative share grew by
// ten percentage points — the scale of a kernel falling off a fast
// path, well above sampling jitter on short windows.
const DefaultThresholdPP = 10.0

// DefaultMinShare ignores functions under 5% of total: a short window
// has too few samples for the tail to be stable.
const DefaultMinShare = 0.05

// FuncDelta is one function's share movement between two tables.
type FuncDelta struct {
	Name    string  `json:"name"`
	OldCum  float64 `json:"old_cum"`
	NewCum  float64 `json:"new_cum"`
	DeltaPP float64 `json:"delta_pp"` // (new-old) in percentage points
	Regress bool    `json:"regress,omitempty"`
}

// DiffResult is the full comparison, sorted by |delta| descending.
type DiffResult struct {
	SampleType  string      `json:"sample_type"`
	OldTotal    int64       `json:"old_total"`
	NewTotal    int64       `json:"new_total"`
	Deltas      []FuncDelta `json:"deltas"`
	Regressions int         `json:"regressions"`
}

// Diff compares two share tables under opts.
func Diff(oldT, newT *ShareTable, opts DiffOptions) *DiffResult {
	if opts.ThresholdPP <= 0 {
		opts.ThresholdPP = DefaultThresholdPP
	}
	if opts.MinShare <= 0 {
		opts.MinShare = DefaultMinShare
	}
	oldCum := make(map[string]float64, len(oldT.Funcs))
	for _, f := range oldT.Funcs {
		oldCum[f.Name] = f.Cum
	}
	names := map[string]bool{}
	newCum := make(map[string]float64, len(newT.Funcs))
	for _, f := range newT.Funcs {
		newCum[f.Name] = f.Cum
		names[f.Name] = true
	}
	for name := range oldCum {
		names[name] = true
	}
	res := &DiffResult{SampleType: newT.SampleType, OldTotal: oldT.Total, NewTotal: newT.Total}
	for name := range names {
		o, n := oldCum[name], newCum[name]
		d := FuncDelta{Name: name, OldCum: o, NewCum: n, DeltaPP: (n - o) * 100}
		if d.DeltaPP >= opts.ThresholdPP && n >= opts.MinShare {
			d.Regress = true
			res.Regressions++
		}
		res.Deltas = append(res.Deltas, d)
	}
	sort.Slice(res.Deltas, func(i, j int) bool {
		ai, aj := abs(res.Deltas[i].DeltaPP), abs(res.Deltas[j].DeltaPP)
		if ai != aj { //lint:allow floats exact inequality is a deterministic sort tie-break, not a numeric test
			return ai > aj
		}
		return res.Deltas[i].Name < res.Deltas[j].Name
	})
	if opts.Top > 0 && len(res.Deltas) > opts.Top {
		// Never truncate a regression row: keep all flagged rows plus the
		// largest movers up to Top.
		kept := res.Deltas[:0]
		for _, d := range res.Deltas {
			if d.Regress || len(kept) < opts.Top {
				kept = append(kept, d)
			}
		}
		res.Deltas = kept
	}
	return res
}

func abs(f float64) float64 {
	if f < 0 {
		return -f
	}
	return f
}

// baselineDoc is the committed-baseline file schema: a versioned wrapper
// so the format can grow without breaking old files.
type baselineDoc struct {
	Version int         `json:"version"`
	GitSHA  string      `json:"git_sha,omitempty"`
	Table   *ShareTable `json:"table"`
}

// WriteShareTable writes a share table as a committed baseline document.
func WriteShareTable(path string, t *ShareTable, gitSHA string) error {
	raw, err := json.MarshalIndent(&baselineDoc{Version: 1, GitSHA: gitSHA, Table: t}, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}

// ReadShareTable reads a committed baseline document.
func ReadShareTable(path string) (*ShareTable, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc baselineDoc
	if err := json.Unmarshal(raw, &doc); err != nil {
		return nil, fmt.Errorf("profiler: baseline %s: %w", path, err)
	}
	if doc.Table == nil {
		return nil, fmt.Errorf("profiler: baseline %s: no table", path)
	}
	return doc.Table, nil
}
