package profiler

import (
	"bytes"
	"compress/gzip"
	"io"
	"math"
	"runtime/pprof"
	"testing"
)

func writeRuntimeGoroutineProfile(t *testing.T, w io.Writer) {
	t.Helper()
	if err := pprof.Lookup("goroutine").WriteTo(w, 0); err != nil {
		t.Fatalf("goroutine profile: %v", err)
	}
}

// --- synthetic profile encoder (tests only) ---
//
// Emits just enough valid profile.proto wire format to exercise the
// parser deterministically: a string table, sample types, functions,
// locations (with inline chains), and samples with packed value arrays.

type synthProfile struct {
	strings []string        // index 0 must be ""
	strIdx  map[string]uint64
	buf     bytes.Buffer
}

func newSynth() *synthProfile {
	s := &synthProfile{strIdx: map[string]uint64{}}
	s.istr("") // string table slot 0 is always the empty string
	return s
}

func (s *synthProfile) istr(v string) uint64 {
	if idx, ok := s.strIdx[v]; ok {
		return idx
	}
	idx := uint64(len(s.strings))
	s.strings = append(s.strings, v)
	s.strIdx[v] = idx
	return idx
}

func varint(b *bytes.Buffer, v uint64) {
	for v >= 0x80 {
		b.WriteByte(byte(v) | 0x80)
		v >>= 7
	}
	b.WriteByte(byte(v))
}

func tag(b *bytes.Buffer, field, wire int) { varint(b, uint64(field<<3|wire)) }

func msg(b *bytes.Buffer, field int, body []byte) {
	tag(b, field, 2)
	varint(b, uint64(len(body)))
	b.Write(body)
}

func (s *synthProfile) sampleType(typ, unit string) {
	var vt bytes.Buffer
	tag(&vt, fValueTypeType, 0)
	varint(&vt, s.istr(typ))
	tag(&vt, fValueTypeUnit, 0)
	varint(&vt, s.istr(unit))
	msg(&s.buf, fProfileSampleType, vt.Bytes())
}

func (s *synthProfile) function(id uint64, name string) {
	var fn bytes.Buffer
	tag(&fn, fFunctionID, 0)
	varint(&fn, id)
	tag(&fn, fFunctionName, 0)
	varint(&fn, s.istr(name))
	msg(&s.buf, fProfileFunction, fn.Bytes())
}

func (s *synthProfile) location(id uint64, funcIDs ...uint64) {
	var loc bytes.Buffer
	tag(&loc, fLocationID, 0)
	varint(&loc, id)
	for _, fid := range funcIDs {
		var line bytes.Buffer
		tag(&line, fLineFunctionID, 0)
		varint(&line, fid)
		msg(&loc, fLocationLine, line.Bytes())
	}
	msg(&s.buf, fProfileLocation, loc.Bytes())
}

// sample emits a packed-encoded sample (the form the Go runtime writes).
func (s *synthProfile) sample(locs []uint64, values []int64) {
	var sm, packedLocs, packedVals bytes.Buffer
	for _, l := range locs {
		varint(&packedLocs, l)
	}
	for _, v := range values {
		varint(&packedVals, uint64(v))
	}
	msg(&sm, fSampleLocationID, packedLocs.Bytes())
	msg(&sm, fSampleValue, packedVals.Bytes())
	msg(&s.buf, fProfileSample, sm.Bytes())
}

// bytesGz finalizes the message (string table last, like a writer that
// interns as it goes) and gzips it, matching runtime/pprof output.
func (s *synthProfile) bytesGz(t *testing.T) []byte {
	t.Helper()
	var out bytes.Buffer
	out.Write(s.buf.Bytes())
	for _, str := range s.strings {
		msg(&out, fProfileStringTab, []byte(str))
	}
	var gz bytes.Buffer
	w := gzip.NewWriter(&gz)
	if _, err := w.Write(out.Bytes()); err != nil {
		t.Fatalf("gzip: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("gzip close: %v", err)
	}
	return gz.Bytes()
}

// cpuSynth builds a two-column (samples/count, cpu/nanoseconds) profile
// from (stack, nanos) pairs. Stacks are leaf-first function names.
func cpuSynth(t *testing.T, stacks map[string]int64) []byte {
	t.Helper()
	s := newSynth()
	s.sampleType("samples", "count")
	s.sampleType("cpu", "nanoseconds")
	funcID := map[string]uint64{}
	locID := map[string]uint64{}
	var nextFunc, nextLoc uint64
	// Deterministic iteration: bytes must not depend on map order for
	// golden-style assertions, so assign IDs in sorted-key order.
	keys := make([]string, 0, len(stacks))
	for k := range stacks {
		keys = append(keys, k)
	}
	sortStrings(keys)
	for _, stack := range keys {
		for _, name := range splitStack(stack) {
			if _, ok := funcID[name]; !ok {
				nextFunc++
				funcID[name] = nextFunc
				s.function(nextFunc, name)
				nextLoc++
				locID[name] = nextLoc
				s.location(nextLoc, nextFunc)
			}
		}
	}
	for _, stack := range keys {
		names := splitStack(stack)
		locs := make([]uint64, len(names))
		for i, name := range names {
			locs[i] = locID[name]
		}
		s.sample(locs, []int64{1, stacks[stack]})
	}
	return s.bytesGz(t)
}

func splitStack(s string) []string {
	var out []string
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == '>' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	return out
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// --- parser tests ---

func TestParseSyntheticRoundTrip(t *testing.T) {
	// "hot>main" = hot (leaf) called from main.
	raw := cpuSynth(t, map[string]int64{
		"hot>main":  700,
		"cold>main": 300,
	})
	p, err := ParseProfile(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("ParseProfile: %v", err)
	}
	if len(p.SampleTypes) != 2 || p.SampleTypes[1].Type != "cpu" || p.SampleTypes[1].Unit != "nanoseconds" {
		t.Fatalf("sample types = %+v", p.SampleTypes)
	}
	if len(p.Samples) != 2 {
		t.Fatalf("samples = %d, want 2", len(p.Samples))
	}
	tab, err := p.Table("")
	if err != nil {
		t.Fatalf("Table: %v", err)
	}
	if tab.SampleType != "cpu/nanoseconds" {
		t.Fatalf("sample type label = %q", tab.SampleType)
	}
	if tab.Total != 1000 {
		t.Fatalf("total = %d, want 1000", tab.Total)
	}
	want := map[string]struct{ flat, cum float64 }{
		"main": {0, 1.0},
		"hot":  {0.7, 0.7},
		"cold": {0.3, 0.3},
	}
	if len(tab.Funcs) != len(want) {
		t.Fatalf("funcs = %+v, want %d entries", tab.Funcs, len(want))
	}
	for _, f := range tab.Funcs {
		w, ok := want[f.Name]
		if !ok {
			t.Fatalf("unexpected function %q", f.Name)
		}
		if math.Abs(f.Cum-w.cum) > 1e-12 || math.Abs(f.Flat-w.flat) > 1e-12 {
			t.Fatalf("%s: flat=%v cum=%v, want flat=%v cum=%v", f.Name, f.Flat, f.Cum, w.flat, w.cum)
		}
	}
	// main has the highest cumulative share, so it sorts first.
	if tab.Funcs[0].Name != "main" {
		t.Fatalf("sort order = %+v", tab.Funcs)
	}
}

func TestTableRecursionNoDoubleCount(t *testing.T) {
	// A self-recursive stack: f called from f called from main. f's
	// cumulative share must be charged once per sample, not per frame.
	raw := cpuSynth(t, map[string]int64{"f>f>main": 100})
	p, err := ParseProfile(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("ParseProfile: %v", err)
	}
	tab, err := p.Table("cpu")
	if err != nil {
		t.Fatalf("Table: %v", err)
	}
	for _, f := range tab.Funcs {
		if f.Cum > 1.0+1e-12 {
			t.Fatalf("%s cumulative share %v > 1 — recursion double-counted", f.Name, f.Cum)
		}
	}
}

func TestTableNamedSampleType(t *testing.T) {
	raw := cpuSynth(t, map[string]int64{"hot>main": 900})
	p, err := ParseProfile(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("ParseProfile: %v", err)
	}
	tab, err := p.Table("samples")
	if err != nil {
		t.Fatalf("Table(samples): %v", err)
	}
	if tab.Total != 1 {
		t.Fatalf("samples total = %d, want 1", tab.Total)
	}
	if _, err := p.Table("nonexistent"); err == nil {
		t.Fatal("Table(nonexistent) should error")
	}
}

func TestParseRealGoroutineProfile(t *testing.T) {
	// The real thing: whatever the runtime writes for this test binary
	// must parse and contain at least this goroutine.
	var buf bytes.Buffer
	writeRuntimeGoroutineProfile(t, &buf)
	p, err := ParseProfile(&buf)
	if err != nil {
		t.Fatalf("ParseProfile(runtime goroutine profile): %v", err)
	}
	if len(p.Samples) == 0 {
		t.Fatal("runtime goroutine profile has no samples")
	}
	tab, err := p.Table("")
	if err != nil {
		t.Fatalf("Table: %v", err)
	}
	if tab.Total == 0 || len(tab.Funcs) == 0 {
		t.Fatalf("empty table from a live goroutine profile: %+v", tab)
	}
}

// --- diff tests ---

func mkTable(cum map[string]float64) *ShareTable {
	t := &ShareTable{SampleType: "cpu/nanoseconds", Total: 1000}
	for name, c := range cum {
		t.Funcs = append(t.Funcs, FuncShare{Name: name, Cum: c})
	}
	return t
}

func TestDiffFlagsRegression(t *testing.T) {
	oldT := mkTable(map[string]float64{"kernel": 0.60, "gc": 0.10})
	newT := mkTable(map[string]float64{"kernel": 0.40, "gc": 0.10, "slowpath": 0.35})
	res := Diff(oldT, newT, DiffOptions{})
	if res.Regressions != 1 {
		t.Fatalf("regressions = %d, want 1 (slowpath): %+v", res.Regressions, res.Deltas)
	}
	if res.Deltas[0].Name != "slowpath" || !res.Deltas[0].Regress {
		t.Fatalf("top delta = %+v, want slowpath regression", res.Deltas[0])
	}
	// kernel shrank — improvement, never a regression.
	for _, d := range res.Deltas {
		if d.Name == "kernel" && d.Regress {
			t.Fatal("a shrinking function was flagged as regression")
		}
	}
}

func TestDiffMinShareFloor(t *testing.T) {
	// A function that grew 100x but stays under the floor is tail noise.
	oldT := mkTable(map[string]float64{"kernel": 0.9})
	newT := mkTable(map[string]float64{"kernel": 0.9, "tiny": 0.04})
	res := Diff(oldT, newT, DiffOptions{ThresholdPP: 1})
	if res.Regressions != 0 {
		t.Fatalf("regressions = %d, want 0 (tiny is under MinShare): %+v", res.Regressions, res.Deltas)
	}
}

func TestDiffStableOnEmptyProfiles(t *testing.T) {
	// The anomaly-vs-quiet diff in CI must have a stable exit code even
	// when a short window caught zero samples: all shares 0, no
	// regressions, deterministically.
	empty := &ShareTable{SampleType: "cpu/nanoseconds"}
	res := Diff(empty, empty, DiffOptions{})
	if res.Regressions != 0 || len(res.Deltas) != 0 {
		t.Fatalf("empty diff = %+v, want no deltas", res)
	}
	res = Diff(empty, mkTable(map[string]float64{"f": 0.5}), DiffOptions{})
	if res.Regressions != 1 {
		t.Fatalf("0 -> 50pp growth should flag: %+v", res)
	}
}

func TestDiffTopKeepsRegressions(t *testing.T) {
	oldT := mkTable(map[string]float64{"a": 0.5, "b": 0.3, "c": 0.2})
	newT := mkTable(map[string]float64{"a": 0.1, "b": 0.2, "c": 0.2, "bad": 0.5})
	res := Diff(oldT, newT, DiffOptions{Top: 1})
	found := false
	for _, d := range res.Deltas {
		if d.Name == "bad" && d.Regress {
			found = true
		}
	}
	if !found {
		t.Fatalf("Top truncation dropped the regression row: %+v", res.Deltas)
	}
}

func TestBaselineRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/baseline.json"
	tab := mkTable(map[string]float64{"kernel": 0.62, "gc": 0.11})
	tab.Total = 123456
	if err := WriteShareTable(path, tab, "abc123"); err != nil {
		t.Fatalf("WriteShareTable: %v", err)
	}
	got, err := ReadShareTable(path)
	if err != nil {
		t.Fatalf("ReadShareTable: %v", err)
	}
	if got.Total != tab.Total || len(got.Funcs) != len(tab.Funcs) {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, tab)
	}
	res := Diff(tab, got, DiffOptions{})
	if res.Regressions != 0 {
		t.Fatalf("self-diff has regressions: %+v", res)
	}
}
