// Package profiler is the continuous-profiling subsystem: always-on,
// low-overhead capture of where a running sbgt process spends its time,
// wired into the same forensic chain as the flight recorder.
//
// Three capture paths feed one bounded on-disk bundle store:
//
//   - Background sampling: on a fixed interval the profiler freezes a
//     short CPU-profile window plus heap, goroutine, and mutex
//     snapshots. These are the "quiet baseline" an anomaly capture is
//     diffed against.
//   - Anomaly triggers: the profiler registers an OnDump hook on the
//     flight recorder, so every anomaly auto-dump (an SLO edge-trip, an
//     absorb failure, an explicit TriggerAnomaly) freezes a profile
//     bundle stamped with the dump's anomaly ID. One breach therefore
//     yields flight dump + trace + profiles under a single ID.
//   - Manual captures: CaptureNow, for tests and operator tooling.
//
// Every bundle is stamped with the build's git SHA, the capture reason,
// and — for anomaly captures — the tenant and trace identity of the
// most recent offending event, so a flame graph resolves back to the
// request that burned. The store mirrors the flight recorder's
// retention discipline: keep-last-K per capture class, and same-reason
// triggers inside a cooldown coalesce into the previous bundle's count
// instead of minting a new one.
//
// Nothing here sits on a request path: recording costs are paid by the
// background goroutine, and the only process-wide cost is the CPU
// profiling signal while a window is open.
package profiler

import (
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"runtime/pprof"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Capture classes: the bounded label set profiler metrics use. The full
// free-form reason string lives in bundle metadata, never in a label —
// sbgt-metriclint enforces this set.
const (
	ClassSample  = "sample"  // periodic background capture
	ClassAnomaly = "anomaly" // flight-recorder anomaly trigger
	ClassManual  = "manual"  // CaptureNow
)

// CaptureClasses is the declared value set for the profiler's `class`
// label; anything outside it is a lint violation.
var CaptureClasses = []string{ClassSample, ClassAnomaly, ClassManual}

// Profile file names inside a bundle directory.
const (
	CPUProfile       = "cpu.pprof"
	HeapProfile      = "heap.pprof"
	GoroutineProfile = "goroutine.pprof"
	MutexProfile     = "mutex.pprof"
)

// MetaFile is the bundle metadata document name.
const MetaFile = "meta.json"

// BundleMeta describes one captured profile bundle — the meta.json
// document inside the bundle directory and the row /debug/profiles
// serves in its index.
type BundleMeta struct {
	ID        string        `json:"id"`
	Time      time.Time     `json:"t"`
	Reason    string        `json:"reason"`
	Class     string        `json:"class"`
	AnomalyID string        `json:"anomaly_id,omitempty"`
	GitSHA    string        `json:"git_sha,omitempty"`
	Tenant    string        `json:"tenant,omitempty"`
	TraceID   uint64        `json:"trace_id,omitempty"`
	Attrs     []obs.Attr    `json:"attrs,omitempty"`
	Coalesced uint64        `json:"coalesced,omitempty"` // same-reason triggers absorbed by this bundle
	CPUWindow time.Duration `json:"cpu_window_ns,omitempty"`
	CPUError  string        `json:"cpu_error,omitempty"` // e.g. another CPU profile was already running
	// Profiles maps profile file name to its size in bytes.
	Profiles map[string]int64 `json:"profiles"`
}

// Config sizes a Profiler.
type Config struct {
	// Dir is the on-disk bundle store. Required.
	Dir string
	// Interval is the background sampling period; <= 0 disables periodic
	// capture (anomaly and manual captures still work).
	Interval time.Duration
	// CPUWindow is how long each capture's CPU-profile window stays
	// open. Zero selects DefaultCPUWindow; negative disables CPU capture
	// (heap/goroutine/mutex snapshots only).
	CPUWindow time.Duration
	// KeepSamples bounds retained background bundles (default 4).
	KeepSamples int
	// KeepAnomalies bounds retained anomaly + manual bundles (default 8).
	KeepAnomalies int
	// Cooldown spaces same-reason captures; triggers inside it coalesce
	// into the previous bundle. Zero selects DefaultCooldown; negative
	// disables coalescing.
	Cooldown time.Duration
	// MutexFraction, when > 0, enables mutex-contention profiling at the
	// given sampling rate for the profiler's lifetime (restored on Close).
	MutexFraction int
	// Reg receives profiler metrics (nil = uninstrumented).
	Reg *obs.Registry
	// Flight, when non-nil, has an OnDump hook registered so anomaly
	// dumps trigger bundle captures stamped with their anomaly ID.
	Flight *obs.FlightRecorder
	// Log receives lifecycle events (nil = discard).
	Log *slog.Logger
	// Clock overrides time.Now for tests.
	Clock func() time.Time
}

// DefaultCPUWindow is the per-capture CPU-profile window. Long enough
// for the 100 Hz profiler to see a loaded process, short enough that a
// capture finishes well inside one background interval.
const DefaultCPUWindow = time.Second

// DefaultCooldown spaces same-reason captures, mirroring the flight
// recorder's anomaly cooldown.
const DefaultCooldown = time.Minute

// DefaultInterval is the background sampling period commands use when
// the flag does not say otherwise.
const DefaultInterval = time.Minute

// cpuMu serializes CPU-profile windows process-wide: the Go runtime
// allows one CPU profile at a time, and two Profiler instances (or a
// -cpuprofile flag) must not fight over it mid-capture.
var cpuMu sync.Mutex

// Profiler owns the bundle store and the capture paths. All methods are
// safe for concurrent use; a nil *Profiler is valid and does nothing.
type Profiler struct {
	cfg    Config
	gitSHA string

	mu       sync.Mutex
	bundles  []BundleMeta // sorted by ID (capture order)
	seq      uint64
	lastFire map[string]time.Time

	capMu sync.Mutex // serializes whole-bundle captures

	anomCh  chan obs.AnomalyDump
	stop    chan struct{}
	done    chan struct{}
	started atomic.Bool
	once    sync.Once

	prevMutexFraction int

	mCaptures  map[string]*obs.Counter
	mErrors    *obs.Counter
	mCoalesced *obs.Counter
	mBundles   *obs.Gauge
	mStore     *obs.Gauge
	mLatency   *obs.Histogram
}

// New builds a profiler over an on-disk store, re-indexing any bundles a
// predecessor process left behind. Call Start to begin background
// sampling; anomaly and manual captures work immediately.
func New(cfg Config) (*Profiler, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("profiler: Config.Dir is required")
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("profiler: store dir: %w", err)
	}
	if cfg.CPUWindow == 0 {
		cfg.CPUWindow = DefaultCPUWindow
	}
	if cfg.KeepSamples <= 0 {
		cfg.KeepSamples = 4
	}
	if cfg.KeepAnomalies <= 0 {
		cfg.KeepAnomalies = 8
	}
	if cfg.Cooldown == 0 {
		cfg.Cooldown = DefaultCooldown
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	cfg.Log = obs.OrNop(cfg.Log)
	p := &Profiler{
		cfg:      cfg,
		gitSHA:   buildSHA(),
		lastFire: make(map[string]time.Time),
		anomCh:   make(chan obs.AnomalyDump, 8),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	if err := p.scan(); err != nil {
		return nil, err
	}
	if reg := cfg.Reg; reg != nil {
		p.mCaptures = make(map[string]*obs.Counter, len(CaptureClasses))
		for _, class := range CaptureClasses {
			p.mCaptures[class] = reg.Counter("sbgt_obs_profiler_captures_total", obs.L("class", class))
		}
		p.mErrors = reg.Counter("sbgt_obs_profiler_capture_errors_total")
		p.mCoalesced = reg.Counter("sbgt_obs_profiler_coalesced_total")
		p.mBundles = reg.Gauge("sbgt_obs_profiler_bundles")
		p.mStore = reg.Gauge("sbgt_obs_profiler_store_bytes")
		p.mLatency = reg.Histogram("sbgt_obs_profiler_capture_seconds", obs.LatencyBuckets)
		p.publishGauges()
	}
	if cfg.MutexFraction > 0 {
		p.prevMutexFraction = setMutexFraction(cfg.MutexFraction)
	}
	if cfg.Flight != nil {
		cfg.Flight.OnDump(func(d obs.AnomalyDump) {
			// Called under the recorder's lock: hand the dump to the capture
			// goroutine. A full channel means captures are already backed up;
			// dropping the trigger (counted) beats blocking the recorder.
			select {
			case p.anomCh <- d:
			default:
				if p.mCoalesced != nil {
					p.mCoalesced.Inc()
				}
			}
		})
	}
	return p, nil
}

// buildSHA reads the VCS revision the binary was built from ("" when the
// build carries no VCS stamp, e.g. `go test` binaries).
func buildSHA() string {
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return ""
	}
	for _, s := range info.Settings {
		if s.Key == "vcs.revision" {
			return s.Value
		}
	}
	return ""
}

// scan re-indexes bundles left by a predecessor process and resumes the
// ID sequence past them.
func (p *Profiler) scan() error {
	entries, err := os.ReadDir(p.cfg.Dir)
	if err != nil {
		return fmt.Errorf("profiler: scan store: %w", err)
	}
	for _, e := range entries {
		if !e.IsDir() || strings.HasPrefix(e.Name(), ".") {
			continue
		}
		var meta BundleMeta
		raw, err := os.ReadFile(filepath.Join(p.cfg.Dir, e.Name(), MetaFile))
		if err != nil || json.Unmarshal(raw, &meta) != nil || meta.ID != e.Name() {
			p.cfg.Log.Warn("profiler: skipping unreadable bundle", "dir", e.Name())
			continue
		}
		p.bundles = append(p.bundles, meta)
		var n uint64
		if _, err := fmt.Sscanf(meta.ID, "p%d", &n); err == nil && n > p.seq {
			p.seq = n
		}
	}
	sort.Slice(p.bundles, func(i, j int) bool { return p.bundles[i].ID < p.bundles[j].ID })
	if len(p.bundles) > 0 {
		p.cfg.Log.Info("profiler: recovered bundles", "count", len(p.bundles))
	}
	return nil
}

// Start launches the background loop: periodic sampling (when Interval
// is positive) and anomaly-triggered captures. Close stops it.
// Idempotent; a never-started profiler still closes cleanly.
func (p *Profiler) Start() {
	if p == nil || !p.started.CompareAndSwap(false, true) {
		return
	}
	go p.loop() //lint:allow concurrency the capture loop is a timer/trigger pump, not lattice work; it exits via p.stop in Close
}

func (p *Profiler) loop() {
	defer close(p.done)
	var tick <-chan time.Time
	if p.cfg.Interval > 0 {
		t := time.NewTicker(p.cfg.Interval)
		defer t.Stop()
		tick = t.C
	}
	for {
		select {
		case <-p.stop:
			return
		case d := <-p.anomCh:
			p.captureAnomaly(d)
		case <-tick:
			if _, _, err := p.Capture(ClassSample, ClassSample, "", nil); err != nil {
				p.cfg.Log.Warn("profiler: background capture failed", "err", err)
			}
		}
	}
}

// captureAnomaly freezes a bundle for one flight-recorder dump, stamping
// the dump's anomaly ID, its trigger attrs, and the tenant/trace of the
// most recent identifiable event leading up to it.
func (p *Profiler) captureAnomaly(d obs.AnomalyDump) {
	var tenant string
	var traceID uint64
	for i := len(d.Events) - 1; i >= 0; i-- {
		if tenant == "" {
			tenant = d.Events[i].Tenant
		}
		if traceID == 0 {
			traceID = d.Events[i].TraceID
		}
		if tenant != "" && traceID != 0 {
			break
		}
	}
	meta, captured, err := p.Capture(d.Reason, ClassAnomaly, d.ID, d.Attrs, withIdentity(tenant, traceID))
	switch {
	case err != nil:
		p.cfg.Log.Error("profiler: anomaly capture failed", "anomaly", d.ID, "reason", d.Reason, "err", err)
	case captured:
		p.cfg.Log.Info("profiler: anomaly profile bundle captured",
			"anomaly", d.ID, "bundle", meta.ID, "reason", d.Reason)
	}
}

// CaptureOption tweaks one capture.
type CaptureOption func(*BundleMeta)

// withIdentity stamps the offending tenant and trace onto the bundle.
func withIdentity(tenant string, traceID uint64) CaptureOption {
	return func(m *BundleMeta) {
		m.Tenant = tenant
		m.TraceID = traceID
	}
}

// CaptureNow synchronously captures a manual bundle — the operator/test
// entry point.
func (p *Profiler) CaptureNow(reason string, attrs ...obs.Attr) (*BundleMeta, error) {
	if p == nil {
		return nil, fmt.Errorf("profiler: not configured")
	}
	meta, _, err := p.Capture(reason, ClassManual, "", attrs)
	return meta, err
}

// Capture freezes one bundle: heap, goroutine, and mutex snapshots plus
// a CPU-profile window of the configured length. Same-reason captures
// inside the cooldown coalesce into the previous bundle (captured =
// false, its meta returned). class must be one of CaptureClasses.
func (p *Profiler) Capture(reason, class, anomalyID string, attrs []obs.Attr, opts ...CaptureOption) (*BundleMeta, bool, error) {
	if p == nil {
		return nil, false, fmt.Errorf("profiler: not configured")
	}
	if meta, coalesced := p.coalesce(reason); coalesced {
		return meta, false, nil
	}
	p.capMu.Lock()
	defer p.capMu.Unlock()

	start := time.Now()
	p.mu.Lock()
	p.seq++
	id := fmt.Sprintf("p%06d", p.seq)
	p.mu.Unlock()

	meta := BundleMeta{
		ID:     id,
		Time:   p.cfg.Clock(),
		Reason: reason,
		Class:  class,
		AnomalyID: anomalyID,
		GitSHA: p.gitSHA,
		Attrs:  attrs,
		Profiles: map[string]int64{},
	}
	for _, opt := range opts {
		opt(&meta)
	}

	tmp, err := os.MkdirTemp(p.cfg.Dir, ".cap-*")
	if err != nil {
		return nil, false, p.fail(fmt.Errorf("profiler: capture dir: %w", err))
	}
	defer os.RemoveAll(tmp) // best-effort cleanup; on success the dir was renamed away already

	// Snapshot profiles first (cheap), then the CPU window (slow path).
	for name, lookup := range map[string]string{
		HeapProfile:      "heap",
		GoroutineProfile: "goroutine",
		MutexProfile:     "mutex",
	} {
		if err := writeLookup(filepath.Join(tmp, name), lookup); err != nil {
			return nil, false, p.fail(err)
		}
	}
	if p.cfg.CPUWindow > 0 {
		if err := p.captureCPU(filepath.Join(tmp, CPUProfile)); err != nil {
			// A CPU profile may already be running (e.g. the -cpuprofile
			// flag). The bundle is still useful; record why CPU is missing.
			meta.CPUError = err.Error()
		} else {
			meta.CPUWindow = p.cfg.CPUWindow
		}
	}

	// Stamp sizes, write meta, and publish the bundle atomically.
	entries, err := os.ReadDir(tmp)
	if err != nil {
		return nil, false, p.fail(fmt.Errorf("profiler: capture dir: %w", err))
	}
	for _, e := range entries {
		if info, err := e.Info(); err == nil {
			meta.Profiles[e.Name()] = info.Size()
		}
	}
	raw, err := json.MarshalIndent(&meta, "", "  ")
	if err != nil {
		return nil, false, p.fail(err)
	}
	if err := os.WriteFile(filepath.Join(tmp, MetaFile), raw, 0o644); err != nil {
		return nil, false, p.fail(fmt.Errorf("profiler: write meta: %w", err))
	}
	if err := os.Rename(tmp, filepath.Join(p.cfg.Dir, id)); err != nil {
		return nil, false, p.fail(fmt.Errorf("profiler: publish bundle: %w", err))
	}

	p.mu.Lock()
	p.bundles = append(p.bundles, meta)
	p.lastFire[reason] = p.cfg.Clock()
	p.mu.Unlock()
	p.retain()
	if c := p.mCaptures[class]; c != nil {
		c.Inc()
	}
	if p.mLatency != nil {
		p.mLatency.Observe(time.Since(start).Seconds())
	}
	p.publishGauges()
	return &meta, true, nil
}

// coalesce reports whether a capture for reason falls inside the
// cooldown; when it does, the most recent same-reason bundle absorbs the
// trigger. Background samples are exempt: their ticker interval is
// already their rate limit, and coalescing them would silently degrade
// -profile-interval to the cooldown period.
func (p *Profiler) coalesce(reason string) (*BundleMeta, bool) {
	if p.cfg.Cooldown < 0 || reason == ClassSample {
		return nil, false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	last, ok := p.lastFire[reason]
	if !ok || p.cfg.Clock().Sub(last) >= p.cfg.Cooldown {
		return nil, false
	}
	for i := len(p.bundles) - 1; i >= 0; i-- {
		if p.bundles[i].Reason == reason {
			p.bundles[i].Coalesced++
			meta := p.bundles[i]
			p.rewriteMeta(meta)
			if p.mCoalesced != nil {
				p.mCoalesced.Inc()
			}
			return &meta, true
		}
	}
	// Cooldown armed but the bundle was retained away: count it, capture
	// nothing (the window is still hot).
	if p.mCoalesced != nil {
		p.mCoalesced.Inc()
	}
	return nil, true
}

// rewriteMeta persists an updated meta document (coalesced count).
// Caller holds p.mu; best-effort.
func (p *Profiler) rewriteMeta(meta BundleMeta) {
	raw, err := json.MarshalIndent(&meta, "", "  ")
	if err == nil {
		err = os.WriteFile(filepath.Join(p.cfg.Dir, meta.ID, MetaFile), raw, 0o644)
	}
	if err != nil {
		p.cfg.Log.Warn("profiler: meta rewrite failed", "bundle", meta.ID, "err", err)
	}
}

// captureCPU opens one CPU-profile window into path, interruptible by
// Close.
func (p *Profiler) captureCPU(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("profiler: cpu profile: %w", err)
	}
	cpuMu.Lock()
	if err := pprof.StartCPUProfile(f); err != nil {
		cpuMu.Unlock()
		f.Close()           //lint:allow errcheck bail-out path; the start error wins
		os.Remove(path)     //lint:allow errcheck best-effort removal of the empty file
		return fmt.Errorf("profiler: cpu profile: %w", err)
	}
	select {
	case <-time.After(p.cfg.CPUWindow):
	case <-p.stop:
		// Closing mid-window: stop early so Close never waits a full window.
	}
	pprof.StopCPUProfile()
	cpuMu.Unlock()
	if err := f.Close(); err != nil {
		return fmt.Errorf("profiler: cpu profile: %w", err)
	}
	return nil
}

// writeLookup snapshots one runtime profile (heap forces a GC settle
// like the -memprofile flag does not need here: allocs vs heap — we use
// the live-heap view, debug 0, gzipped proto).
func writeLookup(path, name string) error {
	prof := pprof.Lookup(name)
	if prof == nil {
		return fmt.Errorf("profiler: unknown runtime profile %q", name)
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("profiler: %s profile: %w", name, err)
	}
	err = prof.WriteTo(f, 0)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("profiler: %s profile: %w", name, err)
	}
	return nil
}

func (p *Profiler) fail(err error) error {
	if p.mErrors != nil {
		p.mErrors.Inc()
	}
	return err
}

// keepFor maps a capture class to its retention bound.
func (p *Profiler) keepFor(class string) int {
	if class == ClassSample {
		return p.cfg.KeepSamples
	}
	return p.cfg.KeepAnomalies
}

// retain prunes the store back under the per-class keep-last-K bounds.
func (p *Profiler) retain() {
	var evict []string
	p.mu.Lock()
	seen := map[string]int{}
	kept := make([]BundleMeta, 0, len(p.bundles))
	// Walk newest-first so the K most recent of each class survive.
	for i := len(p.bundles) - 1; i >= 0; i-- {
		b := p.bundles[i]
		seen[b.Class]++
		if seen[b.Class] > p.keepFor(b.Class) {
			evict = append(evict, b.ID)
		} else {
			kept = append(kept, b)
		}
	}
	// kept is newest-first; restore capture order.
	for i, j := 0, len(kept)-1; i < j; i, j = i+1, j-1 {
		kept[i], kept[j] = kept[j], kept[i]
	}
	p.bundles = kept
	p.mu.Unlock()
	for _, id := range evict {
		if err := os.RemoveAll(filepath.Join(p.cfg.Dir, id)); err != nil {
			p.cfg.Log.Warn("profiler: retention removal failed", "bundle", id, "err", err)
		}
	}
}

// publishGauges refreshes the bundle-count and store-size gauges.
func (p *Profiler) publishGauges() {
	if p.mBundles == nil {
		return
	}
	p.mu.Lock()
	n := len(p.bundles)
	var bytes int64
	for _, b := range p.bundles {
		for _, sz := range b.Profiles {
			bytes += sz
		}
	}
	p.mu.Unlock()
	p.mBundles.Set(float64(n))
	p.mStore.Set(float64(bytes))
}

// Bundles returns the current index, oldest first.
func (p *Profiler) Bundles() []BundleMeta {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]BundleMeta(nil), p.bundles...)
}

// Lookup returns one bundle's meta by ID.
func (p *Profiler) Lookup(id string) (*BundleMeta, bool) {
	if p == nil {
		return nil, false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for i := range p.bundles {
		if p.bundles[i].ID == id {
			meta := p.bundles[i]
			return &meta, true
		}
	}
	return nil, false
}

// Open returns a reader over one profile file of one bundle. The name
// must be listed in the bundle's meta (no path traversal).
func (p *Profiler) Open(id, name string) (io.ReadCloser, error) {
	meta, ok := p.Lookup(id)
	if !ok {
		return nil, fmt.Errorf("profiler: no bundle %q", id)
	}
	if _, ok := meta.Profiles[name]; !ok {
		return nil, fmt.Errorf("profiler: bundle %q has no profile %q", id, name)
	}
	return os.Open(filepath.Join(p.cfg.Dir, id, name))
}

// Dir reports the store directory.
func (p *Profiler) Dir() string {
	if p == nil {
		return ""
	}
	return p.cfg.Dir
}

// setMutexFraction wraps runtime.SetMutexProfileFraction so the call
// site reads as intent (returns the previous rate).
func setMutexFraction(rate int) int {
	return runtime.SetMutexProfileFraction(rate)
}

// Close stops the background loop (interrupting any open CPU window) and
// restores the mutex-profile fraction. Idempotent and nil-safe.
func (p *Profiler) Close() error {
	if p == nil {
		return nil
	}
	p.once.Do(func() {
		close(p.stop)
		if p.started.Load() {
			<-p.done
		}
		if p.cfg.MutexFraction > 0 {
			setMutexFraction(p.prevMutexFraction)
		}
	})
	return nil
}
