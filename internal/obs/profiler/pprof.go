package profiler

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
)

// This file is a minimal reader for the pprof profile.proto wire format
// — just enough to turn a gzipped profile into per-function cumulative
// shares for sbgt-profdiff. The repo is dependency-free by policy, so
// instead of importing github.com/google/pprof we decode the handful of
// protobuf fields the share computation needs: string table, sample
// types, samples (location IDs + values), locations (line → function),
// and function names. Everything else in the message is skipped field
// by field, which also keeps the reader robust against future additions
// to the format.

// Profile is the decoded subset of a pprof profile.
type Profile struct {
	// SampleTypes names each value column, e.g. [{samples,count},{cpu,nanoseconds}].
	SampleTypes []ValueType
	// Samples are the raw stacks; LocationIDs[0] is the leaf frame.
	Samples []Sample
	// TimeNanos/DurationNanos/Period are carried through for display.
	TimeNanos     int64
	DurationNanos int64
	Period        int64

	strings   []string
	locations map[uint64][]uint64 // location id -> function ids (inline chain)
	functions map[uint64]string   // function id -> name
}

// ValueType names one sample value column.
type ValueType struct {
	Type string
	Unit string
}

// Sample is one stack with its values.
type Sample struct {
	LocationIDs []uint64
	Values      []int64
}

// ParseProfile reads a gzipped (or raw) profile.proto message.
func ParseProfile(r io.Reader) (*Profile, error) {
	raw, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("profiler: read profile: %w", err)
	}
	if len(raw) >= 2 && raw[0] == 0x1f && raw[1] == 0x8b {
		gz, err := gzip.NewReader(bytes.NewReader(raw))
		if err != nil {
			return nil, fmt.Errorf("profiler: gunzip profile: %w", err)
		}
		if raw, err = io.ReadAll(gz); err != nil {
			return nil, fmt.Errorf("profiler: gunzip profile: %w", err)
		}
	}
	p := &Profile{
		locations: make(map[uint64][]uint64),
		functions: make(map[uint64]string),
	}
	if err := p.decode(raw); err != nil {
		return nil, err
	}
	return p, nil
}

// ParseProfileFile is ParseProfile over a path.
func ParseProfileFile(path string) (*Profile, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ParseProfile(f)
}

// --- protobuf wire-format primitives ---

type wireReader struct {
	buf []byte
	pos int
}

func (w *wireReader) done() bool { return w.pos >= len(w.buf) }

func (w *wireReader) varint() (uint64, error) {
	var v uint64
	for shift := uint(0); shift < 64; shift += 7 {
		if w.pos >= len(w.buf) {
			return 0, fmt.Errorf("profiler: truncated varint")
		}
		b := w.buf[w.pos]
		w.pos++
		v |= uint64(b&0x7f) << shift
		if b < 0x80 {
			return v, nil
		}
	}
	return 0, fmt.Errorf("profiler: varint overflow")
}

// field reads one tag and returns (fieldNum, wireType).
func (w *wireReader) field() (int, int, error) {
	tag, err := w.varint()
	if err != nil {
		return 0, 0, err
	}
	return int(tag >> 3), int(tag & 7), nil
}

// bytesField reads a length-delimited payload.
func (w *wireReader) bytesField() ([]byte, error) {
	n, err := w.varint()
	if err != nil {
		return nil, err
	}
	if n > uint64(len(w.buf)-w.pos) {
		return nil, fmt.Errorf("profiler: truncated bytes field")
	}
	out := w.buf[w.pos : w.pos+int(n)]
	w.pos += int(n)
	return out, nil
}

// skip consumes one value of the given wire type.
func (w *wireReader) skip(wt int) error {
	switch wt {
	case 0: // varint
		_, err := w.varint()
		return err
	case 1: // fixed64
		if len(w.buf)-w.pos < 8 {
			return fmt.Errorf("profiler: truncated fixed64")
		}
		w.pos += 8
		return nil
	case 2: // length-delimited
		_, err := w.bytesField()
		return err
	case 5: // fixed32
		if len(w.buf)-w.pos < 4 {
			return fmt.Errorf("profiler: truncated fixed32")
		}
		w.pos += 4
		return nil
	default:
		return fmt.Errorf("profiler: unsupported wire type %d", wt)
	}
}

// repeatedVarints decodes a repeated integer field that may arrive
// packed (one length-delimited blob) or unpacked (one varint per tag).
func repeatedVarints(w *wireReader, wt int, into []uint64) ([]uint64, error) {
	if wt == 0 {
		v, err := w.varint()
		if err != nil {
			return nil, err
		}
		return append(into, v), nil
	}
	blob, err := w.bytesField()
	if err != nil {
		return nil, err
	}
	inner := &wireReader{buf: blob}
	for !inner.done() {
		v, err := inner.varint()
		if err != nil {
			return nil, err
		}
		into = append(into, v)
	}
	return into, nil
}

// --- profile.proto message decoding ---

// Field numbers from profile.proto (github.com/google/pprof).
const (
	fProfileSampleType = 1
	fProfileSample     = 2
	fProfileLocation   = 4
	fProfileFunction   = 5
	fProfileStringTab  = 6
	fProfileTimeNanos  = 9
	fProfileDuration   = 10
	fProfilePeriod     = 12

	fValueTypeType = 1
	fValueTypeUnit = 2

	fSampleLocationID = 1
	fSampleValue      = 2

	fLocationID   = 1
	fLocationLine = 4

	fLineFunctionID = 1

	fFunctionID   = 1
	fFunctionName = 2
)

func (p *Profile) decode(raw []byte) error {
	w := &wireReader{buf: raw}
	var valueTypes, samples, locations, functions [][]byte
	for !w.done() {
		num, wt, err := w.field()
		if err != nil {
			return err
		}
		switch num {
		case fProfileSampleType, fProfileSample, fProfileLocation, fProfileFunction, fProfileStringTab:
			blob, err := w.bytesField()
			if err != nil {
				return err
			}
			switch num {
			case fProfileSampleType:
				valueTypes = append(valueTypes, blob)
			case fProfileSample:
				samples = append(samples, blob)
			case fProfileLocation:
				locations = append(locations, blob)
			case fProfileFunction:
				functions = append(functions, blob)
			case fProfileStringTab:
				p.strings = append(p.strings, string(blob))
			}
		case fProfileTimeNanos, fProfileDuration, fProfilePeriod:
			v, err := w.varint()
			if err != nil {
				return err
			}
			switch num {
			case fProfileTimeNanos:
				p.TimeNanos = int64(v)
			case fProfileDuration:
				p.DurationNanos = int64(v)
			case fProfilePeriod:
				p.Period = int64(v)
			}
		default:
			if err := w.skip(wt); err != nil {
				return err
			}
		}
	}
	// Sub-messages decode after the string table is complete (the table
	// may appear after its referents in the stream).
	for _, blob := range functions {
		if err := p.decodeFunction(blob); err != nil {
			return err
		}
	}
	for _, blob := range locations {
		if err := p.decodeLocation(blob); err != nil {
			return err
		}
	}
	for _, blob := range valueTypes {
		vt, err := p.decodeValueType(blob)
		if err != nil {
			return err
		}
		p.SampleTypes = append(p.SampleTypes, vt)
	}
	for _, blob := range samples {
		if err := p.decodeSample(blob); err != nil {
			return err
		}
	}
	return nil
}

func (p *Profile) str(idx uint64) string {
	if idx < uint64(len(p.strings)) {
		return p.strings[idx]
	}
	return ""
}

func (p *Profile) decodeValueType(blob []byte) (ValueType, error) {
	var vt ValueType
	w := &wireReader{buf: blob}
	for !w.done() {
		num, wt, err := w.field()
		if err != nil {
			return vt, err
		}
		switch num {
		case fValueTypeType, fValueTypeUnit:
			v, err := w.varint()
			if err != nil {
				return vt, err
			}
			if num == fValueTypeType {
				vt.Type = p.str(v)
			} else {
				vt.Unit = p.str(v)
			}
		default:
			if err := w.skip(wt); err != nil {
				return vt, err
			}
		}
	}
	return vt, nil
}

func (p *Profile) decodeSample(blob []byte) error {
	var s Sample
	w := &wireReader{buf: blob}
	var vals []uint64
	for !w.done() {
		num, wt, err := w.field()
		if err != nil {
			return err
		}
		switch num {
		case fSampleLocationID:
			if s.LocationIDs, err = repeatedVarints(w, wt, s.LocationIDs); err != nil {
				return err
			}
		case fSampleValue:
			if vals, err = repeatedVarints(w, wt, vals); err != nil {
				return err
			}
		default:
			if err := w.skip(wt); err != nil {
				return err
			}
		}
	}
	s.Values = make([]int64, len(vals))
	for i, v := range vals {
		s.Values[i] = int64(v)
	}
	p.Samples = append(p.Samples, s)
	return nil
}

func (p *Profile) decodeLocation(blob []byte) error {
	var id uint64
	var funcs []uint64
	w := &wireReader{buf: blob}
	for !w.done() {
		num, wt, err := w.field()
		if err != nil {
			return err
		}
		switch num {
		case fLocationID:
			if id, err = w.varint(); err != nil {
				return err
			}
		case fLocationLine:
			line, err := w.bytesField()
			if err != nil {
				return err
			}
			lw := &wireReader{buf: line}
			for !lw.done() {
				lnum, lwt, err := lw.field()
				if err != nil {
					return err
				}
				if lnum == fLineFunctionID {
					fid, err := lw.varint()
					if err != nil {
						return err
					}
					funcs = append(funcs, fid)
				} else if err := lw.skip(lwt); err != nil {
					return err
				}
			}
		default:
			if err := w.skip(wt); err != nil {
				return err
			}
		}
	}
	p.locations[id] = funcs
	return nil
}

func (p *Profile) decodeFunction(blob []byte) error {
	var id, nameIdx uint64
	w := &wireReader{buf: blob}
	for !w.done() {
		num, wt, err := w.field()
		if err != nil {
			return err
		}
		switch num {
		case fFunctionID:
			if id, err = w.varint(); err != nil {
				return err
			}
		case fFunctionName:
			if nameIdx, err = w.varint(); err != nil {
				return err
			}
		default:
			if err := w.skip(wt); err != nil {
				return err
			}
		}
	}
	p.functions[id] = p.str(nameIdx)
	return nil
}

// FuncsAt resolves one location ID to its function names (inline chain,
// leaf-most first; synthetic "loc#<id>" when symbols are absent).
func (p *Profile) FuncsAt(loc uint64) []string {
	fids := p.locations[loc]
	if len(fids) == 0 {
		return []string{fmt.Sprintf("loc#%d", loc)}
	}
	out := make([]string, 0, len(fids))
	for _, fid := range fids {
		if name := p.functions[fid]; name != "" {
			out = append(out, name)
		} else {
			out = append(out, fmt.Sprintf("func#%d", fid))
		}
	}
	return out
}

// --- share tables ---

// FuncShare is one row of a ShareTable.
type FuncShare struct {
	Name string  `json:"name"`
	Flat float64 `json:"flat"` // share of total attributed to this function as leaf
	Cum  float64 `json:"cum"`  // share of total with this function anywhere on the stack
}

// ShareTable is the per-function decomposition of one profile's sample
// values, normalized to [0,1] shares — the unit sbgt-profdiff compares
// and the baseline file records.
type ShareTable struct {
	SampleType string      `json:"sample_type"` // e.g. "cpu/nanoseconds"
	Total      int64       `json:"total"`
	Funcs      []FuncShare `json:"funcs"` // sorted by Cum descending
}

// valueIndex picks the value column to aggregate: the named type when
// given, else "cpu" when present, else the last column (pprof
// convention: the default sample type comes last).
func (p *Profile) valueIndex(sampleType string) (int, error) {
	if len(p.SampleTypes) == 0 {
		// Untyped profile: only a single column of values is meaningful.
		return 0, nil
	}
	if sampleType != "" {
		for i, st := range p.SampleTypes {
			if st.Type == sampleType {
				return i, nil
			}
		}
		return 0, fmt.Errorf("profiler: profile has no sample type %q (has %v)", sampleType, p.SampleTypes)
	}
	for i, st := range p.SampleTypes {
		if st.Type == "cpu" {
			return i, nil
		}
	}
	return len(p.SampleTypes) - 1, nil
}

// Table aggregates the profile into per-function flat and cumulative
// shares of the chosen sample type ("" picks cpu, else the profile's
// default column).
func (p *Profile) Table(sampleType string) (*ShareTable, error) {
	idx, err := p.valueIndex(sampleType)
	if err != nil {
		return nil, err
	}
	label := "values"
	if idx < len(p.SampleTypes) {
		label = p.SampleTypes[idx].Type + "/" + p.SampleTypes[idx].Unit
	}
	var total int64
	flat := map[string]int64{}
	cum := map[string]int64{}
	for _, s := range p.Samples {
		if idx >= len(s.Values) {
			continue
		}
		v := s.Values[idx]
		if v == 0 {
			continue
		}
		total += v
		// Cumulative: each function charged once per sample, however many
		// frames it occupies (recursion must not double-count).
		seen := map[string]bool{}
		for fi, loc := range s.LocationIDs {
			for li, name := range p.FuncsAt(loc) {
				if fi == 0 && li == 0 {
					flat[name] += v // leaf-most frame of leaf location
				}
				if !seen[name] {
					seen[name] = true
					cum[name] += v
				}
			}
		}
	}
	t := &ShareTable{SampleType: label, Total: total}
	for name, c := range cum {
		fs := FuncShare{Name: name, Cum: share(c, total), Flat: share(flat[name], total)}
		t.Funcs = append(t.Funcs, fs)
	}
	sort.Slice(t.Funcs, func(i, j int) bool {
		if t.Funcs[i].Cum != t.Funcs[j].Cum { //lint:allow floats exact inequality is a deterministic sort tie-break, not a numeric test
			return t.Funcs[i].Cum > t.Funcs[j].Cum
		}
		return t.Funcs[i].Name < t.Funcs[j].Name
	})
	return t, nil
}

func share(v, total int64) float64 {
	if total == 0 {
		return 0
	}
	f := float64(v) / float64(total)
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return 0
	}
	return f
}
