package profiler

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/obs"
)

// testProfiler builds a profiler over a temp store with a short CPU
// window and no background ticker — captures are driven explicitly.
func testProfiler(t *testing.T, mut func(*Config)) *Profiler {
	t.Helper()
	cfg := Config{
		Dir:       t.TempDir(),
		CPUWindow: 20 * time.Millisecond,
		Cooldown:  -1, // tests opt in to coalescing explicitly
	}
	if mut != nil {
		mut(&cfg)
	}
	p, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(func() { p.Close() })
	return p
}

func TestCaptureNowProducesBundle(t *testing.T) {
	reg := obs.NewRegistry()
	p := testProfiler(t, func(c *Config) { c.Reg = reg })
	meta, err := p.CaptureNow("test-capture", obs.A("k", "v"))
	if err != nil {
		t.Fatalf("CaptureNow: %v", err)
	}
	if meta.ID != "p000001" || meta.Class != ClassManual || meta.Reason != "test-capture" {
		t.Fatalf("meta = %+v", meta)
	}
	// Every snapshot profile plus the CPU window must be on disk and
	// listed in meta with its real size.
	for _, name := range []string{CPUProfile, HeapProfile, GoroutineProfile, MutexProfile} {
		sz, ok := meta.Profiles[name]
		if !ok {
			t.Fatalf("meta lists no %s: %+v", name, meta.Profiles)
		}
		info, err := os.Stat(filepath.Join(p.Dir(), meta.ID, name))
		if err != nil {
			t.Fatalf("stat %s: %v", name, err)
		}
		if info.Size() != sz {
			t.Fatalf("%s: meta size %d != disk size %d", name, sz, info.Size())
		}
	}
	// The goroutine profile must be non-empty and parseable — the e2e
	// "bundle is real" assertion, in unit form.
	f, err := p.Open(meta.ID, GoroutineProfile)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer f.Close()
	prof, err := ParseProfile(f)
	if err != nil {
		t.Fatalf("ParseProfile(goroutine): %v", err)
	}
	if len(prof.Samples) == 0 {
		t.Fatal("captured goroutine profile has no samples")
	}
}

func TestCaptureRetention(t *testing.T) {
	p := testProfiler(t, func(c *Config) {
		c.KeepSamples = 2
		c.KeepAnomalies = 2
		c.CPUWindow = -1 // snapshots only: retention does not need CPU windows
	})
	for i := 0; i < 4; i++ {
		if _, _, err := p.Capture("bg", ClassSample, "", nil); err != nil {
			t.Fatalf("capture %d: %v", i, err)
		}
	}
	if _, _, err := p.Capture("manual", ClassManual, "", nil); err != nil {
		t.Fatalf("manual capture: %v", err)
	}
	bundles := p.Bundles()
	counts := map[string]int{}
	for _, b := range bundles {
		counts[b.Class]++
	}
	if counts[ClassSample] != 2 || counts[ClassManual] != 1 {
		t.Fatalf("retained classes = %v, want 2 samples + 1 manual", counts)
	}
	// Evicted bundle dirs are gone from disk; retained ones remain.
	entries, err := os.ReadDir(p.Dir())
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != len(bundles) {
		t.Fatalf("disk has %d entries, index has %d", len(entries), len(bundles))
	}
	// Newest survive: p000003, p000004 (samples) and p000005 (manual).
	if bundles[0].ID != "p000003" || bundles[len(bundles)-1].ID != "p000005" {
		t.Fatalf("retained = %+v", bundles)
	}
}

func TestCaptureCoalescing(t *testing.T) {
	now := time.Unix(1000, 0)
	reg := obs.NewRegistry()
	p := testProfiler(t, func(c *Config) {
		c.Cooldown = time.Minute
		c.CPUWindow = -1
		c.Reg = reg
		c.Clock = func() time.Time { return now }
	})
	m1, captured, err := p.Capture("slo:p99", ClassAnomaly, "a000001", nil)
	if err != nil || !captured {
		t.Fatalf("first capture: %v captured=%v", err, captured)
	}
	// Same reason inside the cooldown: coalesced into m1, no new bundle.
	now = now.Add(10 * time.Second)
	m2, captured, err := p.Capture("slo:p99", ClassAnomaly, "a000002", nil)
	if err != nil {
		t.Fatalf("second capture: %v", err)
	}
	if captured || m2 == nil || m2.ID != m1.ID || m2.Coalesced != 1 {
		t.Fatalf("coalesce: captured=%v meta=%+v", captured, m2)
	}
	// The coalesced count is persisted into the bundle's meta.json.
	raw, err := os.ReadFile(filepath.Join(p.Dir(), m1.ID, MetaFile))
	if err != nil {
		t.Fatal(err)
	}
	var onDisk BundleMeta
	if err := json.Unmarshal(raw, &onDisk); err != nil {
		t.Fatal(err)
	}
	if onDisk.Coalesced != 1 {
		t.Fatalf("on-disk coalesced = %d, want 1", onDisk.Coalesced)
	}
	// A different reason captures immediately.
	if _, captured, err = p.Capture("slo:errors", ClassAnomaly, "a000003", nil); err != nil || !captured {
		t.Fatalf("different-reason capture: %v captured=%v", err, captured)
	}
	// Past the cooldown the original reason captures again.
	now = now.Add(2 * time.Minute)
	if _, captured, err = p.Capture("slo:p99", ClassAnomaly, "a000004", nil); err != nil || !captured {
		t.Fatalf("post-cooldown capture: %v captured=%v", err, captured)
	}
}

func TestAnomalyHookCapturesBundle(t *testing.T) {
	flight := obs.NewFlightRecorder(64)
	flight.SetCooldown(0)
	p := testProfiler(t, func(c *Config) {
		c.Flight = flight
		c.CPUWindow = -1
	})
	p.Start()
	flight.Scope("acme", "c1").Event(obs.Event{Kind: "request", TraceID: 42})
	if !flight.TriggerAnomaly("slo:test-breach", obs.A("objective", "p99")) {
		t.Fatal("TriggerAnomaly did not dump")
	}
	dumps := flight.Anomalies()
	if len(dumps) != 1 {
		t.Fatalf("dumps = %d", len(dumps))
	}
	// The capture is asynchronous (channel hand-off); poll briefly.
	var bundle *BundleMeta
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		for _, b := range p.Bundles() {
			if b.AnomalyID == dumps[0].ID {
				bundle = &b
			}
		}
		if bundle != nil {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if bundle == nil {
		t.Fatalf("no bundle captured for anomaly %s; bundles=%+v", dumps[0].ID, p.Bundles())
	}
	if bundle.Class != ClassAnomaly || bundle.Reason != "slo:test-breach" {
		t.Fatalf("bundle = %+v", bundle)
	}
	// The offending identity from the flight events is stamped on.
	if bundle.Tenant != "acme" || bundle.TraceID != 42 {
		t.Fatalf("bundle identity = tenant %q trace %d, want acme/42", bundle.Tenant, bundle.TraceID)
	}
}

func TestBackgroundSampling(t *testing.T) {
	p := testProfiler(t, func(c *Config) {
		c.Interval = 20 * time.Millisecond
		c.CPUWindow = -1
	})
	p.Start()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && len(p.Bundles()) == 0 {
		time.Sleep(10 * time.Millisecond)
	}
	bundles := p.Bundles()
	if len(bundles) == 0 {
		t.Fatal("background loop captured nothing")
	}
	if bundles[0].Class != ClassSample {
		t.Fatalf("bundle = %+v", bundles[0])
	}
}

func TestScanRecoversBundles(t *testing.T) {
	dir := t.TempDir()
	p1, err := New(Config{Dir: dir, CPUWindow: -1, Cooldown: -1})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := p1.Capture("before-restart", ClassManual, "", nil); err != nil {
		t.Fatal(err)
	}
	p1.Close()
	// A second profiler over the same store re-indexes and resumes the
	// sequence past the recovered bundle.
	p2, err := New(Config{Dir: dir, CPUWindow: -1, Cooldown: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	if got := p2.Bundles(); len(got) != 1 || got[0].ID != "p000001" || got[0].Reason != "before-restart" {
		t.Fatalf("recovered = %+v", got)
	}
	meta, _, err := p2.Capture("after-restart", ClassManual, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	if meta.ID != "p000002" {
		t.Fatalf("sequence did not resume: %+v", meta)
	}
}

func TestHandlerRoutes(t *testing.T) {
	p := testProfiler(t, func(c *Config) { c.CPUWindow = -1 })
	m1, _, err := p.Capture("r1", ClassManual, "a000007", nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := p.Capture("r2", ClassManual, "", nil); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(http.StripPrefix("/debug/profiles", p.Handler()))
	defer srv.Close()

	// Index lists both bundles.
	var idx IndexDoc
	if err := getJSON(http.DefaultClient, srv.URL+"/debug/profiles", &idx); err != nil {
		t.Fatalf("index: %v", err)
	}
	if len(idx.Bundles) != 2 {
		t.Fatalf("index = %+v", idx)
	}
	// ?anomaly= filters to the matching bundle.
	if err := getJSON(http.DefaultClient, srv.URL+"/debug/profiles?anomaly=a000007", &idx); err != nil {
		t.Fatalf("filtered index: %v", err)
	}
	if len(idx.Bundles) != 1 || idx.Bundles[0].ID != m1.ID {
		t.Fatalf("filtered index = %+v", idx)
	}
	// Meta route.
	var meta BundleMeta
	if err := getJSON(http.DefaultClient, srv.URL+"/debug/profiles/"+m1.ID, &meta); err != nil {
		t.Fatalf("meta: %v", err)
	}
	if meta.Reason != "r1" {
		t.Fatalf("meta = %+v", meta)
	}
	// Profile bytes parse.
	resp, err := http.Get(srv.URL + "/debug/profiles/" + m1.ID + "/" + GoroutineProfile)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("profile GET = %s", resp.Status)
	}
	if _, err := ParseProfile(resp.Body); err != nil {
		t.Fatalf("served profile does not parse: %v", err)
	}
	// Unknown bundle and traversal paths 404.
	for _, path := range []string{"/debug/profiles/p999999", "/debug/profiles/" + m1.ID + "/" + MetaFile + "x", "/debug/profiles/../../etc/passwd"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			t.Fatalf("GET %s = 200, want error", path)
		}
	}
}

func TestHarvestPullsBundles(t *testing.T) {
	p := testProfiler(t, func(c *Config) { c.CPUWindow = -1 })
	m1, _, err := p.Capture("remote-capture", ClassManual, "a000003", nil)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(http.StripPrefix("/debug/profiles", p.Handler()))
	defer srv.Close()

	dest := t.TempDir()
	got, err := Harvest(nil, srv.URL, dest)
	if err != nil {
		t.Fatalf("Harvest: %v", err)
	}
	if len(got) != 1 || got[0].ID != m1.ID {
		t.Fatalf("harvested = %+v", got)
	}
	// The harvested bundle has the same layout as a local store: a
	// re-scan indexes it, and its profiles parse.
	p2, err := New(Config{Dir: dest, CPUWindow: -1, Cooldown: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	if got := p2.Bundles(); len(got) != 1 || got[0].AnomalyID != "a000003" {
		t.Fatalf("re-scan of harvest dir = %+v", got)
	}
	f, err := p2.Open(m1.ID, GoroutineProfile)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := ParseProfile(f); err != nil {
		t.Fatalf("harvested profile does not parse: %v", err)
	}
	// A second harvest is incremental: nothing new to pull.
	got, err = Harvest(nil, srv.URL, dest)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("re-harvest pulled %+v, want nothing", got)
	}
}

func TestCPUWindowCapture(t *testing.T) {
	p := testProfiler(t, nil) // 20ms CPU window
	// Burn a little CPU so the window has something to see (not asserted
	// on — 100 Hz over 20ms may still catch nothing; only parseability is).
	x := 0.0
	for i := 0; i < 1_000_00; i++ {
		x += float64(i) * 1.000001
	}
	_ = x
	meta, err := p.CaptureNow("cpu-window")
	if err != nil {
		t.Fatal(err)
	}
	if meta.CPUError != "" {
		t.Fatalf("CPU capture errored: %s", meta.CPUError)
	}
	if meta.CPUWindow != 20*time.Millisecond {
		t.Fatalf("CPUWindow = %v", meta.CPUWindow)
	}
	f, err := p.Open(meta.ID, CPUProfile)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	prof, err := ParseProfile(f)
	if err != nil {
		t.Fatalf("CPU profile does not parse: %v", err)
	}
	// A CPU profile always carries its sample-type header even with no
	// samples caught in the window.
	found := false
	for _, st := range prof.SampleTypes {
		if st.Type == "cpu" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no cpu sample type: %+v", prof.SampleTypes)
	}
}

func TestNilProfilerIsSafe(t *testing.T) {
	var p *Profiler
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	p.Start()
	if got := p.Bundles(); got != nil {
		t.Fatalf("nil Bundles = %+v", got)
	}
	if _, err := p.CaptureNow("x"); err == nil {
		t.Fatal("nil CaptureNow should error")
	}
	rec := httptest.NewRecorder()
	p.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/", nil))
	if rec.Code != http.StatusNotFound {
		t.Fatalf("nil handler = %d", rec.Code)
	}
	if p.Dir() != "" {
		t.Fatal("nil Dir should be empty")
	}
}

// BenchmarkSnapshotCapture measures the cost of one snapshot-only
// capture (heap+goroutine+mutex, no CPU window) — the per-interval
// price of background sampling, certifying the overhead budget
// alongside the S1P bench experiment.
func BenchmarkSnapshotCapture(b *testing.B) {
	p, err := New(Config{Dir: b.TempDir(), CPUWindow: -1, Cooldown: -1, KeepSamples: 2})
	if err != nil {
		b.Fatal(err)
	}
	defer p.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := p.Capture("bench", ClassSample, "", nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRecordWhileWindowOpen measures the request-path cost the
// profiler adds while a CPU window is open: none directly (capture runs
// on its own goroutine) — this pins the hot-path arithmetic a profiled
// process runs, for comparing profiled vs unprofiled in the S1P notes.
func BenchmarkRecordWhileWindowOpen(b *testing.B) {
	p, err := New(Config{Dir: b.TempDir(), CPUWindow: 10 * time.Second, Cooldown: -1})
	if err != nil {
		b.Fatal(err)
	}
	defer p.Close() // interrupts the open window
	go p.Capture("bench-window", ClassManual, "", nil) //lint:allow concurrency bench helper; Close interrupts the window and waits via capMu on next capture
	time.Sleep(5 * time.Millisecond) // let the window open
	b.ReportAllocs()
	b.ResetTimer()
	x := 0.0
	for i := 0; i < b.N; i++ {
		x += float64(i) * 1.000001
	}
	_ = x
}
