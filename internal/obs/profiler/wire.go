package profiler

import (
	"repro/internal/obs"
)

// StartFromRuntime builds and starts a profiler from a command's parsed
// obs flags, closing the loop the obs package cannot (it would be an
// import cycle): the profiler's bundle store mounts on the runtime's
// /debug/profiles route, anomaly dumps from the runtime's flight
// recorder trigger captures, and Runtime.Close drains the profiler
// first so an in-flight CPU window never collides with the -cpuprofile
// flag's StopCPUProfile.
//
// Returns (nil, nil) when -profile-dir is unset — a nil *Profiler is
// safe to use, so callers need no conditional.
func StartFromRuntime(rt *obs.Runtime, f *obs.CLIFlags) (*Profiler, error) {
	if f == nil || f.ProfileDir == "" {
		return nil, nil
	}
	p, err := New(Config{
		Dir:       f.ProfileDir,
		Interval:  f.ProfileInterval,
		CPUWindow: f.ProfileCPUWindow,
		Reg:       rt.Reg,
		Flight:    rt.Flight,
		Log:       rt.Log,
	})
	if err != nil {
		return nil, err
	}
	p.Start()
	rt.SetProfilesHandler(p.Handler())
	rt.OnClose(p.Close)
	rt.Log.Info("profiler: continuous profiling enabled",
		"dir", f.ProfileDir, "interval", f.ProfileInterval, "cpu_window", f.ProfileCPUWindow)
	return p, nil
}
