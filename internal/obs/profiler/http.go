package profiler

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
)

// /debug/profiles — the bundle store's HTTP surface, mounted by
// obs.NewMux via Handler(). Three routes:
//
//	GET .../            index: {"bundles":[meta...]}, ?anomaly=aNNNNNN filters
//	GET .../{id}        one bundle's meta.json
//	GET .../{id}/{file} raw profile bytes (go tool pprof-able)
//
// The same routes are what Harvest walks when the driver pulls bundles
// off remote executors, so the browse surface and the harvest protocol
// are one implementation.

// IndexDoc is the /debug/profiles index payload.
type IndexDoc struct {
	Bundles []BundleMeta `json:"bundles"`
}

// Handler serves the bundle store. The mux strips the mount prefix, so
// paths here are "/", "/{id}", "/{id}/{file}". Nil-safe: a nil profiler
// yields 404s.
func (p *Profiler) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if p == nil {
			http.Error(w, "profiler not enabled", http.StatusNotFound)
			return
		}
		parts := strings.Split(strings.Trim(r.URL.Path, "/"), "/")
		switch {
		case len(parts) == 1 && parts[0] == "":
			p.serveIndex(w, r)
		case len(parts) == 1:
			p.serveMeta(w, parts[0])
		case len(parts) == 2:
			p.serveProfile(w, parts[0], parts[1])
		default:
			http.Error(w, "not found", http.StatusNotFound)
		}
	})
}

func (p *Profiler) serveIndex(w http.ResponseWriter, r *http.Request) {
	bundles := p.Bundles()
	if anom := r.URL.Query().Get("anomaly"); anom != "" {
		kept := bundles[:0]
		for _, b := range bundles {
			if b.AnomalyID == anom {
				kept = append(kept, b)
			}
		}
		bundles = kept
	}
	if bundles == nil {
		bundles = []BundleMeta{}
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(&IndexDoc{Bundles: bundles}) //lint:allow errcheck response write errors are the client's problem
}

func (p *Profiler) serveMeta(w http.ResponseWriter, id string) {
	meta, ok := p.Lookup(id)
	if !ok {
		http.Error(w, "no such bundle", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(meta) //lint:allow errcheck response write errors are the client's problem
}

func (p *Profiler) serveProfile(w http.ResponseWriter, id, name string) {
	// Open checks the name against the bundle's meta, so a traversal path
	// ("../..") can never reach the filesystem.
	f, err := p.Open(id, name)
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	defer f.Close()
	w.Header().Set("Content-Type", "application/octet-stream")
	io.Copy(w, f) //lint:allow errcheck response write errors are the client's problem
}

// Harvest pulls every profile bundle a remote process serves on
// base+"/debug/profiles" into dest (one directory per bundle, same
// layout as a local store, so harvested bundles feed sbgt-profdiff and
// re-scan like local ones). Returns the harvested metas. Bundles that
// already exist locally are skipped, so repeated harvests are
// incremental.
func Harvest(client *http.Client, base, dest string) ([]BundleMeta, error) {
	if client == nil {
		client = http.DefaultClient
	}
	base = strings.TrimSuffix(base, "/")
	if !strings.HasPrefix(base, "http://") && !strings.HasPrefix(base, "https://") {
		base = "http://" + base
	}
	var idx IndexDoc
	if err := getJSON(client, base+"/debug/profiles", &idx); err != nil {
		return nil, fmt.Errorf("profiler: harvest index: %w", err)
	}
	if err := os.MkdirAll(dest, 0o755); err != nil {
		return nil, fmt.Errorf("profiler: harvest dest: %w", err)
	}
	var got []BundleMeta
	for _, meta := range idx.Bundles {
		dir := filepath.Join(dest, meta.ID)
		if _, err := os.Stat(filepath.Join(dir, MetaFile)); err == nil {
			continue // already harvested
		}
		tmp, err := os.MkdirTemp(dest, ".harvest-*")
		if err != nil {
			return got, err
		}
		if err := harvestBundle(client, base, meta, tmp); err != nil {
			os.RemoveAll(tmp) //lint:allow errcheck best-effort cleanup of the partial pull
			return got, fmt.Errorf("profiler: harvest %s: %w", meta.ID, err)
		}
		if err := os.Rename(tmp, dir); err != nil {
			os.RemoveAll(tmp) //lint:allow errcheck best-effort cleanup of the partial pull
			return got, fmt.Errorf("profiler: harvest %s: %w", meta.ID, err)
		}
		got = append(got, meta)
	}
	return got, nil
}

func harvestBundle(client *http.Client, base string, meta BundleMeta, dir string) error {
	raw, err := json.MarshalIndent(&meta, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(dir, MetaFile), raw, 0o644); err != nil {
		return err
	}
	for name := range meta.Profiles {
		if name == MetaFile || strings.Contains(name, "/") || strings.Contains(name, "..") {
			continue // never let a remote meta steer local paths
		}
		url := fmt.Sprintf("%s/debug/profiles/%s/%s", base, meta.ID, name)
		if err := getFile(client, url, filepath.Join(dir, name)); err != nil {
			return err
		}
	}
	return nil
}

func getJSON(client *http.Client, url string, into any) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(into)
}

func getFile(client *http.Client, url, path string) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	_, err = io.Copy(f, resp.Body)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}
