// Package obs is the observability core of the reproduction: a
// dependency-free, race-safe metrics registry (counters, gauges,
// fixed-bucket histograms with a lock-free sync/atomic hot path), a Span
// API for named timed regions with parent/child nesting, a leveled
// structured logger built on log/slog, and exporters (expvar, Prometheus
// text, JSON snapshots, and an HTTP mux serving /metrics, /healthz, and
// net/http/pprof).
//
// SBGT's headline claims are throughput numbers; this package is how the
// repository sees where time and capacity go at runtime instead of
// relying on one-off benchmarks. The engine pool, the posterior backends
// (through posterior.Instrument), the cluster driver and executors, and
// core sessions all report into a Registry; the CLIs expose it with
// -metrics-addr, -log-level, and -trace-out.
//
// Everything is nil-tolerant by design: a nil *Registry hands out
// detached (functional but unexported) metrics, a nil *Tracer hands out
// spans that time but record nowhere, so instrumented code pays one nil
// check instead of branching at every call site.
package obs

import (
	"fmt"
	"sort"
	"strings"
)

// Label is one key=value metric dimension (e.g. backend="dense").
type Label struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// L builds a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// fullName renders the canonical identity of a metric: the name followed
// by its labels sorted by key, in Prometheus notation. Two registrations
// with the same full name return the same metric.
func fullName(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Key, l.Value)
	}
	b.WriteByte('}')
	return b.String()
}

// validName reports whether name is a legal metric identifier
// ([a-zA-Z_:][a-zA-Z0-9_:]*), the subset shared by Prometheus and expvar
// consumers.
func validName(name string) bool {
	if name == "" {
		return false
	}
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// ExpBuckets returns n exponentially growing histogram upper bounds
// starting at start and multiplying by factor: the standard latency
// ladder. It panics on a non-positive start, a factor <= 1, or n < 1 —
// all programmer errors in metric declarations.
func ExpBuckets(start, factor float64, n int) []float64 {
	if !(start > 0) || !(factor > 1) || n < 1 {
		panic(fmt.Sprintf("obs: invalid ExpBuckets(%v, %v, %d)", start, factor, n))
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		//lint:allow floats growing bucket ladder (factor > 1); no probability-scale underflow
		v *= factor
	}
	return out
}

// LatencyBuckets is the default upper-bound ladder for operation
// latencies in seconds: 1µs up to ~260s, factor 4 per bucket.
var LatencyBuckets = ExpBuckets(1e-6, 4, 14)

// SizeBuckets is the default ladder for byte counts: 64 B to ~1 GiB.
var SizeBuckets = ExpBuckets(64, 8, 8)
