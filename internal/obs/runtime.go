package obs

import (
	"runtime"
	"sync"
	"time"
)

// runtimeSampler caches one runtime.ReadMemStats sample so a scrape that
// reads several gauges pays the stop-the-world cost once, and a burst of
// scrapes (a dashboard plus an alerter) pays it at most every interval.
type runtimeSampler struct {
	mu    sync.Mutex
	at    time.Time
	stats runtime.MemStats
	ttl   time.Duration
}

func (s *runtimeSampler) sample() *runtime.MemStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	if time.Since(s.at) > s.ttl {
		runtime.ReadMemStats(&s.stats)
		s.at = time.Now()
	}
	return &s.stats
}

// RegisterRuntimeMetrics installs Go runtime gauges on reg, sampled at
// scrape time (ReadMemStats is cached for ~100ms so multi-gauge snapshots
// read one sample):
//
//	sbgt_go_goroutines             live goroutine count
//	sbgt_go_heap_inuse_bytes       bytes in in-use heap spans
//	sbgt_go_heap_alloc_bytes       bytes of allocated heap objects
//	sbgt_go_gc_cycles              completed GC cycles (gauge: sampled, not a handle)
//	sbgt_go_gc_pause_last_seconds  most recent GC stop-the-world pause
//	sbgt_go_gc_pause_total_seconds cumulative GC pause time
//
// Safe to call more than once on the same registry (GaugeFunc replaces).
// A nil registry is a no-op.
func RegisterRuntimeMetrics(reg *Registry) {
	if reg == nil {
		return
	}
	s := &runtimeSampler{ttl: 100 * time.Millisecond}
	reg.GaugeFunc("sbgt_go_goroutines", func() float64 {
		return float64(runtime.NumGoroutine())
	})
	reg.GaugeFunc("sbgt_go_heap_inuse_bytes", func() float64 {
		return float64(s.sample().HeapInuse)
	})
	reg.GaugeFunc("sbgt_go_heap_alloc_bytes", func() float64 {
		return float64(s.sample().HeapAlloc)
	})
	reg.GaugeFunc("sbgt_go_gc_cycles", func() float64 {
		return float64(s.sample().NumGC)
	})
	reg.GaugeFunc("sbgt_go_gc_pause_last_seconds", func() float64 {
		st := s.sample()
		if st.NumGC == 0 {
			return 0
		}
		return float64(st.PauseNs[(st.NumGC+255)%256]) / 1e9
	})
	reg.GaugeFunc("sbgt_go_gc_pause_total_seconds", func() float64 {
		return float64(s.sample().PauseTotalNs) / 1e9
	})
}
