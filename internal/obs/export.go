package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Snapshot is a point-in-time capture of every metric in a registry, the
// unit the JSON exporter and the bench harness serialize. Within one
// section entries are sorted by name then labels, so snapshots diff
// cleanly across runs.
type Snapshot struct {
	Counters   []CounterSnapshot   `json:"counters,omitempty"`
	Gauges     []GaugeSnapshot     `json:"gauges,omitempty"`
	Histograms []HistogramSnapshot `json:"histograms,omitempty"`
}

// CounterSnapshot is one counter's captured state.
type CounterSnapshot struct {
	Name   string  `json:"name"`
	Labels []Label `json:"labels,omitempty"`
	Value  uint64  `json:"value"`
}

// GaugeSnapshot is one gauge's captured state.
type GaugeSnapshot struct {
	Name   string  `json:"name"`
	Labels []Label `json:"labels,omitempty"`
	Value  float64 `json:"value"`
}

// BucketSnapshot is one cumulative histogram bucket: the count of
// observations <= UpperBound. The +Inf bucket equals Count.
type BucketSnapshot struct {
	UpperBound float64 `json:"le"`
	Count      uint64  `json:"count"`
}

// bucketJSON is the wire form of a bucket. The upper bound travels as a
// string because the last bucket is always +Inf, which encoding/json
// cannot represent as a number.
type bucketJSON struct {
	UpperBound string `json:"le"`
	Count      uint64 `json:"count"`
}

// MarshalJSON renders the bound in Prometheus notation ("0.01", "+Inf").
func (b BucketSnapshot) MarshalJSON() ([]byte, error) {
	return json.Marshal(bucketJSON{UpperBound: formatValue(b.UpperBound), Count: b.Count})
}

// UnmarshalJSON parses the string bound back, accepting "+Inf"/"-Inf".
func (b *BucketSnapshot) UnmarshalJSON(data []byte) error {
	var w bucketJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	var v float64
	switch w.UpperBound {
	case "+Inf", "Inf":
		v = math.Inf(1)
	case "-Inf":
		v = math.Inf(-1)
	default:
		f, err := strconv.ParseFloat(w.UpperBound, 64)
		if err != nil {
			return fmt.Errorf("obs: bad bucket bound %q: %w", w.UpperBound, err)
		}
		v = f
	}
	b.UpperBound = v
	b.Count = w.Count
	return nil
}

// ExemplarSnapshot is one bucket's captured exemplar. Bucket is the
// index into the histogram's Buckets slice the exemplar belongs to.
type ExemplarSnapshot struct {
	Bucket  int       `json:"bucket"`
	Value   float64   `json:"value"`
	TraceID uint64    `json:"trace_id"`
	Time    time.Time `json:"t"`
}

// HistogramSnapshot is one histogram's captured state.
type HistogramSnapshot struct {
	Name      string             `json:"name"`
	Labels    []Label            `json:"labels,omitempty"`
	Count     uint64             `json:"count"`
	Sum       float64            `json:"sum"`
	Buckets   []BucketSnapshot   `json:"buckets"`
	Exemplars []ExemplarSnapshot `json:"exemplars,omitempty"`
}

// Snapshot captures every registered metric. Counters and gauges are
// read atomically per metric; a histogram's buckets/count/sum are read
// without a global lock, so a snapshot taken mid-observation can be
// ahead/behind by in-flight observations — exact once writers quiesce.
func (r *Registry) Snapshot() *Snapshot {
	snap := &Snapshot{}
	for _, e := range r.snapshotEntries() {
		labels := sortedLabels(e.labels)
		switch e.kind {
		case kindCounter:
			snap.Counters = append(snap.Counters, CounterSnapshot{
				Name: e.name, Labels: labels, Value: e.c.Value(),
			})
		case kindGauge:
			snap.Gauges = append(snap.Gauges, GaugeSnapshot{
				Name: e.name, Labels: labels, Value: e.g.Value(),
			})
		case kindGaugeFunc:
			snap.Gauges = append(snap.Gauges, GaugeSnapshot{
				Name: e.name, Labels: labels, Value: e.gf(),
			})
		case kindHistogram:
			h := e.h
			hs := HistogramSnapshot{
				Name: e.name, Labels: labels,
				Buckets: make([]BucketSnapshot, 0, len(h.bounds)+1),
			}
			var cum uint64
			for i, b := range h.bounds {
				cum += h.buckets[i].Load()
				hs.Buckets = append(hs.Buckets, BucketSnapshot{UpperBound: b, Count: cum})
			}
			cum += h.buckets[len(h.bounds)].Load()
			hs.Buckets = append(hs.Buckets, BucketSnapshot{UpperBound: math.Inf(1), Count: cum})
			hs.Count = h.Count()
			hs.Sum = h.Sum()
			for b := range hs.Buckets {
				if ex := h.exemplarAt(b); ex != nil {
					hs.Exemplars = append(hs.Exemplars, ExemplarSnapshot{
						Bucket: b, Value: ex.Value, TraceID: ex.TraceID, Time: ex.Time,
					})
				}
			}
			snap.Histograms = append(snap.Histograms, hs)
		}
	}
	return snap
}

func sortedLabels(ls []Label) []Label {
	if len(ls) == 0 {
		return nil
	}
	out := append([]Label(nil), ls...)
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// WriteJSON renders the snapshot as indented JSON.
func (s *Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// formatValue renders a float the way Prometheus text exposition expects.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	default:
		return strconv.FormatFloat(v, 'g', -1, 64)
	}
}

// promLabels renders a label set (plus an optional extra pair) in
// exposition format: {k="v",...} or the empty string.
func promLabels(labels []Label, extraKey, extraVal string) string {
	if len(labels) == 0 && extraKey == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Key, l.Value)
	}
	if extraKey != "" {
		if len(labels) > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", extraKey, extraVal)
	}
	b.WriteByte('}')
	return b.String()
}

// WritePrometheus renders the snapshot in Prometheus text exposition
// format (version 0.0.4): one # TYPE line per metric family, histograms
// expanded into _bucket/_sum/_count series with cumulative le labels.
func (s *Snapshot) WritePrometheus(w io.Writer) error {
	var b strings.Builder
	typed := map[string]bool{}
	writeType := func(name, typ string) {
		if !typed[name] {
			typed[name] = true
			fmt.Fprintf(&b, "# TYPE %s %s\n", name, typ)
		}
	}
	for _, c := range s.Counters {
		writeType(c.Name, "counter")
		fmt.Fprintf(&b, "%s%s %d\n", c.Name, promLabels(c.Labels, "", ""), c.Value)
	}
	for _, g := range s.Gauges {
		writeType(g.Name, "gauge")
		fmt.Fprintf(&b, "%s%s %s\n", g.Name, promLabels(g.Labels, "", ""), formatValue(g.Value))
	}
	for _, h := range s.Histograms {
		writeType(h.Name, "histogram")
		for _, bk := range h.Buckets {
			fmt.Fprintf(&b, "%s_bucket%s %d\n",
				h.Name, promLabels(h.Labels, "le", formatValue(bk.UpperBound)), bk.Count)
		}
		fmt.Fprintf(&b, "%s_sum%s %s\n", h.Name, promLabels(h.Labels, "", ""), formatValue(h.Sum))
		fmt.Fprintf(&b, "%s_count%s %d\n", h.Name, promLabels(h.Labels, "", ""), h.Count)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteOpenMetrics renders the snapshot in OpenMetrics 1.0 text format:
// counter families are exposed under their base name (the _total suffix
// becomes the sample suffix), histogram buckets carry exemplars in the
// `# {trace_id="…"} value timestamp` form, and the exposition ends with
// the mandatory # EOF marker. This is the format Prometheus scrapes when
// it negotiates application/openmetrics-text — and the only text format
// that can carry exemplars at all.
func (s *Snapshot) WriteOpenMetrics(w io.Writer) error {
	var b strings.Builder
	typed := map[string]bool{}
	writeType := func(name, typ string) {
		if !typed[name] {
			typed[name] = true
			fmt.Fprintf(&b, "# TYPE %s %s\n", name, typ)
		}
	}
	exemplar := func(h HistogramSnapshot, bucket int) string {
		for _, ex := range h.Exemplars {
			if ex.Bucket == bucket {
				return fmt.Sprintf(" # {trace_id=\"%016x\"} %s %s",
					ex.TraceID, formatValue(ex.Value), openMetricsTS(ex.Time))
			}
		}
		return ""
	}
	for _, c := range s.Counters {
		// OpenMetrics counters are declared under the base name; the sample
		// line keeps the conventional _total suffix.
		base := strings.TrimSuffix(c.Name, "_total")
		writeType(base, "counter")
		fmt.Fprintf(&b, "%s_total%s %d\n", base, promLabels(c.Labels, "", ""), c.Value)
	}
	for _, g := range s.Gauges {
		writeType(g.Name, "gauge")
		fmt.Fprintf(&b, "%s%s %s\n", g.Name, promLabels(g.Labels, "", ""), formatValue(g.Value))
	}
	for _, h := range s.Histograms {
		writeType(h.Name, "histogram")
		for i, bk := range h.Buckets {
			fmt.Fprintf(&b, "%s_bucket%s %d%s\n",
				h.Name, promLabels(h.Labels, "le", formatValue(bk.UpperBound)), bk.Count, exemplar(h, i))
		}
		fmt.Fprintf(&b, "%s_sum%s %s\n", h.Name, promLabels(h.Labels, "", ""), formatValue(h.Sum))
		fmt.Fprintf(&b, "%s_count%s %d\n", h.Name, promLabels(h.Labels, "", ""), h.Count)
	}
	b.WriteString("# EOF\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// openMetricsTS renders a timestamp as seconds-with-fraction since the
// epoch, the OpenMetrics exemplar timestamp form.
func openMetricsTS(t time.Time) string {
	return strconv.FormatFloat(float64(t.UnixNano())/1e9, 'f', 3, 64)
}

// PublishExpvar exposes the registry under the given expvar name as a
// Func rendering the JSON snapshot (visible on /debug/vars). Publishing
// the same name twice is a no-op: expvar forbids replacement, and the
// first-published registry wins.
func (r *Registry) PublishExpvar(name string) {
	if r == nil || expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, expvar.Func(func() any { return r.Snapshot() }))
}
