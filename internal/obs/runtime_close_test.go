package obs_test

// External-package test so it can wire internal/obs/profiler on top of
// the Runtime the way command mains do — the obs package itself cannot
// import the profiler (the dependency arrow goes the other way).

import (
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/profiler"
)

// TestRuntimeCloseOrdering boots a Runtime the way sbgt-exec does —
// -cpuprofile AND -metrics-addr AND -profile-dir together — then races
// Close from concurrent goroutines against a SIGTERM-style readiness
// drain. It pins three contracts:
//
//   - OnClose hooks (the profiler) run before StopCPUProfile, so the
//     -cpuprofile file is a complete, parseable pprof document even when
//     the continuous profiler was live.
//   - Close is idempotent and concurrency-safe: every caller observes
//     the same result and the teardown runs once.
//   - After Close returns, the metrics listener is down.
func TestRuntimeCloseOrdering(t *testing.T) {
	dir := t.TempDir()
	cpuPath := filepath.Join(dir, "cpu.pprof")
	f := &obs.CLIFlags{
		MetricsAddr:      "127.0.0.1:0",
		LogLevel:         "error",
		CPUProfile:       cpuPath,
		ProfileDir:       filepath.Join(dir, "profiles"),
		ProfileCPUWindow: 50 * time.Millisecond,
	}
	rt, err := f.Start("obs-close-test")
	if err != nil {
		t.Fatal(err)
	}
	prof, err := profiler.StartFromRuntime(rt, f)
	if err != nil {
		t.Fatal(err)
	}
	if prof == nil {
		t.Fatal("profiler not started despite -profile-dir")
	}

	// A manual capture while the flag-owned CPU profile is running: the
	// window must fail over gracefully (runtime/pprof is exclusive) but
	// the snapshot bundle still lands and is served over the runtime's
	// /debug/profiles indirection.
	meta, err := prof.CaptureNow("close-ordering-test")
	if err != nil {
		t.Fatal(err)
	}
	if meta.CPUError == "" {
		t.Error("expected CPUError while -cpuprofile owns the CPU profiler")
	}
	base := "http://" + rt.MetricsAddr()
	resp, err := http.Get(base + "/debug/profiles/" + meta.ID)
	if err != nil {
		t.Fatal(err)
	}
	//lint:allow errcheck test teardown of a response body
	io.Copy(io.Discard, resp.Body)
	//lint:allow errcheck test teardown of a response body
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s/debug/profiles/%s: status %d", base, meta.ID, resp.StatusCode)
	}

	// Race the deferred-Close path against a SIGTERM drain: one goroutine
	// plays the signal handler (flip readiness, then Close), the others
	// are deferred Closes firing at process exit.
	const closers = 3
	errs := make([]error, closers)
	var wg sync.WaitGroup
	for i := 0; i < closers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if i == 0 {
				rt.SetReadyError(fmt.Errorf("draining"))
			}
			errs[i] = rt.Close()
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != errs[0] {
			t.Errorf("Close[%d] = %v, want the shared result %v", i, err, errs[0])
		}
	}
	if errs[0] != nil {
		t.Fatalf("Close: %v", errs[0])
	}
	// A late straggler (a second deferred Close) sees the cached result.
	if err := rt.Close(); err != nil {
		t.Fatalf("repeat Close: %v", err)
	}

	// The -cpuprofile file must be a finished pprof document: gzip
	// terminated, string table intact. If an OnClose hook ran after
	// StopCPUProfile — or teardown raced itself — this parse fails.
	p, err := profiler.ParseProfileFile(cpuPath)
	if err != nil {
		t.Fatalf("parse -cpuprofile output: %v", err)
	}
	if len(p.SampleTypes) == 0 {
		t.Error("-cpuprofile output has no sample types")
	}
	if fi, err := os.Stat(cpuPath); err != nil || fi.Size() == 0 {
		t.Errorf("cpu profile stat: %v size %d", err, fi.Size())
	}

	// Listener is gone: the drain completed before Close returned.
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Error("metrics listener still accepting connections after Close")
	}
}

// TestRuntimeCloseWithoutServer covers the flags-off shape (no metrics
// addr, no profiles): Close must still be idempotent and error-free.
func TestRuntimeCloseWithoutServer(t *testing.T) {
	f := &obs.CLIFlags{LogLevel: "error"}
	rt, err := f.Start("obs-close-test")
	if err != nil {
		t.Fatal(err)
	}
	if rt.MetricsAddr() != "" {
		t.Errorf("MetricsAddr = %q, want empty", rt.MetricsAddr())
	}
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}
}
