package bitvec

import (
	"math/bits"
	"testing"
	"testing/quick"
)

func TestFromIndices(t *testing.T) {
	m := FromIndices(0, 3, 7)
	if got, want := uint64(m), uint64(1|8|128); got != want {
		t.Fatalf("FromIndices(0,3,7) = %#x, want %#x", got, want)
	}
	if m.Count() != 3 {
		t.Errorf("Count = %d, want 3", m.Count())
	}
}

func TestFromIndicesEmpty(t *testing.T) {
	if m := FromIndices(); m != 0 {
		t.Fatalf("FromIndices() = %v, want empty", m)
	}
}

func TestFromIndicesPanicsOutOfRange(t *testing.T) {
	for _, bad := range []int{-1, 64, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("FromIndices(%d) did not panic", bad)
				}
			}()
			FromIndices(bad)
		}()
	}
}

func TestFull(t *testing.T) {
	cases := []struct {
		n    int
		want Mask
	}{
		{0, 0},
		{1, 1},
		{4, 0xf},
		{63, Mask(1)<<63 - 1},
		{64, ^Mask(0)},
	}
	for _, c := range cases {
		if got := Full(c.n); got != c.want {
			t.Errorf("Full(%d) = %#x, want %#x", c.n, uint64(got), uint64(c.want))
		}
		if got := Full(c.n).Count(); got != c.n {
			t.Errorf("Full(%d).Count() = %d, want %d", c.n, got, c.n)
		}
	}
}

func TestFullPanics(t *testing.T) {
	for _, bad := range []int{-1, 65} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Full(%d) did not panic", bad)
				}
			}()
			Full(bad)
		}()
	}
}

func TestHasWithWithout(t *testing.T) {
	var m Mask
	m = m.With(5)
	if !m.Has(5) {
		t.Fatal("Has(5) after With(5) = false")
	}
	if m.Has(4) {
		t.Fatal("Has(4) = true, want false")
	}
	m = m.Without(5)
	if m != 0 {
		t.Fatalf("Without(5) left %v", m)
	}
	// Without on an absent subject is a no-op.
	if got := FromIndices(1).Without(2); got != FromIndices(1) {
		t.Errorf("Without(absent) changed mask: %v", got)
	}
}

func TestIntersectCount(t *testing.T) {
	state := FromIndices(0, 1, 4)
	pool := FromIndices(1, 2, 4, 5)
	if got := state.IntersectCount(pool); got != 2 {
		t.Errorf("IntersectCount = %d, want 2", got)
	}
	if got := state.IntersectCount(0); got != 0 {
		t.Errorf("IntersectCount with empty pool = %d, want 0", got)
	}
}

func TestOrderAndLatticeOps(t *testing.T) {
	a := FromIndices(0, 2)
	b := FromIndices(0, 1, 2, 5)
	if !a.SubsetOf(b) {
		t.Error("a ⊆ b expected")
	}
	if b.SubsetOf(a) {
		t.Error("b ⊆ a not expected")
	}
	if got := a.Meet(b); got != a {
		t.Errorf("Meet = %v, want %v", got, a)
	}
	if got := a.Join(b); got != b {
		t.Errorf("Join = %v, want %v", got, b)
	}
	if !a.Disjoint(FromIndices(3, 4)) {
		t.Error("Disjoint expected")
	}
	if a.Disjoint(b) {
		t.Error("not Disjoint expected")
	}
}

func TestIndicesRoundTrip(t *testing.T) {
	f := func(v uint64) bool {
		m := Mask(v)
		return FromIndices(m.Indices()...) == m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLowestHighest(t *testing.T) {
	if got := Mask(0).Lowest(); got != -1 {
		t.Errorf("Lowest(empty) = %d", got)
	}
	if got := Mask(0).Highest(); got != -1 {
		t.Errorf("Highest(empty) = %d", got)
	}
	m := FromIndices(3, 17, 41)
	if got := m.Lowest(); got != 3 {
		t.Errorf("Lowest = %d, want 3", got)
	}
	if got := m.Highest(); got != 41 {
		t.Errorf("Highest = %d, want 41", got)
	}
}

func TestString(t *testing.T) {
	if got := FromIndices(0, 3, 7).String(); got != "{0,3,7}" {
		t.Errorf("String = %q", got)
	}
	if got := Mask(0).String(); got != "{}" {
		t.Errorf("String(empty) = %q", got)
	}
}

// --- Lattice laws as properties -------------------------------------------

func TestMeetJoinLaws(t *testing.T) {
	f := func(x, y, z uint64) bool {
		a, b, c := Mask(x), Mask(y), Mask(z)
		commut := a.Meet(b) == b.Meet(a) && a.Join(b) == b.Join(a)
		assoc := a.Meet(b.Meet(c)) == a.Meet(b).Meet(c) &&
			a.Join(b.Join(c)) == a.Join(b).Join(c)
		absorb := a.Meet(a.Join(b)) == a && a.Join(a.Meet(b)) == a
		idem := a.Meet(a) == a && a.Join(a) == a
		return commut && assoc && absorb && idem
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSubsetOfConsistentWithMeet(t *testing.T) {
	f := func(x, y uint64) bool {
		a, b := Mask(x), Mask(y)
		return a.SubsetOf(b) == (a.Meet(b) == a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIntersectCountMatchesPopcount(t *testing.T) {
	f := func(x, y uint64) bool {
		return Mask(x).IntersectCount(Mask(y)) == bits.OnesCount64(x&y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
