package bitvec

import "testing"

// FuzzBitVecRoundTrip checks the two bijections the candidate-pool
// partitioner depends on: Indices/FromIndices invert each other for every
// mask, and CombinationRank/UnrankCombination form a bijection between
// k-subsets of {0..n-1} and [0, C(n,k)).
func FuzzBitVecRoundTrip(f *testing.F) {
	f.Add(uint64(0), 8)
	f.Add(uint64(0b1011), 8)
	f.Add(uint64(1)<<63, 64)
	f.Add(^uint64(0), 64)
	f.Add(uint64(0xdeadbeef), 40)
	f.Add(uint64(0b111), 3)

	f.Fuzz(func(t *testing.T, raw uint64, n int) {
		m := Mask(raw)

		// Indices/FromIndices round trip.
		idx := m.Indices()
		if got := FromIndices(idx...); got != m {
			t.Fatalf("FromIndices(%v.Indices()) = %v", m, got)
		}
		if len(idx) != m.Count() {
			t.Fatalf("len(Indices()) = %d, Count() = %d", len(idx), m.Count())
		}
		for _, i := range idx {
			if !m.Has(i) {
				t.Fatalf("Indices() reported %d but Has(%d) is false on %v", i, i, m)
			}
		}

		// Rank/unrank bijection over the ground set {0..n-1}.
		if n < 1 || n > 64 {
			n = (n%64+64)%64 + 1
		}
		if m.Count() > 0 && m.Highest() >= n {
			n = m.Highest() + 1
		}
		k := m.Count()
		rank := CombinationRank(m)
		if total := Binomial(n, k); rank >= total {
			t.Fatalf("CombinationRank(%v) = %d out of range [0, C(%d,%d)=%d)", m, rank, n, k, total)
		}
		if m != 0 {
			if got := UnrankCombination(n, k, rank); got != m {
				t.Fatalf("UnrankCombination(%d, %d, %d) = %v, want %v", n, k, rank, got, m)
			}
		}

		// NextCombination preserves popcount and advances the rank by one.
		if next, ok := NextCombination(m, n); ok && m != 0 {
			if next.Count() != k {
				t.Fatalf("NextCombination(%v) = %v changed popcount %d -> %d", m, next, k, next.Count())
			}
			if got := CombinationRank(next); got != rank+1 {
				t.Fatalf("NextCombination(%v) rank %d, want %d", m, got, rank+1)
			}
		}
	})
}
