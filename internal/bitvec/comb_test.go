package bitvec

import (
	"testing"
	"testing/quick"
)

func TestBinomialSmall(t *testing.T) {
	cases := []struct {
		n, k int
		want uint64
	}{
		{0, 0, 1},
		{1, 0, 1},
		{1, 1, 1},
		{5, 2, 10},
		{10, 5, 252},
		{52, 5, 2598960},
		{64, 32, 1832624140942590534},
		{4, 5, 0},
		{3, -1, 0},
	}
	for _, c := range cases {
		if got := Binomial(c.n, c.k); got != c.want {
			t.Errorf("Binomial(%d,%d) = %d, want %d", c.n, c.k, got, c.want)
		}
	}
}

func TestBinomialPascal(t *testing.T) {
	// Pascal's identity over the whole table we care about.
	for n := 1; n <= 64; n++ {
		for k := 1; k < n; k++ {
			if got, want := Binomial(n, k), Binomial(n-1, k-1)+Binomial(n-1, k); got != want {
				t.Fatalf("Pascal fails at C(%d,%d): %d != %d", n, k, got, want)
			}
		}
	}
}

func TestRankUnrankRoundTrip(t *testing.T) {
	for _, tc := range []struct{ n, k int }{{6, 3}, {10, 4}, {12, 1}, {8, 8}, {9, 0}} {
		total := Binomial(tc.n, tc.k)
		for r := uint64(0); r < total; r++ {
			m := UnrankCombination(tc.n, tc.k, r)
			if m.Count() != tc.k {
				t.Fatalf("UnrankCombination(%d,%d,%d) has %d bits", tc.n, tc.k, r, m.Count())
			}
			if m.Highest() >= tc.n {
				t.Fatalf("UnrankCombination(%d,%d,%d) = %v exceeds ground set", tc.n, tc.k, r, m)
			}
			if got := CombinationRank(m); got != r {
				t.Fatalf("rank(unrank(%d)) = %d for n=%d k=%d", r, got, tc.n, tc.k)
			}
		}
	}
}

func TestUnrankPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("UnrankCombination out of range did not panic")
		}
	}()
	UnrankCombination(5, 2, Binomial(5, 2))
}

func TestNextCombinationEnumeratesAll(t *testing.T) {
	n, k := 10, 4
	seen := map[Mask]bool{}
	m := FirstCombination(n, k)
	for {
		if m.Count() != k {
			t.Fatalf("combination %v has wrong size", m)
		}
		if seen[m] {
			t.Fatalf("combination %v visited twice", m)
		}
		seen[m] = true
		next, ok := NextCombination(m, n)
		if !ok {
			break
		}
		m = next
	}
	if got, want := uint64(len(seen)), Binomial(n, k); got != want {
		t.Fatalf("enumerated %d combinations, want %d", got, want)
	}
}

func TestNextCombinationMatchesUnrankOrder(t *testing.T) {
	n, k := 9, 3
	m := FirstCombination(n, k)
	for r := uint64(0); ; r++ {
		if want := UnrankCombination(n, k, r); m != want {
			t.Fatalf("rank %d: NextCombination gives %v, unrank gives %v", r, m, want)
		}
		next, ok := NextCombination(m, n)
		if !ok {
			if r != Binomial(n, k)-1 {
				t.Fatalf("enumeration ended early at rank %d", r)
			}
			break
		}
		m = next
	}
}

func TestFirstCombinationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("FirstCombination(3,4) did not panic")
		}
	}()
	FirstCombination(3, 4)
}

func TestSubsetsVisitsPowerSet(t *testing.T) {
	ground := FromIndices(1, 4, 6)
	seen := map[Mask]bool{}
	Subsets(ground, func(s Mask) bool {
		if !s.SubsetOf(ground) {
			t.Fatalf("subset %v not within ground %v", s, ground)
		}
		if seen[s] {
			t.Fatalf("subset %v visited twice", s)
		}
		seen[s] = true
		return true
	})
	if len(seen) != 8 {
		t.Fatalf("visited %d subsets, want 8", len(seen))
	}
}

func TestSubsetsEarlyStop(t *testing.T) {
	count := 0
	Subsets(Full(4), func(Mask) bool {
		count++
		return count < 3
	})
	if count != 3 {
		t.Fatalf("early stop visited %d, want 3", count)
	}
}

func TestGrayStatesCoversLattice(t *testing.T) {
	n := 6
	seen := make([]bool, 1<<uint(n))
	var prev Mask
	first := true
	GrayStates(n, func(i uint64, s Mask, flipped int) bool {
		if seen[s] {
			t.Fatalf("state %v visited twice", s)
		}
		seen[s] = true
		if first {
			if flipped != -1 || s != 0 || i != 0 {
				t.Fatalf("first visit (i=%d, s=%v, flipped=%d) malformed", i, s, flipped)
			}
			first = false
		} else {
			diff := prev ^ s
			if diff.Count() != 1 {
				t.Fatalf("states %v -> %v differ in %d bits", prev, s, diff.Count())
			}
			if diff.Lowest() != flipped {
				t.Fatalf("flipped = %d, actual differing bit %d", flipped, diff.Lowest())
			}
		}
		prev = s
		return true
	})
	for s, ok := range seen {
		if !ok {
			t.Fatalf("state %d never visited", s)
		}
	}
}

func TestGrayStatesPanicsOnLargeN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("GrayStates(31, ...) did not panic")
		}
	}()
	GrayStates(31, func(uint64, Mask, int) bool { return true })
}

func TestStateOfIndexOfRoundTrip(t *testing.T) {
	f := func(v uint64) bool {
		return IndexOf(StateOf(v)) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStateOfMatchesGrayWalk(t *testing.T) {
	GrayStates(8, func(i uint64, s Mask, _ int) bool {
		if StateOf(i) != s {
			t.Fatalf("StateOf(%d) = %v, walk visited %v", i, StateOf(i), s)
		}
		return true
	})
}
